#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke for `cedr serve`.
#
# Proves the server is a faithful network skin over the engine:
#
#   1. Run a late-arrival stream through the batch CLI (in-process
#      reference): one optimistic detection, one compensating
#      retraction, one surviving detection.
#   2. Start `cedr serve` with a WAL, register the same query over
#      HTTP, push a prefix of the stream over loopback, sync.
#   3. kill -9 the server (no shutdown, no drain).
#   4. Restart from the same WAL, assert the query was recovered,
#      push the rest of the stream, finish.
#   5. Assert the server's text results are byte-identical to the
#      in-process run — including the retraction emitted before the
#      crash — and that the surviving-alert count matches.
set -euo pipefail

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/cedr" ./cmd/cedr

cat >"$workdir/q.cedr" <<'EOF'
EVENT StuckHot
WHEN UNLESS(HOT h, COOL c, 10 seconds)
WHERE {h.sensor = c.sensor}
CONSISTENCY middle
EOF

# Prefix: HOT A, then HOT B — B's arrival advances the optimistic
# frontier past A's window, so middle consistency emits StuckHot(A).
cat >"$workdir/part1.csv" <<'EOF'
insert,1,HOT,1000,inf,sensor=A
insert,2,HOT,15000,inf,sensor=B
EOF
# Suffix: COOL A arrives late (out of arrival order) — the monitor
# repairs with a retraction of StuckHot(A); the CTI then finalizes
# StuckHot(B) as the only surviving detection.
cat >"$workdir/part2.csv" <<'EOF'
insert,3,COOL,4000,inf,sensor=A
cti,40000
EOF
cat "$workdir/part1.csv" "$workdir/part2.csv" >"$workdir/full.csv"

echo "== in-process reference run"
"$workdir/cedr" -query "$workdir/q.cedr" -events "$workdir/full.csv" \
    >"$workdir/batch.out"
# Batch output = one line per output event (inserts AND retractions,
# in delivery order) + a trailing summary line.
grep -v '^-- ' "$workdir/batch.out" >"$workdir/expected.txt"
expected_alerts=$(sed -n 's/^-- \([0-9]*\) surviving detection(s)$/\1/p' "$workdir/batch.out")
echo "reference: $(wc -l <"$workdir/expected.txt") output events, $expected_alerts surviving"
grep -q '^retract#' "$workdir/expected.txt" \
    || { echo "FAIL: reference run produced no retraction"; cat "$workdir/batch.out"; exit 1; }

http=127.0.0.1:4680
wal="$workdir/smoke.wal"

start_server() {
    "$workdir/cedr" serve -listen 127.0.0.1:4617 -http "$http" \
        -wal "$wal" -sync-every 1 >"$workdir/serve.log" 2>&1 &
    server_pid=$!
    disown "$server_pid" # keep kill -9 out of the job-control log
    for _ in $(seq 1 100); do
        curl -sf "http://$http/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$server_pid" 2>/dev/null \
            || { echo "FAIL: server died on startup"; cat "$workdir/serve.log"; exit 1; }
        sleep 0.1
    done
    echo "FAIL: server did not come up"; cat "$workdir/serve.log"; exit 1
}

echo "== start server (WAL at $wal)"
start_server

echo "== register query over HTTP"
qid=$(curl -sf -X POST "http://$http/v1/queries" \
    -H 'Content-Type: application/json' \
    --data '{"src":"EVENT StuckHot\nWHEN UNLESS(HOT h, COOL c, 10 seconds)\nWHERE {h.sensor = c.sensor}\nCONSISTENCY middle"}' \
    | sed -n 's/.*"id": \([0-9]*\).*/\1/p')
[ -n "$qid" ] || { echo "FAIL: register returned no id"; exit 1; }
echo "registered query id=$qid"

echo "== push prefix over loopback (durable sync)"
curl -sf -X POST "http://$http/v1/events?sync=1" \
    -H 'Content-Type: text/csv' --data-binary @"$workdir/part1.csv" >/dev/null

echo "== kill -9"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "== restart from WAL"
start_server
grep -q 'recovered 1 query' "$workdir/serve.log" \
    || { echo "FAIL: restart did not report recovery"; cat "$workdir/serve.log"; exit 1; }

echo "== push suffix, finish"
curl -sf -X POST "http://$http/v1/events?sync=1" \
    -H 'Content-Type: text/csv' --data-binary @"$workdir/part2.csv" >/dev/null
curl -sf -X POST "http://$http/v1/finish" >/dev/null

echo "== differential: server results vs in-process run"
curl -sf "http://$http/v1/queries/$qid/results?format=text" >"$workdir/server.txt"
if ! diff -u "$workdir/expected.txt" "$workdir/server.txt"; then
    echo "FAIL: server output diverges from in-process run"
    exit 1
fi
got_alerts=$(curl -sf "http://$http/v1/queries/$qid/results?format=text&alerts=1" | wc -l)
[ "$got_alerts" = "$expected_alerts" ] \
    || { echo "FAIL: $got_alerts surviving alerts, want $expected_alerts"; exit 1; }

echo "PASS: $(wc -l <"$workdir/server.txt") output events byte-identical across kill -9 + WAL restart; $got_alerts surviving alert(s)"
