// Package cedr is a Go implementation of CEDR (Complex Event Detection and
// Response), the event streaming system of Barga, Goldstein, Ali and Hong,
// "Consistent Streaming Through Time: A Vision for Event Stream
// Processing", CIDR 2007.
//
// CEDR unifies data streams, complex event processing and pub/sub on a
// temporal stream model with explicit consistency guarantees:
//
//   - Events carry validity intervals, not point timestamps; providers may
//     modify and retract them after the fact.
//   - Queries are written in a composable pattern language (SEQUENCE,
//     UNLESS, NOT, CANCEL-WHEN, ...) with value correlation, instance
//     selection/consumption, and temporal slicing.
//   - Every query runs at a point on the (B, M) consistency spectrum —
//     blocking time versus memory time — whose corners are the paper's
//     strong, middle and weak levels. Out-of-order delivery is absorbed by
//     blocking, or repaired with compensating retractions, or forgotten,
//     according to the level.
//
// Quick start:
//
//	sys := cedr.New()
//	q, err := sys.Register(`
//	    EVENT MissedRestart
//	    WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
//	                RESTART AS z, 5 minutes)
//	    WHERE CorrelationKey(Machine_Id, EQUAL)
//	    CONSISTENCY middle`)
//	...
//	sys.Push(cedr.NewEvent(1, "INSTALL", at, cedr.Forever, cedr.Payload{"Machine_Id": "m1"}))
//	sys.Finish()
//	for _, alert := range q.Alerts() { ... }
//
// The implementation layers mirror the paper: internal/history holds the
// tritemporal model and canonical-form machinery of §2/§4; internal/algebra
// the pattern operators of §3; internal/operators the view-update run-time
// algebra of §6; internal/consistency the monitor and level spectrum of
// §4/§5.
package cedr

import (
	"io"

	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/wal"
)

// Re-exported core types. The library is organized as internal packages
// with this façade as the supported public surface.
type (
	// Event is a stream item: an insert, a retraction, or punctuation.
	Event = event.Event
	// Payload is an event's attribute map.
	Payload = event.Payload
	// ID identifies an event.
	ID = event.ID
	// Time is an instant of logical application time (milliseconds).
	Time = temporal.Time
	// Duration is a span of logical time.
	Duration = temporal.Duration
	// Stream is a finite physical event stream.
	Stream = stream.Stream
	// Spec is a consistency level: a point in the (B, M) spectrum.
	Spec = consistency.Spec
	// Metrics reports a monitor's blocking/state/output counters.
	Metrics = consistency.Metrics
	// DeliveryConfig controls the out-of-order delivery simulator.
	DeliveryConfig = delivery.Config
)

// Forever is the infinite end time for events that remain valid until
// retracted.
const Forever = temporal.Infinity

// Kind values for Event.Kind.
const (
	// Insert introduces a fact.
	Insert = event.Insert
	// Retract shrinks a previously inserted fact's lifetime.
	Retract = event.Retract
)

// Named consistency levels (Section 4) and the spectrum constructor
// (Figure 9).
var (
	// Strong blocks until provider guarantees align input; output is final.
	Strong = consistency.Strong
	// Middle emits optimistically and repairs with retractions.
	Middle = consistency.Middle
	// Weak emits optimistically and repairs at most m time units back.
	Weak = consistency.Weak
	// Level picks an interior point (B = blocking bound, M = memory bound).
	Level = consistency.Level
)

// NewEvent builds an insert event valid over [vs, ve).
func NewEvent(id ID, typ string, vs, ve Time, p Payload) Event {
	return event.NewInsert(id, typ, vs, ve, p)
}

// NewRetraction builds a retraction shrinking event id's validity to
// newEnd. Retracting to the event's start removes it entirely.
func NewRetraction(id ID, typ string, vs, newEnd Time, p Payload) Event {
	return event.NewRetract(id, typ, vs, newEnd, p)
}

// NewCTI builds the punctuation promising no later event with Sync before t
// (a provider-declared sync point).
func NewCTI(t Time) Event { return event.NewCTI(t) }

// ParseDuration parses CEDR duration literals such as "12 hours".
var ParseDuration = temporal.ParseDuration

// Deliver runs a Sync-ordered logical stream through the simulated
// transport, producing a physical arrival stream (possibly out of order,
// punctuated with sync points).
var Deliver = delivery.Deliver

// OrderedDelivery returns a transport configuration with in-order delivery
// and a sync point every period ticks.
var OrderedDelivery = delivery.Ordered

// DisorderedDelivery returns a transport with a two-point latency mixture:
// stragglerProb of events arrive stragglerDelay late.
var DisorderedDelivery = delivery.Disordered

// System is a CEDR engine instance hosting standing queries.
type System struct {
	eng *engine.Engine
}

// Option configures a System (New, Open, Restore). WithShards also
// satisfies QueryOption, so the same constructor serves both scopes.
type Option interface {
	applySys(*sysConfig)
}

// QueryOption configures one registration (Register). Options: WithSpec,
// WithShards, WithTemplate, WithoutSharing.
type QueryOption interface {
	applyQuery(*queryConfig)
}

type sysConfig struct {
	eopts []engine.Option
	wopts []wal.LogOption
}

type queryConfig struct {
	popts []plan.Option
	share bool
}

// sysOption and queryOption adapt plain functions to the option
// interfaces; dualOption serves constructors valid in both scopes.
type sysOption func(*sysConfig)

func (o sysOption) applySys(c *sysConfig) { o(c) }

type queryOption func(*queryConfig)

func (o queryOption) applyQuery(c *queryConfig) { o(c) }

type dualOption struct {
	sys func(*sysConfig)
	qry func(*queryConfig)
}

func (o dualOption) applySys(c *sysConfig)     { o.sys(c) }
func (o dualOption) applyQuery(c *queryConfig) { o.qry(c) }

// WithShards makes a query whose plan is key-partitionable run as n
// parallel shards — one goroutine, operator chain and consistency monitor
// per key partition, behind a merge stage that reproduces the exact
// single-shard output sequence. Queries whose plans do not decompose by key
// (no grouping or EQUAL correlation key, multi-port heads, first/last
// selection) transparently run on one shard. Passed to New/Open/Restore it
// sets the default for every registration; passed to Register it applies to
// that query alone. Pass AutoShards to pick the count from the plan's
// estimated per-event cost and the cores available — cheap plans stay
// single-shard instead of paying more in handoff overhead than sharding
// returns.
func WithShards(n int) interface {
	Option
	QueryOption
} {
	return dualOption{
		sys: func(c *sysConfig) { c.eopts = append(c.eopts, engine.WithShards(n)) },
		qry: func(c *queryConfig) { c.popts = append(c.popts, plan.WithShards(n)) },
	}
}

// AutoShards, passed to WithShards, selects the overhead-aware automatic
// shard count (see plan.AutoShards).
const AutoShards = plan.AutoShards

// WithBurst sets the sharded router's burst size — how many consecutive
// input items accumulate per shard run before handoff to the workers
// (0 = the default; negative flushes only on punctuation and control
// items). Output is byte-identical at any burst size.
func WithBurst(n int) Option {
	return sysOption(func(c *sysConfig) { c.eopts = append(c.eopts, engine.WithBurst(n)) })
}

// WithRouting enables the standing-query fabric's cross-query routing
// index: each pushed data event is delivered only to the query groups that
// can possibly match it — by event TYPE, and for key-specialized queries
// (a [attr Equal 'literal'] filter, or a template binding) by key value —
// instead of touching every registered query. Punctuation is still
// broadcast. Queries whose plans the analyzer cannot prove routable fall
// into a conservative always-deliver bucket. Routing changes what a query
// observes as its input stream (as if pre-filtered to events its plan can
// react to), so emission stamps of blocking output and per-stage input
// counters may differ from an unrouted run; the detected alert set cannot.
func WithRouting() Option {
	return sysOption(func(c *sysConfig) { c.eopts = append(c.eopts, engine.WithRouting()) })
}

// WithSyncEvery sets a durable system's fsync batching: the write-ahead
// log flushes and fsyncs once n appended records have accumulated (1 =
// every append; the default is 32). Larger batches trade a longer
// potentially-lost tail on crash for fewer fsyncs; recovery of a shorter
// durable prefix is still byte-identical to a run over exactly that
// prefix. Ignored by New (no log).
func WithSyncEvery(n int) Option {
	return sysOption(func(c *sysConfig) { c.wopts = append(c.wopts, wal.SyncEvery(n)) })
}

// WithSpec registers the query at an explicit consistency level,
// overriding any CONSISTENCY clause in its text.
func WithSpec(spec Spec) QueryOption {
	return queryOption(func(c *queryConfig) { c.popts = append(c.popts, plan.WithSpec(spec)) })
}

// WithTemplate registers the query as an instance of a parameterized
// template: every $name placeholder in the query text is bound to
// params["name"]. The template is parsed and analyzed once per binding
// set; instances that share a binding set (and the rest of the sharing
// identity) share one executing chain, so a fleet of per-user instances
// costs one compilation per template and one execution per distinct
// binding.
func WithTemplate(params Payload) QueryOption {
	return queryOption(func(c *queryConfig) { c.popts = append(c.popts, plan.WithBindings(params)) })
}

// WithoutSharing gives the registration a private execution chain even if
// an identical query is already standing. Use it when the query must not
// be affected by a sibling's SetConsistency, or must observe output from
// its own registration point with chain-level isolation.
func WithoutSharing() QueryOption {
	return queryOption(func(c *queryConfig) { c.share = false })
}

// New creates an empty, non-durable system: nothing is persisted, and
// Snapshot refuses. Use Open for a crash-safe system.
func New(opts ...Option) *System {
	var cfg sysConfig
	for _, o := range opts {
		o.applySys(&cfg)
	}
	return &System{eng: engine.New(cfg.eopts...)}
}

// Open creates (or re-opens) a crash-safe system backed by the write-ahead
// log at path. Every registration, event, punctuation, consistency switch
// and flush is appended to the log before it is processed; if the file
// already holds records — say, from a run that crashed — they are replayed
// first, recovering queries, operator state, result histories and metrics
// byte-identical to the original run's durable prefix (a torn tail from a
// mid-write crash is truncated). Input that cannot be made durable is not
// processed: after a log failure Err reports it and the system drops
// further input. Close the system to release the log.
func Open(path string, opts ...Option) (*System, error) {
	return Restore(nil, path, opts...)
}

// Restore is Open plus a snapshot (written by System.Snapshot): the
// snapshot's records are replayed first, then the log's records past the
// snapshot watermark. The log at walPath may be the one the snapshot was
// cut from — or a fresh, empty file, which is how the WAL is rotated: take
// a snapshot, restore against an empty log, delete the old log.
func Restore(snapshot io.Reader, walPath string, opts ...Option) (*System, error) {
	var cfg sysConfig
	for _, o := range opts {
		o.applySys(&cfg)
	}
	log, err := wal.Open(walPath, cfg.wopts...)
	if err != nil {
		return nil, err
	}
	eng, err := engine.Restore(snapshot, log, cfg.eopts...)
	if err != nil {
		log.Close()
		return nil, err
	}
	return &System{eng: eng}, nil
}

// Register compiles CEDR query text and installs it as a standing query,
// configured by query options (WithSpec, WithShards, WithTemplate,
// WithoutSharing).
//
// Registrations share by default: when an identical query is already
// standing — same text, same resolved consistency level, same shard and
// rewrite configuration, same template bindings — the new registration does
// not build a second execution pipeline; it attaches to the standing one as
// an independent endpoint (own Results, Subscribe callbacks, Err) and
// observes output from its attachment point onward. A registration-time
// SetConsistency or Finish issued through any endpoint applies to the whole
// shared group; WithoutSharing opts a registration out.
func (s *System) Register(src string, opts ...QueryOption) (*Query, error) {
	cfg := queryConfig{share: true}
	for _, o := range opts {
		o.applyQuery(&cfg)
	}
	popts := cfg.popts
	if cfg.share {
		popts = append(popts, plan.WithSharing())
	}
	q, err := s.eng.RegisterText(src, popts...)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// RegisterAt registers a query with an explicit consistency level.
//
// Deprecated: use Register(src, WithSpec(spec)).
func (s *System) RegisterAt(src string, spec Spec) (*Query, error) {
	return s.Register(src, WithSpec(spec))
}

// RegisterOpts registers a query with explicit plan options (for example
// plan.WithSpec, plan.WithShards).
//
// Deprecated: use Register with query options (WithSpec, WithShards, ...).
func (s *System) RegisterOpts(src string, opts ...plan.Option) (*Query, error) {
	cfg := queryConfig{share: true}
	cfg.popts = append(cfg.popts, opts...)
	popts := append(cfg.popts, plan.WithSharing())
	q, err := s.eng.RegisterText(src, popts...)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// Queries returns every standing query in registration order. After Open
// recovers a crashed system this is how the caller re-acquires handles to
// the replayed queries (subscriptions are not persisted — re-Subscribe
// here).
func (s *System) Queries() []*Query {
	var out []*Query
	for _, q := range s.eng.Queries() {
		out = append(out, &Query{q: q})
	}
	return out
}

// Push delivers one physical item to every registered query. The event's
// CEDR arrival time is taken from its C interval (Deliver stamps it); for
// hand-built events an unset arrival time is acceptable and treated as
// monotone.
func (s *System) Push(e Event) { s.eng.Push(e) }

// Run pushes a whole physical stream and flushes.
func (s *System) Run(in Stream) { s.eng.Run(in) }

// Finish flushes all queries, completing their output histories.
func (s *System) Finish() { s.eng.Finish() }

// Drain waits until every sharded query has processed and delivered
// everything pushed so far (single-shard queries are synchronous). After
// Drain, Results and subscribers reflect every prior Push.
func (s *System) Drain() { s.eng.Drain() }

// Sync flushes and fsyncs the write-ahead log — the durability point for
// everything pushed so far. A no-op on a non-durable (New) system; on
// failure the system fails stop and Err reports it. The network server's
// sync verb calls this so a client can obtain an explicit durability
// guarantee mid-stream.
func (s *System) Sync() error { return s.eng.SyncWAL() }

// Snapshot writes the system's durable state — the watermarked journal of
// applied records — to w. Restore(snapshot, freshLog) resumes from it
// without the original log file, which is how the WAL is rotated. It
// requires a durable system (Open/Restore) whose registered queries were
// all compiled from source text, and must not run concurrently with Push.
func (s *System) Snapshot(w io.Writer) error { return s.eng.Snapshot(w) }

// Err reports the system's durability failure, if any (WAL append, fsync,
// or close error). A failed system drops further input — fail-stop — so
// the caller can crash, rotate, or alert. Always nil on a New system.
func (s *System) Err() error { return s.eng.Err() }

// Close shuts the system down: input is dropped from here on, sharded
// queries' goroutines exit, and the write-ahead log (if any) is synced and
// closed. Close does not flush the queries — call Finish first if the
// output histories should complete; otherwise a later Open resumes exactly
// where the log ends. Idempotent.
func (s *System) Close() error { return s.eng.Close() }

// Query is a registered standing query.
type Query struct {
	q *engine.Query
}

// Name returns the query's EVENT name.
func (q *Query) Name() string { return q.q.Name() }

// Results returns everything emitted so far: inserts, retractions and
// punctuation, in emission order.
func (q *Query) Results() Stream { return q.q.Results() }

// Alerts returns the net surviving detections: inserts that were not
// subsequently retracted (compensated).
func (q *Query) Alerts() []Event {
	live := map[ID]Event{}
	var order []ID
	for _, e := range q.q.Results() {
		if e.IsCTI() {
			continue
		}
		if e.Kind == event.Retract {
			if old, ok := live[e.ID]; ok && e.V.End <= old.V.Start {
				delete(live, e.ID)
			}
			continue
		}
		if _, seen := live[e.ID]; !seen {
			order = append(order, e.ID)
		}
		live[e.ID] = e
	}
	var out []Event
	for _, id := range order {
		if e, ok := live[id]; ok {
			out = append(out, e)
		}
	}
	return out
}

// Metrics returns per-stage monitor metrics (stage 0 is the pattern).
func (q *Query) Metrics() []Metrics { return q.q.Metrics() }

// Err returns the error that quarantined the query — the recovered panic
// of an operator, shard worker, or subscriber callback — or nil while the
// query is healthy. A quarantined query stops processing input and
// emitting output; its results up to the failure remain readable, and
// sibling queries on the same system are unaffected.
func (q *Query) Err() error { return q.q.Err() }

// Subscribe registers a synchronous callback for every output item
// delivered to this query from now on.
func (q *Query) Subscribe(fn func(Event)) { q.q.Subscribe(fn) }

// SubscribeTagged registers a synchronous callback receiving every output
// item together with its chain order tag (see Tags). With replay set the
// callback first receives the query's accumulated output, atomically with
// the registration — no gap or duplication against concurrent delivery.
func (q *Query) SubscribeTagged(replay bool, fn func(Event, uint64)) {
	q.q.SubscribeTagged(replay, fn)
}

// Tags returns the chain output position of each Results item: Tags()[i]
// is the cumulative index the executing chain assigned to Results()[i].
// Endpoints attached at registration count from 0; an endpoint attached
// to a warm shared chain starts at the chain's position at attach time.
// An independent execution of the same plan over the same input assigns
// identical positions, so tags let a remote subscriber verify it observed
// exactly the in-process output sequence.
func (q *Query) Tags() []uint64 { return q.q.Tags() }

// SetConsistency switches the query's consistency level at runtime. On a
// shared registration the switch applies to the whole group — every
// endpoint of the standing query observes the released output.
func (q *Query) SetConsistency(spec Spec) { q.q.SetSpec(spec) }

// Unregister removes the standing query: its accumulated Results stay
// readable, subscribers receive nothing further, and when it was the last
// registration of a shared group the underlying execution pipeline is torn
// down (goroutines exit, input is no longer delivered to it). On a durable
// system the unregistration is logged, so recovery reproduces it.
// Idempotent.
func (q *Query) Unregister() { q.q.Unregister() }

// Shared reports whether the query runs on a joinable shared chain
// (registered without WithoutSharing and eligible for sharing).
func (q *Query) Shared() bool { return q.q.Shared() }

// Shards returns the number of parallel shards the query runs on (1 unless
// sharding was requested and the plan is key-partitionable).
func (q *Query) Shards() int { return q.q.Shards() }

// Explain renders the compiled plan.
func (q *Query) Explain() string { return q.q.Plan().Explain() }
