// Package cedr is a Go implementation of CEDR (Complex Event Detection and
// Response), the event streaming system of Barga, Goldstein, Ali and Hong,
// "Consistent Streaming Through Time: A Vision for Event Stream
// Processing", CIDR 2007.
//
// CEDR unifies data streams, complex event processing and pub/sub on a
// temporal stream model with explicit consistency guarantees:
//
//   - Events carry validity intervals, not point timestamps; providers may
//     modify and retract them after the fact.
//   - Queries are written in a composable pattern language (SEQUENCE,
//     UNLESS, NOT, CANCEL-WHEN, ...) with value correlation, instance
//     selection/consumption, and temporal slicing.
//   - Every query runs at a point on the (B, M) consistency spectrum —
//     blocking time versus memory time — whose corners are the paper's
//     strong, middle and weak levels. Out-of-order delivery is absorbed by
//     blocking, or repaired with compensating retractions, or forgotten,
//     according to the level.
//
// Quick start:
//
//	sys := cedr.New()
//	q, err := sys.Register(`
//	    EVENT MissedRestart
//	    WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
//	                RESTART AS z, 5 minutes)
//	    WHERE CorrelationKey(Machine_Id, EQUAL)
//	    CONSISTENCY middle`)
//	...
//	sys.Push(cedr.NewEvent(1, "INSTALL", at, cedr.Forever, cedr.Payload{"Machine_Id": "m1"}))
//	sys.Finish()
//	for _, alert := range q.Alerts() { ... }
//
// The implementation layers mirror the paper: internal/history holds the
// tritemporal model and canonical-form machinery of §2/§4; internal/algebra
// the pattern operators of §3; internal/operators the view-update run-time
// algebra of §6; internal/consistency the monitor and level spectrum of
// §4/§5.
package cedr

import (
	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// Re-exported core types. The library is organized as internal packages
// with this façade as the supported public surface.
type (
	// Event is a stream item: an insert, a retraction, or punctuation.
	Event = event.Event
	// Payload is an event's attribute map.
	Payload = event.Payload
	// ID identifies an event.
	ID = event.ID
	// Time is an instant of logical application time (milliseconds).
	Time = temporal.Time
	// Duration is a span of logical time.
	Duration = temporal.Duration
	// Stream is a finite physical event stream.
	Stream = stream.Stream
	// Spec is a consistency level: a point in the (B, M) spectrum.
	Spec = consistency.Spec
	// Metrics reports a monitor's blocking/state/output counters.
	Metrics = consistency.Metrics
	// DeliveryConfig controls the out-of-order delivery simulator.
	DeliveryConfig = delivery.Config
)

// Forever is the infinite end time for events that remain valid until
// retracted.
const Forever = temporal.Infinity

// Kind values for Event.Kind.
const (
	// Insert introduces a fact.
	Insert = event.Insert
	// Retract shrinks a previously inserted fact's lifetime.
	Retract = event.Retract
)

// Named consistency levels (Section 4) and the spectrum constructor
// (Figure 9).
var (
	// Strong blocks until provider guarantees align input; output is final.
	Strong = consistency.Strong
	// Middle emits optimistically and repairs with retractions.
	Middle = consistency.Middle
	// Weak emits optimistically and repairs at most m time units back.
	Weak = consistency.Weak
	// Level picks an interior point (B = blocking bound, M = memory bound).
	Level = consistency.Level
)

// NewEvent builds an insert event valid over [vs, ve).
func NewEvent(id ID, typ string, vs, ve Time, p Payload) Event {
	return event.NewInsert(id, typ, vs, ve, p)
}

// NewRetraction builds a retraction shrinking event id's validity to
// newEnd. Retracting to the event's start removes it entirely.
func NewRetraction(id ID, typ string, vs, newEnd Time, p Payload) Event {
	return event.NewRetract(id, typ, vs, newEnd, p)
}

// NewCTI builds the punctuation promising no later event with Sync before t
// (a provider-declared sync point).
func NewCTI(t Time) Event { return event.NewCTI(t) }

// ParseDuration parses CEDR duration literals such as "12 hours".
var ParseDuration = temporal.ParseDuration

// Deliver runs a Sync-ordered logical stream through the simulated
// transport, producing a physical arrival stream (possibly out of order,
// punctuated with sync points).
var Deliver = delivery.Deliver

// OrderedDelivery returns a transport configuration with in-order delivery
// and a sync point every period ticks.
var OrderedDelivery = delivery.Ordered

// DisorderedDelivery returns a transport with a two-point latency mixture:
// stragglerProb of events arrive stragglerDelay late.
var DisorderedDelivery = delivery.Disordered

// System is a CEDR engine instance hosting standing queries.
type System struct {
	eng *engine.Engine
}

// Option configures a System.
type Option func(*[]engine.Option)

// WithShards makes every registered query whose plan is key-partitionable
// run as n parallel shards — one goroutine, operator chain and consistency
// monitor per key partition, behind a merge stage that reproduces the exact
// single-shard output sequence. Queries whose plans do not decompose by key
// (no grouping or EQUAL correlation key, multi-port heads, first/last
// selection) transparently run on one shard. Per-query counts can be set
// with plan.WithShards via RegisterOpts.
func WithShards(n int) Option {
	return func(opts *[]engine.Option) { *opts = append(*opts, engine.WithShards(n)) }
}

// New creates an empty system.
func New(opts ...Option) *System {
	var eopts []engine.Option
	for _, o := range opts {
		o(&eopts)
	}
	return &System{eng: engine.New(eopts...)}
}

// Register compiles CEDR query text and installs it as a standing query.
func (s *System) Register(src string) (*Query, error) {
	q, err := s.eng.RegisterText(src)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// RegisterAt registers a query with an explicit consistency level,
// overriding any CONSISTENCY clause.
func (s *System) RegisterAt(src string, spec Spec) (*Query, error) {
	q, err := s.eng.RegisterText(src, plan.WithSpec(spec))
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// RegisterOpts registers a query with explicit plan options (for example
// plan.WithSpec, plan.WithShards).
func (s *System) RegisterOpts(src string, opts ...plan.Option) (*Query, error) {
	q, err := s.eng.RegisterText(src, opts...)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// Push delivers one physical item to every registered query. The event's
// CEDR arrival time is taken from its C interval (Deliver stamps it); for
// hand-built events an unset arrival time is acceptable and treated as
// monotone.
func (s *System) Push(e Event) { s.eng.Push(e) }

// Run pushes a whole physical stream and flushes.
func (s *System) Run(in Stream) { s.eng.Run(in) }

// Finish flushes all queries, completing their output histories.
func (s *System) Finish() { s.eng.Finish() }

// Query is a registered standing query.
type Query struct {
	q *engine.Query
}

// Name returns the query's EVENT name.
func (q *Query) Name() string { return q.q.Name() }

// Results returns everything emitted so far: inserts, retractions and
// punctuation, in emission order.
func (q *Query) Results() Stream { return q.q.Results() }

// Alerts returns the net surviving detections: inserts that were not
// subsequently retracted (compensated).
func (q *Query) Alerts() []Event {
	live := map[ID]Event{}
	var order []ID
	for _, e := range q.q.Results() {
		if e.IsCTI() {
			continue
		}
		if e.Kind == event.Retract {
			if old, ok := live[e.ID]; ok && e.V.End <= old.V.Start {
				delete(live, e.ID)
			}
			continue
		}
		if _, seen := live[e.ID]; !seen {
			order = append(order, e.ID)
		}
		live[e.ID] = e
	}
	var out []Event
	for _, id := range order {
		if e, ok := live[id]; ok {
			out = append(out, e)
		}
	}
	return out
}

// Metrics returns per-stage monitor metrics (stage 0 is the pattern).
func (q *Query) Metrics() []Metrics { return q.q.Metrics() }

// Subscribe registers a synchronous callback for every output item.
func (q *Query) Subscribe(fn func(Event)) { q.q.Subscribe(fn) }

// SetConsistency switches the query's consistency level at runtime.
func (q *Query) SetConsistency(spec Spec) { q.q.SetSpec(spec) }

// Shards returns the number of parallel shards the query runs on (1 unless
// sharding was requested and the plan is key-partitionable).
func (q *Query) Shards() int { return q.q.Shards() }

// Explain renders the compiled plan.
func (q *Query) Explain() string { return q.q.Plan().Explain() }
