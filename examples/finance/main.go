// Finance: the paper's §1 trader-desktop application — a moving average of
// portfolio value "updated continuously as stock updates arrive", where
// perfect accuracy is not required. It contrasts two consistency levels on
// the same disordered market feed:
//
//   - weak(0): instant, memoryless output; stragglers are simply dropped —
//     cheapest, and the average drifts from the truth;
//
//   - middle: instant optimistic output, later repaired with retractions —
//     converges to the exact answer.
//
//     go run ./examples/finance
package main

import (
	"fmt"

	cedr "repro"
	"repro/internal/workload"
)

const avgQuery = `
EVENT MovingAvg
WHEN ANY(TICK t)
CONSISTENCY middle`

func main() {
	// A 10-second moving average per symbol, expressed against the public
	// API: the TICK lifetime (5s, from the generator) plays the role of
	// the window; the aggregate rides on the engine's pattern output.
	//
	// For the aggregate itself we use the run-time operator directly —
	// the §6 algebra — under two different consistency monitors.
	src := workload.StockTicks(workload.DefaultTicks())
	tenSec, _ := cedr.ParseDuration("10 seconds")
	fifteenSec, _ := cedr.ParseDuration("15 seconds")
	thirtySec, _ := cedr.ParseDuration("30 seconds")
	delivered := cedr.Deliver(src, cedr.DisorderedDelivery(21, thirtySec, fifteenSec, 0.25))

	for _, spec := range []cedr.Spec{cedr.Weak(0), cedr.Middle()} {
		sys := cedr.New()
		q, err := sys.Register(avgQuery, cedr.WithSpec(spec))
		if err != nil {
			panic(err)
		}
		sys.Run(delivered)
		m := q.Metrics()[0]
		fmt.Printf("%-8s ticks=%d outputs=%d retractions=%d dropped=%d maxState=%d\n",
			spec.Name(), m.InputEvents, m.OutputEvents(), m.OutputRetractions,
			m.Dropped, m.MaxState)
	}
	_ = tenSec

	fmt.Println()
	fmt.Println("The weak level drops stragglers and keeps almost no state; the middle")
	fmt.Println("level repairs its optimistic output with retractions and converges to")
	fmt.Println("the ordered-run answer — the §1 trade-off between responsiveness and")
	fmt.Println("accuracy, chosen per query.")
}
