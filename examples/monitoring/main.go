// Monitoring: the paper's §3.1 CIDR07_Example, compiled from the exact
// query text the paper prints, over synthetic machine telemetry delivered
// out of order.
//
// The query alerts when an INSTALL is followed by a SHUTDOWN within 12
// hours and the machine then fails to RESTART within 5 minutes. The WHERE
// clause correlates all three events on Machine_Id; the predicate on the
// negated RESTART is injected into the UNLESS operator (predicate
// injection, §3.2) so only same-machine restarts suppress the alert.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"

	cedr "repro"
	"repro/internal/workload"
)

const cidr07 = `
EVENT CIDR07_Example
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
            RESTART AS z, 5 minutes)
WHERE {x.Machine_Id = y.Machine_Id} AND
      {x.Machine_Id = z.Machine_Id}
SC(each, consume)`

func main() {
	sys := cedr.New()
	q, err := sys.Register(cidr07, cedr.WithSpec(cedr.Middle()))
	if err != nil {
		panic(err)
	}

	cfg := workload.DefaultMachines()
	src, expected := workload.MachineEvents(cfg)
	fmt.Printf("workload: %d machines × %d cycles (%d events), %d missed restarts\n",
		cfg.Machines, cfg.Cycles, len(src), expected)

	// Deliver with stragglers: 30%% of events arrive two minutes late.
	tenMin, _ := cedr.ParseDuration("10 minutes")
	twoMin, _ := cedr.ParseDuration("2 minutes")
	delivered := cedr.Deliver(src, cedr.DisorderedDelivery(7, tenMin, twoMin, 0.3))
	sys.Run(delivered)

	alerts := q.Alerts()
	fmt.Printf("alerts: %d (expected %d)\n", len(alerts), expected)
	for i, a := range alerts {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(alerts)-3)
			break
		}
		fmt.Printf("  machine %v: shutdown at %v never restarted in time\n",
			a.Payload["x.Machine_Id"], a.V.Start)
	}
	m := q.Metrics()[0]
	fmt.Printf("monitor: %d inputs, %d outputs (%d retractions repairing optimism), %d replays\n",
		m.InputEvents, m.OutputEvents(), m.OutputRetractions, m.Replays)
}
