// Compliance: the paper's §1 compliance-office application — queries that
// "must process all events in proper order to make an accurate assessment".
//
// The query flags trades that were never confirmed within 30 seconds (a
// churn indicator), running at STRONG consistency: the monitor aligns the
// disordered feed by blocking on provider sync points, so the output is
// final — no retraction ever needs to be sent to the audit log — and
// identical to the output over a perfectly ordered feed.
//
//	go run ./examples/compliance
package main

import (
	"fmt"

	cedr "repro"
	"repro/internal/workload"
)

const auditQuery = `
EVENT UnconfirmedTrade
WHEN UNLESS(TRADE t, CONFIRM c, 30 seconds)
WHERE {t.order = c.order}
SC(each, consume)
CONSISTENCY strong`

func main() {
	src, expected := workload.TradeEvents(workload.DefaultTrades())
	tenSec, _ := cedr.ParseDuration("10 seconds")
	fiveSec, _ := cedr.ParseDuration("5 seconds")

	run := func(name string, feed cedr.Stream) int {
		sys := cedr.New()
		q, err := sys.Register(auditQuery)
		if err != nil {
			panic(err)
		}
		sys.Run(feed)
		m := q.Metrics()[0]
		fmt.Printf("%-10s alerts=%3d blocked=%3d meanBlocking=%5.1f retractions=%d\n",
			name, len(q.Alerts()), m.BlockedEvents, m.MeanBlocking(), m.OutputRetractions)
		return len(q.Alerts())
	}

	ordered := run("ordered", cedr.Deliver(src, cedr.OrderedDelivery(tenSec)))
	disordered := run("disordered", cedr.Deliver(src,
		cedr.DisorderedDelivery(99, tenSec, fiveSec, 0.4)))

	fmt.Printf("\nexpected unconfirmed trades: %d\n", expected)
	if ordered == disordered && ordered == expected {
		fmt.Println("strong consistency: identical, final output regardless of arrival order —")
		fmt.Println("the audit log never has to be amended.")
	} else {
		fmt.Println("MISMATCH — strong consistency violated!")
	}
}
