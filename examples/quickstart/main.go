// Quickstart: register a CEDR query, push events, read detections.
//
// The query watches temperature readings and raises a composite event when
// a sensor goes hot and is not cooled within 10 seconds — the simplest use
// of UNLESS-style negation with value correlation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	cedr "repro"
)

func main() {
	sys := cedr.New()
	q, err := sys.Register(`
EVENT StuckHot
WHEN UNLESS(HOT h, COOL c, 10 seconds)
WHERE {h.sensor = c.sensor}
CONSISTENCY middle`)
	if err != nil {
		panic(err)
	}

	q.Subscribe(func(e cedr.Event) {
		if !e.IsCTI() {
			fmt.Printf("  output: %s\n", e)
		}
	})

	sec := cedr.Time(1000) // one logical second
	events := cedr.Stream{
		// Sensor A goes hot at t=1s and cools at t=4s: no alert.
		cedr.NewEvent(1, "HOT", 1*sec, cedr.Forever, cedr.Payload{"sensor": "A"}),
		cedr.NewEvent(2, "COOL", 4*sec, cedr.Forever, cedr.Payload{"sensor": "A"}),
		// Sensor B goes hot at t=2s and never cools: alert.
		cedr.NewEvent(3, "HOT", 2*sec, cedr.Forever, cedr.Payload{"sensor": "B"}),
		// Sensor C cools, but only after 15s: alert.
		cedr.NewEvent(4, "HOT", 5*sec, cedr.Forever, cedr.Payload{"sensor": "C"}),
		cedr.NewEvent(5, "COOL", 20*sec, cedr.Forever, cedr.Payload{"sensor": "C"}),
	}

	// Simulated delivery stamps arrival times and injects provider sync
	// points every 5 seconds of application time.
	sys.Run(cedr.Deliver(events, cedr.OrderedDelivery(5*1000)))

	fmt.Printf("alerts: %d (want 2: sensors B and C)\n", len(q.Alerts()))
	for _, a := range q.Alerts() {
		fmt.Printf("  %v stuck hot since t=%v\n", a.Payload["h.sensor"], a.V.Start)
	}
}
