// Sentiment: the paper's §1 trading-floor application — "extracts events
// from live news feeds and correlates these events with market indicators
// to infer market sentiment". Each news event has a short shelf life, and
// the query "must identify a trading opportunity as soon as possible with
// the information available at that time; late events may result in a
// retraction."
//
// That sentence is the middle consistency level: the pattern below fires
// the moment a strong-sentiment news item coincides with a price move on
// the same symbol, and if a straggler reveals the detection was premature,
// the engine retracts it. The subscriber sees both the optimistic signal
// and any compensation — exactly what an automated trading program needs.
//
//	go run ./examples/sentiment
package main

import (
	"fmt"

	cedr "repro"
	"repro/internal/workload"
)

const signalQuery = `
EVENT TradingSignal
WHEN ALL(NEWS n, TICK t, 15 seconds)
WHERE CorrelationKey(symbol, EQUAL) AND {n.sentiment > 0}
SC(each, consume)
CONSISTENCY middle`

func main() {
	sys := cedr.New()
	q, err := sys.Register(signalQuery)
	if err != nil {
		panic(err)
	}

	signals, compensations := 0, 0
	q.Subscribe(func(e cedr.Event) {
		switch {
		case e.IsCTI():
		case e.Kind == cedr.Insert:
			signals++
		case e.Kind == cedr.Retract:
			compensations++
		}
	})

	news := workload.NewsEvents(workload.DefaultNews())
	ticks := workload.StockTicks(workload.DefaultTicks())
	merged := append(append(cedr.Stream{}, news...), ticks...).SortBySync()

	tenSec, _ := cedr.ParseDuration("10 seconds")
	fiveSec, _ := cedr.ParseDuration("5 seconds")
	delivered := cedr.Deliver(merged, cedr.DisorderedDelivery(17, tenSec, fiveSec, 0.2))
	sys.Run(delivered)

	fmt.Printf("events: %d (news %d, ticks %d)\n", len(merged), len(news), len(ticks))
	fmt.Printf("optimistic signals emitted: %d\n", signals)
	fmt.Printf("compensating retractions:   %d\n", compensations)
	fmt.Printf("surviving signals:          %d\n", len(q.Alerts()))
	for i, a := range q.Alerts() {
		if i == 3 {
			fmt.Printf("  ...\n")
			break
		}
		fmt.Printf("  %v: positive news (sentiment %.2f) with market activity at t=%v\n",
			a.Payload["n.symbol"], a.Payload["n.sentiment"], a.V.Start)
	}
}
