package cedr

import (
	"testing"

	"repro/internal/workload"
)

const missedRestart = `
EVENT MissedRestart
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
            RESTART AS z, 5 minutes)
WHERE CorrelationKey(Machine_Id, EQUAL)
SC(each, consume)
CONSISTENCY middle`

func TestPublicAPIQuickstart(t *testing.T) {
	sys := New()
	q, err := sys.Register(missedRestart)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name() != "MissedRestart" {
		t.Errorf("name = %q", q.Name())
	}
	src, expected := workload.MachineEvents(workload.DefaultMachines())
	sys.Run(Deliver(src, OrderedDelivery(MustDuration(t, "10 minutes"))))
	if got := len(q.Alerts()); got != expected {
		t.Errorf("alerts = %d, want %d", got, expected)
	}
	if q.Explain() == "" {
		t.Error("Explain empty")
	}
	if len(q.Metrics()) == 0 {
		t.Error("no metrics")
	}
}

func MustDuration(t *testing.T, s string) Duration {
	t.Helper()
	d, err := ParseDuration(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPublicAPIConsistencyOverride(t *testing.T) {
	sys := New()
	q, err := sys.RegisterAt(missedRestart, Strong())
	if err != nil {
		t.Fatal(err)
	}
	src, expected := workload.MachineEvents(workload.DefaultMachines())
	disordered := Deliver(src, DisorderedDelivery(7,
		MustDuration(t, "10 minutes"), MustDuration(t, "3 minutes"), 0.3))
	sys.Run(disordered)
	if got := len(q.Alerts()); got != expected {
		t.Errorf("strong alerts under disorder = %d, want %d", got, expected)
	}
	// Strong never compensates.
	for _, m := range q.Metrics() {
		if m.Compensations != 0 {
			t.Errorf("strong emitted compensations: %+v", m)
		}
	}
}

func TestPublicAPIMiddleRepairsUnderDisorder(t *testing.T) {
	sys := New()
	q, err := sys.RegisterAt(missedRestart, Middle())
	if err != nil {
		t.Fatal(err)
	}
	src, expected := workload.MachineEvents(workload.DefaultMachines())
	disordered := Deliver(src, DisorderedDelivery(7,
		MustDuration(t, "10 minutes"), MustDuration(t, "3 minutes"), 0.3))
	sys.Run(disordered)
	if got := len(q.Alerts()); got != expected {
		t.Errorf("middle alerts under disorder = %d, want %d", got, expected)
	}
}

func TestPublicAPIRetraction(t *testing.T) {
	sys := New()
	q, err := sys.Register(`EVENT Hot WHEN ANY(READING r) WHERE {r.temp > 90}`)
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	q.Subscribe(func(e Event) {
		if !e.IsCTI() {
			seen++
		}
	})
	sys.Push(NewEvent(1, "READING", 10, Forever, Payload{"temp": int64(95)}))
	sys.Finish()
	if len(q.Alerts()) != 1 || seen == 0 {
		t.Errorf("alerts = %d, callbacks = %d", len(q.Alerts()), seen)
	}
}

func TestPublicAPIBadQuery(t *testing.T) {
	sys := New()
	if _, err := sys.Register("EVENT nope"); err == nil {
		t.Error("bad query accepted")
	}
}
