package cedr

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

const missedRestart = `
EVENT MissedRestart
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
            RESTART AS z, 5 minutes)
WHERE CorrelationKey(Machine_Id, EQUAL)
SC(each, consume)
CONSISTENCY middle`

func TestPublicAPIQuickstart(t *testing.T) {
	sys := New()
	q, err := sys.Register(missedRestart)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name() != "MissedRestart" {
		t.Errorf("name = %q", q.Name())
	}
	src, expected := workload.MachineEvents(workload.DefaultMachines())
	sys.Run(Deliver(src, OrderedDelivery(MustDuration(t, "10 minutes"))))
	if got := len(q.Alerts()); got != expected {
		t.Errorf("alerts = %d, want %d", got, expected)
	}
	if q.Explain() == "" {
		t.Error("Explain empty")
	}
	if len(q.Metrics()) == 0 {
		t.Error("no metrics")
	}
}

func MustDuration(t *testing.T, s string) Duration {
	t.Helper()
	d, err := ParseDuration(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPublicAPIConsistencyOverride(t *testing.T) {
	sys := New()
	q, err := sys.Register(missedRestart, WithSpec(Strong()))
	if err != nil {
		t.Fatal(err)
	}
	src, expected := workload.MachineEvents(workload.DefaultMachines())
	disordered := Deliver(src, DisorderedDelivery(7,
		MustDuration(t, "10 minutes"), MustDuration(t, "3 minutes"), 0.3))
	sys.Run(disordered)
	if got := len(q.Alerts()); got != expected {
		t.Errorf("strong alerts under disorder = %d, want %d", got, expected)
	}
	// Strong never compensates.
	for _, m := range q.Metrics() {
		if m.Compensations != 0 {
			t.Errorf("strong emitted compensations: %+v", m)
		}
	}
}

func TestPublicAPIMiddleRepairsUnderDisorder(t *testing.T) {
	sys := New()
	q, err := sys.Register(missedRestart, WithSpec(Middle()))
	if err != nil {
		t.Fatal(err)
	}
	src, expected := workload.MachineEvents(workload.DefaultMachines())
	disordered := Deliver(src, DisorderedDelivery(7,
		MustDuration(t, "10 minutes"), MustDuration(t, "3 minutes"), 0.3))
	sys.Run(disordered)
	if got := len(q.Alerts()); got != expected {
		t.Errorf("middle alerts under disorder = %d, want %d", got, expected)
	}
}

func TestPublicAPIRetraction(t *testing.T) {
	sys := New()
	q, err := sys.Register(`EVENT Hot WHEN ANY(READING r) WHERE {r.temp > 90}`)
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	q.Subscribe(func(e Event) {
		if !e.IsCTI() {
			seen++
		}
	})
	sys.Push(NewEvent(1, "READING", 10, Forever, Payload{"temp": int64(95)}))
	sys.Finish()
	if len(q.Alerts()) != 1 || seen == 0 {
		t.Errorf("alerts = %d, callbacks = %d", len(q.Alerts()), seen)
	}
}

func TestPublicAPIBadQuery(t *testing.T) {
	sys := New()
	if _, err := sys.Register("EVENT nope"); err == nil {
		t.Error("bad query accepted")
	}
}

// TestPublicAPIDurability exercises the crash-safety surface end to end:
// a durable system is run partway, "crashes" (the process state is
// dropped without Close), and re-Opening the same log recovers the
// queries, the emitted history, and accepts the rest of the input —
// converging on the same alerts as an uninterrupted run.
func TestPublicAPIDurability(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "cedr.wal")

	src, expected := workload.MachineEvents(workload.DefaultMachines())
	in := Deliver(src, OrderedDelivery(MustDuration(t, "10 minutes")))
	half := len(in) / 2

	sys, err := Open(walPath, WithSyncEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.Register(missedRestart)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range in[:half] {
		sys.Push(ev)
	}
	if sys.Err() != nil {
		t.Fatal(sys.Err())
	}
	emitted := len(q.Results())
	// Crash: no Finish, no Close — the log is all that survives.

	sys2, err := Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	qs := sys2.Queries()
	if len(qs) != 1 {
		t.Fatalf("recovered %d queries, want 1", len(qs))
	}
	rq := qs[0]
	if got := len(rq.Results()); got != emitted {
		t.Fatalf("recovered %d emitted items, want %d", got, emitted)
	}
	for _, ev := range in[half:] {
		sys2.Push(ev)
	}
	sys2.Finish()
	if got := len(rq.Alerts()); got != expected {
		t.Fatalf("recovered run: %d alerts, want %d", got, expected)
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys2.Close(); err != nil {
		t.Fatal("second Close:", err)
	}
}

// TestPublicAPISnapshotRotation: Snapshot plus a fresh log resumes without
// the original WAL.
func TestPublicAPISnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	src, expected := workload.MachineEvents(workload.DefaultMachines())
	in := Deliver(src, OrderedDelivery(MustDuration(t, "10 minutes")))
	half := len(in) / 2

	sys, err := Open(filepath.Join(dir, "old.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Register(missedRestart); err != nil {
		t.Fatal(err)
	}
	for _, ev := range in[:half] {
		sys.Push(ev)
	}
	var snap bytes.Buffer
	if err := sys.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := Restore(&snap, filepath.Join(dir, "new.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	for _, ev := range in[half:] {
		sys2.Push(ev)
	}
	sys2.Finish()
	rq := sys2.Queries()[0]
	if got := len(rq.Alerts()); got != expected {
		t.Fatalf("rotated run: %d alerts, want %d", got, expected)
	}
}

// TestPublicAPIQuarantine: a panicking subscriber must not take the
// process down; the query reports the failure and its sibling is
// unaffected.
func TestPublicAPIQuarantine(t *testing.T) {
	sys := New()
	q, err := sys.Register(missedRestart)
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := sys.Register(missedRestart)
	if err != nil {
		t.Fatal(err)
	}
	q.Subscribe(func(Event) { panic("bad subscriber") })
	src, expected := workload.MachineEvents(workload.DefaultMachines())
	sys.Run(Deliver(src, OrderedDelivery(MustDuration(t, "10 minutes"))))
	if q.Err() == nil {
		t.Fatal("panicking query reports no error")
	}
	if sibling.Err() != nil {
		t.Fatal(sibling.Err())
	}
	if got := len(sibling.Alerts()); got != expected {
		t.Fatalf("sibling: %d alerts, want %d", got, expected)
	}
}

const missedRestartTmpl = `
EVENT MissedRestart
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
            RESTART AS z, 5 minutes)
WHERE CorrelationKey(Machine_Id, EQUAL) AND [Machine_Id Equal $m]
SC(each, consume)
CONSISTENCY middle`

// TestPublicAPIFabricTemplates: a fleet of per-machine template instances
// over a routed engine detects exactly the alerts one fleet-wide query
// would; identical instances share a chain, WithoutSharing opts out, and
// Unregister removes one endpoint without disturbing its siblings.
func TestPublicAPIFabricTemplates(t *testing.T) {
	sys := New(WithRouting())
	var fleet []*Query
	for m := 0; m < 10; m++ {
		q, err := sys.Register(missedRestartTmpl,
			WithTemplate(Payload{"m": workload.MachineID(m)}))
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, q)
	}
	twin, err := sys.Register(missedRestartTmpl, WithTemplate(Payload{"m": "m000"}))
	if err != nil {
		t.Fatal(err)
	}
	solo, err := sys.Register(missedRestartTmpl,
		WithTemplate(Payload{"m": "m000"}), WithoutSharing())
	if err != nil {
		t.Fatal(err)
	}
	if !twin.Shared() {
		t.Error("identical template instance did not share")
	}
	if solo.Shared() {
		t.Error("WithoutSharing instance shared anyway")
	}

	src, expected := workload.MachineEvents(workload.DefaultMachines())
	sys.Run(Deliver(src, OrderedDelivery(MustDuration(t, "10 minutes"))))

	total := 0
	for _, q := range fleet {
		total += len(q.Alerts())
	}
	if total != expected {
		t.Errorf("routed fleet detected %d alerts, fleet-wide query detects %d", total, expected)
	}
	if got, want := len(twin.Alerts()), len(fleet[0].Alerts()); got != want {
		t.Errorf("shared twin: %d alerts, sibling has %d", got, want)
	}
	if got, want := len(solo.Alerts()), len(fleet[0].Alerts()); got != want {
		t.Errorf("unshared copy: %d alerts, shared runs have %d", got, want)
	}

	before := len(sys.Queries())
	twin.Unregister()
	if got := len(sys.Queries()); got != before-1 {
		t.Errorf("Queries() = %d after Unregister, want %d", got, before-1)
	}
	if fleet[0].Err() != nil {
		t.Fatal(fleet[0].Err())
	}
	if sys.Err() != nil {
		t.Fatal(sys.Err())
	}
}
