package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	cedr "repro"
	"repro/internal/server"
)

// runServe is serve mode: host one CEDR system behind a TCP listener
// speaking the binary protocol, optionally an HTTP/JSON surface, and —
// with -wal — a write-ahead log. A restart against the same log replays
// it first, so queries, operator state, and result histories resume
// exactly where the durable prefix ends; clients re-subscribe by the
// query ids they already hold (the registry order is the log order).
//
// SIGINT/SIGTERM triggers the graceful path: listeners close, the
// engine drains, subscriber queues flush, and the system closes —
// syncing the log — before the process exits. A crash (kill -9) skips
// all of that by definition; that is what the log is for.
func runServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cedr serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", ":4617", "TCP address for the binary protocol")
	httpAddr := fs.String("http", "", "optional HTTP/JSON address (e.g. :8080)")
	walPath := fs.String("wal", "", "write-ahead log path (durable server; replays existing records first)")
	syncEvery := fs.Int("sync-every", 0, "fsync after this many WAL records (0 = library default)")
	queue := fs.Int("queue", 0, "per-connection outbound queue bound (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "cedr serve:", err)
		return 1
	}

	var (
		sys *cedr.System
		err error
	)
	if *walPath != "" {
		var opts []cedr.Option
		if *syncEvery > 0 {
			opts = append(opts, cedr.WithSyncEvery(*syncEvery))
		}
		if sys, err = cedr.Open(*walPath, opts...); err != nil {
			return fail(err)
		}
	} else {
		sys = cedr.New()
	}

	var sopts []server.Option
	if *queue > 0 {
		sopts = append(sopts, server.WithQueue(*queue))
	}
	srv := server.New(sys, sopts...)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		sys.Close()
		return fail(err)
	}
	if n := len(sys.Queries()); n > 0 {
		fmt.Fprintf(stdout, "cedr serve: recovered %d quer%s from %s\n",
			n, plural(n), *walPath)
	}
	fmt.Fprintf(stdout, "cedr serve: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 2)
	go func() { serveErr <- srv.Serve(ln) }()

	var hsrv *http.Server
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			srv.Shutdown()
			return fail(err)
		}
		fmt.Fprintf(stdout, "cedr serve: http on %s\n", hln.Addr())
		hsrv = &http.Server{Handler: srv.Handler()}
		go func() {
			if err := hsrv.Serve(hln); err != nil && err != http.ErrServerClosed {
				serveErr <- err
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(stdout, "cedr serve: %v — draining\n", s)
	case err := <-serveErr:
		if err != nil {
			// Listener failure: still drain what was accepted.
			srv.Shutdown()
			return fail(err)
		}
	}

	if hsrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		hsrv.Shutdown(ctx)
		cancel()
	}
	if err := srv.Shutdown(); err != nil {
		return fail(fmt.Errorf("durability failure on shutdown: %w", err))
	}
	fmt.Fprintln(stdout, "cedr serve: stopped")
	return 0
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
