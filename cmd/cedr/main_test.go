package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	cedr "repro"
)

const quickstartQuery = `
EVENT StuckHot
WHEN UNLESS(HOT h, COOL c, 10 seconds)
WHERE {h.sensor = c.sensor}
CONSISTENCY middle`

const quickstartCSV = `# sensor A cools in time; B never cools; C cools too late
insert,1,HOT,1000,inf,sensor=A
insert,2,COOL,4000,inf,sensor=A
insert,3,HOT,2000,inf,sensor=B
insert,4,HOT,5000,inf,sensor=C
insert,5,COOL,20000,inf,sensor=C
`

// writeFiles lays out a query and events file in a fresh directory.
func writeFiles(t *testing.T, query, events, eventsName string) (qPath, ePath string) {
	t.Helper()
	dir := t.TempDir()
	qPath = filepath.Join(dir, "q.cedr")
	ePath = filepath.Join(dir, eventsName)
	if err := os.WriteFile(qPath, []byte(query), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ePath, []byte(events), 0o644); err != nil {
		t.Fatal(err)
	}
	return qPath, ePath
}

// run invokes runBatch capturing output.
func run(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = runBatch(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBatchQuickstart(t *testing.T) {
	q, e := writeFiles(t, quickstartQuery, quickstartCSV, "events.csv")
	code, out, errb := run(t, "-query", q, "-events", e, "-cti", "5000")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "-- 2 surviving detection(s)") {
		t.Fatalf("expected 2 detections, got:\n%s", out)
	}
	if strings.Count(out, "StuckHot") < 2 {
		t.Fatalf("expected StuckHot output lines, got:\n%s", out)
	}
}

// TestBatchJSONEvents runs the same stream through the JSON codec path.
func TestBatchJSONEvents(t *testing.T) {
	events := `{"kind":"insert","id":1,"type":"HOT","vs":1000,"payload":{"sensor":"A"}}
{"kind":"insert","id":2,"type":"COOL","vs":4000,"payload":{"sensor":"A"}}
{"kind":"insert","id":3,"type":"HOT","vs":2000,"payload":{"sensor":"B"}}
{"kind":"insert","id":4,"type":"HOT","vs":5000,"payload":{"sensor":"C"}}
{"kind":"insert","id":5,"type":"COOL","vs":20000,"payload":{"sensor":"C"}}
`
	q, e := writeFiles(t, quickstartQuery, events, "events.ndjson")
	code, out, errb := run(t, "-query", q, "-events", e, "-cti", "5000")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "-- 2 surviving detection(s)") {
		t.Fatalf("expected 2 detections, got:\n%s", out)
	}
}

// TestBatchLongLines pins the scanner-limit fix: a CSV line far past
// bufio.Scanner's 64KB default must load. The pre-fix reader errored
// with "token too long" on any event over the default buffer.
func TestBatchLongLines(t *testing.T) {
	big := strings.Repeat("x", 200*1024)
	events := quickstartCSV + "insert,6,HOT,30000,inf,sensor=D,blob=" + big + "\n"
	q, e := writeFiles(t, quickstartQuery, events, "events.csv")
	code, out, errb := run(t, "-query", q, "-events", e, "-cti", "5000")
	if code != 0 {
		t.Fatalf("exit %d on a 200KB line (old 64KB scanner limit?), stderr %q", code, errb)
	}
	// Sensor D never cools: one more detection.
	if !strings.Contains(out, "-- 3 surviving detection(s)") {
		t.Fatalf("expected 3 detections, got:\n%s", out)
	}
}

// TestBatchBooleanPayload pins the parseValue fix at the CLI seam.
func TestBatchBooleanPayload(t *testing.T) {
	// Query-text string literals are single-quoted, so {h.armed = 'true'}
	// compares against the *string* "true". An unquoted CSV true must
	// parse as a boolean and not match it; the quoted CSV form 'true'
	// forces the string and does. The pre-fix parser read unquoted true
	// as the string "true" (and kept the quotes of 'true' verbatim), so
	// it detected the two boolean events instead of the one string event.
	t.Run("string-literal-vs-bool", func(t *testing.T) {
		query := `
EVENT Armed
WHEN HOT h
WHERE {h.armed = 'true'}
CONSISTENCY middle`
		events := `insert,1,HOT,1000,inf,armed=true
insert,2,HOT,2000,inf,armed=true
insert,3,HOT,3000,inf,armed='true'
`
		q, e := writeFiles(t, query, events, "events.csv")
		code, out, errb := run(t, "-query", q, "-events", e, "-cti", "5000")
		if code != 0 {
			t.Fatalf("exit %d, stderr %q", code, errb)
		}
		if !strings.Contains(out, "-- 1 surviving detection(s)") {
			t.Fatalf("want exactly the quoted (string) event detected, got:\n%s", out)
		}
	})
	// Booleans are first-class in correlation: a bool true correlates
	// with a bool true, and not with the string "true".
	t.Run("bool-correlation", func(t *testing.T) {
		query := `
EVENT StuckArmed
WHEN UNLESS(HOT h, COOL c, 10 seconds)
WHERE {h.armed = c.armed}
CONSISTENCY middle`
		events := `insert,1,HOT,1000,inf,armed=true
insert,2,COOL,4000,inf,armed=true
insert,3,HOT,2000,inf,armed=false
insert,4,COOL,5000,inf,armed='false'
`
		q, e := writeFiles(t, query, events, "events.csv")
		code, out, errb := run(t, "-query", q, "-events", e, "-cti", "5000")
		if code != 0 {
			t.Fatalf("exit %d, stderr %q", code, errb)
		}
		if !strings.Contains(out, "-- 1 surviving detection(s)") {
			t.Fatalf("expected only the bool-vs-string mismatch to survive, got:\n%s", out)
		}
	})
}

// TestBatchErrorsCarryLineNumbers pins the located decode error.
func TestBatchErrorsCarryLineNumbers(t *testing.T) {
	events := "insert,1,HOT,1000,inf,sensor=A\ninsert,notanid,HOT,2000,inf\n"
	q, e := writeFiles(t, quickstartQuery, events, "events.csv")
	code, _, errb := run(t, "-query", q, "-events", e)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, ":2:") {
		t.Fatalf("error does not locate line 2: %q", errb)
	}
}

func TestBatchUsage(t *testing.T) {
	if code, _, _ := run(t); code != 2 {
		t.Fatalf("missing flags: exit %d, want 2", code)
	}
}

// TestBatchQuarantineExitsNonZero pins the Query.Err check: a query
// quarantined mid-run (here by a panicking subscriber) must fail the
// process, not exit 0 with partial output. The pre-fix CLI never
// consulted Err and reported success.
func TestBatchQuarantineExitsNonZero(t *testing.T) {
	testHook = func(sys *cedr.System, q *cedr.Query) {
		q.Subscribe(func(e cedr.Event) {
			if !e.IsCTI() {
				panic("subscriber exploded")
			}
		})
	}
	defer func() { testHook = nil }()
	q, e := writeFiles(t, quickstartQuery, quickstartCSV, "events.csv")
	code, _, errb := run(t, "-query", q, "-events", e, "-cti", "5000")
	if code != 1 {
		t.Fatalf("quarantined run exited %d, want 1 (stderr %q)", code, errb)
	}
	if !strings.Contains(errb, "query quarantined") || !strings.Contains(errb, "subscriber exploded") {
		t.Fatalf("stderr does not name the quarantine: %q", errb)
	}
}

// TestBatchDurabilityFailureExitsNonZero pins the System.Err check: when
// the write-ahead log cannot accept a record the system fails stop, and
// the CLI must exit non-zero naming the failure rather than printing a
// clean summary over a truncated durable history.
func TestBatchDurabilityFailureExitsNonZero(t *testing.T) {
	testHook = func(sys *cedr.System, q *cedr.Query) {
		// A payload value outside the WAL's value domains: the append
		// fails, tripping fail-stop before any file I/O misbehaves.
		sys.Push(cedr.NewEvent(99, "HOT", 0, cedr.Forever,
			cedr.Payload{"bad": []string{"not", "loggable"}}))
	}
	defer func() { testHook = nil }()
	wal := filepath.Join(t.TempDir(), "cedr.wal")
	q, e := writeFiles(t, quickstartQuery, quickstartCSV, "events.csv")
	code, _, errb := run(t, "-query", q, "-events", e, "-cti", "5000", "-wal", wal)
	if code != 1 {
		t.Fatalf("failed-WAL run exited %d, want 1 (stderr %q)", code, errb)
	}
	if !strings.Contains(errb, "durability failure") {
		t.Fatalf("stderr does not name the durability failure: %q", errb)
	}
}

// TestBatchDurableRun sanity-checks the -wal flag's happy path: the run
// succeeds and leaves a non-empty log behind.
func TestBatchDurableRun(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "cedr.wal")
	q, e := writeFiles(t, quickstartQuery, quickstartCSV, "events.csv")
	code, out, errb := run(t, "-query", q, "-events", e, "-cti", "5000", "-wal", wal)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "-- 2 surviving detection(s)") {
		t.Fatalf("expected 2 detections, got:\n%s", out)
	}
	if fi, err := os.Stat(wal); err != nil || fi.Size() == 0 {
		t.Fatalf("write-ahead log missing or empty: %v", err)
	}
}

func TestBatchExplain(t *testing.T) {
	q, _ := writeFiles(t, quickstartQuery, quickstartCSV, "events.csv")
	code, out, errb := run(t, "-query", q, "-explain")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if out == "" {
		t.Fatal("explain printed nothing")
	}
}
