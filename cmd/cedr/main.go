// Command cedr runs CEDR queries — over an event file (batch mode), or
// as a long-running network server (serve mode).
//
// Batch:
//
//	cedr -query q.cedr -events events.csv [-consistency strong|middle|weak] \
//	     [-cti 1000] [-wal cedr.wal] [-metrics]
//
// Serve:
//
//	cedr serve -listen :4617 [-http :8080] [-wal cedr.wal]
//
// The event file is CSV (one event per line, see internal/eventio):
//
//	kind,id,type,vs,ve,field=value,...
//
// where kind is "insert", "retract" or "cti" (cti lines use only vs),
// and ve may be "inf". Values parse as int64, then float64, then the
// booleans "true"/"false", otherwise string; quote a value ('true' or
// "1.5") to force a string. Lines starting with '#' are comments and
// lines may be up to 1 MiB long. Files ending in .json or .ndjson use
// the canonical event JSON instead. Events are pushed in file order
// with arrival times 0,1,2,...; pass -cti N to inject a provider sync
// point every N ticks of Sync time instead of reading CTIs from the
// file.
//
// Exit status: 0 on success; 1 when the run fails, including a query
// quarantined by a panic or input the write-ahead log could not make
// durable — errors a subscriber would otherwise never see on stdout;
// 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	cedr "repro"
	"repro/internal/delivery"
	"repro/internal/eventio"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// testHook lets tests inject faults (a panicking subscriber, an
// unloggable event) between registration and the run, to pin the exit
// status contract for quarantine and durability failures. Nil outside
// tests.
var testHook func(*cedr.System, *cedr.Query)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "serve" {
		os.Exit(runServe(args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(runBatch(args, os.Stdout, os.Stderr))
}

// runBatch is batch mode: register one query, push one event file,
// print the output. Factored from main so the exit-status contract —
// in particular that quarantine and durability errors are reported and
// non-zero, not silently swallowed — is testable in-process.
func runBatch(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cedr", flag.ContinueOnError)
	fs.SetOutput(stderr)
	queryPath := fs.String("query", "", "path to the .cedr query file")
	eventsPath := fs.String("events", "", "path to the event file (.csv, .json, .ndjson)")
	level := fs.String("consistency", "", "override: strong, middle, weak")
	weakM := fs.Int64("weakM", 0, "memory bound (ticks) for -consistency weak")
	ctiEvery := fs.Int64("cti", 0, "inject a sync point every N ticks of Sync time")
	walPath := fs.String("wal", "", "write-ahead log path (durable run; replays existing records first)")
	showMetrics := fs.Bool("metrics", false, "print monitor metrics")
	explain := fs.Bool("explain", false, "print the compiled plan and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "cedr:", err)
		return 1
	}

	if *queryPath == "" || (*eventsPath == "" && !*explain) {
		fs.Usage()
		return 2
	}
	src, err := os.ReadFile(*queryPath)
	if err != nil {
		return fail(err)
	}

	var sys *cedr.System
	if *walPath != "" {
		if sys, err = cedr.Open(*walPath); err != nil {
			return fail(err)
		}
		defer sys.Close()
	} else {
		sys = cedr.New()
	}

	var opts []cedr.QueryOption
	switch *level {
	case "":
	case "strong":
		opts = append(opts, cedr.WithSpec(cedr.Strong()))
	case "middle":
		opts = append(opts, cedr.WithSpec(cedr.Middle()))
	case "weak":
		opts = append(opts, cedr.WithSpec(cedr.Weak(temporal.Duration(*weakM))))
	default:
		return fail(fmt.Errorf("unknown consistency level %q", *level))
	}
	q, err := sys.Register(string(src), opts...)
	if err != nil {
		return fail(err)
	}
	if testHook != nil {
		testHook(sys, q)
	}

	if *explain {
		fmt.Fprint(stdout, q.Explain())
		return 0
	}

	events, err := readEvents(*eventsPath)
	if err != nil {
		return fail(err)
	}
	if *ctiEvery > 0 {
		events = delivery.Deliver(events.SortBySync(),
			delivery.Ordered(temporal.Duration(*ctiEvery)))
	} else {
		events = events.WithArrivalTimes()
	}

	q.Subscribe(func(e cedr.Event) {
		if e.IsCTI() {
			return
		}
		fmt.Fprintf(stdout, "%s\n", e)
	})
	sys.Run(events)

	// A quarantined query or a failed write-ahead log produces partial
	// output that looks complete; surface both as a non-zero exit.
	if err := q.Err(); err != nil {
		return fail(fmt.Errorf("query quarantined: %w", err))
	}
	if err := sys.Err(); err != nil {
		return fail(fmt.Errorf("durability failure: %w", err))
	}

	alerts := q.Alerts()
	fmt.Fprintf(stdout, "-- %d surviving detection(s)\n", len(alerts))
	if *showMetrics {
		for i, m := range q.Metrics() {
			fmt.Fprintf(stdout, "-- stage %d: in=%d out=%d retractions=%d blocked=%d maxState=%d replays=%d dropped=%d\n",
				i, m.InputEvents, m.OutputEvents(), m.OutputRetractions,
				m.BlockedEvents, m.MaxState, m.Replays, m.Dropped)
		}
	}
	if *walPath != "" {
		if err := sys.Close(); err != nil {
			return fail(fmt.Errorf("durability failure: %w", err))
		}
	}
	return 0
}

// readEvents loads an event file, choosing the codec by extension:
// .json/.ndjson the canonical event JSON, everything else the CSV line
// format. Long lines (up to eventio.MaxLine) and boolean payload values
// are handled by the shared decoder.
func readEvents(path string) (stream.Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	lower := strings.ToLower(path)
	if strings.HasSuffix(lower, ".json") || strings.HasSuffix(lower, ".ndjson") {
		return eventio.ReadJSONStream(f, path)
	}
	return eventio.ReadCSV(f, path)
}
