// Command cedr runs a CEDR query over an event file.
//
//	cedr -query q.cedr -events events.csv [-consistency strong|middle|weak] \
//	     [-cti 1000] [-metrics]
//
// The event file is CSV: one event per line,
//
//	kind,id,type,vs,ve,field=value,...
//
// where kind is "insert", "retract" or "cti" (cti lines use only vs), and
// ve may be "inf". Values parse as int64 when possible, otherwise float64,
// otherwise string. Lines starting with '#' are comments. Events are
// pushed in file order with arrival times 0,1,2,...; pass -cti N to inject
// a provider sync point every N ticks of Sync time instead of reading CTIs
// from the file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	cedr "repro"
	"repro/internal/delivery"
	"repro/internal/stream"
	"repro/internal/temporal"
)

func main() {
	queryPath := flag.String("query", "", "path to the .cedr query file")
	eventsPath := flag.String("events", "", "path to the CSV event file")
	level := flag.String("consistency", "", "override: strong, middle, weak")
	weakM := flag.Int64("weakM", 0, "memory bound (ticks) for -consistency weak")
	ctiEvery := flag.Int64("cti", 0, "inject a sync point every N ticks of Sync time")
	showMetrics := flag.Bool("metrics", false, "print monitor metrics")
	explain := flag.Bool("explain", false, "print the compiled plan and exit")
	flag.Parse()

	if *queryPath == "" || (*eventsPath == "" && !*explain) {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*queryPath)
	must(err)

	sys := cedr.New()
	var q *cedr.Query
	switch *level {
	case "":
		q, err = sys.Register(string(src))
	case "strong":
		q, err = sys.Register(string(src), cedr.WithSpec(cedr.Strong()))
	case "middle":
		q, err = sys.Register(string(src), cedr.WithSpec(cedr.Middle()))
	case "weak":
		q, err = sys.Register(string(src), cedr.WithSpec(cedr.Weak(temporal.Duration(*weakM))))
	default:
		must(fmt.Errorf("unknown consistency level %q", *level))
	}
	must(err)

	if *explain {
		fmt.Print(q.Explain())
		return
	}

	events, err := readEvents(*eventsPath)
	must(err)
	if *ctiEvery > 0 {
		events = delivery.Deliver(events.SortBySync(),
			delivery.Ordered(temporal.Duration(*ctiEvery)))
	} else {
		events = events.WithArrivalTimes()
	}

	q.Subscribe(func(e cedr.Event) {
		if e.IsCTI() {
			return
		}
		fmt.Printf("%s\n", e)
	})
	sys.Run(events)

	alerts := q.Alerts()
	fmt.Printf("-- %d surviving detection(s)\n", len(alerts))
	if *showMetrics {
		for i, m := range q.Metrics() {
			fmt.Printf("-- stage %d: in=%d out=%d retractions=%d blocked=%d maxState=%d replays=%d dropped=%d\n",
				i, m.InputEvents, m.OutputEvents(), m.OutputRetractions,
				m.BlockedEvents, m.MaxState, m.Replays, m.Dropped)
		}
	}
}

func readEvents(path string) (stream.Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out stream.Stream
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}

func parseLine(line string) (cedr.Event, error) {
	parts := strings.Split(line, ",")
	kind := strings.ToLower(strings.TrimSpace(parts[0]))
	if kind == "cti" {
		if len(parts) < 2 {
			return cedr.Event{}, fmt.Errorf("cti needs a timestamp")
		}
		t, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return cedr.Event{}, err
		}
		return cedr.NewCTI(cedr.Time(t)), nil
	}
	if len(parts) < 5 {
		return cedr.Event{}, fmt.Errorf("need kind,id,type,vs,ve")
	}
	id, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil {
		return cedr.Event{}, fmt.Errorf("bad id: %v", err)
	}
	typ := strings.TrimSpace(parts[2])
	vs, err := strconv.ParseInt(strings.TrimSpace(parts[3]), 10, 64)
	if err != nil {
		return cedr.Event{}, fmt.Errorf("bad vs: %v", err)
	}
	ve := cedr.Forever
	if s := strings.TrimSpace(parts[4]); s != "inf" && s != "∞" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return cedr.Event{}, fmt.Errorf("bad ve: %v", err)
		}
		ve = cedr.Time(v)
	}
	payload := cedr.Payload{}
	for _, kv := range parts[5:] {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		i := strings.IndexByte(kv, '=')
		if i < 0 {
			return cedr.Event{}, fmt.Errorf("bad field %q", kv)
		}
		payload[kv[:i]] = parseValue(kv[i+1:])
	}
	switch kind {
	case "insert":
		return cedr.NewEvent(cedr.ID(id), typ, cedr.Time(vs), ve, payload), nil
	case "retract":
		return cedr.NewRetraction(cedr.ID(id), typ, cedr.Time(vs), ve, payload), nil
	}
	return cedr.Event{}, fmt.Errorf("unknown kind %q", kind)
}

func parseValue(s string) any {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cedr:", err)
		os.Exit(1)
	}
}
