package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	cedr "repro"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/delivery"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/wal"
	"repro/internal/workload"
)

// BenchResult is the machine-readable record emitted per benchmark as
// BENCH_<name>.json — the contract CI and future PRs consume to track the
// performance trajectory (see ROADMAP.md "Performance").
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	EventsPerS  float64 `json:"events_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	// P99LatencyNs is the 99th-percentile closed-loop latency, set only
	// by the -serve-bench suite (omitempty keeps every other artifact
	// byte-compatible).
	P99LatencyNs float64 `json:"p99_latency_ns,omitempty"`
	// Multi-core scaling fields, set only by the -cpus suite (omitempty
	// keeps the single-core baseline JSONs byte-compatible): the
	// GOMAXPROCS the entry ran under, the shard count, and the speedup
	// relative to the same configuration at one core.
	Cpus           int     `json:"cpus,omitempty"`
	Shards         int     `json:"shards,omitempty"`
	SpeedupVsCpus1 float64 `json:"speedup_vs_cpus1,omitempty"`
}

// cidrQuery is the paper's §3.1 UNLESS query, the workhorse of both the
// gated pattern benchmarks and the -cpus multi-core scaling suite.
const cidrQuery = `
EVENT MissedRestart
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours), RESTART AS z, 5 minutes)
WHERE CorrelationKey(Machine_Id, EQUAL)
SC(each, consume)`

// cidrTemplate is the per-machine parameterized form of cidrQuery, used by
// the standing-query fabric benchmarks: one instance per bound Machine_Id.
const cidrTemplate = `
EVENT MissedRestart
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours), RESTART AS z, 5 minutes)
WHERE CorrelationKey(Machine_Id, EQUAL) AND [Machine_Id Equal $m]
SC(each, consume)`

// gatedBenches is the regression-gated benchmark set: every headline
// number from the ROADMAP performance tables. checkBaselines fails the run
// when any of them falls more than regressionTolerance below its committed
// floor (scaled by the calibration anchor), and -update-baselines
// re-records exactly this set (plus the anchor) under bench/baselines.
var gatedBenches = []string{
	"pattern_cidr07_end_to_end",
	"pattern_cidr07_sharded_1",
	"pattern_cidr07_sharded_8",
	"pattern_sequence_ablation_incremental",
	"pattern_keyindex",
	"figure8_middle_disordered",
	"monitor_repair_path",
	"monitor_checkpoint",
	"wal_append",
	"wal_recovery_replay",
	"fabric_registration_storm",
	"fabric_mixed_fleet_10k",
}

// gatedSet is the gated names as a set, optionally with the calibration
// anchor — the one definition the best-of-3 sampling, the baseline
// recorder and the missing-baseline check all share.
func gatedSet(withAnchor bool) map[string]bool {
	set := make(map[string]bool, len(gatedBenches)+1)
	for _, n := range gatedBenches {
		set[n] = true
	}
	if withAnchor {
		set[calibrationBench] = true
	}
	return set
}

// runBenchSuite executes the monitor- and pattern-centric benchmark set
// in-process via testing.Benchmark and writes one BENCH_*.json per entry
// into dir (dir == "" skips the per-entry artifacts — the update path uses
// this so re-recording floors does not litter the invoker's directory).
// When baselineDir is non-empty, results are additionally gated against
// the committed baselines there (checkBaselines); with update set, the
// committed baselines are instead re-recorded in place from the fresh
// results, so a perf PR updates every floor with one command.
func runBenchSuite(dir string, seed int64, baselineDir string, update bool) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}

	type entry struct {
		name   string
		events int // delivered items, for events/s; 0 = not reported
		bench  func(b *testing.B)
	}

	fig8 := func(spec consistency.Spec, orderly bool) (stream.Stream, func(b *testing.B)) {
		cfg := core.DefaultFig8()
		cfg.Events = 300
		cfg.Seed = seed
		src := workload.UniformEvents(workload.Uniform{
			Seed: cfg.Seed, Events: cfg.Events, Groups: 5,
			Spacing: cfg.Spacing, Lifetime: temporal.Duration(cfg.Lifetime)})
		var dcfg delivery.Config
		if orderly {
			dcfg = delivery.Ordered(cfg.DenseCTIPeriod)
		} else {
			dcfg = delivery.Disordered(cfg.Seed, cfg.SparseCTI, cfg.StragglerDelay, cfg.StragglerProb)
		}
		delivered := delivery.Deliver(src, dcfg)
		return delivered, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op := operators.NewAggregate(operators.Count, "", "g")
				out, _ := consistency.RunStreams(op, spec, delivered)
				if len(out) == 0 {
					b.Fatal("no output")
				}
			}
		}
	}

	monitor := func(disordered bool) (stream.Stream, func(b *testing.B)) {
		src := workload.StockTicks(workload.DefaultTicks())
		var dcfg delivery.Config
		if disordered {
			dcfg = delivery.Disordered(seed, 5*temporal.Second, 3*temporal.Second, 0.1)
		} else {
			dcfg = delivery.Ordered(5 * temporal.Second)
		}
		delivered := delivery.Deliver(src, dcfg)
		return delivered, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op := operators.NewSelect(func(event.Payload) bool { return true })
				consistency.RunStreams(op, consistency.Middle(), delivered)
			}
		}
	}

	var entries []entry
	for _, lv := range []struct {
		name string
		spec consistency.Spec
	}{
		{"strong", consistency.Strong()},
		{"middle", consistency.Middle()},
		{"weak", consistency.Weak(0)},
	} {
		for _, orderly := range []bool{true, false} {
			suffix := "disordered"
			if orderly {
				suffix = "ordered"
			}
			delivered, fn := fig8(lv.spec, orderly)
			entries = append(entries, entry{
				name:   fmt.Sprintf("figure8_%s_%s", lv.name, suffix),
				events: len(delivered),
				bench:  fn,
			})
		}
	}
	fastDelivered, fastFn := monitor(false)
	entries = append(entries, entry{name: "monitor_fast_path", events: len(fastDelivered), bench: fastFn})
	repairDelivered, repairFn := monitor(true)
	entries = append(entries, entry{name: "monitor_repair_path", events: len(repairDelivered), bench: repairFn})

	// Checkpoint dimension: the delta-driven versioned path under a
	// straggler-heavy stream — journal-mark snapshots, rollback-in-place
	// repair, base-slide checkpointing — through a stateful incremental
	// sequence matcher. This is the path the COW/undo-journal rewrite
	// replaced clone-and-replay on; its floor is gated so checkpoint capture
	// cannot silently regress back to O(state) copying.
	ckptSrc, _ := workload.MachineEvents(workload.DefaultMachines())
	ckptDelivered := delivery.Deliver(ckptSrc,
		delivery.Disordered(seed, 30*temporal.Minute, 15*temporal.Minute, 0.2))
	const ckptQuery = `EVENT Pairs WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 12 hours)
WHERE {x.Machine_Id = y.Machine_Id} SC(each, consume)`
	ckptPlan, err := plan.Compile(ckptQuery)
	if err != nil {
		return err
	}
	entries = append(entries, entry{
		name:   "monitor_checkpoint",
		events: len(ckptDelivered),
		bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := consistency.NewMonitor(ckptPlan.Stages[0].Clone(), consistency.Middle())
				for _, e := range ckptDelivered {
					m.Push(0, e)
				}
				m.Finish()
			}
		},
	})

	// Shard dimension: the key-partitioned parallel runtime over a wide
	// grouped-aggregation workload. On multi-core hosts this records the
	// real parallel speedup; on single-core CI it records the runtime's
	// overhead (see BenchmarkShardCriticalPath for the projected number).
	shardCfg := workload.Uniform{Seed: seed, Events: 4000, Groups: 64, Spacing: 4, Lifetime: 10}
	shardSrc := workload.UniformEvents(shardCfg)
	shardDelivered := delivery.Deliver(shardSrc,
		delivery.Disordered(seed, 100*temporal.Duration(shardCfg.Spacing),
			30*temporal.Duration(shardCfg.Spacing), 0.1))
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		entries = append(entries, entry{
			name:   fmt.Sprintf("sharded_aggregate_middle_shards_%d", shards),
			events: len(shardDelivered),
			bench: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, _, err := engine.RunShardedOp(
						func() operators.Op { return operators.NewAggregate(operators.Count, "", "g") },
						consistency.Middle(), shards, engine.RouteByAttr("g", shards), shardDelivered)
					if err != nil {
						b.Fatal(err)
					}
					if len(out) == 0 {
						b.Fatal("no output")
					}
				}
			},
		})
	}

	// Pattern-matching dimension: the §3.1 UNLESS query end-to-end through
	// language + plan + engine (the incremental matcher tree), plus the
	// sequence-matching ablation pair. BENCH_pattern_cidr07_end_to_end.json
	// is the artifact the CI regression gate compares against its committed
	// baseline (see checkBaselines).
	patternSrc, _ := workload.MachineEvents(workload.DefaultMachines())
	patternDelivered := delivery.Deliver(patternSrc, delivery.Ordered(10*temporal.Minute))
	entries = append(entries, entry{
		name:   "pattern_cidr07_end_to_end",
		events: len(patternDelivered),
		bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := cedr.New()
				q, err := sys.Register(cidrQuery, cedr.WithSpec(consistency.Middle()))
				if err != nil {
					b.Fatal(err)
				}
				sys.Run(patternDelivered)
				if len(q.Alerts()) == 0 {
					b.Fatal("no alerts")
				}
			}
		},
	})
	// The same query at fleet scale (fleetStream, shared with the -cpus
	// multi-core scaling suite) through the key-partitioned runtime, at
	// 1 shard (the plain single-monitor path) and 8. The stream must be
	// long enough that steady-state matching, not the 8× registration and
	// log-growth warmup, dominates: with the old 24-machine/5-cycle stream
	// (~400 events) the 8-shard entry measured warmup and inverted on a
	// single core. At fleet scale the partitioned per-shard state makes
	// matching cheaper in total, so shards=8 must beat shards=1 even on
	// one core — that relation is what the pair of floors gates.
	shardedDelivered := fleetStream()
	for _, shards := range []int{1, 8} {
		shards := shards
		entries = append(entries, entry{
			name:   fmt.Sprintf("pattern_cidr07_sharded_%d", shards),
			events: len(shardedDelivered),
			bench: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sys := cedr.New()
					q, err := sys.Register(cidrQuery, cedr.WithSpec(consistency.Middle()), cedr.WithShards(shards))
					if err != nil {
						b.Fatal(err)
					}
					sys.Run(shardedDelivered)
					if len(q.Alerts()) == 0 {
						b.Fatal("no alerts")
					}
				}
			},
		})
	}
	const seqQuery = `EVENT Pairs WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 12 hours)
WHERE {x.Machine_Id = y.Machine_Id} SC(each, consume)`
	for _, v := range []struct {
		name string
		opts []plan.Option
	}{
		{"pattern_sequence_ablation_incremental", nil},
		{"pattern_sequence_ablation_no_pushdown", []plan.Option{plan.WithoutPushdown()}},
		{"pattern_sequence_ablation_semi_naive", []plan.Option{plan.WithoutSpecialization()}},
	} {
		p, err := plan.Compile(seqQuery, v.opts...)
		if err != nil {
			return err
		}
		entries = append(entries, entry{
			name:   v.name,
			events: len(patternDelivered),
			bench: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m := consistency.NewMonitor(p.Stages[0].Clone(), consistency.Middle())
					for _, e := range patternDelivered {
						m.Push(0, e)
					}
					m.Finish()
				}
			},
		})
	}

	// Key-index stress: the correlation-pushdown win over a wide key
	// domain (64 machines — the flat join's fan-out crosses every key;
	// the keyed join touches one bucket). BENCH_pattern_keyindex.json is
	// gated so the pushdown cannot silently regress.
	keyIdxSrc, _ := workload.MachineEvents(workload.Machines{
		Seed: 1, Machines: 64, Cycles: 4,
		RestartDeadline: 5 * temporal.Minute, MissProb: 0.3,
		CycleGap: 30 * temporal.Minute,
	})
	keyIdxDelivered := delivery.Deliver(keyIdxSrc, delivery.Ordered(10*temporal.Minute))
	keyIdxPlan, err := plan.Compile(seqQuery)
	if err != nil {
		return err
	}
	entries = append(entries, entry{
		name:   "pattern_keyindex",
		events: len(keyIdxDelivered),
		bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := consistency.NewMonitor(keyIdxPlan.Stages[0].Clone(), consistency.Middle())
				for _, e := range keyIdxDelivered {
					m.Push(0, e)
				}
				m.Finish()
			}
		},
	})

	// Durability dimension (ungated this cycle — recorded to establish the
	// trajectory before committing floors): raw WAL append throughput with
	// default fsync batching, and crash-recovery replay of the CIDR07 query
	// through engine.Restore. Durability is opt-in, so neither touches the
	// gated hot-path numbers above.
	walDir, err := os.MkdirTemp("", "cedrbench-wal")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	entries = append(entries, entry{
		name:   "wal_append",
		events: len(patternDelivered),
		bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				log, err := wal.Open(filepath.Join(walDir, "append.wal"))
				if err != nil {
					b.Fatal(err)
				}
				for _, ev := range patternDelivered {
					kind := wal.KindEvent
					if ev.IsCTI() {
						kind = wal.KindCTI
					}
					if _, err := log.Append(wal.Record{Kind: kind, Ev: ev}); err != nil {
						b.Fatal(err)
					}
				}
				if err := log.Close(); err != nil {
					b.Fatal(err)
				}
				if err := os.Remove(filepath.Join(walDir, "append.wal")); err != nil {
					b.Fatal(err)
				}
			}
		},
	})
	// Pre-build the log to recover from: one durable run over the CIDR07
	// workload, crashed without Finish (the recovery-relevant shape).
	replayPath := filepath.Join(walDir, "replay.wal")
	if err := func() error {
		sys, err := cedr.Open(replayPath)
		if err != nil {
			return err
		}
		if _, err := sys.Register(cidrQuery, cedr.WithSpec(consistency.Middle())); err != nil {
			return err
		}
		for _, ev := range patternDelivered {
			sys.Push(ev)
		}
		return sys.Close()
	}(); err != nil {
		return err
	}
	entries = append(entries, entry{
		name:   "wal_recovery_replay",
		events: len(patternDelivered),
		bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys, err := cedr.Open(replayPath)
				if err != nil {
					b.Fatal(err)
				}
				if len(sys.Queries()) != 1 {
					b.Fatal("recovery lost the query")
				}
				if err := sys.Close(); err != nil {
					b.Fatal(err)
				}
			}
		},
	})

	// Standing-query fabric dimension (ISSUE 9): thousands of standing
	// queries over one stream. The mixed fleet is 2k registrations of the
	// identical fleet-wide query (one shared chain, 2k endpoints) plus 8k
	// template instances spread over 64 machine bindings (64 shared keyed
	// chains). fabric_registration_storm gates registrations/s through the
	// compile + sharing-identity cache; fabric_mixed_fleet_10k gates
	// end-to-end ev/s with key routing on. The _unshared entry is the
	// ungated reference the >=10x acceptance ratio is read against: the
	// same 10k queries as private chains on a broadcast engine.
	fabricSrc, _ := workload.MachineEvents(workload.Machines{
		Seed: 1, Machines: 64, Cycles: 6,
		RestartDeadline: 5 * temporal.Minute, MissProb: 0.3,
		CycleGap: 30 * temporal.Minute,
	})
	fabricDelivered := delivery.Deliver(fabricSrc, delivery.Ordered(10*temporal.Minute))
	const fabricFleet = 10000
	const fabricIdentical = 2000
	registerFleet := func(b *testing.B, sys *cedr.System, extra ...cedr.QueryOption) []*cedr.Query {
		qs := make([]*cedr.Query, 0, fabricFleet)
		for i := 0; i < fabricFleet; i++ {
			opts := []cedr.QueryOption{cedr.WithSpec(consistency.Middle())}
			src := cidrQuery
			if i >= fabricIdentical {
				src = cidrTemplate
				opts = append(opts, cedr.WithTemplate(cedr.Payload{"m": workload.MachineID(i % 64)}))
			}
			q, err := sys.Register(src, append(opts, extra...)...)
			if err != nil {
				b.Fatal(err)
			}
			qs = append(qs, q)
		}
		return qs
	}
	// Sanity-check a sample (the fleet-wide query plus one instance per
	// binding) rather than all 10k endpoints: scanning every Alerts() slice
	// costs a third of the iteration and would gate the verification loop,
	// not the fabric.
	fleetAlerts := func(b *testing.B, qs []*cedr.Query) {
		total := len(qs[0].Alerts())
		for i := 0; i < 64; i++ {
			total += len(qs[fabricIdentical+i].Alerts())
		}
		if total == 0 {
			b.Fatal("fleet detected nothing")
		}
	}
	entries = append(entries, entry{
		name:   "fabric_registration_storm",
		events: fabricFleet, // events/s reads as registrations/s here
		bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := cedr.New(cedr.WithRouting())
				registerFleet(b, sys)
			}
		},
	})
	entries = append(entries, entry{
		name:   "fabric_mixed_fleet_10k",
		events: len(fabricDelivered),
		bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := cedr.New(cedr.WithRouting())
				qs := registerFleet(b, sys)
				sys.Run(fabricDelivered)
				fleetAlerts(b, qs)
			}
		},
	})
	// The unshared reference runs a stream prefix: at ~14µs per
	// chain-push, 10k private chains over the full stream take minutes
	// per iteration without changing the per-event rate the ratio is
	// computed from (events/s is length-normalized, and matcher state
	// only grows past the prefix, so the prefix rate flatters the
	// unshared side — the conservative direction for the >=10x claim).
	unsharedPrefix := fabricDelivered
	if len(unsharedPrefix) > 300 {
		unsharedPrefix = unsharedPrefix[:300]
	}
	entries = append(entries, entry{
		name:   "fabric_mixed_fleet_10k_unshared",
		events: len(unsharedPrefix),
		bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := cedr.New()
				qs := registerFleet(b, sys, cedr.WithoutSharing())
				sys.Run(unsharedPrefix)
				fleetAlerts(b, qs)
			}
		},
	})

	sampled := gatedSet(true)

	var results []BenchResult
	for _, e := range entries {
		// Gated benchmarks (and the calibration anchor) are sampled
		// best-of-3: single-sample wall numbers on a loaded or single-core
		// host swing well past the 20% gate tolerance (the sharded
		// benchmarks especially — goroutine scheduling noise), and the
		// fastest of three is the most reproducible estimate of what the
		// code can do. Both sides of the gate — the committed floor and
		// the fresh measurement — use the same rule.
		runs := 1
		if sampled[e.name] {
			runs = 3
		}
		// Settle the heap between entries: without this, allocation-heavy
		// benchmarks inflate the GC pacing target for every entry after
		// them, and the measured number depends on suite order rather than
		// the code under test.
		runtime.GC()
		res := testing.Benchmark(e.bench)
		for r := 1; r < runs; r++ {
			again := testing.Benchmark(e.bench)
			if float64(again.T.Nanoseconds())/float64(again.N) <
				float64(res.T.Nanoseconds())/float64(res.N) {
				res = again
			}
		}
		out := BenchResult{
			Name:        e.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if e.events > 0 && res.T > 0 {
			out.EventsPerS = float64(e.events) * float64(res.N) / res.T.Seconds()
		}
		where := ""
		if dir != "" {
			data, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				return err
			}
			path := filepath.Join(dir, "BENCH_"+strings.ReplaceAll(e.name, "/", "_")+".json")
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				return err
			}
			where = "  -> " + path
		}
		fmt.Printf("%-40s %12.0f ns/op %12.0f events/s %8d allocs/op%s\n",
			e.name, out.NsPerOp, out.EventsPerS, out.AllocsPerOp, where)
		results = append(results, out)
	}
	if update {
		return updateBaselines(results, baselineDir)
	}
	if baselineDir != "" {
		return checkBaselines(results, baselineDir)
	}
	return nil
}

// updateBaselines re-records the committed baseline JSONs for the gated
// benchmark set (and the calibration anchor) from the fresh results.
func updateBaselines(results []BenchResult, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	want := gatedSet(true)
	for _, res := range results {
		if !want[res.Name] {
			continue
		}
		delete(want, res.Name)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+res.Name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("baseline updated: %s (%.0f events/s)\n", path, res.EventsPerS)
	}
	if len(want) > 0 {
		names := make([]string, 0, len(want))
		for n := range want {
			names = append(names, n)
		}
		return fmt.Errorf("update-baselines: suite produced no result for %s", strings.Join(names, ", "))
	}
	return nil
}

// regressionTolerance is how far events/s may fall below a committed
// baseline before the run fails: 20%, per the CI performance gate.
const regressionTolerance = 0.20

// calibrationBench anchors the gate across hardware: when both the
// committed baselines and the fresh run include it, every baseline is
// scaled by the fresh/committed ratio of this monitor-bound benchmark, so
// the gate measures the pattern path's speed relative to the machine it
// runs on rather than the machine the baseline was recorded on.
const calibrationBench = "monitor_fast_path"

// checkBaselines compares fresh results against the committed baseline
// JSONs in dir (only benchmarks that have a baseline file are gated) and
// fails on a regression beyond the tolerance.
func checkBaselines(results []BenchResult, dir string) error {
	loadBase := func(name string) (BenchResult, bool, error) {
		data, err := os.ReadFile(filepath.Join(dir, "BENCH_"+name+".json"))
		if err != nil {
			if os.IsNotExist(err) {
				return BenchResult{}, false, nil
			}
			return BenchResult{}, false, err
		}
		var base BenchResult
		if err := json.Unmarshal(data, &base); err != nil {
			return BenchResult{}, false, fmt.Errorf("baseline BENCH_%s.json: %w", name, err)
		}
		return base, true, nil
	}

	// The scale is clamped: calibration is meant to absorb hardware
	// differences, not code changes to the monitor itself — an unbounded
	// scale would let a monitor regression silently lower the pattern
	// floor (or a monitor speedup spuriously raise it). The bounds are
	// asymmetric: hosts up to 4× slower than the baseline recorder are
	// plausible CI hardware and must not hard-fail an unchanged tree
	// (the gate still catches the ~25× cliff back to semi-naive), while
	// upward swings are capped tight because a genuinely faster machine
	// speeds the gated bench along with the anchor. Swings beyond the
	// clamp surface in the printed factor and in the monitor's own locked
	// equivalence/trajectory checks.
	const scaleMin, scaleMax = 0.25, 2.0
	scale := 1.0
	if calBase, ok, err := loadBase(calibrationBench); err != nil {
		return err
	} else if ok && calBase.EventsPerS > 0 {
		for _, res := range results {
			if res.Name == calibrationBench && res.EventsPerS > 0 {
				scale = res.EventsPerS / calBase.EventsPerS
				clamped := ""
				if scale < scaleMin {
					scale, clamped = scaleMin, " (clamped)"
				} else if scale > scaleMax {
					scale, clamped = scaleMax, " (clamped)"
				}
				fmt.Printf("baseline calibration via %s: this machine runs at %.2f× the baseline host%s\n",
					calibrationBench, scale, clamped)
				break
			}
		}
	}

	// Every gated benchmark must have a committed baseline: a silently
	// missing file would un-gate the number it protects.
	var failures []string
	gated := gatedSet(false)

	// Per-benchmark before/after summary, printed for every fresh result
	// that has a committed baseline (gated or merely recorded).
	fmt.Println("| benchmark | committed ev/s | floor | fresh ev/s | change | verdict |")
	fmt.Println("|---|---|---|---|---|---|")
	checked := 0
	for _, res := range results {
		if res.Name == calibrationBench {
			continue
		}
		base, ok, err := loadBase(res.Name)
		if err != nil {
			return err
		}
		if !ok || base.EventsPerS <= 0 || res.EventsPerS <= 0 {
			if gated[res.Name] {
				delete(gated, res.Name)
				switch {
				case !ok:
					failures = append(failures, fmt.Sprintf(
						"%s: gated benchmark has no committed baseline under %s (run cedrbench -update-baselines)",
						res.Name, dir))
				case base.EventsPerS <= 0:
					failures = append(failures, fmt.Sprintf(
						"%s: committed baseline under %s has no positive events_per_sec (corrupt or hand-edited?)",
						res.Name, dir))
				default:
					failures = append(failures, fmt.Sprintf(
						"%s: fresh run reported no positive events/s to gate on", res.Name))
				}
			}
			continue
		}
		delete(gated, res.Name)
		checked++
		floor := base.EventsPerS * scale * (1 - regressionTolerance)
		verdict := "ok"
		if res.EventsPerS < floor {
			verdict = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f events/s is below the floor %.0f (committed %.0f × calibration %.2f − %d%%)",
				res.Name, res.EventsPerS, floor, base.EventsPerS, scale, int(regressionTolerance*100)))
		}
		fmt.Printf("| %s | %.0f | %.0f | %.0f | %+.1f%% | %s |\n",
			res.Name, base.EventsPerS, floor, res.EventsPerS,
			100*(res.EventsPerS/(base.EventsPerS*scale)-1), verdict)
	}
	for n := range gated {
		failures = append(failures, fmt.Sprintf(
			"%s: gated benchmark missing from the suite results", n))
	}
	if checked == 0 {
		return fmt.Errorf("baseline check: no baseline files matched under %s", dir)
	}
	if len(failures) > 0 {
		return fmt.Errorf("performance regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
