package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/delivery"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/workload"
)

// BenchResult is the machine-readable record emitted per benchmark as
// BENCH_<name>.json — the contract CI and future PRs consume to track the
// performance trajectory (see ROADMAP.md "Performance").
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	EventsPerS  float64 `json:"events_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
}

// runBenchSuite executes the monitor-centric benchmark set in-process via
// testing.Benchmark and writes one BENCH_*.json per entry into dir.
func runBenchSuite(dir string, seed int64) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}

	type entry struct {
		name   string
		events int // delivered items, for events/s; 0 = not reported
		bench  func(b *testing.B)
	}

	fig8 := func(spec consistency.Spec, orderly bool) (stream.Stream, func(b *testing.B)) {
		cfg := core.DefaultFig8()
		cfg.Events = 300
		cfg.Seed = seed
		src := workload.UniformEvents(workload.Uniform{
			Seed: cfg.Seed, Events: cfg.Events, Groups: 5,
			Spacing: cfg.Spacing, Lifetime: temporal.Duration(cfg.Lifetime)})
		var dcfg delivery.Config
		if orderly {
			dcfg = delivery.Ordered(cfg.DenseCTIPeriod)
		} else {
			dcfg = delivery.Disordered(cfg.Seed, cfg.SparseCTI, cfg.StragglerDelay, cfg.StragglerProb)
		}
		delivered := delivery.Deliver(src, dcfg)
		return delivered, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op := operators.NewAggregate(operators.Count, "", "g")
				out, _ := consistency.RunStreams(op, spec, delivered)
				if len(out) == 0 {
					b.Fatal("no output")
				}
			}
		}
	}

	monitor := func(disordered bool) (stream.Stream, func(b *testing.B)) {
		src := workload.StockTicks(workload.DefaultTicks())
		var dcfg delivery.Config
		if disordered {
			dcfg = delivery.Disordered(seed, 5*temporal.Second, 3*temporal.Second, 0.1)
		} else {
			dcfg = delivery.Ordered(5 * temporal.Second)
		}
		delivered := delivery.Deliver(src, dcfg)
		return delivered, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op := operators.NewSelect(func(event.Payload) bool { return true })
				consistency.RunStreams(op, consistency.Middle(), delivered)
			}
		}
	}

	var entries []entry
	for _, lv := range []struct {
		name string
		spec consistency.Spec
	}{
		{"strong", consistency.Strong()},
		{"middle", consistency.Middle()},
		{"weak", consistency.Weak(0)},
	} {
		for _, orderly := range []bool{true, false} {
			suffix := "disordered"
			if orderly {
				suffix = "ordered"
			}
			delivered, fn := fig8(lv.spec, orderly)
			entries = append(entries, entry{
				name:   fmt.Sprintf("figure8_%s_%s", lv.name, suffix),
				events: len(delivered),
				bench:  fn,
			})
		}
	}
	fastDelivered, fastFn := monitor(false)
	entries = append(entries, entry{name: "monitor_fast_path", events: len(fastDelivered), bench: fastFn})
	repairDelivered, repairFn := monitor(true)
	entries = append(entries, entry{name: "monitor_repair_path", events: len(repairDelivered), bench: repairFn})

	// Shard dimension: the key-partitioned parallel runtime over a wide
	// grouped-aggregation workload. On multi-core hosts this records the
	// real parallel speedup; on single-core CI it records the runtime's
	// overhead (see BenchmarkShardCriticalPath for the projected number).
	shardCfg := workload.Uniform{Seed: seed, Events: 4000, Groups: 64, Spacing: 4, Lifetime: 10}
	shardSrc := workload.UniformEvents(shardCfg)
	shardDelivered := delivery.Deliver(shardSrc,
		delivery.Disordered(seed, 100*temporal.Duration(shardCfg.Spacing),
			30*temporal.Duration(shardCfg.Spacing), 0.1))
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		entries = append(entries, entry{
			name:   fmt.Sprintf("sharded_aggregate_middle_shards_%d", shards),
			events: len(shardDelivered),
			bench: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, _ := engine.RunShardedOp(
						func() operators.Op { return operators.NewAggregate(operators.Count, "", "g") },
						consistency.Middle(), shards, engine.RouteByAttr("g", shards), shardDelivered)
					if len(out) == 0 {
						b.Fatal("no output")
					}
				}
			},
		})
	}

	for _, e := range entries {
		res := testing.Benchmark(e.bench)
		out := BenchResult{
			Name:        e.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if e.events > 0 && res.T > 0 {
			out.EventsPerS = float64(e.events) * float64(res.N) / res.T.Seconds()
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+strings.ReplaceAll(e.name, "/", "_")+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("%-32s %12.0f ns/op %12.0f events/s %8d allocs/op  -> %s\n",
			e.name, out.NsPerOp, out.EventsPerS, out.AllocsPerOp, path)
	}
	return nil
}
