package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	cedr "repro"
	"repro/internal/consistency"
	"repro/internal/server"
)

// runServeBench records the network server's loopback numbers as
// ungated BENCH_server_loopback_*.json artifacts (establishing the
// trajectory before committing floors, like the WAL entries were):
//
//   - server_loopback_throughput: sustained events/s for one source
//     session streaming the 192-machine CIDR07 fleet workload through
//     a registered MissedRestart query over TCP, pipelined pushes,
//     one Sync at the end. The full client→frame→engine→WAL-codec
//     round trip, minus subscription egress.
//   - server_loopback_latency: closed-loop push→alert latency against
//     an immediate-output query — each push waits for its output frame
//     to come back through the subscription before the next is sent.
//     ns_op is the mean round trip; p99_latency_ns the 99th percentile.
func runServeBench(dir string) error {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var results []BenchResult

	// --- Throughput: pipelined ingest at fleet scale.
	events := fleetStream()
	thr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys := cedr.New()
			srv := server.New(sys)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			c, err := server.Dial(ln.Addr().String(), 0)
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Open("bench"); err != nil {
				b.Fatal(err)
			}
			q, err := c.Register(cidrQuery, server.RegOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, e := range events {
				if err := c.Push(e); err != nil {
					b.Fatal(err)
				}
			}
			if err := c.Sync(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if st, err := c.Status(q.ID); err != nil || st.Results == 0 {
				b.Fatalf("no output after ingest: %v %+v", err, st)
			}
			c.Close()
			srv.Shutdown()
			b.StartTimer()
		}
	})
	thrRes := BenchResult{
		Name:        "server_loopback_throughput",
		Iterations:  thr.N,
		NsPerOp:     float64(thr.T.Nanoseconds()) / float64(thr.N),
		BytesPerOp:  thr.AllocedBytesPerOp(),
		AllocsPerOp: thr.AllocsPerOp(),
	}
	if thr.T > 0 {
		thrRes.EventsPerS = float64(len(events)) * float64(thr.N) / thr.T.Seconds()
	}
	results = append(results, thrRes)

	// --- Latency: closed-loop push→alert round trip.
	lat, err := serveLatency()
	if err != nil {
		return err
	}
	results = append(results, lat)

	for _, res := range results {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+res.Name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("%-34s %12.0f ns/op %12.0f events/s  p99=%0.0fns  -> %s\n",
			res.Name, res.NsPerOp, res.EventsPerS, res.P99LatencyNs, path)
	}
	return nil
}

// serveLatency measures the closed-loop round trip: push one event,
// wait for its output frame, repeat. An immediate-output query (middle
// consistency, single-term pattern) makes every push produce exactly
// one subscribed output.
func serveLatency() (BenchResult, error) {
	const (
		warmup  = 500
		samples = 5000
	)
	sys := cedr.New()
	srv := server.New(sys)
	defer srv.Shutdown()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return BenchResult{}, err
	}
	go srv.Serve(ln)
	c, err := server.Dial(ln.Addr().String(), 0)
	if err != nil {
		return BenchResult{}, err
	}
	defer c.Close()
	if err := c.Open("bench"); err != nil {
		return BenchResult{}, err
	}
	q, err := c.Register(`EVENT Echo WHEN HOT h CONSISTENCY middle`,
		server.RegOptions{Spec: specPtr(consistency.Middle())})
	if err != nil {
		return BenchResult{}, err
	}
	if err := c.Subscribe(q.ID); err != nil {
		return BenchResult{}, err
	}
	roundTrip := func(i int) (time.Duration, error) {
		e := cedr.NewEvent(cedr.ID(i+1), "HOT", cedr.Time(i*10), cedr.Forever,
			cedr.Payload{"n": int64(i)})
		start := time.Now()
		if err := c.Push(e); err != nil {
			return 0, err
		}
		if err := c.Flush(); err != nil {
			return 0, err
		}
		select {
		case out, ok := <-c.Outputs():
			if !ok {
				return 0, fmt.Errorf("connection closed: %v", c.Err())
			}
			_ = out
			return time.Since(start), nil
		case <-time.After(10 * time.Second):
			return 0, fmt.Errorf("no output within 10s at sample %d", i)
		}
	}
	for i := 0; i < warmup; i++ {
		if _, err := roundTrip(i); err != nil {
			return BenchResult{}, err
		}
	}
	lats := make([]time.Duration, 0, samples)
	var total time.Duration
	for i := 0; i < samples; i++ {
		d, err := roundTrip(warmup + i)
		if err != nil {
			return BenchResult{}, err
		}
		lats = append(lats, d)
		total += d
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[(len(lats)*99)/100]
	res := BenchResult{
		Name:         "server_loopback_latency",
		Iterations:   samples,
		NsPerOp:      float64(total.Nanoseconds()) / float64(samples),
		P99LatencyNs: float64(p99.Nanoseconds()),
	}
	if total > 0 {
		res.EventsPerS = float64(samples) / total.Seconds()
	}
	return res, nil
}

func specPtr(s cedr.Spec) *cedr.Spec { return &s }
