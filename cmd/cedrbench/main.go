// Command cedrbench regenerates the paper's evaluation artifacts:
//
//	cedrbench -fig 8       # Figure 8: consistency × orderliness tradeoffs
//	cedrbench -fig 9       # Figure 9: the (B, M) consistency spectrum
//	cedrbench -baselines   # Section 1: CEDR vs point-DSMS vs pub/sub
//	cedrbench -ablations   # DESIGN.md ablations (consumption, …)
//	cedrbench -bench       # micro-benchmarks -> machine-readable BENCH_*.json
//	cedrbench -serve-bench # network-server loopback throughput/latency suite
//	cedrbench -update-baselines  # re-record the gated perf floors in bench/baselines
//	cedrbench              # everything (tables only; -bench stays opt-in)
//
// Absolute numbers depend on the simulated transport; the shapes — who
// blocks, who retracts, who forgets, who stays exact — are the paper's
// claims and are asserted by the test suite (internal/core).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
)

func main() { os.Exit(run()) }

// run carries the real main so profile writers (and any other defers) fire
// before the process exits with a status code.
func run() int {
	fig := flag.Int("fig", 0, "figure to regenerate (8 or 9; 0 = all)")
	baselines := flag.Bool("baselines", false, "run the Section 1 baseline comparison")
	ablations := flag.Bool("ablations", false, "run the design ablations")
	bench := flag.Bool("bench", false, "run monitor micro-benchmarks and write BENCH_*.json")
	cpus := flag.String("cpus", "", "comma-separated GOMAXPROCS values (e.g. 1,2,4,8): run the multi-core sharded scaling suite and write BENCH_multicore_*.json")
	serveBench := flag.Bool("serve-bench", false, "run the network-server loopback suite and write BENCH_server_loopback_*.json")
	benchOut := flag.String("benchout", ".", "directory for BENCH_*.json files")
	baseline := flag.String("baseline", "", "directory of committed BENCH_*.json baselines; fail on >20% events/s regression")
	update := flag.Bool("update-baselines", false, "run the bench suite and re-record the gated baseline JSONs in place (default dir bench/baselines)")
	seed := flag.Int64("seed", 42, "delivery-simulator seed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	if *serveBench {
		if err := runServeBench(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		return 0
	}
	if *cpus != "" {
		list, err := parseCPUList(*cpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		if err := runMulticoreSuite(*benchOut, list); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		return 0
	}
	if *bench || *update {
		dir := *baseline
		out := *benchOut
		if *update {
			if dir == "" {
				dir = "bench/baselines"
			}
			if !*bench {
				// Pure floor re-recording: don't litter the invoker's
				// directory with the per-entry BENCH_*.json artifacts.
				out = ""
			}
		}
		if err := runBenchSuite(out, *seed, dir, *update); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		return 0
	}

	all := *fig == 0 && !*baselines && !*ablations

	if *fig == 8 || all {
		cfg := core.DefaultFig8()
		cfg.Seed = *seed
		fmt.Println("Figure 8 — consistency tradeoffs (grouped count over a disordered stream)")
		fmt.Println("paper's qualitative claims: strong blocks under disorder; middle trades")
		fmt.Println("blocking for retraction volume at equal state; weak shrinks state and")
		fmt.Println("output by forgetting — and is the only level that loses correctness.")
		fmt.Println()
		fmt.Print(core.FormatFig8(core.Figure8(cfg)))
		fmt.Println()
	}
	if *fig == 9 || all {
		cfg := core.DefaultFig8()
		cfg.Seed = *seed
		cfg.Events = 300
		fmt.Println("Figure 9 — the (B, M) consistency spectrum (meaningful triangle B <= M)")
		fmt.Println("corners: (0,0) weakest; (0,∞) middle; (∞,∞) strong.")
		fmt.Println()
		fmt.Print(core.FormatFig9(core.Figure9(cfg, core.DefaultFig9Axis())))
		fmt.Println()
	}
	if *baselines || all {
		fmt.Println("Section 1 — comparison against the paper's strawmen")
		fmt.Println()
		fmt.Print(core.FormatBaseline(core.BaselineComparison(*seed)))
		fmt.Println()
	}
	if *ablations || all {
		fmt.Println("Ablation — instance consumption (SEQUENCE over n A/B pairs)")
		for _, n := range []int{8, 32, 128} {
			reuse, consume := core.ConsumptionAblation(n)
			fmt.Printf("  n=%4d   reuse: %6d outputs   consume: %4d outputs\n", n, reuse, consume)
		}
	}
	return 0
}
