package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	cedr "repro"
	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/workload"
)

// fleetStream builds the fleet-scale CIDR07 workload the sharded
// benchmarks run on: 192 machines over 20 install/shutdown/restart
// cycles, delivered in order with a 10-minute CTI period. Long enough
// that steady-state matching — not registration and log-growth warmup —
// dominates the measurement.
func fleetStream() stream.Stream {
	src, _ := workload.MachineEvents(workload.Machines{
		Seed: 1, Machines: 192, Cycles: 20,
		RestartDeadline: 5 * temporal.Minute, MissProb: 0.3,
		CycleGap: 30 * temporal.Minute,
	})
	return delivery.Deliver(src, delivery.Ordered(10*temporal.Minute))
}

// parseCPUList parses the -cpus flag: comma-separated positive GOMAXPROCS
// values, e.g. "1,2,4,8". The list is deduplicated and sorted, and must
// include 1 — every speedup in the artifact is relative to the same
// configuration pinned to one core, so the anchor has to be measured.
func parseCPUList(s string) ([]int, error) {
	seen := map[int]bool{}
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("cpus: %q is not a positive integer", f)
		}
		seen[n] = true
	}
	if !seen[1] {
		seen[1] = true // the speedup anchor
	}
	cpus := make([]int, 0, len(seen))
	for n := range seen {
		cpus = append(cpus, n)
	}
	sort.Ints(cpus)
	return cpus, nil
}

// runMulticoreSuite measures how the 8-shard CIDR07 pipeline scales with
// cores: the same fleet-scale benchmark the gated single-core floors run,
// repeated under each requested GOMAXPROCS, best-of-3, with the speedup
// over the one-core run recorded per entry. One BENCH_multicore_cpusN.json
// is written per point; CI uploads them as ungated artifacts (absolute
// multi-core numbers depend on the runner, so they chart the trajectory
// rather than gate it). Requesting more cpus than the host has is allowed
// — GOMAXPROCS can exceed NumCPU — but the entry is marked so a flat
// curve past the physical core count is not misread as a scaling bug.
func runMulticoreSuite(dir string, cpus []int) error {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	const shards = 8
	in := fleetStream()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	fmt.Printf("multi-core sharded scaling: CIDR07 @%d shards, %d events, host has %d cpus\n",
		shards, len(in), runtime.NumCPU())

	var results []BenchResult
	var anchor float64 // events/s at cpus=1
	for _, c := range cpus {
		runtime.GOMAXPROCS(c)
		bench := func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := cedr.New()
				q, err := sys.Register(cidrQuery,
					cedr.WithSpec(consistency.Middle()), cedr.WithShards(shards))
				if err != nil {
					b.Fatal(err)
				}
				sys.Run(in)
				if len(q.Alerts()) == 0 {
					b.Fatal("no alerts")
				}
			}
		}
		runtime.GC()
		res := testing.Benchmark(bench)
		for r := 1; r < 3; r++ {
			again := testing.Benchmark(bench)
			if float64(again.T.Nanoseconds())/float64(again.N) <
				float64(res.T.Nanoseconds())/float64(res.N) {
				res = again
			}
		}
		out := BenchResult{
			Name:        fmt.Sprintf("multicore_cidr07_sharded%d_cpus%d", shards, c),
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			Cpus:        c,
			Shards:      shards,
		}
		if res.T > 0 {
			out.EventsPerS = float64(len(in)) * float64(res.N) / res.T.Seconds()
		}
		if c == 1 {
			anchor = out.EventsPerS
		}
		if anchor > 0 {
			out.SpeedupVsCpus1 = out.EventsPerS / anchor
		}
		note := ""
		if c > runtime.NumCPU() {
			note = "  (oversubscribed: exceeds physical cores)"
		}
		fmt.Printf("  cpus=%-2d %12.0f events/s   speedup x%.2f%s\n",
			c, out.EventsPerS, out.SpeedupVsCpus1, note)
		results = append(results, out)
	}
	runtime.GOMAXPROCS(prev)

	for _, res := range results {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("BENCH_multicore_cpus%d.json", res.Cpus))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  -> %s\n", path)
	}
	return nil
}
