// Command figures regenerates the paper's worked-example tables
// (Figures 1–6 and 10) from the live model code in internal/history, so the
// printed rows can be compared against the paper verbatim.
//
// Usage:
//
//	figures            # print every figure
//	figures -fig 5     # print one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/history"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to print (0 = all)")
	flag.Parse()

	printers := map[int]func(){
		1: figure1, 2: figure2, 3: figure3, 4: figure4,
		5: figure5, 6: figure6, 7: figure7, 10: figure10,
	}
	if *fig != 0 {
		p, ok := printers[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: no figure %d (have 1-7, 10)\n", *fig)
			os.Exit(1)
		}
		p()
		return
	}
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 10} {
		printers[n]()
		fmt.Println()
	}
}

func figure1() {
	t, labels := history.Figure1()
	fmt.Println("Figure 1. Example – Conceptual stream representation")
	fmt.Print(t.FormatConceptual(labels))
}

func figure2() {
	t, idL, kL := history.Figure2()
	fmt.Println("Figure 2. Example – Tritemporal history table")
	fmt.Print(t.FormatTritemporal(idL, kL))
}

func figure3() {
	l, r, kL := history.Figure3()
	fmt.Println("Figure 3. Example – Two history tables")
	fmt.Print(l.FormatOccurrence(kL))
	fmt.Println()
	fmt.Print(r.FormatOccurrence(kL))
}

func figure4() {
	l, r, kL := history.Figure3()
	fmt.Println("Figure 4. Example – Two reduced history tables")
	fmt.Print(l.Reduce().FormatOccurrence(kL))
	fmt.Println()
	fmt.Print(r.Reduce().FormatOccurrence(kL))
}

func figure5() {
	l, r, kL := history.Figure3()
	fmt.Println("Figure 5. Example – Two canonical history tables (to 3)")
	fmt.Print(l.CanonicalTo(3).FormatOccurrence(kL))
	fmt.Println()
	fmt.Print(r.CanonicalTo(3).FormatOccurrence(kL))
	fmt.Printf("logically equivalent to 3: %v; at 3: %v\n",
		l.EquivalentTo(r, 3), l.EquivalentAt(r, 3))
}

func figure6() {
	t, kL := history.Figure6()
	ann := t.Annotate()
	fmt.Println("Figure 6. Example – Annotated history table")
	fmt.Print(history.FormatAnnotated(ann, kL))
	fmt.Printf("sync points: %v\n", history.SyncPoints(ann))
}

func figure7() {
	fmt.Println("Figure 7. Anatomy of a CEDR operator")
	fmt.Println(`
              ┌───────────────────────────────────┐
 guarantees   │ consistency monitor               │  consistency
 on input ──► │   ┌───────────────────┐           │  guarantees ──►
 time         │   │ alignment buffer  │           │
              │   └───────┬───────────┘           │
 stream of    │           ▼                       │  stream of
 input state  │   ┌───────────────────┐  operator │  output state
 updates ───► │   │ operational module│◄─ state   │  updates ──►
              │   └───────────────────┘           │
              └───────────────────────────────────┘
 (implemented by internal/consistency.Monitor wrapping an operators.Op)`)
}

func figure10() {
	t, idL := history.Figure10()
	fmt.Println("Figure 10. Example – Unitemporal ideal history table")
	fmt.Print(t.FormatUnitemporal(idL))
}
