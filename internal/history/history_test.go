package history

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/temporal"
)

func TestReduceKeepsEarliestOe(t *testing.T) {
	tbl := BiTable{
		{K: 1, O: iv(1, 10), C: iv(0, inf)},
		{K: 1, O: iv(1, 5), C: iv(1, inf)},
		{K: 2, O: iv(2, 7), C: iv(2, inf)},
	}
	red := tbl.Reduce()
	if len(red) != 2 {
		t.Fatalf("len = %d", len(red))
	}
	if red[0].O.End != 5 || red[1].O.End != 7 {
		t.Errorf("reduce kept wrong rows: %+v", red)
	}
}

func TestReduceIdempotent(t *testing.T) {
	tbl := randomBiTable(rand.New(rand.NewSource(7)), 50)
	once := tbl.Reduce()
	twice := once.Reduce()
	if len(once) != len(twice) {
		t.Fatalf("reduce not idempotent: %d vs %d", len(once), len(twice))
	}
	for i := range once {
		if once[i].factKey() != twice[i].factKey() || once[i].C != twice[i].C {
			t.Fatalf("row %d changed on second reduce", i)
		}
	}
}

func TestTruncate(t *testing.T) {
	tbl := BiTable{
		{K: 1, O: iv(1, 10)},
		{K: 2, O: iv(5, inf)},
		{K: 3, O: iv(9, 12)},
	}
	tr := tbl.TruncateTo(8)
	if len(tr) != 2 {
		t.Fatalf("len = %d, want 2 (row with Os>8 dropped)", len(tr))
	}
	if tr[0].O.End != 8 || tr[1].O.End != 8 {
		t.Errorf("Oe not capped: %+v", tr)
	}
}

func TestCanonicalAtSnapshots(t *testing.T) {
	tbl := BiTable{
		{K: 1, O: iv(1, 5)},
		{K: 2, O: iv(3, inf)},
	}
	at2 := tbl.CanonicalAt(2)
	if len(at2) != 1 || at2[0].K != 1 {
		t.Errorf("at 2: %+v", at2)
	}
	at4 := tbl.CanonicalAt(4)
	if len(at4) != 2 {
		t.Errorf("at 4: %+v", at4)
	}
	at7 := tbl.CanonicalAt(7)
	if len(at7) != 1 || at7[0].K != 2 {
		t.Errorf("at 7: %+v", at7)
	}
}

func TestEquivalenceReflexiveAndCEDRInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		tbl := randomBiTable(rng, 30)
		if !tbl.EquivalentTo(tbl, 100) {
			t.Fatal("equivalence not reflexive")
		}
		// Perturb CEDR times arbitrarily: logical equivalence must hold
		// (Definition 1 projects out Cs, Ce).
		other := tbl.Clone()
		for i := range other {
			other[i].C = iv(temporal.Time(rng.Intn(1000)), inf)
		}
		if !tbl.EquivalentTo(other, 100) {
			t.Fatal("equivalence must ignore CEDR time")
		}
		if !tbl.EquivalentAt(other, 50) {
			t.Fatal("equivalence-at must ignore CEDR time")
		}
	}
}

func TestEquivalenceSeesContentChange(t *testing.T) {
	a := BiTable{{K: 1, O: iv(1, 10), V: iv(1, 20)}}
	b := BiTable{{K: 1, O: iv(1, 10), V: iv(1, 21)}}
	if a.EquivalentTo(b, 100) {
		t.Error("different valid times must not be equivalent")
	}
	c := BiTable{{K: 1, O: iv(1, 10), V: iv(1, 20), Payload: event.Payload{"x": int64(1)}}}
	if a.EquivalentTo(c, 100) {
		t.Error("different payloads must not be equivalent")
	}
}

// Retraction chains delivered in different packagings converge: shrinking
// Oe in one step is equivalent to shrinking it in two.
func TestEquivalencePackagingInsensitive(t *testing.T) {
	oneStep := BiTable{
		{K: 1, O: iv(1, inf), C: iv(1, inf)},
		{K: 1, O: iv(1, 4), C: iv(2, inf)},
	}
	twoSteps := BiTable{
		{K: 1, O: iv(1, inf), C: iv(1, inf)},
		{K: 1, O: iv(1, 8), C: iv(2, inf)},
		{K: 1, O: iv(1, 4), C: iv(3, inf)},
	}
	if !oneStep.EquivalentTo(twoSteps, 100) {
		t.Error("packaging of retractions must not matter")
	}
}

func TestInOrder(t *testing.T) {
	ordered := []AnnRow{
		{BiRow: BiRow{C: iv(1, inf)}, Sync: 1},
		{BiRow: BiRow{C: iv(2, inf)}, Sync: 3},
		{BiRow: BiRow{C: iv(3, inf)}, Sync: 5},
	}
	if !InOrder(ordered) {
		t.Error("ordered stream misreported")
	}
	disordered := []AnnRow{
		{BiRow: BiRow{C: iv(1, inf)}, Sync: 5},
		{BiRow: BiRow{C: iv(2, inf)}, Sync: 3},
	}
	if InOrder(disordered) {
		t.Error("disordered stream misreported")
	}
}

func TestSyncPointsDenseWhenOrdered(t *testing.T) {
	// A fully ordered stream has a sync point after every event.
	var tbl BiTable
	for i := 0; i < 10; i++ {
		tbl = append(tbl, BiRow{
			K: event.ID(i),
			O: iv(temporal.Time(i), inf),
			C: iv(temporal.Time(i), inf),
		})
	}
	pts := SyncPoints(tbl.Annotate())
	if len(pts) != 10 {
		t.Errorf("ordered stream sync points = %d, want 10", len(pts))
	}
}

func TestSyncPointsSparseWhenDisordered(t *testing.T) {
	// One very late event destroys all intermediate sync points.
	tbl := BiTable{
		{K: 1, O: iv(1, inf), C: iv(10, inf)},
		{K: 2, O: iv(5, inf), C: iv(11, inf)},
		{K: 3, O: iv(2, inf), C: iv(12, inf)}, // late: Sync 2 after Sync 5
	}
	pts := SyncPoints(tbl.Annotate())
	// Only the prefix {1} (before the inversion) and the full table
	// separate cleanly.
	if len(pts) != 2 {
		t.Errorf("sync points = %v, want 2", pts)
	}
}

func TestUniReduceAndIdeal(t *testing.T) {
	tbl := UniTable{
		{ID: 1, V: iv(1, 10), Payload: event.Payload{"p": "a"}},
		{ID: 1, V: iv(1, 5), Payload: event.Payload{"p": "a"}}, // retraction
		{ID: 2, V: iv(3, 3)}, // fully retracted
		{ID: 3, V: iv(4, 9), Payload: event.Payload{"p": "b"}},
	}
	ideal := tbl.Ideal()
	if len(ideal) != 2 {
		t.Fatalf("ideal rows = %d, want 2 (empty-validity dropped)", len(ideal))
	}
	if ideal[0].V != iv(1, 5) {
		t.Errorf("ID 1 final validity = %v, want [1, 5)", ideal[0].V)
	}
}

func TestFromEventsSkipsCTI(t *testing.T) {
	evs := []event.Event{
		event.NewInsert(1, "A", 1, 10, nil),
		event.NewCTI(5),
		event.NewRetract(1, "A", 1, 5, nil),
	}
	tbl := FromEvents(evs)
	if len(tbl) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl))
	}
	if got := tbl.Ideal()[0].V; got != iv(1, 5) {
		t.Errorf("final validity = %v", got)
	}
}

func TestStarCoalescesMeetingIntervals(t *testing.T) {
	// Definition 10: a payload whose lifetime is chopped into several insert
	// events coalesces to one event with the larger, equivalent lifetime.
	p := event.Payload{"x": int64(1)}
	chopped := UniTable{
		{ID: 1, V: iv(1, 5), Payload: p},
		{ID: 2, V: iv(5, 9), Payload: p},
		{ID: 3, V: iv(9, 12), Payload: p},
	}
	whole := UniTable{{ID: 9, V: iv(1, 12), Payload: p}}
	star := chopped.Star()
	if len(star) != 1 || star[0].V != iv(1, 12) {
		t.Fatalf("Star = %+v", star)
	}
	if !chopped.EquivalentStar(whole) {
		t.Error("chopped and whole lifetimes must be *-equivalent")
	}
}

func TestStarKeepsGaps(t *testing.T) {
	p := event.Payload{"x": int64(1)}
	gappy := UniTable{
		{ID: 1, V: iv(1, 5), Payload: p},
		{ID: 2, V: iv(6, 9), Payload: p}, // gap at [5,6)
	}
	star := gappy.Star()
	if len(star) != 2 {
		t.Fatalf("Star must keep the gap: %+v", star)
	}
}

func TestStarSeparatesPayloads(t *testing.T) {
	a := UniTable{
		{ID: 1, V: iv(1, 5), Payload: event.Payload{"x": int64(1)}},
		{ID: 2, V: iv(5, 9), Payload: event.Payload{"x": int64(2)}},
	}
	if len(a.Star()) != 2 {
		t.Error("different payloads must not coalesce")
	}
}

func TestStarIdempotentQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := randomUniTable(rng, 40)
		once := tbl.Star()
		twice := once.Star()
		return once.EqualFacts(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEquivalentStarIgnoresDeliveryOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := randomUniTable(rng, 60)
	shuffled := tbl.Clone()
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	if !tbl.EquivalentStar(shuffled) {
		t.Error("EquivalentStar must be order-insensitive")
	}
}

func TestShred(t *testing.T) {
	tbl := BiTable{{K: 1, O: iv(2, 5), V: iv(0, 10)}}
	sh, err := tbl.Shred(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sh) != 3 {
		t.Fatalf("pieces = %d, want 3", len(sh))
	}
	for i, r := range sh {
		want := iv(temporal.Time(2+i), temporal.Time(3+i))
		if r.O != want {
			t.Errorf("piece %d occurrence = %v, want %v", i, r.O, want)
		}
		if r.V != iv(0, 10) {
			t.Errorf("piece %d validity changed: %v", i, r.V)
		}
	}
}

func TestShredUnboundedNeedsHorizon(t *testing.T) {
	tbl := BiTable{{K: 1, O: iv(2, inf)}}
	if _, err := tbl.Shred(inf, inf); err == nil {
		t.Error("expected error for unbounded shred")
	}
	sh, err := tbl.Shred(inf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sh) != 3 {
		t.Errorf("pieces = %d, want 3 (capped at horizon)", len(sh))
	}
}

// ---------- helpers ----------

// randomBiTable builds well-formed retraction chains: each K has a fixed
// fact (valid time, payload) whose initial insert occurs over [os, ∞) and
// whose retractions only ever reduce Oe — the invariant the paper's model
// maintains (each retraction "reduces the Ce compared to the previous
// matching entry", and content is otherwise unchanged).
func randomBiTable(rng *rand.Rand, n int) BiTable {
	tbl := make(BiTable, 0, n)
	cs := temporal.Time(0)
	chains := rng.Intn(6) + 2
	for k := 0; k < chains && len(tbl) < n; k++ {
		os := temporal.Time(rng.Intn(50))
		v := iv(os, inf)
		oe := inf
		steps := rng.Intn(4) + 1
		for s := 0; s < steps && len(tbl) < n; s++ {
			if s > 0 {
				// Retraction: shrink Oe strictly.
				width := temporal.Time(rng.Intn(40) + 1)
				if oe == inf || os+width < oe {
					oe = os + width
				} else {
					oe = os + (oe-os)/2
				}
			}
			tbl = append(tbl, BiRow{
				K: event.ID(k), ID: event.ID(k),
				O: iv(os, oe),
				V: v,
				C: iv(cs, inf),
			})
			cs++
		}
	}
	return tbl
}

func randomUniTable(rng *rand.Rand, n int) UniTable {
	tbl := make(UniTable, 0, n)
	for i := 0; i < n; i++ {
		vs := temporal.Time(rng.Intn(40))
		ve := vs + temporal.Time(rng.Intn(20))
		tbl = append(tbl, UniRow{
			ID:      event.ID(i),
			V:       iv(vs, ve),
			Payload: event.Payload{"g": int64(rng.Intn(4))},
		})
	}
	return tbl
}
