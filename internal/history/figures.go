package history

import (
	"repro/internal/event"
	"repro/internal/temporal"
)

// This file constructs the worked examples of the paper as live model
// objects. They are exported so that cmd/figures can print them and the
// golden tests can verify every row against the paper verbatim.

// Identifiers used across the figures: lowercase e0/e1 are event IDs,
// uppercase E0–E2 are retraction-chain keys (the K column of Figure 2).
const (
	IDe0 event.ID = 0
	IDe1 event.ID = 1
	KE0  event.ID = 10
	KE1  event.ID = 11
	KE2  event.ID = 12
)

const inf = temporal.Infinity

func iv(s, e temporal.Time) temporal.Interval { return temporal.NewInterval(s, e) }

// Figure1 is the conceptual bitemporal stream representation of Section 2:
// at time 1 event e0 is inserted with validity [1, ∞); at time 2 its
// validity is modified to [1, 10); at time 3 it is modified to [1, 5) and e1
// is inserted with validity [4, 9).
func Figure1() (BiTable, Names) {
	t := BiTable{
		{ID: IDe0, V: iv(1, inf), O: iv(1, 2)},
		{ID: IDe0, V: iv(1, 10), O: iv(2, 3)},
		{ID: IDe0, V: iv(1, 5), O: iv(3, inf)},
		{ID: IDe1, V: iv(4, 9), O: iv(3, inf)},
	}
	return t, Labels(int(IDe0), "e0", int(IDe1), "e1")
}

// Figure2 is the tritemporal history table of Section 4, modeling a
// retraction and a modification simultaneously: the CEDR-time-2 entry put
// the valid-time change at occurrence time 5, which later turns out to be
// wrong (it should be 3) and is repaired by the entries at CEDR times 4–6.
func Figure2() (BiTable, Names, Names) {
	t := BiTable{
		{ID: IDe0, K: KE0, V: iv(1, inf), O: iv(1, 5), C: iv(1, 4)},
		{ID: IDe0, K: KE1, V: iv(1, 10), O: iv(5, inf), C: iv(2, 6)},
		{ID: IDe0, K: KE0, V: iv(1, inf), O: iv(1, 3), C: iv(4, inf)},
		{ID: IDe0, K: KE1, V: iv(1, 10), O: iv(5, 5), C: iv(5, inf)},
		{ID: IDe0, K: KE2, V: iv(1, 10), O: iv(3, inf), C: iv(6, inf)},
	}
	idLabels := Labels(int(IDe0), "e0")
	kLabels := Labels(int(KE0), "E0", int(KE1), "E1", int(KE2), "E2")
	return t, idLabels, kLabels
}

// Figure3 is the pair of non-canonical history tables of Section 4. The two
// underlying streams deliver the same logical content (E0's occurrence end
// shrinks to 3) in different packagings and orders.
func Figure3() (left, right BiTable, kLabels Names) {
	left = BiTable{
		{ID: IDe0, K: KE0, O: iv(1, 5), C: iv(1, 3)},
		{ID: IDe0, K: KE0, O: iv(1, 3), C: iv(3, inf)},
	}
	right = BiTable{
		{ID: IDe0, K: KE0, O: iv(1, inf), C: iv(1, 2)},
		{ID: IDe0, K: KE0, O: iv(1, 5), C: iv(2, inf)},
	}
	return left, right, Labels(int(KE0), "E0")
}

// Figure6 is the annotated history table example of Section 4: an insert
// with Sync = Os = 1 and a retraction with Sync = Oe = 5.
func Figure6() (BiTable, Names) {
	t := BiTable{
		{ID: IDe0, K: KE0, O: iv(1, 10), C: iv(0, 7)},
		{ID: IDe0, K: KE0, O: iv(1, 5), C: iv(7, 10)},
	}
	return t, Labels(int(KE0), "E0")
}

// Figure10 is the unitemporal ideal history table of Section 6.
func Figure10() (UniTable, Names) {
	t := UniTable{
		{ID: IDe0, V: iv(1, 5), Payload: event.Payload{"P": "P1"}},
		{ID: IDe1, V: iv(4, 9), Payload: event.Payload{"P": "P2"}},
	}
	return t, Labels(int(IDe0), "E0", int(IDe1), "E1")
}
