package history

import (
	"repro/internal/temporal"
)

// Temporal slicing at the model level (§3.2): for Q @ [to1, to2) # [tv1,
// tv2), among the tuples of Q's bitemporal output, keep only those valid
// between tv1 and tv2 and occurring between to1 and to2. The run-time
// (unitemporal) counterpart is operators.Slice; these methods implement the
// full bitemporal semantics for history-table analysis.

// SliceOccurrence keeps the rows whose occurrence interval intersects
// [to1, to2), clipping their occurrence intervals to the window.
func (t BiTable) SliceOccurrence(to1, to2 temporal.Time) BiTable {
	win := temporal.NewInterval(to1, to2)
	out := make(BiTable, 0, len(t))
	for _, r := range t {
		iv := r.O.Intersect(win)
		if iv.Empty() {
			continue
		}
		r.O = iv
		out = append(out, r)
	}
	return out
}

// SliceValid keeps the rows whose validity interval intersects [tv1, tv2),
// clipping their validity intervals to the window.
func (t BiTable) SliceValid(tv1, tv2 temporal.Time) BiTable {
	win := temporal.NewInterval(tv1, tv2)
	out := make(BiTable, 0, len(t))
	for _, r := range t {
		iv := r.V.Intersect(win)
		if iv.Empty() {
			continue
		}
		r.V = iv
		out = append(out, r)
	}
	return out
}

// Slice applies both slicing dimensions: Q @ [to1, to2) # [tv1, tv2).
func (t BiTable) Slice(to1, to2, tv1, tv2 temporal.Time) BiTable {
	return t.SliceOccurrence(to1, to2).SliceValid(tv1, tv2)
}
