package history

import (
	"sort"

	"repro/internal/event"
	"repro/internal/temporal"
)

// UniRow is one entry of a unitemporal history table (Figure 10): the
// Section 6 run-time setting where occurrence and valid time are merged into
// a single valid-time interval whose lifetime may be shortened by
// retractions. C records delivery (CEDR) times when the table is built from
// a physical stream; it is projected out by canonical comparisons.
type UniRow struct {
	ID      event.ID
	V       temporal.Interval
	Payload event.Payload
	C       temporal.Interval
}

// UniTable is a unitemporal history table.
type UniTable []UniRow

// FromEvents folds a physical stream (inserts, retractions, punctuation)
// into a unitemporal history table. CTIs carry no state and are skipped.
func FromEvents(evs []event.Event) UniTable {
	out := make(UniTable, 0, len(evs))
	for _, e := range evs {
		if e.IsCTI() {
			continue
		}
		out = append(out, UniRow{ID: e.ID, V: e.V, Payload: e.Payload, C: e.C})
	}
	return out
}

// Clone deep-copies the table.
func (t UniTable) Clone() UniTable {
	out := make(UniTable, len(t))
	for i, r := range t {
		r.Payload = r.Payload.Clone()
		out[i] = r
	}
	return out
}

// Reduce keeps, for each ID, only the entry with the earliest Ve — the
// unitemporal counterpart of bitemporal reduction, since every retraction of
// an ID reduces its Ve.
func (t UniTable) Reduce() UniTable {
	best := make(map[event.ID]int, len(t))
	for i, r := range t {
		j, seen := best[r.ID]
		if !seen || r.V.End < t[j].V.End {
			best[r.ID] = i
		}
	}
	idx := make([]int, 0, len(best))
	for _, i := range best {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make(UniTable, 0, len(idx))
	for _, i := range idx {
		out = append(out, t[i])
	}
	return out
}

// Ideal returns the ideal history table of Section 6: the canonical table to
// infinity with CEDR time projected out and fully-retracted facts (empty
// validity) removed. This is the equivalence-class representative that
// excludes retractions and out-of-order delivery, on which operator
// semantics are defined.
func (t UniTable) Ideal() UniTable {
	reduced := t.Reduce()
	out := make(UniTable, 0, len(reduced))
	for _, r := range reduced {
		if r.V.Empty() {
			continue
		}
		r.C = temporal.Interval{}
		out = append(out, r)
	}
	return out
}

// factKey projects out CEDR time and the ID for content comparisons. Note
// operator outputs mint fresh IDs, so semantic comparisons of operator
// results are on (V, Payload) only; Definition 7-9 describe outputs as
// (Vs, Ve, Payload) triples.
func (r UniRow) factKey() string {
	return r.V.String() + "§" + r.Payload.Key()
}

// EqualFacts compares two tables as multisets of (V, Payload) facts,
// ignoring IDs and CEDR time.
func (t UniTable) EqualFacts(o UniTable) bool {
	if len(t) != len(o) {
		return false
	}
	count := make(map[string]int, len(t))
	for _, r := range t {
		count[r.factKey()]++
	}
	for _, r := range o {
		count[r.factKey()]--
		if count[r.factKey()] < 0 {
			return false
		}
	}
	return true
}

// Star is the * operator of Definition 10: repeated application of
// coalescence until no two events with equal payloads have meeting validity
// intervals. The result is sorted by (payload, Vs) and is a canonical
// representation of the table's view history, suitable for view-update
// compliance checks (Definition 11).
//
// Under the paper's relation semantics (no duplicate payloads with
// overlapping intervals), coalescing merges exactly the chains of
// insert-events that chop one logical lifetime into pieces. Overlapping
// intervals with equal payloads are merged as well, which makes Star usable
// as a normal form for outputs of operators that may emit redundant pieces.
func (t UniTable) Star() UniTable {
	groups := make(map[string][]temporal.Interval)
	var order []string
	for _, r := range t {
		if r.V.Empty() {
			continue
		}
		k := r.Payload.Key()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r.V)
	}
	payloads := make(map[string]event.Payload)
	for _, r := range t {
		if _, ok := payloads[r.Payload.Key()]; !ok {
			payloads[r.Payload.Key()] = r.Payload
		}
	}
	sort.Strings(order)
	out := make(UniTable, 0, len(t))
	for _, k := range order {
		ivs := groups[k]
		sort.Slice(ivs, func(a, b int) bool {
			if ivs[a].Start != ivs[b].Start {
				return ivs[a].Start < ivs[b].Start
			}
			return ivs[a].End < ivs[b].End
		})
		merged := make([]temporal.Interval, 0, len(ivs))
		for _, iv := range ivs {
			n := len(merged)
			if n > 0 && merged[n-1].End >= iv.Start { // meets or overlaps
				if iv.End > merged[n-1].End {
					merged[n-1].End = iv.End
				}
				continue
			}
			merged = append(merged, iv)
		}
		for _, iv := range merged {
			out = append(out, UniRow{V: iv, Payload: payloads[k]})
		}
	}
	return out
}

// EquivalentStar reports whether the two tables describe the same view
// history: their ideal tables coalesce to identical normal forms. This is
// the comparison used by the well-behavedness oracle (Definition 6) and the
// view-update-compliance property tests (Definition 11).
func (t UniTable) EquivalentStar(o UniTable) bool {
	a, b := t.Ideal().Star(), o.Ideal().Star()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].V != b[i].V || a[i].Payload.Key() != b[i].Payload.Key() {
			return false
		}
	}
	return true
}

// SortByVs orders the table by (Vs, Ve, payload); convenient for golden
// tests and printing.
func (t UniTable) SortByVs() UniTable {
	out := t.Clone()
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].V.Start != out[b].V.Start {
			return out[a].V.Start < out[b].V.Start
		}
		if out[a].V.End != out[b].V.End {
			return out[a].V.End < out[b].V.End
		}
		return out[a].Payload.Key() < out[b].Payload.Key()
	})
	return out
}
