package history

import (
	"strings"
	"testing"

	"repro/internal/temporal"
)

// The golden tests in this file verify that the model reproduces the paper's
// worked examples (Figures 1–6 and 10) row for row.

func rowsOf(s string) []string {
	var out []string
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		out = append(out, strings.Join(strings.Fields(line), " "))
	}
	return out
}

func wantRows(t *testing.T, got string, want []string) {
	t.Helper()
	g := rowsOf(got)
	if len(g) != len(want) {
		t.Fatalf("row count = %d, want %d\n%s", len(g), len(want), got)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, g[i], want[i])
		}
	}
}

func TestFigure1Golden(t *testing.T) {
	table, labels := Figure1()
	wantRows(t, table.FormatConceptual(labels), []string{
		"ID Vs Ve Os Oe",
		"e0 1 ∞ 1 2",
		"e0 1 10 2 3",
		"e0 1 5 3 ∞",
		"e1 4 9 3 ∞",
	})
}

func TestFigure2Golden(t *testing.T) {
	table, idL, kL := Figure2()
	wantRows(t, table.FormatTritemporal(idL, kL), []string{
		"ID Vs Ve Os Oe Cs Ce K",
		"e0 1 ∞ 1 5 1 4 E0",
		"e0 1 10 5 ∞ 2 6 E1",
		"e0 1 ∞ 1 3 4 ∞ E0",
		"e0 1 10 5 5 5 ∞ E1",
		"e0 1 10 3 ∞ 6 ∞ E2",
	})
}

func TestFigure3Golden(t *testing.T) {
	left, right, kL := Figure3()
	wantRows(t, left.FormatOccurrence(kL), []string{
		"K Os Oe Cs Ce",
		"E0 1 5 1 3",
		"E0 1 3 3 ∞",
	})
	wantRows(t, right.FormatOccurrence(kL), []string{
		"K Os Oe Cs Ce",
		"E0 1 ∞ 1 2",
		"E0 1 5 2 ∞",
	})
}

// Figure 4: reduction retains, per K, only the entry with earliest Oe.
func TestFigure4ReductionGolden(t *testing.T) {
	left, right, kL := Figure3()
	wantRows(t, left.Reduce().FormatOccurrence(kL), []string{
		"K Os Oe Cs Ce",
		"E0 1 3 3 ∞",
	})
	wantRows(t, right.Reduce().FormatOccurrence(kL), []string{
		"K Os Oe Cs Ce",
		"E0 1 5 2 ∞",
	})
}

// Figure 5: truncation to occurrence time 3 yields the canonical tables.
func TestFigure5CanonicalGolden(t *testing.T) {
	left, right, kL := Figure3()
	wantRows(t, left.CanonicalTo(3).FormatOccurrence(kL), []string{
		"K Os Oe Cs Ce",
		"E0 1 3 3 ∞",
	})
	wantRows(t, right.CanonicalTo(3).FormatOccurrence(kL), []string{
		"K Os Oe Cs Ce",
		"E0 1 3 2 ∞",
	})
}

// "the two streams associated with the two tables in Figure 3 are logically
// equivalent to 3 and at 3."
func TestFigure3LogicalEquivalence(t *testing.T) {
	left, right, _ := Figure3()
	if !left.EquivalentTo(right, 3) {
		t.Error("Figure 3 streams must be logically equivalent to 3")
	}
	if !left.EquivalentAt(right, 3) {
		t.Error("Figure 3 streams must be logically equivalent at 3")
	}
	// They are NOT equivalent to 5: left's chain ends at 3, right's at 5.
	if left.EquivalentTo(right, 5) {
		t.Error("Figure 3 streams must differ to 5")
	}
}

func TestFigure6AnnotatedGolden(t *testing.T) {
	table, kL := Figure6()
	wantRows(t, FormatAnnotated(table.Annotate(), kL), []string{
		"K Sync Os Oe Cs Ce",
		"E0 1 1 10 0 7",
		"E0 5 1 5 7 10",
	})
}

func TestFigure6SyncPoints(t *testing.T) {
	table, _ := Figure6()
	ann := table.Annotate()
	pts := SyncPoints(ann)
	if len(pts) != 2 {
		t.Fatalf("sync points = %v, want 2", pts)
	}
	if pts[0] != (SyncPoint{To: 1, T: 0}) {
		t.Errorf("first sync point = %v", pts[0])
	}
	if pts[1] != (SyncPoint{To: 5, T: 7}) {
		t.Errorf("final sync point = %v", pts[1])
	}
	for _, p := range pts {
		if !IsSyncPoint(ann, p) {
			t.Errorf("enumerated point %v rejected by Definition 2", p)
		}
	}
	// A point that splits occurrence time but not CEDR time is not a sync
	// point.
	if IsSyncPoint(ann, SyncPoint{To: 1, T: 8}) {
		t.Error("(1, 8) must not be a sync point")
	}
}

func TestFigure10Golden(t *testing.T) {
	table, idL := Figure10()
	wantRows(t, table.FormatUnitemporal(idL), []string{
		"ID Vs Ve Payload",
		"E0 1 5 P1",
		"E1 4 9 P2",
	})
}

// Figure 2 narrative: "the net effect of all this is that at CEDR time 3,
// the stream ... contains two events, an insert and a modification that
// changes the valid time at occurrence time 5. At CEDR time 7, the stream
// describes the same valid time change, except at occurrence time 3."
func TestFigure2Narrative(t *testing.T) {
	table, _, _ := Figure2()
	// State as of CEDR time 3: only entries with Cs <= 3.
	var at3 BiTable
	for _, r := range table {
		if r.C.Start <= 3 {
			at3 = append(at3, r)
		}
	}
	red := at3.Reduce()
	if len(red) != 2 {
		t.Fatalf("reduced table at CEDR 3 has %d rows, want 2", len(red))
	}
	// E0 chain live over [1,5); E1 (the modification) from 5 on.
	if red[0].O != temporal.NewInterval(1, 5) {
		t.Errorf("insert occurrence = %v, want [1, 5)", red[0].O)
	}
	if red[1].O != temporal.NewInterval(5, temporal.Infinity) {
		t.Errorf("modification occurrence = %v, want [5, ∞)", red[1].O)
	}

	// Full table: E1 chain fully removed (empty occurrence interval),
	// E0 ends at 3, E2 runs [3, ∞) — same change, now at occurrence time 3.
	red = table.Reduce()
	byK := map[string]temporal.Interval{}
	for _, r := range red {
		switch r.K {
		case KE0:
			byK["E0"] = r.O
		case KE1:
			byK["E1"] = r.O
		case KE2:
			byK["E2"] = r.O
		}
	}
	if byK["E0"] != temporal.NewInterval(1, 3) {
		t.Errorf("E0 final occurrence = %v, want [1, 3)", byK["E0"])
	}
	if !byK["E1"].Empty() {
		t.Errorf("E1 must be fully removed, got %v", byK["E1"])
	}
	if byK["E2"] != temporal.NewInterval(3, temporal.Infinity) {
		t.Errorf("E2 occurrence = %v, want [3, ∞)", byK["E2"])
	}
}
