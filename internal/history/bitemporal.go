// Package history implements the paper's history-table formalism (Sections 4
// and 6): bitemporal and unitemporal history tables, reduction, truncation,
// canonical forms "to" and "at" an occurrence time, annotated tables with the
// Sync column, sync points (Definition 2), logical equivalence
// (Definition 1), coalescing and the * operator (Definition 10), shredded
// canonical form (§3.3.2) and ideal history tables (§6).
package history

import (
	"sort"

	"repro/internal/event"
	"repro/internal/temporal"
)

// BiRow is one entry of a tritemporal history table (Figure 2): the
// bitemporal content (valid interval V, occurrence interval O) plus the CEDR
// time interval C and the retraction-chain key K. Every unique K corresponds
// to an initial insert and all associated retractions, each of which reduces
// Oe relative to the previous matching entry.
type BiRow struct {
	K       event.ID
	ID      event.ID
	V       temporal.Interval // valid time [Vs, Ve)
	O       temporal.Interval // occurrence time [Os, Oe)
	C       temporal.Interval // CEDR time [Cs, Ce)
	Payload event.Payload
}

// BiTable is a tritemporal history table: an ordered list of entries. Order
// carries no meaning for the logical state; canonical forms sort rows
// deterministically before comparison.
type BiTable []BiRow

// Clone deep-copies the table.
func (t BiTable) Clone() BiTable {
	out := make(BiTable, len(t))
	for i, r := range t {
		r.Payload = r.Payload.Clone()
		out[i] = r
	}
	return out
}

// Reduce performs the first canonicalization step of Section 4: for each K,
// only the entry with the earliest Oe time is retained. (Each retraction of
// a K chain reduces Oe, so the earliest Oe is the final word on that chain.)
// Ties keep the entry that arrived last in CEDR time, which carries the most
// recent content.
func (t BiTable) Reduce() BiTable {
	best := make(map[event.ID]int, len(t))
	for i, r := range t {
		j, seen := best[r.K]
		if !seen || r.O.End < t[j].O.End || (r.O.End == t[j].O.End && r.C.Start >= t[j].C.Start) {
			best[r.K] = i
		}
	}
	idx := make([]int, 0, len(best))
	for _, i := range best {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make(BiTable, 0, len(idx))
	for _, i := range idx {
		out = append(out, t[i])
	}
	return out
}

// TruncateTo performs the second canonicalization step: any Oe greater than
// to becomes to, and rows whose Os is greater than to are removed.
func (t BiTable) TruncateTo(to temporal.Time) BiTable {
	out := make(BiTable, 0, len(t))
	for _, r := range t {
		if r.O.Start > to {
			continue
		}
		if r.O.End > to {
			r.O.End = to
		}
		out = append(out, r)
	}
	return out
}

// CanonicalTo returns the canonical history table to occurrence time to:
// reduction followed by truncation.
func (t BiTable) CanonicalTo(to temporal.Time) BiTable {
	return t.Reduce().TruncateTo(to)
}

// CanonicalAt returns the canonical history table at to: per Section 4, the
// canonical history table to to with the rows whose occurrence interval does
// not intersect to removed. After truncation every Oe is at most to, so a
// row intersects to exactly when its (truncated) occurrence interval reaches
// to — i.e. the fact was still live going into instant to. Fully-removed
// chains (empty occurrence intervals) never intersect anything.
func (t BiTable) CanonicalAt(to temporal.Time) BiTable {
	out := make(BiTable, 0)
	for _, r := range t.CanonicalTo(to) {
		if !r.O.Empty() && r.O.End == to {
			out = append(out, r)
		}
	}
	return out
}

// factKey is the Definition 1 projection: all attributes other than Cs and
// Ce, rendered canonically for multiset comparison.
func (r BiRow) factKey() string {
	return r.V.String() + "§" + r.O.String() + "§" + r.Payload.Key() + "§" + string(rune(r.ID))
}

// equalAsSets compares two tables on the Definition 1 projection πX
// (everything but CEDR time), as multisets.
func equalAsSets(a, b BiTable) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[string]int, len(a))
	for _, r := range a {
		count[r.factKey()]++
	}
	for _, r := range b {
		count[r.factKey()]--
		if count[r.factKey()] < 0 {
			return false
		}
	}
	return true
}

// EquivalentTo implements Definition 1: two streams (given as history
// tables) are logically equivalent to occurrence time to iff their canonical
// history tables to to agree on every attribute other than Cs and Ce.
func (t BiTable) EquivalentTo(o BiTable, to temporal.Time) bool {
	return equalAsSets(t.CanonicalTo(to), o.CanonicalTo(to))
}

// EquivalentAt is the "at to" variant of Definition 1.
func (t BiTable) EquivalentAt(o BiTable, to temporal.Time) bool {
	return equalAsSets(t.CanonicalAt(to), o.CanonicalAt(to))
}
