package history

import (
	"fmt"

	"repro/internal/temporal"
)

// Shred computes the shredded canonical form of §3.3.2: starting from the
// canonical table R*, each tuple with occurrence interval [Os, Oe) is
// replaced by Oe−Os tuples identical in every attribute except that each
// carries a unit-length slice of the original occurrence interval, and their
// union is [Os, Oe).
//
// Tuples with infinite Oe cannot be enumerated; horizon caps the shredding,
// and an error is returned if any interval would extend past it by an
// unbounded amount (Oe = ∞ with horizon = ∞).
func (t BiTable) Shred(to temporal.Time, horizon temporal.Time) (BiTable, error) {
	canon := t.CanonicalTo(to)
	var out BiTable
	for _, r := range canon {
		end := r.O.End
		if end.IsInfinite() {
			if horizon.IsInfinite() {
				return nil, fmt.Errorf("history: cannot shred unbounded occurrence interval %v without a horizon", r.O)
			}
			end = horizon
		}
		if end > horizon {
			end = horizon
		}
		for s := r.O.Start; s < end; s++ {
			piece := r
			piece.O = temporal.NewInterval(s, s.Add(1))
			out = append(out, piece)
		}
	}
	return out, nil
}
