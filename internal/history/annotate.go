package history

import (
	"sort"

	"repro/internal/event"
	"repro/internal/temporal"
)

// AnnRow is one entry of an annotated history table (Figure 6): the history
// row plus the computed Sync column. For insertions Sync = Os; for
// retractions Sync = Oe.
type AnnRow struct {
	BiRow
	Sync         temporal.Time
	IsRetraction bool
}

// Annotate computes the annotated form of the table. Rows are classified by
// their K chains in CEDR-time order: the first entry of each chain is the
// insertion, every later entry a retraction.
func (t BiTable) Annotate() []AnnRow {
	order := make([]int, len(t))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return t[order[a]].C.Start < t[order[b]].C.Start
	})
	seen := make(map[event.ID]bool, len(t))
	out := make([]AnnRow, len(t))
	for _, i := range order {
		r := t[i]
		ann := AnnRow{BiRow: r}
		if seen[r.K] {
			ann.IsRetraction = true
			ann.Sync = r.O.End
		} else {
			seen[r.K] = true
			ann.Sync = r.O.Start
		}
		out[i] = ann
	}
	return out
}

// SyncPoint is a pair of occurrence time and CEDR time (to, T) that cleanly
// separates past from future in both time domains simultaneously
// (Definition 2).
type SyncPoint struct {
	To temporal.Time // occurrence time
	T  temporal.Time // CEDR time
}

// IsSyncPoint checks Definition 2 directly: for each entry e, either
// e.Cs <= T and e.Sync <= to, or e.Cs > T and e.Sync > to.
func IsSyncPoint(rows []AnnRow, p SyncPoint) bool {
	for _, e := range rows {
		before := e.C.Start <= p.T && e.Sync <= p.To
		after := e.C.Start > p.T && e.Sync > p.To
		if !before && !after {
			return false
		}
	}
	return true
}

// SyncPoints enumerates the sync points induced by the table's arrival
// order: one candidate per prefix of the CEDR-time-sorted rows (including
// the empty prefix is omitted; the full table always yields a final sync
// point at its maximum Sync). The returned points are sorted by CEDR time.
func SyncPoints(rows []AnnRow) []SyncPoint {
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rows[order[a]].C.Start < rows[order[b]].C.Start
	})
	var out []SyncPoint
	for cut := 1; cut <= len(order); cut++ {
		// T separates prefix [0,cut) from suffix [cut,len).
		if cut < len(order) && rows[order[cut]].C.Start == rows[order[cut-1]].C.Start {
			continue // cannot split simultaneous arrivals
		}
		maxPrefix := temporal.MinTime
		for _, i := range order[:cut] {
			maxPrefix = temporal.Max(maxPrefix, rows[i].Sync)
		}
		minSuffix := temporal.Infinity
		for _, i := range order[cut:] {
			minSuffix = temporal.Min(minSuffix, rows[i].Sync)
		}
		if maxPrefix < minSuffix || cut == len(order) {
			p := SyncPoint{To: maxPrefix, T: rows[order[cut-1]].C.Start}
			if IsSyncPoint(rows, p) {
				out = append(out, p)
			}
		}
	}
	return out
}

// InOrder reports whether the stream described by the annotated rows has no
// out-of-order events: the global ordering by Cs is identical to the global
// ordering by the compound key <Sync, Cs> (the intuition the paper gives for
// the Sync column).
func InOrder(rows []AnnRow) bool {
	byCs := make([]int, len(rows))
	for i := range byCs {
		byCs[i] = i
	}
	sort.SliceStable(byCs, func(a, b int) bool {
		return rows[byCs[a]].C.Start < rows[byCs[b]].C.Start
	})
	for k := 1; k < len(byCs); k++ {
		prev, cur := rows[byCs[k-1]], rows[byCs[k]]
		if cur.Sync < prev.Sync {
			return false
		}
	}
	return true
}
