package history

import (
	"fmt"
	"strings"

	"repro/internal/temporal"
)

// Formatting helpers that render history tables in the layout the paper's
// figures use, so that cmd/figures and the golden tests can reproduce
// Figures 1–6 and 10 verbatim from live model objects.

// names maps row keys to the paper's event labels (e0, E0, ...). The caller
// supplies it because the figures label rows differently (ID column in
// Figures 1 and 10, K column in Figures 2–6).
type Names map[uint64]string

func padCell(s string, w int) string {
	if len([]rune(s)) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len([]rune(s)))
}

func renderTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len([]rune(h))
	}
	for _, r := range rows {
		for i, c := range r {
			if n := len([]rune(c)); n > width[i] {
				width[i] = n
			}
		}
	}
	var b strings.Builder
	for i, h := range header {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(padCell(h, width[i]))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(padCell(c, width[i]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func ft(t temporal.Time) string { return t.String() }

// FormatConceptual renders a bitemporal table in the Figure 1 layout:
// ID Vs Ve Os Oe, using label for the ID column.
func (t BiTable) FormatConceptual(label Names) string {
	rows := make([][]string, len(t))
	for i, r := range t {
		rows[i] = []string{
			label[uint64(r.ID)],
			ft(r.V.Start), ft(r.V.End), ft(r.O.Start), ft(r.O.End),
		}
	}
	return renderTable([]string{"ID", "Vs", "Ve", "Os", "Oe"}, rows)
}

// FormatTritemporal renders the Figure 2 layout:
// ID Vs Ve Os Oe Cs Ce K — with event labels for ID and chain labels for K.
func (t BiTable) FormatTritemporal(idLabel, kLabel Names) string {
	rows := make([][]string, len(t))
	for i, r := range t {
		rows[i] = []string{
			idLabel[uint64(r.ID)],
			ft(r.V.Start), ft(r.V.End),
			ft(r.O.Start), ft(r.O.End),
			ft(r.C.Start), ft(r.C.End),
			kLabel[uint64(r.K)],
		}
	}
	return renderTable([]string{"ID", "Vs", "Ve", "Os", "Oe", "Cs", "Ce", "K"}, rows)
}

// FormatOccurrence renders the Figures 3–5 layout: K Os Oe Cs Ce (valid time
// and ID omitted, as the paper does when discussing retractions).
func (t BiTable) FormatOccurrence(kLabel Names) string {
	rows := make([][]string, len(t))
	for i, r := range t {
		rows[i] = []string{
			kLabel[uint64(r.K)],
			ft(r.O.Start), ft(r.O.End),
			ft(r.C.Start), ft(r.C.End),
		}
	}
	return renderTable([]string{"K", "Os", "Oe", "Cs", "Ce"}, rows)
}

// FormatAnnotated renders the Figure 6 layout: K Sync Os Oe Cs Ce.
func FormatAnnotated(rows []AnnRow, kLabel Names) string {
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			kLabel[uint64(r.K)],
			ft(r.Sync),
			ft(r.O.Start), ft(r.O.End),
			ft(r.C.Start), ft(r.C.End),
		}
	}
	return renderTable([]string{"K", "Sync", "Os", "Oe", "Cs", "Ce"}, cells)
}

// FormatUnitemporal renders the Figure 10 layout: ID Vs Ve Payload.
func (t UniTable) FormatUnitemporal(idLabel Names) string {
	rows := make([][]string, len(t))
	for i, r := range t {
		payload := r.Payload.Key()
		if len(r.Payload) == 1 {
			for _, v := range r.Payload {
				payload = fmt.Sprintf("%v", v)
			}
		}
		if payload == "" {
			payload = "-"
		}
		rows[i] = []string{
			idLabel[uint64(r.ID)],
			ft(r.V.Start), ft(r.V.End),
			payload,
		}
	}
	return renderTable([]string{"ID", "Vs", "Ve", "Payload"}, rows)
}

// Labels builds a names map from id→label pairs; a convenience for figures
// code and tests.
func Labels(pairs ...any) Names {
	if len(pairs)%2 != 0 {
		panic("history.Labels: odd argument count")
	}
	m := make(Names, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		var id uint64
		switch v := pairs[i].(type) {
		case int:
			id = uint64(v)
		case uint64:
			id = v
		default:
			panic(fmt.Sprintf("history.Labels: bad id type %T", pairs[i]))
		}
		m[id] = pairs[i+1].(string)
	}
	return m
}
