package history

import (
	"testing"

	"repro/internal/temporal"
)

func TestSliceOccurrence(t *testing.T) {
	tbl, _, _ := Figure2()
	sliced := tbl.SliceOccurrence(2, 4)
	// Rows with occurrence intervals intersecting [2, 4): the E0 chain
	// entries ([1,5) and [1,3)), the E2 entry ([3,∞)); not the E1 entries
	// ([5,∞) and the empty [5,5)).
	if len(sliced) != 3 {
		t.Fatalf("rows = %d: %+v", len(sliced), sliced)
	}
	for _, r := range sliced {
		if r.O.Start < 2 || r.O.End > 4 {
			t.Errorf("occurrence not clipped: %v", r.O)
		}
	}
}

func TestSliceValid(t *testing.T) {
	tbl, _ := Figure1()
	sliced := tbl.SliceValid(6, 12)
	// Validity windows intersecting [6, 12): e0's [1,∞) and [1,10), e1's
	// [4,9); not e0's [1,5).
	if len(sliced) != 3 {
		t.Fatalf("rows = %d: %+v", len(sliced), sliced)
	}
	for _, r := range sliced {
		if r.V.Start < 6 || r.V.End > 12 {
			t.Errorf("validity not clipped: %v", r.V)
		}
	}
}

func TestSliceBothDimensions(t *testing.T) {
	tbl, _, _ := Figure2()
	sliced := tbl.Slice(1, temporal.Infinity, 1, 10)
	for _, r := range sliced {
		if r.V.End > 10 {
			t.Errorf("valid slice leaked: %v", r.V)
		}
	}
	if len(sliced) == 0 {
		t.Fatal("slice removed everything")
	}
	// Empty windows empty the table.
	if got := tbl.Slice(0, 0, 0, 0); len(got) != 0 {
		t.Errorf("empty window kept %d rows", len(got))
	}
}
