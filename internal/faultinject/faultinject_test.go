package faultinject_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/operators"
	"repro/internal/stream"
	"repro/internal/temporal"
)

func passthrough() operators.Op {
	return operators.NewSelect(func(event.Payload) bool { return true })
}

func TestPanicOpFiresOnce(t *testing.T) {
	op := faultinject.NewPanicOp(passthrough(), 3)
	ev := event.NewInsert(1, "X", 0, temporal.Infinity, nil)
	op.Process(0, ev)
	// The trigger counter is shared with clones: the armed call can land on
	// a clone, which is how monitor replays stay armed.
	clone := op.Clone()
	clone.Process(0, ev)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("third Process did not panic")
			}
		}()
		op.Process(0, ev)
	}()
	// Past the armed call, processing continues.
	if out := op.Process(0, ev); len(out) != 1 {
		t.Fatalf("post-panic Process returned %d events, want 1", len(out))
	}
}

func TestStallOpDelaysButCompletes(t *testing.T) {
	const stall = 50 * time.Millisecond
	op := faultinject.NewStallOp(passthrough(), 2, stall)
	ev := event.NewInsert(1, "X", 0, temporal.Infinity, nil)
	start := time.Now()
	op.Process(0, ev)
	if d := time.Since(start); d >= stall {
		t.Fatalf("first Process stalled (%v)", d)
	}
	start = time.Now()
	if out := op.Process(0, ev); len(out) != 1 {
		t.Fatalf("stalled Process dropped output")
	}
	if d := time.Since(start); d < stall {
		t.Fatalf("armed Process returned in %v, want >= %v", d, stall)
	}
}

func TestDuplicatePunctuation(t *testing.T) {
	s := stream.Stream{
		event.NewInsert(1, "X", 0, temporal.Infinity, nil),
		event.NewCTI(1),
		event.NewInsert(2, "X", 2, temporal.Infinity, nil),
		event.NewCTI(3),
	}
	out := faultinject.DuplicatePunctuation(s, 2)
	if len(out) != 5 {
		t.Fatalf("got %d items, want 5 (every 2nd CTI doubled)", len(out))
	}
	if !out[3].IsCTI() || !out[4].IsCTI() || out[3].Sync() != out[4].Sync() {
		t.Fatalf("expected duplicated trailing CTI, got %v / %v", out[3], out[4])
	}
}

// TestDelayDeliveryPreservesGuarantees: delayed delivery must never move a
// data item past a later CTI (the guarantee would be violated), and the
// output must be a permutation of the input.
func TestDelayDeliveryPreservesGuarantees(t *testing.T) {
	var s stream.Stream
	id := event.ID(1)
	for i := 0; i < 50; i++ {
		s = append(s, event.NewInsert(id, "X", temporal.Time(i), temporal.Infinity, nil))
		id++
		if i%5 == 4 {
			s = append(s, event.NewCTI(temporal.Time(i)))
		}
	}
	out := faultinject.DelayDelivery(s, 42, 0.4, 4)
	if len(out) != len(s) {
		t.Fatalf("delivery changed item count: %d -> %d", len(s), len(out))
	}
	// For each CTI boundary, the set of data IDs delivered before it must
	// match the input exactly.
	beforeByCTI := func(str stream.Stream) [][]bool {
		var sets [][]bool
		seen := make([]bool, int(id)+1)
		for _, e := range str {
			if e.IsCTI() {
				sets = append(sets, append([]bool(nil), seen...))
				continue
			}
			seen[e.ID] = true
		}
		return sets
	}
	wantSets := beforeByCTI(s)
	gotSets := beforeByCTI(out)
	if len(wantSets) != len(gotSets) {
		t.Fatalf("CTI count changed: %d -> %d", len(wantSets), len(gotSets))
	}
	for i := range wantSets {
		for idx := range wantSets[i] {
			if wantSets[i][idx] != gotSets[i][idx] {
				t.Fatalf("CTI %d: data item %d crossed the guarantee boundary", i, idx)
			}
		}
	}
}

func TestFileCrashAtByte(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	ff := faultinject.NewFile(f)
	ff.CrashAtByte = 10
	if n, err := ff.Write(make([]byte, 8)); n != 8 || err != nil {
		t.Fatalf("pre-crash write: %d, %v", n, err)
	}
	// This write crosses the crash point: only the torn prefix lands.
	n, err := ff.Write(make([]byte, 8))
	if !errors.Is(err, faultinject.ErrCrashed) || n != 2 {
		t.Fatalf("crash write: n=%d err=%v, want n=2 ErrCrashed", n, err)
	}
	if _, err := ff.Write([]byte{1}); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatal("post-crash write succeeded")
	}
	if err := ff.Sync(); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatal("post-crash sync succeeded")
	}
	st, err := os.Stat(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 10 {
		t.Fatalf("file size %d after crash at byte 10", st.Size())
	}
}
