// Package faultinject is the chaos harness for the durability and
// isolation tests: injectable fault points that simulate the failures a
// production stream engine must survive — torn and corrupted WAL tails,
// fsync errors, crashes at arbitrary byte offsets, panicking operators
// (worker panics under the sharded runtime), stalled shards, and
// duplicated or delayed channel delivery.
//
// The package deliberately has no dependency on the engine: faults are
// injected from the outside, through the wal.File seam, through
// operators.Op wrappers installed in plans, and through physical-stream
// transforms — so the engine's production code paths are exactly the ones
// under test.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/wal"
)

// ---------------------------------------------------------------------------
// WAL byte corruptors — the mutations the corrupt-input recovery tests
// apply to a well-formed log image.

// TornTail drops the last n bytes, simulating a crash mid-write.
func TornTail(b []byte, n int) []byte {
	if n >= len(b) {
		return nil
	}
	return b[:len(b)-n]
}

// TruncateAt keeps only the first off bytes.
func TruncateAt(b []byte, off int64) []byte {
	if off >= int64(len(b)) {
		return b
	}
	if off < 0 {
		return nil
	}
	return b[:off]
}

// FlipByte returns a copy with the byte at off inverted — a checksum-
// detectable single-byte corruption.
func FlipByte(b []byte, off int64) []byte {
	out := append([]byte(nil), b...)
	if off >= 0 && off < int64(len(out)) {
		out[off] ^= 0xFF
	}
	return out
}

// ---------------------------------------------------------------------------
// Faulty file — injects fsync errors and crash-at-offset torn writes
// underneath a wal.Log.

// ErrInjectedSync is the error a File returns from its scheduled fsync
// failure.
var ErrInjectedSync = errors.New("faultinject: injected fsync error")

// ErrCrashed is returned by every operation after a File's crash point.
var ErrCrashed = errors.New("faultinject: file crashed")

// File wraps a wal.File with injectable storage faults.
type File struct {
	Inner wal.File
	// FailSyncAt makes the nth Sync call (1-based) return ErrInjectedSync;
	// 0 disables.
	FailSyncAt int
	// CrashAtByte simulates a kill at a byte offset: writes are applied
	// only up to that many total bytes (a final partial write models the
	// torn record) and every later operation returns ErrCrashed. < 0
	// disables.
	CrashAtByte int64

	syncs   int
	written int64
	crashed bool
}

// NewFile wraps inner with no faults armed (CrashAtByte disabled).
func NewFile(inner wal.File) *File {
	return &File{Inner: inner, CrashAtByte: -1}
}

func (f *File) Read(p []byte) (int, error) {
	if f.crashed {
		return 0, ErrCrashed
	}
	return f.Inner.Read(p)
}

func (f *File) Seek(off int64, whence int) (int64, error) {
	if f.crashed {
		return 0, ErrCrashed
	}
	return f.Inner.Seek(off, whence)
}

func (f *File) Truncate(size int64) error {
	if f.crashed {
		return ErrCrashed
	}
	return f.Inner.Truncate(size)
}

func (f *File) Write(p []byte) (int, error) {
	if f.crashed {
		return 0, ErrCrashed
	}
	if f.CrashAtByte >= 0 && f.written+int64(len(p)) > f.CrashAtByte {
		keep := f.CrashAtByte - f.written
		if keep > 0 {
			f.Inner.Write(p[:keep]) // the torn tail reaches the disk
		}
		f.crashed = true
		f.written += keep
		return int(keep), ErrCrashed
	}
	n, err := f.Inner.Write(p)
	f.written += int64(n)
	return n, err
}

func (f *File) Sync() error {
	if f.crashed {
		return ErrCrashed
	}
	f.syncs++
	if f.FailSyncAt > 0 && f.syncs == f.FailSyncAt {
		return ErrInjectedSync
	}
	return f.Inner.Sync()
}

func (f *File) Close() error {
	if f.crashed {
		return ErrCrashed
	}
	return f.Inner.Close()
}

// Syncs reports how many Sync calls the file has seen.
func (f *File) Syncs() int { return f.syncs }

// ---------------------------------------------------------------------------
// Operator faults — panic and stall injection for quarantine and
// shard-isolation tests.

// PanicOp wraps an operator and panics on the nth data event it processes
// (counted across the live instance and every clone, so monitor
// checkpoint replays cannot disarm it). It drives the engine's quarantine
// path: a worker goroutine or single-shard push hits the panic, and the
// engine must isolate the query without deadlocking siblings.
type PanicOp struct {
	Inner operators.Op
	// After is the 1-based count of the Process call that panics.
	After int64
	count *int64
}

// NewPanicOp arms inner to panic on the nth Process call.
func NewPanicOp(inner operators.Op, after int) *PanicOp {
	return &PanicOp{Inner: inner, After: int64(after), count: new(int64)}
}

// Name implements operators.Op.
func (p *PanicOp) Name() string { return "faultinject.panic(" + p.Inner.Name() + ")" }

// Arity implements operators.Op.
func (p *PanicOp) Arity() int { return p.Inner.Arity() }

// Process implements operators.Op; the armed call panics.
func (p *PanicOp) Process(port int, e event.Event) []event.Event {
	if atomic.AddInt64(p.count, 1) == p.After {
		panic(fmt.Sprintf("faultinject: injected operator panic on event %d", p.After))
	}
	return p.Inner.Process(port, e)
}

// Advance implements operators.Op.
func (p *PanicOp) Advance(t temporal.Time) []event.Event { return p.Inner.Advance(t) }

// OutputGuarantee implements operators.Op.
func (p *PanicOp) OutputGuarantee(t temporal.Time) temporal.Time { return p.Inner.OutputGuarantee(t) }

// StateSize implements operators.Op.
func (p *PanicOp) StateSize() int { return p.Inner.StateSize() }

// Clone implements operators.Op; clones share the trigger counter.
func (p *PanicOp) Clone() operators.Op {
	return &PanicOp{Inner: p.Inner.Clone(), After: p.After, count: p.count}
}

// AppendAdvanceKey forwards the shard-merge ordering hook when the inner
// operator provides it.
func (p *PanicOp) AppendAdvanceKey(dst []byte, e event.Event) []byte {
	if ao, ok := p.Inner.(operators.AdvanceOrdered); ok {
		return ao.AppendAdvanceKey(dst, e)
	}
	return dst
}

// StallOp wraps an operator and sleeps once, on the nth data event — the
// stalled-shard fault. Progress must still complete (finish drains), just
// late.
type StallOp struct {
	Inner operators.Op
	After int64
	Stall time.Duration
	count *int64
}

// NewStallOp arms inner to stall once on the nth Process call.
func NewStallOp(inner operators.Op, after int, stall time.Duration) *StallOp {
	return &StallOp{Inner: inner, After: int64(after), Stall: stall, count: new(int64)}
}

// Name implements operators.Op.
func (s *StallOp) Name() string { return "faultinject.stall(" + s.Inner.Name() + ")" }

// Arity implements operators.Op.
func (s *StallOp) Arity() int { return s.Inner.Arity() }

// Process implements operators.Op; the armed call sleeps first.
func (s *StallOp) Process(port int, e event.Event) []event.Event {
	if atomic.AddInt64(s.count, 1) == s.After {
		time.Sleep(s.Stall)
	}
	return s.Inner.Process(port, e)
}

// Advance implements operators.Op.
func (s *StallOp) Advance(t temporal.Time) []event.Event { return s.Inner.Advance(t) }

// OutputGuarantee implements operators.Op.
func (s *StallOp) OutputGuarantee(t temporal.Time) temporal.Time { return s.Inner.OutputGuarantee(t) }

// StateSize implements operators.Op.
func (s *StallOp) StateSize() int { return s.Inner.StateSize() }

// Clone implements operators.Op; clones share the trigger counter.
func (s *StallOp) Clone() operators.Op {
	return &StallOp{Inner: s.Inner.Clone(), After: s.After, Stall: s.Stall, count: s.count}
}

// AppendAdvanceKey forwards the shard-merge ordering hook when the inner
// operator provides it.
func (s *StallOp) AppendAdvanceKey(dst []byte, e event.Event) []byte {
	if ao, ok := s.Inner.(operators.AdvanceOrdered); ok {
		return ao.AppendAdvanceKey(dst, e)
	}
	return dst
}

// ---------------------------------------------------------------------------
// Channel-delivery chaos — duplicated and delayed physical delivery.

// DuplicatePunctuation re-delivers every nth punctuation item immediately
// after itself — the at-least-once transport fault. Guarantees are
// idempotent, so engine output must be unchanged.
func DuplicatePunctuation(s stream.Stream, every int) stream.Stream {
	if every <= 0 {
		every = 1
	}
	out := make(stream.Stream, 0, len(s)+len(s)/every+1)
	seen := 0
	for _, e := range s {
		out = append(out, e)
		if e.IsCTI() {
			seen++
			if seen%every == 0 {
				out = append(out, e)
			}
		}
	}
	return out
}

// DelayDelivery randomly holds back data items for up to maxHold positions
// (punctuation is never reordered past — it flushes the hold buffer),
// simulating a transport that delivers late without violating its
// guarantees. Deterministic for a given seed.
func DelayDelivery(s stream.Stream, seed int64, prob float64, maxHold int) stream.Stream {
	rng := rand.New(rand.NewSource(seed))
	out := make(stream.Stream, 0, len(s))
	var held stream.Stream
	for _, e := range s {
		if e.IsCTI() {
			// A guarantee must not overtake the data it covers.
			out = append(out, held...)
			held = held[:0]
			out = append(out, e)
			continue
		}
		if rng.Float64() < prob && len(held) < maxHold {
			held = append(held, e)
			continue
		}
		out = append(out, e)
		if len(held) > 0 && rng.Float64() < 0.5 {
			out = append(out, held[0])
			held = held[1:]
		}
	}
	return append(out, held...)
}
