package core

import (
	"testing"

	"repro/internal/consistency"
)

// The Figure 8 shape assertions: the qualitative relations the paper's
// table states must hold in the measured data.
func TestFigure8Shape(t *testing.T) {
	rows := Figure8(DefaultFig8())
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(level, orderliness string) Fig8Row {
		for _, r := range rows {
			if r.Level == level && r.Orderliness == orderliness {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", level, orderliness)
		return Fig8Row{}
	}
	sLow, mLow, wLow := get("strong", "low"), get("middle", "low"), get("weak(M=0)", "low")
	sHigh, mHigh := get("strong", "high"), get("middle", "high")

	// Strong blocks under disorder; middle and weak never do.
	if sLow.MeanBlocking <= 0 {
		t.Error("strong/low should block")
	}
	if mLow.MeanBlocking != 0 || wLow.MeanBlocking != 0 {
		t.Error("middle/weak must not block")
	}
	// Middle's output exceeds strong's under disorder (retractions).
	if mLow.Outputs <= sLow.Outputs || mLow.Retractions == 0 {
		t.Errorf("middle/low outputs %d vs strong %d, retr %d",
			mLow.Outputs, sLow.Outputs, mLow.Retractions)
	}
	// Weak forgets and stays small.
	if wLow.Dropped == 0 {
		t.Error("weak(0)/low should drop stragglers")
	}
	if wLow.MaxState > mLow.MaxState {
		t.Error("weak state should not exceed middle state")
	}
	// Strong and middle are exact everywhere; weak is exact only when
	// ordered.
	if !sLow.Correct || !mLow.Correct || !sHigh.Correct || !mHigh.Correct {
		t.Error("strong/middle must converge")
	}
	if wLow.Correct {
		t.Error("weak(0) under heavy disorder should not be exact")
	}
	if FormatFig8(rows) == "" {
		t.Error("empty table")
	}
}

func TestFigure9Shape(t *testing.T) {
	cfg := DefaultFig8()
	cfg.Events = 300
	pts := Figure9(cfg, DefaultFig9Axis())
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// Corners: (B=∞ impossible unless M=∞) — the strong corner is
	// (Unbounded, Unbounded); it blocks and never retracts.
	var strong, middle, weak *Fig9Point
	for i := range pts {
		p := &pts[i]
		if p.B == consistency.Unbounded && p.M == consistency.Unbounded {
			strong = p
		}
		if p.B == 0 && p.M == consistency.Unbounded {
			middle = p
		}
		if p.B == 0 && p.M == 0 {
			weak = p
		}
	}
	if strong == nil || middle == nil || weak == nil {
		t.Fatal("missing corners")
	}
	if !strong.Correct || strong.Retractions != 0 {
		t.Errorf("strong corner: %+v", strong)
	}
	if !middle.Correct || middle.Retractions == 0 {
		t.Errorf("middle corner: %+v", middle)
	}
	if weak.Correct || weak.Dropped == 0 {
		t.Errorf("weak corner: %+v", weak)
	}
	// Everything with unbounded memory converges.
	for _, p := range pts {
		if p.M == consistency.Unbounded && !p.Correct {
			t.Errorf("point (B=%v, M=∞) diverged", p.B)
		}
	}
	if FormatFig9(pts) == "" {
		t.Error("empty table")
	}
}

func TestBaselineComparisonShape(t *testing.T) {
	rows := BaselineComparison(11)
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.System] = r
	}
	if !byName["CEDR strong"].Correct || !byName["CEDR middle"].Correct {
		t.Error("CEDR strong/middle must be exact")
	}
	if byName["point-DSMS"].Correct || byName["point-DSMS"].Dropped == 0 {
		t.Errorf("point baseline should drop and diverge: %+v", byName["point-DSMS"])
	}
	if byName["CEDR strong"].Dropped != 0 {
		t.Error("CEDR must not drop")
	}
	if FormatBaseline(rows) == "" {
		t.Error("empty table")
	}
}

func TestConsumptionAblation(t *testing.T) {
	reuse, consume := ConsumptionAblation(10)
	if reuse != 55 || consume != 10 {
		t.Errorf("reuse=%d consume=%d, want 55/10", reuse, consume)
	}
}
