// Package core assembles the paper's experiments from the substrate
// packages: the consistency-tradeoff measurements behind Figure 8, the
// (B, M) spectrum sweep behind Figure 9, the baseline comparisons of
// Section 1, and the ablations DESIGN.md calls out. cmd/cedrbench and the
// repository's benchmarks are thin wrappers over this package.
package core

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/baseline"
	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/workload"
)

// Fig8Row is one measured cell block of Figure 8: a consistency level run
// against a stream of given orderliness.
type Fig8Row struct {
	Level       string
	Orderliness string // "high" or "low"

	MeanBlocking float64 // CEDR ticks an event waits in the alignment buffer
	Blocked      int
	MaxState     int
	Outputs      int // total emitted data items, incl. retractions
	Retractions  int
	Dropped      int
	Correct      bool // final history equivalent to the ideal run
}

// Fig8Config parameterizes the experiment.
type Fig8Config struct {
	Events         int
	Spacing        temporal.Time
	Lifetime       temporal.Time
	DenseCTIPeriod temporal.Duration // "high orderliness": frequent sync points
	SparseCTI      temporal.Duration // "low orderliness": rare sync points
	StragglerDelay temporal.Duration
	StragglerProb  float64
	Seed           int64
	WeakM          temporal.Duration
}

// DefaultFig8 mirrors the scale of the paper's qualitative discussion.
func DefaultFig8() Fig8Config {
	return Fig8Config{
		Events:         600,
		Spacing:        4,
		Lifetime:       10,
		DenseCTIPeriod: 20,
		SparseCTI:      400,
		StragglerDelay: 120,
		StragglerProb:  0.3,
		Seed:           42,
		WeakM:          0,
	}
}

func fig8Source(cfg Fig8Config) stream.Stream {
	var s stream.Stream
	for i := 0; i < cfg.Events; i++ {
		vs := temporal.Time(i) * cfg.Spacing
		s = append(s, event.NewInsert(event.ID(i+1), "E", vs, vs+cfg.Lifetime,
			event.Payload{"g": int64(i % 5), "x": int64(i % 11)}))
	}
	return s
}

func fig8Op() operators.Op { return operators.NewAggregate(operators.Count, "", "g") }

// Figure8 measures blocking, state size and output size for the three
// named consistency levels under high and low orderliness — the
// quantitative counterpart of the paper's qualitative table.
func Figure8(cfg Fig8Config) []Fig8Row {
	src := fig8Source(cfg)
	ideal := operators.OutputTable(operators.RunAligned(fig8Op(), src))

	levels := []consistency.Spec{
		consistency.Strong(), consistency.Middle(), consistency.Weak(cfg.WeakM),
	}
	var rows []Fig8Row
	for _, orderly := range []bool{true, false} {
		var dcfg delivery.Config
		name := "high"
		if orderly {
			dcfg = delivery.Ordered(cfg.DenseCTIPeriod)
		} else {
			name = "low"
			dcfg = delivery.Disordered(cfg.Seed, cfg.SparseCTI, cfg.StragglerDelay, cfg.StragglerProb)
		}
		delivered := delivery.Deliver(src, dcfg)
		for _, spec := range levels {
			out, met := consistency.RunStreams(fig8Op(), spec, delivered)
			rows = append(rows, Fig8Row{
				Level:        spec.Name(),
				Orderliness:  name,
				MeanBlocking: met.MeanBlocking(),
				Blocked:      met.BlockedEvents,
				MaxState:     met.MaxState,
				Outputs:      met.OutputEvents(),
				Retractions:  met.OutputRetractions,
				Dropped:      met.Dropped,
				Correct:      operators.OutputTable(out).EquivalentStar(ideal),
			})
		}
	}
	return rows
}

// FormatFig8 renders the rows as the paper-style table.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-11s %12s %8s %9s %8s %12s %8s %8s\n",
		"Consistency", "Orderliness", "MeanBlocking", "Blocked", "MaxState",
		"Outputs", "Retractions", "Dropped", "Correct")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-11s %12.1f %8d %9d %8d %12d %8d %8v\n",
			r.Level, r.Orderliness, r.MeanBlocking, r.Blocked, r.MaxState,
			r.Outputs, r.Retractions, r.Dropped, r.Correct)
	}
	return b.String()
}

// Fig9Point is one sampled point of the Figure 9 spectrum.
type Fig9Point struct {
	B, M         temporal.Duration
	MeanBlocking float64
	MaxState     int
	Retractions  int
	Dropped      int
	Correct      bool
}

// Figure9 sweeps the (B, M) consistency spectrum over a disordered stream.
// Axes use the paper's convention: only B <= M is meaningful. The sweep
// shows blocking growing along B, repair (retraction) volume shrinking as
// B grows, and correctness failing once M stops covering the disorder.
func Figure9(cfg Fig8Config, axis []temporal.Duration) []Fig9Point {
	src := fig8Source(cfg)
	ideal := operators.OutputTable(operators.RunAligned(fig8Op(), src))
	delivered := delivery.Deliver(src,
		delivery.Disordered(cfg.Seed, cfg.SparseCTI, cfg.StragglerDelay, cfg.StragglerProb))
	var pts []Fig9Point
	for _, m := range axis {
		for _, bb := range axis {
			if bb > m {
				continue // outside the meaningful triangle
			}
			spec := consistency.Level(bb, m)
			out, met := consistency.RunStreams(fig8Op(), spec, delivered)
			pts = append(pts, Fig9Point{
				B: bb, M: m,
				MeanBlocking: met.MeanBlocking(),
				MaxState:     met.MaxState,
				Retractions:  met.OutputRetractions,
				Dropped:      met.Dropped,
				Correct:      operators.OutputTable(out).EquivalentStar(ideal),
			})
		}
	}
	return pts
}

// DefaultFig9Axis spans the spectrum from memoryless to unbounded.
func DefaultFig9Axis() []temporal.Duration {
	return []temporal.Duration{0, 30, 150, 600, consistency.Unbounded}
}

// FormatFig9 renders the sweep.
func FormatFig9(pts []Fig9Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-10s %12s %9s %12s %8s %8s\n",
		"B", "M", "MeanBlocking", "MaxState", "Retractions", "Dropped", "Correct")
	dur := func(d temporal.Duration) string {
		if d == consistency.Unbounded {
			return "∞"
		}
		return fmt.Sprintf("%d", int64(d))
	}
	for _, p := range pts {
		fmt.Fprintf(&b, "%-10s %-10s %12.1f %9d %12d %8d %8v\n",
			dur(p.B), dur(p.M), p.MeanBlocking, p.MaxState, p.Retractions, p.Dropped, p.Correct)
	}
	return b.String()
}

// BaselineRow is one row of the Section 1 comparison: CEDR levels versus a
// drop-late point engine on the same disordered stream.
type BaselineRow struct {
	System      string
	Dropped     int
	Outputs     int
	Correct     bool
	Note        string
	Retractions int
}

// BaselineComparison reproduces the paper's qualitative claims: the point
// engine silently loses late data; pub/sub can only filter; CEDR's strong
// and middle levels stay exact.
func BaselineComparison(seed int64) []BaselineRow {
	src := workload.StockTicks(workload.DefaultTicks())
	window := 10 * temporal.Second
	disordered := delivery.Deliver(src,
		delivery.Disordered(seed, 30*temporal.Second, 15*temporal.Second, 0.3))

	mkOp := func() operators.Op { return operators.NewAggregate(operators.Avg, "price", "symbol") }
	ideal := operators.OutputTable(operators.RunAligned(
		mkOp(), applyWindow(src, window)))

	var rows []BaselineRow
	for _, spec := range []consistency.Spec{consistency.Strong(), consistency.Middle(), consistency.Weak(0)} {
		out, met := consistency.RunStreams(mkOp(), spec, applyWindow(disordered, window))
		rows = append(rows, BaselineRow{
			System:      "CEDR " + spec.Name(),
			Dropped:     met.Dropped,
			Outputs:     met.OutputEvents(),
			Retractions: met.OutputRetractions,
			Correct:     operators.OutputTable(out).EquivalentStar(ideal),
		})
	}
	results, dropped := baseline.RunPointAggregate(disordered, window, "price")
	rows = append(rows, BaselineRow{
		System:  "point-DSMS",
		Dropped: dropped,
		Outputs: len(results),
		Correct: dropped == 0,
		Note:    "late tuples silently dropped",
	})
	ps := baseline.NewPubSub()
	ps.Subscribe("TICK", nil)
	for _, e := range disordered.Events() {
		ps.Publish(e)
	}
	rows = append(rows, BaselineRow{
		System:  "pub/sub",
		Outputs: ps.Delivered,
		Correct: false,
		Note:    "stateless routing only; cannot aggregate or detect patterns",
	})
	return rows
}

// applyWindow clips tick lifetimes to the aggregation window, stamping the
// stream through the Window operator (stateless pre-pass).
func applyWindow(s stream.Stream, w temporal.Duration) stream.Stream {
	op := operators.Window(w)
	var out stream.Stream
	for _, e := range s {
		if e.IsCTI() {
			out = append(out, e)
			continue
		}
		for _, o := range op.Process(0, e) {
			o.C = e.C
			out = append(out, o)
		}
	}
	return out
}

// FormatBaseline renders the comparison.
func FormatBaseline(rows []BaselineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %8s %12s %8s  %s\n",
		"System", "Dropped", "Outputs", "Retractions", "Correct", "Note")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %8d %12d %8v  %s\n",
			r.System, r.Dropped, r.Outputs, r.Retractions, r.Correct, r.Note)
	}
	return b.String()
}

// ConsumptionAblation measures the §1 claim that instance consumption tames
// the multiplicative output of SEQUENCE: it returns output counts for
// reuse vs consume on an n-pair workload.
func ConsumptionAblation(n int) (reuse, consume int) {
	var store []event.Event
	for i := 0; i < n; i++ {
		store = append(store,
			event.NewInsert(event.ID(2*i+1), "A", temporal.Time(2*i), temporal.Infinity, nil),
			event.NewInsert(event.ID(2*i+2), "B", temporal.Time(2*i+1), temporal.Infinity, nil))
	}
	expr := algebra.SequenceExpr{Kids: []algebra.Expr{
		algebra.TypeExpr{Type: "A", Alias: "a"}, algebra.TypeExpr{Type: "B", Alias: "b"},
	}, W: temporal.Duration(4 * n)}
	reuse = len(algebra.ApplySC(algebra.Denote(expr, store), algebra.SCMode{}))
	consume = len(algebra.ApplySC(algebra.Denote(expr, store), algebra.SCMode{Cons: algebra.Consume}))
	return reuse, consume
}
