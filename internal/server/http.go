package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"repro"
	"repro/internal/consistency"
	"repro/internal/event"
	"repro/internal/eventio"
	"repro/internal/temporal"
)

// Handler returns the HTTP/JSON convenience surface — the same system,
// verbs, and semantics as the binary protocol, reachable with curl:
//
//	GET    /healthz                     liveness + system error state
//	GET    /v1/queries                  registry listing
//	POST   /v1/queries                  register (JSON body, below)
//	GET    /v1/queries/{id}             one query's status
//	DELETE /v1/queries/{id}            unregister
//	GET    /v1/queries/{id}/results    accumulated output (?format=text, ?alerts=1)
//	GET    /v1/queries/{id}/stream     live NDJSON output frames with tags
//	POST   /v1/events                  push a batch: NDJSON/JSON array, or CSV
//	                                   with Content-Type text/csv (?sync=1 for
//	                                   a durability barrier after the batch)
//	POST   /v1/sync                    drain + fsync, report system error
//	POST   /v1/finish                  flush all queries
//
// Register body:
//
//	{"src": "EVENT ... WHEN ...", "consistency": {"b": 0, "m": -1},
//	 "shards": 4, "no_sharing": false, "bindings": {"user": "u17"}}
//
// where -1 in a consistency bound means unbounded. The text results
// format prints one event per line in the CLI's rendering with CTI
// punctuation elided, so a shell diff against the output of
// `cedr -query ... -events ...` needs no JSON tooling.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/queries", s.handleList)
	mux.HandleFunc("POST /v1/queries", s.handleRegister)
	mux.HandleFunc("GET /v1/queries/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/queries/{id}", s.handleUnregister)
	mux.HandleFunc("GET /v1/queries/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/queries/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/events", s.handleEvents)
	mux.HandleFunc("POST /v1/sync", s.handleSync)
	mux.HandleFunc("POST /v1/finish", s.handleFinish)
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// pathQuery resolves the {id} path segment to a registry entry.
func (s *Server) pathQuery(w http.ResponseWriter, r *http.Request) (*entry, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("server: bad query id %q", r.PathValue("id")))
		return nil, false
	}
	ent, err := s.lookup(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return nil, false
	}
	return ent, true
}

// queryInfo is the JSON shape of one registry entry.
type queryInfo struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	Shards  int    `json:"shards"`
	Shared  bool   `json:"shared"`
	Results int    `json:"results"`
	Err     string `json:"err,omitempty"`
}

func infoOf(e *entry) queryInfo {
	info := queryInfo{
		ID:      e.id,
		Name:    e.q.Name(),
		Shards:  e.q.Shards(),
		Shared:  e.q.Shared(),
		Results: len(e.q.Results()),
	}
	if err := e.q.Err(); err != nil {
		info.Err = err.Error()
	}
	return info
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.entries)
	s.mu.Unlock()
	body := map[string]any{"ok": true, "queries": n}
	if err := s.sys.Err(); err != nil {
		body["ok"] = false
		body["error"] = err.Error()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := append([]*entry(nil), s.entries...)
	s.mu.Unlock()
	infos := make([]queryInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, infoOf(e))
	}
	writeJSON(w, http.StatusOK, infos)
}

// registerBody is the POST /v1/queries request shape.
type registerBody struct {
	Src         string          `json:"src"`
	Consistency *consistencyRef `json:"consistency,omitempty"`
	Shards      int             `json:"shards,omitempty"`
	NoSharing   bool            `json:"no_sharing,omitempty"`
	Bindings    map[string]any  `json:"bindings,omitempty"`
}

// consistencyRef is a (B, M) pair where -1 means unbounded — JSON has
// no 2^63-1 literal that survives float64 round-trips.
type consistencyRef struct {
	B int64 `json:"b"`
	M int64 `json:"m"`
}

func (cr *consistencyRef) spec() cedr.Spec {
	bound := func(v int64) temporal.Duration {
		if v < 0 {
			return consistency.Unbounded
		}
		return temporal.Duration(v)
	}
	return cedr.Spec{B: bound(cr.B), M: bound(cr.M)}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var body registerBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	dec.UseNumber()
	if err := dec.Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("server: register body: %w", err))
		return
	}
	var ro regOpts
	if body.Consistency != nil {
		ro.hasSpec = true
		ro.spec = body.Consistency.spec()
	}
	ro.shards = body.Shards
	ro.noShare = body.NoSharing
	if len(body.Bindings) > 0 {
		ro.bindings = event.Payload{}
		for name, raw := range body.Bindings {
			v, err := bindingValue(raw)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("server: binding %q: %w", name, err))
				return
			}
			ro.bindings[name] = v
		}
	}
	ent, err := s.register(body.Src, ro)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, infoOf(ent))
}

// bindingValue maps a decoded JSON value onto the event value domains,
// preserving int64 for integral numbers (json.Number via UseNumber).
func bindingValue(raw any) (event.Value, error) {
	switch v := raw.(type) {
	case string:
		return v, nil
	case bool:
		return v, nil
	case json.Number:
		if i, err := v.Int64(); err == nil {
			return i, nil
		}
		f, err := v.Float64()
		if err != nil {
			return nil, err
		}
		return f, nil
	default:
		return nil, fmt.Errorf("unsupported binding type %T", raw)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if ent, ok := s.pathQuery(w, r); ok {
		writeJSON(w, http.StatusOK, infoOf(ent))
	}
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.pathQuery(w, r)
	if !ok {
		return
	}
	ent.q.Unregister()
	writeJSON(w, http.StatusOK, map[string]any{"unregistered": ent.id})
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.pathQuery(w, r)
	if !ok {
		return
	}
	var evs []event.Event
	if r.URL.Query().Get("alerts") == "1" {
		evs = ent.q.Alerts()
	} else {
		evs = ent.q.Results()
	}
	if r.URL.Query().Get("format") == "text" {
		// The CLI's rendering: one event per line, CTI punctuation
		// elided (the JSON format below keeps it), so a shell diff
		// against a batch `cedr` run compares clean.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range evs {
			if e.IsCTI() {
				continue
			}
			fmt.Fprintf(w, "%s\n", e)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	// One event per array element, using the canonical event JSON.
	w.Write([]byte("["))
	for i, e := range evs {
		if i > 0 {
			w.Write([]byte(",\n "))
		}
		b, err := eventio.MarshalJSON(e)
		if err != nil {
			b = []byte(`{"error":` + strconv.Quote(err.Error()) + `}`)
		}
		w.Write(b)
	}
	w.Write([]byte("]\n"))
}

// handleStream sends live output as NDJSON: {"tag": n, "event": {...}}
// per line, history first, then new output as it is delivered. The same
// bounded-queue fail-stop as the binary protocol applies: a consumer
// that stops reading is disconnected.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.pathQuery(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	type tagged struct {
		ev  event.Event
		tag uint64
	}
	queue := make(chan tagged, s.queueCap)
	var dead atomic.Bool
	ent.q.SubscribeTagged(true, func(ev event.Event, tag uint64) {
		if dead.Load() {
			return
		}
		select {
		case queue <- tagged{ev, tag}:
		default:
			dead.Store(true) // overflow: fail-stop this stream
		}
	})
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			dead.Store(true)
			return
		case item := <-queue:
			b, err := eventio.MarshalJSON(item.ev)
			if err != nil {
				dead.Store(true)
				return
			}
			if _, err := fmt.Fprintf(w, `{"tag":%d,"event":%s}`+"\n", item.tag, b); err != nil {
				dead.Store(true)
				return
			}
			if canFlush && len(queue) == 0 {
				fl.Flush()
			}
		}
	}
}

// handleEvents pushes a batch: Content-Type text/csv selects the CLI's
// CSV line format, anything else the canonical event JSON (NDJSON or a
// top-level array). The batch is applied in order; the response reports
// how many events were accepted, and a durability failure mid-batch
// stops the batch (fail-stop) with a 500 naming the failure.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	name := "http"
	var (
		evs []event.Event
		err error
	)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "text/csv") {
		evs, err = eventio.ReadCSV(r.Body, name)
	} else {
		evs, err = eventio.ReadJSONStream(r.Body, name)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	for i, e := range evs {
		s.sys.Push(e)
		if serr := s.sys.Err(); serr != nil {
			httpError(w, http.StatusInternalServerError,
				fmt.Errorf("server: push %d/%d failed: %w", i+1, len(evs), serr))
			return
		}
	}
	if r.URL.Query().Get("sync") == "1" {
		s.sys.Drain()
		if serr := s.sys.Sync(); serr != nil {
			httpError(w, http.StatusInternalServerError, serr)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": len(evs)})
}

func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	s.sys.Drain()
	if err := s.sys.Sync(); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if err := s.sys.Err(); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"synced": true})
}

func (s *Server) handleFinish(w http.ResponseWriter, r *http.Request) {
	s.sys.Finish()
	if err := s.sys.Err(); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"finished": true})
}
