// The wire protocol: a length-prefixed binary framing over one duplex
// byte stream (TCP), carrying the full CEDR surface — source sessions,
// event pushes with complete tritemporal headers and CTI punctuation,
// query registration with the whole Register(src, ...QueryOption) option
// set, and subscriptions whose output frames carry the per-chain order
// tags, so a remote subscriber observes exactly the sequence an
// in-process subscriber would (retractions and punctuation included).
//
// Connection layout:
//
//	conn  := magic frame*                 magic := "CEDRTCP1" (client sends)
//	frame := len(u32 LE) type(u8) body    len = 1 + len(body)
//
// Events and payload values use the write-ahead log's body encodings
// (wal.AppendEvent / wal.AppendValue): one codec for the wire and the
// log, covered by one set of round-trip proofs. Strings are u32-length-
// prefixed; integers little-endian.
//
// Client → server frames:
//
//	open        str source                 open a source session (required before push)
//	push        event                      insert / retraction / CTI; no per-frame reply
//	register    str src, u8 flags, i64 B, i64 M, i32 shards
//	            [u32 n, (str name, value)*n]      flags: 1 spec, 2 no-sharing, 4 bindings
//	subscribe   u32 query                  start streaming output frames
//	unregister  u32 query
//	sync        u64 token                  drain + WAL fsync + surface the system error
//	finish      —                          flush every query (completes output histories)
//	status      u32 query
//
// Server → client frames:
//
//	ok          str msg
//	err         str msg                    request error, or fatal session error pre-close
//	registered  u32 query, u32 shards, u8 shared, str name
//	output      u32 query, u64 tag, event  one subscribed output item
//	synced      u64 token, str err         "" = durable and healthy
//	statusr     u32 query, u32 shards, u64 results, str err
//
// Requests are processed in arrival order and replied to in order; output
// frames from subscriptions interleave arbitrarily with replies (clients
// dispatch on the frame type). Push frames have no reply — errors surface
// on the next sync, or as an err frame followed by connection close
// (fail-stop: input that cannot be made durable is not processed, and a
// subscriber that cannot keep up is disconnected rather than slowing the
// engine).
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/event"
	"repro/internal/wal"
)

// Magic is the 8-byte handshake a client sends after connecting; the
// version byte changes with the frame encoding.
const Magic = "CEDRTCP1"

// maxFrame bounds one frame body, mirroring the WAL's record bound, so a
// corrupt or hostile length prefix cannot force a giant allocation.
const maxFrame = 1 << 26

type frameType byte

const (
	fOpen       frameType = 0x01
	fPush       frameType = 0x02
	fRegister   frameType = 0x03
	fSubscribe  frameType = 0x04
	fUnregister frameType = 0x05
	fSync       frameType = 0x06
	fFinish     frameType = 0x07
	fStatus     frameType = 0x08

	fOK         frameType = 0x81
	fErr        frameType = 0x82
	fRegistered frameType = 0x83
	fOutput     frameType = 0x84
	fSynced     frameType = 0x85
	fStatusR    frameType = 0x86
)

// String implements fmt.Stringer for protocol errors.
func (t frameType) String() string {
	switch t {
	case fOpen:
		return "open"
	case fPush:
		return "push"
	case fRegister:
		return "register"
	case fSubscribe:
		return "subscribe"
	case fUnregister:
		return "unregister"
	case fSync:
		return "sync"
	case fFinish:
		return "finish"
	case fStatus:
		return "status"
	case fOK:
		return "ok"
	case fErr:
		return "err"
	case fRegistered:
		return "registered"
	case fOutput:
		return "output"
	case fSynced:
		return "synced"
	case fStatusR:
		return "statusr"
	default:
		return fmt.Sprintf("frame(0x%02x)", byte(t))
	}
}

// appendFrame wraps an encoded body in the frame header.
func appendFrame(dst []byte, t frameType, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+len(body)))
	dst = append(dst, byte(t))
	return append(dst, body...)
}

// readFrame reads one frame. A torn read or an over-long frame is a
// connection-fatal error.
func readFrame(br *bufio.Reader) (frameType, []byte, error) {
	var head [4]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(head[:])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("server: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return 0, nil, err
	}
	return frameType(buf[0]), buf[1:], nil
}

// ---------------------------------------------------------------------------
// Body encoding

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// reader decodes frame bodies with sticky errors, delegating event and
// value bodies to the WAL codec.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail(io.ErrUnexpectedEOF)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() byte {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *reader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *reader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) str() string {
	n := int(r.u32())
	if r.err == nil && n > len(r.b)-r.off {
		r.fail(fmt.Errorf("server: string length %d exceeds frame", n))
		return ""
	}
	return string(r.take(n))
}

func (r *reader) event() event.Event {
	if r.err != nil {
		return event.Event{}
	}
	e, n, err := wal.DecodeEvent(r.b[r.off:])
	if err != nil {
		r.fail(err)
		return event.Event{}
	}
	r.off += n
	return e
}

func (r *reader) value() event.Value {
	if r.err != nil {
		return nil
	}
	v, n, err := wal.DecodeValue(r.b[r.off:])
	if err != nil {
		r.fail(err)
		return nil
	}
	r.off += n
	return v
}

// done reports decoding success and that the body was fully consumed.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("server: %d trailing bytes in frame body", len(r.b)-r.off)
	}
	return nil
}
