package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/event"
	"repro/internal/wal"
)

const stuckHot = `
EVENT StuckHot
WHEN UNLESS(HOT h, COOL c, 10 seconds)
WHERE {h.sensor = c.sensor}
CONSISTENCY middle`

// lateStream produces optimistic output AND a compensating retraction:
// HOT B's arrival advances the optimistic frontier past sensor A's
// UNLESS deadline (middle consistency emits the detection immediately),
// then A's COOL arrives out of order, inside the window, and the
// monitor repairs the output with a retraction.
func lateStream() []event.Event {
	sec := cedr.Time(1000)
	return []event.Event{
		cedr.NewEvent(1, "HOT", 1*sec, cedr.Forever, cedr.Payload{"sensor": "A"}),
		cedr.NewEvent(2, "HOT", 15*sec, cedr.Forever, cedr.Payload{"sensor": "B"}),
		cedr.NewEvent(3, "COOL", 4*sec, cedr.Forever, cedr.Payload{"sensor": "A"}), // late repair
		cedr.NewCTI(40 * sec),
	}
}

// tagged is one observed output item.
type tagged struct {
	tag uint64
	ev  event.Event
}

// referenceRun executes a query in-process over events and returns the
// exact tagged output sequence plus surviving alerts.
func referenceRun(t *testing.T, src string, events []event.Event, opts ...cedr.QueryOption) ([]tagged, []event.Event) {
	t.Helper()
	sys := cedr.New()
	q, err := sys.Register(src, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var got []tagged
	q.SubscribeTagged(false, func(e cedr.Event, tag uint64) {
		got = append(got, tagged{tag, e})
	})
	for _, e := range events {
		sys.Push(e)
	}
	sys.Finish()
	return got, q.Alerts()
}

// startServer wires a Server over sys to a loopback listener.
func startServer(t *testing.T, sys *cedr.System, opts ...Option) (*Server, string) {
	t.Helper()
	srv := New(sys, opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

// collect drains n outputs from the client, failing on timeout.
func collect(t *testing.T, c *Client, n int) []tagged {
	t.Helper()
	var got []tagged
	deadline := time.After(10 * time.Second)
	for len(got) < n {
		select {
		case out, ok := <-c.Outputs():
			if !ok {
				t.Fatalf("connection closed after %d/%d outputs: %v", len(got), n, c.Err())
			}
			got = append(got, tagged{out.Tag, out.Event})
		case <-deadline:
			t.Fatalf("timed out after %d/%d outputs", len(got), n)
		}
	}
	return got
}

// encode renders an event with the wire/WAL codec for byte comparison.
func encode(t *testing.T, e event.Event) []byte {
	t.Helper()
	b, err := wal.AppendEvent(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// assertSameOutput requires the remote sequence to be byte-identical to
// the in-process one — same events, same order, same chain tags.
func assertSameOutput(t *testing.T, want, got []tagged) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("output length: in-process %d, remote %d", len(want), len(got))
	}
	for i := range want {
		if want[i].tag != got[i].tag {
			t.Fatalf("output %d: tag %d in-process, %d remote", i, want[i].tag, got[i].tag)
		}
		if !bytes.Equal(encode(t, want[i].ev), encode(t, got[i].ev)) {
			t.Fatalf("output %d: event differs\nin-process: %s\nremote:     %s",
				i, want[i].ev, got[i].ev)
		}
	}
}

// TestLoopbackDifferential is the tentpole proof: a remote session —
// register, subscribe, push, finish over TCP — observes byte-for-byte
// the output an in-process subscriber sees, chain tags included, with
// optimistic inserts AND the compensating retraction crossing the wire.
func TestLoopbackDifferential(t *testing.T) {
	events := lateStream()
	want, wantAlerts := referenceRun(t, stuckHot, events)
	if len(want) == 0 {
		t.Fatal("reference run produced no output; bad scenario")
	}
	retracts := 0
	for _, w := range want {
		if w.ev.Kind == event.Retract {
			retracts++
		}
	}
	if retracts == 0 {
		t.Fatal("reference run produced no retraction; the differential must cover compensation")
	}

	sys := cedr.New()
	srv, addr := startServer(t, sys)
	defer srv.Shutdown()

	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open("test-source"); err != nil {
		t.Fatal(err)
	}
	rq, err := c.Register(stuckHot, RegOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rq.Name != "StuckHot" {
		t.Fatalf("registered name %q", rq.Name)
	}
	if err := c.Subscribe(rq.ID); err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := c.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, c, len(want))
	assertSameOutput(t, want, got)

	st, err := c.Status(rq.ID)
	if err != nil {
		t.Fatal(err)
	}
	if int(st.Results) != len(want) || st.Err != "" {
		t.Fatalf("status = %+v, want %d results and no error", st, len(want))
	}
	_ = wantAlerts
}

// TestTwoConnections splits roles across sessions: one connection is
// the source, another the subscriber — the subscriber still observes
// the exact in-process sequence, and its late subscription replays the
// history already produced.
func TestTwoConnections(t *testing.T) {
	events := lateStream()
	want, _ := referenceRun(t, stuckHot, events)

	sys := cedr.New()
	srv, addr := startServer(t, sys)
	defer srv.Shutdown()

	src, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Open("pusher"); err != nil {
		t.Fatal(err)
	}
	rq, err := src.Register(stuckHot, RegOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Push half, subscribe from a second connection (history replays),
	// push the rest.
	half := len(events) / 2
	for _, e := range events[:half] {
		if err := src.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Sync(); err != nil {
		t.Fatal(err)
	}

	sub, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(rq.ID); err != nil {
		t.Fatal(err)
	}
	for _, e := range events[half:] {
		if err := src.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Finish(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sub, len(want))
	assertSameOutput(t, want, got)
}

// TestTemplateBindingBool proves the boolean value domain end-to-end
// over the wire: a template instance bound to the *boolean* true must
// match events whose payload carries boolean true — and not the string
// "true" — exactly as in-process registration would.
func TestTemplateBindingBool(t *testing.T) {
	const tmpl = `
EVENT Armed
WHEN HOT h
WHERE {h.armed = $armed}
CONSISTENCY middle`
	sec := cedr.Time(1000)
	events := []event.Event{
		cedr.NewEvent(1, "HOT", 1*sec, cedr.Forever, cedr.Payload{"armed": true}),
		cedr.NewEvent(2, "HOT", 2*sec, cedr.Forever, cedr.Payload{"armed": "true"}),
		cedr.NewEvent(3, "HOT", 3*sec, cedr.Forever, cedr.Payload{"armed": false}),
		cedr.NewCTI(10 * sec),
	}
	want, wantAlerts := referenceRun(t, tmpl, events, cedr.WithTemplate(cedr.Payload{"armed": true}))
	if len(wantAlerts) != 1 {
		t.Fatalf("reference detected %d events, want exactly the boolean-true one", len(wantAlerts))
	}

	sys := cedr.New()
	srv, addr := startServer(t, sys)
	defer srv.Shutdown()
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(""); err != nil {
		t.Fatal(err)
	}
	rq, err := c.Register(tmpl, RegOptions{Bindings: cedr.Payload{"armed": true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(rq.ID); err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := c.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, want, collect(t, c, len(want)))
}

// TestRegisterOptionsOnWire checks the remaining Register surface:
// explicit consistency, sharing identity, and shard counts all travel.
func TestRegisterOptionsOnWire(t *testing.T) {
	sys := cedr.New()
	srv, addr := startServer(t, sys)
	defer srv.Shutdown()
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	strong := cedr.Strong()
	a, err := c.Register(stuckHot, RegOptions{Spec: &strong})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Register(stuckHot, RegOptions{Spec: &strong})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Fatal("two registrations share one wire id")
	}
	if !a.Shared || !b.Shared {
		t.Fatalf("identical registrations should share a chain: %+v %+v", a, b)
	}
	priv, err := c.Register(stuckHot, RegOptions{Spec: &strong, NoSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	if priv.Shared {
		t.Fatalf("NoSharing registration reports shared: %+v", priv)
	}
	qs := sys.Queries()
	if len(qs) != 3 {
		t.Fatalf("server registered %d queries, want 3", len(qs))
	}
}

// TestSessionErrors pins the error surface: a push before open is
// session-fatal; a bad query text is request-scoped and leaves the
// session usable; unknown query ids are request-scoped.
func TestSessionErrors(t *testing.T) {
	sys := cedr.New()
	srv, addr := startServer(t, sys)
	defer srv.Shutdown()

	t.Run("push-before-open", func(t *testing.T) {
		c, err := Dial(addr, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Push(cedr.NewEvent(1, "HOT", 0, cedr.Forever, nil)); err != nil {
			t.Fatal(err)
		}
		if err := c.Sync(); err == nil {
			t.Fatal("push before open did not fail the session")
		} else if !strings.Contains(err.Error(), "open") {
			t.Fatalf("unexpected error: %v", err)
		}
	})

	t.Run("bad-query-keeps-session", func(t *testing.T) {
		c, err := Dial(addr, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Register("EVENT Broken WHEN", RegOptions{}); err == nil {
			t.Fatal("register of broken query succeeded")
		}
		// Session must still work.
		if _, err := c.Register(stuckHot, RegOptions{}); err != nil {
			t.Fatalf("session dead after request-scoped error: %v", err)
		}
	})

	t.Run("unknown-query-id", func(t *testing.T) {
		c, err := Dial(addr, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Subscribe(9999); err == nil {
			t.Fatal("subscribe to unknown id succeeded")
		}
		if _, err := c.Status(9999); err == nil {
			t.Fatal("status of unknown id succeeded")
		}
		if err := c.Unregister(9999); err == nil {
			t.Fatal("unregister of unknown id succeeded")
		}
		// Still alive.
		if err := c.Open("still-here"); err != nil {
			t.Fatalf("session dead after unknown-id errors: %v", err)
		}
	})

	t.Run("bad-handshake", func(t *testing.T) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		if _, err := nc.Write([]byte("HTTP/1.1 GET /")); err != nil {
			t.Fatal(err)
		}
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		// The server answers with an err frame and closes.
		buf, _ := io.ReadAll(nc)
		if !bytes.Contains(buf, []byte("bad handshake")) {
			t.Fatalf("no handshake rejection in %q", buf)
		}
	})
}

// TestBackpressureFailStop pins the bounded-queue contract: a
// subscriber that never drains is disconnected once its queue and the
// socket fill, while the engine — and other sessions — keep running.
func TestBackpressureFailStop(t *testing.T) {
	sys := cedr.New()
	srv, addr := startServer(t, sys, WithQueue(4))
	defer srv.Shutdown()

	src, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Open("pusher"); err != nil {
		t.Fatal(err)
	}
	// A passthrough query with bulky payloads so output volume fills the
	// socket quickly.
	rq, err := src.Register(`EVENT Echo WHEN HOT h CONSISTENCY middle`, RegOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Raw subscriber that never reads after subscribing.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if _, err := stalled.Write([]byte(Magic)); err != nil {
		t.Fatal(err)
	}
	if _, err := stalled.Write(appendFrame(nil, fSubscribe, appendU32(nil, uint32(rq.ID)))); err != nil {
		t.Fatal(err)
	}

	blob := strings.Repeat("x", 32*1024)
	sec := cedr.Time(1000)
	for i := 0; i < 512; i++ {
		e := cedr.NewEvent(cedr.ID(i+1), "HOT", cedr.Time(i)*sec, cedr.Forever,
			cedr.Payload{"blob": blob})
		if err := src.Push(e); err != nil {
			t.Fatal(err)
		}
		if i%32 == 31 {
			if err := src.Sync(); err != nil {
				t.Fatalf("healthy session failed at %d: %v", i, err)
			}
		}
	}
	if err := src.Sync(); err != nil {
		t.Fatalf("pusher session harmed by slow subscriber: %v", err)
	}

	// The stalled connection must be torn down by the server.
	stalled.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 64*1024)
	for {
		if _, err := stalled.Read(buf); err != nil {
			break // EOF/reset: fail-stopped
		}
	}

	// Engine health: the query accumulated everything.
	qs := sys.Queries()
	if len(qs) != 1 {
		t.Fatalf("%d queries", len(qs))
	}
	if err := qs[0].Err(); err != nil {
		t.Fatalf("query quarantined by slow subscriber: %v", err)
	}
	if n := len(qs[0].Results()); n < 512 {
		t.Fatalf("engine lost input: %d results", n)
	}
}

// TestCrashRecoveryOverWire is the serve half of the durability story:
// a server whose process dies (Abort — no close, no final sync) and
// restarts over the same WAL serves the identical output history, and
// the session resumes with the query ids clients already hold.
func TestCrashRecoveryOverWire(t *testing.T) {
	events := lateStream()
	want, _ := referenceRun(t, stuckHot, events)
	walPath := filepath.Join(t.TempDir(), "serve.wal")

	// First incarnation: SyncEvery(1) so every applied record is durable
	// at the moment the crash hits.
	sys1, err := cedr.Open(walPath, cedr.WithSyncEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	srv1, addr1 := startServer(t, sys1)
	c1, err := Dial(addr1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Open("src"); err != nil {
		t.Fatal(err)
	}
	rq, err := c1.Register(stuckHot, RegOptions{})
	if err != nil {
		t.Fatal(err)
	}
	half := 3 // HOT A, HOT B, CTI(20s): past the optimistic detections
	for _, e := range events[:half] {
		if err := c1.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: connections drop, the system is abandoned un-closed.
	srv1.Abort()
	c1.Close()

	// Second incarnation over the same log.
	sys2, err := cedr.Open(walPath, cedr.WithSyncEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	srv2, addr2 := startServer(t, sys2)
	defer srv2.Shutdown()
	c2, err := Dial(addr2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Open("src"); err != nil {
		t.Fatal(err)
	}
	// The client's pre-crash query id must still resolve — registry
	// order is log order.
	if err := c2.Subscribe(rq.ID); err != nil {
		t.Fatalf("pre-crash query id did not survive restart: %v", err)
	}
	for _, e := range events[half:] {
		if err := c2.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := c2.Finish(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, c2, len(want))
	assertSameOutput(t, want, got)
}

// TestHTTPSurface drives the JSON convenience API end to end and checks
// its text rendering matches the in-process one line for line.
func TestHTTPSurface(t *testing.T) {
	events := lateStream()
	want, wantAlerts := referenceRun(t, stuckHot, events)

	sys := cedr.New()
	srv := New(sys)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown()

	// Health.
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", res.StatusCode)
	}

	// Register.
	body := `{"src": ` + strings.TrimSpace(jsonString(stuckHot)) + `}`
	res, err = http.Post(ts.URL+"/v1/queries", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID   int    `json:"id"`
		Name string `json:"name"`
	}
	if err := json.NewDecoder(res.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusCreated || info.Name != "StuckHot" {
		t.Fatalf("register: %d %+v", res.StatusCode, info)
	}

	// Push as CSV, then as NDJSON, sync after the batch. The two
	// batches together are exactly lateStream.
	csv := `insert,1,HOT,1000,inf,sensor=A
insert,2,HOT,15000,inf,sensor=B
`
	res, err = http.Post(ts.URL+"/v1/events?sync=1", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("csv push: %d", res.StatusCode)
	}
	ndjson := `{"kind":"insert","id":3,"type":"COOL","vs":4000,"payload":{"sensor":"A"}}
{"kind":"cti","vs":40000}
`
	res, err = http.Post(ts.URL+"/v1/events?sync=1", "application/x-ndjson", strings.NewReader(ndjson))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("ndjson push: %d", res.StatusCode)
	}

	// Finish, then compare the text rendering against in-process.
	res, err = http.Post(ts.URL+"/v1/finish", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()

	res, err = http.Get(fmt.Sprintf("%s/v1/queries/%d/results?format=text", ts.URL, info.ID))
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(res.Body)
	res.Body.Close()
	var wantText strings.Builder
	for _, w := range want {
		if w.ev.IsCTI() {
			continue // the text format elides punctuation
		}
		fmt.Fprintf(&wantText, "%s\n", w.ev)
	}
	if string(text) != wantText.String() {
		t.Fatalf("text results differ\nhttp:\n%s\nin-process:\n%s", text, wantText.String())
	}

	// Alerts rendering.
	res, err = http.Get(fmt.Sprintf("%s/v1/queries/%d/results?format=text&alerts=1", ts.URL, info.ID))
	if err != nil {
		t.Fatal(err)
	}
	text, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if got := strings.Count(string(text), "\n"); got != len(wantAlerts) {
		t.Fatalf("%d alert lines, want %d:\n%s", got, len(wantAlerts), text)
	}

	// Listing and unregister.
	res, err = http.Get(ts.URL + "/v1/queries")
	if err != nil {
		t.Fatal(err)
	}
	var list []map[string]any
	json.NewDecoder(res.Body).Decode(&list)
	res.Body.Close()
	if len(list) != 1 {
		t.Fatalf("list: %+v", list)
	}
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/queries/%d", ts.URL, info.ID), nil)
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("unregister: %d", res.StatusCode)
	}
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// TestGracefulShutdownFlushes ensures Shutdown lets queued output reach
// a live subscriber before the connection closes.
func TestGracefulShutdownFlushes(t *testing.T) {
	events := lateStream()
	want, _ := referenceRun(t, stuckHot, events)

	sys := cedr.New()
	srv, addr := startServer(t, sys)
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open("src"); err != nil {
		t.Fatal(err)
	}
	rq, err := c.Register(stuckHot, RegOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(rq.ID); err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := c.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	// Shut down the server before draining the client: everything
	// already produced must still arrive.
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown() }()
	got := collect(t, c, len(want))
	assertSameOutput(t, want, got)
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
