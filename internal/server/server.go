// Package server hosts a CEDR system behind a network listener: the
// long-running form of the engine, where sources push events over TCP
// (or HTTP) and remote subscribers receive query output — inserts,
// compensating retractions, and punctuation, each with its chain order
// tag — exactly as an in-process subscriber would.
//
// One Server wraps one cedr.System. Connections are independent source
// sessions pushing into the same engine (the first deployment shape
// where real concurrency flows through Push), and queries live in a
// server-wide registry in registration order, so a query registered on
// one connection can be subscribed from another — and, on a durable
// system, re-subscribed by id after a crash and restart, because WAL
// replay reconstructs the registry in the same order.
//
// Flow control is fail-stop in both directions. Inbound: input that
// cannot be made durable is not processed — after a WAL failure the
// session is told and closed. Outbound: each connection has one bounded
// output queue; a subscriber that stops draining it is disconnected
// (the engine's synchronous delivery path never blocks on a slow
// network reader). The queue bound is the only backpressure mechanism —
// a deliberate choice, matching the paper's view that consistency
// repair, not transport pushback, absorbs disorder.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/consistency"
	"repro/internal/event"
	"repro/internal/temporal"
	"repro/internal/wal"
)

// DefaultQueue is the per-connection outbound frame queue bound.
const DefaultQueue = 4096

// errSlowSubscriber fails a connection whose outbound queue overflowed.
var errSlowSubscriber = errors.New("server: subscriber queue overflow (client not draining); failing stop")

// Server hosts one cedr.System behind any number of listeners.
type Server struct {
	sys      *cedr.System
	queueCap int

	mu        sync.Mutex
	entries   []*entry
	conns     map[*conn]struct{}
	listeners map[net.Listener]struct{}
	closed    bool

	wg sync.WaitGroup
}

// entry is one registry slot: a standing query plus the identity the
// wire protocol addresses it by. Ids are dense registration indices —
// stable across restarts of a durable system, because recovery replays
// registrations in log order.
type entry struct {
	id  int
	src string
	q   *cedr.Query
}

// Option configures a Server.
type Option func(*Server)

// WithQueue sets the per-connection outbound frame queue bound (default
// DefaultQueue). When a subscriber lets the queue fill, the connection
// is failed rather than letting delivery block the engine.
func WithQueue(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.queueCap = n
		}
	}
}

// New wraps an existing system. Queries already standing — typically
// recovered by WAL replay in cedr.Open — are adopted into the registry
// in registration order, so clients can re-subscribe by the ids they
// held before the restart.
func New(sys *cedr.System, opts ...Option) *Server {
	s := &Server{
		sys:       sys,
		queueCap:  DefaultQueue,
		conns:     map[*conn]struct{}{},
		listeners: map[net.Listener]struct{}{},
	}
	for _, o := range opts {
		o(s)
	}
	for _, q := range sys.Queries() {
		s.entries = append(s.entries, &entry{id: len(s.entries), q: q})
	}
	return s
}

// Serve accepts connections on ln until the listener fails or the
// server shuts down; it owns ln from here on. Run it in a goroutine per
// listener. Returns nil after Shutdown/Abort, the accept error
// otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c := s.newConn(nc)
		if c == nil {
			nc.Close()
			continue
		}
		s.wg.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// newConn registers a connection, or returns nil if the server is
// closed.
func (s *Server) newConn(nc net.Conn) *conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	c := &conn{
		s:       s,
		nc:      nc,
		out:     make(chan []byte, s.queueCap),
		drainCh: make(chan struct{}),
	}
	s.conns[c] = struct{}{}
	return c
}

// Shutdown is the graceful stop: listeners close, the engine drains so
// every accepted push has been delivered, connection queues flush to
// the network, and finally the system itself closes (syncing and
// releasing the WAL). The SIGTERM path of `cedr serve`.
func (s *Server) Shutdown() error {
	conns := s.stop()
	s.sys.Drain()
	for _, c := range conns {
		c.shutdown()
	}
	s.wg.Wait()
	return s.sys.Close()
}

// Abort is the kill-like stop: connections drop mid-frame and the
// system is left untouched — not closed, not synced. The fault-
// injection harness uses it to model a crash whose recovery the WAL
// must carry; production exits use Shutdown.
func (s *Server) Abort() {
	for _, c := range s.stop() {
		c.fail(errors.New("server: aborted"))
	}
	s.wg.Wait()
}

// stop closes listeners and freezes the connection set.
func (s *Server) stop() []*conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	var conns []*conn
	for c := range s.conns {
		conns = append(conns, c)
	}
	return conns
}

// register compiles and installs a query, assigning its wire id.
func (s *Server) register(src string, ro regOpts) (*entry, error) {
	var opts []cedr.QueryOption
	if ro.hasSpec {
		opts = append(opts, cedr.WithSpec(ro.spec))
	}
	if ro.shards != 0 {
		opts = append(opts, cedr.WithShards(ro.shards))
	}
	if len(ro.bindings) > 0 {
		opts = append(opts, cedr.WithTemplate(ro.bindings))
	}
	if ro.noShare {
		opts = append(opts, cedr.WithoutSharing())
	}
	q, err := s.sys.Register(src, opts...)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	e := &entry{id: len(s.entries), src: src, q: q}
	s.entries = append(s.entries, e)
	s.mu.Unlock()
	return e, nil
}

// lookup resolves a wire query id.
func (s *Server) lookup(id int) (*entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.entries) {
		return nil, fmt.Errorf("server: no query %d", id)
	}
	return s.entries[id], nil
}

// regOpts is the decoded register frame.
type regOpts struct {
	hasSpec  bool
	spec     cedr.Spec
	shards   int
	noShare  bool
	bindings event.Payload
}

// ---------------------------------------------------------------------------
// Connections

// conn is one client connection: a reader goroutine decoding and
// executing frames in arrival order, and a writer goroutine flushing
// the bounded outbound queue. Engine subscription callbacks enqueue
// into the same queue — non-blocking, so a slow client fails this
// connection and nothing else.
type conn struct {
	s  *Server
	nc net.Conn

	out     chan []byte
	dead    atomic.Bool
	drainCh chan struct{}

	failOnce  sync.Once
	drainOnce sync.Once

	// Reader-goroutine state (no locking needed).
	source string
	subs   map[int]bool
}

// send enqueues one outbound frame; overflow fails the connection
// (fail-stop for slow subscribers). Safe from any goroutine.
func (c *conn) send(frame []byte) bool {
	if c.dead.Load() {
		return false
	}
	select {
	case c.out <- frame:
		return true
	default:
		c.fail(errSlowSubscriber)
		return false
	}
}

// fail hard-stops the connection: no more enqueues, the socket closes,
// and the writer is released (its final flush fails against the closed
// socket and any queued frames are dropped).
func (c *conn) fail(err error) {
	c.failOnce.Do(func() {
		c.dead.Store(true)
		c.nc.Close()
		_ = err
	})
	c.drainOnce.Do(func() { close(c.drainCh) })
}

// shutdown is the graceful half-close used by Server.Shutdown: stop
// accepting new output, flush what is queued, then close.
func (c *conn) shutdown() {
	c.dead.Store(true)
	c.drainOnce.Do(func() { close(c.drainCh) })
}

// writeLoop flushes the outbound queue to the socket, batching bursts
// through one buffered writer so a saturated subscriber costs one
// syscall per burst, not per frame.
func (c *conn) writeLoop() {
	defer c.s.wg.Done()
	defer c.nc.Close()
	bw := bufio.NewWriterSize(c.nc, 64*1024)
	flushQueued := func() bool {
		for {
			select {
			case b := <-c.out:
				if _, err := bw.Write(b); err != nil {
					c.fail(err)
					return false
				}
			default:
				if err := bw.Flush(); err != nil {
					c.fail(err)
					return false
				}
				return true
			}
		}
	}
	for {
		select {
		case b := <-c.out:
			if _, err := bw.Write(b); err != nil {
				c.fail(err)
				return
			}
			if !flushQueued() {
				return
			}
		case <-c.drainCh:
			// Final flush with a bound: a peer that has stopped reading
			// must not pin shutdown.
			c.nc.SetWriteDeadline(time.Now().Add(5 * time.Second))
			flushQueued()
			return
		}
	}
}

// readLoop validates the handshake, then decodes and executes frames in
// arrival order until the connection dies.
func (c *conn) readLoop() {
	defer c.s.wg.Done()
	defer func() {
		// Graceful exit, not fail: the writer still flushes anything
		// queued (a farewell err frame, tail output) before the socket
		// closes — bounded by the drain deadline.
		c.shutdown()
		c.s.mu.Lock()
		delete(c.s.conns, c)
		c.s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(c.nc, 64*1024)
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != Magic {
		c.send(appendFrame(nil, fErr, appendStr(nil, "server: bad handshake (expected "+Magic+")")))
		c.shutdown()
		return
	}
	for {
		t, body, err := readFrame(br)
		if err != nil {
			return
		}
		if err := c.handle(t, body); err != nil {
			c.send(appendFrame(nil, fErr, appendStr(nil, err.Error())))
			c.shutdown()
			return
		}
	}
}

// handle executes one frame. A returned error is session-fatal (the
// client receives it as an err frame and the connection closes);
// request-scoped errors are replied inline and keep the session alive.
func (c *conn) handle(t frameType, body []byte) error {
	switch t {
	case fOpen:
		r := &reader{b: body}
		src := r.str()
		if err := r.done(); err != nil {
			return err
		}
		c.source = src
		if c.source == "" {
			c.source = c.nc.RemoteAddr().String()
		}
		c.send(appendFrame(nil, fOK, appendStr(nil, "source "+c.source+" open")))
		return nil

	case fPush:
		if c.source == "" {
			return errors.New("server: push before open — open a source session first")
		}
		r := &reader{b: body}
		ev := r.event()
		if err := r.done(); err != nil {
			return err
		}
		c.s.sys.Push(ev)
		if err := c.s.sys.Err(); err != nil {
			// Fail-stop: the push was not made durable and was dropped.
			return err
		}
		return nil

	case fRegister:
		src, ro, derr := decodeRegister(body)
		if derr != nil {
			return derr
		}
		ent, err := c.s.register(src, ro)
		if err != nil {
			// Compile errors are request-scoped: report and keep the session.
			c.send(appendFrame(nil, fErr, appendStr(nil, err.Error())))
			return nil
		}
		b := appendU32(nil, uint32(ent.id))
		b = appendU32(b, uint32(ent.q.Shards()))
		shared := byte(0)
		if ent.q.Shared() {
			shared = 1
		}
		b = append(b, shared)
		b = appendStr(b, ent.q.Name())
		c.send(appendFrame(nil, fRegistered, b))
		return nil

	case fSubscribe:
		r := &reader{b: body}
		id := int(r.u32())
		if err := r.done(); err != nil {
			return err
		}
		ent, err := c.s.lookup(id)
		if err != nil {
			c.send(appendFrame(nil, fErr, appendStr(nil, err.Error())))
			return nil
		}
		if c.subs == nil {
			c.subs = map[int]bool{}
		}
		if c.subs[id] {
			c.send(appendFrame(nil, fOK, appendStr(nil, fmt.Sprintf("already subscribed to query %d", id))))
			return nil
		}
		c.subs[id] = true
		// The callback outlives an unsubscribe-less protocol; the dead
		// flag makes it a cheap no-op once the connection is gone.
		qid := uint32(id)
		ent.q.SubscribeTagged(true, func(ev event.Event, tag uint64) {
			if c.dead.Load() {
				return
			}
			b := appendU32(make([]byte, 0, 64), qid)
			b = appendU64(b, tag)
			b, err := wal.AppendEvent(b, ev)
			if err != nil {
				c.fail(err)
				return
			}
			c.send(appendFrame(nil, fOutput, b))
		})
		c.send(appendFrame(nil, fOK, appendStr(nil, fmt.Sprintf("subscribed to query %d", id))))
		return nil

	case fUnregister:
		r := &reader{b: body}
		id := int(r.u32())
		if err := r.done(); err != nil {
			return err
		}
		ent, err := c.s.lookup(id)
		if err != nil {
			c.send(appendFrame(nil, fErr, appendStr(nil, err.Error())))
			return nil
		}
		ent.q.Unregister()
		c.send(appendFrame(nil, fOK, appendStr(nil, fmt.Sprintf("query %d unregistered", id))))
		return nil

	case fSync:
		r := &reader{b: body}
		token := r.u64()
		if err := r.done(); err != nil {
			return err
		}
		c.s.sys.Drain()
		msg := ""
		if err := c.s.sys.Sync(); err != nil {
			msg = err.Error()
		} else if err := c.s.sys.Err(); err != nil {
			msg = err.Error()
		}
		b := appendU64(nil, token)
		b = appendStr(b, msg)
		c.send(appendFrame(nil, fSynced, b))
		return nil

	case fFinish:
		if len(body) != 0 {
			return errors.New("server: finish frame carries a body")
		}
		c.s.sys.Finish()
		msg := ""
		if err := c.s.sys.Err(); err != nil {
			msg = "finish applied; system error: " + err.Error()
		} else {
			msg = "finished"
		}
		c.send(appendFrame(nil, fOK, appendStr(nil, msg)))
		return nil

	case fStatus:
		r := &reader{b: body}
		id := int(r.u32())
		if err := r.done(); err != nil {
			return err
		}
		ent, err := c.s.lookup(id)
		if err != nil {
			c.send(appendFrame(nil, fErr, appendStr(nil, err.Error())))
			return nil
		}
		b := appendU32(nil, uint32(ent.id))
		b = appendU32(b, uint32(ent.q.Shards()))
		b = appendU64(b, uint64(len(ent.q.Results())))
		msg := ""
		if qerr := ent.q.Err(); qerr != nil {
			msg = qerr.Error()
		}
		b = appendStr(b, msg)
		c.send(appendFrame(nil, fStatusR, b))
		return nil

	default:
		return fmt.Errorf("server: unexpected frame %v from client", t)
	}
}

// decodeRegister unpacks a register frame body. A malformed body is a
// session-fatal error (the framing, not the query, is broken).
func decodeRegister(body []byte) (string, regOpts, error) {
	r := &reader{b: body}
	src := r.str()
	flags := r.u8()
	b := r.i64()
	m := r.i64()
	shards := int(int32(r.u32()))
	var ro regOpts
	if flags&1 != 0 {
		ro.hasSpec = true
		ro.spec = consistency.Spec{B: temporal.Duration(b), M: temporal.Duration(m)}
	}
	ro.noShare = flags&2 != 0
	ro.shards = shards
	if flags&4 != 0 {
		n := int(r.u32())
		ro.bindings = event.Payload{}
		for i := 0; i < n && r.err == nil; i++ {
			name := r.str()
			ro.bindings[name] = r.value()
		}
	}
	if err := r.done(); err != nil {
		return "", regOpts{}, err
	}
	return src, ro, nil
}
