package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/event"
	"repro/internal/wal"
)

// Client speaks the binary protocol. It is safe for one goroutine to
// issue requests while another drains Outputs; requests themselves are
// serialized (the protocol replies in order).
//
// Pushes are pipelined: Push buffers frames and sends no reply, so a
// source saturates the link without a round trip per event. Any request
// with a reply (Sync, Register, ...) flushes the pipeline first.
type Client struct {
	nc net.Conn
	bw *bufio.Writer

	wmu   sync.Mutex // guards bw and nc writes
	reqMu sync.Mutex // serializes request/reply exchanges

	replies chan cframe
	outputs chan Output

	err  atomic.Value // error; sticky, first connection-fatal failure
	done chan struct{}
	once sync.Once
}

// cframe is one server frame as received.
type cframe struct {
	t    frameType
	body []byte
}

// Output is one subscribed output item: which query, its chain order
// tag, and the event (insert, retraction, or CTI punctuation).
type Output struct {
	Query int
	Tag   uint64
	Event event.Event
}

// RemoteQuery identifies a query registered through (or discovered via)
// the wire protocol.
type RemoteQuery struct {
	ID     int
	Name   string
	Shards int
	Shared bool
}

// Status is a status reply.
type Status struct {
	Query   int
	Shards  int
	Results uint64
	Err     string // the quarantine error, "" while healthy
}

// RegOptions mirrors the Register(src, ...QueryOption) surface on the
// wire. Zero value = defaults (query-text consistency, auto sharing,
// no template bindings, system-default shards).
type RegOptions struct {
	Spec      *cedr.Spec    // explicit consistency level
	Shards    int           // 0 = system default; cedr.AutoShards works too
	NoSharing bool          // private execution chain
	Bindings  event.Payload // template parameter bindings ($name)
}

// Dial connects, performs the handshake, and starts the reader. The
// outputs buffer holds outBuf frames (<=0 = DefaultQueue); if the
// consumer stops draining Outputs the reader blocks, TCP backpressure
// reaches the server, and the server fail-stops the connection.
func Dial(addr string, outBuf int) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if outBuf <= 0 {
		outBuf = DefaultQueue
	}
	c := &Client{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64*1024),
		replies: make(chan cframe, 1),
		outputs: make(chan Output, outBuf),
		done:    make(chan struct{}),
	}
	if _, err := nc.Write([]byte(Magic)); err != nil {
		nc.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// fail records the first connection-fatal error and closes the socket.
func (c *Client) fail(err error) {
	c.once.Do(func() {
		if err != nil {
			c.err.Store(err)
		}
		c.nc.Close()
		close(c.done)
	})
}

// Err returns the sticky connection error: the server's fatal err frame,
// a decode failure, or the transport error that ended the session.
func (c *Client) Err() error {
	if v := c.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Close tears the connection down. Outputs is closed once the reader
// exits.
func (c *Client) Close() error {
	c.fail(nil)
	return nil
}

// Outputs streams subscribed output frames in arrival order — for each
// query, exactly the in-process delivery order, verifiable by tag. The
// channel closes when the connection ends; check Err then.
func (c *Client) Outputs() <-chan Output { return c.outputs }

// readLoop decodes server frames, routing outputs to the output channel
// and everything else to the pending request.
func (c *Client) readLoop() {
	defer close(c.outputs)
	br := bufio.NewReaderSize(c.nc, 64*1024)
	for {
		t, body, err := readFrame(br)
		if err != nil {
			c.fail(err)
			return
		}
		if t == fOutput {
			r := &reader{b: body}
			qid := int(r.u32())
			tag := r.u64()
			ev := r.event()
			if err := r.done(); err != nil {
				c.fail(err)
				return
			}
			select {
			case c.outputs <- Output{Query: qid, Tag: tag, Event: ev}:
			case <-c.done:
				return
			}
			continue
		}
		select {
		case c.replies <- cframe{t, body}:
		default:
			// A reply nobody asked for: the server's parting fatal error.
			if t == fErr {
				r := &reader{b: body}
				c.fail(errors.New(r.str()))
			} else {
				c.fail(fmt.Errorf("server: unsolicited %v frame", t))
			}
			return
		}
	}
}

// write sends raw bytes through the buffered writer.
func (c *Client) write(frame []byte, flush bool) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.bw.Write(frame); err != nil {
		c.fail(err)
		return err
	}
	if flush {
		if err := c.bw.Flush(); err != nil {
			c.fail(err)
			return err
		}
	}
	return nil
}

// request performs one flushed request/reply exchange.
func (c *Client) request(t frameType, body []byte) (cframe, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	if err := c.Err(); err != nil {
		return cframe{}, err
	}
	if err := c.write(appendFrame(nil, t, body), true); err != nil {
		return cframe{}, err
	}
	fail := func(f cframe) (cframe, error) {
		if f.t == fErr {
			r := &reader{b: f.body}
			return cframe{}, errors.New(r.str())
		}
		return f, nil
	}
	select {
	case f := <-c.replies:
		return fail(f)
	case <-c.done:
		// The server may have answered (typically its fatal err frame)
		// right before closing; prefer that over a bare EOF.
		select {
		case f := <-c.replies:
			return fail(f)
		default:
		}
		err := c.Err()
		if err == nil {
			err = errors.New("server: connection closed")
		}
		return cframe{}, err
	}
}

// Open starts a source session named source (required before Push; an
// empty name lets the server use the remote address).
func (c *Client) Open(source string) error {
	f, err := c.request(fOpen, appendStr(nil, source))
	if err != nil {
		return err
	}
	if f.t != fOK {
		return fmt.Errorf("server: open answered %v", f.t)
	}
	return nil
}

// Push sends one event — insert, retraction, or CTI — without waiting
// for the server. Errors surface on the next Sync (or as the sticky
// Err). The event's tritemporal header travels whole: V, O, C intervals,
// RT, and CBT references.
func (c *Client) Push(e event.Event) error {
	body, err := wal.AppendEvent(nil, e)
	if err != nil {
		return err
	}
	return c.write(appendFrame(nil, fPush, body), false)
}

// Flush pushes buffered frames to the wire without a round trip.
func (c *Client) Flush() error { return c.write(nil, true) }

// Register compiles and installs src on the server with the full option
// surface, returning the query's wire identity.
func (c *Client) Register(src string, ro RegOptions) (RemoteQuery, error) {
	body := appendStr(nil, src)
	var flags byte
	var b, m int64
	if ro.Spec != nil {
		flags |= 1
		b, m = int64(ro.Spec.B), int64(ro.Spec.M)
	}
	if ro.NoSharing {
		flags |= 2
	}
	if len(ro.Bindings) > 0 {
		flags |= 4
	}
	body = append(body, flags)
	body = appendI64(body, b)
	body = appendI64(body, m)
	body = appendU32(body, uint32(int32(ro.Shards)))
	if len(ro.Bindings) > 0 {
		body = appendU32(body, uint32(len(ro.Bindings)))
		for _, name := range sortedKeys(ro.Bindings) {
			body = appendStr(body, name)
			var err error
			if body, err = wal.AppendValue(body, ro.Bindings[name]); err != nil {
				return RemoteQuery{}, err
			}
		}
	}
	f, err := c.request(fRegister, body)
	if err != nil {
		return RemoteQuery{}, err
	}
	if f.t != fRegistered {
		return RemoteQuery{}, fmt.Errorf("server: register answered %v", f.t)
	}
	r := &reader{b: f.body}
	q := RemoteQuery{ID: int(r.u32()), Shards: int(r.u32()), Shared: r.u8() == 1, Name: r.str()}
	if err := r.done(); err != nil {
		return RemoteQuery{}, err
	}
	return q, nil
}

// Subscribe starts streaming query id's output — accumulated history
// first (replayed atomically server-side), then live — onto Outputs.
func (c *Client) Subscribe(id int) error {
	f, err := c.request(fSubscribe, appendU32(nil, uint32(id)))
	if err != nil {
		return err
	}
	if f.t != fOK {
		return fmt.Errorf("server: subscribe answered %v", f.t)
	}
	return nil
}

// Unregister removes query id from the server.
func (c *Client) Unregister(id int) error {
	f, err := c.request(fUnregister, appendU32(nil, uint32(id)))
	if err != nil {
		return err
	}
	if f.t != fOK {
		return fmt.Errorf("server: unregister answered %v", f.t)
	}
	return nil
}

// Sync drains the engine and fsyncs the write-ahead log, returning the
// system's error state: nil means everything pushed so far is processed
// and durable.
func (c *Client) Sync() error {
	token := c.nextToken()
	f, err := c.request(fSync, appendU64(nil, token))
	if err != nil {
		return err
	}
	if f.t != fSynced {
		return fmt.Errorf("server: sync answered %v", f.t)
	}
	r := &reader{b: f.body}
	got, msg := r.u64(), r.str()
	if err := r.done(); err != nil {
		return err
	}
	if got != token {
		return fmt.Errorf("server: sync token mismatch: sent %d, got %d", token, got)
	}
	if msg != "" {
		return errors.New(msg)
	}
	return nil
}

// Finish flushes every query on the server, completing output
// histories (blocked strong-consistency output releases, UNLESS
// negations resolve).
func (c *Client) Finish() error {
	f, err := c.request(fFinish, nil)
	if err != nil {
		return err
	}
	if f.t != fOK {
		return fmt.Errorf("server: finish answered %v", f.t)
	}
	return nil
}

// Status reports query id's shard count, result count, and quarantine
// error.
func (c *Client) Status(id int) (Status, error) {
	f, err := c.request(fStatus, appendU32(nil, uint32(id)))
	if err != nil {
		return Status{}, err
	}
	if f.t != fStatusR {
		return Status{}, fmt.Errorf("server: status answered %v", f.t)
	}
	r := &reader{b: f.body}
	st := Status{Query: int(r.u32()), Shards: int(r.u32()), Results: r.u64(), Err: r.str()}
	if err := r.done(); err != nil {
		return Status{}, err
	}
	return st, nil
}

// tokens distinguishes concurrent-session sync replies in logs; the
// client serializes requests so a plain counter suffices.
var tokens atomic.Uint64

func (c *Client) nextToken() uint64 { return tokens.Add(1) }

// sortedKeys returns payload keys in deterministic order, so a binding
// set encodes identically across runs (sharing identity on the server
// compares binding maps, not wire order — this is for reproducibility
// of traffic, not correctness).
func sortedKeys(p event.Payload) []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
