// Package consistency implements Sections 4 and 5 of the paper: the
// spectrum of consistency levels and the consistency monitor that upholds
// them.
//
// A consistency level is a point (M, B) in the two-dimensional space of
// Figure 9: M is the maximum memory time (how far into the past the
// operator is willing to remember, and therefore repair), B the maximum
// blocking time (how long an event may be held in the alignment buffer
// waiting for stragglers). The named levels are the corners:
//
//	strong  = (M=∞, B=∞)  — align by blocking; output is final
//	middle  = (M=∞, B=0)  — emit optimistically; repair with retractions
//	weak    = (M<∞, B=0)  — optimistic, and free to forget old mistakes
//
// Only the triangle B <= M is meaningful: blocking longer than one is
// willing to remember has no effect (the paper's "lower right triangle").
package consistency

import (
	"fmt"
	"math"

	"repro/internal/temporal"
)

// Unbounded is the infinite duration used for the strong/middle corners.
const Unbounded temporal.Duration = math.MaxInt64

// Spec is a consistency level: a point in the (M, B) spectrum. Both bounds
// are in application (Sync) time.
type Spec struct {
	// B is the maximum blocking time: an event may wait in the alignment
	// buffer until the stream's Sync frontier passes its own Sync time by
	// more than B; after that it is processed optimistically.
	B temporal.Duration
	// M is the maximum memory time: state needed to repair output older
	// than M behind the frontier is discarded, and late events older than
	// that are forgotten rather than repaired.
	M temporal.Duration
}

// Strong returns the highest consistency level: block until provider
// guarantees align the input, remember everything.
func Strong() Spec { return Spec{B: Unbounded, M: Unbounded} }

// Middle returns the middle level: never block, remember everything, repair
// optimistic output with retractions.
func Middle() Spec { return Spec{B: 0, M: Unbounded} }

// Weak returns a weak level: never block, remember (and repair) only m time
// units into the past. Weak(0) is the memoryless corner.
func Weak(m temporal.Duration) Spec { return Spec{B: 0, M: m} }

// Level returns a point in the interior of the spectrum, clamping to the
// meaningful triangle B <= M.
func Level(b, m temporal.Duration) Spec {
	if b > m {
		b = m
	}
	return Spec{B: b, M: m}
}

// Blocking reports whether the level ever holds events back.
func (s Spec) Blocking() bool { return s.B > 0 }

// Name renders the level in the paper's vocabulary.
func (s Spec) Name() string {
	switch {
	case s.B == Unbounded && s.M == Unbounded:
		return "strong"
	case s.B == 0 && s.M == Unbounded:
		return "middle"
	case s.B == 0:
		return fmt.Sprintf("weak(M=%d)", int64(s.M))
	default:
		return fmt.Sprintf("level(B=%d,M=%d)", int64(s.B), int64(s.M))
	}
}
