package consistency

import "repro/internal/event"

// Burst is a caller-owned accumulator for the batched tagged push path.
// Where PushTagged hands back per-call slices whose tags are freshly
// allocated, PushTaggedInto appends outputs and their order tags across
// many calls into one Burst, carving every tag's bytes out of the shared
// Arena. A shard worker processes a whole run of input items through its
// monitor chain into a single Burst and ships that one buffer to the
// merger — steady-state handoff allocates nothing once the buffers have
// grown to the workload's high-water mark.
//
// Tags[i] aliases Arena (or a previous backing array of it after growth;
// tag bytes are immutable either way). Evs and Tags stay parallel after
// every *Into call. Reset keeps capacity.
type Burst struct {
	Evs   []event.Event
	Tags  [][]byte
	Arena []byte
}

// Reset empties the burst, retaining backing storage.
func (b *Burst) Reset() {
	b.Evs = b.Evs[:0]
	b.Tags = b.Tags[:0]
	b.Arena = b.Arena[:0]
}

// Len reports the number of accumulated outputs.
func (b *Burst) Len() int { return len(b.Evs) }
