package consistency

// This file freezes the pre-optimization consistency monitor as a
// test-only reference. It is a verbatim copy of the seed monitor.go
// (sort-per-push alignment buffer, full-log sortLog, copy-per-checkpoint,
// full replay-from-checkpoint repair) with types renamed ref*. The
// randomized property test in equivalence_test.go asserts that the
// optimized Monitor produces item-for-item identical physical output.
//
// Do not "improve" this file: its value is that it is slow and obviously
// correct.

import (
	"sort"

	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/temporal"
)

type refMonitor struct {
	op   operators.Op
	ckpt operators.Op
	spec Spec

	log     []refLogItem
	emitted map[event.ID]refNetFact
	gen     map[event.ID]uint64
	buffer  []refBufEntry

	portG         []temporal.Time
	guarantee     temporal.Time
	frontier      temporal.Time
	processedSync temporal.Time
	seq           int
	now           temporal.Time

	met Metrics
}

type refLogItem struct {
	marker bool
	t      temporal.Time
	key    temporal.Time
	port   int
	ev     event.Event
	seq    int
	opt    bool
}

func (li refLogItem) sync() temporal.Time {
	if li.marker {
		return li.key
	}
	return li.ev.Sync()
}

type refBufEntry struct {
	port    int
	ev      event.Event
	arrival temporal.Time
	seq     int
}

type refNetFact struct {
	ev  event.Event
	gen uint64
}

func newRefMonitor(op operators.Op, spec Spec) *refMonitor {
	portG := make([]temporal.Time, op.Arity())
	for i := range portG {
		portG[i] = temporal.MinTime
	}
	return &refMonitor{
		op:            op,
		ckpt:          op.Clone(),
		spec:          spec,
		emitted:       map[event.ID]refNetFact{},
		gen:           map[event.ID]uint64{},
		portG:         portG,
		guarantee:     temporal.MinTime,
		frontier:      temporal.MinTime,
		processedSync: temporal.MinTime,
	}
}

func (m *refMonitor) Metrics() Metrics { return m.met }

func (m *refMonitor) SetSpec(s Spec) []event.Event {
	m.spec = s
	out := m.releaseTimedOut()
	m.trimMemory()
	m.sampleState()
	return m.stamp(out)
}

func (m *refMonitor) Push(port int, e event.Event) []event.Event {
	if port < 0 || port >= len(m.portG) {
		return nil
	}
	if e.C.Start > m.now {
		m.now = e.C.Start
	}
	var out []event.Event
	if e.IsCTI() {
		m.met.InputCTIs++
		out = m.pushCTI(port, e.Sync())
	} else {
		m.met.InputEvents++
		out = m.pushData(port, e)
	}
	m.trimMemory()
	m.sampleState()
	return m.stamp(out)
}

func (m *refMonitor) pushCTI(port int, t temporal.Time) []event.Event {
	if t > m.portG[port] {
		m.portG[port] = t
	}
	g := m.portG[0]
	for _, pg := range m.portG[1:] {
		if pg < g {
			g = pg
		}
	}
	if g <= m.guarantee {
		return nil
	}
	m.guarantee = g
	if g > m.frontier {
		m.frontier = g
	}
	var out []event.Event
	out = append(out, m.releaseCovered(g)...)
	key := g
	if m.processedSync > key {
		key = m.processedSync
	}
	m.log = append(m.log, refLogItem{marker: true, t: g, key: key, seq: m.nextSeq()})
	m.sortLog()
	out = append(out, m.emit(m.op.Advance(g))...)
	m.checkpointTo(g)
	out = append(out, m.releaseTimedOut()...)
	og := m.op.OutputGuarantee(g)
	m.met.OutputCTIs++
	out = append(out, event.NewCTI(og))
	return out
}

func (m *refMonitor) pushData(port int, e event.Event) []event.Event {
	if e.Sync() < m.guarantee {
		m.met.Violations++
		return nil
	}
	if e.Sync() > m.frontier {
		m.frontier = e.Sync()
	}
	if m.spec.M != Unbounded && e.Sync() < m.frontier.Add(-m.spec.M) {
		m.met.Dropped++
		return nil
	}
	var out []event.Event
	if m.spec.B > 0 && e.Sync() >= m.processedSync {
		m.buffer = append(m.buffer, refBufEntry{port: port, ev: e, arrival: m.now, seq: m.nextSeq()})
		sort.SliceStable(m.buffer, func(i, j int) bool {
			return m.buffer[i].ev.Sync() < m.buffer[j].ev.Sync()
		})
	} else {
		out = append(out, m.admit(port, e)...)
	}
	out = append(out, m.releaseTimedOut()...)
	return out
}

func (m *refMonitor) releaseCovered(g temporal.Time) []event.Event {
	var out []event.Event
	i := 0
	for ; i < len(m.buffer); i++ {
		if m.buffer[i].ev.Sync() > g {
			break
		}
		be := m.buffer[i]
		m.met.BlockedEvents++
		m.met.TotalBlocking += m.now.Sub(be.arrival)
		out = append(out, m.admit(be.port, be.ev)...)
	}
	m.buffer = m.buffer[i:]
	return out
}

func (m *refMonitor) releaseTimedOut() []event.Event {
	if m.spec.B == Unbounded {
		return nil
	}
	var out []event.Event
	i := 0
	for ; i < len(m.buffer); i++ {
		be := m.buffer[i]
		if be.ev.Sync().Add(m.spec.B) >= m.frontier {
			break
		}
		m.met.BlockedEvents++
		m.met.TotalBlocking += m.now.Sub(be.arrival)
		out = append(out, m.admit(be.port, be.ev)...)
	}
	m.buffer = m.buffer[i:]
	return out
}

func (m *refMonitor) admit(port int, e event.Event) []event.Event {
	li := refLogItem{port: port, ev: e, seq: m.nextSeq(), opt: m.spec.B != Unbounded}
	if e.Sync() >= m.processedSync {
		m.log = append(m.log, li)
		var out []event.Event
		if li.opt {
			out = append(out, m.emit(m.op.Advance(e.Sync()))...)
		}
		out = append(out, m.emit(m.op.Process(port, e))...)
		m.processedSync = e.Sync()
		return out
	}
	m.met.Replays++
	m.log = append(m.log, li)
	m.sortLog()
	fresh := m.ckpt.Clone()
	newEmitted := map[event.ID]refNetFact{}
	m.replayInto(fresh, newEmitted)
	m.op = fresh
	deltas := m.diff(newEmitted)
	m.emitted = newEmitted
	return deltas
}

func (m *refMonitor) replayInto(fresh operators.Op, tbl map[event.ID]refNetFact) {
	for _, item := range m.log {
		if item.marker {
			refFoldInto(tbl, fresh.Advance(item.t))
			continue
		}
		if item.opt {
			refFoldInto(tbl, fresh.Advance(item.ev.Sync()))
		}
		refFoldInto(tbl, fresh.Process(item.port, item.ev))
	}
}

func (m *refMonitor) sortLog() {
	sort.SliceStable(m.log, func(i, j int) bool {
		si, sj := m.log[i].sync(), m.log[j].sync()
		if si != sj {
			return si < sj
		}
		return m.log[i].seq < m.log[j].seq
	})
}

func (m *refMonitor) checkpointTo(g temporal.Time) {
	cut := 0
	for cut < len(m.log) && m.log[cut].sync() <= g {
		item := m.log[cut]
		if item.marker {
			m.ckpt.Advance(item.t)
		} else {
			if item.opt {
				m.ckpt.Advance(item.ev.Sync())
			}
			m.ckpt.Process(item.port, item.ev)
		}
		cut++
	}
	if cut == 0 {
		return
	}
	m.log = append([]refLogItem{}, m.log[cut:]...)
	m.rebuildEmitted()
}

func (m *refMonitor) rebuildEmitted() {
	fresh := m.ckpt.Clone()
	newEmitted := map[event.ID]refNetFact{}
	m.replayInto(fresh, newEmitted)
	for id, nf := range newEmitted {
		if old, ok := m.emitted[id]; ok {
			nf.gen = old.gen
			newEmitted[id] = nf
		} else if g, ok := m.gen[id]; ok {
			nf.gen = g
			newEmitted[id] = nf
		}
	}
	m.emitted = newEmitted
}

func (m *refMonitor) trimMemory() {
	if m.spec.M == Unbounded {
		return
	}
	horizon := m.frontier.Add(-m.spec.M)
	if len(m.log) > 0 && m.log[0].sync() < horizon {
		m.checkpointTo(horizon)
	}
}

func (m *refMonitor) emit(outs []event.Event) []event.Event {
	if len(outs) == 0 {
		return nil
	}
	rewritten := make([]event.Event, 0, len(outs))
	for _, e := range outs {
		gid := m.genOf(e.ID)
		if e.Kind == event.Retract {
			m.met.OutputRetractions++
			if nf, ok := m.emitted[e.ID]; ok {
				if e.V.End <= nf.ev.V.Start {
					m.gen[e.ID] = nf.gen + 1
					delete(m.emitted, e.ID)
				} else {
					nf.ev.V.End = e.V.End
					m.emitted[e.ID] = nf
				}
			}
		} else {
			m.met.OutputInserts++
			m.emitted[e.ID] = refNetFact{ev: e.Clone(), gen: gid}
		}
		r := e.Clone()
		r.ID = event.Pair(e.ID, event.ID(gid))
		rewritten = append(rewritten, r)
	}
	return rewritten
}

func (m *refMonitor) genOf(id event.ID) uint64 {
	if nf, ok := m.emitted[id]; ok {
		return nf.gen
	}
	return m.gen[id]
}

func refFoldInto(tbl map[event.ID]refNetFact, outs []event.Event) {
	for _, e := range outs {
		if e.Kind == event.Retract {
			if nf, ok := tbl[e.ID]; ok {
				if e.V.End <= nf.ev.V.Start {
					delete(tbl, e.ID)
				} else {
					nf.ev.V.End = e.V.End
					tbl[e.ID] = nf
				}
			}
			continue
		}
		tbl[e.ID] = refNetFact{ev: e.Clone()}
	}
}

func (m *refMonitor) diff(next map[event.ID]refNetFact) []event.Event {
	ids := make([]event.ID, 0, len(m.emitted)+len(next))
	seen := map[event.ID]bool{}
	for id := range m.emitted {
		ids = append(ids, id)
		seen[id] = true
	}
	for id := range next {
		if !seen[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var out []event.Event
	for _, id := range ids {
		old, hadOld := m.emitted[id]
		nw, hasNew := next[id]
		switch {
		case hadOld && !hasNew:
			r := old.ev.Clone()
			r.Kind = event.Retract
			r.V.End = r.V.Start
			r.ID = event.Pair(id, event.ID(old.gen))
			out = append(out, r)
			m.met.OutputRetractions++
			m.met.Compensations++
			m.gen[id] = old.gen + 1
		case !hadOld && hasNew:
			ng := m.gen[id]
			ins := nw.ev.Clone()
			ins.ID = event.Pair(id, event.ID(ng))
			nw.gen = ng
			next[id] = nw
			out = append(out, ins)
			m.met.OutputInserts++
		case old.ev.SameFact(nw.ev):
			nw.gen = old.gen
			next[id] = nw
		case nw.ev.V.Start == old.ev.V.Start && nw.ev.V.End < old.ev.V.End && nw.ev.Payload.Equal(old.ev.Payload):
			r := old.ev.Clone()
			r.Kind = event.Retract
			r.V.End = nw.ev.V.End
			r.ID = event.Pair(id, event.ID(old.gen))
			out = append(out, r)
			m.met.OutputRetractions++
			m.met.Compensations++
			nw.gen = old.gen
			next[id] = nw
		default:
			r := old.ev.Clone()
			r.Kind = event.Retract
			r.V.End = r.V.Start
			r.ID = event.Pair(id, event.ID(old.gen))
			out = append(out, r)
			m.met.OutputRetractions++
			m.met.Compensations++
			ng := old.gen + 1
			ins := nw.ev.Clone()
			ins.ID = event.Pair(id, event.ID(ng))
			out = append(out, ins)
			m.met.OutputInserts++
			nw.gen = ng
			next[id] = nw
			m.gen[id] = ng
		}
	}
	return out
}

func (m *refMonitor) stamp(outs []event.Event) []event.Event {
	for i := range outs {
		outs[i].C = temporal.From(m.now)
	}
	return outs
}

func (m *refMonitor) nextSeq() int {
	m.seq++
	return m.seq
}

func (m *refMonitor) sampleState() {
	cur := len(m.buffer) + len(m.log) + m.op.StateSize() + m.ckpt.StateSize()
	m.met.CurState = cur
	if cur > m.met.MaxState {
		m.met.MaxState = cur
	}
}

func (m *refMonitor) Finish() []event.Event {
	var out []event.Event
	for _, be := range m.buffer {
		out = append(out, m.admit(be.port, be.ev)...)
	}
	m.buffer = nil
	out = append(out, m.emit(m.op.Advance(temporal.Infinity))...)
	m.met.OutputCTIs++
	out = append(out, event.NewCTI(temporal.Infinity))
	m.sampleState()
	return m.stamp(out)
}
