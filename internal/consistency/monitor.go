package consistency

import (
	"sort"

	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/temporal"
)

// Monitor is the consistency monitor of Figure 7: it wraps an operational
// module (an operators.Op) and upholds a consistency level under
// out-of-order physical arrival.
//
//	           ┌──────────────────────────────┐
//	input ───► │ consistency monitor          │
//	guarantees │   alignment buffer           │ ───► output
//	           │   checkpoint + input log     │      + output guarantees
//	           │   operational module (Op)    │
//	           └──────────────────────────────┘
//
// Mechanics, by level:
//
//   - Blocking (B > 0): out-of-order events wait in the alignment buffer
//     until an input guarantee (CTI) covers them — or until the stream's
//     Sync frontier has passed them by more than B, at which point they are
//     processed optimistically.
//
//   - Optimism (B < ∞): events are fed to the operator immediately, with
//     the operator speculatively advanced to each event's Sync time so that
//     blocking operators (difference, aggregation) emit early output.
//
//   - Repair (M > 0): the monitor keeps a checkpoint of the operator as of
//     the last input guarantee plus the log of every input since. When a
//     straggler arrives, the operator is rolled back to the checkpoint and
//     the log is replayed with the straggler in its proper place; the
//     difference between the previously emitted output and the replayed
//     output is emitted as compensating retractions and insertions.
//
//   - Forgetting (M < ∞): stragglers older than M behind the frontier are
//     dropped (the weak level's license to leave earlier state wrong), and
//     repair state older than M is folded irrevocably into the checkpoint.
//
// At common sync points all levels have output the same state, which is
// what makes the levels seamlessly switchable (Section 5); the tests verify
// this.
type Monitor struct {
	op   operators.Op // live operator
	ckpt operators.Op // operator state as of the last absorbed guarantee
	spec Spec

	log     []logItem
	emitted map[event.ID]netFact
	gen     map[event.ID]uint64
	buffer  []bufEntry

	portG         []temporal.Time
	guarantee     temporal.Time
	frontier      temporal.Time // max Sync observed (incl. buffered)
	processedSync temporal.Time // max Sync fed to the live operator
	seq           int
	now           temporal.Time // current CEDR time

	met Metrics
}

type logItem struct {
	marker bool
	t      temporal.Time // marker guarantee time (the Advance argument)
	// key is the marker's position in the replay order. A guarantee that
	// arrives after the operator has optimistically advanced beyond it was
	// a no-op live, so it must replay at its live position (the processed
	// frontier at push time), not at its own timestamp — otherwise replay
	// would advance the operator at a point the live run never did.
	key  temporal.Time
	port int
	ev   event.Event
	seq  int
	// opt records whether the live path speculatively advanced the
	// operator before this event (true at non-blocking levels). Replay and
	// checkpointing must reproduce the same calls even if the level has
	// changed since, so the policy travels with the item.
	opt bool
}

func (li logItem) sync() temporal.Time {
	if li.marker {
		return li.key
	}
	return li.ev.Sync()
}

type bufEntry struct {
	port    int
	ev      event.Event
	arrival temporal.Time
	seq     int
}

type netFact struct {
	ev  event.Event // net emitted fact (V is the current net interval)
	gen uint64      // generation used in the physical output ID
}

// Metrics quantifies the three axes of Figure 8 — blocking, state size and
// output size — plus the repair machinery's activity.
type Metrics struct {
	InputEvents int
	InputCTIs   int

	OutputInserts     int
	OutputRetractions int
	OutputCTIs        int

	// Compensations counts retractions emitted to repair optimistic output
	// (a subset of OutputRetractions).
	Compensations int
	// Dropped counts stragglers forgotten because they were older than M.
	Dropped int
	// Violations counts events that arrived in violation of a provider
	// guarantee; they are rejected.
	Violations int
	// Replays counts checkpoint rollbacks.
	Replays int

	// BlockedEvents and TotalBlocking measure alignment-buffer residency in
	// CEDR time.
	BlockedEvents int
	TotalBlocking temporal.Duration

	// MaxState is the high-water mark of buffer + log + operator state.
	MaxState int
	CurState int
}

// OutputEvents is the total number of data items emitted.
func (m Metrics) OutputEvents() int { return m.OutputInserts + m.OutputRetractions }

// MeanBlocking is the average CEDR-time residency of blocked events.
func (m Metrics) MeanBlocking() float64 {
	if m.BlockedEvents == 0 {
		return 0
	}
	return float64(m.TotalBlocking) / float64(m.BlockedEvents)
}

// NewMonitor wraps op with a consistency monitor at the given level.
func NewMonitor(op operators.Op, spec Spec) *Monitor {
	portG := make([]temporal.Time, op.Arity())
	for i := range portG {
		portG[i] = temporal.MinTime
	}
	return &Monitor{
		op:            op,
		ckpt:          op.Clone(),
		spec:          spec,
		emitted:       map[event.ID]netFact{},
		gen:           map[event.ID]uint64{},
		portG:         portG,
		guarantee:     temporal.MinTime,
		frontier:      temporal.MinTime,
		processedSync: temporal.MinTime,
	}
}

// Spec returns the monitor's consistency level.
func (m *Monitor) Spec() Spec { return m.spec }

// Metrics returns a snapshot of the monitor's counters.
func (m *Monitor) Metrics() Metrics { return m.met }

// Guarantee returns the current combined input guarantee.
func (m *Monitor) Guarantee() temporal.Time { return m.guarantee }

// SetSpec switches the consistency level at runtime. The paper observes
// that at common sync points every level holds the same output state, so
// switching at a sync point is seamless; switching between sync points
// changes only how pending and future input is treated. A loosened blocking
// bound may release buffered events, which are returned.
func (m *Monitor) SetSpec(s Spec) []event.Event {
	m.spec = s
	out := m.releaseTimedOut()
	m.trimMemory()
	m.sampleState()
	return m.stamp(out)
}

// Push delivers one physical stream item (data or CTI) to port. The item's
// C.Start must carry its CEDR arrival time. It returns the physical output
// items, stamped with the current CEDR time.
func (m *Monitor) Push(port int, e event.Event) []event.Event {
	if port < 0 || port >= len(m.portG) {
		return nil
	}
	if e.C.Start > m.now {
		m.now = e.C.Start
	}
	var out []event.Event
	if e.IsCTI() {
		m.met.InputCTIs++
		out = m.pushCTI(port, e.Sync())
	} else {
		m.met.InputEvents++
		out = m.pushData(port, e)
	}
	m.trimMemory()
	m.sampleState()
	return m.stamp(out)
}

func (m *Monitor) pushCTI(port int, t temporal.Time) []event.Event {
	if t > m.portG[port] {
		m.portG[port] = t
	}
	g := m.portG[0]
	for _, pg := range m.portG[1:] {
		if pg < g {
			g = pg
		}
	}
	if g <= m.guarantee {
		return nil
	}
	m.guarantee = g
	if g > m.frontier {
		m.frontier = g
	}
	var out []event.Event
	// Clean releases: buffered events covered by the guarantee, in Sync
	// order.
	out = append(out, m.releaseCovered(g)...)
	// Record and apply the guarantee itself, positioned where the live
	// operator actually executes it.
	key := g
	if m.processedSync > key {
		key = m.processedSync
	}
	m.log = append(m.log, logItem{marker: true, t: g, key: key, seq: m.nextSeq()})
	m.sortLog()
	out = append(out, m.emit(m.op.Advance(g))...)
	// Absorb everything the guarantee finalizes into the checkpoint.
	m.checkpointTo(g)
	// Timed-out releases may also be due (the guarantee moved the frontier).
	out = append(out, m.releaseTimedOut()...)
	og := m.op.OutputGuarantee(g)
	m.met.OutputCTIs++
	out = append(out, event.NewCTI(og))
	return out
}

func (m *Monitor) pushData(port int, e event.Event) []event.Event {
	if e.Sync() < m.guarantee {
		m.met.Violations++
		return nil
	}
	if e.Sync() > m.frontier {
		m.frontier = e.Sync()
	}
	// Weak levels forget stragglers beyond the memory horizon.
	if m.spec.M != Unbounded && e.Sync() < m.frontier.Add(-m.spec.M) {
		m.met.Dropped++
		return nil
	}
	var out []event.Event
	if m.spec.B > 0 && e.Sync() >= m.processedSync {
		// In-order so far: hold for possible stragglers.
		m.buffer = append(m.buffer, bufEntry{port: port, ev: e, arrival: m.now, seq: m.nextSeq()})
		sort.SliceStable(m.buffer, func(i, j int) bool {
			return m.buffer[i].ev.Sync() < m.buffer[j].ev.Sync()
		})
	} else {
		out = append(out, m.admit(port, e)...)
	}
	out = append(out, m.releaseTimedOut()...)
	return out
}

// releaseCovered processes buffered events whose Sync the guarantee covers.
func (m *Monitor) releaseCovered(g temporal.Time) []event.Event {
	var out []event.Event
	i := 0
	for ; i < len(m.buffer); i++ {
		if m.buffer[i].ev.Sync() > g {
			break
		}
		be := m.buffer[i]
		m.met.BlockedEvents++
		m.met.TotalBlocking += m.now.Sub(be.arrival)
		out = append(out, m.admit(be.port, be.ev)...)
	}
	m.buffer = m.buffer[i:]
	return out
}

// releaseTimedOut processes buffered events whose blocking budget B has
// been exhausted by frontier progress.
func (m *Monitor) releaseTimedOut() []event.Event {
	if m.spec.B == Unbounded {
		return nil
	}
	var out []event.Event
	i := 0
	for ; i < len(m.buffer); i++ {
		be := m.buffer[i]
		if be.ev.Sync().Add(m.spec.B) >= m.frontier {
			break
		}
		m.met.BlockedEvents++
		m.met.TotalBlocking += m.now.Sub(be.arrival)
		out = append(out, m.admit(be.port, be.ev)...)
	}
	m.buffer = m.buffer[i:]
	return out
}

// admit feeds one event to the live operator, via the fast path when it is
// in order and via checkpoint replay when it is a straggler.
func (m *Monitor) admit(port int, e event.Event) []event.Event {
	li := logItem{port: port, ev: e, seq: m.nextSeq(), opt: m.spec.B != Unbounded}
	if e.Sync() >= m.processedSync {
		// Fast path.
		m.log = append(m.log, li)
		var out []event.Event
		if li.opt {
			out = append(out, m.emit(m.op.Advance(e.Sync()))...)
		}
		out = append(out, m.emit(m.op.Process(port, e))...)
		m.processedSync = e.Sync()
		return out
	}
	// Straggler: rollback and replay.
	m.met.Replays++
	m.log = append(m.log, li)
	m.sortLog()
	fresh := m.ckpt.Clone()
	newEmitted := map[event.ID]netFact{}
	m.replayInto(fresh, newEmitted)
	m.op = fresh
	deltas := m.diff(newEmitted)
	m.emitted = newEmitted
	return deltas
}

// replayInto runs the whole log through a fresh operator, folding outputs
// into tbl, using exactly the advance policy the live path uses so the
// result is bit-identical to an equivalent in-order run.
func (m *Monitor) replayInto(fresh operators.Op, tbl map[event.ID]netFact) {
	for _, item := range m.log {
		if item.marker {
			foldInto(tbl, fresh.Advance(item.t))
			continue
		}
		if item.opt {
			foldInto(tbl, fresh.Advance(item.ev.Sync()))
		}
		foldInto(tbl, fresh.Process(item.port, item.ev))
	}
}

// sortLog restores the log's (Sync, seq) order after an append.
func (m *Monitor) sortLog() {
	sort.SliceStable(m.log, func(i, j int) bool {
		si, sj := m.log[i].sync(), m.log[j].sync()
		if si != sj {
			return si < sj
		}
		return m.log[i].seq < m.log[j].seq
	})
}

// checkpointTo absorbs every log item with Sync <= g into the checkpoint
// operator (with the same advance policy the live path used, so the two
// stay identical) and silently rebuilds the net-emitted table from the
// remaining suffix.
func (m *Monitor) checkpointTo(g temporal.Time) {
	cut := 0
	for cut < len(m.log) && m.log[cut].sync() <= g {
		item := m.log[cut]
		if item.marker {
			m.ckpt.Advance(item.t)
		} else {
			if item.opt {
				m.ckpt.Advance(item.ev.Sync())
			}
			m.ckpt.Process(item.port, item.ev)
		}
		cut++
	}
	if cut == 0 {
		return
	}
	m.log = append([]logItem{}, m.log[cut:]...)
	m.rebuildEmitted()
}

// rebuildEmitted recomputes the net-emitted table as the fold of the log
// suffix over a clone of the checkpoint, preserving generations.
// Generations of facts that became final are forgotten.
func (m *Monitor) rebuildEmitted() {
	fresh := m.ckpt.Clone()
	newEmitted := map[event.ID]netFact{}
	m.replayInto(fresh, newEmitted)
	for id, nf := range newEmitted {
		if old, ok := m.emitted[id]; ok {
			nf.gen = old.gen
			newEmitted[id] = nf
		} else if g, ok := m.gen[id]; ok {
			nf.gen = g
			newEmitted[id] = nf
		}
	}
	m.emitted = newEmitted
}

// trimMemory enforces the M bound: log items older than frontier − M are
// folded into the checkpoint and become unrepairable.
func (m *Monitor) trimMemory() {
	if m.spec.M == Unbounded {
		return
	}
	horizon := m.frontier.Add(-m.spec.M)
	if len(m.log) > 0 && m.log[0].sync() < horizon {
		m.checkpointTo(horizon)
	}
}

// emit records freshly produced operator output in the net-emitted table
// and rewrites IDs with the fact's current generation, so that a removed-
// and-reinserted fact never reuses a physical ID (the paper's new-K-chain
// rule from Figure 2).
func (m *Monitor) emit(outs []event.Event) []event.Event {
	if len(outs) == 0 {
		return nil
	}
	rewritten := make([]event.Event, 0, len(outs))
	for _, e := range outs {
		gid := m.genOf(e.ID)
		if e.Kind == event.Retract {
			m.met.OutputRetractions++
			if nf, ok := m.emitted[e.ID]; ok {
				if e.V.End <= nf.ev.V.Start {
					m.gen[e.ID] = nf.gen + 1 // retire this generation
					delete(m.emitted, e.ID)
				} else {
					nf.ev.V.End = e.V.End
					m.emitted[e.ID] = nf
				}
			}
		} else {
			m.met.OutputInserts++
			m.emitted[e.ID] = netFact{ev: e.Clone(), gen: gid}
		}
		r := e.Clone()
		r.ID = event.Pair(e.ID, event.ID(gid))
		rewritten = append(rewritten, r)
	}
	return rewritten
}

func (m *Monitor) genOf(id event.ID) uint64 {
	if nf, ok := m.emitted[id]; ok {
		return nf.gen
	}
	return m.gen[id]
}

// foldInto applies operator outputs to a net-fact table without emitting.
func foldInto(tbl map[event.ID]netFact, outs []event.Event) {
	for _, e := range outs {
		if e.Kind == event.Retract {
			if nf, ok := tbl[e.ID]; ok {
				if e.V.End <= nf.ev.V.Start {
					delete(tbl, e.ID)
				} else {
					nf.ev.V.End = e.V.End
					tbl[e.ID] = nf
				}
			}
			continue
		}
		tbl[e.ID] = netFact{ev: e.Clone()}
	}
}

// diff compares the previously emitted net facts against the replayed net
// facts and produces the compensating physical deltas: retractions for
// facts that shrank or vanished, fresh inserts (under a bumped generation)
// for facts that appeared or changed shape.
func (m *Monitor) diff(next map[event.ID]netFact) []event.Event {
	ids := make([]event.ID, 0, len(m.emitted)+len(next))
	seen := map[event.ID]bool{}
	for id := range m.emitted {
		ids = append(ids, id)
		seen[id] = true
	}
	for id := range next {
		if !seen[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var out []event.Event
	for _, id := range ids {
		old, hadOld := m.emitted[id]
		nw, hasNew := next[id]
		switch {
		case hadOld && !hasNew:
			r := old.ev.Clone()
			r.Kind = event.Retract
			r.V.End = r.V.Start
			r.ID = event.Pair(id, event.ID(old.gen))
			out = append(out, r)
			m.met.OutputRetractions++
			m.met.Compensations++
			m.gen[id] = old.gen + 1
		case !hadOld && hasNew:
			ng := m.gen[id]
			ins := nw.ev.Clone()
			ins.ID = event.Pair(id, event.ID(ng))
			nw.gen = ng
			next[id] = nw
			out = append(out, ins)
			m.met.OutputInserts++
		case old.ev.SameFact(nw.ev):
			nw.gen = old.gen
			next[id] = nw
		case nw.ev.V.Start == old.ev.V.Start && nw.ev.V.End < old.ev.V.End && nw.ev.Payload.Equal(old.ev.Payload):
			r := old.ev.Clone()
			r.Kind = event.Retract
			r.V.End = nw.ev.V.End
			r.ID = event.Pair(id, event.ID(old.gen))
			out = append(out, r)
			m.met.OutputRetractions++
			m.met.Compensations++
			nw.gen = old.gen
			next[id] = nw
		default:
			// Shape changed: remove and reinsert under a new generation.
			r := old.ev.Clone()
			r.Kind = event.Retract
			r.V.End = r.V.Start
			r.ID = event.Pair(id, event.ID(old.gen))
			out = append(out, r)
			m.met.OutputRetractions++
			m.met.Compensations++
			ng := old.gen + 1
			ins := nw.ev.Clone()
			ins.ID = event.Pair(id, event.ID(ng))
			out = append(out, ins)
			m.met.OutputInserts++
			nw.gen = ng
			next[id] = nw
			m.gen[id] = ng
		}
	}
	return out
}

// stamp sets the CEDR time of emitted items to the current arrival instant.
func (m *Monitor) stamp(outs []event.Event) []event.Event {
	for i := range outs {
		outs[i].C = temporal.From(m.now)
	}
	return outs
}

func (m *Monitor) nextSeq() int {
	m.seq++
	return m.seq
}

func (m *Monitor) sampleState() {
	cur := len(m.buffer) + len(m.log) + m.op.StateSize() + m.ckpt.StateSize()
	m.met.CurState = cur
	if cur > m.met.MaxState {
		m.met.MaxState = cur
	}
}

// Finish closes the stream: it releases every buffered event (as if a final
// guarantee covered the whole stream) and advances the operator to
// infinity, flushing blocking operators. The returned items complete the
// output history.
func (m *Monitor) Finish() []event.Event {
	var out []event.Event
	for _, be := range m.buffer {
		out = append(out, m.admit(be.port, be.ev)...)
	}
	m.buffer = nil
	out = append(out, m.emit(m.op.Advance(temporal.Infinity))...)
	m.met.OutputCTIs++
	out = append(out, event.NewCTI(temporal.Infinity))
	m.sampleState()
	return m.stamp(out)
}
