package consistency

import (
	"slices"
	"sort"

	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/ordkey"
	"repro/internal/temporal"
)

// Monitor is the consistency monitor of Figure 7: it wraps an operational
// module (an operators.Op) and upholds a consistency level under
// out-of-order physical arrival.
//
//	           ┌──────────────────────────────┐
//	input ───► │ consistency monitor          │
//	guarantees │   alignment buffer           │ ───► output
//	           │   checkpoint + input log     │      + output guarantees
//	           │   operational module (Op)    │
//	           └──────────────────────────────┘
//
// Mechanics, by level:
//
//   - Blocking (B > 0): out-of-order events wait in the alignment buffer
//     until an input guarantee (CTI) covers them — or until the stream's
//     Sync frontier has passed them by more than B, at which point they are
//     processed optimistically.
//
//   - Optimism (B < ∞): events are fed to the operator immediately, with
//     the operator speculatively advanced to each event's Sync time so that
//     blocking operators (difference, aggregation) emit early output.
//
//   - Repair (M > 0): the monitor keeps a checkpoint of the operator as of
//     the last input guarantee plus the log of every input since. When a
//     straggler arrives, the operator is rolled back to a snapshot taken at
//     or before the straggler's position and the log suffix is replayed
//     with the straggler in its proper place; the difference between the
//     previously emitted output and the replayed output is emitted as
//     compensating retractions and insertions.
//
//   - Forgetting (M < ∞): stragglers older than M behind the frontier are
//     dropped (the weak level's license to leave earlier state wrong), and
//     repair state older than M is folded irrevocably into the checkpoint.
//
// At common sync points all levels have output the same state, which is
// what makes the levels seamlessly switchable (Section 5); the tests verify
// this against a frozen reference implementation, item for item.
//
// Hot-path representation invariants (the performance work of ISSUE 1):
//
//   - log[head:] is the live window, sorted by (sync, seq). Items before
//     head are absorbed into the checkpoint; the window is compacted
//     amortizedly instead of copied per checkpoint. New items enter by
//     binary-search insertion — the window is already sorted.
//
//   - Every net-emitted fact records the (sync, seq) key of the log item
//     whose output produced it (netFact.srcSync/srcSeq). Absorbing a log
//     prefix into the checkpoint then reduces to dropping facts whose
//     source key is covered — an O(table) filter instead of the former
//     full-log replay.
//
//   - Repair snapshots: every snapEvery admitted items the monitor clones
//     the operator and the net-fact table. A straggler replays from the
//     nearest snapshot at or before its position instead of from the
//     checkpoint, making repair O(straggler depth + snapEvery) rather than
//     O(items since the last guarantee). Snapshot state is a derived cache
//     and is excluded from the Metrics state-size axis.
//
//   - The slices returned by Push, SetSpec and Finish alias an internal
//     buffer and are valid only until the next call on this monitor;
//     callers must copy what they keep. All in-repo callers already append
//     the items elsewhere.
type Monitor struct {
	op   operators.Op // live operator
	ckpt operators.Op // operator state as of the last absorbed guarantee (nil on the versioned path)
	spec Spec

	// The versioned checkpoint path (ISSUE 7): when the operator implements
	// operators.Versioned (and is not stateless), the monitor stops keeping
	// a second operator copy entirely. Checkpoints and repair snapshots
	// become O(1) journal marks on the live operator:
	//
	//   - maybeSnapshot records vop.Mark() instead of op.Clone();
	//   - repair rewinds the live operator with vop.Rollback instead of
	//     cloning a snapshot and replaying the whole suffix;
	//   - checkpointTo no longer re-Processes absorbed items into a ckpt
	//     operator — it just slides the base version forward and compacts
	//     the journal below it.
	//
	// base is the newest version at or below the absorbed boundary; tail is
	// the index of the first log item after base's boundary. Items in
	// [tail, head) are absorbed but physically retained: a repair falling
	// back to base re-drives them with discarded output (their facts were
	// already finalized), which reproduces the legacy checkpoint state.
	vop  operators.Versioned
	base operators.Version
	tail int

	// Snapshot cadence, tunable via WithSnapshotCadence (defaults
	// snapEvery/maxSnaps). snapCadence <= 0 disables repair snapshots.
	snapCadence int
	snapBound   int

	log     []logItem // log[head:] is the live window, sorted by (sync, seq)
	head    int
	emitted map[event.ID]*netFact
	gen     map[event.ID]uint64
	buffer  []bufEntry // alignment buffer, sorted by Sync (stable by seq)

	portG         []temporal.Time
	guarantee     temporal.Time
	frontier      temporal.Time // max Sync observed (incl. buffered)
	processedSync temporal.Time // max Sync fed to the live operator
	absSync       temporal.Time // (sync, seq) key of the last log item folded
	absSeq        int           // into the checkpoint
	seq           int
	now           temporal.Time // current CEDR time

	snaps     []snapshot // repair snapshots, ascending boundary
	sinceSnap int
	dirty     []event.ID              // ids touched by the current repair fold
	spare     map[event.ID]*netFact   // reusable replay table (swapped with emitted)
	tblPool   []map[event.ID]*netFact // recycled snapshot tables

	out       []event.Event // reusable output buffer (valid until next call)
	diffIDs   []event.ID    // reusable diff scratch
	ckptState int           // cached ckpt.StateSize(), changes only on checkpoint
	stateless bool          // op implements operators.Stateless

	// Sharded-execution support (see PushTagged). All of it is inert — and
	// free — on the plain Push path.
	tagging   bool   // current call wants order tags
	sink      *Burst // batch accumulator for the *Into variants (nil = legacy)
	trigger   []byte // tag prefix the current call's outputs nest under
	curClass  byte
	curSync   temporal.Time
	curArr    []byte   // (curClass, curSync, curArr): admit position of the
	tags      [][]byte // item whose processing is emitting; one tag per m.out item
	advKey    func(dst []byte, e event.Event) []byte
	probeLog  int // probe items in the live log window (state-size exempt)
	probeBuf  int // probe items in the alignment buffer (state-size exempt)
	markerLog int // guarantee markers in the live log window

	// maxRetractSync/Seq is the (sync, seq) position of the latest
	// retraction in the live window (MinTime when none). The stateless
	// repair shortcut is only sound when no logged retraction lies at or
	// after the straggler — a later retraction may target the straggler's
	// own fresh output, which only a real replay applies — so it consults
	// this high-water mark and falls back to generic replay past it.
	maxRetractSync temporal.Time
	maxRetractSeq  int

	met Metrics
}

// Output-order tag admission classes: within one externally driven call,
// the monitor admits the pushed item itself first, then buffered releases
// (in (Sync, arrival) order), then the guarantee advance, then emits
// punctuation — and emission follows admission. The class byte encodes
// that, making tag order track emission order even when a buffered release
// carries an older Sync than the pushed item (possible after a
// blocking-bound tightening via SetSpec left events in the buffer).
const (
	classPushed    byte = 1
	classRelease   byte = 2
	classGuarantee byte = 3
	classCTI       byte = 4
)

// Output-order tag phases: within one admitted item, the speculative
// Advance's outputs precede the Process outputs, repair diffs stand alone,
// and punctuation comes last.
const (
	tagAdvance byte = 1
	tagDiff    byte = 2
	tagProcess byte = 3
	tagCTI     byte = 4
)

const (
	// snapEvery is the default repair-snapshot cadence in admitted items
	// (override with WithSnapshotCadence).
	snapEvery = 24
	// maxSnaps is the default bound on retained snapshots; the oldest are
	// dropped first (deep stragglers fall back to the checkpoint).
	maxSnaps = 16
	// compactAt triggers log-window compaction once the absorbed prefix
	// outweighs the live window.
	compactAt = 64
)

type logItem struct {
	marker bool
	// probe marks an advance-only marker from a sibling shard: the live path
	// speculatively advanced the operator to its Sync (under an optimistic
	// level) but never called Process, and replay and checkpointing must do
	// the same.
	probe bool
	t     temporal.Time // marker guarantee time (the Advance argument)
	// key is the marker's position in the replay order. A guarantee that
	// arrives after the operator has optimistically advanced beyond it was
	// a no-op live, so it must replay at its live position (the processed
	// frontier at push time), not at its own timestamp — otherwise replay
	// would advance the operator at a point the live run never did.
	key  temporal.Time
	port int
	ev   event.Event
	seq  int
	// opt records whether the live path speculatively advanced the
	// operator before this event (true at non-blocking levels). Replay and
	// checkpointing must reproduce the same calls even if the level has
	// changed since, so the policy travels with the item.
	opt bool
	// stateAfter is the operator's StateSize after this item was applied to
	// the sorted prefix ending at it (maintained on the versioned path
	// only; repair rewrites it for the replayed suffix). It lets
	// checkpointTo report the exact checkpoint state size without holding a
	// checkpoint operator to measure.
	stateAfter int
}

func (li logItem) sync() temporal.Time {
	if li.marker {
		return li.key
	}
	return li.ev.Sync()
}

type bufEntry struct {
	port    int
	ev      event.Event
	arrival temporal.Time
	seq     int
	probe   bool
	ext     []byte // external arrival key (sharded execution; owned copy)
}

// netFact entries are stored by pointer and shared freely between the live
// table, the spare table, and snapshot tables — a netFact is immutable once
// published; every update replaces the pointer (copy-on-write). This keeps
// table copies allocation-free pointer shares (a by-value map element this
// large would be stored indirectly by the runtime and heap-allocate on
// every assignment, including pure copies).
type netFact struct {
	ev  event.Event // net emitted fact (V is the current net interval)
	gen uint64      // generation used in the physical output ID
	// srcSync/srcSeq identify the log item whose output produced the fact.
	// An item is absorbed into the checkpoint exactly when its key is <=
	// the absorbed boundary, so "fact is final" is a key comparison.
	srcSync temporal.Time
	srcSeq  int
}

// keyLE reports (a, as) <= (b, bs) in the log's (sync, seq) order.
func keyLE(a temporal.Time, as int, b temporal.Time, bs int) bool {
	return a < b || (a == b && as <= bs)
}

// snapshot is a repair cache entry: the operator state and net-fact table
// as of the log prefix ending at boundary (bSync, bSeq).
type snapshot struct {
	bSync temporal.Time
	bSeq  int
	// absSync/absSeq record the checkpoint boundary at creation time; when
	// it still matches the monitor's, the table holds no absorbed facts and
	// repair can skip the staleness filter.
	absSync temporal.Time
	absSeq  int
	// Exactly one of op/ver is meaningful: a deep operator clone on the
	// legacy path, a journal version of the live operator on the versioned
	// path (an O(1) handle instead of an O(state) copy).
	op  operators.Op
	ver operators.Version
	tbl map[event.ID]*netFact
}

// Metrics quantifies the three axes of Figure 8 — blocking, state size and
// output size — plus the repair machinery's activity.
type Metrics struct {
	InputEvents int
	InputCTIs   int

	OutputInserts     int
	OutputRetractions int
	OutputCTIs        int

	// Compensations counts retractions emitted to repair optimistic output
	// (a subset of OutputRetractions).
	Compensations int
	// Dropped counts stragglers forgotten because they were older than M.
	Dropped int
	// Violations counts events that arrived in violation of a provider
	// guarantee; they are rejected.
	Violations int
	// Replays counts checkpoint rollbacks.
	Replays int

	// BlockedEvents and TotalBlocking measure alignment-buffer residency in
	// CEDR time.
	BlockedEvents int
	TotalBlocking temporal.Duration

	// MaxState is the high-water mark of buffer + log + operator state.
	MaxState int
	CurState int
}

// OutputEvents is the total number of data items emitted.
func (m Metrics) OutputEvents() int { return m.OutputInserts + m.OutputRetractions }

// MeanBlocking is the average CEDR-time residency of blocked events.
func (m Metrics) MeanBlocking() float64 {
	if m.BlockedEvents == 0 {
		return 0
	}
	return float64(m.TotalBlocking) / float64(m.BlockedEvents)
}

// MonitorOption configures a Monitor beyond its consistency level.
type MonitorOption func(*Monitor)

// WithSnapshotCadence overrides the repair-snapshot policy: a snapshot
// every `every` admitted items, keeping at most `max`. every <= 0 disables
// snapshots entirely (repair always rebuilds from the checkpoint state);
// max <= 0 keeps the default bound.
func WithSnapshotCadence(every, max int) MonitorOption {
	return func(m *Monitor) {
		m.snapCadence = every
		if max > 0 {
			m.snapBound = max
		}
	}
}

// NewMonitor wraps op with a consistency monitor at the given level.
func NewMonitor(op operators.Op, spec Spec, opts ...MonitorOption) *Monitor {
	portG := make([]temporal.Time, op.Arity())
	for i := range portG {
		portG[i] = temporal.MinTime
	}
	_, stateless := op.(operators.Stateless)
	var advKey func([]byte, event.Event) []byte
	if ao, ok := op.(operators.AdvanceOrdered); ok {
		advKey = ao.AppendAdvanceKey
	}
	m := &Monitor{
		stateless:      stateless,
		advKey:         advKey,
		op:             op,
		spec:           spec,
		emitted:        map[event.ID]*netFact{},
		gen:            map[event.ID]uint64{},
		portG:          portG,
		guarantee:      temporal.MinTime,
		frontier:       temporal.MinTime,
		processedSync:  temporal.MinTime,
		absSync:        temporal.MinTime,
		maxRetractSync: temporal.MinTime,
		snapCadence:    snapEvery,
		snapBound:      maxSnaps,
	}
	for _, o := range opts {
		o(m)
	}
	if vop, ok := op.(operators.Versioned); ok && !stateless {
		// Versioned path: no checkpoint operator at all. The genesis mark is
		// the base — the empty prefix's state — and checkpointTo slides it
		// forward as guarantees absorb the log.
		m.vop = vop
		m.base = vop.Mark()
		m.ckptState = op.StateSize()
	} else {
		m.ckpt = op.Clone()
		m.ckptState = m.ckpt.StateSize()
	}
	return m
}

// Spec returns the monitor's consistency level.
func (m *Monitor) Spec() Spec { return m.spec }

// Metrics returns a snapshot of the monitor's counters.
func (m *Monitor) Metrics() Metrics { return m.met }

// CurState returns the live state-size counter alone, without copying the
// full Metrics struct — the sharded runtime samples it once per input item
// for its per-item state traces, where the struct copy is measurable.
func (m *Monitor) CurState() int { return m.met.CurState }

// Guarantee returns the current combined input guarantee.
func (m *Monitor) Guarantee() temporal.Time { return m.guarantee }

// WindowMarkers returns the number of guarantee markers in the live log
// window. Sharded metric combination needs it: punctuation is broadcast, so
// every shard logs the same marker, but the single-shard equivalent state
// counts it once.
func (m *Monitor) WindowMarkers() int { return m.markerLog }

// SetSpec switches the consistency level at runtime. The paper observes
// that at common sync points every level holds the same output state, so
// switching at a sync point is seamless; switching between sync points
// changes only how pending and future input is treated. A loosened blocking
// bound may release buffered events, which are returned. The returned slice
// is valid until the next call on this monitor.
func (m *Monitor) SetSpec(s Spec) []event.Event {
	out, _ := m.setSpec(s, nil, nil, nil)
	return out
}

// SetSpecTagged is SetSpec for sharded execution: released output carries
// order tags (see PushTagged). Both returned slices are valid until the
// next call on this monitor.
func (m *Monitor) SetSpecTagged(s Spec, arrival, trigger []byte) ([]event.Event, [][]byte) {
	return m.setSpec(s, arrival, trigger, nil)
}

// SetSpecTaggedInto is SetSpecTagged appending into a caller-owned Burst
// (see PushTaggedInto).
func (m *Monitor) SetSpecTaggedInto(s Spec, arrival, trigger []byte, sink *Burst) {
	m.setSpec(s, arrival, trigger, sink)
}

func (m *Monitor) setSpec(s Spec, arrival, trigger []byte, sink *Burst) ([]event.Event, [][]byte) {
	m.beginCall(arrival, trigger, sink)
	m.spec = s
	m.releaseTimedOut()
	m.trimMemory()
	m.sampleState()
	return m.endCall()
}

// Push delivers one physical stream item (data or CTI) to port. The item's
// C.Start must carry its CEDR arrival time. It returns the physical output
// items, stamped with the current CEDR time. The returned slice is valid
// until the next call on this monitor.
func (m *Monitor) Push(port int, e event.Event) []event.Event {
	out, _ := m.push(port, e, nil, nil, false, nil)
	return out
}

// PushTagged is Push for sharded execution. arrival is an order-preserving
// byte key (package ordkey) placing this item in the global arrival order
// across all sibling shard monitors; trigger is the tag prefix the outputs
// nest under (nil at the pipeline head). probe marks an advance-only marker
// for an event routed to a sibling shard: the monitor advances its operator
// to the probe's Sync exactly as it would for a local event — so every
// shard observes identical advance boundaries and emits identical per-key
// output — but never calls Process and keeps the probe out of every metric
// and state count.
//
// Each output item carries an order tag; sorting the union of all sibling
// monitors' outputs for one input item by tag reproduces the exact sequence
// a single un-sharded monitor would have emitted (internal/delivery's merge
// stage does this). Both returned slices are valid until the next call.
func (m *Monitor) PushTagged(port int, e event.Event, arrival, trigger []byte, probe bool) ([]event.Event, [][]byte) {
	return m.push(port, e, arrival, trigger, probe, nil)
}

// PushTaggedInto is PushTagged for batched sharded execution: instead of
// returning per-call slices with freshly allocated tags, it appends this
// call's outputs (CEDR-time-stamped) and their order tags to sink, with
// the tag bytes carved from sink.Arena. A worker accumulates a whole run
// of input items into one Burst this way without any per-output
// allocation once the burst's buffers have grown.
func (m *Monitor) PushTaggedInto(port int, e event.Event, arrival, trigger []byte, probe bool, sink *Burst) {
	m.push(port, e, arrival, trigger, probe, sink)
}

func (m *Monitor) push(port int, e event.Event, arrival, trigger []byte, probe bool, sink *Burst) ([]event.Event, [][]byte) {
	if port < 0 || port >= len(m.portG) {
		return nil, nil
	}
	m.beginCall(arrival, trigger, sink)
	if e.C.Start > m.now {
		m.now = e.C.Start
	}
	if e.IsCTI() {
		m.met.InputCTIs++
		m.pushCTI(port, e.Sync(), arrival)
	} else {
		if !probe {
			m.met.InputEvents++
		}
		m.pushData(port, e, probe, arrival)
	}
	m.trimMemory()
	m.sampleState()
	return m.endCall()
}

// beginCall resets the output buffer and arms or disarms tagging for one
// externally driven call.
func (m *Monitor) beginCall(arrival, trigger []byte, sink *Burst) {
	m.out = m.out[:0]
	m.tagging = arrival != nil
	m.sink = sink
	m.trigger = trigger
	m.tags = m.tags[:0]
}

// endCall finishes one externally driven call. On the legacy tagged path
// it returns the stamped output buffer and the per-call tag slice; on the
// batch path (a sink armed by beginCall) it appends the stamped outputs to
// the sink — whose tags accumulated there directly — and returns nil.
func (m *Monitor) endCall() ([]event.Event, [][]byte) {
	if s := m.sink; s != nil {
		m.sink = nil
		for i := range m.out {
			m.out[i].C = temporal.From(m.now)
		}
		s.Evs = append(s.Evs, m.out...)
		return nil, nil
	}
	return m.stampOut(), m.tags
}

// appendTag records the order tag of the output item just appended to
// m.out. It must be called exactly once per appended item on tagged calls;
// (m.curSync, m.curArr) identify the admitted item whose processing is
// emitting.
func (m *Monitor) appendTag(phase byte, id event.ID, ev *event.Event) {
	if !m.tagging {
		return
	}
	if s := m.sink; s != nil {
		off := len(s.Arena)
		s.Arena = m.buildTag(s.Arena, phase, id, ev)
		s.Tags = append(s.Tags, s.Arena[off:len(s.Arena):len(s.Arena)])
		return
	}
	// Worst-case size: class + sync (9) + escaped arrival (2·len+2) + phase
	// + the widest subkey (PatternOp's 32-byte advance key), rounded up so
	// one allocation always suffices.
	t := make([]byte, 0, len(m.trigger)+2*len(m.curArr)+48)
	m.tags = append(m.tags, m.buildTag(t, phase, id, ev))
}

// buildTag appends one order tag's bytes to t and returns the extended
// slice.
func (m *Monitor) buildTag(t []byte, phase byte, id event.ID, ev *event.Event) []byte {
	t = append(t, m.trigger...)
	t = append(t, m.curClass)
	t = ordkey.AppendInt(t, int64(m.curSync))
	t = ordkey.AppendBytes(t, m.curArr)
	t = append(t, phase)
	switch phase {
	case tagDiff:
		t = ordkey.AppendUint(t, uint64(id))
	case tagAdvance:
		if m.advKey != nil && ev != nil {
			t = m.advKey(t, *ev)
		}
	}
	return t
}

func (m *Monitor) pushCTI(port int, t temporal.Time, arrival []byte) {
	if t > m.portG[port] {
		m.portG[port] = t
	}
	g := m.portG[0]
	for _, pg := range m.portG[1:] {
		if pg < g {
			g = pg
		}
	}
	if g <= m.guarantee {
		return
	}
	m.guarantee = g
	if g > m.frontier {
		m.frontier = g
	}
	// Clean releases: buffered events covered by the guarantee, in Sync
	// order.
	m.releaseCovered(g)
	// Record and apply the guarantee itself, positioned where the live
	// operator actually executes it.
	key := g
	if m.processedSync > key {
		key = m.processedSync
	}
	sq := m.nextSeq()
	if m.tagging {
		m.curClass, m.curSync, m.curArr = classGuarantee, key, arrival
	}
	m.insertLog(logItem{marker: true, t: g, key: key, seq: sq})
	m.emit(key, sq, tagAdvance, m.op.Advance(g))
	if m.vop != nil {
		m.log[len(m.log)-1].stateAfter = m.op.StateSize()
	}
	// Absorb everything the guarantee finalizes into the checkpoint.
	m.checkpointTo(g)
	// Timed-out releases may also be due (the guarantee moved the frontier).
	m.releaseTimedOut()
	og := m.op.OutputGuarantee(g)
	m.met.OutputCTIs++
	if m.tagging {
		// g is identical on every sibling shard (punctuation is broadcast),
		// so the punctuation tags match exactly and the merge collapses the
		// redundant copies to one.
		m.curClass, m.curSync, m.curArr = classCTI, g, arrival
	}
	m.out = append(m.out, event.NewCTI(og))
	m.appendTag(tagCTI, 0, nil)
}

func (m *Monitor) pushData(port int, e event.Event, probe bool, ext []byte) {
	if e.Sync() < m.guarantee {
		if !probe {
			m.met.Violations++
		}
		return
	}
	if e.Sync() > m.frontier {
		m.frontier = e.Sync()
	}
	// Weak levels forget stragglers beyond the memory horizon.
	if m.spec.M != Unbounded && e.Sync() < m.frontier.Add(-m.spec.M) {
		if !probe {
			m.met.Dropped++
		}
		return
	}
	if m.spec.B > 0 && e.Sync() >= m.processedSync {
		// In-order so far: hold for possible stragglers. The buffer is kept
		// sorted by binary insertion (upper bound, so equal Syncs keep
		// arrival order).
		be := bufEntry{port: port, ev: e, arrival: m.now, seq: m.nextSeq(), probe: probe}
		if m.tagging {
			be.ext = append([]byte(nil), ext...)
		}
		if probe {
			m.probeBuf++
		}
		s := e.Sync()
		i := sort.Search(len(m.buffer), func(k int) bool { return m.buffer[k].ev.Sync() > s })
		m.buffer = append(m.buffer, bufEntry{})
		copy(m.buffer[i+1:], m.buffer[i:])
		m.buffer[i] = be
	} else {
		m.admit(classPushed, port, e, probe, ext)
	}
	m.releaseTimedOut()
}

// releaseCovered processes buffered events whose Sync the guarantee covers.
func (m *Monitor) releaseCovered(g temporal.Time) {
	i := 0
	for ; i < len(m.buffer); i++ {
		if m.buffer[i].ev.Sync() > g {
			break
		}
		be := m.buffer[i]
		if be.probe {
			m.probeBuf--
		} else {
			m.met.BlockedEvents++
			m.met.TotalBlocking += m.now.Sub(be.arrival)
		}
		m.admit(classRelease, be.port, be.ev, be.probe, be.ext)
	}
	m.buffer = m.buffer[i:]
}

// releaseTimedOut processes buffered events whose blocking budget B has
// been exhausted by frontier progress.
func (m *Monitor) releaseTimedOut() {
	if len(m.buffer) == 0 || m.spec.B == Unbounded {
		return
	}
	i := 0
	for ; i < len(m.buffer); i++ {
		be := m.buffer[i]
		if be.ev.Sync().Add(m.spec.B) >= m.frontier {
			break
		}
		if be.probe {
			m.probeBuf--
		} else {
			m.met.BlockedEvents++
			m.met.TotalBlocking += m.now.Sub(be.arrival)
		}
		m.admit(classRelease, be.port, be.ev, be.probe, be.ext)
	}
	m.buffer = m.buffer[i:]
}

// admit feeds one event to the live operator, via the fast path when it is
// in order and via snapshot rollback and replay when it is a straggler.
// Probes advance but never Process.
func (m *Monitor) admit(class byte, port int, e event.Event, probe bool, ext []byte) {
	li := logItem{port: port, probe: probe, ev: e, seq: m.nextSeq(), opt: m.spec.B != Unbounded}
	if m.tagging {
		m.curClass, m.curSync, m.curArr = class, e.Sync(), ext
	}
	if e.Sync() >= m.processedSync {
		// Fast path: the item extends the sorted window.
		m.insertLog(li)
		src := e.Sync()
		if li.opt {
			m.emit(src, li.seq, tagAdvance, m.op.Advance(src))
		}
		if !probe {
			m.emit(src, li.seq, tagProcess, m.op.Process(port, e))
		}
		if m.vop != nil {
			m.log[len(m.log)-1].stateAfter = m.op.StateSize()
		}
		m.processedSync = src
		m.maybeSnapshot()
		return
	}
	// Straggler: roll back to the nearest snapshot and replay.
	if !probe {
		m.met.Replays++
	}
	m.insertLog(li)
	if m.stateless {
		if li.probe {
			// A probe has no Process call, so replaying it through a
			// stateless operator cannot change the net-fact table; logging
			// it (above) is all a future replay needs.
			return
		}
		if m.repairStateless(li) {
			return
		}
	}
	m.repair(li)
}

// repairStateless handles a straggler through a stateless operator without
// rollback or replay: the operator's outputs depend only on the input, so
// the straggler's own outputs are the complete delta — provided none of
// them collides with existing state, where fold order against later items
// would matter (then the generic replay decides). It reports whether the
// repair was completed.
func (m *Monitor) repairStateless(li logItem) bool {
	// A retraction logged at or after the straggler's position may target
	// the straggler's own output — an interaction only a real replay
	// applies in the right order. (A retraction straggler is itself already
	// in the log, so retraction stragglers always take the generic path.)
	if keyLE(li.sync(), li.seq, m.maxRetractSync, m.maxRetractSeq) {
		return false
	}
	// A full replay would advance the rolled-back operator to li's sync
	// before processing it; for a stateless operator Advance emits nothing
	// and keeps no frontier, so Process on the live operator is identical.
	outs := m.op.Process(li.port, li.ev)
	for _, e := range outs {
		nf, ok := m.emitted[e.ID]
		if ok && keyLE(nf.srcSync, nf.srcSeq, li.sync(), li.seq) {
			// The fact this output lands on was produced at or before the
			// straggler's replay position; the net result depends on the
			// per-id fold order. Fall back to the generic path.
			return false
		}
		if !ok && e.Kind == event.Retract {
			continue // retracting an absent fact is a no-op at any position
		}
		// ok && producer after the straggler: a later producer overwrites
		// whatever the straggler contributes — also a no-op.
	}
	// Emit exactly what the reference replay's diff would: the brand-new
	// facts, in ascending fact-ID order, under the retired-generation
	// counter, counted as plain inserts.
	ids := m.diffIDs[:0]
	for _, e := range outs {
		if _, ok := m.emitted[e.ID]; !ok && e.Kind != event.Retract {
			ids = append(ids, e.ID)
		}
	}
	slices.Sort(ids)
	m.diffIDs = ids
	src, sq := li.sync(), li.seq
	var prev event.ID
	for i, id := range ids {
		if i > 0 && id == prev {
			continue
		}
		prev = id
		// Fold semantics: the last insert for an id wins.
		last := -1
		for j, e := range outs {
			if e.ID == id && e.Kind != event.Retract {
				last = j
			}
		}
		e := outs[last]
		ng := m.gen[id]
		ins := e
		ins.ID = event.Pair(id, event.ID(ng))
		m.out = append(m.out, ins)
		m.appendTag(tagDiff, id, nil)
		m.met.OutputInserts++
		m.emitted[id] = &netFact{ev: e, gen: ng, srcSync: src, srcSeq: sq}
	}
	return true
}

// repair rewinds the operator to the latest snapshot preceding the
// straggler li (falling back to the checkpoint state), replays the log
// suffix, and emits the compensating deltas. On the versioned path the
// rewind is a journal rollback of the live operator in place; on the legacy
// path it clones the snapshot (or checkpoint) operator.
func (m *Monitor) repair(li logItem) {
	s, q := li.sync(), li.seq
	// Snapshots whose prefix spans the straggler's position were built
	// without it and are no longer reachable states.
	for len(m.snaps) > 0 {
		sn := &m.snaps[len(m.snaps)-1]
		if sn.bSync > s || (sn.bSync == s && sn.bSeq > q) {
			m.recycle(sn.tbl)
			m.snaps[len(m.snaps)-1] = snapshot{}
			m.snaps = m.snaps[:len(m.snaps)-1]
			continue
		}
		break
	}
	start := m.head
	// replay marks where folding begins: items before it (absorbed items a
	// versioned base rewind re-drives) have finalized facts, so their
	// outputs are discarded exactly as checkpointTo discarded them.
	replay := m.head
	// bSync/bSeq is the replay's start boundary: facts whose producer is at
	// or before it are inherited and cannot silently vanish, so the diff
	// only needs to visit fold-touched ids plus live facts produced by the
	// replayed suffix.
	bSync, bSeq := m.absSync, m.absSeq
	var fresh operators.Op
	tbl := m.spare
	if tbl == nil {
		// Prefer a recycled snapshot table over a fresh allocation.
		if n := len(m.tblPool); n > 0 {
			tbl = m.tblPool[n-1]
			m.tblPool[n-1] = nil
			m.tblPool = m.tblPool[:n-1]
			clear(tbl)
		} else {
			tbl = make(map[event.ID]*netFact, len(m.emitted)+8)
		}
	} else {
		clear(tbl)
	}
	m.spare = nil
	m.dirty = m.dirty[:0]
	if n := len(m.snaps); n > 0 {
		sn := m.snaps[n-1]
		if m.vop != nil {
			if !m.vop.Rollback(sn.ver) {
				panic("consistency: snapshot version no longer rollbackable")
			}
			fresh = m.op
		} else {
			fresh = sn.op.Clone()
		}
		for id, nf := range sn.tbl {
			tbl[id] = nf
		}
		start = m.searchAfter(sn.bSync, sn.bSeq)
		replay = start
		bSync, bSeq = sn.bSync, sn.bSeq
		if sn.absSync != m.absSync || sn.absSeq != m.absSeq {
			// The snapshot predates a checkpoint; drop facts the checkpoint
			// has already finalized so the table matches a replay from the
			// current checkpoint.
			for id, nf := range tbl {
				if keyLE(nf.srcSync, nf.srcSeq, m.absSync, m.absSeq) {
					delete(tbl, id)
				}
			}
		}
	} else if m.vop != nil {
		if !m.vop.Rollback(m.base) {
			panic("consistency: base version no longer rollbackable")
		}
		fresh = m.op
		// The base sits at or below the absorbed boundary: re-drive the
		// retained absorbed items [tail, head) with discarded output to
		// rebuild the checkpoint state, then fold the window as usual.
		start = m.tail
	} else {
		fresh = m.ckpt.Clone()
	}
	m.sinceSnap = 0
	var created []map[event.ID]*netFact
	for i := start; i < len(m.log); i++ {
		item := m.log[i]
		discard := i < replay
		if item.marker {
			outs := fresh.Advance(item.t)
			if !discard {
				m.foldInto(tbl, item.key, item.seq, outs)
			}
		} else {
			if item.opt {
				outs := fresh.Advance(item.ev.Sync())
				if !discard {
					m.foldInto(tbl, item.ev.Sync(), item.seq, outs)
				}
			}
			if !item.probe {
				outs := fresh.Process(item.port, item.ev)
				if !discard {
					m.foldInto(tbl, item.ev.Sync(), item.seq, outs)
				}
			}
		}
		if m.vop != nil {
			// The straggler shifted every later prefix: re-record the
			// checkpoint state sizes along the new timeline.
			m.log[i].stateAfter = fresh.StateSize()
		}
		if discard {
			continue
		}
		// Re-seed the snapshot cache as the replay walks forward, so
		// straggler bursts do not degenerate to checkpoint replays.
		m.sinceSnap++
		if m.sinceSnap >= m.snapCadence && i+1 < len(m.log) && m.wantSnapshots() {
			ct := m.copyTable(tbl)
			created = append(created, ct)
			sn := snapshot{bSync: item.sync(), bSeq: item.seq,
				absSync: m.absSync, absSeq: m.absSeq, tbl: ct}
			if m.vop != nil {
				sn.ver = m.vop.Mark()
			} else {
				sn.op = fresh.Clone()
			}
			m.addSnapshot(sn)
			m.sinceSnap = 0
		}
	}
	// Live facts produced by the replayed suffix either got re-derived
	// (then fold sharing makes them pointer-equal and diff skips them) or
	// vanished in the new timeline; either way they are diff candidates.
	// Facts from before the boundary are inherited bit-identical and need
	// no visit unless the fold touched them.
	for id, nf := range m.emitted {
		if !keyLE(nf.srcSync, nf.srcSeq, bSync, bSeq) {
			m.dirty = append(m.dirty, id)
		}
	}
	m.op = fresh
	m.diff(tbl)
	// Snapshots taken during this replay captured entries before diff
	// patched their generations. Re-point them at the live entries where
	// they denote the same fact, so a later repair inheriting them below
	// its boundary carries the correct generation without a diff visit.
	for _, ct := range created {
		for id, nf := range ct {
			if live, ok := tbl[id]; ok && nf != live && nf.gen != live.gen &&
				nf.srcSync == live.srcSync && nf.srcSeq == live.srcSeq &&
				nf.ev.Identical(live.ev) {
				ct[id] = live
			}
		}
	}
	// The old live table becomes the next repair's scratch; its buckets are
	// reused instead of reallocated.
	m.spare = m.emitted
	m.emitted = tbl
}

// insertLog places li at its (sync, seq) position in the live window by
// binary search — the window is already sorted, so insertion replaces the
// former full-log sort. The new item carries the largest seq ever issued,
// so the upper bound after its key is its unique position; fast-path items
// land at the end with zero movement.
func (m *Monitor) insertLog(li logItem) {
	if li.probe {
		m.probeLog++
	}
	if li.marker {
		m.markerLog++
	}
	if !li.marker && !li.probe && li.ev.Kind == event.Retract {
		s := li.ev.Sync()
		if s > m.maxRetractSync || (s == m.maxRetractSync && li.seq > m.maxRetractSeq) {
			m.maxRetractSync, m.maxRetractSeq = s, li.seq
		}
	}
	ls := li.sync()
	// Fast path: the item extends the window in order (the overwhelmingly
	// common case — every admit fast-path item and every released buffer
	// entry lands here), so the binary search and the shift are skipped.
	if n := len(m.log); n == m.head {
		m.log = append(m.log, li)
		return
	} else if ts := m.log[n-1].sync(); ts < ls || (ts == ls && m.log[n-1].seq <= li.seq) {
		m.log = append(m.log, li)
		return
	}
	i := m.searchAfter(ls, li.seq)
	m.log = append(m.log, logItem{})
	copy(m.log[i+1:], m.log[i:])
	m.log[i] = li
}

// searchAfter returns the index of the first window item ordered after the
// (sync, seq) boundary.
func (m *Monitor) searchAfter(bSync temporal.Time, bSeq int) int {
	return sort.Search(len(m.log)-m.head, func(k int) bool {
		it := &m.log[m.head+k]
		is := it.sync()
		return is > bSync || (is == bSync && it.seq > bSeq)
	}) + m.head
}

func (m *Monitor) wantSnapshots() bool {
	// Snapshots only pay off where repair can happen: optimistic levels
	// (B < ∞) with memory to repair (M > 0). Strong never replays; weak(0)
	// drops every straggler. Stateless operators repair without replay, so
	// they skip the cache entirely. A non-positive cadence disables the
	// cache outright.
	return m.spec.B != Unbounded && m.spec.M != 0 && !m.stateless && m.snapCadence > 0
}

// maybeSnapshot records a repair snapshot at the current end of the log
// every snapCadence admitted items. On the versioned path the operator
// part is an O(1) journal mark; only the net-fact table is copied.
func (m *Monitor) maybeSnapshot() {
	if !m.wantSnapshots() {
		return
	}
	m.sinceSnap++
	if m.sinceSnap < m.snapCadence || len(m.log) == m.head {
		return
	}
	last := &m.log[len(m.log)-1]
	sn := snapshot{bSync: last.sync(), bSeq: last.seq, tbl: m.copyTable(m.emitted)}
	if m.vop != nil {
		sn.ver = m.vop.Mark()
		sn.absSync, sn.absSeq = m.absSync, m.absSeq
	} else {
		sn.op = m.op.Clone()
	}
	m.addSnapshot(sn)
	m.sinceSnap = 0
}

func (m *Monitor) addSnapshot(sn snapshot) {
	if len(m.snaps) >= m.snapBound {
		m.recycle(m.snaps[0].tbl)
		copy(m.snaps, m.snaps[1:])
		m.snaps[len(m.snaps)-1] = sn
		return
	}
	m.snaps = append(m.snaps, sn)
}

// copyTable duplicates a net-fact table (sharing the immutable entries),
// preferring a recycled map from discarded snapshots over a fresh
// allocation.
func (m *Monitor) copyTable(tbl map[event.ID]*netFact) map[event.ID]*netFact {
	var out map[event.ID]*netFact
	if n := len(m.tblPool); n > 0 {
		out = m.tblPool[n-1]
		m.tblPool[n-1] = nil
		m.tblPool = m.tblPool[:n-1]
		clear(out)
	} else {
		out = make(map[event.ID]*netFact, len(tbl))
	}
	for id, nf := range tbl {
		out[id] = nf
	}
	return out
}

// recycle returns a snapshot table to the pool.
func (m *Monitor) recycle(tbl map[event.ID]*netFact) {
	if tbl == nil || len(m.tblPool) >= m.snapBound {
		return
	}
	m.tblPool = append(m.tblPool, tbl)
}

// checkpointTo absorbs every log item with Sync <= g into the checkpoint.
// On the legacy path the items are re-Processed into the checkpoint
// operator (with the same advance policy the live path used, so the two
// stay identical); on the versioned path no operator is driven at all —
// the base version just slides forward to the newest mark at or below the
// new boundary and the journal below it is compacted. Instead of replaying
// the remaining suffix to rebuild the net-emitted table, it drops the
// facts the absorbed prefix produced — each fact records its source item's
// Sync — which is equivalent and O(table).
func (m *Monitor) checkpointTo(g temporal.Time) {
	cut := m.head
	for cut < len(m.log) && m.log[cut].sync() <= g {
		item := m.log[cut]
		if m.ckpt != nil {
			if item.marker {
				m.ckpt.Advance(item.t)
			} else {
				if item.opt {
					m.ckpt.Advance(item.ev.Sync())
				}
				if !item.probe {
					m.ckpt.Process(item.port, item.ev)
				}
			}
		}
		if item.probe {
			m.probeLog--
		}
		if item.marker {
			m.markerLog--
		}
		cut++
	}
	if cut == m.head {
		return
	}
	ls, lq := m.log[cut-1].sync(), m.log[cut-1].seq
	if m.vop != nil && cut == len(m.log) {
		// Every window item is absorbed: the live operator state IS the new
		// checkpoint. Re-mark the base here and drop the whole snapshot
		// cache — every snapshot's prefix is covered by the new base, and
		// compacting the journal to the fresh mark would invalidate their
		// versions anyway.
		for i := range m.snaps {
			m.recycle(m.snaps[i].tbl)
			m.snaps[i] = snapshot{}
		}
		m.snaps = m.snaps[:0]
		m.base = m.vop.Mark()
		m.tail = cut
	} else {
		// Snapshots that do not cover the absorbed prefix would need
		// discarded log items to replay; drop them. On the versioned path
		// the newest dropped snapshot becomes the base: the closest journal
		// position at or below the new absorbed boundary.
		keep := 0
		for keep < len(m.snaps) {
			sn := &m.snaps[keep]
			if sn.bSync < ls || (sn.bSync == ls && sn.bSeq < lq) {
				keep++
				continue
			}
			break
		}
		if keep > 0 {
			if m.vop != nil {
				m.base = m.snaps[keep-1].ver
				m.tail = m.searchAfter(m.snaps[keep-1].bSync, m.snaps[keep-1].bSeq)
			}
			for i := 0; i < keep; i++ {
				m.recycle(m.snaps[i].tbl)
			}
			n := copy(m.snaps, m.snaps[keep:])
			clear(m.snaps[n:])
			m.snaps = m.snaps[:n]
		}
	}
	m.head = cut
	m.absSync, m.absSeq = ls, lq
	// The latest retraction is the max over the window: if it fell inside
	// the absorbed prefix, so did every other retraction.
	if keyLE(m.maxRetractSync, m.maxRetractSeq, ls, lq) {
		m.maxRetractSync, m.maxRetractSeq = temporal.MinTime, 0
	}
	// Facts produced by the absorbed prefix are final; forget them. This is
	// exactly the table a replay of the remaining suffix over the new
	// checkpoint would build.
	for id, nf := range m.emitted {
		if keyLE(nf.srcSync, nf.srcSeq, ls, lq) {
			delete(m.emitted, id)
		}
	}
	if m.vop != nil {
		// The recorded post-item state size of the boundary item is exactly
		// what a checkpoint operator would measure after absorbing the
		// prefix.
		m.ckptState = m.log[cut-1].stateAfter
		m.vop.Compact(m.base)
		// Amortized compaction of the log prefix below the base boundary
		// (items in [tail, head) must stay: a base rewind re-drives them).
		if m.tail >= compactAt && m.tail >= len(m.log)-m.tail {
			n := copy(m.log, m.log[m.tail:])
			clear(m.log[n:])
			m.log = m.log[:n]
			m.head -= m.tail
			m.tail = 0
		}
		return
	}
	m.ckptState = m.ckpt.StateSize()
	// Amortized compaction of the absorbed prefix.
	if m.head >= compactAt && m.head >= len(m.log)-m.head {
		n := copy(m.log, m.log[m.head:])
		clear(m.log[n:])
		m.log = m.log[:n]
		m.head = 0
	}
}

// trimMemory enforces the M bound: log items older than frontier − M are
// folded into the checkpoint and become unrepairable.
func (m *Monitor) trimMemory() {
	if m.spec.M == Unbounded {
		return
	}
	horizon := m.frontier.Add(-m.spec.M)
	if m.head < len(m.log) && m.log[m.head].sync() < horizon {
		m.checkpointTo(horizon)
	}
}

// emit records freshly produced operator output in the net-emitted table
// and appends the physical items — IDs rewritten with the fact's current
// generation, so that a removed-and-reinserted fact never reuses a physical
// ID (the paper's new-K-chain rule from Figure 2) — to the output buffer.
// (srcSync, srcSeq) is the key of the log item whose processing produced
// the output.
func (m *Monitor) emit(srcSync temporal.Time, srcSeq int, phase byte, outs []event.Event) {
	for _, e := range outs {
		gid := m.genOf(e.ID)
		if e.Kind == event.Retract {
			m.met.OutputRetractions++
			if nf, ok := m.emitted[e.ID]; ok {
				if e.V.End <= nf.ev.V.Start {
					m.gen[e.ID] = nf.gen + 1 // retire this generation
					delete(m.emitted, e.ID)
				} else {
					shrunk := *nf // copy-on-write: nf may be shared with snapshots
					shrunk.ev.V.End = e.V.End
					m.emitted[e.ID] = &shrunk
				}
			}
		} else {
			m.met.OutputInserts++
			m.emitted[e.ID] = &netFact{ev: e, gen: gid, srcSync: srcSync, srcSeq: srcSeq}
		}
		m.appendTag(phase, e.ID, &e)
		r := e
		r.ID = event.Pair(e.ID, event.ID(gid))
		m.out = append(m.out, r)
	}
}

func (m *Monitor) genOf(id event.ID) uint64 {
	if nf, ok := m.emitted[id]; ok {
		return nf.gen
	}
	return m.gen[id]
}

// foldInto applies operator outputs to a net-fact table without emitting.
// When a replayed output reproduces the live table's entry exactly, the
// existing entry is shared instead of allocating a new one; diff then
// recognizes untouched facts by pointer identity and skips them.
func (m *Monitor) foldInto(tbl map[event.ID]*netFact, srcSync temporal.Time, srcSeq int, outs []event.Event) {
	for _, e := range outs {
		if e.Kind == event.Retract {
			if nf, ok := tbl[e.ID]; ok {
				m.dirty = append(m.dirty, e.ID)
				if e.V.End <= nf.ev.V.Start {
					delete(tbl, e.ID)
				} else {
					shrunk := *nf // copy-on-write: nf may be shared with snapshots
					shrunk.ev.V.End = e.V.End
					tbl[e.ID] = &shrunk
				}
			}
			continue
		}
		if d, ok := m.emitted[e.ID]; ok && d.srcSync == srcSync && d.srcSeq == srcSeq && d.ev.Identical(e) {
			tbl[e.ID] = d
			continue
		}
		m.dirty = append(m.dirty, e.ID)
		tbl[e.ID] = &netFact{ev: e, srcSync: srcSync, srcSeq: srcSeq}
	}
}

// diff compares the previously emitted net facts against the replayed net
// facts and appends the compensating physical deltas: retractions for facts
// that shrank or vanished, fresh inserts (under a bumped generation) for
// facts that appeared or changed shape. Only the ids in m.dirty — the
// candidates the repair fold collected — can differ; everything else is
// inherited or re-derived as the identical shared entry.
func (m *Monitor) diff(next map[event.ID]*netFact) {
	ids := append(m.diffIDs[:0], m.dirty...)
	slices.Sort(ids)
	m.diffIDs = ids

	var prev event.ID
	first := true
	for _, id := range ids {
		if !first && id == prev {
			continue // dirty list may hold duplicates
		}
		prev, first = id, false
		old, hadOld := m.emitted[id]
		nw, hasNew := next[id]
		if !hadOld && !hasNew {
			continue // touched during the fold but net-absent on both sides
		}
		if hadOld && old == nw {
			// Shared entry: the replay reproduced this fact bit for bit
			// (same generation included); nothing to emit or patch.
			continue
		}
		switch {
		case hadOld && !hasNew:
			r := old.ev
			r.Kind = event.Retract
			r.V.End = r.V.Start
			r.ID = event.Pair(id, event.ID(old.gen))
			m.out = append(m.out, r)
			m.appendTag(tagDiff, id, nil)
			m.met.OutputRetractions++
			m.met.Compensations++
			m.gen[id] = old.gen + 1
		case !hadOld && hasNew:
			ng := m.gen[id]
			ins := nw.ev
			ins.ID = event.Pair(id, event.ID(ng))
			if nw.gen != ng {
				cp := *nw
				cp.gen = ng
				next[id] = &cp
			}
			m.out = append(m.out, ins)
			m.appendTag(tagDiff, id, nil)
			m.met.OutputInserts++
		case old.ev.SameFact(nw.ev):
			if nw.gen != old.gen {
				cp := *nw
				cp.gen = old.gen
				next[id] = &cp
			}
		case nw.ev.V.Start == old.ev.V.Start && nw.ev.V.End < old.ev.V.End && nw.ev.Payload.Equal(old.ev.Payload):
			r := old.ev
			r.Kind = event.Retract
			r.V.End = nw.ev.V.End
			r.ID = event.Pair(id, event.ID(old.gen))
			m.out = append(m.out, r)
			m.appendTag(tagDiff, id, nil)
			m.met.OutputRetractions++
			m.met.Compensations++
			if nw.gen != old.gen {
				cp := *nw
				cp.gen = old.gen
				next[id] = &cp
			}
		default:
			// Shape changed: remove and reinsert under a new generation.
			r := old.ev
			r.Kind = event.Retract
			r.V.End = r.V.Start
			r.ID = event.Pair(id, event.ID(old.gen))
			m.out = append(m.out, r)
			m.appendTag(tagDiff, id, nil)
			m.met.OutputRetractions++
			m.met.Compensations++
			ng := old.gen + 1
			ins := nw.ev
			ins.ID = event.Pair(id, event.ID(ng))
			m.out = append(m.out, ins)
			m.appendTag(tagDiff, id, nil)
			m.met.OutputInserts++
			cp := *nw
			cp.gen = ng
			next[id] = &cp
			m.gen[id] = ng
		}
	}
}

// stampOut sets the CEDR time of the buffered output items to the current
// arrival instant and returns the buffer (nil when empty, so callers can
// distinguish "no output" cheaply).
func (m *Monitor) stampOut() []event.Event {
	if len(m.out) == 0 {
		return nil
	}
	for i := range m.out {
		m.out[i].C = temporal.From(m.now)
	}
	return m.out
}

func (m *Monitor) nextSeq() int {
	m.seq++
	return m.seq
}

func (m *Monitor) sampleState() {
	// Snapshot state is a derived cache (bounded by maxSnaps) and is
	// deliberately excluded, keeping the Figure 8 state axis comparable to
	// the reference semantics. Probes are a sibling shard's events seen
	// through a keyhole — the sibling counts them, so this monitor must not.
	cur := (len(m.buffer) - m.probeBuf) + (len(m.log) - m.head - m.probeLog) +
		m.op.StateSize() + m.ckptState
	m.met.CurState = cur
	if cur > m.met.MaxState {
		m.met.MaxState = cur
	}
}

// Finish closes the stream: it releases every buffered event (as if a final
// guarantee covered the whole stream) and advances the operator to
// infinity, flushing blocking operators. The returned items complete the
// output history and are valid until the next call on this monitor.
func (m *Monitor) Finish() []event.Event {
	out, _ := m.finish(nil, nil, nil)
	return out
}

// FinishTagged is Finish for sharded execution (see PushTagged). Both
// returned slices are valid until the next call on this monitor.
func (m *Monitor) FinishTagged(arrival, trigger []byte) ([]event.Event, [][]byte) {
	return m.finish(arrival, trigger, nil)
}

// FinishTaggedInto is FinishTagged appending into a caller-owned Burst
// (see PushTaggedInto).
func (m *Monitor) FinishTaggedInto(arrival, trigger []byte, sink *Burst) {
	m.finish(arrival, trigger, sink)
}

func (m *Monitor) finish(arrival, trigger []byte, sink *Burst) ([]event.Event, [][]byte) {
	m.beginCall(arrival, trigger, sink)
	for _, be := range m.buffer {
		if be.probe {
			m.probeBuf--
		}
		m.admit(classRelease, be.port, be.ev, be.probe, be.ext)
	}
	m.buffer = nil
	if m.tagging {
		m.curClass, m.curSync, m.curArr = classGuarantee, temporal.Infinity, arrival
	}
	m.emit(temporal.Infinity, m.seq, tagAdvance, m.op.Advance(temporal.Infinity))
	m.met.OutputCTIs++
	if m.tagging {
		m.curClass = classCTI
	}
	m.out = append(m.out, event.NewCTI(temporal.Infinity))
	m.appendTag(tagCTI, 0, nil)
	m.sampleState()
	return m.endCall()
}
