//go:build !race

package consistency

import (
	"testing"

	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/temporal"
	"repro/internal/workload"
)

// TestAllocsMonitorFastPath pins the allocation ceiling of the monitor's
// in-order push path (binary-insertion buffer, head-indexed log,
// incremental checkpoint): a regression back toward per-push copying fails
// the ordinary test run, not just the benchmark gate. The bound is ~2× the
// measured steady state. (Skipped under -race: instrumentation changes
// allocation counts.)
func TestAllocsMonitorFastPath(t *testing.T) {
	src := workload.StockTicks(workload.DefaultTicks())
	delivered := delivery.Deliver(src, delivery.Ordered(5*temporal.Second))

	perEvent := testing.AllocsPerRun(5, func() {
		op := operators.NewSelect(func(event.Payload) bool { return true })
		m := NewMonitor(op, Middle())
		for _, e := range delivered {
			m.Push(0, e)
		}
		m.Finish()
	}) / float64(len(delivered))

	const ceiling = 3.0
	t.Logf("monitor fast path: %.2f allocs/event over %d delivered items (ceiling %.0f)",
		perEvent, len(delivered), ceiling)
	if perEvent > ceiling {
		t.Fatalf("monitor fast path allocates %.2f/event, above the pinned ceiling %.0f", perEvent, ceiling)
	}
}
