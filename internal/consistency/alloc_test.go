//go:build !race

package consistency

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/algebra/inc"
	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/temporal"
	"repro/internal/workload"
)

// TestAllocsMonitorFastPath pins the allocation ceiling of the monitor's
// in-order push path (binary-insertion buffer, head-indexed log,
// incremental checkpoint): a regression back toward per-push copying fails
// the ordinary test run, not just the benchmark gate. The bound is ~2× the
// measured steady state. (Skipped under -race: instrumentation changes
// allocation counts.)
func TestAllocsMonitorFastPath(t *testing.T) {
	src := workload.StockTicks(workload.DefaultTicks())
	delivered := delivery.Deliver(src, delivery.Ordered(5*temporal.Second))

	perEvent := testing.AllocsPerRun(5, func() {
		op := operators.NewSelect(func(event.Payload) bool { return true })
		m := NewMonitor(op, Middle())
		for _, e := range delivered {
			m.Push(0, e)
		}
		m.Finish()
	}) / float64(len(delivered))

	const ceiling = 3.0
	t.Logf("monitor fast path: %.2f allocs/event over %d delivered items (ceiling %.0f)",
		perEvent, len(delivered), ceiling)
	if perEvent > ceiling {
		t.Fatalf("monitor fast path allocates %.2f/event, above the pinned ceiling %.0f", perEvent, ceiling)
	}
}

// TestAllocsVersionedCheckpointCapture pins the tentpole claim of
// delta-driven checkpointing: on the versioned path a repair snapshot is a
// journal mark — O(changed since the last snapshot) — not a deep clone of
// the operator. The proof is differential: the same stream runs with
// snapshots disabled and at the most punishing cadence (a snapshot per
// admitted item), and the per-event difference — the entire capture cost —
// must stay a small constant, independent of the matcher's live state.
// Under the old clone-and-replay scheme every capture deep-copied the
// matcher's stores, costing tens of allocations per event on this
// workload.
func TestAllocsVersionedCheckpointCapture(t *testing.T) {
	expr := algebra.SequenceExpr{Kids: []algebra.Expr{
		algebra.TypeExpr{Type: "E", Alias: "a"},
		algebra.TypeExpr{Type: "E", Alias: "b"},
	}, W: 50}
	src := make([]event.Event, 0, 600)
	at := temporal.Time(0)
	for i := 0; i < 600; i++ {
		at = at.Add(temporal.Duration(i%5 + 1))
		src = append(src, event.NewInsert(event.ID(i+1), "E", at,
			temporal.Infinity, event.Payload{"i": int64(i)}))
	}
	delivered := delivery.Deliver(src, delivery.Ordered(20))

	measure := func(cadence int) float64 {
		return testing.AllocsPerRun(5, func() {
			m := NewMonitor(inc.NewOp(expr, algebra.SCMode{}, "out"), Middle(),
				WithSnapshotCadence(cadence, 0))
			for _, e := range delivered {
				m.Push(0, e)
			}
			m.Finish()
		}) / float64(len(delivered))
	}
	base := measure(0)  // snapshots disabled: pure processing cost
	dense := measure(1) // a capture per admitted item
	overhead := dense - base

	const ceiling = 3.0
	t.Logf("versioned capture: %.2f allocs/event disabled, %.2f at cadence 1 — capture overhead %.2f/event (ceiling %.0f)",
		base, dense, overhead, ceiling)
	if overhead > ceiling {
		t.Fatalf("versioned checkpoint capture adds %.2f allocs/event at cadence 1 (%.2f vs %.2f baseline), above the pinned ceiling %.0f — snapshot capture is no longer O(changed)", overhead, dense, base, ceiling)
	}
}
