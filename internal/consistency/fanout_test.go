package consistency

import (
	"testing"

	"repro/internal/event"
)

func batch(names ...string) []event.Event {
	out := make([]event.Event, len(names))
	for i, n := range names {
		out[i] = event.Event{Type: n}
	}
	return out
}

type sink struct {
	items []event.Event
	tags  []uint64
	fails []any
}

func (s *sink) attach(f *Fanout) *Endpoint {
	return f.Attach(func(items []event.Event, first uint64) {
		for i, ev := range items {
			s.items = append(s.items, ev)
			s.tags = append(s.tags, first+uint64(i))
		}
	}, func(r any) { s.fails = append(s.fails, r) })
}

// TestFanoutOrderTags: every delivered item carries its position in the
// chain's cumulative output sequence, across batches and endpoints.
func TestFanoutOrderTags(t *testing.T) {
	var f Fanout
	a, b := &sink{}, &sink{}
	a.attach(&f)
	b.attach(&f)

	f.Deliver(batch("e0", "e1", "e2"))
	f.Deliver(nil) // empty batches don't advance the position
	f.Deliver(batch("e3"))

	if f.Emitted() != 4 {
		t.Fatalf("Emitted = %d, want 4", f.Emitted())
	}
	for _, s := range []*sink{a, b} {
		if len(s.items) != 4 {
			t.Fatalf("endpoint saw %d items, want 4", len(s.items))
		}
		for i, tag := range s.tags {
			if tag != uint64(i) {
				t.Fatalf("tags = %v, want 0..3", s.tags)
			}
		}
	}
}

// TestFanoutLateAttach: an endpoint attached mid-stream starts at the
// current chain position — its first tag is Emitted() at attach time.
func TestFanoutLateAttach(t *testing.T) {
	var f Fanout
	early := &sink{}
	early.attach(&f)
	f.Deliver(batch("e0", "e1"))

	late := &sink{}
	late.attach(&f)
	f.Deliver(batch("e2", "e3"))

	if len(late.items) != 2 || late.tags[0] != 2 || late.tags[1] != 3 {
		t.Fatalf("late endpoint tags = %v, want [2 3]", late.tags)
	}
	// The late endpoint's stream is the suffix of the early one's.
	if early.items[2].Type != late.items[0].Type || early.tags[2] != late.tags[0] {
		t.Fatal("late endpoint diverged from sibling suffix")
	}
}

// TestFanoutPanicIsolation: a panicking endpoint is quarantined alone —
// OnFail fires once, siblings keep receiving, and the chain position still
// advances past the failed delivery.
func TestFanoutPanicIsolation(t *testing.T) {
	var f Fanout
	good := &sink{}
	good.attach(&f)
	var fails []any
	bomb := f.Attach(func([]event.Event, uint64) { panic("boom") },
		func(r any) { fails = append(fails, r) })

	f.Deliver(batch("e0"))
	f.Deliver(batch("e1"))

	if len(fails) != 1 || fails[0] != "boom" {
		t.Fatalf("OnFail calls = %v, want one boom", fails)
	}
	if !bomb.Dead() {
		t.Error("panicked endpoint not marked dead")
	}
	if len(good.items) != 2 || good.tags[1] != 1 {
		t.Fatalf("sibling disturbed: items=%d tags=%v", len(good.items), good.tags)
	}
	if f.Len() != 2 || f.Live() != 1 {
		t.Errorf("Len=%d Live=%d, want 2/1", f.Len(), f.Live())
	}
}

// TestFanoutDetach: a detached endpoint receives nothing further and drops
// out of the reference count; detaching an unknown endpoint is a no-op.
func TestFanoutDetach(t *testing.T) {
	var f Fanout
	a, b := &sink{}, &sink{}
	epA := a.attach(&f)
	b.attach(&f)

	f.Deliver(batch("e0"))
	f.Detach(epA)
	f.Detach(epA) // already gone — ignored
	f.Deliver(batch("e1"))

	if len(a.items) != 1 {
		t.Fatalf("detached endpoint still receiving: %d items", len(a.items))
	}
	if len(b.items) != 2 {
		t.Fatalf("survivor saw %d items, want 2", len(b.items))
	}
	if f.Len() != 1 || f.Live() != 1 {
		t.Errorf("Len=%d Live=%d after detach, want 1/1", f.Len(), f.Live())
	}
}
