package consistency

import "repro/internal/event"

// Fanout delivers one shared monitor chain's output to N independent
// subscriber endpoints. Each delivered item carries a per-chain order tag
// (its position in the chain's cumulative output sequence), so an endpoint
// that attaches mid-stream can still place every item it sees at the exact
// chain position an independently-run query would have assigned — the
// byte-identity the fabric's differential suite checks. Endpoint failures
// are isolated: a delivery callback that panics quarantines only its own
// endpoint (OnFail fires, the endpoint is skipped from then on); sibling
// endpoints and the driving chain are undisturbed.
//
// Fanout is not internally synchronized — the owning chain serializes
// Attach, Detach, and Deliver under its own lock.
type Fanout struct {
	emitted   uint64
	endpoints []*Endpoint
}

// Endpoint is one attached subscriber of a Fanout.
type Endpoint struct {
	// Deliver receives an output batch plus the chain order tag of its
	// first item (item i in the batch has tag firstTag+i).
	Deliver func(items []event.Event, firstTag uint64)
	// OnFail is invoked with the recovered value when Deliver panics; the
	// endpoint is dead afterwards and receives nothing further.
	OnFail func(recovered any)
	dead   bool
}

// Attach adds an endpoint. An endpoint attached after the chain has already
// emitted output starts at the current chain position: its first delivered
// item carries tag Emitted().
func (f *Fanout) Attach(deliver func([]event.Event, uint64), onFail func(any)) *Endpoint {
	ep := &Endpoint{Deliver: deliver, OnFail: onFail}
	f.endpoints = append(f.endpoints, ep)
	return ep
}

// Detach removes an endpoint; it receives nothing further. Unknown
// endpoints are ignored.
func (f *Fanout) Detach(ep *Endpoint) {
	for i, e := range f.endpoints {
		if e == ep {
			f.endpoints = append(f.endpoints[:i], f.endpoints[i+1:]...)
			return
		}
	}
}

// Deliver fans one output batch out to every live endpoint and advances the
// chain position. Panicking endpoints are quarantined individually; the
// batch still reaches every other endpoint.
func (f *Fanout) Deliver(items []event.Event) {
	if len(items) == 0 {
		return
	}
	first := f.emitted
	f.emitted += uint64(len(items))
	for _, ep := range f.endpoints {
		if !ep.dead {
			deliverOne(ep, items, first)
		}
	}
}

// deliverOne runs one endpoint's callback under a recover barrier.
func deliverOne(ep *Endpoint, items []event.Event, first uint64) {
	defer func() {
		if r := recover(); r != nil {
			ep.dead = true
			if ep.OnFail != nil {
				ep.OnFail(r)
			}
		}
	}()
	ep.Deliver(items, first)
}

// Dead reports whether the endpoint has been quarantined by a delivery
// panic.
func (ep *Endpoint) Dead() bool { return ep.dead }

// Len counts attached endpoints, dead or alive — the chain's reference
// count.
func (f *Fanout) Len() int { return len(f.endpoints) }

// Live counts the endpoints still accepting delivery.
func (f *Fanout) Live() int {
	n := 0
	for _, ep := range f.endpoints {
		if !ep.dead {
			n++
		}
	}
	return n
}

// Emitted returns the chain position: how many items have been fanned out
// so far (the order tag the next item will carry).
func (f *Fanout) Emitted() uint64 { return f.emitted }
