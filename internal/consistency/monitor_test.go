package consistency

import (
	"math/rand"
	"testing"

	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/history"
	"repro/internal/operators"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// mkSource builds a deterministic logical source: n events, one every
// spacing ticks, each valid for length ticks, with a numeric payload.
func mkSource(n int, spacing, length temporal.Time) stream.Stream {
	s := make(stream.Stream, 0, n)
	for i := 0; i < n; i++ {
		vs := temporal.Time(i) * spacing
		s = append(s, event.NewInsert(event.ID(i+1), "E", vs, vs+length,
			event.Payload{"x": int64(i % 7), "g": int64(i % 3)}))
	}
	return s
}

func idealOf(src stream.Stream, op operators.Op) history.UniTable {
	return operators.OutputTable(operators.RunAligned(op, src))
}

func passAll(event.Payload) bool { return true }

func TestStrongBlocksUntilGuarantee(t *testing.T) {
	op := operators.NewSelect(passAll)
	m := NewMonitor(op, Strong())
	e := event.NewInsert(1, "E", 5, 10, nil)
	e.C = temporal.From(100)
	if out := m.Push(0, e); len(out) != 0 {
		t.Fatalf("strong must buffer, got %v", out)
	}
	cti := event.NewCTI(6)
	cti.C = temporal.From(101)
	out := m.Push(0, cti)
	// The buffered event is released plus an output CTI.
	var data, ctis int
	for _, o := range out {
		if o.IsCTI() {
			ctis++
		} else {
			data++
		}
	}
	if data != 1 || ctis != 1 {
		t.Fatalf("release produced %d data, %d CTIs: %v", data, ctis, out)
	}
	met := m.Metrics()
	if met.BlockedEvents != 1 || met.TotalBlocking != 1 {
		t.Errorf("blocking metrics: %+v", met)
	}
}

func TestMiddleEmitsImmediately(t *testing.T) {
	op := operators.NewSelect(passAll)
	m := NewMonitor(op, Middle())
	e := event.NewInsert(1, "E", 5, 10, nil)
	e.C = temporal.From(100)
	out := m.Push(0, e)
	if len(out) != 1 {
		t.Fatalf("middle must emit immediately, got %v", out)
	}
	if m.Metrics().BlockedEvents != 0 {
		t.Error("middle must not block")
	}
}

func TestMiddleRepairsWithRetractions(t *testing.T) {
	// An aggregate sees events out of order; the optimistic count must be
	// repaired by compensating retractions when the straggler lands.
	op := operators.NewAggregate(operators.Count, "", "")
	m := NewMonitor(op, Middle())

	a := event.NewInsert(1, "E", 0, 10, nil)
	a.C = temporal.From(100)
	b := event.NewInsert(2, "E", 20, 30, nil)
	b.C = temporal.From(101)
	late := event.NewInsert(3, "E", 5, 25, nil) // straggler
	late.C = temporal.From(102)

	var out stream.Stream
	out = append(out, m.Push(0, a)...)
	out = append(out, m.Push(0, b)...)
	preRepair := len(out)
	out = append(out, m.Push(0, late)...)
	out = append(out, m.Finish()...)

	met := m.Metrics()
	if met.Replays != 1 {
		t.Errorf("replays = %d, want 1", met.Replays)
	}
	if met.Compensations == 0 {
		t.Error("expected compensating retractions")
	}
	if preRepair == 0 {
		t.Error("expected optimistic output before the straggler")
	}
	// Despite the disorder, the final history must match the aligned run.
	want := idealOf(stream.Stream{a, b, late}, operators.NewAggregate(operators.Count, "", ""))
	if !operators.OutputTable(out).EquivalentStar(want) {
		t.Errorf("repaired output diverges:\n got %+v\nwant %+v",
			operators.OutputTable(out).Ideal().Star(), want.Ideal().Star())
	}
}

func TestWeakForgetsOldStragglers(t *testing.T) {
	op := operators.NewAggregate(operators.Count, "", "")
	m := NewMonitor(op, Weak(2))

	a := event.NewInsert(1, "E", 0, 10, nil)
	b := event.NewInsert(2, "E", 100, 110, nil)
	late := event.NewInsert(3, "E", 5, 25, nil) // 95 behind the frontier
	for i, e := range []event.Event{a, b, late} {
		e.C = temporal.From(temporal.Time(100 + i))
		m.Push(0, e)
	}
	if m.Metrics().Dropped != 1 {
		t.Errorf("dropped = %d, want 1", m.Metrics().Dropped)
	}
	if m.Metrics().Replays != 0 {
		t.Error("weak(2) must not repair a straggler 95 ticks late")
	}
}

// The central §4/§6 property: at strong and middle levels, the output of a
// standing query over a disordered delivery is logically equivalent to the
// output over the ordered delivery.
func TestLevelsConvergeUnderDisorder(t *testing.T) {
	src := mkSource(120, 5, 12)
	mkOps := map[string]func() operators.Op{
		"select": func() operators.Op {
			return operators.NewSelect(func(p event.Payload) bool {
				v, _ := event.Num(p["x"])
				return v >= 2
			})
		},
		"count-by-g": func() operators.Op { return operators.NewAggregate(operators.Count, "", "g") },
		"window":     func() operators.Op { return operators.Window(20) },
	}
	cfgs := []delivery.Config{
		delivery.Ordered(25),
		delivery.Disordered(7, 50, 60, 0.3),
		delivery.Disordered(13, 100, 200, 0.5),
	}
	for name, mk := range mkOps {
		want := idealOf(src, mk())
		for ci, cfg := range cfgs {
			delivered := delivery.Deliver(src, cfg)
			for _, spec := range []Spec{Strong(), Middle()} {
				out, met := RunStreams(mk(), spec, delivered)
				if !operators.OutputTable(out).EquivalentStar(want) {
					t.Errorf("%s cfg %d %s: output diverges (met %+v)", name, ci, spec.Name(), met)
				}
			}
		}
	}
}

// Definition 3 flavor: two logically equivalent physical inputs produce the
// same final output state at strong consistency.
func TestStrongDeterministicAcrossDeliveries(t *testing.T) {
	src := mkSource(100, 3, 9)
	mk := func() operators.Op { return operators.NewAggregate(operators.Sum, "x", "g") }
	outA, _ := RunStreams(mk(), Strong(), delivery.Deliver(src, delivery.Disordered(1, 30, 100, 0.4)))
	outB, _ := RunStreams(mk(), Strong(), delivery.Deliver(src, delivery.Disordered(99, 60, 40, 0.2)))

	// Strong never retracts due to disorder: data outputs are final.
	for _, o := range outA.Events() {
		if o.Kind == event.Retract {
			t.Fatal("strong emitted a disorder-induced retraction")
		}
	}
	ta, tb := operators.OutputTable(outA), operators.OutputTable(outB)
	if !ta.EquivalentStar(tb) {
		t.Error("strong outputs differ across logically equivalent deliveries")
	}
}

func TestFigure8Qualitative(t *testing.T) {
	// The qualitative shape of Figure 8 on a disordered stream:
	//   blocking: strong > middle = weak (= 0)
	//   output size: middle >= strong (retractions)
	//   state size: weak < middle
	src := mkSource(200, 4, 10)
	delivered := delivery.Deliver(src, delivery.Disordered(5, 80, 120, 0.35))
	mk := func() operators.Op { return operators.NewAggregate(operators.Count, "", "") }

	_, strongMet := RunStreams(mk(), Strong(), delivered)
	_, middleMet := RunStreams(mk(), Middle(), delivered)
	_, weakMet := RunStreams(mk(), Weak(0), delivered)

	if strongMet.BlockedEvents == 0 {
		t.Error("strong should block on a disordered stream")
	}
	if middleMet.BlockedEvents != 0 || weakMet.BlockedEvents != 0 {
		t.Error("middle/weak must not block")
	}
	if middleMet.OutputEvents() < strongMet.OutputEvents() {
		t.Errorf("middle output (%d) should be >= strong output (%d) under disorder",
			middleMet.OutputEvents(), strongMet.OutputEvents())
	}
	if middleMet.Compensations == 0 {
		t.Error("middle should emit compensations under disorder")
	}
	if weakMet.MaxState > middleMet.MaxState {
		t.Errorf("weak state (%d) should not exceed middle state (%d)",
			weakMet.MaxState, middleMet.MaxState)
	}
	if weakMet.Dropped == 0 {
		t.Error("weak(0) should drop stragglers on this stream")
	}
}

func TestBinaryJoinGuaranteeIsMinOverPorts(t *testing.T) {
	op := operators.NewJoin(func(l, r event.Payload) bool { return true })
	m := NewMonitor(op, Strong())
	l := event.NewInsert(1, "L", 0, 10, event.Payload{"a": int64(1)})
	l.C = temporal.From(1)
	r := event.NewInsert(2, "R", 0, 10, event.Payload{"b": int64(2)})
	r.C = temporal.From(2)
	m.Push(0, l)
	m.Push(1, r)
	// Guarantee on the left only: combined min is still the right's -∞.
	cl := event.NewCTI(50)
	cl.C = temporal.From(3)
	out := m.Push(0, cl)
	if len(out) != 0 {
		t.Fatalf("combined guarantee must wait for both ports, got %v", out)
	}
	cr := event.NewCTI(50)
	cr.C = temporal.From(4)
	out = m.Push(1, cr)
	var data int
	for _, o := range out {
		if !o.IsCTI() {
			data++
		}
	}
	if data != 1 {
		t.Fatalf("join release produced %d data items: %v", data, out)
	}
}

func TestGuaranteeViolationRejected(t *testing.T) {
	op := operators.NewSelect(passAll)
	m := NewMonitor(op, Middle())
	cti := event.NewCTI(100)
	m.Push(0, cti)
	stale := event.NewInsert(1, "E", 5, 10, nil) // Sync 5 < guarantee 100
	if out := m.Push(0, stale); len(out) != 0 {
		t.Fatalf("violating event must be rejected, got %v", out)
	}
	if m.Metrics().Violations != 1 {
		t.Error("violation not counted")
	}
}

// Section 5: "one can seamlessly switch from one consistency level to
// another at these [sync] points, producing the same subsequent stream as
// if CEDR had been running at that consistency level all along."
func TestSeamlessLevelSwitchAtSyncPoint(t *testing.T) {
	src := mkSource(100, 4, 9)
	delivered := delivery.Deliver(src, delivery.Disordered(3, 40, 50, 0.3))
	mk := func() operators.Op { return operators.NewAggregate(operators.Count, "", "") }
	want := idealOf(src, mk())

	// Run at middle, switching to strong at the first sync point past the
	// midpoint, then compare the final logical state with the all-one-level
	// runs.
	m := NewMonitor(mk(), Middle())
	var out stream.Stream
	switched := false
	for i, e := range delivered {
		out = append(out, m.Push(0, e)...)
		if !switched && e.IsCTI() && i > len(delivered)/2 {
			out = append(out, m.SetSpec(Strong())...)
			switched = true
		}
	}
	out = append(out, m.Finish()...)
	if !switched {
		t.Fatal("test stream had no sync point past midpoint")
	}
	if !operators.OutputTable(out).EquivalentStar(want) {
		t.Error("switched run diverges from ideal")
	}
}

func TestSwitchToLooserLevelReleasesBuffer(t *testing.T) {
	op := operators.NewSelect(passAll)
	m := NewMonitor(op, Strong())
	e1 := event.NewInsert(1, "E", 5, 10, nil)
	e2 := event.NewInsert(2, "E", 50, 60, nil)
	m.Push(0, e1)
	m.Push(0, e2) // frontier now 50
	out := m.SetSpec(Middle())
	if len(out) == 0 {
		t.Fatal("loosening to middle should release the buffer")
	}
}

// Randomized end-to-end convergence across the spectrum interior.
func TestSpectrumInteriorConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	src := mkSource(80, 5, 15)
	want := idealOf(src, operators.Window(25))
	for trial := 0; trial < 10; trial++ {
		cfg := delivery.Disordered(rng.Int63(), 40, 60, 0.3)
		delivered := delivery.Deliver(src, cfg)
		// Any level with unbounded memory must converge, whatever B is.
		b := temporal.Duration(rng.Intn(100))
		out, _ := RunStreams(operators.Window(25), Level(b, Unbounded), delivered)
		if !operators.OutputTable(out).EquivalentStar(want) {
			t.Errorf("trial %d: level (B=%d, M=∞) diverges", trial, b)
		}
	}
}

func TestSpecNames(t *testing.T) {
	if Strong().Name() != "strong" || Middle().Name() != "middle" {
		t.Error("corner names wrong")
	}
	if Weak(5).Name() != "weak(M=5)" {
		t.Errorf("weak name = %s", Weak(5).Name())
	}
	if Level(3, 9).Name() != "level(B=3,M=9)" {
		t.Errorf("interior name = %s", Level(3, 9).Name())
	}
	if Level(10, 5).B != 5 {
		t.Error("Level must clamp B to M")
	}
	if !Strong().Blocking() || Middle().Blocking() {
		t.Error("Blocking() wrong")
	}
}

func TestRunStreamsEmptyInput(t *testing.T) {
	out, met := RunStreams(operators.NewSelect(passAll), Middle())
	// Only the Finish punctuation.
	if len(out.Events()) != 0 {
		t.Errorf("outputs from empty input: %v", out)
	}
	if met.InputEvents != 0 {
		t.Errorf("metrics: %+v", met)
	}
}

func TestCTIOnlyStreamAdvancesGuarantee(t *testing.T) {
	m := NewMonitor(operators.NewAggregate(operators.Count, "", ""), Strong())
	for _, tt := range []temporal.Time{10, 20, 30} {
		cti := event.NewCTI(tt)
		m.Push(0, cti)
	}
	if m.Guarantee() != 30 {
		t.Errorf("guarantee = %v", m.Guarantee())
	}
	// Regressing punctuation is ignored.
	m.Push(0, event.NewCTI(5))
	if m.Guarantee() != 30 {
		t.Errorf("guarantee regressed to %v", m.Guarantee())
	}
}

func TestInvalidPortIgnored(t *testing.T) {
	m := NewMonitor(operators.NewSelect(passAll), Middle())
	if out := m.Push(7, event.NewInsert(1, "E", 0, 1, nil)); out != nil {
		t.Error("invalid port produced output")
	}
	if out := m.Push(-1, event.NewInsert(1, "E", 0, 1, nil)); out != nil {
		t.Error("negative port produced output")
	}
}

// Duplicate delivery (an at-least-once transport): the duplicate carries
// the same event ID, so folding the output by ID stays correct for
// stateless operators — the duplicated insert overwrites itself.
func TestDuplicateDeliveryIsIdempotentInHistory(t *testing.T) {
	src := mkSource(40, 5, 12)
	cfg := delivery.Config{Seed: 3, Latency: delivery.Latency{Base: 1},
		CTIPeriod: 50, DuplicateProb: 0.5}
	delivered := delivery.Deliver(src, cfg)
	out, _ := RunStreams(operators.NewSelect(passAll), Middle(), delivered)
	want := idealOf(src, operators.NewSelect(passAll))
	if !operators.OutputTable(out).EquivalentStar(want) {
		t.Error("duplicates corrupted the select history")
	}
}

func TestMetricsAccessors(t *testing.T) {
	met := Metrics{OutputInserts: 3, OutputRetractions: 2,
		BlockedEvents: 4, TotalBlocking: 20}
	if met.OutputEvents() != 5 {
		t.Errorf("OutputEvents = %d", met.OutputEvents())
	}
	if met.MeanBlocking() != 5 {
		t.Errorf("MeanBlocking = %v", met.MeanBlocking())
	}
	if (Metrics{}).MeanBlocking() != 0 {
		t.Error("MeanBlocking of zero metrics")
	}
}

func TestFinishFlushesBlockingOp(t *testing.T) {
	m := NewMonitor(operators.NewAggregate(operators.Count, "", ""), Strong())
	e := event.NewInsert(1, "E", 5, 10, nil)
	m.Push(0, e)
	out := m.Finish()
	var data int
	for _, o := range out {
		if !o.IsCTI() && o.Kind == event.Insert {
			data++
		}
	}
	if data == 0 {
		t.Fatal("Finish must flush the buffered event through the aggregate")
	}
}
