package consistency

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/algebra"
	"repro/internal/algebra/inc"
	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// The monitor-equivalence property: the optimized Monitor must produce
// item-for-item identical physical output (and identical metrics) to the
// frozen pre-optimization reference in reference_test.go, for every
// consistency level, operator shape, and delivery disorder. This is the
// proof that the hot-path rewrite is a pure performance change.

func randSource(rng *rand.Rand, n int) stream.Stream {
	s := make(stream.Stream, 0, n)
	at := temporal.Time(0)
	for i := 0; i < n; i++ {
		at = at.Add(temporal.Duration(rng.Intn(7)))
		length := temporal.Duration(rng.Intn(40) + 1)
		ve := at.Add(length)
		if rng.Intn(8) == 0 {
			ve = temporal.Infinity
		}
		s = append(s, event.NewInsert(event.ID(i+1), "E", at, ve, event.Payload{
			"g": int64(rng.Intn(4)),
			"x": float64(rng.Intn(100)) / 4,
		}))
	}
	return s.SortBySync()
}

func equivalenceOps() map[string]func() operators.Op {
	return map[string]func() operators.Op{
		"select": func() operators.Op {
			return operators.NewSelect(func(p event.Payload) bool {
				v, _ := event.Num(p["x"])
				return v >= 5
			})
		},
		"count-by-g": func() operators.Op { return operators.NewAggregate(operators.Count, "", "g") },
		"avg-by-g":   func() operators.Op { return operators.NewAggregate(operators.Avg, "x", "g") },
		"sum":        func() operators.Op { return operators.NewAggregate(operators.Sum, "x", "") },
		"window":     func() operators.Op { return operators.Window(15) },
	}
}

func equivalenceLevels(rng *rand.Rand) []Spec {
	return []Spec{
		Strong(),
		Middle(),
		Weak(0),
		Weak(temporal.Duration(rng.Intn(60) + 1)),
		Level(temporal.Duration(rng.Intn(30)), Unbounded),
		Level(temporal.Duration(rng.Intn(20)), temporal.Duration(rng.Intn(80)+20)),
	}
}

// compareTables cross-checks the monitors' internal net-fact tables; a
// divergence here surfaces long before it corrupts output, which makes
// property-test failures debuggable.
func compareTables(t *testing.T, label string, i int, opt *Monitor, ref *refMonitor) {
	t.Helper()
	if len(opt.emitted) != len(ref.emitted) {
		t.Fatalf("%s: item %d: emitted table size %d, reference %d\n got: %v\nwant: %v",
			label, i, len(opt.emitted), len(ref.emitted), opt.emitted, ref.emitted)
	}
	for id, nf := range opt.emitted {
		rf, ok := ref.emitted[id]
		if !ok {
			t.Fatalf("%s: item %d: emitted has extra fact %v=%v", label, i, id, nf.ev)
		}
		if !reflect.DeepEqual(nf.ev, rf.ev) || nf.gen != rf.gen {
			t.Fatalf("%s: item %d: fact %v differs\n got: %v gen %d\nwant: %v gen %d",
				label, i, id, nf.ev, nf.gen, rf.ev, rf.gen)
		}
	}
}

// runBoth feeds the identical stream to the optimized and reference
// monitors, comparing every Push return item for item.
func runBoth(t *testing.T, label string, opt *Monitor, ref *refMonitor, delivered stream.Stream, switchAt int, switchTo Spec) {
	t.Helper()
	check := func(i int, got, want []event.Event) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: item %d: output length %d, reference %d\n got: %v\nwant: %v",
				label, i, len(got), len(want), got, want)
		}
		for j := range got {
			if !reflect.DeepEqual(got[j], want[j]) {
				t.Fatalf("%s: item %d: output[%d] differs\n got: %v\nwant: %v",
					label, i, j, got[j], want[j])
			}
		}
	}
	for i, e := range delivered {
		got := opt.Push(0, e)
		want := ref.Push(0, e)
		check(i, got, want)
		compareTables(t, label, i, opt, ref)
		if switchAt > 0 && i == switchAt {
			check(i, opt.SetSpec(switchTo), ref.SetSpec(switchTo))
		}
	}
	check(len(delivered), opt.Finish(), ref.Finish())
	if gm, wm := opt.Metrics(), ref.Metrics(); gm != wm {
		t.Fatalf("%s: metrics diverge\n got: %+v\nwant: %+v", label, gm, wm)
	}
}

func TestMonitorEquivalenceRandomized(t *testing.T) {
	ops := equivalenceOps()
	names := make([]string, 0, len(ops))
	for name := range ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for trial := 0; trial < 12; trial++ {
		// A fresh rng per trial keeps every case reproducible from its
		// trial number alone.
		rng := rand.New(rand.NewSource(1729 + int64(trial)))
		src := randSource(rng, 150+rng.Intn(150))
		var cfg delivery.Config
		switch trial % 3 {
		case 0:
			cfg = delivery.Ordered(temporal.Duration(rng.Intn(40) + 5))
		case 1:
			cfg = delivery.Disordered(rng.Int63(), temporal.Duration(rng.Intn(100)+20),
				temporal.Duration(rng.Intn(80)+10), 0.1+rng.Float64()*0.4)
		default:
			cfg = delivery.Config{Seed: rng.Int63(),
				Latency:       delivery.Latency{Base: 1, Jitter: 25, StragglerProb: 0.3, StragglerDelay: 60},
				CTIPeriod:     temporal.Duration(rng.Intn(120) + 10),
				DuplicateProb: 0.1}
		}
		delivered := delivery.Deliver(src, cfg)
		levels := equivalenceLevels(rng)
		for _, name := range names {
			mk := ops[name]
			for _, spec := range levels {
				label := fmt.Sprintf("trial %d op %s level %s", trial, name, spec.Name())
				runBoth(t, label, NewMonitor(mk(), spec), newRefMonitor(mk(), spec), delivered, 0, Spec{})
			}
		}
	}
}

// TestMonitorEquivalenceCheckpointCadences pins the monitor across the
// snapshot-cadence grid — a mark per admitted item (1), tight (3), the
// default (24), and disabled (0: every repair rebuilds from the checkpoint
// state) — against the frozen seed reference, which has no snapshot cache
// at all. The operator grid covers both checkpoint paths: the incremental
// pattern op exercises the versioned path (journal marks, rollback repair,
// base-slide checkpointing), the aggregate exercises the legacy
// clone-and-replay path under the same option. Output and metrics must be
// invariant under cadence.
func TestMonitorEquivalenceCheckpointCadences(t *testing.T) {
	seqEE := algebra.SequenceExpr{Kids: []algebra.Expr{
		algebra.TypeExpr{Type: "E", Alias: "a"},
		algebra.TypeExpr{Type: "E", Alias: "b"},
	}, W: 25}
	ops := map[string]func() operators.Op{
		"inc-seq":    func() operators.Op { return inc.NewOp(seqEE, algebra.SCMode{}, "out") },
		"count-by-g": func() operators.Op { return operators.NewAggregate(operators.Count, "", "g") },
	}
	names := make([]string, 0, len(ops))
	for name := range ops {
		names = append(names, name)
	}
	sort.Strings(names)
	cadences := []int{1, 3, 24, 0}
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(4200 + int64(trial)))
		src := randSource(rng, 120+rng.Intn(80))
		delivered := delivery.Deliver(src, delivery.Disordered(rng.Int63(),
			temporal.Duration(rng.Intn(80)+20), temporal.Duration(rng.Intn(60)+10),
			0.15+rng.Float64()*0.3))
		for _, name := range names {
			mk := ops[name]
			for _, spec := range []Spec{Strong(), Middle(), Weak(40), Level(10, 50)} {
				for _, every := range cadences {
					label := fmt.Sprintf("cadence trial %d op %s level %s every %d",
						trial, name, spec.Name(), every)
					runBoth(t, label,
						NewMonitor(mk(), spec, WithSnapshotCadence(every, 0)),
						newRefMonitor(mk(), spec), delivered, 0, Spec{})
				}
			}
		}
	}
}

// Level switching mid-stream must also be equivalent (SetSpec shares the
// release/trim machinery).
func TestMonitorEquivalenceWithLevelSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	mk := func() operators.Op { return operators.NewAggregate(operators.Count, "", "g") }
	levels := []Spec{Strong(), Middle(), Weak(25), Level(10, 50)}
	for trial := 0; trial < 8; trial++ {
		src := randSource(rng, 120)
		delivered := delivery.Deliver(src,
			delivery.Disordered(rng.Int63(), 40, 50, 0.3))
		from := levels[rng.Intn(len(levels))]
		to := levels[rng.Intn(len(levels))]
		at := len(delivered)/3 + rng.Intn(len(delivered)/3)
		label := fmt.Sprintf("switch trial %d %s->%s@%d", trial, from.Name(), to.Name(), at)
		runBoth(t, label, NewMonitor(mk(), from), newRefMonitor(mk(), from), delivered, at, to)
	}
}

// Two-port operators exercise the per-port guarantee combination.
func TestMonitorEquivalenceTwoPort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		left := randSource(rng, 80)
		right := randSource(rng, 80)
		dl := delivery.Deliver(left, delivery.Disordered(rng.Int63(), 50, 40, 0.25))
		dr := delivery.Deliver(right, delivery.Disordered(rng.Int63(), 60, 30, 0.25))
		theta := func(l, r event.Payload) bool { return event.ValueEqual(l["g"], r["g"]) }
		for _, spec := range []Spec{Strong(), Middle(), Weak(40)} {
			opt := NewMonitor(operators.NewJoin(theta), spec)
			ref := newRefMonitor(operators.NewJoin(theta), spec)
			// Merge the two ports in arrival order, as FeedMerged would.
			type portItem struct {
				port int
				ev   event.Event
			}
			var all []portItem
			for _, e := range dl {
				all = append(all, portItem{0, e})
			}
			for _, e := range dr {
				all = append(all, portItem{1, e})
			}
			for i := 1; i < len(all); i++ {
				for j := i; j > 0 && all[j].ev.C.Start < all[j-1].ev.C.Start; j-- {
					all[j], all[j-1] = all[j-1], all[j]
				}
			}
			label := fmt.Sprintf("join trial %d %s", trial, spec.Name())
			for i, pi := range all {
				got := opt.Push(pi.port, pi.ev)
				want := ref.Push(pi.port, pi.ev)
				if !reflect.DeepEqual(append([]event.Event{}, got...), append([]event.Event{}, want...)) {
					t.Fatalf("%s: item %d differs\n got: %v\nwant: %v", label, i, got, want)
				}
			}
			got := opt.Finish()
			want := ref.Finish()
			if !reflect.DeepEqual(append([]event.Event{}, got...), append([]event.Event{}, want...)) {
				t.Fatalf("%s: Finish differs\n got: %v\nwant: %v", label, got, want)
			}
			if gm, wm := opt.Metrics(), ref.Metrics(); gm != wm {
				t.Fatalf("%s: metrics diverge\n got: %+v\nwant: %+v", label, gm, wm)
			}
		}
	}
}
