package consistency

import (
	"sort"

	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/stream"
)

// RunStreams executes an operator under a consistency monitor over physical
// input streams (one per port), merging them by CEDR arrival time. It is
// the single-operator execution harness used by tests, benchmarks and the
// engine's leaf pipelines. The final Finish flushes the monitor so the
// output history is complete.
func RunStreams(op operators.Op, spec Spec, inputs ...stream.Stream) (stream.Stream, Metrics) {
	m := NewMonitor(op, spec)
	out := FeedMerged(m, inputs...)
	out = append(out, m.Finish()...)
	return out, m.Metrics()
}

// FeedMerged pushes the per-port physical streams into the monitor in
// global CEDR arrival order (ties broken by port, then stream position) and
// returns the outputs produced so far, without finishing.
func FeedMerged(m *Monitor, inputs ...stream.Stream) stream.Stream {
	type tagged struct {
		port int
		pos  int
		ev   event.Event
	}
	total := 0
	for _, in := range inputs {
		total += len(in)
	}
	all := make([]tagged, 0, total)
	for port, in := range inputs {
		for pos, e := range in {
			all = append(all, tagged{port, pos, e})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].ev.C.Start != all[j].ev.C.Start {
			return all[i].ev.C.Start < all[j].ev.C.Start
		}
		if all[i].port != all[j].port {
			return all[i].port < all[j].port
		}
		return all[i].pos < all[j].pos
	})
	out := make(stream.Stream, 0, total)
	for _, t := range all {
		out = append(out, m.Push(t.port, t.ev)...)
	}
	return out
}
