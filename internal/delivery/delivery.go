// Package delivery simulates the unreliable event transport of Section 2 of
// the paper: "When events produced by the event provider are delivered into
// CEDR, they can become out of order, due to unreliable network protocols,
// system crash recovery, and other anomalies in the physical world."
//
// The simulator takes a logically ordered stream (sorted by Sync time),
// assigns each event a delivery latency drawn from a configurable,
// deterministic distribution, stamps CEDR arrival times, and re-sorts by
// arrival. It also injects provider-declared sync points (CTI punctuation)
// at a configurable occurrence-time period — the paper's "orderliness is
// measured in terms of the frequency of application declared sync points"
// knob from Figure 8.
package delivery

import (
	"math/rand"
	"sort"

	"repro/internal/event"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// Latency models the per-event delivery delay distribution.
type Latency struct {
	// Base is the minimum delay applied to every event.
	Base temporal.Duration
	// Jitter is the half-open upper bound on uniform extra delay
	// ([0, Jitter)); zero means deterministic delivery.
	Jitter temporal.Duration
	// StragglerProb is the probability that an event is a straggler and
	// additionally incurs StragglerDelay. This two-point mixture produces
	// the "significantly out of order" streams of Figure 8.
	StragglerProb  float64
	StragglerDelay temporal.Duration
}

// Config controls one simulated delivery.
type Config struct {
	Seed    int64
	Latency Latency
	// CTIPeriod is the occurrence-time period at which the provider
	// declares sync points. Zero disables punctuation.
	CTIPeriod temporal.Duration
	// DuplicateProb duplicates an event with this probability, modelling
	// at-least-once transports.
	DuplicateProb float64
}

// Ordered returns a configuration for perfectly ordered, punctuated
// delivery: unit latency, a sync point every period ticks.
func Ordered(period temporal.Duration) Config {
	return Config{Latency: Latency{Base: 1}, CTIPeriod: period}
}

// Disordered returns a configuration with heavy reordering: a two-point
// latency mixture where stragglerProb of events are late by stragglerDelay.
func Disordered(seed int64, period, stragglerDelay temporal.Duration, stragglerProb float64) Config {
	return Config{
		Seed: seed,
		Latency: Latency{
			Base:           1,
			Jitter:         stragglerDelay / 4,
			StragglerProb:  stragglerProb,
			StragglerDelay: stragglerDelay,
		},
		CTIPeriod: period,
	}
}

type arrival struct {
	ev  event.Event
	at  temporal.Time
	seq int
}

// Deliver runs the source stream (which must be in Sync order; use
// Stream.SortBySync if unsure) through the simulated network and returns the
// physical arrival stream with CEDR times stamped.
//
// Punctuation is valid by construction: a CTI with guarantee time t is
// emitted only after every event with Sync < t has been delivered, matching
// the contract that providers only declare sync points they can honor.
func Deliver(src stream.Stream, cfg Config) stream.Stream {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var arr []arrival
	seq := 0
	maxArrivalUpTo := temporal.MinTime // max arrival time among events emitted so far

	emit := func(e event.Event, at temporal.Time) {
		arr = append(arr, arrival{ev: e, at: at, seq: seq})
		seq++
		if at > maxArrivalUpTo {
			maxArrivalUpTo = at
		}
	}

	nextCTI := temporal.Time(cfg.CTIPeriod)
	for _, e := range src {
		if e.IsCTI() {
			continue // the simulator owns punctuation
		}
		// Declare any sync points that precede this event's Sync time.
		for cfg.CTIPeriod > 0 && e.Sync() >= nextCTI {
			emit(event.NewCTI(nextCTI), maxArrivalUpTo.Add(1))
			nextCTI = nextCTI.Add(cfg.CTIPeriod)
		}
		lat := cfg.Latency.Base
		if cfg.Latency.Jitter > 0 {
			lat += temporal.Duration(rng.Int63n(int64(cfg.Latency.Jitter)))
		}
		if cfg.Latency.StragglerProb > 0 && rng.Float64() < cfg.Latency.StragglerProb {
			lat += cfg.Latency.StragglerDelay
		}
		at := e.Sync().Add(lat)
		emit(e, at)
		if cfg.DuplicateProb > 0 && rng.Float64() < cfg.DuplicateProb {
			extra := temporal.Duration(1)
			if cfg.Latency.Jitter > 0 {
				extra += temporal.Duration(rng.Int63n(int64(cfg.Latency.Jitter)))
			}
			emit(e.Clone(), at.Add(extra))
		}
	}
	// Trailing punctuation: close out the stream with a final sync point.
	if cfg.CTIPeriod > 0 && len(src) > 0 {
		last := src[len(src)-1].Sync().Add(1)
		emit(event.NewCTI(last), maxArrivalUpTo.Add(1))
	}

	// CTIs must not be overtaken by events they cover; fix up any CTI whose
	// covered events arrive after it.
	fixPunctuation(arr)

	sort.SliceStable(arr, func(i, j int) bool {
		if arr[i].at != arr[j].at {
			return arr[i].at < arr[j].at
		}
		return arr[i].seq < arr[j].seq
	})
	out := make(stream.Stream, len(arr))
	for i, a := range arr {
		e := a.ev
		e.C = temporal.From(a.at)
		out[i] = e
	}
	return out
}

// fixPunctuation delays each CTI until after the arrival of every data event
// its guarantee covers, keeping punctuation truthful under reordering. For a
// CTI with guarantee t and scheduled arrival a, the truthful arrival is
// max(a, M+1) where M is the latest arrival among data events with Sync < t
// — computed for all CTIs at once from a Sync-sorted prefix maximum instead
// of the former O(n²) rescan per CTI.
func fixPunctuation(arr []arrival) {
	type syncAt struct {
		sync temporal.Time
		at   temporal.Time
	}
	data := make([]syncAt, 0, len(arr))
	for i := range arr {
		if !arr[i].ev.IsCTI() {
			data = append(data, syncAt{sync: arr[i].ev.Sync(), at: arr[i].at})
		}
	}
	sort.Slice(data, func(i, j int) bool { return data[i].sync < data[j].sync })
	for i := 1; i < len(data); i++ {
		if data[i].at < data[i-1].at {
			data[i].at = data[i-1].at // prefix max of arrival over Sync order
		}
	}
	for i := range arr {
		if !arr[i].ev.IsCTI() {
			continue
		}
		t := arr[i].ev.Sync()
		// Last data index with Sync < t.
		j := sort.Search(len(data), func(k int) bool { return data[k].sync >= t }) - 1
		if j < 0 {
			continue
		}
		if m := data[j].at; m >= arr[i].at {
			arr[i].at = m.Add(1)
		}
	}
}
