package delivery

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/stream"
	"repro/internal/temporal"
)

func source(n int) stream.Stream {
	s := make(stream.Stream, 0, n)
	for i := 0; i < n; i++ {
		vs := temporal.Time(i * 10)
		s = append(s, event.NewInsert(event.ID(i), "A", vs, vs+5, nil))
	}
	return s
}

func TestOrderedDeliveryIsInOrder(t *testing.T) {
	out := Deliver(source(50), Ordered(20))
	st := stream.Measure(out)
	if st.Disordered() {
		t.Fatalf("ordered config produced disorder: %+v", st)
	}
	if st.Events != 50 {
		t.Errorf("events = %d", st.Events)
	}
	if st.CTIs == 0 {
		t.Error("no punctuation injected")
	}
}

func TestDisorderedDeliveryReorders(t *testing.T) {
	out := Deliver(source(200), Disordered(7, 100, 200, 0.3))
	st := stream.Measure(out)
	if !st.Disordered() {
		t.Fatal("disordered config produced ordered stream")
	}
	if st.Events != 200 {
		t.Errorf("lost events: %d", st.Events)
	}
}

func TestDeliveryDeterministic(t *testing.T) {
	cfg := Disordered(42, 50, 100, 0.2)
	a := Deliver(source(100), cfg)
	b := Deliver(source(100), cfg)
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].C != b[i].C || a[i].Kind != b[i].Kind {
			t.Fatalf("item %d differs between runs", i)
		}
	}
}

// The fundamental soundness property: punctuation is never violated. After a
// CTI with guarantee time t arrives, no data event with Sync < t may arrive.
func TestPunctuationNeverViolated(t *testing.T) {
	for _, cfg := range []Config{
		Ordered(10),
		Disordered(1, 25, 300, 0.5),
		Disordered(99, 5, 50, 0.9),
		{Seed: 3, Latency: Latency{Base: 1, Jitter: 100}, CTIPeriod: 7, DuplicateProb: 0.3},
	} {
		out := Deliver(source(300), cfg)
		guarantee := temporal.MinTime
		for i, e := range out {
			if e.IsCTI() {
				if e.Sync() > guarantee {
					guarantee = e.Sync()
				}
				continue
			}
			if e.Sync() < guarantee {
				t.Fatalf("cfg %+v: item %d (%v) violates guarantee %v", cfg, i, e, guarantee)
			}
		}
	}
}

func TestArrivalTimesMonotone(t *testing.T) {
	out := Deliver(source(100), Disordered(5, 30, 80, 0.4))
	for i := 1; i < len(out); i++ {
		if out[i].C.Start < out[i-1].C.Start {
			t.Fatalf("arrival order not monotone at %d", i)
		}
	}
}

func TestDuplication(t *testing.T) {
	cfg := Config{Seed: 8, Latency: Latency{Base: 1}, DuplicateProb: 1.0}
	out := Deliver(source(10), cfg)
	if st := stream.Measure(out); st.Events != 20 {
		t.Errorf("expected every event duplicated, got %d", st.Events)
	}
}

func TestDeliverPreservesLogicalContent(t *testing.T) {
	// Whatever the disorder, the delivered stream must be logically
	// equivalent to the source: same multiset of data facts.
	src := source(100)
	out := Deliver(src, Disordered(13, 40, 500, 0.6))
	seen := map[event.ID]int{}
	for _, e := range out.Events() {
		seen[e.ID]++
	}
	for _, e := range src {
		if seen[e.ID] != 1 {
			t.Fatalf("event %d delivered %d times", e.ID, seen[e.ID])
		}
	}
}

func TestRetractionsTravelToo(t *testing.T) {
	src := stream.Stream{
		event.NewInsert(1, "A", 0, 100, nil),
		event.NewRetract(1, "A", 0, 50, nil), // Sync = 50
	}
	out := Deliver(src, Ordered(0))
	if st := stream.Measure(out); st.Retractions != 1 {
		t.Error("retraction lost in delivery")
	}
}

// fixPunctuationReference is the original O(n²) per-CTI rescan; the
// prefix-max implementation must reproduce it exactly — the seeded
// benchmark streams depend on identical arrival times.
func fixPunctuationReference(arr []arrival) {
	for i := range arr {
		if !arr[i].ev.IsCTI() {
			continue
		}
		t := arr[i].ev.Sync()
		latest := arr[i].at
		for j := range arr {
			if !arr[j].ev.IsCTI() && arr[j].ev.Sync() < t && arr[j].at >= latest {
				latest = arr[j].at.Add(1)
			}
		}
		arr[i].at = latest
	}
}

func TestFixPunctuationMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(120)
		mk := func() []arrival {
			arr := make([]arrival, 0, n)
			for i := 0; i < n; i++ {
				at := temporal.Time(rng.Intn(200))
				if rng.Intn(4) == 0 {
					arr = append(arr, arrival{
						ev: event.NewCTI(temporal.Time(rng.Intn(300))), at: at, seq: i})
				} else {
					vs := temporal.Time(rng.Intn(300))
					arr = append(arr, arrival{
						ev: event.NewInsert(event.ID(i+1), "E", vs, vs+10, nil), at: at, seq: i})
				}
			}
			return arr
		}
		got := mk()
		want := append([]arrival(nil), got...)
		fixPunctuation(got)
		fixPunctuationReference(want)
		for i := range got {
			if got[i].at != want[i].at {
				t.Fatalf("trial %d: arrival %d fixed to %v, reference %v",
					trial, i, got[i].at, want[i].at)
			}
		}
	}
}
