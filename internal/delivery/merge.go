package delivery

import (
	"bytes"
	"sort"

	"repro/internal/event"
)

// Tagged is one output item of a shard pipeline together with its order
// tag: an order-preserving byte key (internal/ordkey, produced by the
// consistency monitor's tagged push path) that places the item in the
// emission sequence a single un-sharded pipeline would have produced.
type Tagged struct {
	Ev  event.Event
	Tag []byte
}

// Merger is the deterministic shard-merge stage: it interleaves the
// per-shard output bursts for one input item into the exact sequence the
// single-shard engine emits. Shard-local emission order is already correct
// per key (stable sort keeps it); cross-shard order is fully determined by
// the tags; and punctuation — which every shard emits redundantly, with
// identical tags — collapses to a single item per distinct tag.
//
// A Merger is reusable (scratch is retained across calls) and not safe for
// concurrent use.
type Merger struct {
	scratch []Tagged
	perm    []int
}

// Merge appends the merged interleaving of the per-shard bursts to dst and
// returns it. Burst slices are read but not retained.
func (m *Merger) Merge(dst []event.Event, bursts ...[]Tagged) []event.Event {
	total := 0
	for _, b := range bursts {
		total += len(b)
	}
	if total == 0 {
		return dst
	}
	if len(bursts) == 1 {
		// Single shard: tags are already in emission order.
		for _, t := range bursts[0] {
			dst = append(dst, t.Ev)
		}
		return dst
	}
	all := m.scratch[:0]
	for _, b := range bursts {
		all = append(all, b...)
	}
	return m.mergeAll(dst, all)
}

// MergeTagged is Merge over the batched handoff representation: per shard,
// a run of output events with a parallel tag slice (as accumulated by the
// consistency monitors' *TaggedInto path) instead of a []Tagged. The
// per-shard slices must cover the same single input item; slices are read
// but not retained.
func (m *Merger) MergeTagged(dst []event.Event, evs [][]event.Event, tags [][][]byte) []event.Event {
	total := 0
	for _, sl := range evs {
		total += len(sl)
	}
	if total == 0 {
		return dst
	}
	if len(evs) == 1 {
		return append(dst, evs[0]...)
	}
	all := m.scratch[:0]
	for i, sl := range evs {
		ts := tags[i]
		for k := range sl {
			all = append(all, Tagged{Ev: sl[k], Tag: ts[k]})
		}
	}
	return m.mergeAll(dst, all)
}

// mergeAll sorts the concatenated shard outputs by tag (stably, so equal
// tags keep shard order and each shard's emission order survives), drops
// sibling shards' redundant punctuation, and appends the result to dst.
func (m *Merger) mergeAll(dst []event.Event, all []Tagged) []event.Event {
	perm := m.perm[:0]
	for i := range all {
		perm = append(perm, i)
	}
	sort.SliceStable(perm, func(i, j int) bool {
		return bytes.Compare(all[perm[i]].Tag, all[perm[j]].Tag) < 0
	})
	var prevTag []byte
	prevCTI := false
	for _, k := range perm {
		it := all[k]
		if it.Ev.IsCTI() && prevCTI && bytes.Equal(it.Tag, prevTag) {
			continue // sibling shards' redundant punctuation
		}
		prevTag, prevCTI = it.Tag, it.Ev.IsCTI()
		dst = append(dst, it.Ev)
	}
	m.scratch, m.perm = all, perm
	return dst
}
