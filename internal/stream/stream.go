// Package stream provides physical event streams: ordered sequences of
// events and punctuation moving between operators, plus sources, sinks, and
// disorder statistics. The logical content of a stream is what
// internal/history reasons about; this package is the plumbing.
package stream

import (
	"sort"

	"repro/internal/event"
	"repro/internal/temporal"
)

// Stream is a finite physical stream: items in arrival (CEDR time) order.
// Channel-based pipelines (internal/engine) convert to and from this
// representation at the edges.
type Stream []event.Event

// Clone deep-copies the stream.
func (s Stream) Clone() Stream {
	out := make(Stream, len(s))
	for i, e := range s {
		out[i] = e.Clone()
	}
	return out
}

// Events returns only the data items (inserts and retractions).
func (s Stream) Events() Stream {
	out := make(Stream, 0, len(s))
	for _, e := range s {
		if !e.IsCTI() {
			out = append(out, e)
		}
	}
	return out
}

// SortBySync orders items by (Sync, arrival order); this is what a strongly
// consistent operator sees after alignment. Sorting is stable so
// simultaneous items keep arrival order.
func (s Stream) SortBySync() Stream {
	out := s.Clone()
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Sync() < out[j].Sync()
	})
	return out
}

// WithArrivalTimes stamps consecutive CEDR times 0,1,2,... onto the items in
// their current order, modelling perfectly in-order unit-latency delivery.
func (s Stream) WithArrivalTimes() Stream {
	out := s.Clone()
	for i := range out {
		out[i].C = temporal.From(temporal.Time(i))
	}
	return out
}

// Chan sends the stream over a fresh channel, closing it at the end.
func (s Stream) Chan(buf int) <-chan event.Event {
	ch := make(chan event.Event, buf)
	go func() {
		defer close(ch)
		for _, e := range s {
			ch <- e
		}
	}()
	return ch
}

// Collect drains a channel into a Stream.
func Collect(ch <-chan event.Event) Stream {
	var out Stream
	for e := range ch {
		out = append(out, e)
	}
	return out
}

// Stats summarizes the orderliness of a physical stream.
type Stats struct {
	Events      int               // data items
	CTIs        int               // punctuation items
	Retractions int               // data items with Kind == Retract
	Inversions  int               // adjacent-free pair count i<j with Sync_i > Sync_j
	MaxLateness temporal.Duration // max (maxSyncSeen − Sync) over data items
	SumLateness temporal.Duration
}

// Disordered reports whether any item arrived after an item with a later
// Sync time.
func (st Stats) Disordered() bool { return st.Inversions > 0 }

// MeanLateness is the average lateness over data items (0 if none).
func (st Stats) MeanLateness() float64 {
	if st.Events == 0 {
		return 0
	}
	return float64(st.SumLateness) / float64(st.Events)
}

// Measure computes disorder statistics over the stream in its physical
// (arrival) order. Inversions are counted pairwise against the running
// maximum, i.e. each late item contributes one inversion — a linear-time
// proxy for out-of-orderness that matches how the consistency monitor
// perceives lateness.
func Measure(s Stream) Stats {
	var st Stats
	maxSync := temporal.MinTime
	for _, e := range s {
		if e.IsCTI() {
			st.CTIs++
			continue
		}
		st.Events++
		if e.Kind == event.Retract {
			st.Retractions++
		}
		sync := e.Sync()
		if sync < maxSync {
			st.Inversions++
			late := maxSync.Sub(sync)
			st.SumLateness += late
			if late > st.MaxLateness {
				st.MaxLateness = late
			}
		} else {
			maxSync = sync
		}
	}
	return st
}
