package stream

import (
	"testing"

	"repro/internal/event"
	"repro/internal/temporal"
)

func mk(id event.ID, vs, ve temporal.Time) event.Event {
	return event.NewInsert(id, "A", vs, ve, nil)
}

func TestEventsFiltersCTI(t *testing.T) {
	s := Stream{mk(1, 1, 5), event.NewCTI(3), mk(2, 4, 9)}
	ev := s.Events()
	if len(ev) != 2 {
		t.Fatalf("Events() = %d items", len(ev))
	}
}

func TestSortBySyncStable(t *testing.T) {
	s := Stream{mk(1, 5, 9), mk(2, 1, 3), mk(3, 5, 7)}
	sorted := s.SortBySync()
	if sorted[0].ID != 2 || sorted[1].ID != 1 || sorted[2].ID != 3 {
		t.Errorf("sort wrong: %v", sorted)
	}
	// Original untouched.
	if s[0].ID != 1 {
		t.Error("SortBySync mutated receiver")
	}
}

func TestWithArrivalTimes(t *testing.T) {
	s := Stream{mk(1, 5, 9), mk(2, 1, 3)}.WithArrivalTimes()
	if s[0].C.Start != 0 || s[1].C.Start != 1 {
		t.Errorf("arrival stamps wrong: %v %v", s[0].C, s[1].C)
	}
}

func TestChanCollectRoundTrip(t *testing.T) {
	s := Stream{mk(1, 1, 5), event.NewCTI(2), mk(2, 4, 9)}
	got := Collect(s.Chan(1))
	if len(got) != 3 {
		t.Fatalf("round trip lost items: %d", len(got))
	}
	for i := range s {
		if got[i].ID != s[i].ID || got[i].Kind != s[i].Kind {
			t.Errorf("item %d differs", i)
		}
	}
}

func TestMeasureOrdered(t *testing.T) {
	s := Stream{mk(1, 1, 5), mk(2, 2, 6), event.NewCTI(3), mk(3, 3, 7)}
	st := Measure(s)
	if st.Events != 3 || st.CTIs != 1 {
		t.Errorf("counts: %+v", st)
	}
	if st.Disordered() || st.Inversions != 0 || st.MaxLateness != 0 {
		t.Errorf("ordered stream misreported: %+v", st)
	}
}

func TestMeasureDisorder(t *testing.T) {
	s := Stream{mk(1, 10, 15), mk(2, 3, 6), mk(3, 11, 10)}
	st := Measure(s)
	if !st.Disordered() {
		t.Fatal("disorder not detected")
	}
	if st.Inversions != 1 {
		t.Errorf("inversions = %d, want 1", st.Inversions)
	}
	if st.MaxLateness != 7 {
		t.Errorf("max lateness = %v, want 7", st.MaxLateness)
	}
	if st.MeanLateness() != 7.0/3 {
		t.Errorf("mean lateness = %v", st.MeanLateness())
	}
}

func TestMeasureRetractions(t *testing.T) {
	s := Stream{mk(1, 1, 5), event.NewRetract(1, "A", 1, 3, nil)}
	st := Measure(s)
	if st.Retractions != 1 {
		t.Errorf("retractions = %d", st.Retractions)
	}
}

func TestCloneDeep(t *testing.T) {
	s := Stream{event.NewInsert(1, "A", 1, 5, event.Payload{"x": int64(1)})}
	c := s.Clone()
	c[0].Payload["x"] = int64(2)
	if s[0].Payload["x"] != int64(1) {
		t.Error("Clone not deep")
	}
}
