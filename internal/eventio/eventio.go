// Package eventio decodes and encodes CEDR events at the system's edges:
// the CSV line format of the cedr CLI and the JSON object format of the
// server's HTTP surface. Both front doors share these codecs, so a stream
// accepted by one round-trips through the other.
//
// CSV lines are
//
//	kind,id,type,vs,ve,field=value,...
//
// where kind is "insert", "retract" or "cti" (cti lines use only vs), ve
// may be "inf" or "∞", and values parse by ParseValue. Lines starting with
// '#' are comments.
//
// JSON events are objects like
//
//	{"kind":"insert","id":1,"type":"HOT","vs":1000,"ve":"inf",
//	 "payload":{"sensor":"A","armed":true}}
//
// with optional full tritemporal header fields (os, oe, cs, ce, rt, cbt)
// for clients that speak provider/occurrence time explicitly; omitted
// fields default exactly as cedr.NewEvent does (occurrence starts at vs,
// root time vs). Numbers without a fraction or exponent decode as int64,
// with one as float64; the two compare equal in CEDR's value domain either
// way.
package eventio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/event"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// MaxLine bounds one CSV line (the default bufio.Scanner limit of 64KB
// rejected legitimate wide events with "token too long").
const MaxLine = 1 << 20

// ParseValue converts CSV field text into a typed payload value:
// integers to int64, then floats to float64, then the literals "true" and
// "false" to bool; everything else stays a string. Surrounding single or
// double quotes force the string domain ('true' is the string "true",
// "17" the string "17") and are stripped.
func ParseValue(s string) event.Value {
	if n := len(s); n >= 2 &&
		((s[0] == '\'' && s[n-1] == '\'') || (s[0] == '"' && s[n-1] == '"')) {
		return s[1 : n-1]
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	return s
}

// FormatValue renders a payload value so ParseValue reproduces it: floats
// always carry a fraction or exponent marker, and strings that would parse
// as another domain (or carry surrounding quotes) are single-quoted.
func FormatValue(v event.Value) (string, error) {
	switch x := v.(type) {
	case int64:
		return strconv.FormatInt(x, 10), nil
	case int:
		return strconv.Itoa(x), nil
	case float64:
		s := strconv.FormatFloat(x, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eEIN") {
			s += ".0" // distinguish 2.0 from the integer 2
		}
		return s, nil
	case bool:
		if x {
			return "true", nil
		}
		return "false", nil
	case string:
		if x == "" || quotedForm(x) || differentDomain(x) {
			if strings.ContainsAny(x, "'\n") {
				return "", fmt.Errorf("eventio: string %q needs quoting but contains a quote or newline (use the JSON format)", x)
			}
			return "'" + x + "'", nil
		}
		if strings.ContainsAny(x, ",=\n") {
			return "", fmt.Errorf("eventio: string %q contains CSV structure characters (use the JSON format)", x)
		}
		return x, nil
	default:
		return "", fmt.Errorf("eventio: unsupported payload value type %T", v)
	}
}

// quotedForm reports whether s would lose its surrounding quotes in
// ParseValue.
func quotedForm(s string) bool {
	n := len(s)
	return n >= 2 && ((s[0] == '\'' && s[n-1] == '\'') || (s[0] == '"' && s[n-1] == '"'))
}

// differentDomain reports whether bare s parses as a non-string value.
func differentDomain(s string) bool {
	_, ok := ParseValue(s).(string)
	return !ok
}

// ParseCSVLine decodes one event line (comments and blank lines are the
// caller's concern — see ReadCSV).
func ParseCSVLine(line string) (event.Event, error) {
	parts := strings.Split(line, ",")
	kind := strings.ToLower(strings.TrimSpace(parts[0]))
	if kind == "cti" {
		if len(parts) < 2 {
			return event.Event{}, fmt.Errorf("cti needs a timestamp")
		}
		t, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return event.Event{}, fmt.Errorf("bad cti timestamp: %v", err)
		}
		return event.NewCTI(temporal.Time(t)), nil
	}
	if len(parts) < 5 {
		return event.Event{}, fmt.Errorf("need kind,id,type,vs,ve")
	}
	id, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil {
		return event.Event{}, fmt.Errorf("bad id: %v", err)
	}
	typ := strings.TrimSpace(parts[2])
	vs, err := strconv.ParseInt(strings.TrimSpace(parts[3]), 10, 64)
	if err != nil {
		return event.Event{}, fmt.Errorf("bad vs: %v", err)
	}
	ve := temporal.Infinity
	if s := strings.TrimSpace(parts[4]); s != "inf" && s != "∞" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return event.Event{}, fmt.Errorf("bad ve: %v", err)
		}
		ve = temporal.Time(v)
	}
	payload := event.Payload{}
	for _, kv := range parts[5:] {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		i := strings.IndexByte(kv, '=')
		if i < 0 {
			return event.Event{}, fmt.Errorf("bad field %q", kv)
		}
		payload[kv[:i]] = ParseValue(kv[i+1:])
	}
	switch kind {
	case "insert":
		return event.NewInsert(event.ID(id), typ, temporal.Time(vs), ve, payload), nil
	case "retract":
		return event.NewRetract(event.ID(id), typ, temporal.Time(vs), ve, payload), nil
	}
	return event.Event{}, fmt.Errorf("unknown kind %q", kind)
}

// FormatCSVLine renders an event so ParseCSVLine reproduces its
// unitemporal content (payload keys sorted for determinism). Events whose
// payload does not survive the CSV form — structure characters in strings,
// unsupported value types — are rejected; the JSON codec has no such limits.
func FormatCSVLine(e event.Event) (string, error) {
	if e.IsCTI() {
		return fmt.Sprintf("cti,%d", int64(e.V.Start)), nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s,%d,%s,%d,", e.Kind, uint64(e.ID), e.Type, int64(e.V.Start))
	if e.V.End.IsInfinite() {
		b.WriteString("inf")
	} else {
		fmt.Fprintf(&b, "%d", int64(e.V.End))
	}
	for _, k := range sortedKeys(e.Payload) {
		if strings.ContainsAny(k, ",=\n") {
			return "", fmt.Errorf("eventio: payload key %q contains CSV structure characters", k)
		}
		v, err := FormatValue(e.Payload[k])
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, ",%s=%s", k, v)
	}
	return b.String(), nil
}

func sortedKeys(p event.Payload) []string {
	if len(p) == 0 {
		return nil
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	// Insertion sort: payloads are small and this avoids importing sort for
	// one call site.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// ReadCSV decodes an event stream from one-line-per-event CSV, skipping
// blank lines and '#' comments. Errors carry name and line number. Lines
// up to MaxLine (1MiB) are accepted — the previous default 64KB scanner
// limit failed wide events with an unlocated "token too long".
func ReadCSV(r io.Reader, name string) (stream.Stream, error) {
	var out stream.Stream
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := ParseCSVLine(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, fmt.Errorf("%s:%d: line exceeds %d bytes", name, lineNo+1, MaxLine)
		}
		return nil, fmt.Errorf("%s:%d: %v", name, lineNo+1, err)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// JSON

// jsonEvent is the wire object. Times are int64 ticks, or the string "inf"
// for the infinite horizon; optional header fields default as the
// constructors do.
type jsonEvent struct {
	Kind    string          `json:"kind"`
	ID      uint64          `json:"id,omitempty"`
	Type    string          `json:"type,omitempty"`
	Vs      int64           `json:"vs"`
	Ve      *jsonTime       `json:"ve,omitempty"`
	Os      *jsonTime       `json:"os,omitempty"`
	Oe      *jsonTime       `json:"oe,omitempty"`
	Cs      *jsonTime       `json:"cs,omitempty"`
	Ce      *jsonTime       `json:"ce,omitempty"`
	Rt      *jsonTime       `json:"rt,omitempty"`
	Cbt     []uint64        `json:"cbt,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// jsonTime marshals a temporal.Time as its integer tick count, with "inf"
// and "-inf" for the two sentinels.
type jsonTime temporal.Time

// MarshalJSON implements json.Marshaler.
func (t jsonTime) MarshalJSON() ([]byte, error) {
	switch temporal.Time(t) {
	case temporal.Infinity:
		return []byte(`"inf"`), nil
	case temporal.MinTime:
		return []byte(`"-inf"`), nil
	}
	return strconv.AppendInt(nil, int64(t), 10), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *jsonTime) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"inf"`, `"∞"`:
		*t = jsonTime(temporal.Infinity)
		return nil
	case `"-inf"`:
		*t = jsonTime(temporal.MinTime)
		return nil
	}
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("eventio: bad time %s", b)
	}
	*t = jsonTime(n)
	return nil
}

func timePtr(t temporal.Time) *jsonTime {
	jt := jsonTime(t)
	return &jt
}

// MarshalJSON encodes one event as a JSON object. Header fields that match
// the constructor defaults (occurrence [vs, inf), root time vs, unset CEDR
// time) are omitted, so hand-built and decoder-built events marshal to the
// minimal form while engine outputs keep their full tritemporal header.
func MarshalJSON(e event.Event) ([]byte, error) {
	je := jsonEvent{Kind: e.Kind.String(), Vs: int64(e.V.Start)}
	if e.IsCTI() {
		return json.Marshal(je)
	}
	je.ID = uint64(e.ID)
	je.Type = e.Type
	je.Ve = timePtr(e.V.End)
	if e.O.Start != e.V.Start {
		je.Os = timePtr(e.O.Start)
	}
	if !e.O.End.IsInfinite() {
		je.Oe = timePtr(e.O.End)
	}
	if (e.C != temporal.Interval{}) {
		je.Cs = timePtr(e.C.Start)
		je.Ce = timePtr(e.C.End)
	}
	if e.RT != e.V.Start {
		je.Rt = timePtr(e.RT)
	}
	for _, id := range e.CBT {
		je.Cbt = append(je.Cbt, uint64(id))
	}
	if len(e.Payload) > 0 {
		raw, err := marshalPayload(e.Payload)
		if err != nil {
			return nil, err
		}
		je.Payload = raw
	}
	return json.Marshal(je)
}

// marshalPayload renders the payload with sorted keys and floats always
// carrying a fraction or exponent marker, so the int64/float64 distinction
// survives the round trip.
func marshalPayload(p event.Payload) (json.RawMessage, error) {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range sortedKeys(p) {
		if i > 0 {
			b.WriteByte(',')
		}
		kb, _ := json.Marshal(k)
		b.Write(kb)
		b.WriteByte(':')
		switch x := p[k].(type) {
		case int64:
			b.WriteString(strconv.FormatInt(x, 10))
		case int:
			b.WriteString(strconv.Itoa(x))
		case float64:
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("eventio: non-finite float %v in payload key %q has no JSON form", x, k)
			}
			s := strconv.FormatFloat(x, 'g', -1, 64)
			if !strings.ContainsAny(s, ".eE") {
				s += ".0"
			}
			b.WriteString(s)
		case bool:
			b.WriteString(strconv.FormatBool(x))
		case string:
			sb, err := json.Marshal(x)
			if err != nil {
				return nil, err
			}
			b.Write(sb)
		default:
			return nil, fmt.Errorf("eventio: unsupported payload value type %T for key %q", p[k], k)
		}
	}
	b.WriteByte('}')
	return json.RawMessage(b.String()), nil
}

// UnmarshalJSON decodes one event object produced by MarshalJSON (or
// hand-written by a client). JSON numbers without fraction or exponent
// decode as int64, with one as float64.
func UnmarshalJSON(data []byte) (event.Event, error) {
	var je jsonEvent
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&je); err != nil {
		return event.Event{}, fmt.Errorf("eventio: %v", err)
	}
	vs := temporal.Time(je.Vs)
	switch je.Kind {
	case "cti":
		return event.NewCTI(vs), nil
	case "insert", "retract":
	default:
		return event.Event{}, fmt.Errorf("eventio: unknown kind %q", je.Kind)
	}
	if je.Type == "" {
		return event.Event{}, fmt.Errorf("eventio: %s event needs a type", je.Kind)
	}
	ve := temporal.Infinity
	if je.Ve != nil {
		ve = temporal.Time(*je.Ve)
	}
	var payload event.Payload
	if len(je.Payload) > 0 {
		var err error
		if payload, err = unmarshalPayload(je.Payload); err != nil {
			return event.Event{}, err
		}
	}
	var e event.Event
	if je.Kind == "insert" {
		e = event.NewInsert(event.ID(je.ID), je.Type, vs, ve, payload)
	} else {
		e = event.NewRetract(event.ID(je.ID), je.Type, vs, ve, payload)
	}
	if je.Os != nil {
		e.O.Start = temporal.Time(*je.Os)
	}
	if je.Oe != nil {
		e.O.End = temporal.Time(*je.Oe)
	}
	if je.Cs != nil {
		e.C.Start = temporal.Time(*je.Cs)
	}
	if je.Ce != nil {
		e.C.End = temporal.Time(*je.Ce)
	}
	if je.Rt != nil {
		e.RT = temporal.Time(*je.Rt)
	}
	for _, id := range je.Cbt {
		e.CBT = append(e.CBT, event.ID(id))
	}
	return e, nil
}

// unmarshalPayload decodes a payload object with json.Number preservation.
func unmarshalPayload(raw json.RawMessage) (event.Payload, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.UseNumber()
	var m map[string]any
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("eventio: payload: %v", err)
	}
	p := make(event.Payload, len(m))
	for k, v := range m {
		switch x := v.(type) {
		case json.Number:
			s := x.String()
			if !strings.ContainsAny(s, ".eE") {
				if n, err := strconv.ParseInt(s, 10, 64); err == nil {
					p[k] = n
					continue
				}
			}
			f, err := x.Float64()
			if err != nil {
				return nil, fmt.Errorf("eventio: payload key %q: bad number %s", k, s)
			}
			p[k] = f
		case bool, string:
			p[k] = x
		default:
			return nil, fmt.Errorf("eventio: payload key %q has unsupported JSON type %T (values must be numbers, strings, or booleans)", k, v)
		}
	}
	return p, nil
}

// ReadJSONStream decodes a sequence of JSON event objects (NDJSON, or any
// whitespace-separated concatenation; a top-level JSON array also works).
// Errors carry name and the 1-based index of the failing object.
func ReadJSONStream(r io.Reader, name string) (stream.Stream, error) {
	dec := json.NewDecoder(r)
	var out stream.Stream
	n := 0
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("%s: event %d: %v", name, n+1, err)
		}
		// A top-level array: unpack its elements.
		if len(raw) > 0 && raw[0] == '[' {
			var arr []json.RawMessage
			if err := json.Unmarshal(raw, &arr); err != nil {
				return nil, fmt.Errorf("%s: %v", name, err)
			}
			for _, el := range arr {
				n++
				ev, err := UnmarshalJSON(el)
				if err != nil {
					return nil, fmt.Errorf("%s: event %d: %v", name, n, err)
				}
				out = append(out, ev)
			}
			continue
		}
		n++
		ev, err := UnmarshalJSON(raw)
		if err != nil {
			return nil, fmt.Errorf("%s: event %d: %v", name, n, err)
		}
		out = append(out, ev)
	}
}
