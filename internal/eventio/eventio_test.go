package eventio

import (
	"math"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/temporal"
)

func TestParseValueDomains(t *testing.T) {
	cases := []struct {
		in   string
		want event.Value
	}{
		{"17", int64(17)},
		{"-4", int64(-4)},
		{"2.5", 2.5},
		{"2.0", 2.0},
		{"1e3", 1000.0},
		{"+Inf", math.Inf(1)},
		{"-Inf", math.Inf(-1)},
		{"true", true},
		{"false", false},
		{"hello", "hello"},
		{"'true'", "true"}, // quoting forces the string domain
		{`"17"`, "17"},     // both quote styles
		{"''", ""},         // empty string
		{"True", "True"},   // bool literals are exact
		{"m003", "m003"},   // not numeric despite digits
		{"0x10", "0x10"},   // no hex integers
	}
	for _, c := range cases {
		got := ParseValue(c.in)
		if !event.ValueEqual(got, c.want) || gotType(got) != gotType(c.want) {
			t.Errorf("ParseValue(%q) = %#v (%T), want %#v (%T)", c.in, got, got, c.want, c.want)
		}
	}
}

func gotType(v event.Value) string {
	switch v.(type) {
	case int64:
		return "int64"
	case float64:
		return "float64"
	case bool:
		return "bool"
	case string:
		return "string"
	default:
		return "other"
	}
}

func TestValueRoundTrip(t *testing.T) {
	values := []event.Value{
		int64(0), int64(-42), int64(1 << 40),
		2.5, 2.0, -0.125, 1e300, math.Inf(1),
		true, false,
		"plain", "true", "17", "2.5", "", "m003",
	}
	for _, v := range values {
		s, err := FormatValue(v)
		if err != nil {
			t.Fatalf("FormatValue(%#v): %v", v, err)
		}
		got := ParseValue(s)
		if !event.ValueEqual(got, v) || gotType(got) != gotType(v) {
			t.Errorf("round trip %#v -> %q -> %#v (%T)", v, s, got, got)
		}
	}
}

func TestFormatValueRejectsUnrepresentable(t *testing.T) {
	if _, err := FormatValue("a,b"); err == nil {
		t.Error("comma string should be rejected in CSV form")
	}
	if _, err := FormatValue("'quoted'"); err == nil {
		t.Error("string in quoted form cannot survive CSV (JSON handles it)")
	}
	if _, err := FormatValue([]string{"x"}); err == nil {
		t.Error("unsupported type should be rejected")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	events := []event.Event{
		event.NewInsert(1, "HOT", 1000, temporal.Infinity,
			event.Payload{"sensor": "A", "armed": true, "level": 2.5, "count": int64(7)}),
		event.NewInsert(2, "COOL", 2000, 5000, event.Payload{"rate": 2.0}),
		event.NewRetract(1, "HOT", 1000, 1500, event.Payload{"sensor": "A"}),
		event.NewRetract(3, "X", 10, 10, nil), // full removal (ve == vs)
		event.NewCTI(4200),
		event.NewInsert(5, "S", 0, temporal.Infinity, event.Payload{"name": "q", "num": "17"}),
	}
	for _, e := range events {
		line, err := FormatCSVLine(e)
		if err != nil {
			t.Fatalf("format %v: %v", e, err)
		}
		got, err := ParseCSVLine(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if !got.Identical(e) {
			t.Errorf("round trip %v -> %q -> %v", e, line, got)
		}
	}
}

func TestParseCSVLineErrors(t *testing.T) {
	bad := []string{
		"insert,1,HOT",            // too few fields
		"insert,x,HOT,1,inf",      // bad id
		"insert,1,HOT,x,inf",      // bad vs
		"insert,1,HOT,1,x",        // bad ve
		"insert,1,HOT,1,inf,noeq", // field without '='
		"mystery,1,HOT,1,inf",     // unknown kind
		"cti",                     // cti without timestamp
		"cti,xyz",                 // bad cti timestamp
	}
	for _, line := range bad {
		if _, err := ParseCSVLine(line); err == nil {
			t.Errorf("ParseCSVLine(%q) accepted bad input", line)
		}
	}
}

func TestReadCSV(t *testing.T) {
	in := `# comment
insert,1,HOT,1000,inf,sensor=A

cti,2000
retract,1,HOT,1000,1500,sensor=A
`
	s, err := ReadCSV(strings.NewReader(in), "test.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 {
		t.Fatalf("got %d events, want 3", len(s))
	}
	if s[0].Kind != event.Insert || s[1].Kind != event.CTI || s[2].Kind != event.Retract {
		t.Errorf("kinds = %v %v %v", s[0].Kind, s[1].Kind, s[2].Kind)
	}
}

func TestReadCSVErrorsCarryLineNumbers(t *testing.T) {
	in := "insert,1,HOT,1000,inf\n# fine\nbogus line here\n"
	_, err := ReadCSV(strings.NewReader(in), "events.csv")
	if err == nil || !strings.Contains(err.Error(), "events.csv:3") {
		t.Errorf("want line-numbered error mentioning events.csv:3, got %v", err)
	}
}

// TestReadCSVLongLines is the regression test for the 64KB scanner limit:
// a ~200KB event line must parse, and a line past MaxLine must fail with a
// located error instead of a bare "token too long".
func TestReadCSVLongLines(t *testing.T) {
	big := "insert,1,WIDE,0,inf,blob=" + strings.Repeat("x", 200*1024)
	s, err := ReadCSV(strings.NewReader(big+"\n"), "wide.csv")
	if err != nil {
		t.Fatalf("200KB line rejected: %v", err)
	}
	if got := s[0].Payload["blob"].(string); len(got) != 200*1024 {
		t.Fatalf("blob truncated to %d bytes", len(got))
	}

	huge := "insert,1,WIDE,0,inf,blob=" + strings.Repeat("x", MaxLine+1)
	_, err = ReadCSV(strings.NewReader("# one\n"+huge+"\n"), "huge.csv")
	if err == nil || !strings.Contains(err.Error(), "huge.csv:2") {
		t.Errorf("over-limit line should fail with location huge.csv:2, got %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	full := event.NewInsert(9, "TRADE", 100, 900,
		event.Payload{"sym": "MSFT", "px": 27.5, "qty": int64(100), "odd": true})
	full.O = temporal.NewInterval(90, 800)
	full.C = temporal.NewInterval(5, temporal.Infinity)
	full.RT = 42
	full.CBT = []event.ID{3, 4}

	events := []event.Event{
		event.NewInsert(1, "HOT", 1000, temporal.Infinity,
			event.Payload{"sensor": "A", "armed": true, "level": 2.5, "count": int64(7), "whole": 2.0}),
		event.NewRetract(1, "HOT", 1000, 1500, event.Payload{"sensor": "A"}),
		event.NewCTI(4200),
		full,
	}
	for _, e := range events {
		data, err := MarshalJSON(e)
		if err != nil {
			t.Fatalf("marshal %v: %v", e, err)
		}
		got, err := UnmarshalJSON(data)
		if err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !got.Identical(e) {
			t.Errorf("round trip %v -> %s -> %v", e, data, got)
		}
	}
}

func TestJSONDefaults(t *testing.T) {
	got, err := UnmarshalJSON([]byte(`{"kind":"insert","id":3,"type":"HOT","vs":2000,"payload":{"sensor":"B"}}`))
	if err != nil {
		t.Fatal(err)
	}
	want := event.NewInsert(3, "HOT", 2000, temporal.Infinity, event.Payload{"sensor": "B"})
	if !got.Identical(want) {
		t.Errorf("defaults: got %v, want %v", got, want)
	}
}

func TestJSONErrors(t *testing.T) {
	bad := []string{
		`{"kind":"mystery","id":1,"type":"X","vs":0}`,
		`{"kind":"insert","id":1,"vs":0}`,                                 // missing type
		`{"kind":"insert","id":1,"type":"X","vs":0,"bogus":1}`,            // unknown field
		`{"kind":"insert","id":1,"type":"X","vs":0,"ve":"soon"}`,          // bad time
		`{"kind":"insert","id":1,"type":"X","vs":0,"payload":{"a":[1]}}`,  // unsupported value
		`{"kind":"insert","id":1,"type":"X","vs":0,"payload":{"a":null}}`, // unsupported value
	}
	for _, in := range bad {
		if _, err := UnmarshalJSON([]byte(in)); err == nil {
			t.Errorf("UnmarshalJSON(%s) accepted bad input", in)
		}
	}
	if _, err := MarshalJSON(event.NewInsert(1, "X", 0, temporal.Infinity,
		event.Payload{"f": math.NaN()})); err == nil {
		t.Error("NaN payload float should be rejected by the JSON form")
	}
}

func TestReadJSONStream(t *testing.T) {
	nd := `{"kind":"insert","id":1,"type":"HOT","vs":1000}
{"kind":"cti","vs":2000}`
	s, err := ReadJSONStream(strings.NewReader(nd), "nd")
	if err != nil || len(s) != 2 {
		t.Fatalf("ndjson: %v, %d events", err, len(s))
	}
	arr := `[{"kind":"insert","id":1,"type":"HOT","vs":1000},{"kind":"cti","vs":2000}]`
	s, err = ReadJSONStream(strings.NewReader(arr), "arr")
	if err != nil || len(s) != 2 {
		t.Fatalf("array: %v, %d events", err, len(s))
	}
	_, err = ReadJSONStream(strings.NewReader(`{"kind":"insert","id":1,"type":"X","vs":0}
{"kind":"nope","vs":1}`), "mix")
	if err == nil || !strings.Contains(err.Error(), "event 2") {
		t.Errorf("want indexed error for event 2, got %v", err)
	}
}
