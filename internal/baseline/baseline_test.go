package baseline

import (
	"testing"

	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/temporal"
	"repro/internal/workload"
)

func TestPointEngineDropsLate(t *testing.T) {
	pe := NewPointEngine()
	if !pe.Accept(PointTuple{TS: 10}) || !pe.Accept(PointTuple{TS: 20}) {
		t.Fatal("in-order tuples rejected")
	}
	if pe.Accept(PointTuple{TS: 15}) {
		t.Fatal("late tuple accepted")
	}
	if pe.Dropped != 1 || pe.Processed != 2 {
		t.Errorf("counters: %+v", pe)
	}
}

func TestSlidingAgg(t *testing.T) {
	agg := NewSlidingAgg(10, "x")
	r1, ok := agg.Push(PointTuple{TS: 0, Payload: event.Payload{"x": int64(4)}})
	if !ok || r1.Value != 4 {
		t.Fatalf("r1 = %+v", r1)
	}
	r2, _ := agg.Push(PointTuple{TS: 5, Payload: event.Payload{"x": int64(8)}})
	if r2.Value != 6 || r2.N != 2 {
		t.Fatalf("r2 = %+v", r2)
	}
	// Window slides: tuple at 0 leaves by 11.
	r3, _ := agg.Push(PointTuple{TS: 11, Payload: event.Payload{"x": int64(2)}})
	if r3.N != 2 || r3.Value != 5 {
		t.Fatalf("r3 = %+v", r3)
	}
}

// The paper's core criticism: under disorder, a drop-late point engine
// loses data, and its results diverge; CEDR's strong/middle levels do not.
func TestBaselineLosesDataUnderDisorder(t *testing.T) {
	src := workload.StockTicks(workload.DefaultTicks())
	ordered := delivery.Deliver(src, delivery.Ordered(0))
	disordered := delivery.Deliver(src, delivery.Disordered(3, 0, 10*temporal.Second, 0.3))

	_, d0 := RunPointAggregate(ordered, 10*temporal.Second, "price")
	_, d1 := RunPointAggregate(disordered, 10*temporal.Second, "price")
	if d0 != 0 {
		t.Errorf("ordered run dropped %d", d0)
	}
	if d1 == 0 {
		t.Error("disordered run should drop tuples")
	}
}

func TestSequenceDetector(t *testing.T) {
	sd := NewSequenceDetector([]string{"A", "B"}, 10, "k")
	sd.Push(PointTuple{TS: 0, Type: "A", Payload: event.Payload{"k": "x"}})
	done := sd.Push(PointTuple{TS: 5, Type: "B", Payload: event.Payload{"k": "x"}})
	if len(done) != 1 {
		t.Fatalf("matches = %d", len(done))
	}
	// Wrong correlation key.
	sd.Push(PointTuple{TS: 20, Type: "A", Payload: event.Payload{"k": "x"}})
	done = sd.Push(PointTuple{TS: 22, Type: "B", Payload: event.Payload{"k": "y"}})
	if len(done) != 0 {
		t.Fatal("correlation ignored")
	}
	// Out of scope.
	sd.Push(PointTuple{TS: 40, Type: "A", Payload: event.Payload{"k": "x"}})
	done = sd.Push(PointTuple{TS: 60, Type: "B", Payload: event.Payload{"k": "x"}})
	if len(done) != 0 {
		t.Fatal("scope ignored")
	}
}

func TestSequenceDetectorMissesLateEvents(t *testing.T) {
	// A arrives late (after B): the baseline finds nothing — the behaviour
	// the paper contrasts with CEDR's alignment/repair.
	sd := NewSequenceDetector([]string{"A", "B"}, 10, "")
	sd.Push(PointTuple{TS: 5, Type: "B"})
	sd.Push(PointTuple{TS: 0, Type: "A"}) // dropped: late
	if sd.Found != 0 {
		t.Fatal("baseline should have missed the disordered match")
	}
	if sd.Dropped() != 1 {
		t.Errorf("dropped = %d", sd.Dropped())
	}
}

func TestPubSub(t *testing.T) {
	ps := NewPubSub()
	s1 := ps.Subscribe("TICK", event.Payload{"symbol": "SYM1"})
	s2 := ps.Subscribe("TICK", nil)
	s3 := ps.Subscribe("NEWS", nil)
	got := ps.Publish(event.NewInsert(1, "TICK", 0, 1, event.Payload{"symbol": "SYM1"}))
	if len(got) != 2 || got[0] != s1 || got[1] != s2 {
		t.Errorf("matches = %v", got)
	}
	got = ps.Publish(event.NewInsert(2, "TICK", 0, 1, event.Payload{"symbol": "SYM9"}))
	if len(got) != 1 || got[0] != s2 {
		t.Errorf("matches = %v", got)
	}
	if ps.Delivered != 3 {
		t.Errorf("delivered = %d", ps.Delivered)
	}
	_ = s3
}
