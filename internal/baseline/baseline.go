// Package baseline implements the comparator systems of the paper's
// Section 1 analysis: a point-tuple data-stream engine in the style of
// STREAM/Aurora (no validity intervals, no retractions, late tuples
// dropped) and a stateless pub/sub matcher. The benchmarks run the same
// workloads through these baselines to reproduce the paper's qualitative
// comparisons: the point engine loses accuracy under disorder and cannot
// express negation or consumption; pub/sub can only filter.
package baseline

import (
	"repro/internal/event"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// PointTuple is the baseline's event model: a timestamped point, not an
// interval.
type PointTuple struct {
	TS      temporal.Time
	Type    string
	Payload event.Payload
}

// PointEngine is an in-order point-stream processor: tuples are processed
// in arrival order, and any tuple older than the maximum timestamp seen is
// dropped (the "ignore late data" policy the paper contrasts with CEDR's
// retraction machinery).
type PointEngine struct {
	watermark temporal.Time
	Dropped   int
	Processed int
}

// NewPointEngine creates the baseline engine.
func NewPointEngine() *PointEngine {
	return &PointEngine{watermark: temporal.MinTime}
}

// Accept admits a tuple in arrival order, returning false for dropped
// (late) tuples.
func (pe *PointEngine) Accept(t PointTuple) bool {
	if t.TS < pe.watermark {
		pe.Dropped++
		return false
	}
	pe.watermark = t.TS
	pe.Processed++
	return true
}

// FromEvent converts a CEDR event to the baseline's point model, losing the
// validity interval (the paper: existing systems "model stream tuples as
// points").
func FromEvent(e event.Event) PointTuple {
	return PointTuple{TS: e.V.Start, Type: e.Type, Payload: e.Payload}
}

// SlidingAgg computes a CQL-style sliding aggregate over the last window of
// point tuples, emitting one result per accepted tuple.
type SlidingAgg struct {
	Window temporal.Duration
	Field  string
	engine *PointEngine
	buf    []PointTuple
}

// NewSlidingAgg builds a sliding-average operator over the window.
func NewSlidingAgg(window temporal.Duration, field string) *SlidingAgg {
	return &SlidingAgg{Window: window, Field: field, engine: NewPointEngine()}
}

// Result is one baseline aggregate output.
type Result struct {
	TS    temporal.Time
	Value float64
	N     int
}

// Push admits a tuple and returns the window aggregate, if the tuple was
// accepted.
func (sa *SlidingAgg) Push(t PointTuple) (Result, bool) {
	if !sa.engine.Accept(t) {
		return Result{}, false
	}
	sa.buf = append(sa.buf, t)
	lo := t.TS.Add(-sa.Window)
	i := 0
	for i < len(sa.buf) && sa.buf[i].TS <= lo {
		i++
	}
	sa.buf = sa.buf[i:]
	sum, n := 0.0, 0
	for _, b := range sa.buf {
		if v, ok := event.Num(b.Payload[sa.Field]); ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return Result{TS: t.TS}, true
	}
	return Result{TS: t.TS, Value: sum / float64(n), N: n}, true
}

// Dropped reports how many late tuples the engine discarded.
func (sa *SlidingAgg) Dropped() int { return sa.engine.Dropped }

// SequenceDetector is the baseline's sequence matcher: contiguous type
// matching over accepted (in-order) tuples with a time scope, no
// consumption control, no retraction. It mirrors what the paper says point
// systems can do — and mispredicts when events arrive out of order.
type SequenceDetector struct {
	Types  []string
	W      temporal.Duration
	Corr   string // attribute that must match across contributors ("" = none)
	engine *PointEngine
	open   [][]PointTuple
	Found  int
}

// NewSequenceDetector builds the baseline matcher.
func NewSequenceDetector(types []string, w temporal.Duration, corr string) *SequenceDetector {
	return &SequenceDetector{Types: types, W: w, Corr: corr, engine: NewPointEngine()}
}

// Push admits a tuple and returns completed matches.
func (sd *SequenceDetector) Push(t PointTuple) [][]PointTuple {
	if !sd.engine.Accept(t) {
		return nil
	}
	var done [][]PointTuple
	var kept [][]PointTuple
	for _, chain := range sd.open {
		if t.TS.Sub(chain[0].TS) > sd.W {
			continue // expired
		}
		next := len(chain)
		if sd.Types[next] == t.Type &&
			(sd.Corr == "" || event.ValueEqual(chain[0].Payload[sd.Corr], t.Payload[sd.Corr])) {
			ext := append(append([]PointTuple{}, chain...), t)
			if len(ext) == len(sd.Types) {
				done = append(done, ext)
				sd.Found++
				continue
			}
			kept = append(kept, ext)
		}
		kept = append(kept, chain)
	}
	sd.open = kept
	if sd.Types[0] == t.Type {
		sd.open = append(sd.open, []PointTuple{t})
	}
	return done
}

// Dropped reports how many late tuples were discarded.
func (sd *SequenceDetector) Dropped() int { return sd.engine.Dropped }

// Subscription is a pub/sub predicate: type plus attribute equalities.
type Subscription struct {
	ID    int
	Type  string
	Where event.Payload // attribute → required value
}

// PubSub is the stateless publish/subscribe baseline: it routes events to
// matching subscriptions but, as the paper notes, "lacks the ability to
// carry out computation other than filtering".
type PubSub struct {
	subs []Subscription
	// Delivered counts matched (sub, event) pairs.
	Delivered int
}

// NewPubSub creates an empty broker.
func NewPubSub() *PubSub { return &PubSub{} }

// Subscribe registers a subscription and returns its id.
func (ps *PubSub) Subscribe(typ string, where event.Payload) int {
	id := len(ps.subs)
	ps.subs = append(ps.subs, Subscription{ID: id, Type: typ, Where: where})
	return id
}

// Publish matches an event against all subscriptions, returning the ids of
// those it reaches. Matching is stateless: no joins, no windows, no
// ordering concerns.
func (ps *PubSub) Publish(e event.Event) []int {
	var out []int
	for _, s := range ps.subs {
		if s.Type != "" && s.Type != e.Type {
			continue
		}
		ok := true
		for k, v := range s.Where {
			if !event.ValueEqual(e.Payload[k], v) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, s.ID)
			ps.Delivered++
		}
	}
	return out
}

// RunPointAggregate drives a physical (possibly disordered) stream through
// the baseline sliding aggregate, returning results and drop count — used
// by the benchmarks for the accuracy comparison against CEDR levels.
func RunPointAggregate(s stream.Stream, window temporal.Duration, field string) ([]Result, int) {
	agg := NewSlidingAgg(window, field)
	var out []Result
	for _, e := range s {
		if e.IsCTI() || e.Kind != event.Insert {
			continue // the baseline has no notion of punctuation or retraction
		}
		if r, ok := agg.Push(FromEvent(e)); ok {
			out = append(out, r)
		}
	}
	return out, agg.Dropped()
}
