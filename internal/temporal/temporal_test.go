package temporal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeAddSaturates(t *testing.T) {
	cases := []struct {
		name string
		t    Time
		d    Duration
		want Time
	}{
		{"simple", 10, 5, 15},
		{"negative", 10, -5, 5},
		{"infinity stays", Infinity, 100, Infinity},
		{"infinity stays negative", Infinity, -100, Infinity},
		{"saturate high", Infinity - 1, 10, Infinity},
		{"saturate low", MinTime + 1, -10, MinTime},
		{"zero", 42, 0, 42},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.t.Add(c.d); got != c.want {
				t.Errorf("%v.Add(%v) = %v, want %v", c.t, c.d, got, c.want)
			}
		})
	}
}

func TestTimeSub(t *testing.T) {
	if got := Time(10).Sub(3); got != 7 {
		t.Errorf("10-3 = %v, want 7", got)
	}
	if got := Infinity.Sub(Infinity); got != 0 {
		t.Errorf("inf-inf = %v, want 0", got)
	}
	if got := Infinity.Sub(5); got != Duration(math.MaxInt64) {
		t.Errorf("inf-5 = %v, want max", got)
	}
	if got := Time(5).Sub(Infinity); got != Duration(math.MinInt64) {
		t.Errorf("5-inf = %v, want min", got)
	}
}

func TestTimeString(t *testing.T) {
	if Infinity.String() != "∞" {
		t.Errorf("Infinity.String() = %q", Infinity.String())
	}
	if Time(42).String() != "42" {
		t.Errorf("Time(42).String() = %q", Time(42).String())
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if Max(7, Infinity) != Infinity {
		t.Error("Max with Infinity broken")
	}
}

func TestIntervalBasics(t *testing.T) {
	i := NewInterval(1, 10)
	if i.Empty() {
		t.Error("[1,10) reported empty")
	}
	if !i.Contains(1) || !i.Contains(9) {
		t.Error("Contains endpoints wrong")
	}
	if i.Contains(10) || i.Contains(0) {
		t.Error("Contains out-of-range wrong")
	}
	if i.Duration() != 9 {
		t.Errorf("Duration = %v, want 9", i.Duration())
	}
	if i.String() != "[1, 10)" {
		t.Errorf("String = %q", i.String())
	}
}

func TestIntervalEmpty(t *testing.T) {
	for _, iv := range []Interval{NewInterval(5, 5), NewInterval(7, 3)} {
		if !iv.Empty() {
			t.Errorf("%v not reported empty", iv)
		}
		if iv.Duration() != 0 {
			t.Errorf("%v duration = %v, want 0", iv, iv.Duration())
		}
		if iv.Contains(iv.Start) {
			t.Errorf("empty %v contains its start", iv)
		}
	}
}

func TestIntervalOverlapsIntersect(t *testing.T) {
	a := NewInterval(1, 10)
	b := NewInterval(5, 15)
	c := NewInterval(10, 20)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a/b should overlap")
	}
	// Half-open: [1,10) and [10,20) share no instant.
	if a.Overlaps(c) {
		t.Error("a/c should not overlap")
	}
	got := a.Intersect(b)
	if got != NewInterval(5, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Intersect(c).Empty() {
		t.Error("a∩c should be empty")
	}
}

func TestIntervalMeets(t *testing.T) {
	// Definition 10: [T1,T2) meets [T1',T2') iff T2 = T1'.
	if !NewInterval(1, 5).Meets(NewInterval(5, 9)) {
		t.Error("[1,5) should meet [5,9)")
	}
	if NewInterval(1, 5).Meets(NewInterval(6, 9)) {
		t.Error("[1,5) should not meet [6,9)")
	}
	if NewInterval(5, 9).Meets(NewInterval(1, 5)) {
		t.Error("meets is not symmetric")
	}
}

func TestPointAndFrom(t *testing.T) {
	p := Point(7)
	if p != NewInterval(7, 8) {
		t.Errorf("Point(7) = %v", p)
	}
	f := From(3)
	if f.Start != 3 || f.End != Infinity {
		t.Errorf("From(3) = %v", f)
	}
	if f.Duration() != Duration(math.MaxInt64) {
		t.Errorf("From(3).Duration() = %v", f.Duration())
	}
}

func TestClipEnd(t *testing.T) {
	i := NewInterval(1, Infinity)
	if got := i.ClipEnd(10); got != NewInterval(1, 10) {
		t.Errorf("ClipEnd = %v", got)
	}
	if got := NewInterval(1, 5).ClipEnd(10); got != NewInterval(1, 5) {
		t.Errorf("ClipEnd should not extend: %v", got)
	}
}

// Property: intersection is commutative and contained in both operands.
func TestIntersectProperties(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		a := NewInterval(Time(min16(a1, a2)), Time(max16(a1, a2)))
		b := NewInterval(Time(min16(b1, b2)), Time(max16(b1, b2)))
		x := a.Intersect(b)
		y := b.Intersect(a)
		if x.Empty() != y.Empty() {
			return false
		}
		if !x.Empty() && x != y {
			return false
		}
		if !x.Empty() && (x.Start < a.Start || x.End > a.End || x.Start < b.Start || x.End > b.End) {
			return false
		}
		// Overlaps must agree with non-empty intersection.
		return a.Overlaps(b) == !x.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func min16(a, b int16) int16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b int16) int16 {
	if a > b {
		return a
	}
	return b
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Duration
		ok   bool
	}{
		{"12 hours", 12 * Hour, true},
		{"5 minutes", 5 * Minute, true},
		{"90s", 90 * Second, true},
		{"300", 300, true},
		{"1 day", Day, true},
		{"42 ticks", 42, true},
		{"7ms", 7, true},
		{"-3 seconds", -3 * Second, true},
		{"", 0, false},
		{"abc", 0, false},
		{"5 parsecs", 0, false},
		{"  10   mins ", 10 * Minute, true},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseDuration(%q) error: %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseDuration(%q) expected error, got %v", c.in, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMustParseDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseDuration should panic on bad input")
		}
	}()
	MustParseDuration("not a duration")
}
