package temporal

import (
	"fmt"
	"strconv"
	"strings"
)

// unitTicks maps every accepted duration-unit spelling to its tick length.
// The CEDR language accepts the spellings the paper uses ("12 hours",
// "5 minutes") plus conventional short forms.
var unitTicks = map[string]Duration{
	"tick": 1, "ticks": 1,
	"ms": Millisecond, "millisecond": Millisecond, "milliseconds": Millisecond,
	"s": Second, "sec": Second, "secs": Second, "second": Second, "seconds": Second,
	"m": Minute, "min": Minute, "mins": Minute, "minute": Minute, "minutes": Minute,
	"h": Hour, "hr": Hour, "hrs": Hour, "hour": Hour, "hours": Hour,
	"d": Day, "day": Day, "days": Day,
}

// ParseDuration converts a CEDR duration literal such as "12 hours",
// "5 minutes", "90s" or a bare tick count "300" into a Duration.
func ParseDuration(s string) (Duration, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("temporal: empty duration")
	}
	// Split the leading number from the unit suffix.
	i := 0
	for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '-' || s[i] == '+') {
		i++
	}
	numPart := strings.TrimSpace(s[:i])
	unitPart := strings.ToLower(strings.TrimSpace(s[i:]))
	if numPart == "" {
		return 0, fmt.Errorf("temporal: duration %q has no numeric part", s)
	}
	n, err := strconv.ParseInt(numPart, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("temporal: duration %q: %v", s, err)
	}
	if unitPart == "" {
		return Duration(n), nil
	}
	ticks, ok := unitTicks[unitPart]
	if !ok {
		return 0, fmt.Errorf("temporal: unknown duration unit %q in %q", unitPart, s)
	}
	return Duration(n) * ticks, nil
}

// MustParseDuration is ParseDuration that panics on error; intended for
// constants in tests and examples.
func MustParseDuration(s string) Duration {
	d, err := ParseDuration(s)
	if err != nil {
		panic(err)
	}
	return d
}
