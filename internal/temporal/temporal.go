// Package temporal provides the logical time domain used throughout CEDR-Go.
//
// The paper separates three notions of time — valid time, occurrence time and
// CEDR (system) time — but all three are drawn from logical clocks. We model
// every clock as an int64 tick counter so that experiments are deterministic
// and independent of the wall clock. One tick is one millisecond of
// application time; duration literals in the CEDR language ("12 hours",
// "5 minutes") are converted to ticks with that base.
package temporal

import (
	"fmt"
	"math"
)

// Time is an instant on one of CEDR's logical clocks, measured in ticks.
// The zero value is the epoch.
type Time int64

// Duration is a span of logical time in ticks.
type Duration int64

// Infinity is the maximum representable instant. The paper writes it as ∞ and
// uses it for "valid forever" / "not yet retracted" interval endpoints.
const Infinity Time = math.MaxInt64

// MinTime is the minimum representable instant.
const MinTime Time = math.MinInt64

// Tick durations for the supported units. The base tick is one millisecond.
const (
	Millisecond Duration = 1
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
	Day                  = 24 * Hour
)

// IsInfinite reports whether t is the Infinity sentinel.
func (t Time) IsInfinite() bool { return t == Infinity }

// Add returns t shifted by d, saturating at Infinity and MinTime rather than
// wrapping. Adding anything to Infinity yields Infinity.
func (t Time) Add(d Duration) Time {
	if t == Infinity {
		return Infinity
	}
	if d >= 0 {
		if t > Infinity-Time(d) {
			return Infinity
		}
	} else {
		if t < MinTime-Time(d) {
			return MinTime
		}
	}
	return t + Time(d)
}

// Sub returns the duration from u to t (t minus u). If either operand is
// infinite the result saturates.
func (t Time) Sub(u Time) Duration {
	if t == Infinity || u == Infinity {
		if t == u {
			return 0
		}
		if t == Infinity {
			return Duration(math.MaxInt64)
		}
		return Duration(math.MinInt64)
	}
	return Duration(t - u)
}

// String renders the instant, using the paper's ∞ notation for Infinity.
func (t Time) String() string {
	if t == Infinity {
		return "∞"
	}
	return fmt.Sprintf("%d", int64(t))
}

// String renders the duration in ticks.
func (d Duration) String() string { return fmt.Sprintf("%dt", int64(d)) }

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Interval is a half-open span of logical time [Start, End). All intervals in
// the CEDR model — validity intervals, occurrence intervals and CEDR-time
// intervals — use this shape, matching the paper's [Vs, Ve), [Os, Oe)
// conventions.
type Interval struct {
	Start Time
	End   Time
}

// NewInterval constructs [start, end).
func NewInterval(start, end Time) Interval { return Interval{Start: start, End: end} }

// Point returns the degenerate-looking interval [t, t+1) used when a fact
// holds for exactly one tick.
func Point(t Time) Interval { return Interval{Start: t, End: t.Add(1)} }

// From returns [t, ∞).
func From(t Time) Interval { return Interval{Start: t, End: Infinity} }

// Empty reports whether the interval contains no instants (End <= Start).
// The paper uses empty occurrence intervals (Oe set to Os) to remove an
// event from the system entirely.
func (i Interval) Empty() bool { return i.End <= i.Start }

// Contains reports whether t lies inside [Start, End).
func (i Interval) Contains(t Time) bool { return i.Start <= t && t < i.End }

// Overlaps reports whether i and o share at least one instant.
func (i Interval) Overlaps(o Interval) bool {
	return i.Start < o.End && o.Start < i.End && !i.Empty() && !o.Empty()
}

// Intersect returns the overlap of i and o. The result may be empty.
func (i Interval) Intersect(o Interval) Interval {
	return Interval{Start: Max(i.Start, o.Start), End: Min(i.End, o.End)}
}

// Meets reports whether i ends exactly where o starts (Definition 10 of the
// paper: two intervals [T1,T2), [T1',T2') meet iff T2 = T1').
func (i Interval) Meets(o Interval) bool { return i.End == o.Start }

// Duration returns the length of the interval, saturating for infinite
// endpoints. Empty intervals have duration zero.
func (i Interval) Duration() Duration {
	if i.Empty() {
		return 0
	}
	return i.End.Sub(i.Start)
}

// ClipEnd returns a copy of i whose end is at most end.
func (i Interval) ClipEnd(end Time) Interval {
	if i.End > end {
		i.End = end
	}
	return i
}

// String renders the interval in the paper's [start, end) notation.
func (i Interval) String() string {
	return fmt.Sprintf("[%s, %s)", i.Start, i.End)
}
