// Package leakcheck is a hand-rolled goroutine-leak detector for tests:
// it samples runtime.NumGoroutine before the test body and fails — with a
// full stack dump — if the count has not returned to the baseline shortly
// after. The engine, sharded-runtime, durability and quarantine tests wrap
// themselves in it so a forgotten worker or a deadlocked merger cannot
// land silently.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check captures the current goroutine count and returns a function to
// defer: it waits up to two seconds for the count to drop back to the
// baseline and fails the test with a stack dump if it does not.
//
//	defer leakcheck.Check(t)()
func Check(t testing.TB) func() {
	before := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Errorf("goroutine leak: %d before, %d after; stacks:\n%s", before, n, buf)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
