// Format compatibility: registration records written before the
// standing-query fabric (no Share flag, no Bindings section) must keep
// decoding, and the extended records must round-trip.
package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/consistency"
	"repro/internal/event"
)

// TestDecodeOldFormatRegister hand-assembles a KindRegister record exactly
// as the pre-fabric encoder framed it — flags byte without bits 8/16, the
// payload ending right after Shards — and decodes it.
func TestDecodeOldFormatRegister(t *testing.T) {
	const src = "EVENT E WHEN ANY(INSTALL x)"
	payload := appendU64(nil, 1)
	payload = append(payload, byte(KindRegister))
	payload = appendStr(payload, src)
	payload = append(payload, byte(1)) // HasSpec — the only old flag set
	payload = appendSpec(payload, consistency.Strong())
	payload = appendU32(payload, 4) // Shards

	file := append([]byte(nil), Magic...)
	file = binary.LittleEndian.AppendUint32(file, uint32(len(payload)))
	file = binary.LittleEndian.AppendUint32(file, crc32.Checksum(payload, castagnoli))
	file = append(file, payload...)

	recs, good, err := ReadAll(bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	if good != int64(len(file)) || len(recs) != 1 {
		t.Fatalf("decoded %d records over %d bytes, want 1 over %d", len(recs), good, len(file))
	}
	rec := recs[0]
	if rec.Kind != KindRegister || rec.Src != src || rec.Opts.Shards != 4 || !rec.Opts.HasSpec {
		t.Fatalf("old-format record decoded wrong: %+v", rec)
	}
	if rec.Opts.Share || rec.Opts.Bindings != nil {
		t.Fatalf("old-format record grew fabric fields: %+v", rec.Opts)
	}
}

// TestRegisterBindingsRoundTrip: the extended record — Share flag plus a
// sorted bindings section — survives encode/decode byte-exactly, and so
// does KindUnregister.
func TestRegisterBindingsRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Kind: KindRegister, Src: "EVENT E WHEN ANY(INSTALL x) WHERE [m Equal $id]",
			Opts: RegOpts{
				HasSpec: true, Spec: consistency.Middle(), Shards: 2, Share: true,
				Bindings: map[string]event.Value{"id": "m007", "limit": int64(3)},
			}},
		{Seq: 2, Kind: KindUnregister, Query: 17},
	}
	buf := append([]byte(nil), Magic...)
	var err error
	for _, rec := range recs {
		if buf, err = AppendRecord(buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	got, good, err := ReadAll(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if good != int64(len(buf)) || len(got) != len(recs) {
		t.Fatalf("decoded %d records over %d bytes", len(got), good)
	}
	if !reflect.DeepEqual(got[0].Opts, recs[0].Opts) {
		t.Errorf("register opts round trip:\n got %+v\nwant %+v", got[0].Opts, recs[0].Opts)
	}
	if got[1].Kind != KindUnregister || got[1].Query != 17 {
		t.Errorf("unregister round trip: %+v", got[1])
	}
}
