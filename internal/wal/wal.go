// Package wal implements the crash-safe durability substrate: an
// append-only, length-prefixed, CRC32C-checksummed record log of everything
// the engine consumes — ingested events, punctuation, query registrations,
// and consistency-spec changes. CEDR's runtime state is a deterministic
// function of that input sequence (the consistency monitor and matcher tree
// are pinned byte-exact by the differential suites), so the log is also the
// engine's recovery story: replaying a recovered log through a fresh engine
// reproduces the original output stream — inserts, retractions, punctuation
// and order tags — byte for byte.
//
// On-disk layout:
//
//	file   := magic record*
//	magic  := "CEDRWAL\x01"                      (8 bytes)
//	record := len(u32 LE) crc(u32 LE) payload    (len = len(payload))
//	payload:= seq(u64 LE) kind(u8) body
//
// crc is CRC-32C (Castagnoli) over the payload. Sequence numbers are
// strictly increasing. Recovery (Open / New) scans forward and truncates
// the file at the first record that is torn (short length prefix or short
// body at EOF), checksum-corrupt, or out of sequence — everything before
// that point is intact by checksum, everything after it is unrecoverable
// because records are not self-synchronizing.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"repro/internal/consistency"
	"repro/internal/event"
	"repro/internal/temporal"
)

// Kind classifies log records.
type Kind uint8

const (
	// KindEvent is an ingested data event (insert or retraction).
	KindEvent Kind = iota + 1
	// KindCTI is ingested punctuation (a provider sync/guarantee point).
	KindCTI
	// KindRegister is a standing-query registration: source text plus the
	// serializable plan options.
	KindRegister
	// KindSpec is a runtime consistency-level switch on one query.
	KindSpec
	// KindFinish is the engine-level flush that completes every query's
	// output history.
	KindFinish
	// KindUnregister removes one standing query (by its registration index);
	// the last reference on a shared chain tears the chain down.
	KindUnregister
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindEvent:
		return "event"
	case KindCTI:
		return "cti"
	case KindRegister:
		return "register"
	case KindSpec:
		return "spec"
	case KindFinish:
		return "finish"
	case KindUnregister:
		return "unregister"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// RegOpts are the serializable plan options of a durable registration —
// exactly the knobs plan.Compile accepts (see plan.Durable). Share and
// Bindings are encoded behind flag bits a pre-fabric decoder never set, so
// old-format registration records decode unchanged (Share false, Bindings
// nil).
type RegOpts struct {
	HasSpec          bool
	Spec             consistency.Spec
	Shards           int
	NoSpecialization bool
	NoPushdown       bool
	Share            bool
	Bindings         map[string]event.Value
}

// Record is one log entry. Which fields are meaningful depends on Kind:
// Ev for KindEvent/KindCTI; Src and Opts for KindRegister; Query and Spec
// for KindSpec; Query for KindUnregister; none for KindFinish.
type Record struct {
	Seq  uint64
	Kind Kind

	Ev    event.Event
	Src   string
	Opts  RegOpts
	Query int
	Spec  consistency.Spec
}

// Magic is the 8-byte file header.
const Magic = "CEDRWAL\x01"

// maxBody caps a record payload during recovery, so a corrupt length
// prefix cannot force a giant allocation.
const maxBody = 1 << 26

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ---------------------------------------------------------------------------
// Encoding

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}
func appendTime(b []byte, t temporal.Time) []byte { return appendI64(b, int64(t)) }

// Payload value type tags. The dynamic type is preserved exactly (int vs
// int64 matters for byte-identical replay of anything that switches on it).
const (
	tagInt64 byte = iota + 1
	tagInt
	tagFloat64
	tagString
	tagBool
)

func appendValue(b []byte, v event.Value) ([]byte, error) {
	switch x := v.(type) {
	case int64:
		return appendI64(append(b, tagInt64), x), nil
	case int:
		return appendI64(append(b, tagInt), int64(x)), nil
	case float64:
		return appendU64(append(b, tagFloat64), math.Float64bits(x)), nil
	case string:
		return appendStr(append(b, tagString), x), nil
	case bool:
		b = append(b, tagBool)
		if x {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	default:
		return b, fmt.Errorf("wal: unsupported payload value type %T", v)
	}
}

func appendEvent(b []byte, e event.Event) ([]byte, error) {
	b = appendU64(b, uint64(e.ID))
	b = append(b, byte(e.Kind))
	b = appendStr(b, e.Type)
	b = appendTime(b, e.V.Start)
	b = appendTime(b, e.V.End)
	b = appendTime(b, e.O.Start)
	b = appendTime(b, e.O.End)
	b = appendTime(b, e.C.Start)
	b = appendTime(b, e.C.End)
	b = appendTime(b, e.RT)
	b = appendU32(b, uint32(len(e.CBT)))
	for _, id := range e.CBT {
		b = appendU64(b, uint64(id))
	}
	b = appendU32(b, uint32(len(e.Payload)))
	if len(e.Payload) > 0 {
		// Sorted keys: deterministic bytes for a given event, so identical
		// runs produce identical log files.
		keys := make([]string, 0, len(e.Payload))
		for k := range e.Payload {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var err error
		for _, k := range keys {
			b = appendStr(b, k)
			if b, err = appendValue(b, e.Payload[k]); err != nil {
				return b, err
			}
		}
	}
	return b, nil
}

func appendSpec(b []byte, s consistency.Spec) []byte {
	b = appendI64(b, int64(s.B))
	return appendI64(b, int64(s.M))
}

// AppendRecord encodes one framed record (length prefix, checksum, payload)
// onto dst. The record's Seq must already be assigned.
func AppendRecord(dst []byte, r Record) ([]byte, error) {
	// Payload first, frame after.
	head := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // len + crc placeholder
	body := len(dst)
	dst = appendU64(dst, r.Seq)
	dst = append(dst, byte(r.Kind))
	var err error
	switch r.Kind {
	case KindEvent, KindCTI:
		if dst, err = appendEvent(dst, r.Ev); err != nil {
			return dst[:head], err
		}
	case KindRegister:
		dst = appendStr(dst, r.Src)
		var flags byte
		if r.Opts.HasSpec {
			flags |= 1
		}
		if r.Opts.NoSpecialization {
			flags |= 2
		}
		if r.Opts.NoPushdown {
			flags |= 4
		}
		if r.Opts.Share {
			flags |= 8
		}
		if len(r.Opts.Bindings) > 0 {
			flags |= 16
		}
		dst = append(dst, flags)
		dst = appendSpec(dst, r.Opts.Spec)
		dst = appendU32(dst, uint32(r.Opts.Shards))
		if len(r.Opts.Bindings) > 0 {
			// Sorted names: deterministic bytes for a given registration.
			names := make([]string, 0, len(r.Opts.Bindings))
			for name := range r.Opts.Bindings {
				names = append(names, name)
			}
			sort.Strings(names)
			dst = appendU32(dst, uint32(len(names)))
			for _, name := range names {
				dst = appendStr(dst, name)
				if dst, err = appendValue(dst, r.Opts.Bindings[name]); err != nil {
					return dst[:head], err
				}
			}
		}
	case KindSpec:
		dst = appendU32(dst, uint32(r.Query))
		dst = appendSpec(dst, r.Spec)
	case KindUnregister:
		dst = appendU32(dst, uint32(r.Query))
	case KindFinish:
	default:
		return dst[:head], fmt.Errorf("wal: cannot encode record kind %d", r.Kind)
	}
	payload := dst[body:]
	binary.LittleEndian.PutUint32(dst[head:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[head+4:], crc32.Checksum(payload, castagnoli))
	return dst, nil
}

// ---------------------------------------------------------------------------
// Decoding

type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *byteReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *byteReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *byteReader) i64() int64 { return int64(r.u64()) }

func (r *byteReader) u8() byte {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *byteReader) str() string {
	n := int(r.u32())
	if r.err == nil && n > maxBody {
		r.err = fmt.Errorf("wal: string length %d exceeds record bounds", n)
		return ""
	}
	return string(r.take(n))
}

func (r *byteReader) time() temporal.Time { return temporal.Time(r.i64()) }

func (r *byteReader) value() event.Value {
	switch tag := r.u8(); tag {
	case tagInt64:
		return r.i64()
	case tagInt:
		return int(r.i64())
	case tagFloat64:
		return math.Float64frombits(r.u64())
	case tagString:
		return r.str()
	case tagBool:
		return r.u8() != 0
	default:
		if r.err == nil {
			r.err = fmt.Errorf("wal: unknown payload value tag %d", tag)
		}
		return nil
	}
}

func (r *byteReader) spec() consistency.Spec {
	return consistency.Spec{B: temporal.Duration(r.i64()), M: temporal.Duration(r.i64())}
}

func (r *byteReader) event() event.Event {
	var e event.Event
	e.ID = event.ID(r.u64())
	e.Kind = event.Kind(r.u8())
	e.Type = r.str()
	e.V.Start, e.V.End = r.time(), r.time()
	e.O.Start, e.O.End = r.time(), r.time()
	e.C.Start, e.C.End = r.time(), r.time()
	e.RT = r.time()
	nCBT := int(r.u32())
	if r.err == nil && nCBT > len(r.b)-r.off {
		r.err = fmt.Errorf("wal: lineage count %d exceeds record bounds", nCBT)
		return e
	}
	if nCBT > 0 {
		e.CBT = make([]event.ID, nCBT)
		for i := range e.CBT {
			e.CBT[i] = event.ID(r.u64())
		}
	}
	nPay := int(r.u32())
	if r.err == nil && nPay > len(r.b)-r.off {
		r.err = fmt.Errorf("wal: payload count %d exceeds record bounds", nPay)
		return e
	}
	if nPay > 0 {
		e.Payload = make(event.Payload, nPay)
		for i := 0; i < nPay; i++ {
			k := r.str()
			e.Payload[k] = r.value()
		}
	}
	return e
}

// AppendEvent encodes one event in the WAL's event body encoding onto
// dst. The network protocol frames events with exactly this encoding, so
// a served event and its logged record share one codec (and one set of
// round-trip proofs).
func AppendEvent(dst []byte, e event.Event) ([]byte, error) {
	return appendEvent(dst, e)
}

// DecodeEvent decodes an event produced by AppendEvent from the front of
// b, returning the number of bytes consumed.
func DecodeEvent(b []byte) (event.Event, int, error) {
	r := byteReader{b: b}
	e := r.event()
	return e, r.off, r.err
}

// AppendValue encodes one payload value in the WAL's tagged value
// encoding (exported for the network protocol's template bindings).
func AppendValue(dst []byte, v event.Value) ([]byte, error) {
	return appendValue(dst, v)
}

// DecodeValue decodes a value produced by AppendValue from the front of
// b, returning the number of bytes consumed.
func DecodeValue(b []byte) (event.Value, int, error) {
	r := byteReader{b: b}
	v := r.value()
	return v, r.off, r.err
}

// DecodePayload decodes one record payload (seq + kind + body, the
// checksummed region of a frame).
func DecodePayload(payload []byte) (Record, error) {
	r := byteReader{b: payload}
	var rec Record
	rec.Seq = r.u64()
	rec.Kind = Kind(r.u8())
	switch rec.Kind {
	case KindEvent, KindCTI:
		rec.Ev = r.event()
	case KindRegister:
		rec.Src = r.str()
		flags := r.u8()
		rec.Opts.HasSpec = flags&1 != 0
		rec.Opts.NoSpecialization = flags&2 != 0
		rec.Opts.NoPushdown = flags&4 != 0
		rec.Opts.Share = flags&8 != 0
		rec.Opts.Spec = r.spec()
		// Signed round-trip: plan.AutoShards is a negative sentinel and
		// must survive the u32 framing.
		rec.Opts.Shards = int(int32(r.u32()))
		if flags&16 != 0 {
			// Template bindings trail the fixed fields; records written
			// before the fabric end at Shards and never set the flag, so
			// they decode through the branch above unchanged.
			n := int(r.u32())
			if r.err == nil && n > len(r.b)-r.off {
				r.err = fmt.Errorf("wal: binding count %d exceeds record bounds", n)
				break
			}
			if n > 0 {
				rec.Opts.Bindings = make(map[string]event.Value, n)
				for i := 0; i < n; i++ {
					name := r.str()
					rec.Opts.Bindings[name] = r.value()
				}
			}
		}
	case KindSpec:
		rec.Query = int(r.u32())
		rec.Spec = r.spec()
	case KindUnregister:
		rec.Query = int(r.u32())
	case KindFinish:
	default:
		return rec, fmt.Errorf("wal: unknown record kind %d", rec.Kind)
	}
	if r.err != nil {
		return rec, r.err
	}
	if r.off != len(payload) {
		return rec, fmt.Errorf("wal: %d trailing bytes after %s record", len(payload)-r.off, rec.Kind)
	}
	return rec, nil
}

// Scan reads framed records from r, calling fn with each record and its
// [start, end) byte range (magic header included in offsets). Scanning
// stops silently at the first torn, checksum-corrupt, or out-of-sequence
// record — recovery-time truncation treats everything from there as a lost
// tail — and the returned offset is the end of the last good record. A
// missing or wrong magic header is a hard error (the file is not a WAL),
// as is an I/O failure other than EOF.
func Scan(r io.Reader, fn func(rec Record, start, end int64) error) (int64, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if err == io.EOF {
			return 0, nil // empty file: a fresh log
		}
		if err == io.ErrUnexpectedEOF {
			return 0, nil // torn magic write: treat as empty
		}
		return 0, err
	}
	if string(magic[:]) != Magic {
		return 0, fmt.Errorf("wal: bad magic %q (not a CEDR WAL)", magic[:])
	}
	good := int64(len(Magic))
	var head [8]byte
	var lastSeq uint64
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return good, nil // clean end, or torn length prefix
			}
			return good, err
		}
		n := binary.LittleEndian.Uint32(head[:4])
		crc := binary.LittleEndian.Uint32(head[4:])
		if n == 0 || n > maxBody {
			return good, nil // corrupt length prefix
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return good, nil // torn body
			}
			return good, err
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return good, nil // checksum mismatch
		}
		rec, err := DecodePayload(payload)
		if err != nil {
			return good, nil // structurally corrupt despite checksum length
		}
		if rec.Seq <= lastSeq {
			return good, nil // out of sequence: a stale or spliced tail
		}
		lastSeq = rec.Seq
		end := good + 8 + int64(n)
		if fn != nil {
			if err := fn(rec, good, end); err != nil {
				return good, err
			}
		}
		good = end
	}
}

// ReadAll scans every recoverable record from r. It returns the records,
// the byte offset of the end of the last good record (where a recovering
// writer truncates), and any hard error from Scan.
func ReadAll(r io.Reader) ([]Record, int64, error) {
	var recs []Record
	good, err := Scan(r, func(rec Record, _, _ int64) error {
		recs = append(recs, rec)
		return nil
	})
	return recs, good, err
}
