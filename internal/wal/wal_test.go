package wal_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/consistency"
	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/temporal"
	"repro/internal/wal"
)

// sampleRecords covers every record kind and every payload value type the
// encoding supports, including lineage and a retraction.
func sampleRecords() []wal.Record {
	ev := event.NewInsert(7, "INSTALL", 10, temporal.Infinity, event.Payload{
		"Machine_Id": "m001",
		"count":      int64(42),
		"small":      3,
		"load":       0.75,
		"critical":   true,
	})
	ret := event.NewRetract(7, "INSTALL", 10, 20, event.Payload{"Machine_Id": "m001"})
	composite := ev
	composite.CBT = []event.ID{3, 5, 9}
	composite.RT = 4
	return []wal.Record{
		{Kind: wal.KindRegister, Src: "EVENT E WHEN ANY(INSTALL x)", Opts: wal.RegOpts{
			HasSpec: true, Spec: consistency.Strong(), Shards: 4, NoSpecialization: true, NoPushdown: true,
		}},
		{Kind: wal.KindEvent, Ev: ev},
		{Kind: wal.KindEvent, Ev: ret},
		{Kind: wal.KindEvent, Ev: composite},
		{Kind: wal.KindCTI, Ev: event.NewCTI(25)},
		{Kind: wal.KindSpec, Query: 0, Spec: consistency.Weak(3 * temporal.Minute)},
		{Kind: wal.KindFinish},
	}
}

// writeLog appends recs to a fresh WAL at path and closes it.
func writeLog(t *testing.T, path string, recs []wal.Record) {
	t.Helper()
	l, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("append %s: %v", r.Kind, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// withSeqs returns recs with the auto-assigned sequence numbers 1..n filled
// in, for comparing against recovered records.
func withSeqs(recs []wal.Record) []wal.Record {
	out := append([]wal.Record(nil), recs...)
	for i := range out {
		out[i].Seq = uint64(i + 1)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	recs := sampleRecords()
	writeLog(t, path, recs)

	l, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := l.Recovered()
	want := withSeqs(recs)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if l.LastSeq() != uint64(len(recs)) {
		t.Fatalf("LastSeq = %d, want %d", l.LastSeq(), len(recs))
	}
}

// recordRanges opens the log image and returns each record's [start, end)
// byte range, so corruption tests can aim at exact frame offsets.
func recordRanges(t *testing.T, img []byte) [][2]int64 {
	t.Helper()
	var ranges [][2]int64
	if _, err := wal.Scan(bytes.NewReader(img), func(_ wal.Record, start, end int64) error {
		ranges = append(ranges, [2]int64{start, end})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ranges
}

// TestCorruptRecovery is the corrupt-WAL table: every mutation must recover
// exactly the longest intact prefix, and the recovered log must accept new
// appends (recovery truncates the torn tail rather than failing).
func TestCorruptRecovery(t *testing.T) {
	recs := sampleRecords()
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref")
	writeLog(t, ref, recs)
	img, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	ranges := recordRanges(t, img)
	if len(ranges) != len(recs) {
		t.Fatalf("scan found %d records, want %d", len(ranges), len(recs))
	}
	last := ranges[len(ranges)-1]

	tests := []struct {
		name string
		img  []byte
		keep int // records expected to survive
	}{
		{"intact", img, len(recs)},
		{"empty file", nil, 0},
		{"torn magic", faultinject.TruncateAt(img, 3), 0},
		{"magic only", faultinject.TruncateAt(img, int64(len(wal.Magic))), 0},
		{"torn tail mid body", faultinject.TornTail(img, 3), len(recs) - 1},
		{"torn tail one byte", faultinject.TornTail(img, 1), len(recs) - 1},
		{"truncated length prefix", faultinject.TruncateAt(img, last[0]+2), len(recs) - 1},
		{"flipped crc byte", faultinject.FlipByte(img, last[0]+4), len(recs) - 1},
		{"flipped payload byte", faultinject.FlipByte(img, last[0]+8), len(recs) - 1},
		{"flipped mid-log byte", faultinject.FlipByte(img, ranges[2][0]+8), 2},
		{"truncated mid log", faultinject.TruncateAt(img, ranges[3][0]+5), 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "c_"+tc.name)
			if err := os.WriteFile(path, tc.img, 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := wal.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			got := l.Recovered()
			want := withSeqs(recs)[:tc.keep]
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered %d records, want %d:\n got %+v\nwant %+v", len(got), len(want), got, want)
			}
			// Append-after-recovery: the truncated log is a working log.
			seq, err := l.Append(wal.Record{Kind: wal.KindFinish})
			if err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if want := uint64(tc.keep + 1); seq != want {
				t.Fatalf("post-recovery seq = %d, want %d", seq, want)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			// The re-recovered log sees the prefix plus the new record.
			l2, err := wal.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if n := len(l2.Recovered()); n != tc.keep+1 {
				t.Fatalf("after truncate+append: %d records, want %d", n, tc.keep+1)
			}
		})
	}
}

func TestBadMagicIsHardError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-wal")
	if err := os.WriteFile(path, []byte("GARBAGE!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Open(path); err == nil {
		t.Fatal("opening a non-WAL file succeeded; want bad-magic error")
	}
}

// TestOutOfSequenceTail splices a stale record (lower seq) after a good one;
// recovery must stop at the splice.
func TestOutOfSequenceTail(t *testing.T) {
	img := []byte(wal.Magic)
	var err error
	img, err = wal.AppendRecord(img, wal.Record{Seq: 5, Kind: wal.KindFinish})
	if err != nil {
		t.Fatal(err)
	}
	img, err = wal.AppendRecord(img, wal.Record{Seq: 5, Kind: wal.KindFinish})
	if err != nil {
		t.Fatal(err)
	}
	recs, good, err := wal.ReadAll(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 5 {
		t.Fatalf("recovered %+v, want one record with seq 5", recs)
	}
	if good >= int64(len(img)) {
		t.Fatalf("good offset %d should exclude the stale tail (%d bytes)", good, len(img))
	}
}

func TestAppendSeqValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(wal.Record{Seq: 10, Kind: wal.KindFinish}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(wal.Record{Seq: 10, Kind: wal.KindFinish}); err == nil {
		t.Fatal("duplicate sequence accepted")
	}
	if _, err := l.Append(wal.Record{Seq: 3, Kind: wal.KindFinish}); err == nil {
		t.Fatal("regressing sequence accepted")
	}
	if seq, err := l.Append(wal.Record{Kind: wal.KindFinish}); err != nil || seq != 11 {
		t.Fatalf("auto-assign after explicit seq: got %d, %v; want 11, nil", seq, err)
	}
}

func TestSyncBatching(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	ff := faultinject.NewFile(f)
	l, err := wal.New(ff, wal.SyncEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append(wal.Record{Kind: wal.KindFinish}); err != nil {
			t.Fatal(err)
		}
	}
	// 20 appends at every-8 batching: two automatic syncs, the rest pending.
	if got := l.Syncs(); got != 2 {
		t.Fatalf("after 20 appends: %d syncs, want 2", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.Syncs(); got != 3 {
		t.Fatalf("after close: %d syncs, want 3 (close flushes the tail)", got)
	}
	if ff.Syncs() != 3 {
		t.Fatalf("file saw %d fsyncs, log reports 3", ff.Syncs())
	}
}

// TestFsyncFailStop: after an injected fsync error the log rejects every
// further append with the original error — records that cannot be made
// durable are not accepted.
func TestFsyncFailStop(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	ff := faultinject.NewFile(f)
	ff.FailSyncAt = 2 // first sync writes the magic header; fail the next
	l, err := wal.New(ff, wal.SyncEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(wal.Record{Kind: wal.KindFinish}); err != nil {
		t.Fatal(err)
	}
	_, err = l.Append(wal.Record{Kind: wal.KindFinish})
	if !errors.Is(err, faultinject.ErrInjectedSync) {
		t.Fatalf("append after failed fsync: %v, want ErrInjectedSync", err)
	}
	if _, err2 := l.Append(wal.Record{Kind: wal.KindFinish}); !errors.Is(err2, faultinject.ErrInjectedSync) {
		t.Fatalf("log did not fail stop: %v", err2)
	}
	if l.Err() == nil {
		t.Fatal("Err() nil after fsync failure")
	}
}

// TestCrashAtEveryByte drives a crash at every byte offset of a small log's
// image and re-opens the survivor: recovery must always yield a prefix of
// the intended records, never an error, never reordered or invented data.
func TestCrashAtEveryByte(t *testing.T) {
	recs := sampleRecords()
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref")
	writeLog(t, ref, recs)
	img, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := withSeqs(recs)
	path := filepath.Join(dir, "crash")
	for cut := 0; cut <= len(img); cut++ {
		if err := os.WriteFile(path, img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := wal.Open(path)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		got := l.Recovered()
		if len(got) > len(want) {
			t.Fatalf("cut=%d: recovered %d records from a %d-record image", cut, len(got), len(want))
		}
		if !reflect.DeepEqual(got, append([]wal.Record(nil), want[:len(got)]...)) {
			t.Fatalf("cut=%d: recovered records are not a prefix", cut)
		}
		l.Close()
	}
}
