package wal

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the storage a Log writes through. *os.File satisfies it; the
// fault-injection harness wraps one to inject fsync failures and torn
// crash-point writes.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Close() error
}

// LogOption adjusts Log construction.
type LogOption func(*Log)

// SyncEvery sets the fsync batching policy: appended records are buffered
// in memory and flushed + fsynced once n records have accumulated (and on
// explicit Sync or Close). n == 1 syncs every append; n <= 0 means no
// automatic syncing (explicit Sync/Close only). The default is 32.
func SyncEvery(n int) LogOption {
	return func(l *Log) { l.every = n }
}

// Log is an open write-ahead log: the records recovered from the existing
// file plus an append head with batched fsync. All methods are safe for
// concurrent use.
type Log struct {
	mu        sync.Mutex
	f         File
	recovered []Record
	lastSeq   uint64
	buf       []byte // encoded records not yet written to the file
	pending   int    // records in buf
	every     int
	err       error // first write/sync failure; the log fails stop
	closed    bool
	syncs     int // fsync count, for tests and the append benchmark
}

// Open opens (or creates) the WAL at path, recovering its records and
// truncating any torn tail, and positions the log for appending.
func Open(path string, opts ...LogOption) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l, err := New(f, opts...)
	if err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// New builds a Log over an already-open file: it scans from the start,
// keeps every intact record, truncates the file at the first torn or
// corrupt one, and leaves the file positioned for appending. A zero-length
// file gets the magic header on the first sync.
func New(f File, opts ...LogOption) (*Log, error) {
	l := &Log{f: f, every: 32}
	for _, o := range opts {
		o(l)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	recs, good, err := ReadAll(f)
	if err != nil {
		return nil, err
	}
	l.recovered = recs
	if len(recs) > 0 {
		l.lastSeq = recs[len(recs)-1].Seq
	}
	if good == 0 {
		// Fresh (or torn-at-magic) file: start over with a clean header.
		if err := f.Truncate(0); err != nil {
			return nil, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		l.buf = append(l.buf, Magic...)
		return l, nil
	}
	if err := f.Truncate(good); err != nil {
		return nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		return nil, err
	}
	return l, nil
}

// Recovered returns the records read back at open time (not records
// appended since). The slice is owned by the log; callers must not mutate.
func (l *Log) Recovered() []Record { return l.recovered }

// LastSeq returns the highest sequence number in the log (recovered or
// appended); 0 for an empty log.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Err returns the log's sticky failure, if a write or fsync has failed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Syncs returns the number of fsyncs issued, for batching tests.
func (l *Log) Syncs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// Append encodes and buffers one record, flushing + fsyncing per the
// batching policy, and returns the record's sequence number. A zero Seq is
// auto-assigned (last + 1); a non-zero Seq must be strictly increasing.
// After any write or sync failure the log fails stop: every subsequent
// Append returns the original error.
func (l *Log) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, fmt.Errorf("wal: append to closed log")
	}
	if rec.Seq == 0 {
		rec.Seq = l.lastSeq + 1
	} else if rec.Seq <= l.lastSeq {
		return 0, fmt.Errorf("wal: sequence %d not after %d", rec.Seq, l.lastSeq)
	}
	buf, err := AppendRecord(l.buf, rec)
	if err != nil {
		return 0, err // encoding error: record rejected, log still healthy
	}
	l.buf = buf
	l.lastSeq = rec.Seq
	l.pending++
	if l.every > 0 && l.pending >= l.every {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return rec.Seq, nil
}

// Sync flushes buffered records to the file and fsyncs it. The durability
// point: records appended before a successful Sync survive a crash.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if len(l.buf) > 0 {
		if _, err := l.f.Write(l.buf); err != nil {
			l.err = fmt.Errorf("wal: write: %w", err)
			return l.err
		}
		l.buf = l.buf[:0]
	}
	if l.pending == 0 && l.syncs > 0 {
		return nil // nothing new since the last sync
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: fsync: %w", err)
		return l.err
	}
	l.syncs++
	l.pending = 0
	return nil
}

// Close syncs and closes the file. Idempotent: the second and later calls
// return the first call's result.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.err
	}
	l.closed = true
	if l.err == nil {
		l.syncLocked()
	}
	if cerr := l.f.Close(); cerr != nil && l.err == nil {
		l.err = cerr
	}
	return l.err
}
