// Package ordkey builds order-preserving byte keys: appending encoded
// fields yields byte strings whose lexicographic order equals the
// field-by-field order of the encoded values. The sharded runtime uses
// these keys as output-order tags — each shard tags its outputs locally,
// and the merge stage reconstructs the exact global emission sequence by
// comparing tags with bytes.Compare.
package ordkey

// AppendUint appends v as 8 big-endian bytes, so that byte order equals
// unsigned numeric order.
func AppendUint(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendInt appends v with the sign bit flipped, so that byte order equals
// signed numeric order (negative values sort before positive ones).
func AppendInt(dst []byte, v int64) []byte {
	return AppendUint(dst, uint64(v)^(1<<63))
}

// AppendBytes appends s escaped (0x00 becomes 0x00 0x01) and terminated
// (0x00 0x00), so that no encoding is a prefix of another and the byte
// order of encodings equals the byte order of the raw strings. This makes
// variable-length fields safe to embed in the middle of a key.
func AppendBytes(dst, s []byte) []byte {
	for _, b := range s {
		if b == 0x00 {
			dst = append(dst, 0x00, 0x01)
			continue
		}
		dst = append(dst, b)
	}
	return append(dst, 0x00, 0x00)
}

// AppendString is AppendBytes for strings.
func AppendString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			dst = append(dst, 0x00, 0x01)
			continue
		}
		dst = append(dst, s[i])
	}
	return append(dst, 0x00, 0x00)
}
