package lang

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/temporal"
)

const cidr07 = `
EVENT CIDR07_Example
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
            RESTART AS z, 5 minutes)
WHERE {x.Machine_Id = y.Machine_Id} AND
      {x.Machine_Id = z.Machine_Id}
`

func TestParseCIDR07Example(t *testing.T) {
	q, err := Parse(cidr07)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "CIDR07_Example" {
		t.Errorf("name = %q", q.Name)
	}
	unless, ok := q.When.(OpNode)
	if !ok || unless.Op != "UNLESS" {
		t.Fatalf("top = %#v", q.When)
	}
	if unless.W != 5*temporal.Minute {
		t.Errorf("UNLESS scope = %v", unless.W)
	}
	seq, ok := unless.Kids[0].(OpNode)
	if !ok || seq.Op != "SEQUENCE" || seq.W != 12*temporal.Hour {
		t.Fatalf("inner = %#v", unless.Kids[0])
	}
	if in := seq.Kids[0].(TypeNode); in.Type != "INSTALL" || in.Alias != "x" {
		t.Errorf("first contributor = %#v", in)
	}
	if sh := seq.Kids[1].(TypeNode); sh.Type != "SHUTDOWN" || sh.Alias != "y" {
		t.Errorf("second contributor = %#v", sh)
	}
	if z := unless.Kids[1].(TypeNode); z.Type != "RESTART" || z.Alias != "z" {
		t.Errorf("negated = %#v", z)
	}
	if len(q.Where) != 2 {
		t.Errorf("predicates = %d", len(q.Where))
	}
}

// End to end: the compiled §3.1 query detects exactly the machine that
// shut down after an install and failed to restart within 5 minutes.
func TestCompileAndRunCIDR07(t *testing.T) {
	an, err := Compile(cidr07)
	if err != nil {
		t.Fatal(err)
	}
	h, m := temporal.Hour, temporal.Minute
	mk := func(id event.ID, typ string, at temporal.Duration, machine string) event.Event {
		return event.NewInsert(id, typ, temporal.Time(at), temporal.Infinity,
			event.Payload{"Machine_Id": machine})
	}
	store := []event.Event{
		mk(1, "INSTALL", 0, "m1"),
		mk(2, "SHUTDOWN", 1*h, "m1"),
		mk(3, "RESTART", 1*h+2*m, "m1"), // in time: no alert
		mk(4, "INSTALL", 2*h, "m2"),
		mk(5, "SHUTDOWN", 3*h, "m2"),
		mk(6, "RESTART", 3*h+30*m, "m2"), // too late: alert
		mk(7, "INSTALL", 5*h, "m3"),
		mk(8, "SHUTDOWN", 5*h+1*m, "m3"),
		mk(9, "RESTART", 5*h+2*m, "m1"), // wrong machine: m3 alerts too
	}
	ms := algebra.ApplySC(algebra.Denote(an.Expr, store), an.Mode)
	if len(ms) != 2 {
		t.Fatalf("alerts = %d, want 2: %+v", len(ms), ms)
	}
	machines := map[any]bool{}
	for _, m := range ms {
		machines[m.Payload["x.Machine_Id"]] = true
	}
	if !machines["m2"] || !machines["m3"] {
		t.Errorf("alert machines = %v, want m2 and m3", machines)
	}
}

func TestCorrelationKeyShorthand(t *testing.T) {
	an, err := Compile(`
EVENT E WHEN UNLESS(SEQUENCE(A a, B b, 100), C c, 50)
WHERE CorrelationKey(mid, EQUAL)`)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id event.ID, typ string, vs temporal.Time, mid string) event.Event {
		return event.NewInsert(id, typ, vs, temporal.Infinity, event.Payload{"mid": mid})
	}
	// A/B on m1 with a C on m2 inside the window: the C must not block.
	store := []event.Event{
		mk(1, "A", 0, "m1"), mk(2, "B", 10, "m1"), mk(3, "C", 20, "m2"),
	}
	ms := algebra.ApplySC(algebra.Denote(an.Expr, store), an.Mode)
	if len(ms) != 1 {
		t.Fatalf("cross-machine C must not block: %+v", ms)
	}
	// Same machine: blocked.
	store[2].Payload["mid"] = "m1"
	ms = algebra.ApplySC(algebra.Denote(an.Expr, store), an.Mode)
	if len(ms) != 0 {
		t.Fatalf("same-machine C must block: %+v", ms)
	}
}

func TestLiteralEquivalenceTest(t *testing.T) {
	an, err := Compile(`EVENT E WHEN SEQUENCE(A a, B b, 100) WHERE [mid Equal 'BARGA_XP03']`)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id event.ID, typ string, vs temporal.Time, mid string) event.Event {
		return event.NewInsert(id, typ, vs, temporal.Infinity, event.Payload{"mid": mid})
	}
	store := []event.Event{mk(1, "A", 0, "BARGA_XP03"), mk(2, "B", 5, "BARGA_XP03")}
	if ms := algebra.Denote(an.Expr, store); len(ms) != 1 {
		t.Fatalf("literal equivalence should match: %+v", ms)
	}
	store[1].Payload["mid"] = "OTHER"
	if ms := algebra.Denote(an.Expr, store); len(ms) != 0 {
		t.Fatalf("literal equivalence should reject: %+v", ms)
	}
}

func TestParseSCModeAndConsistency(t *testing.T) {
	q, err := Parse(`EVENT E WHEN SEQUENCE(A a, B b, 10)
SC(first, consume) CONSISTENCY weak(500)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.SC.Selection != "first" || q.SC.Consumption != "consume" {
		t.Errorf("SC = %+v", q.SC)
	}
	if q.Consistency == nil || q.Consistency.Level != "weak" || q.Consistency.M != 500 {
		t.Errorf("consistency = %+v", q.Consistency)
	}
	q, err = Parse(`EVENT E WHEN ANY(A) CONSISTENCY level(10, 100)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Consistency.B != 10 || q.Consistency.M != 100 {
		t.Errorf("level = %+v", q.Consistency)
	}
}

func TestParseSlicing(t *testing.T) {
	q, err := Parse(`EVENT E WHEN ANY(A) @ [10, 50) # [20, 40)`)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if an.Slice == nil || *an.Slice != temporal.NewInterval(20, 40) {
		t.Errorf("slice = %v, want [20, 40) (intersection)", an.Slice)
	}
}

func TestParseOutputClause(t *testing.T) {
	an, err := Compile(`EVENT E WHEN SEQUENCE(A a, B b, 10) OUTPUT a.x AS ax, b.y`)
	if err != nil {
		t.Fatal(err)
	}
	if an.OutputMap == nil {
		t.Fatal("no output map")
	}
	got := an.OutputMap(event.Payload{"a.x": int64(1), "b.y": int64(2)})
	if got["ax"] != int64(1) || got["y"] != int64(2) {
		t.Errorf("output = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"WHEN ANY(A)",
		"EVENT E",
		"EVENT E WHEN",
		"EVENT E WHEN SEQUENCE(A, B)",         // missing scope
		"EVENT E WHEN UNLESS(A, B, C, 10)",    // arity
		"EVENT E WHEN NOT(A, B)",              // NOT needs SEQUENCE
		"EVENT E WHEN ANY(A) WHERE {x.a = }",  // bad term
		"EVENT E WHEN ANY(A) CONSISTENCY odd", // bad level
		"EVENT E WHEN ANY(A) WHERE {q.a = 1}", // unknown alias
		"EVENT E WHEN SEQUENCE(A a, B b, 10) OUTPUT z.f", // unknown output alias
		"EVENT E WHEN ANY(A) @ [10, 50",                  // bad window
		"EVENT E WHEN ANY(A) WHERE CorrelationKey(m, SIDEWAYS)",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestNegatedAliasRejectedInOutput(t *testing.T) {
	_, err := Compile(`EVENT E WHEN UNLESS(A a, B b, 10) OUTPUT b.x`)
	if err == nil {
		t.Fatal("OUTPUT of negated alias must be rejected")
	}
}

func TestPredicateOnTwoNegationScopesRejected(t *testing.T) {
	_, err := Compile(`
EVENT E WHEN UNLESS(UNLESS(A a, B b, 10), C c, 20)
WHERE {b.x = c.x}`)
	if err == nil {
		t.Fatal("correlating two negation scopes must be rejected")
	}
}

func TestCommentsAndStrings(t *testing.T) {
	q, err := Parse(`
-- monitoring query
EVENT E WHEN ANY(A) -- trailing comment
WHERE [mid Equal 'BARGA_XP03']`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].CorrLit != "BARGA_XP03" {
		t.Errorf("literal = %v", q.Where[0].CorrLit)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("EVENT E WHEN ~"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := lex("EVENT E WHERE 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestParseUnlessPrime(t *testing.T) {
	// The 4-argument UNLESS' form from the §3.3.2 table: the negation
	// scope anchors at the n-th contributor of E1.
	an, err := Compile(`
EVENT E WHEN UNLESS(SEQUENCE(A a, B b, 100), C c, 1, 10)
WHERE {a.k = c.k}`)
	if err != nil {
		t.Fatal(err)
	}
	up, ok := an.Expr.(algebra.UnlessPrimeExpr)
	if !ok {
		t.Fatalf("expr = %T", an.Expr)
	}
	if up.N != 1 || up.W != 10 {
		t.Errorf("N=%d W=%v", up.N, up.W)
	}
	if up.Corr == nil {
		t.Error("correlation predicate not injected")
	}
	// Static arity check: index beyond the sequence length.
	if _, err := Compile(`EVENT E WHEN UNLESS(SEQUENCE(A a, B b, 100), C c, 5, 10)`); err == nil {
		t.Error("UNLESS' index beyond sequence length must be rejected")
	}
	if _, err := Compile(`EVENT E WHEN UNLESS(SEQUENCE(A a, B b, 100), C c, 0, 10)`); err == nil {
		t.Error("UNLESS' index 0 must be rejected")
	}
}

func TestPushKeyAnalysis(t *testing.T) {
	// CorrelationKey(attr, EQUAL): pushable, and every negation site gets
	// the CorrKey annotation (its injected corr predicate carries the
	// equality proof).
	an, err := Compile(`
EVENT E WHEN UNLESS(SEQUENCE(A a, B b, 100), C c, 10)
WHERE CorrelationKey(m, EQUAL)`)
	if err != nil {
		t.Fatal(err)
	}
	if an.PushKeyAttr != "m" {
		t.Errorf("PushKeyAttr = %q, want m", an.PushKeyAttr)
	}
	f, ok := an.Expr.(algebra.FilterExpr)
	if !ok {
		t.Fatalf("expr = %T, want top-level residual filter", an.Expr)
	}
	u, ok := f.Kid.(algebra.UnlessExpr)
	if !ok {
		t.Fatalf("filter kid = %T", f.Kid)
	}
	if u.CorrKey != "m" {
		t.Errorf("UNLESS CorrKey = %q, want m", u.CorrKey)
	}

	// Spanning pairwise equality: pushable on the join side, but the
	// negation site stays unannotated (its pairwise corr compares one
	// specific attribute lookup, not the value set).
	an, err = Compile(`
EVENT E WHEN UNLESS(SEQUENCE(A a, B b, 100), C c, 10)
WHERE {a.m = b.m} AND {a.m = c.m}`)
	if err != nil {
		t.Fatal(err)
	}
	if an.PushKeyAttr != "m" {
		t.Errorf("pairwise PushKeyAttr = %q, want m", an.PushKeyAttr)
	}
	f, ok = an.Expr.(algebra.FilterExpr)
	if !ok {
		t.Fatalf("pairwise expr = %T, want top-level residual filter", an.Expr)
	}
	if u = f.Kid.(algebra.UnlessExpr); u.CorrKey != "" {
		t.Errorf("pairwise UNLESS CorrKey = %q, want unannotated", u.CorrKey)
	}

	// Non-spanning equalities must not qualify.
	an, err = Compile(`EVENT E WHEN SEQUENCE(A a, B b, C c, 100) WHERE {a.m = b.m}`)
	if err != nil {
		t.Fatal(err)
	}
	if an.PushKeyAttr != "" {
		t.Errorf("non-spanning PushKeyAttr = %q, want empty", an.PushKeyAttr)
	}
}
