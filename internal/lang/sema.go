package lang

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/temporal"
)

// Analysis is the semantic-analysis result: the bound pattern algebra
// expression with every WHERE predicate injected at its correct operator
// (§3.2 "predicate injection"), the SC mode, the optional output
// transformation, and the optional slicing window.
type Analysis struct {
	Query *Query
	Expr  algebra.Expr
	Mode  algebra.SCMode
	// OutputMap is the OUTPUT-clause instance transformation over the
	// composite (namespaced) payload; nil means pass-through.
	OutputMap func(event.Payload) event.Payload
	// Slice is the intersection of the @ and # windows; nil if unsliced.
	Slice *temporal.Interval
	// PartitionAttr is the payload attribute of a CorrelationKey(attr,
	// EQUAL) predicate, when the query declares one. Under EQUAL
	// correlation every detection combines only events agreeing on the
	// attribute (including across negation sites), so the query's state and
	// output decompose by it — the property the sharded runtime's
	// partitionability analysis (internal/plan) keys on. Empty otherwise.
	PartitionAttr string
	// PushKeyAttr is the correlation-key pushdown attribute: a payload
	// attribute whose WHERE-clause predicates provably reject every
	// composite combining two definite, unequal values of it. It holds the
	// PartitionAttr when a CorrelationKey(attr, EQUAL) clause is present,
	// and otherwise an attribute whose pairwise {a.attr = b.attr}
	// equalities connect *all* positively-bound aliases (so transitivity
	// pins the whole detection to one value). The planner passes it into
	// the incremental matcher tree (algebra/inc's WithJoinKey), which then
	// enumerates join combinations per key instead of across the store;
	// predicates that do not fit this shape stay behind in the residual
	// FilterExpr. Empty when no attribute qualifies.
	PushKeyAttr string
	// DupPositiveAlias: some alias binds more than one contributor in the
	// positive pattern scope. Composite payloads then carry prime-renamed
	// collision keys ("x.m" → "x.m'") that no WHERE predicate inspects, so
	// neither the correlation-key pushdown (PushKeyAttr stays empty) nor
	// the key-partitioned sharded runtime (PartitionAttr's decomposition
	// claim, which such composites violate) may rely on the attribute.
	DupPositiveAlias bool
	// InputTypes lists the event TYPEs the pattern references (positive and
	// negative sites alike), deduplicated in appearance order. The engine's
	// cross-query routing fabric uses it as the coarse discrimination axis:
	// an event whose Type appears in no registered query's InputTypes is
	// never delivered to that query.
	InputTypes []string
	// RouteKeyAttr/RouteKeyVal, when RouteKeyAttr is non-empty, assert that
	// a data event carrying a definite payload value for RouteKeyAttr that
	// is not ValueEqual to RouteKeyVal cannot change this query's detected
	// output: it can neither contribute to a surviving detection (the
	// [attr Equal 'lit'] positive test rejects any composite holding such a
	// value) nor block or cancel one (the shorthand's correlation predicate
	// compares every blocker value against the literal directly, before any
	// composite values). Events missing the attribute — and retractions —
	// stay wild and must still be delivered. The claim is refused (empty
	// attr) for duplicate positive aliases (prime-renamed payload keys
	// escape the predicates) and for patterns containing ATMOST, whose
	// count-based suppression observes events before the top-level filter.
	RouteKeyAttr string
	RouteKeyVal  event.Value
}

// site identifies where an alias is bound: site 0 is the positive part of
// the pattern; each negation operator (UNLESS's B, NOT's E, CANCEL-WHEN's
// E2) is a numbered negative site.
type binding struct {
	site   int
	prefix string
}

// Analyze binds and checks a parsed query. Templates (queries with $name
// placeholders) must be instantiated first — see AnalyzeBound.
func Analyze(q *Query) (*Analysis, error) {
	if params := Params(q); len(params) != 0 {
		return nil, fmt.Errorf("lang: query %s has unbound template parameters %v (register with bindings)", q.Name, params)
	}
	a := &Analysis{Query: q}

	// Pass 1: enumerate negation sites and bind aliases.
	b := &binder{aliases: map[string]binding{}}
	if err := b.scan(q.When, 0); err != nil {
		return nil, err
	}

	// Pass 2: classify predicates.
	positive, corrs, err := b.classify(q.Where)
	if err != nil {
		return nil, err
	}
	for _, pred := range q.Where {
		if pred.IsCorrKey() && pred.CorrMode == "EQUAL" {
			a.PartitionAttr = pred.CorrAttr
			break
		}
	}
	a.DupPositiveAlias = b.dupPos
	a.PushKeyAttr = b.pushKeyAttr(q.Where, a.PartitionAttr)
	if a.PushKeyAttr != "" && a.PartitionAttr == a.PushKeyAttr {
		// A CorrelationKey(attr, EQUAL) clause injects an equality
		// correlation at every negation site, so each site's blocker
		// matching may be keyed on the attribute too (the CorrKey
		// annotation the incremental matcher reads). The pairwise-equality
		// pushdown does not annotate sites: its per-alias predicates
		// compare one specific attribute lookup, which is vacuously true
		// when both lookups are absent — a case the value-set keying of
		// the matcher cannot distinguish, so only the join side is keyed.
		b.corrKeyAttr = a.PartitionAttr
	}

	// Pass 3: build the algebra expression with injected predicates.
	b.siteSeq = 0
	expr, err := b.build(q.When, corrs)
	if err != nil {
		return nil, err
	}
	if len(positive) > 0 {
		preds := positive
		expr = algebra.FilterExpr{
			Kid:  expr,
			Pred: func(p event.Payload) bool { return evalAll(preds, p) },
			Desc: describePreds(q.Where),
		}
	}
	a.Expr = expr

	sel, err := algebra.ParseSelection(q.SC.Selection)
	if err != nil {
		return nil, err
	}
	cons, err := algebra.ParseConsumption(q.SC.Consumption)
	if err != nil {
		return nil, err
	}
	a.Mode = algebra.SCMode{Sel: sel, Cons: cons}

	if len(q.Output) > 0 {
		fields := q.Output
		for _, f := range fields {
			if f.Attr != "" {
				if _, ok := b.aliases[f.Alias]; !ok {
					return nil, fmt.Errorf("lang: OUTPUT references unknown alias %q", f.Alias)
				}
				if b.aliases[f.Alias].site != 0 {
					return nil, fmt.Errorf("lang: OUTPUT cannot reference negated alias %q", f.Alias)
				}
			}
		}
		a.OutputMap = func(p event.Payload) event.Payload {
			out := event.Payload{}
			for _, f := range fields {
				key := f.Alias
				if f.Attr != "" {
					key = f.Alias + "." + f.Attr
				}
				name := f.As
				if name == "" {
					if f.Attr != "" {
						name = f.Attr
					} else {
						name = f.Alias
					}
				}
				out[name] = p[key]
			}
			return out
		}
	}

	a.InputTypes = inputTypes(q.When)
	if !b.dupPos && !hasOp(q.When, "ATMOST") {
		for _, pred := range q.Where {
			if pred.IsCorrKey() && pred.CorrMode == "EQUAL" && pred.CorrLit != nil {
				a.RouteKeyAttr, a.RouteKeyVal = pred.CorrAttr, pred.CorrLit
				break
			}
		}
	}

	if q.OccSlice != nil || q.ValSlice != nil {
		win := temporal.NewInterval(temporal.MinTime, temporal.Infinity)
		if q.OccSlice != nil {
			win = win.Intersect(temporal.NewInterval(q.OccSlice[0], q.OccSlice[1]))
		}
		if q.ValSlice != nil {
			win = win.Intersect(temporal.NewInterval(q.ValSlice[0], q.ValSlice[1]))
		}
		a.Slice = &win
	}
	return a, nil
}

type binder struct {
	aliases map[string]binding
	sites   int // negation sites discovered (site 0 is positive)
	siteSeq int // rebuild counter for pass 3
	// corrKeyAttr, when non-empty, is stamped as the CorrKey annotation on
	// every negation operator pass 3 builds (set only for CorrelationKey
	// EQUAL, whose correlation predicate covers every site).
	corrKeyAttr string
	// dupPos: some alias binds more than one contributor in the positive
	// scope. Composite payloads then prime-rename the collision ("x.m" →
	// "x.m'"), a name neither the CorrelationKey suffix rule nor an exact
	// {x.m = y.m} lookup inspects — so the residual predicates can accept
	// a cross-key composite, and the key-pushdown soundness proof ("the
	// filter rejects every definite cross-key combination") breaks. Such
	// queries refuse pushdown outright.
	dupPos bool
}

// pushKeyAttr decides the correlation-key pushdown attribute (see
// Analysis.PushKeyAttr). partitionAttr, when set, already carries the
// CorrelationKey(attr, EQUAL) proof; otherwise the pairwise equality
// predicates must form a connected graph spanning every positively-bound
// alias on one common attribute.
func (b *binder) pushKeyAttr(preds []Pred, partitionAttr string) string {
	if b.dupPos {
		return "" // primed payload collisions escape the predicates; see dupPos
	}
	if partitionAttr != "" {
		return partitionAttr
	}
	var posAliases []string
	for al, bind := range b.aliases {
		if bind.site == 0 {
			posAliases = append(posAliases, al)
		}
	}
	if len(posAliases) < 2 {
		return "" // nothing to join across — pushdown has no combinations to prune
	}

	type edge struct{ a, b string }
	edges := map[string][]edge{}
	var attrOrder []string // deterministic candidate order: first predicate wins
	for _, p := range preds {
		if p.IsCorrKey() || p.Op != "=" || p.L.IsLit || p.R.IsLit {
			continue
		}
		if p.L.Attr != p.R.Attr || p.L.Alias == p.R.Alias {
			continue
		}
		la, lok := b.aliases[p.L.Alias]
		ra, rok := b.aliases[p.R.Alias]
		if !lok || !rok || la.site != 0 || ra.site != 0 {
			continue
		}
		if _, seen := edges[p.L.Attr]; !seen {
			attrOrder = append(attrOrder, p.L.Attr)
		}
		edges[p.L.Attr] = append(edges[p.L.Attr], edge{p.L.Alias, p.R.Alias})
	}

	for _, attr := range attrOrder {
		// Union-find over the positive aliases: the attribute qualifies
		// only if its equalities connect all of them into one component.
		parent := map[string]string{}
		var find func(x string) string
		find = func(x string) string {
			p, ok := parent[x]
			if !ok || p == x {
				parent[x] = x
				return x
			}
			r := find(p)
			parent[x] = r
			return r
		}
		for _, e := range edges[attr] {
			parent[find(e.a)] = find(e.b)
		}
		root := find(posAliases[0])
		spanning := true
		for _, al := range posAliases[1:] {
			if find(al) != root {
				spanning = false
				break
			}
		}
		if spanning {
			return attr
		}
	}
	return ""
}

// scan walks the pattern, assigning aliases to sites. site is the innermost
// enclosing negation site (0 = positive part).
func (b *binder) scan(n PatternNode, site int) error {
	switch x := n.(type) {
	case TypeNode:
		prefix := x.Alias
		if prefix == "" {
			prefix = x.Type
		}
		if prev, dup := b.aliases[prefix]; dup && prev.site != site {
			return fmt.Errorf("lang: alias %q bound in conflicting contexts", prefix)
		} else if dup && site == 0 {
			b.dupPos = true
		}
		b.aliases[prefix] = binding{site: site, prefix: prefix}
		return nil
	case OpNode:
		switch x.Op {
		case "UNLESS", "UNLESS'", "NOT", "CANCEL-WHEN":
			// First child is positive (relative to the current site), the
			// second is a fresh negative site — except NOT, whose first
			// child is the negated expression.
			b.sites++
			neg := b.sites
			posKid, negKid := x.Kids[0], x.Kids[1]
			if x.Op == "NOT" {
				posKid, negKid = x.Kids[1], x.Kids[0]
			}
			if err := b.scan(posKid, site); err != nil {
				return err
			}
			return b.scan(negKid, neg)
		default:
			for _, k := range x.Kids {
				if err := b.scan(k, site); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return fmt.Errorf("lang: unknown pattern node %T", n)
}

// predFn evaluates a positive predicate over a composite payload.
type predFn func(event.Payload) bool

// classify splits WHERE predicates into positive filters and per-site
// correlation predicates.
func (b *binder) classify(preds []Pred) ([]predFn, map[int][]algebra.CorrPred, error) {
	var positive []predFn
	corrs := map[int][]algebra.CorrPred{}
	for _, pred := range preds {
		if pred.IsCorrKey() {
			pos, siteCorrs := b.corrKeyPredicates(pred)
			positive = append(positive, pos)
			for s := 1; s <= b.sites; s++ {
				corrs[s] = append(corrs[s], siteCorrs)
			}
			continue
		}
		lSite, err := b.termSite(pred.L)
		if err != nil {
			return nil, nil, err
		}
		rSite, err := b.termSite(pred.R)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case lSite == 0 && rSite == 0:
			positive = append(positive, comparePred(pred, false, false))
		case lSite > 0 && rSite > 0 && lSite != rSite:
			return nil, nil, fmt.Errorf("lang: predicate correlates two different negation scopes")
		default:
			site := lSite
			if site == 0 {
				site = rSite
			}
			corrs[site] = append(corrs[site],
				corrComparePred(pred, lSite > 0, rSite > 0))
		}
	}
	return positive, corrs, nil
}

func (b *binder) termSite(t Term) (int, error) {
	if t.IsLit {
		return 0, nil
	}
	bind, ok := b.aliases[t.Alias]
	if !ok {
		return 0, fmt.Errorf("lang: unknown alias %q in WHERE clause", t.Alias)
	}
	return bind.site, nil
}

// corrKeyPredicates expands CorrelationKey(attr, EQUAL|UNIQUE) (or the
// [attr Equal 'lit'] shorthand) into a positive equivalence test plus a
// correlation predicate for negation sites.
func (b *binder) corrKeyPredicates(pred Pred) (predFn, algebra.CorrPred) {
	attr, mode, lit := pred.CorrAttr, pred.CorrMode, pred.CorrLit
	suffix := "." + attr
	values := func(p event.Payload) []event.Value {
		var vs []event.Value
		for k, v := range p {
			if strings.HasSuffix(k, suffix) {
				vs = append(vs, v)
			}
		}
		return vs
	}
	pos := func(p event.Payload) bool {
		vs := values(p)
		if mode == "UNIQUE" {
			for i := range vs {
				for j := i + 1; j < len(vs); j++ {
					if event.ValueEqual(vs[i], vs[j]) {
						return false
					}
				}
			}
			return true
		}
		for i := 1; i < len(vs); i++ {
			if !event.ValueEqual(vs[0], vs[i]) {
				return false
			}
		}
		if lit != nil && len(vs) > 0 && !event.ValueEqual(vs[0], lit) {
			return false
		}
		return true
	}
	corr := func(posP, negP event.Payload) bool {
		nvs := values(negP)
		pvs := values(posP)
		if mode == "UNIQUE" {
			for _, nv := range nvs {
				for _, pv := range pvs {
					if event.ValueEqual(nv, pv) {
						return false
					}
				}
			}
			return true
		}
		for _, nv := range nvs {
			if lit != nil && !event.ValueEqual(nv, lit) {
				return false
			}
			for _, pv := range pvs {
				if !event.ValueEqual(nv, pv) {
					return false
				}
			}
		}
		return true
	}
	return pos, corr
}

func termValue(t Term, p event.Payload) event.Value {
	if t.IsLit {
		return t.Lit
	}
	return p[t.Alias+"."+t.Attr]
}

func compareValues(op string, l, r event.Value) bool {
	switch op {
	case "=":
		return event.ValueEqual(l, r)
	case "!=":
		return !event.ValueEqual(l, r)
	case "<":
		return event.ValueLess(l, r)
	case "<=":
		return event.ValueLess(l, r) || event.ValueEqual(l, r)
	case ">":
		return event.ValueLess(r, l)
	case ">=":
		return event.ValueLess(r, l) || event.ValueEqual(l, r)
	}
	return false
}

func comparePred(pred Pred, lNeg, rNeg bool) predFn {
	return func(p event.Payload) bool {
		return compareValues(pred.Op, termValue(pred.L, p), termValue(pred.R, p))
	}
}

func corrComparePred(pred Pred, lNeg, rNeg bool) algebra.CorrPred {
	return func(pos, neg event.Payload) bool {
		lp, rp := pos, pos
		if lNeg {
			lp = neg
		}
		if rNeg {
			rp = neg
		}
		return compareValues(pred.Op, termValue(pred.L, lp), termValue(pred.R, rp))
	}
}

func evalAll(preds []predFn, p event.Payload) bool {
	for _, f := range preds {
		if !f(p) {
			return false
		}
	}
	return true
}

func describePreds(preds []Pred) string {
	parts := make([]string, 0, len(preds))
	for _, p := range preds {
		if p.IsCorrKey() {
			parts = append(parts, fmt.Sprintf("CorrelationKey(%s, %s)", p.CorrAttr, p.CorrMode))
			continue
		}
		parts = append(parts, fmt.Sprintf("{%s %s %s}", termString(p.L), p.Op, termString(p.R)))
	}
	return strings.Join(parts, " AND ")
}

func termString(t Term) string {
	if t.IsLit {
		return fmt.Sprintf("%v", t.Lit)
	}
	return t.Alias + "." + t.Attr
}

// build constructs the algebra expression, attaching per-site correlation
// predicates to their negation operators. Sites are numbered in the same
// order scan discovered them.
func (b *binder) build(n PatternNode, corrs map[int][]algebra.CorrPred) (algebra.Expr, error) {
	switch x := n.(type) {
	case TypeNode:
		return algebra.TypeExpr{Type: x.Type, Alias: x.Alias}, nil
	case OpNode:
		switch x.Op {
		case "UNLESS", "UNLESS'", "NOT", "CANCEL-WHEN":
			b.siteSeq++
			site := b.siteSeq
			posKid, negKid := x.Kids[0], x.Kids[1]
			if x.Op == "NOT" {
				posKid, negKid = x.Kids[1], x.Kids[0]
			}
			pos, err := b.build(posKid, corrs)
			if err != nil {
				return nil, err
			}
			neg, err := b.build(negKid, corrs)
			if err != nil {
				return nil, err
			}
			corr := conjoinCorr(corrs[site])
			switch x.Op {
			case "UNLESS":
				return algebra.UnlessExpr{A: pos, B: neg, W: x.W, Corr: corr, CorrKey: b.corrKeyAttr}, nil
			case "UNLESS'":
				up := algebra.UnlessPrimeExpr{A: pos, B: neg, N: x.N, W: x.W, Corr: corr, CorrKey: b.corrKeyAttr}
				if err := up.Validate(); err != nil {
					return nil, err
				}
				return up, nil
			case "NOT":
				seq, ok := pos.(algebra.SequenceExpr)
				if !ok {
					return nil, fmt.Errorf("lang: NOT scope must be a SEQUENCE")
				}
				return algebra.NotExpr{Neg: neg, Seq: seq, Corr: corr, CorrKey: b.corrKeyAttr}, nil
			default:
				return algebra.CancelWhenExpr{E: pos, Cancel: neg, Corr: corr, CorrKey: b.corrKeyAttr}, nil
			}
		}
		kids := make([]algebra.Expr, len(x.Kids))
		for i, k := range x.Kids {
			kid, err := b.build(k, corrs)
			if err != nil {
				return nil, err
			}
			kids[i] = kid
		}
		switch x.Op {
		case "SEQUENCE":
			return algebra.SequenceExpr{Kids: kids, W: x.W}, nil
		case "ALL":
			return algebra.All(x.W, kids...), nil
		case "ANY":
			return algebra.Any(kids...), nil
		case "ATLEAST":
			return algebra.AtLeastExpr{N: x.N, Kids: kids, W: x.W}, nil
		case "ATMOST":
			return algebra.AtMostExpr{N: x.N, Kids: kids, W: x.W}, nil
		}
		return nil, fmt.Errorf("lang: unknown operator %q", x.Op)
	}
	return nil, fmt.Errorf("lang: unknown pattern node %T", n)
}

func conjoinCorr(cs []algebra.CorrPred) algebra.CorrPred {
	if len(cs) == 0 {
		return nil
	}
	if len(cs) == 1 {
		return cs[0]
	}
	return func(pos, neg event.Payload) bool {
		for _, c := range cs {
			if !c(pos, neg) {
				return false
			}
		}
		return true
	}
}

// inputTypes collects the event TYPEs the pattern references, deduplicated
// in appearance order.
func inputTypes(n PatternNode) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(PatternNode)
	walk = func(n PatternNode) {
		switch x := n.(type) {
		case TypeNode:
			if !seen[x.Type] {
				seen[x.Type] = true
				out = append(out, x.Type)
			}
		case OpNode:
			for _, k := range x.Kids {
				walk(k)
			}
		}
	}
	walk(n)
	return out
}

// hasOp reports whether the pattern contains the named operator anywhere.
func hasOp(n PatternNode, op string) bool {
	switch x := n.(type) {
	case OpNode:
		if x.Op == op {
			return true
		}
		for _, k := range x.Kids {
			if hasOp(k, op) {
				return true
			}
		}
	}
	return false
}

// Compile is the front door: parse + analyze.
func Compile(src string) (*Analysis, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Analyze(q)
}
