package lang

import (
	"repro/internal/event"
	"repro/internal/temporal"
)

// Query is the parsed form of an EVENT registration.
type Query struct {
	Name string
	When PatternNode
	// Where is the conjunction of WHERE-clause predicates, prior to
	// predicate injection.
	Where []Pred
	// Output is the optional OUTPUT clause (instance transformation); nil
	// means detected instances are output directly.
	Output []OutputField
	// SC is the instance selection and consumption mode.
	SC SCClause
	// Consistency is the optional per-query consistency clause.
	Consistency *ConsistencyClause
	// OccSlice and ValSlice are the optional @ / # temporal slicing
	// windows.
	OccSlice *[2]temporal.Time
	ValSlice *[2]temporal.Time
}

// PatternNode is a node of the WHEN-clause pattern syntax tree.
type PatternNode interface{ pattern() }

// TypeNode references an event type, optionally aliased (AS).
type TypeNode struct {
	Type  string
	Alias string
}

func (TypeNode) pattern() {}

// OpNode is an n-ary pattern operator application.
type OpNode struct {
	Op   string // SEQUENCE, ALL, ANY, ATLEAST, ATMOST, UNLESS, NOT, CANCEL-WHEN
	N    int    // ATLEAST/ATMOST count
	Kids []PatternNode
	W    temporal.Duration
}

func (OpNode) pattern() {}

// Term is one side of a comparison predicate: an alias.attribute
// reference, a literal, or an unbound template parameter ($name).
type Term struct {
	Alias string
	Attr  string
	Lit   event.Value
	IsLit bool
	// Param is the template parameter name for a $name placeholder; Bind
	// replaces it with a literal before analysis.
	Param string
}

// Pred is a WHERE-clause predicate.
type Pred struct {
	// Cmp form: {x.a op y.b} or {x.a op literal}.
	L, R Term
	Op   string // = != < <= > >=

	// CorrelationKey form: CorrelationKey(attr, EQUAL) or
	// [attr Equal 'literal'].
	CorrAttr string
	CorrMode string      // EQUAL, UNIQUE
	CorrLit  event.Value // non-nil for the [attr Equal 'lit'] shorthand
	// CorrParam is the template parameter name of an [attr Equal $name]
	// shorthand; Bind resolves it into CorrLit.
	CorrParam string
}

// IsCorrKey reports whether the predicate is a correlation-key shorthand.
func (p Pred) IsCorrKey() bool { return p.CorrAttr != "" }

// OutputField is one projection of the OUTPUT clause.
type OutputField struct {
	Alias string
	Attr  string
	As    string
}

// SCClause is the parsed SC mode.
type SCClause struct {
	Selection   string // each (default), first, last
	Consumption string // reuse (default), consume
}

// ConsistencyClause is the per-query consistency specification: a named
// level, or an interior point of the (B, M) spectrum.
type ConsistencyClause struct {
	Level string // strong, middle, weak, level
	B, M  temporal.Duration
	HasM  bool
	HasB  bool
}
