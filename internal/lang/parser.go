package lang

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/event"
	"repro/internal/temporal"
)

// Parse parses a CEDR query registration.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("lang: %s (near %s)", fmt.Sprintf(format, args...), p.cur())
}

// keyword reports whether the current token is the (case-insensitive)
// identifier kw.
func (p *parser) keyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.keyword(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.cur().kind == tokPunct && p.cur().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier")
	}
	return p.next().text, nil
}

var patternOps = map[string]bool{
	"SEQUENCE": true, "ALL": true, "ANY": true, "ATLEAST": true,
	"ATMOST": true, "UNLESS": true, "NOT": true, "CANCEL": true,
	"CANCEL-WHEN": true, "CANCELWHEN": true,
}

var clauseKeywords = map[string]bool{
	"WHERE": true, "OUTPUT": true, "SC": true, "CONSISTENCY": true,
	"AND": true, "AS": true, "EVENT": true, "WHEN": true,
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectKeyword("EVENT"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	q.Name = name
	if err := p.expectKeyword("WHEN"); err != nil {
		return nil, err
	}
	q.When, err = p.parsePattern()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKeyword("WHERE"):
			if err := p.parseWhere(q); err != nil {
				return nil, err
			}
		case p.acceptKeyword("OUTPUT"):
			if err := p.parseOutput(q); err != nil {
				return nil, err
			}
		case p.acceptKeyword("SC"):
			if err := p.parseSC(q); err != nil {
				return nil, err
			}
		case p.acceptKeyword("CONSISTENCY"):
			if err := p.parseConsistency(q); err != nil {
				return nil, err
			}
		case p.acceptPunct("@"):
			win, err := p.parseWindowLiteral()
			if err != nil {
				return nil, err
			}
			q.OccSlice = win
		case p.acceptPunct("#"):
			win, err := p.parseWindowLiteral()
			if err != nil {
				return nil, err
			}
			q.ValSlice = win
		case p.cur().kind == tokEOF:
			return q, nil
		default:
			return nil, p.errf("unexpected token")
		}
	}
}

func (p *parser) parsePattern() (PatternNode, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, p.errf("expected pattern expression")
	}
	upper := strings.ToUpper(t.text)
	if patternOps[upper] {
		return p.parseOpNode(upper)
	}
	// Event type, optionally aliased: "INSTALL x" or "SHUTDOWN AS y".
	typ := p.next().text
	node := TypeNode{Type: typ}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		node.Alias = alias
	} else if p.cur().kind == tokIdent && !clauseKeywords[strings.ToUpper(p.cur().text)] &&
		!patternOps[strings.ToUpper(p.cur().text)] {
		node.Alias = p.next().text
	}
	return node, nil
}

func (p *parser) parseOpNode(op string) (PatternNode, error) {
	p.i++ // operator name
	if op == "CANCEL" {
		// CANCEL-WHEN lexed as CANCEL '-'? The lexer folds "CANCEL-WHEN"
		// into a single identifier; reaching here means a bare CANCEL.
		op = "CANCEL-WHEN"
	}
	if op == "CANCELWHEN" {
		op = "CANCEL-WHEN"
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	node := OpNode{Op: op}
	if op == "ATLEAST" || op == "ATMOST" {
		if p.cur().kind != tokNumber {
			return nil, p.errf("%s requires a leading count", op)
		}
		n, _ := strconv.Atoi(p.next().text)
		node.N = n
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
	}
	// Arguments: patterns, optionally terminated by a duration — or, for
	// the UNLESS' 4-argument form, a bare contributor index followed by the
	// duration.
	for {
		if p.cur().kind == tokNumber {
			d, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			if op == "UNLESS" && p.acceptPunct(",") {
				// UNLESS(E1, E2, n, w): the first number was the index.
				node.Op = "UNLESS'"
				node.N = int(d)
				d, err = p.parseDuration()
				if err != nil {
					return nil, err
				}
			}
			node.W = d
			break
		}
		kid, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		node.Kids = append(node.Kids, kid)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	switch op {
	case "SEQUENCE", "ALL", "ATLEAST", "ATMOST", "UNLESS":
		if node.W <= 0 {
			return nil, fmt.Errorf("lang: %s requires a scope duration", op)
		}
	}
	if op == "UNLESS" && len(node.Kids) != 2 {
		return nil, fmt.Errorf("lang: UNLESS takes exactly two pattern arguments")
	}
	if node.Op == "UNLESS'" && node.N < 1 {
		return nil, fmt.Errorf("lang: UNLESS' contributor index must be >= 1")
	}
	if op == "NOT" {
		if len(node.Kids) != 2 {
			return nil, fmt.Errorf("lang: NOT takes a pattern and a SEQUENCE scope")
		}
		if inner, ok := node.Kids[1].(OpNode); !ok || inner.Op != "SEQUENCE" {
			return nil, fmt.Errorf("lang: the second argument of NOT must be a SEQUENCE")
		}
	}
	if op == "CANCEL-WHEN" && len(node.Kids) != 2 {
		return nil, fmt.Errorf("lang: CANCEL-WHEN takes exactly two pattern arguments")
	}
	return node, nil
}

// parseDuration parses "12 hours", "5 minutes", "300" etc.
func (p *parser) parseDuration() (temporal.Duration, error) {
	num := p.next().text
	if p.cur().kind == tokIdent && !clauseKeywords[strings.ToUpper(p.cur().text)] {
		unit := p.next().text
		return temporal.ParseDuration(num + " " + unit)
	}
	return temporal.ParseDuration(num)
}

func (p *parser) parseWhere(q *Query) error {
	for {
		pred, err := p.parsePred()
		if err != nil {
			return err
		}
		q.Where = append(q.Where, pred)
		if !p.acceptKeyword("AND") {
			return nil
		}
	}
}

func (p *parser) parsePred() (Pred, error) {
	switch {
	case p.acceptPunct("{"):
		l, err := p.parseTerm()
		if err != nil {
			return Pred{}, err
		}
		if p.cur().kind != tokOp {
			return Pred{}, p.errf("expected comparison operator")
		}
		op := p.next().text
		r, err := p.parseTerm()
		if err != nil {
			return Pred{}, err
		}
		if err := p.expectPunct("}"); err != nil {
			return Pred{}, err
		}
		return Pred{L: l, R: r, Op: op}, nil

	case p.keyword("CorrelationKey"):
		p.i++
		if err := p.expectPunct("("); err != nil {
			return Pred{}, err
		}
		attr, err := p.expectIdent()
		if err != nil {
			return Pred{}, err
		}
		if err := p.expectPunct(","); err != nil {
			return Pred{}, err
		}
		mode, err := p.expectIdent()
		if err != nil {
			return Pred{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return Pred{}, err
		}
		mode = strings.ToUpper(mode)
		if mode != "EQUAL" && mode != "UNIQUE" {
			return Pred{}, fmt.Errorf("lang: unknown CorrelationKey mode %q", mode)
		}
		return Pred{CorrAttr: attr, CorrMode: mode}, nil

	case p.acceptPunct("["):
		// [attr Equal 'literal'] or [attr Equal $param]
		attr, err := p.expectIdent()
		if err != nil {
			return Pred{}, err
		}
		if !p.acceptKeyword("Equal") {
			return Pred{}, p.errf("expected Equal")
		}
		if p.acceptPunct("$") {
			name, err := p.expectIdent()
			if err != nil {
				return Pred{}, err
			}
			if err := p.expectPunct("]"); err != nil {
				return Pred{}, err
			}
			return Pred{CorrAttr: attr, CorrMode: "EQUAL", CorrParam: name}, nil
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return Pred{}, err
		}
		if err := p.expectPunct("]"); err != nil {
			return Pred{}, err
		}
		return Pred{CorrAttr: attr, CorrMode: "EQUAL", CorrLit: lit}, nil
	}
	return Pred{}, p.errf("expected predicate")
}

func (p *parser) parseTerm() (Term, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		alias := p.next().text
		if err := p.expectPunct("."); err != nil {
			return Term{}, err
		}
		attr, err := p.expectIdent()
		if err != nil {
			return Term{}, err
		}
		return Term{Alias: alias, Attr: attr}, nil
	case tokNumber, tokString:
		lit, err := p.parseLiteral()
		if err != nil {
			return Term{}, err
		}
		return Term{Lit: lit, IsLit: true}, nil
	case tokPunct:
		if p.acceptPunct("$") {
			name, err := p.expectIdent()
			if err != nil {
				return Term{}, err
			}
			// A parameter term is a literal whose value arrives at binding
			// time (Bind); IsLit stays false until then so site analysis
			// does not run on it.
			return Term{Param: name}, nil
		}
	}
	return Term{}, p.errf("expected term")
}

func (p *parser) parseLiteral() (event.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.i++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("lang: bad number %q", t.text)
		}
		return n, nil
	case tokString:
		p.i++
		return t.text, nil
	}
	return nil, p.errf("expected literal")
}

func (p *parser) parseOutput(q *Query) error {
	for {
		alias, err := p.expectIdent()
		if err != nil {
			return err
		}
		f := OutputField{Alias: alias}
		if p.acceptPunct(".") {
			attr, err := p.expectIdent()
			if err != nil {
				return err
			}
			f.Attr = attr
		}
		if p.acceptKeyword("AS") {
			as, err := p.expectIdent()
			if err != nil {
				return err
			}
			f.As = as
		}
		q.Output = append(q.Output, f)
		if !p.acceptPunct(",") {
			return nil
		}
	}
}

func (p *parser) parseSC(q *Query) error {
	if err := p.expectPunct("("); err != nil {
		return err
	}
	sel, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct(","); err != nil {
		return err
	}
	cons, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	q.SC = SCClause{Selection: strings.ToLower(sel), Consumption: strings.ToLower(cons)}
	return nil
}

func (p *parser) parseConsistency(q *Query) error {
	level, err := p.expectIdent()
	if err != nil {
		return err
	}
	c := &ConsistencyClause{Level: strings.ToLower(level)}
	if p.acceptPunct("(") {
		d, err := p.parseDuration()
		if err != nil {
			return err
		}
		switch c.Level {
		case "weak":
			c.M, c.HasM = d, true
		case "level":
			c.B, c.HasB = d, true
		default:
			return fmt.Errorf("lang: consistency level %q takes no arguments", c.Level)
		}
		if p.acceptPunct(",") {
			m, err := p.parseDuration()
			if err != nil {
				return err
			}
			c.M, c.HasM = m, true
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
	}
	switch c.Level {
	case "strong", "middle", "weak", "level":
	default:
		return fmt.Errorf("lang: unknown consistency level %q", c.Level)
	}
	q.Consistency = c
	return nil
}

// parseWindowLiteral parses "[t1, t2)".
func (p *parser) parseWindowLiteral() (*[2]temporal.Time, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	if p.cur().kind != tokNumber {
		return nil, p.errf("expected window start")
	}
	a, _ := strconv.ParseInt(p.next().text, 10, 64)
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	if p.cur().kind != tokNumber {
		return nil, p.errf("expected window end")
	}
	b, _ := strconv.ParseInt(p.next().text, 10, 64)
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &[2]temporal.Time{temporal.Time(a), temporal.Time(b)}, nil
}
