package lang

// Grammar
//
// The paper (§3.1) specifies the CEDR language by example; this is the
// concrete grammar the package implements. Keywords are case-insensitive;
// event type names, aliases and attributes are case-sensitive. "--" starts
// a comment running to end of line.
//
//	query       = "EVENT" name "WHEN" pattern clause* .
//	clause      = "WHERE" pred { "AND" pred }
//	            | "OUTPUT" field { "," field }
//	            | "SC" "(" selection "," consumption ")"
//	            | "CONSISTENCY" level
//	            | "@" window          (occurrence-time slice)
//	            | "#" window          (valid-time slice) .
//
//	pattern     = type [ "AS" alias | alias ]
//	            | "SEQUENCE"    "(" pattern { "," pattern } "," dur ")"
//	            | "ALL"         "(" pattern { "," pattern } "," dur ")"
//	            | "ANY"         "(" pattern { "," pattern } ")"
//	            | "ATLEAST" "(" n "," pattern { "," pattern } "," dur ")"
//	            | "ATMOST"  "(" n "," pattern { "," pattern } "," dur ")"
//	            | "UNLESS"      "(" pattern "," pattern "," dur ")"
//	            | "NOT"         "(" pattern "," sequence ")"
//	            | "CANCEL-WHEN" "(" pattern "," pattern ")" .
//
//	pred        = "{" term cmp term "}"
//	            | "CorrelationKey" "(" attr "," ("EQUAL" | "UNIQUE") ")"
//	            | "[" attr "Equal" literal "]" .
//	term        = alias "." attr | literal .
//	cmp         = "=" | "!=" | "<" | "<=" | ">" | ">=" .
//
//	field       = alias [ "." attr ] [ "AS" name ] .
//	selection   = "each" | "first" | "last" .
//	consumption = "reuse" | "consume" .
//	level       = "strong" | "middle" | "weak" [ "(" dur ")" ]
//	            | "level" "(" dur "," dur ")"      (B, M of Figure 9) .
//	window      = "[" int "," int ")" .
//	dur         = int [ unit ]     e.g. "12 hours", "5 minutes", "300" .
//
// The example of §3.1 parses verbatim:
//
//	EVENT CIDR07_Example
//	WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
//	            RESTART AS z, 5 minutes)
//	WHERE {x.Machine_Id = y.Machine_Id} AND
//	      {x.Machine_Id = z.Machine_Id}
//
// Predicate injection (§3.2): WHERE predicates that reference only aliases
// bound in the positive part of the pattern become a filter over the
// composite output; predicates that reference an alias bound under a
// negation operator (UNLESS's second argument, NOT's first, CANCEL-WHEN's
// second) are injected into that operator — the non-occurrence is then of
// correlated events only, which is the semantics the paper's
// CIDR07_Example requires.
