package lang

import (
	"fmt"
	"sort"

	"repro/internal/event"
)

// Template parameters: a query text may leave literal positions open as
// $name placeholders — in comparison terms ({x.severity > $threshold}) and
// in the correlation shorthand ([Machine_Id Equal $machine]). Such a text
// parses once into a template; each per-user instance is produced by Bind,
// which substitutes a literal value for every placeholder and costs a
// shallow copy of the WHERE clause rather than a re-parse. The standing-
// query fabric leans on this: thousands of instances of one template share
// the parsed form, and an [attr Equal $param] binding doubles as the
// instance's routing key (Analysis.RouteKeyAttr/RouteKeyVal).

// Params returns the template parameter names referenced by the query, in
// sorted order, deduplicated. Empty for a plain (fully bound) query.
func Params(q *Query) []string {
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" {
			seen[name] = true
		}
	}
	for _, pred := range q.Where {
		add(pred.CorrParam)
		add(pred.L.Param)
		add(pred.R.Param)
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Bind instantiates a template: every $name placeholder is replaced by
// bindings[name], producing a new Query that shares the parsed pattern tree
// (treated as immutable) but owns its WHERE clause. Every parameter must be
// bound and every binding must name a parameter — a silent partial binding
// would register a query that matches nothing it was meant to.
func Bind(q *Query, bindings map[string]event.Value) (*Query, error) {
	params := Params(q)
	if len(params) == 0 && len(bindings) == 0 {
		return q, nil
	}
	used := map[string]bool{}
	resolve := func(name string) (event.Value, error) {
		v, ok := bindings[name]
		if !ok {
			return nil, fmt.Errorf("lang: unbound template parameter $%s", name)
		}
		if v == nil {
			return nil, fmt.Errorf("lang: template parameter $%s bound to nil", name)
		}
		used[name] = true
		return v, nil
	}
	bound := *q
	bound.Where = make([]Pred, len(q.Where))
	for i, pred := range q.Where {
		p := pred
		if p.CorrParam != "" {
			v, err := resolve(p.CorrParam)
			if err != nil {
				return nil, err
			}
			p.CorrLit, p.CorrParam = v, ""
		}
		for _, t := range []*Term{&p.L, &p.R} {
			if t.Param == "" {
				continue
			}
			v, err := resolve(t.Param)
			if err != nil {
				return nil, err
			}
			t.Lit, t.IsLit, t.Param = v, true, ""
		}
		bound.Where[i] = p
	}
	for name := range bindings {
		if !used[name] {
			return nil, fmt.Errorf("lang: binding %q does not name a template parameter (have %v)", name, params)
		}
	}
	return &bound, nil
}

// AnalyzeBound binds a parsed template and analyzes the instance. For a
// plain query with no bindings it is exactly Analyze.
func AnalyzeBound(q *Query, bindings map[string]event.Value) (*Analysis, error) {
	bound, err := Bind(q, bindings)
	if err != nil {
		return nil, err
	}
	return Analyze(bound)
}
