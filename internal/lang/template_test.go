package lang

import (
	"strings"
	"testing"

	"repro/internal/event"
)

const paramQuery = `
EVENT MissedRestart
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
            RESTART AS z, 5 minutes)
WHERE CorrelationKey(Machine_Id, EQUAL) AND [Machine_Id Equal $m]
SC(each, consume)
`

func TestTemplateParams(t *testing.T) {
	q, err := Parse(paramQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got := Params(q); len(got) != 1 || got[0] != "m" {
		t.Fatalf("Params = %v, want [m]", got)
	}
	q2, err := Parse(`EVENT E WHEN ANY(R r) WHERE {r.temp > $hi} AND {r.temp < $lo}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := Params(q2); len(got) != 2 || got[0] != "hi" || got[1] != "lo" {
		t.Fatalf("Params = %v, want [hi lo] (sorted)", got)
	}
	plain, err := Parse(`EVENT E WHEN ANY(R r)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := Params(plain); len(got) != 0 {
		t.Fatalf("plain query has params %v", got)
	}
}

func TestTemplateBind(t *testing.T) {
	q, err := Parse(paramQuery)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := Bind(q, map[string]event.Value{"m": "m007"})
	if err != nil {
		t.Fatal(err)
	}
	if got := Params(bound); len(got) != 0 {
		t.Fatalf("bound query still has params %v", got)
	}
	var lit event.Value
	for _, p := range bound.Where {
		if p.IsCorrKey() && p.CorrLit != nil {
			lit = p.CorrLit
		}
	}
	if lit != "m007" {
		t.Fatalf("binding not substituted: CorrLit = %v", lit)
	}
	// The template itself is untouched (Bind copies).
	if got := Params(q); len(got) != 1 {
		t.Fatalf("Bind mutated the template: params now %v", got)
	}

	if _, err := Bind(q, nil); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("missing binding accepted: %v", err)
	}
	if _, err := Bind(q, map[string]event.Value{"m": nil}); err == nil {
		t.Error("nil binding value accepted")
	}
	if _, err := Bind(q, map[string]event.Value{"m": "x", "extra": 1}); err == nil {
		t.Error("binding for unknown parameter accepted")
	}
}

func TestTemplateAnalyzeRequiresBindings(t *testing.T) {
	if _, err := Compile(paramQuery); err == nil || !strings.Contains(err.Error(), "unbound template parameters") {
		t.Errorf("unbound template compiled: %v", err)
	}
	q, err := Parse(paramQuery)
	if err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeBound(q, map[string]event.Value{"m": "m007"})
	if err != nil {
		t.Fatal(err)
	}
	if an.RouteKeyAttr != "Machine_Id" || an.RouteKeyVal != "m007" {
		t.Errorf("route key = (%s, %v), want (Machine_Id, m007)", an.RouteKeyAttr, an.RouteKeyVal)
	}
}

func TestRouteKeyExtraction(t *testing.T) {
	cases := []struct {
		name string
		src  string
		attr string // "" = must refuse
	}{
		{"literal shorthand", `EVENT E WHEN SEQUENCE(A a, B b, 100) WHERE [mid Equal 'X1']`, "mid"},
		{"no literal", `EVENT E WHEN SEQUENCE(A a, B b, 100) WHERE CorrelationKey(mid, EQUAL)`, ""},
		{"atmost refused", `EVENT E WHEN ATMOST(2, SEQUENCE(A a, B b, 100), 200) WHERE [mid Equal 'X1']`, ""},
		{"dup alias refused", `EVENT E WHEN SEQUENCE(A m, A m, 100) WHERE [mid Equal 'X1']`, ""},
	}
	for _, tc := range cases {
		an, err := Compile(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if an.RouteKeyAttr != tc.attr {
			t.Errorf("%s: RouteKeyAttr = %q, want %q", tc.name, an.RouteKeyAttr, tc.attr)
		}
		if len(an.InputTypes) == 0 {
			t.Errorf("%s: no input types collected", tc.name)
		}
	}
}
