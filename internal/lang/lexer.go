// Package lang implements the CEDR query language of Section 3: the
// EVENT / WHEN / WHERE / OUTPUT registration syntax, with pattern operators,
// value correlation (including the CorrelationKey shorthand), SC modes, a
// per-query consistency clause, and temporal slicing. The paper specifies
// the language by example; the concrete grammar is documented in doc.go.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) { } [ ] , . @ # $
	tokOp    // = != < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the query text. CEDR keywords are case-insensitive
// identifiers; event type names and attribute names are case-sensitive.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '-' && l.peekAt(1) == '-': // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'' || c == '"':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case strings.ContainsRune("(){}[],.@#$", rune(c)):
			l.emit(tokPunct, string(c))
			l.pos++
		case c == '=':
			l.emit(tokOp, "=")
			l.pos++
		case c == '!' && l.peekAt(1) == '=':
			l.emit(tokOp, "!=")
			l.pos += 2
		case c == '<' || c == '>':
			op := string(c)
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				op += "="
				l.pos++
			}
			l.emit(tokOp, op)
		default:
			return nil, fmt.Errorf("lang: unexpected character %q at offset %d", c, l.pos)
		}
	}
}

func (l *lexer) peekAt(n int) byte {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	// "CANCEL-WHEN" lexes as one identifier thanks to '-' in idents; strip
	// any trailing '-' that belongs to punctuation usage.
	for strings.HasSuffix(text, "-") {
		text = text[:len(text)-1]
		l.pos--
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("lang: unterminated string starting at offset %d", start)
}
