// Package workload generates the synthetic event workloads the experiments
// run on: the machine-lifecycle telemetry behind the paper's §3.1
// monitoring example, and the financial streams (ticks, trades, portfolio
// updates, news) behind the three motivating applications of §1. All
// generators are seeded and deterministic; they produce logical source
// streams in Sync (occurrence) order, ready for internal/delivery.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/event"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// Machines configures the machine-lifecycle generator.
type Machines struct {
	Seed     int64
	Machines int
	// Cycles is the number of install→shutdown cycles per machine.
	Cycles int
	// RestartDeadline is the §3.1 alert window ("5 minutes").
	RestartDeadline temporal.Duration
	// MissProb is the probability a machine misses its restart deadline
	// (producing one expected alert).
	MissProb float64
	// CycleGap separates successive cycles.
	CycleGap temporal.Duration
}

// DefaultMachines is a moderate default configuration.
func DefaultMachines() Machines {
	return Machines{
		Seed:            1,
		Machines:        10,
		Cycles:          5,
		RestartDeadline: 5 * temporal.Minute,
		MissProb:        0.3,
		CycleGap:        30 * temporal.Minute,
	}
}

// MachineID is the Machine_Id payload value for machine m. Template
// bindings that route on Machine_Id (the standing-query fabric benchmarks
// and tests) must produce values with this exact format, so it is the one
// definition both the generator and its consumers share.
func MachineID(m int) string { return fmt.Sprintf("m%03d", m) }

// MachineEvents generates INSTALL/SHUTDOWN/RESTART telemetry. It returns
// the stream (Sync-ordered) and the number of alerts the §3.1 query should
// raise (machines that missed the restart deadline).
func MachineEvents(cfg Machines) (stream.Stream, int) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := event.NewGenerator(1)
	var s stream.Stream
	expected := 0
	for m := 0; m < cfg.Machines; m++ {
		id := MachineID(m)
		at := temporal.Time(int64(m) * int64(temporal.Minute))
		for c := 0; c < cfg.Cycles; c++ {
			payload := event.Payload{"Machine_Id": id}
			s = append(s, event.NewInsert(gen.Next(), "INSTALL", at, temporal.Infinity, payload.Clone()))
			at = at.Add(temporal.Duration(rng.Int63n(int64(2*temporal.Hour))) + temporal.Minute)
			s = append(s, event.NewInsert(gen.Next(), "SHUTDOWN", at, temporal.Infinity, payload.Clone()))
			if rng.Float64() < cfg.MissProb {
				// Missed restart: reboot well after the deadline.
				expected++
				at = at.Add(cfg.RestartDeadline * 4)
			} else {
				at = at.Add(temporal.Duration(rng.Int63n(int64(cfg.RestartDeadline)-1) + 1))
			}
			s = append(s, event.NewInsert(gen.Next(), "RESTART", at, temporal.Infinity, payload.Clone()))
			at = at.Add(cfg.CycleGap)
		}
	}
	return s.SortBySync(), expected
}

// Ticks configures the market-data generator.
type Ticks struct {
	Seed     int64
	Symbols  int
	PerSym   int
	Interval temporal.Duration
	// Lifetime is each quote's validity (how long a price is current).
	Lifetime temporal.Duration
	Base     float64
	Vol      float64
}

// DefaultTicks is a moderate default configuration.
func DefaultTicks() Ticks {
	return Ticks{Seed: 2, Symbols: 4, PerSym: 200, Interval: temporal.Second,
		Lifetime: 5 * temporal.Second, Base: 100, Vol: 0.8}
}

// StockTicks generates per-symbol random-walk quotes. Each tick is valid
// until refreshed (Lifetime).
func StockTicks(cfg Ticks) stream.Stream {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := event.NewGenerator(1000)
	var s stream.Stream
	for sym := 0; sym < cfg.Symbols; sym++ {
		name := fmt.Sprintf("SYM%d", sym)
		price := cfg.Base + float64(sym)*10
		at := temporal.Time(int64(sym) * 100)
		for i := 0; i < cfg.PerSym; i++ {
			price += (rng.Float64() - 0.5) * 2 * cfg.Vol
			s = append(s, event.NewInsert(gen.Next(), "TICK", at, at.Add(cfg.Lifetime),
				event.Payload{"symbol": name, "price": price}))
			at = at.Add(cfg.Interval)
		}
	}
	return s.SortBySync()
}

// Trades configures the trade/confirmation generator.
type Trades struct {
	Seed    int64
	Count   int
	Symbols int
	// ConfirmDelay bounds how long a confirmation may trail its trade.
	ConfirmDelay temporal.Duration
	// UnconfirmedProb is the probability a trade is never confirmed (the
	// compliance example's churn candidates).
	UnconfirmedProb float64
}

// DefaultTrades is a moderate default configuration.
func DefaultTrades() Trades {
	return Trades{Seed: 3, Count: 150, Symbols: 4,
		ConfirmDelay: 30 * temporal.Second, UnconfirmedProb: 0.15}
}

// TradeEvents generates TRADE events followed (usually) by CONFIRM events
// sharing an order id. It returns the stream and the number of trades left
// unconfirmed.
func TradeEvents(cfg Trades) (stream.Stream, int) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := event.NewGenerator(50000)
	var s stream.Stream
	unconfirmed := 0
	at := temporal.Time(0)
	for i := 0; i < cfg.Count; i++ {
		at = at.Add(temporal.Duration(rng.Int63n(int64(5*temporal.Second)) + 1))
		order := fmt.Sprintf("ord-%04d", i)
		sym := fmt.Sprintf("SYM%d", rng.Intn(cfg.Symbols))
		qty := int64(rng.Intn(900) + 100)
		s = append(s, event.NewInsert(gen.Next(), "TRADE", at, temporal.Infinity,
			event.Payload{"order": order, "symbol": sym, "qty": qty}))
		if rng.Float64() < cfg.UnconfirmedProb {
			unconfirmed++
			continue
		}
		delay := temporal.Duration(rng.Int63n(int64(cfg.ConfirmDelay)-1) + 1)
		s = append(s, event.NewInsert(gen.Next(), "CONFIRM", at.Add(delay), temporal.Infinity,
			event.Payload{"order": order, "symbol": sym, "qty": qty}))
	}
	return s.SortBySync(), unconfirmed
}

// News configures the news-sentiment generator for the §1 market-sentiment
// application.
type News struct {
	Seed    int64
	Count   int
	Symbols int
	Gap     temporal.Duration
	// ShelfLife is the short validity the paper attributes to news events.
	ShelfLife temporal.Duration
}

// DefaultNews is a moderate default configuration.
func DefaultNews() News {
	return News{Seed: 4, Count: 80, Symbols: 4, Gap: 10 * temporal.Second,
		ShelfLife: 20 * temporal.Second}
}

// NewsEvents generates NEWS events with a sentiment score in [-1, 1] and a
// short shelf life.
func NewsEvents(cfg News) stream.Stream {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := event.NewGenerator(90000)
	var s stream.Stream
	at := temporal.Time(0)
	for i := 0; i < cfg.Count; i++ {
		at = at.Add(temporal.Duration(rng.Int63n(int64(cfg.Gap))) + 1)
		s = append(s, event.NewInsert(gen.Next(), "NEWS", at, at.Add(cfg.ShelfLife),
			event.Payload{
				"symbol":    fmt.Sprintf("SYM%d", rng.Intn(cfg.Symbols)),
				"sentiment": rng.Float64()*2 - 1,
			}))
	}
	return s.SortBySync()
}

// Corrections rewrites a fraction of a stream's facts as optimistic
// insert-then-retract pairs: the provider first reports a lifetime of
// forever, then corrects it to the true end — the §2 application-driven
// modification pattern that exercises retraction paths end to end.
func Corrections(seed int64, frac float64, s stream.Stream) stream.Stream {
	rng := rand.New(rand.NewSource(seed))
	var out stream.Stream
	for _, e := range s {
		if e.IsCTI() || e.Kind != event.Insert || e.V.End.IsInfinite() || rng.Float64() >= frac {
			out = append(out, e)
			continue
		}
		opt := e.Clone()
		opt.V.End = temporal.Infinity
		out = append(out, opt)
		out = append(out, event.NewRetract(e.ID, e.Type, e.V.Start, e.V.End, e.Payload.Clone()))
	}
	return out.SortBySync()
}

// Uniform configures the high-volume synthetic generator used by the
// monitor scaling benchmarks: a steady pulse of grouped events, one every
// Spacing ticks, each valid for Lifetime. It deliberately mirrors the
// Figure 8 source shape so scaling measurements stay comparable to the
// paper experiments while letting volume, group fan-out and payload width
// grow arbitrarily.
type Uniform struct {
	Seed   int64
	Events int
	// Groups is the grouping-attribute cardinality ("g" cycles 0..Groups-1).
	Groups int
	// Spacing separates consecutive events in Sync time.
	Spacing temporal.Time
	// Lifetime is each event's validity.
	Lifetime temporal.Duration
	// Attrs adds numeric payload attributes ("x0", "x1", ...) beyond the
	// group key, for payload-weight sensitivity runs.
	Attrs int
}

// DefaultUniform is a moderate default configuration.
func DefaultUniform() Uniform {
	return Uniform{Seed: 7, Events: 1000, Groups: 5, Spacing: 4, Lifetime: 10, Attrs: 0}
}

// UniformEvents generates the configured stream in Sync order.
func UniformEvents(cfg Uniform) stream.Stream {
	rng := rand.New(rand.NewSource(cfg.Seed))
	groups := cfg.Groups
	if groups <= 0 {
		groups = 1
	}
	s := make(stream.Stream, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		vs := temporal.Time(int64(i)) * cfg.Spacing
		p := make(event.Payload, 1+cfg.Attrs)
		p["g"] = int64(i % groups)
		for a := 0; a < cfg.Attrs; a++ {
			p[fmt.Sprintf("x%d", a)] = rng.Float64() * 100
		}
		s = append(s, event.NewInsert(event.ID(i+1), "E", vs, vs.Add(cfg.Lifetime), p))
	}
	return s
}
