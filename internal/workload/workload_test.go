package workload

import (
	"testing"

	"repro/internal/event"
	"repro/internal/stream"
	"repro/internal/temporal"
)

func TestMachineEventsShape(t *testing.T) {
	cfg := DefaultMachines()
	s, expected := MachineEvents(cfg)
	if len(s) != cfg.Machines*cfg.Cycles*3 {
		t.Errorf("events = %d, want %d", len(s), cfg.Machines*cfg.Cycles*3)
	}
	if expected <= 0 || expected >= cfg.Machines*cfg.Cycles {
		t.Errorf("expected alerts = %d out of %d cycles", expected, cfg.Machines*cfg.Cycles)
	}
	if stream.Measure(s).Disordered() {
		t.Error("source must be Sync-ordered")
	}
	// Deterministic.
	s2, e2 := MachineEvents(cfg)
	if e2 != expected || len(s2) != len(s) {
		t.Error("generator not deterministic")
	}
	for i := range s {
		if !s[i].SameFact(s2[i]) {
			t.Fatalf("event %d differs between runs", i)
		}
	}
}

func TestMachineEventsAlertSemantics(t *testing.T) {
	// Every cycle has exactly one INSTALL, SHUTDOWN, RESTART per machine,
	// and missed restarts are spaced beyond the deadline.
	cfg := DefaultMachines()
	s, expected := MachineEvents(cfg)
	byType := map[string]int{}
	for _, e := range s {
		byType[e.Type]++
	}
	n := cfg.Machines * cfg.Cycles
	if byType["INSTALL"] != n || byType["SHUTDOWN"] != n || byType["RESTART"] != n {
		t.Errorf("type counts: %v", byType)
	}
	// Count shutdowns whose next restart (same machine) is late.
	late := 0
	lastShutdown := map[any]temporal.Time{}
	for _, e := range s {
		m := e.Payload["Machine_Id"]
		switch e.Type {
		case "SHUTDOWN":
			lastShutdown[m] = e.V.Start
		case "RESTART":
			if sd, ok := lastShutdown[m]; ok {
				if e.V.Start.Sub(sd) >= cfg.RestartDeadline {
					late++
				}
				delete(lastShutdown, m)
			}
		}
	}
	if late != expected {
		t.Errorf("late restarts = %d, expected %d", late, expected)
	}
}

func TestStockTicks(t *testing.T) {
	cfg := DefaultTicks()
	s := StockTicks(cfg)
	if len(s) != cfg.Symbols*cfg.PerSym {
		t.Errorf("ticks = %d", len(s))
	}
	syms := map[any]int{}
	for _, e := range s {
		if e.Type != "TICK" {
			t.Fatalf("bad type %q", e.Type)
		}
		if e.V.Duration() != cfg.Lifetime {
			t.Fatalf("tick lifetime = %v", e.V.Duration())
		}
		if _, ok := event.Num(e.Payload["price"]); !ok {
			t.Fatal("tick without numeric price")
		}
		syms[e.Payload["symbol"]]++
	}
	if len(syms) != cfg.Symbols {
		t.Errorf("symbols = %d", len(syms))
	}
}

func TestTradeEvents(t *testing.T) {
	cfg := DefaultTrades()
	s, unconfirmed := TradeEvents(cfg)
	trades, confirms := 0, 0
	for _, e := range s {
		switch e.Type {
		case "TRADE":
			trades++
		case "CONFIRM":
			confirms++
		}
	}
	if trades != cfg.Count {
		t.Errorf("trades = %d", trades)
	}
	if confirms != cfg.Count-unconfirmed {
		t.Errorf("confirms = %d, want %d", confirms, cfg.Count-unconfirmed)
	}
	if unconfirmed == 0 {
		t.Error("expected some unconfirmed trades")
	}
}

func TestNewsEvents(t *testing.T) {
	s := NewsEvents(DefaultNews())
	for _, e := range s {
		v, ok := event.Num(e.Payload["sentiment"])
		if !ok || v < -1 || v > 1 {
			t.Fatalf("sentiment out of range: %v", e.Payload)
		}
	}
}

func TestCorrections(t *testing.T) {
	src := StockTicks(DefaultTicks())
	cor := Corrections(9, 0.5, src)
	st := stream.Measure(cor)
	if st.Retractions == 0 {
		t.Fatal("no retractions generated")
	}
	if st.Events != len(src)+st.Retractions {
		t.Errorf("events = %d, want %d + %d", st.Events, len(src), st.Retractions)
	}
	// The corrected stream's ideal history equals the original's.
	if stream.Measure(cor).Disordered() {
		t.Error("corrections must stay Sync-ordered")
	}
}

func TestUniformEvents(t *testing.T) {
	cfg := DefaultUniform()
	cfg.Events = 500
	cfg.Groups = 7
	cfg.Attrs = 2
	s := UniformEvents(cfg)
	if len(s) != 500 {
		t.Fatalf("got %d events, want 500", len(s))
	}
	for i, e := range s {
		if i > 0 && e.Sync() < s[i-1].Sync() {
			t.Fatal("stream not in Sync order")
		}
		g, ok := e.Payload["g"].(int64)
		if !ok || g != int64(i%7) {
			t.Fatalf("event %d group = %v, want %d", i, e.Payload["g"], i%7)
		}
		if len(e.Payload) != 3 {
			t.Fatalf("event %d payload width %d, want 3", i, len(e.Payload))
		}
		if e.V.End.Sub(e.V.Start) != cfg.Lifetime {
			t.Fatalf("event %d lifetime %v", i, e.V)
		}
	}
	// Determinism: same seed, same stream.
	again := UniformEvents(cfg)
	for i := range s {
		if !s[i].SameFact(again[i]) {
			t.Fatalf("generator not deterministic at %d", i)
		}
	}
}
