package operators

import (
	"repro/internal/event"
	"repro/internal/temporal"
)

// Slice implements the temporal slicing of §3.2 (the @ and # constructs):
// it clips every output lifetime to a window, discarding events that fall
// entirely outside it. In the unitemporal run-time setting of Section 6,
// where occurrence and valid time are merged, both slicing dimensions
// reduce to valid-time clipping, so a query's "@ [a, b) # [c, d)" compiles
// to the intersection of the two windows.
//
// Slicing is stateless: inserts clip directly, and a retraction clips the
// same way its insert did, so the pair stays correlated.
type Slice struct {
	Win temporal.Interval
}

// NewSlice builds a slicing operator over the window [start, end).
func NewSlice(win temporal.Interval) *Slice { return &Slice{Win: win} }

// Name implements Op.
func (s *Slice) Name() string { return "slice" }

// Arity implements Op.
func (s *Slice) Arity() int { return 1 }

// Process implements Op.
func (s *Slice) Process(_ int, e event.Event) []event.Event {
	clippedStart := temporal.Max(e.V.Start, s.Win.Start)
	if e.Kind == event.Insert {
		iv := e.V.Intersect(s.Win)
		if iv.Empty() {
			return nil
		}
		out := e
		out.V = iv
		return []event.Event{out}
	}
	// Retraction: the original insert clipped to [clippedStart, ...); if
	// that was empty, there is nothing downstream to retract.
	if clippedStart >= s.Win.End {
		return nil
	}
	newEnd := temporal.Min(e.V.End, s.Win.End)
	if newEnd < clippedStart {
		newEnd = clippedStart // full removal of the clipped fact
	}
	out := e
	out.V = temporal.Interval{Start: clippedStart, End: newEnd}
	return []event.Event{out}
}

// Advance implements Op.
func (s *Slice) Advance(temporal.Time) []event.Event { return nil }

// OutputGuarantee implements Op.
func (s *Slice) OutputGuarantee(t temporal.Time) temporal.Time { return t }

// StatelessOp implements Stateless.
func (s *Slice) StatelessOp() {}

// StateSize implements Op.
func (s *Slice) StateSize() int { return 0 }

// Clone implements Op.
func (s *Slice) Clone() Op { c := *s; return &c }
