package operators

import (
	"repro/internal/event"
	"repro/internal/temporal"
)

// TimeFn computes a new start time from an event (the paper's fVs).
type TimeFn func(event.Event) temporal.Time

// DurFn computes a new lifetime duration from an event (the paper's f∆).
type DurFn func(event.Event) temporal.Duration

// AlterLifetime is Definition 12, the paper's one non-view-update-compliant
// (but well-behaved) operator:
//
//	Π fVs,f∆ (S) = {(|fVs(e)|, |fVs(e)| + |f∆(e)|, e.Payload) | e ∈ E(S)}
//
// It maps events from one valid-time domain to another: new start times come
// from fVs, new durations from f∆ — "a constrained form of project on the
// temporal fields". Windows, and the separation of inserts from deletes, are
// derived from it (see Window, HopWindow, Inserts, Deletes).
//
// A retraction of an input event may change the output interval in ways a
// retraction cannot express (e.g. Deletes moves the output *start* when Ve
// shrinks). In that case the operator removes the old output entirely and
// emits a fresh insert — exactly the remove-then-reinsert dance Figure 2
// performs at CEDR times 4–6.
type AlterLifetime struct {
	name string
	FVs  TimeFn
	FDur DurFn
	// Guarantee translates input guarantees to output guarantees. The
	// default (identity) is sound for all derivations in this package;
	// exotic fVs functions must supply their own.
	Guarantee func(temporal.Time) temporal.Time

	inputs  map[event.ID]event.Event // input ID → current input version
	emitted map[event.ID]event.Event // input ID → last emitted output (if any)
}

// NewAlterLifetime builds the operator from the two lifetime functions.
func NewAlterLifetime(fvs TimeFn, fdur DurFn) *AlterLifetime {
	return &AlterLifetime{
		name:    "alterlifetime",
		FVs:     fvs,
		FDur:    fdur,
		inputs:  map[event.ID]event.Event{},
		emitted: map[event.ID]event.Event{},
	}
}

// Window is the moving window operator W of Section 6, a special instance
// of AlterLifetime that clips each validity interval to at most wl:
//
//	W wl(S) = Π Vs, min(Ve−Vs, wl) (S)
func Window(wl temporal.Duration) *AlterLifetime {
	a := NewAlterLifetime(
		func(e event.Event) temporal.Time { return e.V.Start },
		func(e event.Event) temporal.Duration {
			d := e.V.Duration()
			if d > wl {
				return wl
			}
			return d
		},
	)
	a.name = "window"
	return a
}

// HopWindow derives a hopping window using integer division, as the paper
// suggests: an event's lifetime snaps to the hop-aligned window containing
// its start, extended to the window size.
func HopWindow(size, hop temporal.Duration) *AlterLifetime {
	a := NewAlterLifetime(
		func(e event.Event) temporal.Time {
			return temporal.Time(int64(e.V.Start) / int64(hop) * int64(hop))
		},
		func(event.Event) temporal.Duration { return size },
	)
	a.name = "hopwindow"
	return a
}

// Inserts exposes the insert half of a stream: Inserts(S) = Π Vs,∞ (S).
func Inserts() *AlterLifetime {
	a := NewAlterLifetime(
		func(e event.Event) temporal.Time { return e.V.Start },
		func(event.Event) temporal.Duration { return temporal.Duration(temporal.Infinity) },
	)
	a.name = "inserts"
	return a
}

// Deletes exposes the delete half of a stream: Deletes(S) = Π Ve,∞ (S).
// Events that are never deleted (Ve = ∞) produce no output.
func Deletes() *AlterLifetime {
	a := NewAlterLifetime(
		func(e event.Event) temporal.Time { return e.V.End },
		func(event.Event) temporal.Duration { return temporal.Duration(temporal.Infinity) },
	)
	a.name = "deletes"
	return a
}

// Name implements Op.
func (a *AlterLifetime) Name() string { return a.name }

// Arity implements Op.
func (a *AlterLifetime) Arity() int { return 1 }

// outputFor computes the mapped interval for the (current version of the)
// input event; ok is false when the mapping produces no output (e.g.
// Deletes of a still-live event).
func (a *AlterLifetime) outputFor(e event.Event) (temporal.Interval, bool) {
	vs := a.FVs(e)
	if vs.IsInfinite() {
		return temporal.Interval{}, false
	}
	iv := temporal.NewInterval(vs, vs.Add(a.FDur(e)))
	if iv.Empty() {
		return temporal.Interval{}, false
	}
	return iv, true
}

// Process implements Op.
func (a *AlterLifetime) Process(_ int, e event.Event) []event.Event {
	if e.Kind == event.Retract {
		return a.retract(e)
	}
	a.inputs[e.ID] = e.Clone()
	iv, ok := a.outputFor(e)
	if !ok {
		return nil
	}
	out := event.Event{
		ID:      e.ID,
		Kind:    event.Insert,
		Type:    e.Type,
		V:       iv,
		O:       temporal.From(iv.Start),
		RT:      e.RT,
		CBT:     []event.ID{e.ID},
		Payload: e.Payload.Clone(),
	}
	a.emitted[e.ID] = out
	return []event.Event{out}
}

func (a *AlterLifetime) retract(e event.Event) []event.Event {
	in, known := a.inputs[e.ID]
	if !known {
		return nil // unknown or already-finalized input
	}
	// Apply the retraction to the stored input version.
	if e.V.Empty() {
		in.V.End = in.V.Start
	} else {
		in.V.End = e.V.End
	}
	if in.V.Empty() {
		delete(a.inputs, e.ID)
	} else {
		a.inputs[e.ID] = in
	}

	old, had := a.emitted[e.ID]
	var newIv temporal.Interval
	newOK := false
	if !in.V.Empty() {
		cur := in.Clone()
		cur.Kind = event.Insert
		newIv, newOK = a.outputFor(cur)
	}

	var out []event.Event
	switch {
	case had && !newOK:
		// Output disappears entirely.
		out = append(out, retractTo(old, old.V.Start))
		delete(a.emitted, e.ID)
	case had && newOK && newIv == old.V:
		// Unchanged (e.g. Inserts ignores Ve).
	case had && newOK && newIv.Start == old.V.Start && newIv.End < old.V.End:
		// Pure shrink at the end: expressible as an output retraction.
		out = append(out, retractTo(old, newIv.End))
		old.V = newIv
		a.emitted[e.ID] = old
	case had && newOK:
		// Start moved, or lifetime grew: remove the old output and insert
		// the new lifetime under a derived ID (the Figure 2
		// remove-and-reinsert pattern).
		out = append(out, retractTo(old, old.V.Start))
		out = append(out, a.reinsert(in, newIv))
	case !had && newOK:
		// Retraction created output (e.g. Deletes: the delete point is now
		// known).
		out = append(out, a.reinsert(in, newIv))
	}
	return out
}

func (a *AlterLifetime) reinsert(in event.Event, iv temporal.Interval) event.Event {
	out := event.Event{
		ID:      event.Pair(in.ID, event.ID(iv.Start)),
		Kind:    event.Insert,
		Type:    in.Type,
		V:       iv,
		O:       temporal.From(iv.Start),
		RT:      in.RT,
		CBT:     []event.ID{in.ID},
		Payload: in.Payload.Clone(),
	}
	a.emitted[in.ID] = out
	return out
}

// Advance implements Op: an input whose validity ends by t can no longer be
// retracted (a retraction's Sync is its new Ve, which the guarantee forces
// to be >= t, and a retraction never extends a lifetime), so its state is
// dropped. Inputs valid forever must be kept — they remain retractable.
func (a *AlterLifetime) Advance(t temporal.Time) []event.Event {
	for id, in := range a.inputs {
		if !in.V.End.IsInfinite() && in.V.End <= t {
			delete(a.inputs, id)
			delete(a.emitted, id)
		}
	}
	return nil
}

// OutputGuarantee implements Op.
func (a *AlterLifetime) OutputGuarantee(t temporal.Time) temporal.Time {
	if a.Guarantee != nil {
		return a.Guarantee(t)
	}
	return t
}

// StateSize implements Op.
func (a *AlterLifetime) StateSize() int { return len(a.inputs) }

// Clone implements Op.
func (a *AlterLifetime) Clone() Op {
	c := &AlterLifetime{name: a.name, FVs: a.FVs, FDur: a.FDur, Guarantee: a.Guarantee,
		inputs:  make(map[event.ID]event.Event, len(a.inputs)),
		emitted: make(map[event.ID]event.Event, len(a.emitted))}
	for id, e := range a.inputs {
		c.inputs[id] = e.Clone()
	}
	for id, e := range a.emitted {
		c.emitted[id] = e.Clone()
	}
	return c
}
