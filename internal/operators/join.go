package operators

import (
	"repro/internal/event"
	"repro/internal/temporal"
)

// Join is Definition 9: the θ-join of two streams under view-update
// semantics. Each output carries the intersection of the contributors'
// validity intervals and the concatenation of their payloads:
//
//	⋈θ(S1, S2) = {(max Vs, min Ve, p1 ⧺ p2) | e1 ∈ E(S1), e2 ∈ E(S2),
//	              Vs < Ve, θ(p1, p2)}
//
// The implementation is a symmetric join: each side stores its live events;
// an insert probes the other side, a retraction shrinks previously emitted
// outputs. State is trimmed using input guarantees: once all future input
// has Sync >= t, stored events whose validity ends by t can never join a
// future insert (whose Vs >= t) and can be dropped.
type Join struct {
	Theta ThetaJoin
	// RightPrefix disambiguates colliding payload field names from the
	// right input ("right." by default).
	RightPrefix string

	state [2]map[event.ID]event.Event
}

// NewJoin builds a θ-join.
func NewJoin(theta ThetaJoin) *Join {
	return &Join{
		Theta:       theta,
		RightPrefix: "right.",
		state:       [2]map[event.ID]event.Event{{}, {}},
	}
}

// Name implements Op.
func (j *Join) Name() string { return "join" }

// Arity implements Op.
func (j *Join) Arity() int { return 2 }

// Process implements Op.
func (j *Join) Process(port int, e event.Event) []event.Event {
	if e.Kind == event.Retract {
		return j.retract(port, e)
	}
	other := 1 - port
	var out []event.Event
	for _, s := range j.state[other] {
		if iv := e.V.Intersect(s.V); !iv.Empty() {
			l, r := e, s
			if port == 1 {
				l, r = s, e
			}
			if j.Theta(l.Payload, r.Payload) {
				out = append(out, j.pair(l, r, iv))
			}
		}
	}
	j.state[port][e.ID] = e.Clone()
	return out
}

func (j *Join) retract(port int, e event.Event) []event.Event {
	old, ok := j.state[port][e.ID]
	if !ok {
		return nil
	}
	other := 1 - port
	var out []event.Event
	for _, s := range j.state[other] {
		oldOut := old.V.Intersect(s.V)
		if oldOut.Empty() {
			continue
		}
		newOut := temporal.NewInterval(e.V.Start, e.V.End).Intersect(s.V)
		if newOut == oldOut {
			continue
		}
		l, r := old, s
		if port == 1 {
			l, r = s, old
		}
		if !j.Theta(l.Payload, r.Payload) {
			continue
		}
		prev := j.pair(l, r, oldOut)
		end := newOut.End
		if newOut.Empty() {
			end = oldOut.Start // full removal
		}
		out = append(out, retractTo(prev, end))
	}
	if e.V.Empty() {
		delete(j.state[port], e.ID)
	} else {
		upd := old
		upd.V.End = e.V.End
		j.state[port][e.ID] = upd
	}
	return out
}

// pair constructs a join output event from the two contributors.
func (j *Join) pair(l, r event.Event, iv temporal.Interval) event.Event {
	p := make(event.Payload, len(l.Payload)+len(r.Payload))
	for k, v := range l.Payload {
		p[k] = v
	}
	for k, v := range r.Payload {
		if _, clash := p[k]; clash {
			p[j.RightPrefix+k] = v
		} else {
			p[k] = v
		}
	}
	return event.Event{
		ID:      event.Pair(l.ID, r.ID),
		Kind:    event.Insert,
		Type:    "join",
		V:       iv,
		O:       temporal.From(iv.Start),
		RT:      temporal.Min(l.RT, r.RT),
		CBT:     []event.ID{l.ID, r.ID},
		Payload: p,
	}
}

// Advance implements Op: stored events that end by t can never overlap a
// future insert, and no future retraction (Sync >= t) can shrink them
// further in a way that affects output.
func (j *Join) Advance(t temporal.Time) []event.Event {
	for port := 0; port < 2; port++ {
		for id, s := range j.state[port] {
			if s.V.End <= t {
				delete(j.state[port], id)
			}
		}
	}
	return nil
}

// OutputGuarantee implements Op: every output interval starts at the max of
// contributor starts, and retraction Syncs cannot regress below t.
func (j *Join) OutputGuarantee(t temporal.Time) temporal.Time { return t }

// StateSize implements Op.
func (j *Join) StateSize() int { return len(j.state[0]) + len(j.state[1]) }

// Clone implements Op.
func (j *Join) Clone() Op {
	c := &Join{Theta: j.Theta, RightPrefix: j.RightPrefix}
	c.state = [2]map[event.ID]event.Event{{}, {}}
	for port := 0; port < 2; port++ {
		for id, e := range j.state[port] {
			c.state[port][id] = e.Clone()
		}
	}
	return c
}
