package operators

import (
	"repro/internal/event"
	"repro/internal/temporal"
)

// Join is Definition 9: the θ-join of two streams under view-update
// semantics. Each output carries the intersection of the contributors'
// validity intervals and the concatenation of their payloads:
//
//	⋈θ(S1, S2) = {(max Vs, min Ve, p1 ⧺ p2) | e1 ∈ E(S1), e2 ∈ E(S2),
//	              Vs < Ve, θ(p1, p2)}
//
// The implementation is a symmetric join: each side stores its live events;
// an insert probes the other side, a retraction shrinks previously emitted
// outputs. State is trimmed using input guarantees: once all future input
// has Sync >= t, stored events whose validity ends by t can never join a
// future insert (whose Vs >= t) and can be dropped.
//
// State is kept in insertion order (a slice with tombstones plus an ID
// index) rather than a map, so probe output order is deterministic — two
// runs over the same input emit identical physical streams, which the
// consistency monitor's repair equivalence tests rely on — and probing
// iterates a dense slice instead of map buckets.
type Join struct {
	Theta ThetaJoin
	// RightPrefix disambiguates colliding payload field names from the
	// right input ("right." by default).
	RightPrefix string

	items [2][]joinEntry
	index [2]map[event.ID]int
	dead  [2]int
}

type joinEntry struct {
	ev   event.Event
	dead bool
}

// NewJoin builds a θ-join.
func NewJoin(theta ThetaJoin) *Join {
	return &Join{
		Theta:       theta,
		RightPrefix: "right.",
		index:       [2]map[event.ID]int{{}, {}},
	}
}

// Name implements Op.
func (j *Join) Name() string { return "join" }

// Arity implements Op.
func (j *Join) Arity() int { return 2 }

// Process implements Op.
func (j *Join) Process(port int, e event.Event) []event.Event {
	if e.Kind == event.Retract {
		return j.retract(port, e)
	}
	other := 1 - port
	var out []event.Event
	for i := range j.items[other] {
		ent := &j.items[other][i]
		if ent.dead {
			continue
		}
		if iv := e.V.Intersect(ent.ev.V); !iv.Empty() {
			l, r := e, ent.ev
			if port == 1 {
				l, r = ent.ev, e
			}
			if j.Theta(l.Payload, r.Payload) {
				out = append(out, j.pair(l, r, iv))
			}
		}
	}
	if i, ok := j.index[port][e.ID]; ok {
		j.items[port][i] = joinEntry{ev: e}
	} else {
		j.index[port][e.ID] = len(j.items[port])
		j.items[port] = append(j.items[port], joinEntry{ev: e})
	}
	return out
}

func (j *Join) retract(port int, e event.Event) []event.Event {
	i, ok := j.index[port][e.ID]
	if !ok {
		return nil
	}
	old := j.items[port][i].ev
	other := 1 - port
	var out []event.Event
	for k := range j.items[other] {
		ent := &j.items[other][k]
		if ent.dead {
			continue
		}
		s := ent.ev
		oldOut := old.V.Intersect(s.V)
		if oldOut.Empty() {
			continue
		}
		newOut := temporal.NewInterval(e.V.Start, e.V.End).Intersect(s.V)
		if newOut == oldOut {
			continue
		}
		l, r := old, s
		if port == 1 {
			l, r = s, old
		}
		if !j.Theta(l.Payload, r.Payload) {
			continue
		}
		prev := j.pair(l, r, oldOut)
		end := newOut.End
		if newOut.Empty() {
			end = oldOut.Start // full removal
		}
		out = append(out, retractTo(prev, end))
	}
	if e.V.Empty() {
		j.kill(port, i, e.ID)
		j.maybeCompact(port)
	} else {
		j.items[port][i].ev.V.End = e.V.End
	}
	return out
}

func (j *Join) kill(port, i int, id event.ID) {
	j.items[port][i] = joinEntry{dead: true}
	delete(j.index[port], id)
	j.dead[port]++
}

// maybeCompact drops tombstones once they dominate, preserving insertion
// order so output determinism survives. Never call while iterating items.
func (j *Join) maybeCompact(port int) {
	if j.dead[port] <= 16 || j.dead[port] <= len(j.items[port])/2 {
		return
	}
	live := j.items[port][:0]
	for _, ent := range j.items[port] {
		if !ent.dead {
			j.index[port][ent.ev.ID] = len(live)
			live = append(live, ent)
		}
	}
	for k := len(live); k < len(j.items[port]); k++ {
		j.items[port][k] = joinEntry{}
	}
	j.items[port] = live
	j.dead[port] = 0
}

// pair constructs a join output event from the two contributors.
func (j *Join) pair(l, r event.Event, iv temporal.Interval) event.Event {
	p := make(event.Payload, len(l.Payload)+len(r.Payload))
	for k, v := range l.Payload {
		p[k] = v
	}
	for k, v := range r.Payload {
		if _, clash := p[k]; clash {
			p[j.RightPrefix+k] = v
		} else {
			p[k] = v
		}
	}
	return event.Event{
		ID:      event.Pair(l.ID, r.ID),
		Kind:    event.Insert,
		Type:    "join",
		V:       iv,
		O:       temporal.From(iv.Start),
		RT:      temporal.Min(l.RT, r.RT),
		CBT:     []event.ID{l.ID, r.ID},
		Payload: p,
	}
}

// Advance implements Op: stored events that end by t can never overlap a
// future insert, and no future retraction (Sync >= t) can shrink them
// further in a way that affects output.
func (j *Join) Advance(t temporal.Time) []event.Event {
	for port := 0; port < 2; port++ {
		for i := range j.items[port] {
			ent := &j.items[port][i]
			if !ent.dead && ent.ev.V.End <= t {
				j.kill(port, i, ent.ev.ID)
			}
		}
		j.maybeCompact(port)
	}
	return nil
}

// OutputGuarantee implements Op: every output interval starts at the max of
// contributor starts, and retraction Syncs cannot regress below t.
func (j *Join) OutputGuarantee(t temporal.Time) temporal.Time { return t }

// StateSize implements Op.
func (j *Join) StateSize() int { return len(j.index[0]) + len(j.index[1]) }

// Clone implements Op.
func (j *Join) Clone() Op {
	c := &Join{Theta: j.Theta, RightPrefix: j.RightPrefix, dead: j.dead}
	for port := 0; port < 2; port++ {
		c.items[port] = append([]joinEntry(nil), j.items[port]...)
		c.index[port] = make(map[event.ID]int, len(j.index[port]))
		for id, i := range j.index[port] {
			c.index[port][id] = i
		}
	}
	return c
}
