// Package operators implements the run-time operator algebra of Section 6 of
// the paper: selection, projection, join, union, difference, grouped
// aggregation — all with view-update semantics (Definitions 7–11) — and the
// one non-view-update-compliant operator AlterLifetime (Definition 12), from
// which windows and the Inserts/Deletes separators are derived.
//
// Every operator is an "operational module" in the sense of Figure 7: it
// assumes its input arrives aligned (in Sync order — inserts ordered by Vs,
// retractions by their new Ve) and produces the output deltas of the view it
// computes. The consistency monitor (internal/consistency) wraps operators
// to uphold a consistency level under out-of-order physical arrival.
//
// Each operator also implements a denotational reference (reference.go)
// taken verbatim from the paper's definitions; property tests check the
// incremental implementations against the references (well-behavedness,
// Definition 6) and check view-update compliance (Definition 11).
package operators

import (
	"fmt"
	"strconv"

	"repro/internal/event"
	"repro/internal/temporal"
)

// Op is a streaming operator: the operational module of Figure 7.
//
// The contract: Process and Advance calls are interleaved such that every
// data event passed to Process(port, e) has e.Sync() >= t for the largest t
// previously passed to Advance. Advance(t) promises that all future input
// on every port has Sync >= t. Under that contract the operator's
// cumulative output, folded into a history table, equals the operator's
// denotational semantics applied to the input history.
//
// Buffer contract: the slice returned by Process or Advance is owned by the
// operator and valid only until the next call on it (or any of its clones);
// callers must copy the events they retain. Payloads and lineage attached
// to returned events are shared and must be treated as immutable.
type Op interface {
	// Name identifies the operator for plans and metrics.
	Name() string
	// Arity is the number of input ports (1 or 2).
	Arity() int
	// Process consumes one aligned data event and returns output deltas.
	Process(port int, e event.Event) []event.Event
	// Advance consumes an input guarantee: all future input has
	// Sync >= t. The operator may finalize and emit buffered output and
	// may discard state that the guarantee makes unreachable.
	Advance(t temporal.Time) []event.Event
	// OutputGuarantee translates an input guarantee into the guarantee
	// that holds on the output stream once Advance(t) has returned.
	OutputGuarantee(t temporal.Time) temporal.Time
	// StateSize reports the number of retained items, the paper's "state
	// size" axis in Figure 8.
	StateSize() int
	// Clone copies the operator and its state. Clones may share immutable
	// internals and reusable scratch with the original, so an operator and
	// its clones must only be driven sequentially (the consistency monitor,
	// which checkpoints operators by cloning, uses them this way). Clones
	// intended for concurrent use need an operator-specific deep copy.
	Clone() Op
}

// Version is a handle onto a point in a Versioned operator's mutation
// history: an opaque position in its undo journal. Versions are ordered by
// Pos (later marks have larger positions) and stay valid until a Rollback
// ends below them or a Compact discards the history at or above them.
type Version struct {
	Pos uint64
}

// Versioned is implemented by operators that maintain an undo journal of
// their own state mutations, so a caller can capture a point-in-time handle
// in O(1) and later restore the operator to it in O(mutations since) —
// instead of deep-cloning the whole state and replaying events into the
// clone. The consistency monitor uses this for delta-driven checkpointing:
// snapshots become Marks, rollback replaces clone-and-replay repair.
//
// The contract: Mark returns a handle for the operator's current state.
// Rollback(v) restores the state the operator had when v was marked and
// reports success; it fails (leaving state untouched) when v was
// invalidated by an earlier deeper Rollback or by Compact. A successful
// Rollback invalidates every version marked after v; v itself stays valid
// and may be rolled back to again. Compact(v) declares that no version
// older than v will ever be rolled back to, letting the operator discard
// the journal below v.
type Versioned interface {
	Op
	// Mark enables journaling (first call) and returns a handle for the
	// current state.
	Mark() Version
	// Rollback restores the state at v, reporting success.
	Rollback(v Version) bool
	// Compact discards undo history strictly below v; v and every later
	// version remain valid rollback targets.
	Compact(v Version)
}

// Stateless marks operators whose Process output depends only on the input
// event — no retained state, no Advance output, and output IDs derived
// purely from the input. The consistency monitor repairs stragglers through
// such operators without checkpoint rollback or log replay.
type Stateless interface {
	// StatelessOp is a marker; implementations are empty.
	StatelessOp()
}

// CostHint is implemented by operators that can estimate their per-event
// processing cost. The engine's overhead-aware shard-count heuristic uses
// it to decide how many shards a plan's work can amortize: sharding an
// operator whose per-event cost is below the router/merge handoff tax
// makes it slower, not faster.
type CostHint interface {
	// PerEventCostNs is the estimated cost of processing one event, in
	// nanoseconds. A coarse class estimate — calibrated against the
	// cedrbench single-core suite — not a measurement.
	PerEventCostNs() int
}

// Per-event cost classes for operators without their own hint, in
// nanoseconds (calibrated against the cedrbench single-core suite).
const (
	costStateless = 150 // Select/Project/Slice: predicate or map per event
	costDefault   = 700 // stateful default: aggregates, joins, difference
)

// CostOf estimates an operator's per-event processing cost in nanoseconds
// (see CostHint).
func CostOf(op Op) int {
	if h, ok := op.(CostHint); ok {
		return h.PerEventCostNs()
	}
	if _, ok := op.(Stateless); ok {
		return costStateless
	}
	return costDefault
}

// AdvanceOrdered is implemented by key-decomposable operators that emit
// output from Advance. One Advance call on an un-sharded instance emits
// outputs for every key in a deterministic cross-key order (the grouped
// aggregate's bucket order, the pattern evaluator's commit order); under
// key-partitioned execution each shard only produces its own keys' slice of
// that sequence. AppendAdvanceKey encodes the position of one Advance
// output in the full cross-key order as an order-preserving byte key
// (package ordkey), so the shard merge can interleave per-shard Advance
// bursts into exactly the sequence a single instance would have emitted.
//
// The event passed in is the raw operator output (before the consistency
// monitor rewrites its physical ID). Operators that never emit from Advance
// do not need to implement this.
type AdvanceOrdered interface {
	AppendAdvanceKey(dst []byte, e event.Event) []byte
}

// KeyString renders a payload value exactly as fmt's %v would, with
// allocation-free fast paths for the common types. Grouped aggregation
// hashes group keys through it, and the shard router uses the identical
// rendering so events of one group always land on the group's shard.
func KeyString(v event.Value) string {
	switch x := v.(type) {
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case int:
		return strconv.Itoa(x)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// Predicate evaluates a payload filter (Definition 8's boolean function f).
type Predicate func(event.Payload) bool

// Mapper transforms payloads (Definition 7's function f; it cannot touch
// timestamps).
type Mapper func(event.Payload) event.Payload

// ThetaJoin evaluates Definition 9's θ over two payloads.
type ThetaJoin func(left, right event.Payload) bool

// retractTo builds the retraction delta that shrinks an emitted output
// event to newEnd (full removal when newEnd <= V.Start).
func retractTo(out event.Event, newEnd temporal.Time) event.Event {
	r := out.Clone()
	r.Kind = event.Retract
	r.V.End = newEnd
	return r
}
