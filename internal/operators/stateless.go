package operators

import (
	"repro/internal/event"
	"repro/internal/temporal"
)

// Select is Definition 8: σf(S) = {(Vs, Ve, Payload) | e ∈ E(S), f(Payload)}.
// It is stateless: a retraction passes the same predicate its insert passed.
type Select struct {
	Pred Predicate

	out [1]event.Event // reusable Process result (see Op's buffer contract)
}

// NewSelect builds a selection operator.
func NewSelect(pred Predicate) *Select { return &Select{Pred: pred} }

// Name implements Op.
func (s *Select) Name() string { return "select" }

// Arity implements Op.
func (s *Select) Arity() int { return 1 }

// Process implements Op. The returned slice is reused across calls.
func (s *Select) Process(_ int, e event.Event) []event.Event {
	if !s.Pred(e.Payload) {
		return nil
	}
	s.out[0] = e
	return s.out[:1]
}

// Advance implements Op; selection buffers nothing.
func (s *Select) Advance(temporal.Time) []event.Event { return nil }

// OutputGuarantee implements Op.
func (s *Select) OutputGuarantee(t temporal.Time) temporal.Time { return t }

// StateSize implements Op.
func (s *Select) StateSize() int { return 0 }

// Clone implements Op.
func (s *Select) Clone() Op { c := *s; return &c }

// StatelessOp implements Stateless.
func (s *Select) StatelessOp() {}

// Project is Definition 7: πf(S) = {(Vs, Ve, f(Payload)) | e ∈ E(S)}. f may
// change the payload schema but cannot affect the timestamp attributes.
type Project struct {
	Fn Mapper
}

// NewProject builds a generalized-projection operator.
func NewProject(fn Mapper) *Project { return &Project{Fn: fn} }

// Name implements Op.
func (p *Project) Name() string { return "project" }

// Arity implements Op.
func (p *Project) Arity() int { return 1 }

// Process implements Op. The mapper is deterministic, so retractions map to
// retractions of the mapped payload. Only the payload changes, so the header
// is copied shallowly.
func (p *Project) Process(_ int, e event.Event) []event.Event {
	out := e
	out.Payload = p.Fn(e.Payload)
	return []event.Event{out}
}

// Advance implements Op.
func (p *Project) Advance(temporal.Time) []event.Event { return nil }

// OutputGuarantee implements Op.
func (p *Project) OutputGuarantee(t temporal.Time) temporal.Time { return t }

// StateSize implements Op.
func (p *Project) StateSize() int { return 0 }

// Clone implements Op.
func (p *Project) Clone() Op { c := *p; return &c }

// StatelessOp implements Stateless.
func (p *Project) StatelessOp() {}

// Union merges two streams with view-update (bag) semantics. Output IDs are
// derived from (input ID, port) so the two sides cannot collide and
// retractions stay correlated with their inserts.
type Union struct{}

// NewUnion builds a union operator.
func NewUnion() *Union { return &Union{} }

// Name implements Op.
func (u *Union) Name() string { return "union" }

// Arity implements Op.
func (u *Union) Arity() int { return 2 }

// Process implements Op. Only the ID changes, so the header is copied
// shallowly.
func (u *Union) Process(port int, e event.Event) []event.Event {
	out := e
	out.ID = event.Pair(e.ID, event.ID(port))
	return []event.Event{out}
}

// Advance implements Op.
func (u *Union) Advance(temporal.Time) []event.Event { return nil }

// OutputGuarantee implements Op.
func (u *Union) OutputGuarantee(t temporal.Time) temporal.Time { return t }

// StateSize implements Op.
func (u *Union) StateSize() int { return 0 }

// Clone implements Op.
func (u *Union) Clone() Op { c := *u; return &c }

// StatelessOp implements Stateless.
func (u *Union) StatelessOp() {}
