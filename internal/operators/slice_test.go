package operators

import (
	"testing"

	"repro/internal/event"
	"repro/internal/stream"
	"repro/internal/temporal"
)

func TestSliceClipsInserts(t *testing.T) {
	op := NewSlice(temporal.NewInterval(10, 20))
	out := RunAligned(op, stream.Stream{
		ins(1, 0, 15, nil),  // clipped to [10, 15)
		ins(2, 12, 18, nil), // inside: untouched
		ins(3, 0, 5, nil),   // outside: dropped
		ins(4, 25, 30, nil), // outside: dropped
	})
	tbl := OutputTable(out).SortByVs()
	if len(tbl) != 2 {
		t.Fatalf("outputs = %d: %+v", len(tbl), tbl)
	}
	if tbl[0].V != temporal.NewInterval(10, 15) || tbl[1].V != temporal.NewInterval(12, 18) {
		t.Errorf("clipping wrong: %v %v", tbl[0].V, tbl[1].V)
	}
}

func TestSliceRetractionStaysCorrelated(t *testing.T) {
	op := NewSlice(temporal.NewInterval(10, 20))
	out := RunAligned(op, stream.Stream{
		ins(1, 0, 30, nil),
		ret(1, 0, 15, nil), // shrink into the window
	})
	tbl := OutputTable(out).Ideal()
	if len(tbl) != 1 || tbl[0].V != temporal.NewInterval(10, 15) {
		t.Fatalf("sliced retraction: %+v", tbl)
	}
}

func TestSliceRetractionBelowWindowRemoves(t *testing.T) {
	op := NewSlice(temporal.NewInterval(10, 20))
	out := RunAligned(op, stream.Stream{
		ins(1, 0, 30, nil),
		ret(1, 0, 5, nil), // new end below the window: clipped fact vanishes
	})
	tbl := OutputTable(out).Ideal()
	if len(tbl) != 0 {
		t.Fatalf("fact should vanish: %+v", tbl)
	}
}

func TestSliceRetractionOfDroppedInsertIsSilent(t *testing.T) {
	op := NewSlice(temporal.NewInterval(10, 20))
	// Insert entirely after the window was dropped; its retraction must
	// not produce output either.
	if outs := op.Process(0, ins(1, 25, 40, nil)); len(outs) != 0 {
		t.Fatal("insert outside window leaked")
	}
	if outs := op.Process(0, ret(1, 25, 30, nil)); len(outs) != 0 {
		t.Fatal("retraction outside window leaked")
	}
}

func TestSliceIsWellBehaved(t *testing.T) {
	// Slicing commutes with retraction folding: slice(fold(stream)) ==
	// fold(slice(stream)).
	win := temporal.NewInterval(5, 25)
	src := stream.Stream{
		ins(1, 0, 30, pay("s", "a")),
		ret(1, 0, 18, pay("s", "a")),
		ins(2, 10, 22, pay("s", "b")),
		ins(3, 26, 40, pay("s", "c")),
	}
	streamed := OutputTable(RunAligned(NewSlice(win), src))

	var direct []event.Event
	for _, r := range OutputTable(src).Ideal() {
		iv := r.V.Intersect(win)
		if iv.Empty() {
			continue
		}
		direct = append(direct, event.Event{ID: r.ID, Kind: event.Insert, V: iv, Payload: r.Payload})
	}
	want := OutputTable(direct)
	if !streamed.EquivalentStar(want) {
		t.Errorf("slice not well behaved:\n got %+v\nwant %+v",
			streamed.Ideal().Star(), want.Ideal().Star())
	}
}
