package operators

import (
	"sort"

	"repro/internal/event"
	"repro/internal/temporal"
)

// Difference computes S1 − S2 under view-update semantics: at every instant
// the output relation contains the payloads present in S1 and absent from
// S2 at that instant. Output lifetimes are the left lifetimes with the
// matching right lifetimes subtracted.
//
// Difference is intrinsically a blocking operator: output over [a, b) is
// only final once the input guarantee passes b (a future right insert could
// still chop it). The operator therefore finalizes output on Advance —
// the alignment machinery of Section 5 is what unblocks it. At optimistic
// consistency levels the monitor advances it speculatively and repairs with
// retractions.
type Difference struct {
	frontier temporal.Time
	left     map[event.ID]event.Event
	right    map[event.ID]event.Event
}

// NewDifference builds a difference operator. Port 0 is the left (positive)
// input, port 1 the right (negative) input.
func NewDifference() *Difference {
	return &Difference{
		frontier: temporal.MinTime,
		left:     map[event.ID]event.Event{},
		right:    map[event.ID]event.Event{},
	}
}

// Name implements Op.
func (d *Difference) Name() string { return "difference" }

// Arity implements Op.
func (d *Difference) Arity() int { return 2 }

// Process implements Op: difference buffers until the guarantee moves.
func (d *Difference) Process(port int, e event.Event) []event.Event {
	side := d.left
	if port == 1 {
		side = d.right
	}
	if e.Kind == event.Retract {
		if old, ok := side[e.ID]; ok {
			if e.V.Empty() {
				delete(side, e.ID)
			} else {
				old.V.End = e.V.End
				side[e.ID] = old
			}
		}
		return nil
	}
	side[e.ID] = e.Clone()
	return nil
}

// Advance implements Op: output over [frontier, t) is final; emit it.
func (d *Difference) Advance(t temporal.Time) []event.Event {
	if t <= d.frontier {
		return nil
	}
	window := temporal.NewInterval(d.frontier, t)
	var out []event.Event
	for _, l := range d.left {
		base := l.V.Intersect(window)
		if base.Empty() {
			continue
		}
		for _, piece := range subtractAll(base, d.coverFor(l.Payload)) {
			out = append(out, event.Event{
				ID:      event.Pair(l.ID, event.ID(piece.Start)),
				Kind:    event.Insert,
				Type:    l.Type,
				V:       piece,
				O:       temporal.From(piece.Start),
				RT:      l.RT,
				CBT:     []event.ID{l.ID},
				Payload: l.Payload.Clone(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].V.Start != out[j].V.Start {
			return out[i].V.Start < out[j].V.Start
		}
		return out[i].Payload.Key() < out[j].Payload.Key()
	})
	d.frontier = t
	trim(d.left, t)
	trim(d.right, t)
	return out
}

// coverFor collects the right-side intervals matching the payload.
func (d *Difference) coverFor(p event.Payload) []temporal.Interval {
	key := p.Key()
	var cover []temporal.Interval
	for _, r := range d.right {
		if r.Payload.Key() == key && !r.V.Empty() {
			cover = append(cover, r.V)
		}
	}
	return cover
}

// subtractAll removes every interval in cover from base, returning the
// surviving pieces in order.
func subtractAll(base temporal.Interval, cover []temporal.Interval) []temporal.Interval {
	pieces := []temporal.Interval{base}
	for _, c := range cover {
		var next []temporal.Interval
		for _, p := range pieces {
			if !p.Overlaps(c) {
				next = append(next, p)
				continue
			}
			if c.Start > p.Start {
				next = append(next, temporal.NewInterval(p.Start, c.Start))
			}
			if c.End < p.End {
				next = append(next, temporal.NewInterval(c.End, p.End))
			}
		}
		pieces = next
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].Start < pieces[j].Start })
	return pieces
}

func trim(m map[event.ID]event.Event, t temporal.Time) {
	for id, e := range m {
		if e.V.End <= t {
			delete(m, id)
		}
	}
}

// OutputGuarantee implements Op: output up to t is final after Advance(t).
func (d *Difference) OutputGuarantee(t temporal.Time) temporal.Time { return t }

// StateSize implements Op.
func (d *Difference) StateSize() int { return len(d.left) + len(d.right) }

// Clone implements Op.
func (d *Difference) Clone() Op {
	c := NewDifference()
	c.frontier = d.frontier
	for id, e := range d.left {
		c.left[id] = e.Clone()
	}
	for id, e := range d.right {
		c.right[id] = e.Clone()
	}
	return c
}
