package operators

import (
	"testing"

	"repro/internal/event"
	"repro/internal/stream"
	"repro/internal/temporal"
)

func ins(id event.ID, vs, ve temporal.Time, p event.Payload) event.Event {
	return event.NewInsert(id, "T", vs, ve, p)
}

func ret(id event.ID, vs, newVE temporal.Time, p event.Payload) event.Event {
	return event.NewRetract(id, "T", vs, newVE, p)
}

func pay(k string, v event.Value) event.Payload { return event.Payload{k: v} }

func TestSelectFilters(t *testing.T) {
	op := NewSelect(func(p event.Payload) bool { v, _ := event.Num(p["x"]); return v > 5 })
	out := RunAligned(op, stream.Stream{
		ins(1, 0, 10, pay("x", int64(7))),
		ins(2, 0, 10, pay("x", int64(3))),
	})
	tbl := OutputTable(out).Ideal()
	if len(tbl) != 1 || tbl[0].Payload["x"] != int64(7) {
		t.Fatalf("select output: %+v", tbl)
	}
	if op.StateSize() != 0 {
		t.Error("select must be stateless")
	}
}

func TestSelectPassesRetractions(t *testing.T) {
	op := NewSelect(func(event.Payload) bool { return true })
	out := RunAligned(op, stream.Stream{
		ins(1, 0, 10, nil),
		ret(1, 0, 4, nil),
	})
	tbl := OutputTable(out).Ideal()
	if len(tbl) != 1 || tbl[0].V != temporal.NewInterval(0, 4) {
		t.Fatalf("retraction not applied: %+v", tbl)
	}
}

func TestProjectTransforms(t *testing.T) {
	op := NewProject(func(p event.Payload) event.Payload {
		v, _ := event.Num(p["x"])
		return pay("y", v*2)
	})
	out := RunAligned(op, stream.Stream{ins(1, 0, 5, pay("x", int64(3)))})
	tbl := OutputTable(out)
	if len(tbl) != 1 || tbl[0].Payload["y"] != float64(6) {
		t.Fatalf("project output: %+v", tbl)
	}
}

func TestUnionKeepsPortsApart(t *testing.T) {
	op := NewUnion()
	// Same input ID on both ports must not collide in the output.
	a := op.Process(0, ins(1, 0, 5, pay("s", "left")))
	b := op.Process(1, ins(1, 2, 8, pay("s", "right")))
	if a[0].ID == b[0].ID {
		t.Fatal("union output IDs collide across ports")
	}
}

func TestJoinIntersectsLifetimes(t *testing.T) {
	op := NewJoin(func(l, r event.Payload) bool { return l["k"] == r["k"] })
	out := RunAligned(op,
		stream.Stream{ins(1, 0, 10, event.Payload{"k": "a", "l": int64(1)})},
		stream.Stream{ins(2, 4, 20, event.Payload{"k": "a", "r": int64(2)})},
	)
	tbl := OutputTable(out).Ideal()
	if len(tbl) != 1 {
		t.Fatalf("join outputs = %d, want 1", len(tbl))
	}
	if tbl[0].V != temporal.NewInterval(4, 10) {
		t.Errorf("join interval = %v, want [4, 10)", tbl[0].V)
	}
	if tbl[0].Payload["l"] != int64(1) || tbl[0].Payload["r"] != int64(2) {
		t.Errorf("join payload = %v", tbl[0].Payload)
	}
}

func TestJoinRespectsTheta(t *testing.T) {
	op := NewJoin(func(l, r event.Payload) bool { return l["k"] == r["k"] })
	out := RunAligned(op,
		stream.Stream{ins(1, 0, 10, pay("k", "a"))},
		stream.Stream{ins(2, 0, 10, pay("k", "b"))},
	)
	if len(OutputTable(out)) != 0 {
		t.Error("join must respect theta")
	}
}

func TestJoinNoTemporalOverlapNoOutput(t *testing.T) {
	op := NewJoin(func(l, r event.Payload) bool { return true })
	out := RunAligned(op,
		stream.Stream{ins(1, 0, 5, nil)},
		stream.Stream{ins(2, 5, 10, nil)},
	)
	if len(OutputTable(out)) != 0 {
		t.Error("half-open intervals [0,5) and [5,10) must not join")
	}
}

func TestJoinPayloadCollision(t *testing.T) {
	op := NewJoin(func(l, r event.Payload) bool { return true })
	out := RunAligned(op,
		stream.Stream{ins(1, 0, 5, pay("x", int64(1)))},
		stream.Stream{ins(2, 0, 5, pay("x", int64(2)))},
	)
	tbl := OutputTable(out)
	if tbl[0].Payload["x"] != int64(1) || tbl[0].Payload["right.x"] != int64(2) {
		t.Errorf("collision handling: %v", tbl[0].Payload)
	}
}

func TestJoinRetractionShrinksOutput(t *testing.T) {
	op := NewJoin(func(l, r event.Payload) bool { return true })
	out := RunAligned(op,
		stream.Stream{ins(1, 0, 10, pay("s", "l")), ret(1, 0, 6, pay("s", "l"))},
		stream.Stream{ins(2, 0, 20, pay("s", "r"))},
	)
	tbl := OutputTable(out).Ideal()
	if len(tbl) != 1 || tbl[0].V != temporal.NewInterval(0, 6) {
		t.Fatalf("join after retraction: %+v", tbl)
	}
}

func TestJoinRetractionRemovesOutput(t *testing.T) {
	op := NewJoin(func(l, r event.Payload) bool { return true })
	out := RunAligned(op,
		stream.Stream{ins(1, 0, 10, nil), ret(1, 0, 2, nil)},
		stream.Stream{ins(2, 5, 20, nil)},
	)
	// After the retraction, [0,2) no longer overlaps [5,20).
	tbl := OutputTable(out).Ideal()
	if len(tbl) != 0 {
		t.Fatalf("output should be fully retracted: %+v", tbl)
	}
}

func TestJoinStateTrimming(t *testing.T) {
	op := NewJoin(func(l, r event.Payload) bool { return true })
	op.Process(0, ins(1, 0, 5, nil))
	op.Process(1, ins(2, 0, 7, nil))
	if op.StateSize() != 2 {
		t.Fatalf("state = %d", op.StateSize())
	}
	op.Advance(6)
	if op.StateSize() != 1 {
		t.Errorf("state after advance = %d, want 1 (left [0,5) dropped)", op.StateSize())
	}
	op.Advance(8)
	if op.StateSize() != 0 {
		t.Errorf("state after advance = %d, want 0", op.StateSize())
	}
}

func TestDifferenceSubtracts(t *testing.T) {
	op := NewDifference()
	p := pay("s", "a")
	out := RunAligned(op,
		stream.Stream{ins(1, 0, 10, p)},
		stream.Stream{ins(2, 3, 6, p)},
	)
	tbl := OutputTable(out).Ideal().SortByVs()
	if len(tbl) != 2 {
		t.Fatalf("pieces = %d, want 2: %+v", len(tbl), tbl)
	}
	if tbl[0].V != temporal.NewInterval(0, 3) || tbl[1].V != temporal.NewInterval(6, 10) {
		t.Errorf("pieces: %v %v", tbl[0].V, tbl[1].V)
	}
}

func TestDifferenceOnlyMatchingPayloadSubtracts(t *testing.T) {
	op := NewDifference()
	out := RunAligned(op,
		stream.Stream{ins(1, 0, 10, pay("s", "a"))},
		stream.Stream{ins(2, 3, 6, pay("s", "b"))},
	)
	tbl := OutputTable(out).Ideal().Star()
	if len(tbl) != 1 || tbl[0].V != temporal.NewInterval(0, 10) {
		t.Fatalf("non-matching payload must not subtract: %+v", tbl)
	}
}

func TestDifferenceIncrementalAdvanceEqualsOneShot(t *testing.T) {
	p := pay("s", "a")
	left := stream.Stream{ins(1, 0, 30, p)}
	right := stream.Stream{ins(2, 5, 12, p), ins(3, 20, 25, p)}

	oneShot := OutputTable(RunAligned(NewDifference(), left, right))

	op := NewDifference()
	var out stream.Stream
	out = append(out, op.Process(0, left[0])...)
	out = append(out, op.Process(1, right[0])...)
	out = append(out, op.Advance(15)...)
	out = append(out, op.Process(1, right[1])...)
	out = append(out, op.Advance(40)...)
	out = append(out, op.Advance(temporal.Infinity)...)
	incr := OutputTable(out)

	if !oneShot.EquivalentStar(incr) {
		t.Errorf("one-shot:\n%+v\nincremental:\n%+v", oneShot.Ideal().Star(), incr.Ideal().Star())
	}
}

func TestAggregateCountSegments(t *testing.T) {
	op := NewAggregate(Count, "", "")
	out := RunAligned(op, stream.Stream{
		ins(1, 0, 10, nil),
		ins(2, 5, 15, nil),
	})
	tbl := OutputTable(out).Ideal().SortByVs()
	// count = 1 on [0,5), 2 on [5,10), 1 on [10,15).
	want := []struct {
		iv temporal.Interval
		n  int64
	}{
		{temporal.NewInterval(0, 5), 1},
		{temporal.NewInterval(5, 10), 2},
		{temporal.NewInterval(10, 15), 1},
	}
	if len(tbl) != len(want) {
		t.Fatalf("segments = %d, want %d: %+v", len(tbl), len(want), tbl)
	}
	for i, w := range want {
		if tbl[i].V != w.iv || tbl[i].Payload["value"] != w.n {
			t.Errorf("segment %d = %v %v, want %v %v", i, tbl[i].V, tbl[i].Payload["value"], w.iv, w.n)
		}
	}
}

func TestAggregateCoalescesEqualSegments(t *testing.T) {
	op := NewAggregate(Count, "", "")
	// Two events that overlap exactly: count constant 2 over the overlap,
	// 1 on each side — but the two 1-segments differ in position. Adjacent
	// equal values coalesce.
	out := RunAligned(op, stream.Stream{
		ins(1, 0, 10, nil),
		ins(2, 0, 10, nil),
	})
	tbl := OutputTable(out).Ideal()
	if len(tbl) != 1 || tbl[0].Payload["value"] != int64(2) {
		t.Fatalf("want one coalesced segment, got %+v", tbl)
	}
}

func TestAggregateSumAvgMinMax(t *testing.T) {
	mk := func(kind AggKind) event.Value {
		op := NewAggregate(kind, "x", "")
		out := RunAligned(op, stream.Stream{
			ins(1, 0, 10, pay("x", int64(4))),
			ins(2, 0, 10, pay("x", int64(10))),
		})
		tbl := OutputTable(out).Ideal()
		if len(tbl) != 1 {
			t.Fatalf("%v segments = %d", kind, len(tbl))
		}
		return tbl[0].Payload["value"]
	}
	if v := mk(Sum); v != float64(14) {
		t.Errorf("sum = %v", v)
	}
	if v := mk(Avg); v != float64(7) {
		t.Errorf("avg = %v", v)
	}
	if v := mk(Min); v != float64(4) {
		t.Errorf("min = %v", v)
	}
	if v := mk(Max); v != float64(10) {
		t.Errorf("max = %v", v)
	}
}

func TestAggregateGroupBy(t *testing.T) {
	op := NewAggregate(Count, "", "g")
	out := RunAligned(op, stream.Stream{
		ins(1, 0, 10, pay("g", "a")),
		ins(2, 0, 10, pay("g", "a")),
		ins(3, 0, 10, pay("g", "b")),
	})
	tbl := OutputTable(out).Ideal()
	if len(tbl) != 2 {
		t.Fatalf("groups = %d: %+v", len(tbl), tbl)
	}
	for _, r := range tbl {
		switch r.Payload["g"] {
		case "a":
			if r.Payload["value"] != int64(2) {
				t.Errorf("group a = %v", r.Payload["value"])
			}
		case "b":
			if r.Payload["value"] != int64(1) {
				t.Errorf("group b = %v", r.Payload["value"])
			}
		default:
			t.Errorf("unexpected group %v", r.Payload["g"])
		}
	}
}

func TestAggregateRetraction(t *testing.T) {
	op := NewAggregate(Count, "", "")
	out := RunAligned(op, stream.Stream{
		ins(1, 0, temporal.Infinity, nil),
		ret(1, 0, 5, nil),
	})
	tbl := OutputTable(out).Ideal()
	if len(tbl) != 1 || tbl[0].V != temporal.NewInterval(0, 5) {
		t.Fatalf("count after retraction: %+v", tbl)
	}
}

func TestWindowClips(t *testing.T) {
	op := Window(5)
	out := RunAligned(op, stream.Stream{
		ins(1, 0, 100, pay("s", "long")),
		ins(2, 10, 12, pay("s", "short")),
	})
	tbl := OutputTable(out).Ideal().SortByVs()
	if tbl[0].V != temporal.NewInterval(0, 5) {
		t.Errorf("long event window = %v, want [0, 5)", tbl[0].V)
	}
	if tbl[1].V != temporal.NewInterval(10, 12) {
		t.Errorf("short event window = %v, want [10, 12)", tbl[1].V)
	}
}

func TestWindowRetractionWithinWindowShrinks(t *testing.T) {
	op := Window(5)
	out := RunAligned(op, stream.Stream{
		ins(1, 0, 100, nil),
		ret(1, 0, 3, nil),
	})
	tbl := OutputTable(out).Ideal()
	if len(tbl) != 1 || tbl[0].V != temporal.NewInterval(0, 3) {
		t.Fatalf("window after retraction: %+v", tbl)
	}
}

func TestWindowRetractionBeyondWindowNoop(t *testing.T) {
	op := Window(5)
	var out stream.Stream
	out = append(out, op.Process(0, ins(1, 0, 100, nil))...)
	deltas := op.Process(0, ret(1, 0, 50, nil))
	if len(deltas) != 0 {
		t.Fatalf("retraction beyond window must not emit: %v", deltas)
	}
	_ = out
}

func TestHopWindowSnaps(t *testing.T) {
	op := HopWindow(10, 10)
	out := RunAligned(op, stream.Stream{ins(1, 13, 14, nil)})
	tbl := OutputTable(out)
	if tbl[0].V != temporal.NewInterval(10, 20) {
		t.Errorf("hop window = %v, want [10, 20)", tbl[0].V)
	}
}

func TestInsertsIgnoresRetractions(t *testing.T) {
	op := Inserts()
	out := RunAligned(op, stream.Stream{
		ins(1, 3, 10, nil),
		ret(1, 3, 5, nil),
	})
	tbl := OutputTable(out).Ideal()
	if len(tbl) != 1 || tbl[0].V != temporal.From(3) {
		t.Fatalf("Inserts = %+v, want [3, ∞)", tbl)
	}
}

func TestDeletesEmitsAtKnownEnd(t *testing.T) {
	op := Deletes()
	out := RunAligned(op, stream.Stream{ins(1, 3, 10, nil)})
	tbl := OutputTable(out)
	if len(tbl) != 1 || tbl[0].V != temporal.From(10) {
		t.Fatalf("Deletes = %+v, want [10, ∞)", tbl)
	}
}

func TestDeletesOfForeverEventIsEmpty(t *testing.T) {
	op := Deletes()
	out := RunAligned(op, stream.Stream{ins(1, 3, temporal.Infinity, nil)})
	if len(OutputTable(out)) != 0 {
		t.Error("delete of a never-deleted event must not appear")
	}
}

func TestDeletesMovesOnRetraction(t *testing.T) {
	op := Deletes()
	out := RunAligned(op, stream.Stream{
		ins(1, 3, 10, nil),
		ret(1, 3, 7, nil),
	})
	tbl := OutputTable(out).Ideal()
	// The delete point moved from 10 to 7: old output removed entirely,
	// new output [7, ∞) inserted.
	if len(tbl) != 1 || tbl[0].V != temporal.From(7) {
		t.Fatalf("Deletes after retraction = %+v", tbl)
	}
}

func TestDeletesCreatedByRetractionOfForeverEvent(t *testing.T) {
	op := Deletes()
	out := RunAligned(op, stream.Stream{
		ins(1, 3, temporal.Infinity, nil),
		ret(1, 3, 8, nil),
	})
	tbl := OutputTable(out).Ideal()
	if len(tbl) != 1 || tbl[0].V != temporal.From(8) {
		t.Fatalf("Deletes = %+v, want [8, ∞)", tbl)
	}
}

func TestFullRetractionRemovesEverything(t *testing.T) {
	// Retraction to an empty lifetime removes the fact; dependent outputs
	// of every operator must vanish.
	full := func(op Op, inputs ...stream.Stream) int {
		return len(OutputTable(RunAligned(op, inputs...)).Ideal())
	}
	in := stream.Stream{ins(1, 0, 10, pay("x", int64(9))), ret(1, 0, 0, pay("x", int64(9)))}
	if n := full(NewSelect(func(event.Payload) bool { return true }), in); n != 0 {
		t.Errorf("select kept %d", n)
	}
	if n := full(Window(5), in); n != 0 {
		t.Errorf("window kept %d", n)
	}
	if n := full(NewAggregate(Count, "", ""), in); n != 0 {
		t.Errorf("aggregate kept %d", n)
	}
	other := stream.Stream{ins(2, 0, 10, pay("y", int64(1)))}
	if n := full(NewJoin(func(l, r event.Payload) bool { return true }), in, other); n != 0 {
		t.Errorf("join kept %d", n)
	}
}

func TestCloneIndependence(t *testing.T) {
	op := NewJoin(func(l, r event.Payload) bool { return true })
	op.Process(0, ins(1, 0, 10, nil))
	cl := op.Clone().(*Join)
	op.Process(0, ins(2, 0, 10, nil))
	if cl.StateSize() != 1 {
		t.Errorf("clone state = %d, want 1", cl.StateSize())
	}
	if op.StateSize() != 2 {
		t.Errorf("original state = %d, want 2", op.StateSize())
	}
}
