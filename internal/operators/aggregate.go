package operators

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/temporal"
)

// AggKind selects the aggregate function. The paper lists max, min and avg
// explicitly and notes the rest follow view-update semantics like their
// relational counterparts.
type AggKind uint8

// Supported aggregates.
const (
	Count AggKind = iota
	Sum
	Min
	Max
	Avg
)

// String implements fmt.Stringer.
func (k AggKind) String() string {
	switch k {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	default:
		return fmt.Sprintf("agg(%d)", uint8(k))
	}
}

// Aggregate is grouped aggregation under view-update semantics: the output
// is the changing state of the view
//
//	SELECT group, agg(field) FROM S GROUP BY group
//
// as a piecewise-constant function of time — one output event per maximal
// interval over which the group's aggregate value is constant.
//
// Like Difference, aggregation over [a, b) is final only once the input
// guarantee passes b, so output is emitted on Advance.
type Aggregate struct {
	Kind AggKind
	// Field is the aggregated payload attribute (ignored by Count).
	Field string
	// GroupBy is the grouping attribute; empty means a single global group.
	GroupBy string
	// As names the output value attribute ("value" by default).
	As string

	frontier temporal.Time
	live     map[event.ID]event.Event
}

// NewAggregate builds a grouped aggregation operator.
func NewAggregate(kind AggKind, field, groupBy string) *Aggregate {
	return &Aggregate{Kind: kind, Field: field, GroupBy: groupBy, As: "value",
		frontier: temporal.MinTime,
		live:     map[event.ID]event.Event{}}
}

// Name implements Op.
func (a *Aggregate) Name() string { return "aggregate:" + a.Kind.String() }

// Arity implements Op.
func (a *Aggregate) Arity() int { return 1 }

// Process implements Op.
func (a *Aggregate) Process(_ int, e event.Event) []event.Event {
	if e.Kind == event.Retract {
		if old, ok := a.live[e.ID]; ok {
			if e.V.Empty() {
				delete(a.live, e.ID)
			} else {
				old.V.End = e.V.End
				a.live[e.ID] = old
			}
		}
		return nil
	}
	a.live[e.ID] = e.Clone()
	return nil
}

func (a *Aggregate) groupKey(p event.Payload) string {
	if a.GroupBy == "" {
		return ""
	}
	return fmt.Sprintf("%v", p[a.GroupBy])
}

// Advance implements Op: emit the finalized aggregate segments over
// [frontier, t).
func (a *Aggregate) Advance(t temporal.Time) []event.Event {
	if t <= a.frontier {
		return nil
	}
	window := temporal.NewInterval(a.frontier, t)

	groups := map[string][]event.Event{}
	for _, e := range a.live {
		if e.V.Intersect(window).Empty() {
			continue
		}
		k := a.groupKey(e.Payload)
		groups[k] = append(groups[k], e)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out []event.Event
	for _, k := range keys {
		members := groups[k]
		// Canonical member order keeps floating-point folds deterministic
		// across runs and across segment packagings.
		sort.Slice(members, func(i, j int) bool {
			if members[i].V.Start != members[j].V.Start {
				return members[i].V.Start < members[j].V.Start
			}
			return members[i].ID < members[j].ID
		})
		out = append(out, a.segments(k, members, window)...)
	}
	a.frontier = t
	trim(a.live, t)
	return out
}

// segments computes the piecewise-constant aggregate of one group over the
// window and emits one insert per maximal constant segment.
func (a *Aggregate) segments(key string, members []event.Event, window temporal.Interval) []event.Event {
	boundSet := map[temporal.Time]bool{window.Start: true, window.End: true}
	for _, e := range members {
		iv := e.V.Intersect(window)
		boundSet[iv.Start] = true
		boundSet[iv.End] = true
	}
	bounds := make([]temporal.Time, 0, len(boundSet))
	for b := range boundSet {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

	var out []event.Event
	var open *event.Event // current segment being coalesced
	for i := 0; i+1 < len(bounds); i++ {
		seg := temporal.NewInterval(bounds[i], bounds[i+1])
		val, n := a.fold(members, seg)
		if n == 0 {
			if open != nil {
				out = append(out, *open)
				open = nil
			}
			continue
		}
		if open != nil && event.ValueEqual(open.Payload[a.As], val) {
			open.V.End = seg.End // coalesce equal adjacent segments
			continue
		}
		if open != nil {
			out = append(out, *open)
		}
		p := event.Payload{a.As: val}
		if a.GroupBy != "" {
			p[a.GroupBy] = key
		}
		ev := event.Event{
			ID:      event.Pair(event.ID(hashString(key)), event.ID(seg.Start)),
			Kind:    event.Insert,
			Type:    a.Name(),
			V:       seg,
			O:       temporal.From(seg.Start),
			RT:      seg.Start,
			Payload: p,
		}
		open = &ev
	}
	if open != nil {
		out = append(out, *open)
	}
	return out
}

// fold computes the aggregate over the members active throughout seg.
func (a *Aggregate) fold(members []event.Event, seg temporal.Interval) (event.Value, int) {
	var sum float64
	var minV, maxV float64
	n := 0
	for _, e := range members {
		if e.V.Intersect(seg) != seg {
			continue
		}
		v := 0.0
		if a.Kind != Count {
			f, ok := event.Num(e.Payload[a.Field])
			if !ok {
				continue
			}
			v = f
		}
		if n == 0 {
			minV, maxV = v, v
		} else {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		sum += v
		n++
	}
	if n == 0 {
		return nil, 0
	}
	switch a.Kind {
	case Count:
		return int64(n), n
	case Sum:
		return sum, n
	case Min:
		return minV, n
	case Max:
		return maxV, n
	case Avg:
		return sum / float64(n), n
	default:
		return nil, 0
	}
}

func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// OutputGuarantee implements Op.
func (a *Aggregate) OutputGuarantee(t temporal.Time) temporal.Time { return t }

// StateSize implements Op.
func (a *Aggregate) StateSize() int { return len(a.live) }

// Clone implements Op.
func (a *Aggregate) Clone() Op {
	c := NewAggregate(a.Kind, a.Field, a.GroupBy)
	c.As = a.As
	c.frontier = a.frontier
	for id, e := range a.live {
		c.live[id] = e.Clone()
	}
	return c
}
