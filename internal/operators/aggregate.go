package operators

import (
	"fmt"
	"slices"

	"repro/internal/event"
	"repro/internal/ordkey"
	"repro/internal/temporal"
)

// AggKind selects the aggregate function. The paper lists max, min and avg
// explicitly and notes the rest follow view-update semantics like their
// relational counterparts.
type AggKind uint8

// Supported aggregates.
const (
	Count AggKind = iota
	Sum
	Min
	Max
	Avg
)

// String implements fmt.Stringer.
func (k AggKind) String() string {
	switch k {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	default:
		return fmt.Sprintf("agg(%d)", uint8(k))
	}
}

// Aggregate is grouped aggregation under view-update semantics: the output
// is the changing state of the view
//
//	SELECT group, agg(field) FROM S GROUP BY group
//
// as a piecewise-constant function of time — one output event per maximal
// interval over which the group's aggregate value is constant.
//
// Like Difference, aggregation over [a, b) is final only once the input
// guarantee passes b, so output is emitted on Advance.
type Aggregate struct {
	Kind AggKind
	// Field is the aggregated payload attribute (ignored by Count).
	Field string
	// GroupBy is the grouping attribute; empty means a single global group.
	GroupBy string
	// As names the output value attribute ("value" by default).
	As string

	name     string
	frontier temporal.Time
	// live holds the in-scope input events by pointer; entries are
	// immutable once stored (retractions replace the pointer), so Clone is
	// a pointer-sharing copy.
	live map[event.ID]*event.Event

	// scratch holds per-Advance working storage, reused across calls so the
	// monitor's replay path does not allocate group maps per advance. It is
	// never shared between clones.
	scratch *aggScratch

	// payloads interns segment payloads by (group, value). Repeated
	// aggregate values — counts especially — then share one immutable map,
	// which both skips the allocation and lets the consistency monitor's
	// repair diff recognize re-derived segments by pointer. The cache is
	// shared with clones (checkpoints, snapshots) — all used sequentially
	// under one monitor.
	payloads map[payloadKey]event.Payload
}

type payloadKey struct {
	group string
	val   event.Value
}

// payloadCacheCap bounds the interning cache; pathological value streams
// (high-cardinality floats) reset it rather than growing without bound.
const payloadCacheCap = 4096

func (a *Aggregate) payloadFor(key string, val event.Value) event.Payload {
	pk := payloadKey{group: key, val: val}
	if p, ok := a.payloads[pk]; ok {
		return p
	}
	p := event.Payload{a.As: val}
	if a.GroupBy != "" {
		p[a.GroupBy] = key
	}
	if len(a.payloads) >= payloadCacheCap {
		clear(a.payloads)
	}
	a.payloads[pk] = p
	return p
}

// aggScratch is the reusable working set of Advance.
type aggScratch struct {
	buckets []aggBucket
	nb      int
	index   map[string]int
	bounds  []temporal.Time
	out     []event.Event
}

type aggBucket struct {
	key     string
	members []event.Event
}

// NewAggregate builds a grouped aggregation operator.
func NewAggregate(kind AggKind, field, groupBy string) *Aggregate {
	return &Aggregate{Kind: kind, Field: field, GroupBy: groupBy, As: "value",
		name:     "aggregate:" + kind.String(),
		frontier: temporal.MinTime,
		live:     map[event.ID]*event.Event{},
		payloads: make(map[payloadKey]event.Payload, 64)}
}

// Name implements Op.
func (a *Aggregate) Name() string { return a.name }

// Arity implements Op.
func (a *Aggregate) Arity() int { return 1 }

// Process implements Op. Stored events are shallow copies: the payload is
// shared (never mutated), and retractions rewrite the map value, not the
// shared backing.
func (a *Aggregate) Process(_ int, e event.Event) []event.Event {
	if e.Kind == event.Retract {
		if old, ok := a.live[e.ID]; ok {
			if e.V.Empty() {
				delete(a.live, e.ID)
			} else {
				shrunk := *old // copy-on-write: old may be shared with clones
				shrunk.V.End = e.V.End
				a.live[e.ID] = &shrunk
			}
		}
		return nil
	}
	a.live[e.ID] = &e
	return nil
}

// groupKey renders the grouping value exactly as fmt's %v would (group IDs
// hash this string).
func (a *Aggregate) groupKey(p event.Payload) string {
	if a.GroupBy == "" {
		return ""
	}
	return KeyString(p[a.GroupBy])
}

// AppendAdvanceKey implements AdvanceOrdered: one Advance call emits its
// segments bucket-by-bucket in ascending group-key order, so the cross-key
// position of an output is its group key (segments of one group stay in
// shard-local order). The output payload carries the group key under the
// GroupBy attribute, already in rendered form.
func (a *Aggregate) AppendAdvanceKey(dst []byte, e event.Event) []byte {
	return ordkey.AppendString(dst, a.groupKey(e.Payload))
}

// Advance implements Op: emit the finalized aggregate segments over
// [frontier, t).
func (a *Aggregate) Advance(t temporal.Time) []event.Event {
	if t <= a.frontier {
		return nil
	}
	window := temporal.NewInterval(a.frontier, t)

	sc := a.scratch
	if sc == nil {
		sc = &aggScratch{index: map[string]int{}}
		a.scratch = sc
	}
	sc.nb = 0
	indexed := false
	for _, ep := range a.live {
		e := *ep
		if e.V.Intersect(window).Empty() {
			continue
		}
		k := a.groupKey(e.Payload)
		// Group counts are small in practice; a linear probe over the
		// buckets beats hashing. Past 16 groups the map index takes over.
		bi := -1
		if !indexed {
			for j := 0; j < sc.nb; j++ {
				if sc.buckets[j].key == k {
					bi = j
					break
				}
			}
			if bi < 0 && sc.nb == 16 {
				clear(sc.index)
				for j := 0; j < sc.nb; j++ {
					sc.index[sc.buckets[j].key] = j
				}
				indexed = true
			}
		}
		if indexed {
			if j, ok := sc.index[k]; ok {
				bi = j
			}
		}
		if bi < 0 {
			bi = sc.nb
			sc.nb++
			if bi < len(sc.buckets) {
				sc.buckets[bi].key = k
				sc.buckets[bi].members = sc.buckets[bi].members[:0]
			} else {
				sc.buckets = append(sc.buckets, aggBucket{key: k})
			}
			if indexed {
				sc.index[k] = bi
			}
		}
		sc.buckets[bi].members = append(sc.buckets[bi].members, e)
	}
	bs := sc.buckets[:sc.nb]
	slices.SortFunc(bs, func(x, y aggBucket) int {
		if x.key < y.key {
			return -1
		}
		if x.key > y.key {
			return 1
		}
		return 0
	})

	// The output buffer is reused across calls (see Op's buffer contract).
	out := sc.out[:0]
	for bi := range bs {
		members := bs[bi].members
		// Canonical member order keeps floating-point folds deterministic
		// across runs and across segment packagings.
		slices.SortFunc(members, func(x, y event.Event) int {
			if x.V.Start != y.V.Start {
				if x.V.Start < y.V.Start {
					return -1
				}
				return 1
			}
			if x.ID < y.ID {
				return -1
			}
			if x.ID > y.ID {
				return 1
			}
			return 0
		})
		out = a.segments(out, bs[bi].key, members, window)
	}
	a.frontier = t
	for id, e := range a.live {
		if e.V.End <= t {
			delete(a.live, id)
		}
	}
	sc.out = out
	return out
}

// segments computes the piecewise-constant aggregate of one group over the
// window and appends one insert per maximal constant segment to out.
func (a *Aggregate) segments(out []event.Event, key string, members []event.Event, window temporal.Interval) []event.Event {
	bounds := append(a.scratch.bounds[:0], window.Start, window.End)
	for _, e := range members {
		iv := e.V.Intersect(window)
		bounds = append(bounds, iv.Start, iv.End)
	}
	slices.Sort(bounds)
	// Dedup in place (sorted).
	w := 1
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != bounds[w-1] {
			bounds[w] = bounds[i]
			w++
		}
	}
	bounds = bounds[:w]
	a.scratch.bounds = bounds
	var open event.Event // current segment being coalesced
	haveOpen := false
	gid := event.ID(HashString(key))
	for i := 0; i+1 < len(bounds); i++ {
		seg := temporal.NewInterval(bounds[i], bounds[i+1])
		val, n := a.fold(members, seg)
		if n == 0 {
			if haveOpen {
				out = append(out, open)
				haveOpen = false
			}
			continue
		}
		if haveOpen && event.ValueEqual(open.Payload[a.As], val) {
			open.V.End = seg.End // coalesce equal adjacent segments
			continue
		}
		if haveOpen {
			out = append(out, open)
		}
		open = event.Event{
			ID:      event.Pair(gid, event.ID(seg.Start)),
			Kind:    event.Insert,
			Type:    a.Name(),
			V:       seg,
			O:       temporal.From(seg.Start),
			RT:      seg.Start,
			Payload: a.payloadFor(key, val),
		}
		haveOpen = true
	}
	if haveOpen {
		out = append(out, open)
	}
	return out
}

// fold computes the aggregate over the members active throughout seg.
func (a *Aggregate) fold(members []event.Event, seg temporal.Interval) (event.Value, int) {
	var sum float64
	var minV, maxV float64
	n := 0
	for _, e := range members {
		if e.V.Intersect(seg) != seg {
			continue
		}
		v := 0.0
		if a.Kind != Count {
			f, ok := event.Num(e.Payload[a.Field])
			if !ok {
				continue
			}
			v = f
		}
		if n == 0 {
			minV, maxV = v, v
		} else {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		sum += v
		n++
	}
	if n == 0 {
		return nil, 0
	}
	switch a.Kind {
	case Count:
		return int64(n), n
	case Sum:
		return sum, n
	case Min:
		return minV, n
	case Max:
		return maxV, n
	case Avg:
		return sum / float64(n), n
	default:
		return nil, 0
	}
}

// HashString mixes a string with FNV-1a — the same function the event ID
// pairing uses. Grouped aggregation derives group IDs from it, and the
// shard router hashes routing keys with it, so a group's facts and its
// events agree on both identity and placement.
func HashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// OutputGuarantee implements Op.
func (a *Aggregate) OutputGuarantee(t temporal.Time) temporal.Time { return t }

// StateSize implements Op.
func (a *Aggregate) StateSize() int { return len(a.live) }

// Clone implements Op. Live entries are immutable and shared by pointer,
// but the Advance scratch and the payload-interning cache are per-clone:
// the sharded runtime hands clones to concurrently running workers, so
// mutable working state must not be shared (the scratch reallocates
// lazily, the cache simply refills).
func (a *Aggregate) Clone() Op {
	c := &Aggregate{Kind: a.Kind, Field: a.Field, GroupBy: a.GroupBy, As: a.As,
		name:     a.name,
		frontier: a.frontier,
		live:     make(map[event.ID]*event.Event, len(a.live)),
		payloads: make(map[payloadKey]event.Payload, 64),
	}
	for id, e := range a.live {
		c.live[id] = e
	}
	return c
}
