package operators

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/history"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// This file property-tests the paper's two semantic guarantees:
//
// Definition 6 (well-behavedness): for inputs logically equivalent to
// infinity, outputs are logically equivalent to infinity. We check it by
// delivering random fact sets through different physical packagings —
// exact inserts vs optimistic inserts later repaired by retractions — and
// comparing the folded streaming output against the denotational reference
// applied to the ideal history table.
//
// Definition 11 (view-update compliance): operators must be insensitive to
// how state changes are packaged — a lifetime chopped into several meeting
// insert events must act like one event with the merged lifetime. True for
// σ, π, ∪, ⋈, −, aggregates; deliberately false for AlterLifetime.

// genFacts builds a random ideal table of n facts over small times.
func genFacts(rng *rand.Rand, n int, payloads int) history.UniTable {
	tbl := make(history.UniTable, 0, n)
	for i := 0; i < n; i++ {
		vs := temporal.Time(rng.Intn(30))
		ve := vs + temporal.Time(rng.Intn(20)+1)
		p := event.Payload{
			"g": int64(rng.Intn(payloads)),
			"x": int64(rng.Intn(10)),
		}
		tbl = append(tbl, history.UniRow{ID: event.ID(i + 1), V: iv2(vs, ve), Payload: p})
	}
	return tbl
}

func iv2(s, e temporal.Time) temporal.Interval { return temporal.NewInterval(s, e) }

// asExactStream delivers each fact as a single precise insert.
func asExactStream(tbl history.UniTable, typ string) stream.Stream {
	var s stream.Stream
	for _, r := range tbl {
		s = append(s, event.NewInsert(r.ID, typ, r.V.Start, r.V.End, r.Payload.Clone()))
	}
	return s
}

// asRetractingStream delivers roughly half the facts optimistically — an
// insert valid forever, later repaired by a retraction to the true end.
func asRetractingStream(rng *rand.Rand, tbl history.UniTable, typ string) stream.Stream {
	var s stream.Stream
	for _, r := range tbl {
		if rng.Intn(2) == 0 {
			s = append(s, event.NewInsert(r.ID, typ, r.V.Start, r.V.End, r.Payload.Clone()))
			continue
		}
		s = append(s, event.NewInsert(r.ID, typ, r.V.Start, temporal.Infinity, r.Payload.Clone()))
		s = append(s, event.NewRetract(r.ID, typ, r.V.Start, r.V.End, r.Payload.Clone()))
	}
	return s
}

// asChoppedStream chops each fact's lifetime into 1–3 meeting pieces with
// distinct IDs — the Definition 11 packaging variation.
func asChoppedStream(rng *rand.Rand, tbl history.UniTable, typ string) stream.Stream {
	var s stream.Stream
	next := event.ID(1000)
	for _, r := range tbl {
		dur := int64(r.V.Duration())
		cuts := rng.Intn(3)
		points := []temporal.Time{r.V.Start}
		for c := 0; c < cuts; c++ {
			points = append(points, r.V.Start+temporal.Time(rng.Int63n(dur)))
		}
		points = append(points, r.V.End)
		// sort cut points
		for i := 0; i < len(points); i++ {
			for j := i + 1; j < len(points); j++ {
				if points[j] < points[i] {
					points[i], points[j] = points[j], points[i]
				}
			}
		}
		for i := 0; i+1 < len(points); i++ {
			if points[i] == points[i+1] {
				continue
			}
			s = append(s, event.NewInsert(next, typ, points[i], points[i+1], r.Payload.Clone()))
			next++
		}
	}
	return s
}

// eagerRun advances the operator to every event's Sync time before
// processing it — maximal punctuation density. The choice of advance points
// must not change the output table.
func eagerRun(op Op, inputs ...stream.Stream) stream.Stream {
	type tagged struct {
		port int
		ev   event.Event
	}
	var all []tagged
	for port, in := range inputs {
		for _, e := range in {
			all = append(all, tagged{port, e})
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].ev.Sync() < all[i].ev.Sync() {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	var out stream.Stream
	for _, t := range all {
		out = append(out, op.Advance(t.ev.Sync())...)
		out = append(out, op.Process(t.port, t.ev)...)
	}
	out = append(out, op.Advance(temporal.Infinity)...)
	return out
}

type opCase struct {
	name  string
	make  func() Op
	ref   func(in []history.UniTable) history.UniTable
	arity int
}

func cases() []opCase {
	sel := func(p event.Payload) bool { v, _ := event.Num(p["x"]); return v >= 5 }
	proj := func(p event.Payload) event.Payload {
		v, _ := event.Num(p["x"])
		return event.Payload{"y": v + 1}
	}
	theta := func(l, r event.Payload) bool { return event.ValueEqual(l["g"], r["g"]) }
	return []opCase{
		{"select", func() Op { return NewSelect(sel) },
			func(in []history.UniTable) history.UniTable { return RefSelect(sel, in[0]) }, 1},
		{"project", func() Op { return NewProject(proj) },
			func(in []history.UniTable) history.UniTable { return RefProject(proj, in[0]) }, 1},
		{"union", func() Op { return NewUnion() },
			func(in []history.UniTable) history.UniTable { return RefUnion(in[0], in[1]) }, 2},
		{"join", func() Op { return NewJoin(theta) },
			func(in []history.UniTable) history.UniTable { return RefJoin(theta, "right.", in[0], in[1]) }, 2},
		{"difference", func() Op { return NewDifference() },
			func(in []history.UniTable) history.UniTable { return RefDifference(in[0], in[1]) }, 2},
		{"count", func() Op { return NewAggregate(Count, "", "g") },
			func(in []history.UniTable) history.UniTable {
				return RefAggregate(Count, "", "g", "value", in[0].Ideal())
			}, 1},
		{"sum", func() Op { return NewAggregate(Sum, "x", "g") },
			func(in []history.UniTable) history.UniTable {
				return RefAggregate(Sum, "x", "g", "value", in[0].Ideal())
			}, 1},
		{"max", func() Op { return NewAggregate(Max, "x", "") },
			func(in []history.UniTable) history.UniTable {
				return RefAggregate(Max, "x", "", "value", in[0].Ideal())
			}, 1},
		{"window", func() Op { return Window(8) },
			func(in []history.UniTable) history.UniTable {
				w := Window(8)
				return RefAlterLifetime(w.FVs, w.FDur, in[0].Ideal())
			}, 1},
		{"inserts", func() Op { return Inserts() },
			func(in []history.UniTable) history.UniTable {
				op := Inserts()
				return RefAlterLifetime(op.FVs, op.FDur, in[0].Ideal())
			}, 1},
		{"deletes", func() Op { return Deletes() },
			func(in []history.UniTable) history.UniTable {
				op := Deletes()
				return RefAlterLifetime(op.FVs, op.FDur, in[0].Ideal())
			}, 1},
	}
}

// TestWellBehavedExactDelivery: streaming over exact inserts matches the
// denotation.
func TestWellBehavedExactDelivery(t *testing.T) {
	for _, c := range cases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				tables := make([]history.UniTable, c.arity)
				streams := make([]stream.Stream, c.arity)
				for i := range tables {
					tables[i] = genFacts(rng, 12, 3)
					streams[i] = asExactStream(tables[i], "T")
				}
				got := OutputTable(RunAligned(c.make(), streams...))
				want := c.ref(tables)
				return got.EquivalentStar(want)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestWellBehavedRetractingDelivery: optimistic inserts + retractions
// converge to the same denotation (Definition 6 across packagings with
// retractions).
func TestWellBehavedRetractingDelivery(t *testing.T) {
	for _, c := range cases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				tables := make([]history.UniTable, c.arity)
				streams := make([]stream.Stream, c.arity)
				for i := range tables {
					tables[i] = genFacts(rng, 10, 3)
					streams[i] = asRetractingStream(rng, tables[i], "T")
				}
				got := OutputTable(RunAligned(c.make(), streams...))
				want := c.ref(tables)
				return got.EquivalentStar(want)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAdvancePlacementIrrelevant: output must not depend on where input
// guarantees fall (eager per-event advancing vs one final advance).
func TestAdvancePlacementIrrelevant(t *testing.T) {
	for _, c := range cases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				tables := make([]history.UniTable, c.arity)
				streams := make([]stream.Stream, c.arity)
				for i := range tables {
					tables[i] = genFacts(rng, 10, 3)
					streams[i] = asRetractingStream(rng, tables[i], "T")
				}
				lazy := OutputTable(RunAligned(c.make(), streams...))
				eager := OutputTable(eagerRun(c.make(), streams...))
				return lazy.EquivalentStar(eager)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestViewUpdateCompliance: chopped lifetimes act like merged lifetimes for
// the view-update-compliant operators (Definition 11).
func TestViewUpdateCompliance(t *testing.T) {
	sel := func(p event.Payload) bool { v, _ := event.Num(p["x"]); return v >= 3 }
	theta := func(l, r event.Payload) bool { return event.ValueEqual(l["g"], r["g"]) }
	compliant := []opCase{
		{"select", func() Op { return NewSelect(sel) }, nil, 1},
		{"project", func() Op {
			return NewProject(func(p event.Payload) event.Payload { return p.Clone() })
		}, nil, 1},
		{"union", func() Op { return NewUnion() }, nil, 2},
		{"join", func() Op { return NewJoin(theta) }, nil, 2},
		{"difference", func() Op { return NewDifference() }, nil, 2},
		{"count", func() Op { return NewAggregate(Count, "", "g") }, nil, 1},
		{"avg", func() Op { return NewAggregate(Avg, "x", "g") }, nil, 1},
	}
	for _, c := range compliant {
		c := c
		t.Run(c.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				tables := make([]history.UniTable, c.arity)
				whole := make([]stream.Stream, c.arity)
				chopped := make([]stream.Stream, c.arity)
				for i := range tables {
					tables[i] = genFacts(rng, 8, 2)
					whole[i] = asExactStream(tables[i], "T")
					chopped[i] = asChoppedStream(rng, tables[i], "T")
				}
				a := OutputTable(RunAligned(c.make(), whole...))
				b := OutputTable(RunAligned(c.make(), chopped...))
				return a.EquivalentStar(b)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAlterLifetimeNotViewUpdateCompliant exhibits the witness the paper
// describes: chopping a lifetime changes a window's output, because the
// window re-anchors at each piece's Vs.
func TestAlterLifetimeNotViewUpdateCompliant(t *testing.T) {
	p := event.Payload{"s": "w"}
	whole := stream.Stream{event.NewInsert(1, "T", 0, 10, p)}
	chopped := stream.Stream{
		event.NewInsert(2, "T", 0, 5, p),
		event.NewInsert(3, "T", 5, 10, p),
	}
	a := OutputTable(RunAligned(Window(3), whole))
	b := OutputTable(RunAligned(Window(3), chopped))
	if a.EquivalentStar(b) {
		t.Fatal("Window should NOT be view-update compliant (paper §6)")
	}
	// Sanity: the whole version clips to [0,3); the chopped version
	// produces [0,3) and [5,8).
	if len(a.Ideal().Star()) != 1 || len(b.Ideal().Star()) != 2 {
		t.Errorf("unexpected shapes: %+v vs %+v", a.Ideal().Star(), b.Ideal().Star())
	}
}

// TestDifferenceUnblocksOnlyWithGuarantee demonstrates why difference is a
// blocking operator: no output may appear before an input guarantee covers
// it, because a future right insert could invalidate it.
func TestDifferenceUnblocksOnlyWithGuarantee(t *testing.T) {
	op := NewDifference()
	outs := op.Process(0, ins(1, 0, 10, pay("s", "a")))
	if len(outs) != 0 {
		t.Fatal("difference must not emit before a guarantee")
	}
	outs = op.Advance(4)
	if len(outs) != 1 || outs[0].V != iv2(0, 4) {
		t.Fatalf("difference must emit the covered prefix: %v", outs)
	}
}
