package operators

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/history"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// This file contains executable transcriptions of the paper's denotational
// operator semantics (Definitions 7–12), evaluated over unitemporal ideal
// history tables. They are the oracle the incremental operators are
// property-tested against: Definition 6 (well-behavedness) demands that an
// operator's cumulative streaming output be logically equivalent to the
// denotation of its input's ideal history table.

// renumber assigns fresh unique IDs to reference-output rows so that
// history.UniTable.Ideal's per-ID reduction (meant to fold retraction
// chains) treats each denoted fact as distinct.
func renumber(t history.UniTable) history.UniTable {
	for i := range t {
		t[i].ID = event.ID(i + 1)
	}
	return t
}

// RefSelect is Definition 8.
func RefSelect(pred Predicate, in history.UniTable) history.UniTable {
	var out history.UniTable
	for _, r := range in {
		if pred(r.Payload) {
			out = append(out, history.UniRow{V: r.V, Payload: r.Payload.Clone()})
		}
	}
	return renumber(out)
}

// RefProject is Definition 7.
func RefProject(fn Mapper, in history.UniTable) history.UniTable {
	var out history.UniTable
	for _, r := range in {
		out = append(out, history.UniRow{V: r.V, Payload: fn(r.Payload)})
	}
	return renumber(out)
}

// RefJoin is Definition 9.
func RefJoin(theta ThetaJoin, rightPrefix string, left, right history.UniTable) history.UniTable {
	var out history.UniTable
	for _, l := range left {
		for _, r := range right {
			iv := l.V.Intersect(r.V)
			if iv.Empty() || !theta(l.Payload, r.Payload) {
				continue
			}
			p := make(event.Payload, len(l.Payload)+len(r.Payload))
			for k, v := range l.Payload {
				p[k] = v
			}
			for k, v := range r.Payload {
				if _, clash := p[k]; clash {
					p[rightPrefix+k] = v
				} else {
					p[k] = v
				}
			}
			out = append(out, history.UniRow{V: iv, Payload: p})
		}
	}
	return renumber(out)
}

// RefUnion is the bag union of the two view histories.
func RefUnion(left, right history.UniTable) history.UniTable {
	out := make(history.UniTable, 0, len(left)+len(right))
	for _, r := range left {
		out = append(out, history.UniRow{V: r.V, Payload: r.Payload.Clone()})
	}
	for _, r := range right {
		out = append(out, history.UniRow{V: r.V, Payload: r.Payload.Clone()})
	}
	return renumber(out)
}

// RefDifference is relational difference under view-update semantics: each
// left lifetime minus the union of the matching right lifetimes.
func RefDifference(left, right history.UniTable) history.UniTable {
	var out history.UniTable
	for _, l := range left {
		var cover []temporal.Interval
		for _, r := range right {
			if r.Payload.Key() == l.Payload.Key() && !r.V.Empty() {
				cover = append(cover, r.V)
			}
		}
		for _, piece := range subtractAll(l.V, cover) {
			if !piece.Empty() {
				out = append(out, history.UniRow{V: piece, Payload: l.Payload.Clone()})
			}
		}
	}
	return renumber(out)
}

// RefAggregate is grouped aggregation as a piecewise-constant view history.
func RefAggregate(kind AggKind, field, groupBy, as string, in history.UniTable) history.UniTable {
	groups := map[string]history.UniTable{}
	var keys []string
	for _, r := range in {
		if r.V.Empty() {
			continue
		}
		k := ""
		if groupBy != "" {
			k = fmt.Sprintf("%v", r.Payload[groupBy])
		}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], r)
	}
	sort.Strings(keys)
	var out history.UniTable
	for _, k := range keys {
		rows := groups[k]
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].V.Start != rows[j].V.Start {
				return rows[i].V.Start < rows[j].V.Start
			}
			return rows[i].ID < rows[j].ID
		})
		boundSet := map[temporal.Time]bool{}
		for _, r := range rows {
			boundSet[r.V.Start] = true
			boundSet[r.V.End] = true
		}
		bounds := make([]temporal.Time, 0, len(boundSet))
		for b := range boundSet {
			bounds = append(bounds, b)
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
		for i := 0; i+1 < len(bounds); i++ {
			seg := temporal.NewInterval(bounds[i], bounds[i+1])
			val, n := refFold(kind, field, rows, seg)
			if n == 0 {
				continue
			}
			p := event.Payload{as: val}
			if groupBy != "" {
				p[groupBy] = k
			}
			out = append(out, history.UniRow{V: seg, Payload: p})
		}
	}
	return renumber(out)
}

func refFold(kind AggKind, field string, rows history.UniTable, seg temporal.Interval) (event.Value, int) {
	var sum, minV, maxV float64
	n := 0
	for _, r := range rows {
		if r.V.Intersect(seg) != seg {
			continue
		}
		v := 0.0
		if kind != Count {
			f, ok := event.Num(r.Payload[field])
			if !ok {
				continue
			}
			v = f
		}
		if n == 0 {
			minV, maxV = v, v
		} else {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		sum += v
		n++
	}
	if n == 0 {
		return nil, 0
	}
	switch kind {
	case Count:
		return int64(n), n
	case Sum:
		return sum, n
	case Min:
		return minV, n
	case Max:
		return maxV, n
	case Avg:
		return sum / float64(n), n
	default:
		return nil, 0
	}
}

// RefAlterLifetime is Definition 12.
func RefAlterLifetime(fvs TimeFn, fdur DurFn, in history.UniTable) history.UniTable {
	var out history.UniTable
	for _, r := range in {
		e := event.Event{V: r.V, Payload: r.Payload}
		vs := fvs(e)
		if vs.IsInfinite() {
			continue
		}
		iv := temporal.NewInterval(vs, vs.Add(fdur(e)))
		if iv.Empty() {
			continue
		}
		out = append(out, history.UniRow{V: iv, Payload: r.Payload.Clone()})
	}
	return renumber(out)
}

// RunAligned drives an operator over already-aligned inputs: the per-port
// streams are merged in Sync order (simultaneous items keep port order),
// processed, and a final Advance(∞) flushes blocking operators. It returns
// the physical output stream. This is the execution a strongly consistent
// monitor produces; tests use it to validate the operational modules in
// isolation.
func RunAligned(op Op, inputs ...stream.Stream) stream.Stream {
	type tagged struct {
		port int
		ev   event.Event
	}
	var all []tagged
	for port, in := range inputs {
		for _, e := range in {
			if e.IsCTI() {
				continue
			}
			all = append(all, tagged{port, e})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		return all[i].ev.Sync() < all[j].ev.Sync()
	})
	var out stream.Stream
	for _, t := range all {
		out = append(out, op.Process(t.port, t.ev)...)
	}
	out = append(out, op.Advance(temporal.Infinity)...)
	return out
}

// OutputTable folds a physical output stream into its unitemporal history
// table — the object the denotational references produce.
func OutputTable(out stream.Stream) history.UniTable {
	return history.FromEvents(out)
}
