package algebra

import (
	"sort"

	"repro/internal/event"
	"repro/internal/temporal"
)

// Match is one (possibly composite) pattern instance: the output form shared
// by the denotational evaluator and the streaming operator. The header
// mirrors §3.3.1: an ID derived from the contributors via idgen, the output
// validity interval, the root time Rt, and the cbt[] lineage.
type Match struct {
	ID event.ID
	V  temporal.Interval
	RT temporal.Time
	// FinalizeAt is the instant at which the detection becomes certain:
	// the last contributor's occurrence for positive operators, the close
	// of the negation window for UNLESS/ATMOST. An output may be emitted
	// once the input guarantee reaches FinalizeAt.
	FinalizeAt temporal.Time
	// FirstVs and LastVs are the first and last contributor occurrence
	// times (the negation scope of NOT and the detection instant).
	FirstVs, LastVs temporal.Time
	CBT             []event.ID
	Payload         event.Payload // namespaced: "<alias>.<field>"
}

// Event renders the match as a physical composite event.
func (m Match) Event(typ string) event.Event {
	return event.Event{
		ID:      m.ID,
		Kind:    event.Insert,
		Type:    typ,
		V:       m.V,
		O:       temporal.From(m.V.Start),
		RT:      m.RT,
		CBT:     append([]event.ID(nil), m.CBT...),
		Payload: m.Payload.Clone(),
	}
}

// Denote evaluates the expression denotationally over a set of primitive
// events, per the operator tables of §3.3.2. The store may be in any order.
func Denote(e Expr, store []event.Event) []Match {
	ms := eval(e, store)
	SortMatches(ms)
	return ms
}

// SortMatches orders matches in deterministic commit order — the
// (FinalizeAt, Vs, FirstVs, ID) tuple a streaming evaluation emits them in.
// The incremental matcher tree (internal/algebra/inc) shares it so both
// evaluation paths commit detections identically.
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].FinalizeAt != ms[j].FinalizeAt {
			return ms[i].FinalizeAt < ms[j].FinalizeAt
		}
		if ms[i].V.Start != ms[j].V.Start {
			return ms[i].V.Start < ms[j].V.Start
		}
		// Within one detection instant, commit earlier-anchored instances
		// first (chronicle order); ID as the final deterministic tiebreak.
		if ms[i].FirstVs != ms[j].FirstVs {
			return ms[i].FirstVs < ms[j].FirstVs
		}
		return ms[i].ID < ms[j].ID
	})
}

func eval(e Expr, store []event.Event) []Match {
	switch x := e.(type) {
	case TypeExpr:
		return evalType(x, store)
	case SequenceExpr:
		return evalSequence(x, store)
	case AtLeastExpr:
		return evalAtLeast(x, store)
	case AtMostExpr:
		return evalAtMost(x, store)
	case UnlessExpr:
		return evalUnless(x, store)
	case UnlessPrimeExpr:
		return evalUnlessPrime(x, store)
	case NotExpr:
		return evalNot(x, store)
	case CancelWhenExpr:
		return evalCancelWhen(x, store)
	case FilterExpr:
		var out []Match
		for _, m := range eval(x.Kid, store) {
			if x.Pred(m.Payload) {
				out = append(out, m)
			}
		}
		return out
	default:
		return nil
	}
}

func evalType(t TypeExpr, store []event.Event) []Match {
	var out []Match
	prefix := t.Prefix()
	for _, e := range store {
		if e.Kind != event.Insert || e.Type != t.Type {
			continue
		}
		p := make(event.Payload, len(e.Payload))
		for k, v := range e.Payload {
			p[prefix+"."+k] = v
		}
		out = append(out, Match{
			ID:         event.Pair(e.ID),
			V:          e.V,
			RT:         e.V.Start,
			FinalizeAt: e.V.Start,
			FirstVs:    e.V.Start,
			LastVs:     e.V.Start,
			CBT:        []event.ID{e.ID},
			Payload:    p,
		})
	}
	return out
}

// Combine builds the composite match for ordered contributors within scope
// w: valid over [last.Vs, first.Vs + w), per the SEQUENCE/ATLEAST rows of
// the operator table. Both the denotational evaluator and the incremental
// matcher tree derive composite headers, IDs and payloads through it.
func Combine(ms []Match, w temporal.Duration) Match {
	first, last := ms[0], ms[len(ms)-1]
	ids := make([]event.ID, 0, len(ms))
	cbt := make([]event.ID, 0, len(ms))
	payload := event.Payload{}
	rt := first.RT
	fin := temporal.MinTime
	for _, m := range ms {
		ids = append(ids, m.ID)
		cbt = append(cbt, m.CBT...)
		if m.RT < rt {
			rt = m.RT
		}
		if m.FinalizeAt > fin {
			fin = m.FinalizeAt
		}
		for k, v := range m.Payload {
			key := k
			for {
				if _, dup := payload[key]; !dup {
					break
				}
				key += "'"
			}
			payload[key] = v
		}
	}
	return Match{
		ID:         event.Pair(ids...),
		V:          temporal.NewInterval(last.V.Start, first.V.Start.Add(w)),
		RT:         rt,
		FinalizeAt: fin,
		FirstVs:    first.V.Start,
		LastVs:     last.V.Start,
		CBT:        cbt,
		Payload:    payload,
	}
}

func evalSequence(s SequenceExpr, store []event.Event) []Match {
	kids := make([][]Match, len(s.Kids))
	for i, k := range s.Kids {
		kids[i] = eval(k, store)
	}
	var out []Match
	var rec func(depth int, picked []Match)
	rec = func(depth int, picked []Match) {
		if depth == len(kids) {
			out = append(out, Combine(picked, s.W))
			return
		}
		for _, m := range kids[depth] {
			if depth > 0 {
				prev := picked[depth-1]
				if !(prev.V.Start < m.V.Start) {
					continue
				}
				if m.V.Start.Sub(picked[0].V.Start) > s.W {
					continue
				}
			}
			rec(depth+1, append(picked, m))
		}
	}
	rec(0, nil)
	return out
}

func evalAtLeast(a AtLeastExpr, store []event.Event) []Match {
	kids := make([][]Match, len(a.Kids))
	for i, k := range a.Kids {
		kids[i] = eval(k, store)
	}
	var out []Match
	// Choose n distinct positions, then one match per chosen position, then
	// require the picks to have strictly increasing Vs once sorted.
	positions := make([]int, 0, a.N)
	var choosePos func(start int)
	var pick func(idx int, picked []Match)
	pick = func(idx int, picked []Match) {
		if idx == len(positions) {
			sorted := append([]Match(nil), picked...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].V.Start < sorted[j].V.Start })
			for i := 1; i < len(sorted); i++ {
				if !(sorted[i-1].V.Start < sorted[i].V.Start) {
					return
				}
			}
			if len(sorted) > 0 &&
				sorted[len(sorted)-1].V.Start.Sub(sorted[0].V.Start) > a.W {
				return
			}
			out = append(out, Combine(sorted, a.W))
			return
		}
		for _, m := range kids[positions[idx]] {
			pick(idx+1, append(picked, m))
		}
	}
	choosePos = func(start int) {
		if len(positions) == a.N {
			pick(0, nil)
			return
		}
		for i := start; i < len(kids); i++ {
			positions = append(positions, i)
			choosePos(i + 1)
			positions = positions[:len(positions)-1]
		}
	}
	if a.N > 0 && a.N <= len(kids) {
		choosePos(0)
	}
	return dedupe(out)
}

func evalAtMost(a AtMostExpr, store []event.Event) []Match {
	var all []Match
	for _, k := range a.Kids {
		all = append(all, eval(k, store)...)
	}
	var out []Match
	for _, b := range all {
		n := 0
		for _, m := range all {
			if b.V.Start <= m.V.Start && m.V.Start < b.V.Start.Add(a.W) {
				n++
			}
		}
		if n <= a.N {
			m := b
			m.ID = event.Pair(b.ID)
			m.V = temporal.NewInterval(b.V.Start, b.V.Start.Add(a.W))
			m.FinalizeAt = b.V.Start.Add(a.W)
			out = append(out, m)
		}
	}
	return out
}

func evalUnless(u UnlessExpr, store []event.Event) []Match {
	as := eval(u.A, store)
	bs := eval(u.B, store)
	var out []Match
	for _, a := range as {
		blocked := false
		for _, b := range bs {
			if a.V.Start < b.V.Start && b.V.Start < a.V.Start.Add(u.W) &&
				(u.Corr == nil || u.Corr(a.Payload, b.Payload)) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		m := a
		m.ID = event.Pair(a.ID)
		m.V = temporal.NewInterval(a.V.Start, a.V.Start.Add(u.W))
		fin := a.V.Start.Add(u.W)
		if a.FinalizeAt > fin {
			fin = a.FinalizeAt
		}
		m.FinalizeAt = fin
		out = append(out, m)
	}
	return out
}

func evalNot(n NotExpr, store []event.Event) []Match {
	seqs := evalSequence(n.Seq, store)
	negs := eval(n.Neg, store)
	var out []Match
	for _, s := range seqs {
		blocked := false
		for _, e := range negs {
			if s.FirstVs < e.V.Start && e.V.Start < s.LastVs &&
				(n.Corr == nil || n.Corr(s.Payload, e.Payload)) {
				blocked = true
				break
			}
		}
		if !blocked {
			out = append(out, s)
		}
	}
	return out
}

func evalCancelWhen(c CancelWhenExpr, store []event.Event) []Match {
	es := eval(c.E, store)
	cancels := eval(c.Cancel, store)
	var out []Match
	for _, m := range es {
		canceled := false
		for _, x := range cancels {
			if m.RT < x.V.Start && x.V.Start < m.V.Start &&
				(c.Corr == nil || c.Corr(m.Payload, x.Payload)) {
				canceled = true
				break
			}
		}
		if !canceled {
			out = append(out, m)
		}
	}
	return out
}

func dedupe(ms []Match) []Match {
	seen := map[event.ID]bool{}
	out := ms[:0]
	for _, m := range ms {
		if seen[m.ID] {
			continue
		}
		seen[m.ID] = true
		out = append(out, m)
	}
	return out
}
