package algebra

import (
	"sort"

	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/ordkey"
	"repro/internal/temporal"
)

// PatternOp is the streaming implementation of a WHEN-clause expression: an
// operators.Op (single input port carrying all event types) that maintains
// a scope-pruned store of primitive events and emits composite events as
// detections finalize.
//
// The implementation is semi-naive: on each advance it re-derives the
// expression's denotation over the live store and emits the matches that
// (a) have become certain (FinalizeAt covered by the frontier), and (b)
// have not been emitted before. SC modes prune both output and state:
// consumed contributors stop matching immediately (they stay in the store,
// marked, so removals can revive them) — the paper's argument for why
// selection/consumption makes operators like SEQUENCE affordable. Scope
// bounds (every operator has a time-based scope w) prune the rest.
//
// This operator is the frozen reference oracle of the two-path algebra
// design: the production evaluator is the incremental matcher tree in
// package algebra/inc, which must reproduce this operator's output
// byte-for-byte and is differentially tested against it.
//
// Retractions: pattern semantics reference only contributor occurrence
// times (Vs), so lifetime-shrinking retractions are no-ops; a full removal
// (retraction to an empty lifetime) deletes the contributor, retracts every
// emitted output it participated in, and revives instances it had blocked
// or consumed.
type PatternOp struct {
	Expr    Expr
	Mode    SCMode
	OutType string

	store    map[event.ID]event.Event
	consumed map[event.ID]bool
	emitted  map[event.ID]Match
	frontier temporal.Time
	scope    temporal.Duration

	// avail mirrors store minus the consumed set, maintained incrementally
	// (swap-delete, order irrelevant: Denote sorts) so every mature pass
	// derives over a ready slice instead of rebuilding one from a
	// consumed-filtered map scan. availIdx locates an event's slot.
	avail    []event.Event
	availIdx map[event.ID]int

	// aliased marks a handle whose state containers are shared with at
	// least one clone. Mutators materialize a private copy first
	// (copy-on-first-write), so Clone itself is O(1).
	aliased bool
}

// NewPatternOp builds the streaming operator for expr. outType names the
// composite events it emits.
func NewPatternOp(expr Expr, mode SCMode, outType string) *PatternOp {
	if outType == "" {
		outType = "composite"
	}
	scope := expr.MaxScope()
	if scope <= 0 {
		scope = 1
	}
	return &PatternOp{
		Expr:     expr,
		Mode:     mode,
		OutType:  outType,
		store:    map[event.ID]event.Event{},
		consumed: map[event.ID]bool{},
		emitted:  map[event.ID]Match{},
		frontier: temporal.MinTime,
		scope:    scope,
		availIdx: map[event.ID]int{},
	}
}

// availAdd appends e to the available slice (no-op if already present).
func (p *PatternOp) availAdd(e event.Event) {
	if _, ok := p.availIdx[e.ID]; ok {
		p.avail[p.availIdx[e.ID]] = e
		return
	}
	p.availIdx[e.ID] = len(p.avail)
	p.avail = append(p.avail, e)
}

// availRemove swap-deletes e from the available slice if present.
func (p *PatternOp) availRemove(id event.ID) {
	i, ok := p.availIdx[id]
	if !ok {
		return
	}
	last := len(p.avail) - 1
	if i != last {
		p.avail[i] = p.avail[last]
		p.availIdx[p.avail[i].ID] = i
	}
	p.avail = p.avail[:last]
	delete(p.availIdx, id)
}

// Name implements operators.Op.
func (p *PatternOp) Name() string { return "pattern:" + p.Expr.String() }

// Arity implements operators.Op.
func (p *PatternOp) Arity() int { return 1 }

// available lists the unconsumed stored events: the incrementally
// maintained mirror, so the semi-naive path no longer pays a store scan,
// a consumed-map lookup per entry and a fresh slice per derivation. The
// result is owned by the operator; Denote only reads it.
func (p *PatternOp) available() []event.Event { return p.avail }

// mature emits every not-yet-emitted match whose FinalizeAt the frontier
// covers, in deterministic commit order, honoring the SC mode.
func (p *PatternOp) mature() []event.Event {
	ms := ApplySC(Denote(p.Expr, p.available()), p.Mode)
	var outs []event.Event
	for _, m := range ms {
		if m.FinalizeAt > p.frontier {
			continue
		}
		if _, done := p.emitted[m.ID]; done {
			continue
		}
		p.emitted[m.ID] = m
		if p.Mode.Cons == Consume {
			// Consumed instances never contribute again, but their events
			// must stay in the store (marked, and dropped from avail):
			// remove()'s un-consume path revives them, and a deleted event
			// could never re-materialize (blocked instances would stay dead).
			for _, id := range m.CBT {
				if !p.consumed[id] {
					p.consumed[id] = true
					p.availRemove(id)
				}
			}
		}
		outs = append(outs, m.Event(p.OutType))
	}
	return outs
}

// Process implements operators.Op.
func (p *PatternOp) Process(_ int, e event.Event) []event.Event {
	p.ensureOwned()
	if e.Kind == event.Retract {
		if !e.V.Empty() {
			return nil // lifetime shrink: pattern semantics see only Vs
		}
		return p.remove(e.ID)
	}
	if e.V.Start > p.frontier {
		p.frontier = e.V.Start
	}
	ec := e.Clone()
	p.store[e.ID] = ec
	if !p.consumed[e.ID] {
		p.availAdd(ec)
	}
	return p.mature()
}

// remove handles a full removal of a primitive event: retract dependent
// outputs, un-consume their other contributors, re-derive.
func (p *PatternOp) remove(id event.ID) []event.Event {
	if _, ok := p.store[id]; !ok && !p.consumed[id] {
		return nil
	}
	delete(p.store, id)
	p.availRemove(id)
	wasConsumed := p.consumed[id]
	delete(p.consumed, id)

	// Collect the dependent outputs first and retract them in deterministic
	// commit order — map iteration order must not leak into the output
	// stream (the incremental matcher emits the identical sequence).
	var hit []Match
	for _, m := range p.emitted {
		for _, c := range m.CBT {
			if c == id {
				hit = append(hit, m)
				break
			}
		}
	}
	SortMatches(hit)
	var outs []event.Event
	for _, m := range hit {
		r := m.Event(p.OutType)
		r.Kind = event.Retract
		r.V.End = r.V.Start
		outs = append(outs, r)
		delete(p.emitted, m.ID)
		if wasConsumed || p.Mode.Cons == Consume {
			for _, c := range m.CBT {
				if c == id || !p.consumed[c] {
					continue
				}
				delete(p.consumed, c)
				if ev, ok := p.store[c]; ok {
					p.availAdd(ev)
				}
			}
		}
	}
	// Removal (of a blocker or of a consumer's contributor) can make other
	// instances qualify.
	outs = append(outs, p.mature()...)
	return outs
}

// Advance implements operators.Op: move the certainty frontier, emit
// finalized detections, prune state beyond every operator scope.
func (p *PatternOp) Advance(t temporal.Time) []event.Event {
	p.ensureOwned()
	if t > p.frontier {
		p.frontier = t
	}
	outs := p.mature()
	if !p.frontier.IsInfinite() {
		horizon := p.frontier.Add(-p.scope)
		for id, e := range p.store {
			if e.V.Start < horizon {
				delete(p.store, id)
				delete(p.consumed, id)
				p.availRemove(id)
			}
		}
		for id, m := range p.emitted {
			if m.LastVs < horizon {
				delete(p.emitted, id)
			}
		}
	} else {
		p.store = map[event.ID]event.Event{}
		p.consumed = map[event.ID]bool{}
		p.avail = nil
		p.availIdx = map[event.ID]int{}
	}
	return outs
}

// AppendAdvanceKey implements operators.AdvanceOrdered: mature commits
// detections in (FinalizeAt, Vs, FirstVs, ID) order (SortMatches), so that
// tuple is the cross-key position of an Advance output. The just-emitted
// match is still in p.emitted; fall back to the event's own header fields
// if scope pruning already dropped it (same leading attributes, so the
// relative order of co-emitted outputs is preserved).
func (p *PatternOp) AppendAdvanceKey(dst []byte, e event.Event) []byte {
	fin, vs, first := e.V.Start, e.V.Start, e.RT
	if m, ok := p.emitted[e.ID]; ok {
		fin, vs, first = m.FinalizeAt, m.V.Start, m.FirstVs
	}
	dst = ordkey.AppendInt(dst, int64(fin))
	dst = ordkey.AppendInt(dst, int64(vs))
	dst = ordkey.AppendInt(dst, int64(first))
	return ordkey.AppendUint(dst, uint64(e.ID))
}

// OutputGuarantee implements operators.Op: an input guarantee at t
// finalizes every output anchored after t − scope; compensations for
// still-repairable detections can reach back at most one full scope.
func (p *PatternOp) OutputGuarantee(t temporal.Time) temporal.Time {
	if t.IsInfinite() {
		return t
	}
	return t.Add(-p.scope)
}

// StateSize implements operators.Op.
func (p *PatternOp) StateSize() int { return len(p.store) + len(p.emitted) }

// Clone implements operators.Op. The copy is O(1): both handles keep
// sharing the state containers and mark themselves aliased; whichever
// handle mutates first materializes a private copy (clones are driven
// sequentially per the Op contract, so first-write is well-defined).
func (p *PatternOp) Clone() operators.Op {
	c := new(PatternOp)
	*c = *p
	p.aliased = true
	c.aliased = true
	return c
}

// ensureOwned materializes a private copy of state shared with clones; the
// body is the former eager Clone. Handles that still alias the old
// containers are untouched — they keep the state as of the share point.
func (p *PatternOp) ensureOwned() {
	if !p.aliased {
		return
	}
	store, consumed, emitted := p.store, p.consumed, p.emitted
	p.store = make(map[event.ID]event.Event, len(store))
	p.consumed = make(map[event.ID]bool, len(consumed))
	p.emitted = make(map[event.ID]Match, len(emitted))
	p.avail = nil
	p.availIdx = make(map[event.ID]int, len(store))
	p.aliased = false
	for id, e := range store {
		ec := e.Clone()
		p.store[id] = ec
		if !consumed[id] {
			p.availAdd(ec)
		}
	}
	for id, v := range consumed {
		p.consumed[id] = v
	}
	for id, m := range emitted {
		p.emitted[id] = m
	}
}

// SequenceOp is a specialized incremental implementation of
// SEQUENCE(T1, ..., Tk, w) over plain event types: a partial-match chain
// store advanced in arrival (Vs) order, instead of re-deriving the full
// denotation per step. It exists as the optimized counterpart for the
// ablation benchmarks (incremental vs semi-naive pattern matching) and
// supports the same consume-mode pruning.
type SequenceOp struct {
	Types   []string
	W       temporal.Duration
	Mode    SCMode
	OutType string
	Pred    func(event.Payload) bool // over the merged namespaced payload
	Aliases []string

	partials [][]event.Event // partials[i]: matches of length i+1
	frontier temporal.Time
}

// NewSequenceOp builds the specialized sequence matcher.
func NewSequenceOp(types []string, aliases []string, w temporal.Duration, mode SCMode, outType string) *SequenceOp {
	if outType == "" {
		outType = "composite"
	}
	if len(aliases) == 0 {
		aliases = types
	}
	return &SequenceOp{
		Types:    types,
		W:        w,
		Mode:     mode,
		OutType:  outType,
		Aliases:  aliases,
		partials: make([][]event.Event, len(types)),
		frontier: temporal.MinTime,
	}
}

// Name implements operators.Op.
func (s *SequenceOp) Name() string { return "sequence" }

// Arity implements operators.Op.
func (s *SequenceOp) Arity() int { return 1 }

func (s *SequenceOp) merged(chain []event.Event) event.Payload {
	p := event.Payload{}
	for i, e := range chain {
		prefix := s.Aliases[i]
		for k, v := range e.Payload {
			p[prefix+"."+k] = v
		}
	}
	return p
}

// Process implements operators.Op. Events must arrive in Vs order (the
// consistency monitor guarantees it); each event extends existing partial
// chains whose next expected type matches.
func (s *SequenceOp) Process(_ int, e event.Event) []event.Event {
	if e.Kind == event.Retract {
		// Full removals arrive as stragglers and are handled by monitor
		// replay; shrinks are no-ops for Vs-only semantics.
		if e.V.Empty() {
			s.dropContributor(e.ID)
		}
		return nil
	}
	if e.V.Start > s.frontier {
		s.frontier = e.V.Start
	}
	var outs []event.Event
	k := len(s.Types)
	consumedNow := map[event.ID]bool{}
	var drops []event.ID
	// Extend longest chains first so an event cannot extend a chain it just
	// created.
	for i := k - 2; i >= 0; i-- {
		if s.Types[i+1] != e.Type {
			continue
		}
		// partials[i] stores flattened chains of i+1 events each; commit in
		// chronicle order (earliest anchor first), matching ApplySC.
		chains := s.chains(i)
		sortChains(chains)
		for _, chain := range chains {
			if consumedNow[e.ID] {
				break // the trigger itself was consumed by an earlier commit
			}
			if anyConsumed(chain, consumedNow) {
				continue
			}
			first := chain[0]
			if !(chain[len(chain)-1].V.Start < e.V.Start) ||
				e.V.Start.Sub(first.V.Start) > s.W {
				continue
			}
			ext := append(append([]event.Event{}, chain...), e.Clone())
			if i+1 == k-1 {
				// Complete.
				p := s.merged(ext)
				if s.Pred != nil && !s.Pred(p) {
					continue
				}
				ids := make([]event.ID, len(ext))
				mids := make([]event.ID, len(ext))
				for j, c := range ext {
					ids[j] = c.ID
					mids[j] = event.Pair(c.ID) // primitive match IDs, as the generic evaluator derives them
				}
				out := event.Event{
					ID:      event.Pair(mids...),
					Kind:    event.Insert,
					Type:    s.OutType,
					V:       temporal.NewInterval(e.V.Start, first.V.Start.Add(s.W)),
					O:       temporal.From(e.V.Start),
					RT:      first.V.Start,
					CBT:     ids,
					Payload: p,
				}
				outs = append(outs, out)
				if s.Mode.Cons == Consume {
					// Record the consumption and defer the physical drop to
					// after the loop: dropContributor compacts the chain
					// storage in place, which must not run while `chains`
					// headers alias it. The consumedNow guard gives the
					// in-loop semantics the immediate drop used to.
					for _, c := range ext {
						consumedNow[c.ID] = true
						drops = append(drops, c.ID)
					}
				}
			} else {
				s.partials[i+1] = append(s.partials[i+1], ext...)
			}
		}
	}
	for _, id := range drops {
		s.dropContributor(id)
	}
	if s.Types[0] == e.Type {
		s.partials[0] = append(s.partials[0], e.Clone())
	}
	return outs
}

func sortChains(chains [][]event.Event) {
	// Stable: chains anchored at the same instant must keep arrival order,
	// which is the tiebreak the consume-mode commit loop relies on.
	sort.SliceStable(chains, func(i, j int) bool {
		return chains[i][0].V.Start < chains[j][0].V.Start
	})
}

func anyConsumed(chain []event.Event, consumed map[event.ID]bool) bool {
	for _, c := range chain {
		if consumed[c.ID] {
			return true
		}
	}
	return false
}

// chains reconstructs the chain list at level i from the flattened storage.
func (s *SequenceOp) chains(i int) [][]event.Event {
	width := i + 1
	flat := s.partials[i]
	var out [][]event.Event
	for j := 0; j+width <= len(flat); j += width {
		out = append(out, flat[j:j+width])
	}
	return out
}

func (s *SequenceOp) dropContributor(id event.ID) {
	for lvl := range s.partials {
		width := lvl + 1
		flat := s.partials[lvl]
		kept := flat[:0] // filter in place: the kept prefix reuses the backing array
		for j := 0; j+width <= len(flat); j += width {
			chain := flat[j : j+width]
			has := false
			for _, c := range chain {
				if c.ID == id {
					has = true
					break
				}
			}
			if !has {
				kept = append(kept, chain...)
			}
		}
		s.partials[lvl] = kept
	}
}

// Advance implements operators.Op: prune chains whose scope has expired.
func (s *SequenceOp) Advance(t temporal.Time) []event.Event {
	if t > s.frontier {
		s.frontier = t
	}
	if s.frontier.IsInfinite() {
		s.partials = make([][]event.Event, len(s.Types))
		return nil
	}
	horizon := s.frontier.Add(-s.W)
	for lvl := range s.partials {
		width := lvl + 1
		flat := s.partials[lvl]
		kept := flat[:0]
		for j := 0; j+width <= len(flat); j += width {
			if flat[j].V.Start >= horizon {
				kept = append(kept, flat[j:j+width]...)
			}
		}
		s.partials[lvl] = kept
	}
	return nil
}

// OutputGuarantee implements operators.Op.
func (s *SequenceOp) OutputGuarantee(t temporal.Time) temporal.Time {
	if t.IsInfinite() {
		return t
	}
	return t.Add(-s.W)
}

// StateSize implements operators.Op.
func (s *SequenceOp) StateSize() int {
	n := 0
	for lvl, flat := range s.partials {
		width := lvl + 1
		n += len(flat) / width
	}
	return n
}

// Clone implements operators.Op.
func (s *SequenceOp) Clone() operators.Op {
	c := NewSequenceOp(s.Types, s.Aliases, s.W, s.Mode, s.OutType)
	c.Pred = s.Pred
	c.frontier = s.frontier
	c.partials = make([][]event.Event, len(s.partials))
	for i, flat := range s.partials {
		cp := make([]event.Event, len(flat))
		for j, e := range flat {
			cp[j] = e.Clone()
		}
		c.partials[i] = cp
	}
	return c
}
