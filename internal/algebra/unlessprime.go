package algebra

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/temporal"
)

// UnlessPrimeExpr is the paper's UNLESS' variant — UNLESS(E1, E2, n, w) in
// the §3.3.2 operator table: the start of the negation scope is not E1's
// own occurrence but that of E1's n-th contributor (1-based), giving
// queries control over where the non-occurrence window anchors.
//
// Per the table: E1 survives iff there is no (correlated) E2 with
// cbt[n].Vs < e2.Vs < cbt[n].Vs + w, and the output's start valid time is
// the later of E1's start and the end of the negation scope. The paper
// itself leaves UNLESS' "open to discussion"; this is the literal reading.
type UnlessPrimeExpr struct {
	A       Expr
	B       Expr
	N       int // 1-based contributor index anchoring the negation scope
	W       temporal.Duration
	Corr    CorrPred
	CorrKey string // pushdown annotation; see CorrPred's doc in expr.go
}

// MaxScope implements Expr.
func (u UnlessPrimeExpr) MaxScope() temporal.Duration {
	return u.W + maxDur(u.A.MaxScope(), u.B.MaxScope())
}

// String implements Expr.
func (u UnlessPrimeExpr) String() string {
	return fmt.Sprintf("UNLESS(%s, %s, %d, %s)", u.A, u.B, u.N, u.W)
}

// Validate performs the compile-time check the paper requires: the
// sequence specified by E1's cbt[] must have length at least n. It can
// only be checked statically when A is a flat sequence.
func (u UnlessPrimeExpr) Validate() error {
	if u.N < 1 {
		return fmt.Errorf("algebra: UNLESS' contributor index %d must be >= 1", u.N)
	}
	if seq, ok := u.A.(SequenceExpr); ok && u.N > len(seq.Kids) {
		return fmt.Errorf("algebra: UNLESS' index %d exceeds sequence length %d",
			u.N, len(seq.Kids))
	}
	return nil
}

func evalUnlessPrime(u UnlessPrimeExpr, store []event.Event) []Match {
	// Contributor occurrence times, looked up by primitive event ID.
	vsOf := make(map[event.ID]temporal.Time, len(store))
	for _, e := range store {
		if e.Kind == event.Insert {
			vsOf[e.ID] = e.V.Start
		}
	}
	as := eval(u.A, store)
	bs := eval(u.B, store)
	var out []Match
	for _, a := range as {
		if u.N > len(a.CBT) {
			continue // runtime arity mismatch: no anchor, no output
		}
		anchor, ok := vsOf[a.CBT[u.N-1]]
		if !ok {
			continue
		}
		scopeEnd := anchor.Add(u.W)
		blocked := false
		for _, b := range bs {
			if anchor < b.V.Start && b.V.Start < scopeEnd &&
				(u.Corr == nil || u.Corr(a.Payload, b.Payload)) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		m := a
		m.ID = event.Pair(a.ID, event.ID(u.N))
		vs := temporal.Max(a.V.Start, scopeEnd)
		ve := a.FirstVs.Add(u.W)
		if ve <= vs {
			ve = vs.Add(1) // degenerate scopes still mark the detection instant
		}
		m.V = temporal.NewInterval(vs, ve)
		fin := scopeEnd
		if a.FinalizeAt > fin {
			fin = a.FinalizeAt
		}
		m.FinalizeAt = fin
		out = append(out, m)
	}
	return out
}
