package algebra

// ExprCostNs estimates the per-event processing cost of a pattern
// expression in nanoseconds, for the engine's overhead-aware shard-count
// heuristic (operators.CostHint). The classes are coarse, calibrated
// against the cedrbench single-core suite: negation scopes dominate
// (candidate × blocker bookkeeping plus window finalization), joins cost
// per contributor position, leaves are near-free.
func ExprCostNs(e Expr) int {
	switch x := e.(type) {
	case TypeExpr:
		return 100
	case FilterExpr:
		return 100 + ExprCostNs(x.Kid)
	case SequenceExpr:
		return kidsCostNs(x.Kids, 400)
	case AtLeastExpr:
		return kidsCostNs(x.Kids, 400)
	case AtMostExpr:
		return kidsCostNs(x.Kids, 500)
	case UnlessExpr:
		return 1500 + ExprCostNs(x.A) + ExprCostNs(x.B)
	case UnlessPrimeExpr:
		return 1500 + ExprCostNs(x.A) + ExprCostNs(x.B)
	case NotExpr:
		return 1500 + ExprCostNs(x.Neg) + ExprCostNs(x.Seq)
	case CancelWhenExpr:
		return 1500 + ExprCostNs(x.E) + ExprCostNs(x.Cancel)
	default:
		return 1000
	}
}

func kidsCostNs(kids []Expr, perJoin int) int {
	c := 0
	for _, k := range kids {
		c += perJoin + ExprCostNs(k)
	}
	return c
}

// PerEventCostNs implements operators.CostHint: the semi-naive evaluator
// re-derives matches from the full store on every push, so it costs a
// multiple of the incremental tree's delta propagation.
func (p *PatternOp) PerEventCostNs() int { return 3 * ExprCostNs(p.Expr) }
