package algebra

import (
	"testing"

	"repro/internal/event"
)

func TestUnlessPrimeAnchorsAtContributor(t *testing.T) {
	// UNLESS'(SEQUENCE(A, B, 100), C, n=1, w=10): the negation scope starts
	// at the FIRST contributor (the A), not at the sequence's detection.
	expr := UnlessPrimeExpr{
		A: SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 100},
		B: typ("C", "c"), N: 1, W: 10,
	}
	if err := expr.Validate(); err != nil {
		t.Fatal(err)
	}
	// C at 5 is inside (0, 10) — the scope anchored at A@0 — so it blocks,
	// even though it is far from the detection at B@50.
	store := []event.Event{ev(1, "A", 0), ev(2, "B", 50), ev(3, "C", 5)}
	if ms := Denote(expr, store); len(ms) != 0 {
		t.Fatalf("C inside the anchored scope must block: %+v", ms)
	}
	// C at 30 is outside (0, 10): no block. With plain UNLESS anchored at
	// the detection, the same C would be irrelevant for a different reason;
	// the distinguishing case is C at 55, inside the detection-anchored
	// window but outside the contributor-anchored one.
	store = []event.Event{ev(1, "A", 0), ev(2, "B", 50), ev(3, "C", 55)}
	ms := Denote(expr, store)
	if len(ms) != 1 {
		t.Fatalf("C outside the anchored scope must not block: %+v", ms)
	}
	// Output start: the later of E1's Vs (50) and the scope end (10) = 50.
	if ms[0].V.Start != 50 {
		t.Errorf("output Vs = %v, want 50", ms[0].V.Start)
	}
	// Contrast: plain UNLESS anchored at the detection IS blocked by C@55.
	plain := UnlessExpr{
		A: SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 100},
		B: typ("C", "c"), W: 10,
	}
	if ms := Denote(plain, store); len(ms) != 0 {
		t.Fatalf("plain UNLESS must block on C@55: %+v", ms)
	}
}

func TestUnlessPrimeSecondContributor(t *testing.T) {
	expr := UnlessPrimeExpr{
		A: SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 100},
		B: typ("C", "c"), N: 2, W: 10,
	}
	// Scope anchored at B@50: C@55 blocks, C@5 does not.
	store := []event.Event{ev(1, "A", 0), ev(2, "B", 50), ev(3, "C", 55)}
	if ms := Denote(expr, store); len(ms) != 0 {
		t.Fatal("C within the B-anchored scope must block")
	}
	store[2] = ev(3, "C", 5)
	if ms := Denote(expr, store); len(ms) != 1 {
		t.Fatal("C before the sequence must not block")
	}
}

func TestUnlessPrimeFinalizeAtScopeEnd(t *testing.T) {
	expr := UnlessPrimeExpr{
		A: SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 100},
		B: typ("C", "c"), N: 1, W: 10,
	}
	store := []event.Event{ev(1, "A", 0), ev(2, "B", 50)}
	ms := Denote(expr, store)
	if len(ms) != 1 {
		t.Fatal("expected one match")
	}
	// The detection (B@50) already happens after the negation scope closes
	// (10), so certainty arrives with the detection itself.
	if ms[0].FinalizeAt != 50 {
		t.Errorf("FinalizeAt = %v, want 50", ms[0].FinalizeAt)
	}
}

func TestUnlessPrimeValidation(t *testing.T) {
	bad := UnlessPrimeExpr{
		A: SequenceExpr{Kids: []Expr{typ("A", ""), typ("B", "")}, W: 10},
		B: typ("C", ""), N: 3, W: 5,
	}
	if err := bad.Validate(); err == nil {
		t.Error("index beyond sequence length must be rejected")
	}
	if err := (UnlessPrimeExpr{A: typ("A", ""), B: typ("C", ""), N: 0, W: 5}).Validate(); err == nil {
		t.Error("index 0 must be rejected")
	}
	if (UnlessPrimeExpr{A: typ("A", ""), B: typ("B", ""), N: 1, W: 5}).String() == "" {
		t.Error("empty String")
	}
}

func TestUnlessPrimeStreaming(t *testing.T) {
	// The generic PatternOp executes UNLESS' via the shared denotation.
	expr := UnlessPrimeExpr{
		A: SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 100},
		B: typ("C", "c"), N: 1, W: 10,
	}
	op := NewPatternOp(expr, SCMode{}, "out")
	var outs []event.Event
	outs = append(outs, op.Process(0, ev(1, "A", 0))...)
	// The scope (anchored at A@0, closing at 10) is already past when the
	// detection completes at B@50, so the output finalizes immediately.
	outs = append(outs, op.Process(0, ev(2, "B", 50))...)
	outs = append(outs, op.Advance(200)...)
	if len(outs) != 1 {
		t.Fatalf("streaming UNLESS' outputs = %v", outs)
	}
}
