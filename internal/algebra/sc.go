package algebra

import (
	"fmt"

	"repro/internal/event"
)

// Selection picks which qualifying instances produce output (§3.2 "instance
// selection").
type Selection uint8

// Selection policies.
const (
	// SelectEach outputs every qualifying combination.
	SelectEach Selection = iota
	// SelectFirst keeps, among instances detected at the same instant,
	// only the one anchored at the earliest first contributor.
	SelectFirst
	// SelectLast keeps only the one anchored at the latest first
	// contributor (the most recent partial match).
	SelectLast
)

// Consumption decides whether contributors may participate in future
// outputs (§3.2 "instance consumption").
type Consumption uint8

// Consumption policies.
const (
	// Reuse leaves contributors available to later instances.
	Reuse Consumption = iota
	// Consume removes an output's contributors from further matching —
	// the policy that keeps operators like SEQUENCE from producing output
	// multiplicative in the input size.
	Consume
)

// SCMode bundles an instance selection and consumption policy. In CEDR the
// SC mode is decoupled from operator semantics and specified per query
// (§3.2); the zero value (each, reuse) is the unconstrained denotation.
type SCMode struct {
	Sel  Selection
	Cons Consumption
}

// String implements fmt.Stringer.
func (m SCMode) String() string {
	sel := [...]string{"each", "first", "last"}[m.Sel]
	cons := [...]string{"reuse", "consume"}[m.Cons]
	return fmt.Sprintf("sc(%s,%s)", sel, cons)
}

// ParseSelection converts language syntax to a Selection.
func ParseSelection(s string) (Selection, error) {
	switch s {
	case "", "each", "EACH":
		return SelectEach, nil
	case "first", "FIRST":
		return SelectFirst, nil
	case "last", "LAST":
		return SelectLast, nil
	}
	return 0, fmt.Errorf("algebra: unknown selection policy %q", s)
}

// ParseConsumption converts language syntax to a Consumption.
func ParseConsumption(s string) (Consumption, error) {
	switch s {
	case "", "reuse", "REUSE":
		return Reuse, nil
	case "consume", "CONSUME":
		return Consume, nil
	}
	return 0, fmt.Errorf("algebra: unknown consumption policy %q", s)
}

// ApplySC filters a finalize-ordered match list under the SC mode,
// committing detections in deterministic (FinalizeAt, Vs, ID) order — the
// order in which a streaming evaluation commits them. Selection and
// consumption interleave per detection group: instances whose contributors
// an earlier commit consumed are no longer candidates when their group's
// selection runs, exactly as in the incremental evaluation where consumed
// instances leave the store immediately.
func ApplySC(ms []Match, mode SCMode) []Match {
	if mode.Sel == SelectEach && mode.Cons == Reuse {
		return ms
	}
	SortMatches(ms)
	var consumed map[event.ID]bool
	if mode.Cons == Consume {
		consumed = map[event.ID]bool{}
	}
	var out []Match
	for i := 0; i < len(ms); {
		j := i
		for j < len(ms) && ms[j].FinalizeAt == ms[i].FinalizeAt && ms[j].LastVs == ms[i].LastVs {
			j++
		}
		out = CommitGroup(ms[i:j], mode, consumed, out)
		i = j
	}
	return out
}

// CommitGroup applies the SC mode to one detection group — a maximal run
// of matches sharing (FinalizeAt, LastVs) in commit order — threading the
// cross-group consumed set (nil under reuse consumption), and appends the
// committed matches to out. It is the single definition of the
// selection/consumption rule: ApplySC (the semi-naive oracle) and the
// incremental Op's per-group commit (package algebra/inc) both call it,
// which is what keeps the two evaluation paths byte-identical here by
// construction.
func CommitGroup(group []Match, mode SCMode, consumed map[event.ID]bool, out []Match) []Match {
	viable := func(m *Match) bool {
		if mode.Cons != Consume {
			return true
		}
		for _, id := range m.CBT {
			if consumed[id] {
				return false
			}
		}
		return true
	}
	commit := func(m Match) {
		if mode.Cons == Consume {
			for _, id := range m.CBT {
				consumed[id] = true
			}
		}
		out = append(out, m)
	}
	if mode.Sel == SelectEach {
		for gi := range group {
			if viable(&group[gi]) {
				commit(group[gi])
			}
		}
		return out
	}
	var best *Match
	for gi := range group {
		c := &group[gi]
		if !viable(c) {
			continue
		}
		if best == nil {
			best = c
			continue
		}
		switch mode.Sel {
		case SelectFirst:
			if c.FirstVs < best.FirstVs || (c.FirstVs == best.FirstVs && c.ID < best.ID) {
				best = c
			}
		case SelectLast:
			if c.FirstVs > best.FirstVs || (c.FirstVs == best.FirstVs && c.ID < best.ID) {
				best = c
			}
		}
	}
	if best != nil {
		commit(*best)
	}
	return out
}
