// Package algebra implements the CEDR pattern algebra of Section 3: the
// logical operators of the WHEN clause (SEQUENCE, ATLEAST, ATMOST, ALL, ANY,
// the negation operators UNLESS and NOT, and CANCEL-WHEN), together with
// predicate injection from the WHERE clause and instance selection and
// consumption (SC modes).
//
// The algebra has a two-path design:
//
//   - this package holds the frozen reference path: an executable
//     transcription of the paper's denotational semantics (denote.go)
//     and a semi-naive streaming operator (op.go, PatternOp) that
//     re-derives that denotation over its scope-pruned store as
//     detections finalize — simple, obviously correct, slow; and
//   - package algebra/inc holds the production path: a delta-driven
//     incremental matcher tree covering the same grammar, held
//     byte-compatible with this package by randomized differential
//     tests (outputs, order tags, metrics, state counts).
package algebra

import (
	"fmt"
	"strings"

	"repro/internal/event"
	"repro/internal/temporal"
)

// Expr is a pattern expression of the WHEN clause. Every operator parameter
// is itself an expression, which is what makes the language fully
// composable (§3.2); the simplest expression is an event type.
type Expr interface {
	// MaxScope bounds how long a primitive event can remain relevant to
	// the expression; it drives operator-state pruning.
	MaxScope() temporal.Duration
	// String renders the expression in CEDR query syntax.
	String() string
}

// TypeExpr matches all events of one event type, optionally bound to an
// alias (the AS construct) for use in WHERE predicates. The contributor's
// payload appears in composite outputs under "<alias>." (or "<type>." when
// unaliased).
type TypeExpr struct {
	Type  string
	Alias string
}

// Prefix is the namespace this contributor's payload occupies in composite
// payloads.
func (t TypeExpr) Prefix() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Type
}

// MaxScope implements Expr.
func (t TypeExpr) MaxScope() temporal.Duration { return 0 }

// String implements Expr.
func (t TypeExpr) String() string {
	if t.Alias != "" {
		return t.Type + " AS " + t.Alias
	}
	return t.Type
}

// SequenceExpr is SEQUENCE(E1, ..., Ek, w): contributors in strictly
// increasing Vs order, with the last at most w after the first. The output
// is valid over [ek.Vs, e1.Vs + w).
type SequenceExpr struct {
	Kids []Expr
	W    temporal.Duration
}

// MaxScope implements Expr.
func (s SequenceExpr) MaxScope() temporal.Duration { return s.W + kidsScope(s.Kids) }

// String implements Expr.
func (s SequenceExpr) String() string { return nary("SEQUENCE", s.Kids, s.W) }

// AtLeastExpr is ATLEAST(n, E1, ..., Ek, w): any n contributors drawn from
// n distinct parameter positions, in increasing Vs order within w.
type AtLeastExpr struct {
	N    int
	Kids []Expr
	W    temporal.Duration
}

// MaxScope implements Expr.
func (a AtLeastExpr) MaxScope() temporal.Duration { return a.W + kidsScope(a.Kids) }

// String implements Expr.
func (a AtLeastExpr) String() string {
	return fmt.Sprintf("ATLEAST(%d, %s, %s)", a.N, kidList(a.Kids), a.W)
}

// All is ALL(E1, ..., Ek, w) ≡ ATLEAST(k, E1, ..., Ek, w).
func All(w temporal.Duration, kids ...Expr) AtLeastExpr {
	return AtLeastExpr{N: len(kids), Kids: kids, W: w}
}

// Any is ANY(E1, ..., Ek) ≡ ATLEAST(1, E1, ..., Ek, 1).
func Any(kids ...Expr) AtLeastExpr {
	return AtLeastExpr{N: 1, Kids: kids, W: 1}
}

// AtMostExpr is ATMOST(n, E1, ..., Ek, w). The paper defines it as
// syntactic sugar over a sliding-window count; we concretize it as: for
// each anchor event b among the contributors, output at b.Vs+w if at most n
// contributor events (including b) occurred in [b.Vs, b.Vs+w). Like UNLESS
// it can only finalize when the window closes.
type AtMostExpr struct {
	N    int
	Kids []Expr
	W    temporal.Duration
}

// MaxScope implements Expr.
func (a AtMostExpr) MaxScope() temporal.Duration { return a.W + kidsScope(a.Kids) }

// String implements Expr.
func (a AtMostExpr) String() string {
	return fmt.Sprintf("ATMOST(%d, %s, %s)", a.N, kidList(a.Kids), a.W)
}

// CorrPred correlates a candidate output with a negative-side event; it is
// how WHERE predicates that mention a negated alias are injected into the
// negation operator (the paper's "predicate injection", §3.2).
type CorrPred func(pos, neg event.Payload) bool

// The CorrKey field on the negation expressions below is an optimizer
// annotation, set by the semantic analyzer when the site's Corr predicate
// is provably false whenever the positive and negative sides carry
// definite, unequal values of the named payload attribute — the property a
// CorrelationKey(attr, EQUAL) clause guarantees. The denotational
// semantics and the semi-naive oracle ignore it entirely; the incremental
// matcher tree (package algebra/inc) uses it to key the site's candidate
// and blocker stores by the attribute's value. Empty means no such proof.

// UnlessExpr is UNLESS(E1, E2, w): an E1 occurrence followed by no
// (correlated) E2 occurrence in the next w time units. The negation scope
// starts at the E1 occurrence. Output is valid over [e1.Vs, e1.Vs + w).
type UnlessExpr struct {
	A       Expr
	B       Expr
	W       temporal.Duration
	Corr    CorrPred // nil = any B event blocks
	CorrKey string   // pushdown annotation; see CorrPred's doc
}

// MaxScope implements Expr.
func (u UnlessExpr) MaxScope() temporal.Duration {
	return u.W + maxDur(u.A.MaxScope(), u.B.MaxScope())
}

// String implements Expr.
func (u UnlessExpr) String() string {
	return fmt.Sprintf("UNLESS(%s, %s, %s)", u.A, u.B, u.W)
}

// NotExpr is NOT(E, SEQUENCE(E1, ..., Ek, w)): the sequence's detections,
// minus those with a (correlated) E occurrence strictly between the first
// and last contributors.
type NotExpr struct {
	Neg     Expr
	Seq     SequenceExpr
	Corr    CorrPred
	CorrKey string // pushdown annotation; see CorrPred's doc
}

// MaxScope implements Expr.
func (n NotExpr) MaxScope() temporal.Duration {
	return maxDur(n.Seq.MaxScope(), n.Neg.MaxScope()+n.Seq.W)
}

// String implements Expr.
func (n NotExpr) String() string { return fmt.Sprintf("NOT(%s, %s)", n.Neg, n.Seq) }

// CancelWhenExpr is CANCEL-WHEN(E1, E2): E1's detections, minus those whose
// partial detection window (root time to detection time) contains a
// (correlated) E2 occurrence.
type CancelWhenExpr struct {
	E       Expr
	Cancel  Expr
	Corr    CorrPred
	CorrKey string // pushdown annotation; see CorrPred's doc
}

// MaxScope implements Expr.
func (c CancelWhenExpr) MaxScope() temporal.Duration {
	return c.E.MaxScope() + c.Cancel.MaxScope()
}

// String implements Expr.
func (c CancelWhenExpr) String() string {
	return fmt.Sprintf("CANCEL-WHEN(%s, %s)", c.E, c.Cancel)
}

// FilterExpr injects a WHERE predicate over the (namespaced) payload of a
// sub-expression's outputs.
type FilterExpr struct {
	Kid  Expr
	Pred func(event.Payload) bool
	Desc string
}

// MaxScope implements Expr.
func (f FilterExpr) MaxScope() temporal.Duration { return f.Kid.MaxScope() }

// String implements Expr.
func (f FilterExpr) String() string {
	if f.Desc != "" {
		return fmt.Sprintf("%s WHERE %s", f.Kid, f.Desc)
	}
	return fmt.Sprintf("FILTER(%s)", f.Kid)
}

func kidsScope(kids []Expr) temporal.Duration {
	var m temporal.Duration
	for _, k := range kids {
		if s := k.MaxScope(); s > m {
			m = s
		}
	}
	return m
}

func maxDur(a, b temporal.Duration) temporal.Duration {
	if a > b {
		return a
	}
	return b
}

func kidList(kids []Expr) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return strings.Join(parts, ", ")
}

func nary(name string, kids []Expr, w temporal.Duration) string {
	return fmt.Sprintf("%s(%s, %s)", name, kidList(kids), w)
}

// Types collects the event types an expression consumes.
func Types(e Expr) []string {
	set := map[string]bool{}
	collectTypes(e, set)
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	return out
}

func collectTypes(e Expr, set map[string]bool) {
	switch x := e.(type) {
	case TypeExpr:
		set[x.Type] = true
	case SequenceExpr:
		for _, k := range x.Kids {
			collectTypes(k, set)
		}
	case AtLeastExpr:
		for _, k := range x.Kids {
			collectTypes(k, set)
		}
	case AtMostExpr:
		for _, k := range x.Kids {
			collectTypes(k, set)
		}
	case UnlessExpr:
		collectTypes(x.A, set)
		collectTypes(x.B, set)
	case UnlessPrimeExpr:
		collectTypes(x.A, set)
		collectTypes(x.B, set)
	case NotExpr:
		collectTypes(x.Neg, set)
		collectTypes(x.Seq, set)
	case CancelWhenExpr:
		collectTypes(x.E, set)
		collectTypes(x.Cancel, set)
	case FilterExpr:
		collectTypes(x.Kid, set)
	}
}
