// Package inc is the incremental pattern-matching subsystem: a matcher
// tree that maintains the denotation of a WHEN-clause expression (package
// algebra) under a stream of primitive-event insertions, removals and
// scope-pruning advances by propagating *deltas* — new and retracted
// matches — instead of re-deriving the expression over the full store on
// every step (the semi-naive strategy of algebra.PatternOp, which this
// package keeps as its frozen reference oracle).
//
// Every algebra.Expr node compiles to a stateful matcher node holding
// time-indexed contributor stores and partial matches:
//
//   - TYPE        → leaf: the live primitive matches of one event type
//   - SEQUENCE    → per-position sorted match lists joined incrementally
//   - ATLEAST     → position-subset join with output reference counts
//   - ATMOST      → sliding-window anchor counts
//   - UNLESS, UNLESS', NOT, CANCEL-WHEN → candidate stores with per-
//     candidate blocker counts over an indexed negative-side store
//   - FILTER      → stateless delta filter
//
// The node contract: after any sequence of push/remove/prune calls, the
// node's live output set equals algebra.Denote of its sub-expression over
// the primitive events currently live in its leaves. Deltas report every
// transition of that set, in order, so a parent (or the driving Op, op.go)
// never re-derives. Negation nodes hold pending candidates and flip them
// as blockers arrive and leave; the driving Op decides *emission* (the
// FinalizeAt frontier and SC modes) exactly as the oracle does.
package inc

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/temporal"
)

// item is one match transition.
type item struct {
	m   algebra.Match
	del bool
}

// delta is an ordered batch of match transitions flowing up the tree.
// Order matters: one primitive event can both add and retract matches of
// the same node (an event may contribute to a positive side and block on a
// negative side at once), and applying transitions out of order would leave
// a parent's mirror of its child inconsistent.
type delta struct {
	items []item
}

func (d *delta) add(m algebra.Match) { d.items = append(d.items, item{m: m}) }
func (d *delta) del(m algebra.Match) { d.items = append(d.items, item{m: m, del: true}) }

// shared is tree-global state owned by the driving Op: the occurrence times
// of the available (live, unconsumed) primitive events. UNLESS' nodes
// resolve their anchor contributor through it at candidate-creation time.
type shared struct {
	vs map[event.ID]temporal.Time
}

// node is one stateful matcher in the tree.
type node interface {
	// push feeds one primitive event (insert); the node dispatches it to
	// its children and folds their deltas into its own state.
	push(e event.Event) delta
	// remove feeds a full removal of a primitive event by ID.
	remove(id event.ID) delta
	// prune drops state derived from events with Vs < horizon, exactly as
	// the oracle's store pruning does: silently below the driver (the
	// returned delta lets parents stay consistent and lets negation nodes
	// surface revivals, but never turns into output retractions).
	prune(horizon temporal.Time) delta
	// clone deep-copies the node, rebinding it to sh.
	clone(sh *shared) node
}

// Supported reports whether the expression grammar is fully covered by the
// matcher tree. It mirrors build: any new Expr kind must extend both.
func Supported(x algebra.Expr) bool {
	switch e := x.(type) {
	case algebra.TypeExpr:
		return true
	case algebra.SequenceExpr:
		return allSupported(e.Kids)
	case algebra.AtLeastExpr:
		return allSupported(e.Kids)
	case algebra.AtMostExpr:
		return allSupported(e.Kids)
	case algebra.UnlessExpr:
		return Supported(e.A) && Supported(e.B)
	case algebra.UnlessPrimeExpr:
		return Supported(e.A) && Supported(e.B)
	case algebra.NotExpr:
		return Supported(e.Neg) && Supported(e.Seq)
	case algebra.CancelWhenExpr:
		return Supported(e.E) && Supported(e.Cancel)
	case algebra.FilterExpr:
		return Supported(e.Kid)
	default:
		return false
	}
}

func allSupported(kids []algebra.Expr) bool {
	for _, k := range kids {
		if !Supported(k) {
			return false
		}
	}
	return true
}

// build compiles an expression into its matcher node. Callers must have
// checked Supported; unknown kinds panic.
func build(x algebra.Expr, sh *shared) node {
	switch e := x.(type) {
	case algebra.TypeExpr:
		return newLeaf(e)
	case algebra.SequenceExpr:
		return newSeqNode(e, sh)
	case algebra.AtLeastExpr:
		return newAtLeastNode(e, sh)
	case algebra.AtMostExpr:
		return newAtMostNode(e, sh)
	case algebra.UnlessExpr:
		return newNegNode(negUnless, build(e.A, sh), build(e.B, sh), e.W, 0, e.Corr, sh)
	case algebra.UnlessPrimeExpr:
		return newNegNode(negUnlessPrime, build(e.A, sh), build(e.B, sh), e.W, e.N, e.Corr, sh)
	case algebra.NotExpr:
		return newNegNode(negNot, build(e.Seq, sh), build(e.Neg, sh), 0, 0, e.Corr, sh)
	case algebra.CancelWhenExpr:
		return newNegNode(negCancelWhen, build(e.E, sh), build(e.Cancel, sh), 0, 0, e.Corr, sh)
	case algebra.FilterExpr:
		return &filterNode{kid: build(e.Kid, sh), pred: e.Pred}
	default:
		panic("inc: unsupported expression " + x.String())
	}
}

// matchList is a set of matches kept sorted by (V.Start, ID) with binary
// range queries over occurrence time — the time-indexed contributor store
// every join node uses.
type matchList struct {
	ms []algebra.Match
}

func matchBefore(a, b *algebra.Match) bool {
	if a.V.Start != b.V.Start {
		return a.V.Start < b.V.Start
	}
	return a.ID < b.ID
}

func (l *matchList) insert(m algebra.Match) {
	i := sort.Search(len(l.ms), func(i int) bool { return !matchBefore(&l.ms[i], &m) })
	l.ms = append(l.ms, algebra.Match{})
	copy(l.ms[i+1:], l.ms[i:])
	l.ms[i] = m
}

// removeMatch deletes the entry equal to m (by ID at m's occurrence time).
func (l *matchList) removeMatch(m algebra.Match) bool {
	i := sort.Search(len(l.ms), func(i int) bool { return !matchBefore(&l.ms[i], &m) })
	if i < len(l.ms) && l.ms[i].ID == m.ID && l.ms[i].V.Start == m.V.Start {
		l.ms = append(l.ms[:i], l.ms[i+1:]...)
		return true
	}
	return false
}

// lowerBound is the first index with V.Start >= t.
func (l *matchList) lowerBound(t temporal.Time) int {
	return sort.Search(len(l.ms), func(i int) bool { return l.ms[i].V.Start >= t })
}

// upperBound is the first index with V.Start > t.
func (l *matchList) upperBound(t temporal.Time) int {
	return sort.Search(len(l.ms), func(i int) bool { return l.ms[i].V.Start > t })
}

func (l *matchList) clone() matchList {
	return matchList{ms: append([]algebra.Match(nil), l.ms...)}
}

// leafNode matches all primitive events of one type (algebra.TypeExpr).
type leafNode struct {
	t      algebra.TypeExpr
	prefix string
	live   map[event.ID]algebra.Match // keyed by primitive event ID
}

func newLeaf(t algebra.TypeExpr) *leafNode {
	return &leafNode{t: t, prefix: t.Prefix(), live: map[event.ID]algebra.Match{}}
}

func (l *leafNode) push(e event.Event) delta {
	var d delta
	if e.Kind != event.Insert || e.Type != l.t.Type {
		return d
	}
	p := make(event.Payload, len(e.Payload))
	for k, v := range e.Payload {
		p[l.prefix+"."+k] = v
	}
	m := algebra.Match{
		ID:         event.Pair(e.ID),
		V:          e.V,
		RT:         e.V.Start,
		FinalizeAt: e.V.Start,
		FirstVs:    e.V.Start,
		LastVs:     e.V.Start,
		CBT:        []event.ID{e.ID},
		Payload:    p,
	}
	l.live[e.ID] = m
	d.add(m)
	return d
}

func (l *leafNode) remove(id event.ID) delta {
	var d delta
	if m, ok := l.live[id]; ok {
		delete(l.live, id)
		d.del(m)
	}
	return d
}

func (l *leafNode) prune(horizon temporal.Time) delta {
	var d delta
	for id, m := range l.live {
		if m.V.Start < horizon {
			delete(l.live, id)
			d.del(m)
		}
	}
	return d
}

func (l *leafNode) clone(*shared) node {
	c := newLeaf(l.t)
	for id, m := range l.live {
		c.live[id] = m
	}
	return c
}

// filterNode injects a WHERE predicate (algebra.FilterExpr): a stateless
// delta filter over its child's transitions.
type filterNode struct {
	kid  node
	pred func(event.Payload) bool
}

func (f *filterNode) filter(d delta) delta {
	var out delta
	for _, it := range d.items {
		if f.pred(it.m.Payload) {
			out.items = append(out.items, it)
		}
	}
	return out
}

func (f *filterNode) push(e event.Event) delta    { return f.filter(f.kid.push(e)) }
func (f *filterNode) remove(id event.ID) delta    { return f.filter(f.kid.remove(id)) }
func (f *filterNode) prune(h temporal.Time) delta { return f.filter(f.kid.prune(h)) }
func (f *filterNode) clone(sh *shared) node {
	return &filterNode{kid: f.kid.clone(sh), pred: f.pred}
}
