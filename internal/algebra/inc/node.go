// Package inc is the incremental pattern-matching subsystem: a matcher
// tree that maintains the denotation of a WHEN-clause expression (package
// algebra) under a stream of primitive-event insertions, removals and
// scope-pruning advances by propagating *deltas* — new and retracted
// matches — instead of re-deriving the expression over the full store on
// every step (the semi-naive strategy of algebra.PatternOp, which this
// package keeps as its frozen reference oracle).
//
// Every algebra.Expr node compiles to a stateful matcher node holding
// time-indexed contributor stores and partial matches:
//
//   - TYPE        → leaf: the live primitive matches of one event type
//   - SEQUENCE    → per-position sorted match lists joined incrementally
//   - ATLEAST     → position-subset join with output reference counts
//   - ATMOST      → sliding-window anchor counts
//   - UNLESS, UNLESS', NOT, CANCEL-WHEN → candidate stores with per-
//     candidate blocker counts over an indexed negative-side store
//   - FILTER      → stateless delta filter
//
// The node contract: after any sequence of push/remove/prune calls, the
// node's live output set equals algebra.Denote of its sub-expression over
// the primitive events currently live in its leaves. Deltas report every
// transition of that set, in order, so a parent (or the driving Op, op.go)
// never re-derives. Negation nodes hold pending candidates and flip them
// as blockers arrive and leave; the driving Op decides *emission* (the
// FinalizeAt frontier and SC modes) exactly as the oracle does.
//
// Allocation discipline: nodes append transitions into a caller-owned
// delta (the out-parameter style below) and keep one reusable scratch
// delta per node for collecting child transitions, so the steady-state
// push path allocates nothing for delta plumbing. Derived matches —
// the leaf's namespaced-payload match and the join nodes' combined
// composites — are interned in caches shared with clones: the
// consistency monitor drives every event through a live operator and,
// later, through its cloned checkpoint (and replays suffixes through
// snapshot clones), so the second and subsequent derivations of the
// same match reuse the first one's payload map and lineage outright.
// Clones of one operator are only ever driven sequentially (the Op
// contract), which is what makes the sharing sound; parallel shards
// build fresh operators via plan.Fresh and never share caches.
package inc

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/temporal"
)

// item is one match transition.
type item struct {
	m   algebra.Match
	del bool
}

// delta is an ordered batch of match transitions flowing up the tree.
// Order matters: one primitive event can both add and retract matches of
// the same node (an event may contribute to a positive side and block on a
// negative side at once), and applying transitions out of order would leave
// a parent's mirror of its child inconsistent.
type delta struct {
	items []item
}

func (d *delta) add(m algebra.Match) { d.items = append(d.items, item{m: m}) }
func (d *delta) del(m algebra.Match) { d.items = append(d.items, item{m: m, del: true}) }
func (d *delta) reset()              { d.items = d.items[:0] }

// shared is tree-global state owned by the driving Op: the occurrence times
// of the available (live, unconsumed) primitive events (UNLESS' nodes
// resolve their anchor contributor through it at candidate-creation time),
// the correlation-key pushdown configuration (nil = unkeyed; see key.go),
// and the operator's undo journal (journal.go), which every node copies at
// build/clone time so its mutations can be journaled without an indirection
// through sh on the hot path. u is always non-nil; it records nothing until
// the first Mark turns it on.
type shared struct {
	vs  map[event.ID]temporal.Time
	key *keyCfg
	u   *undoLog
}

// buildCtx tracks where in the expression a node is being built, which
// decides whether join nodes may apply the pushdown key:
//
//   - pos: inside the pattern's positive scope. Negative sides of the
//     negation operators never key their joins — a pruned negative-side
//     match is a missing blocker, which would *add* output the residual
//     predicates cannot take back.
//   - frozen: under an ATMOST. Its sliding-window counts are over the kid
//     output sets themselves; pruning those sets would change counts, not
//     just skip doomed composites.
//
// Negation nodes are exempt from both: their keying (gated per site by the
// expression's CorrKey annotation) only indexes candidate↔blocker visits
// and leaves every node's output set bit-identical.
type buildCtx struct {
	pos    bool
	frozen bool
}

// joinKey returns the pushdown configuration a join node at this position
// may use, or nil.
func (c buildCtx) joinKey(sh *shared) *keyCfg {
	if c.pos && !c.frozen {
		return sh.key
	}
	return nil
}

// node is one stateful matcher in the tree.
type node interface {
	// push feeds one primitive event (insert); the node dispatches it to
	// its children and folds their deltas into its own state, appending
	// its own transitions to out.
	push(e event.Event, out *delta)
	// remove feeds a full removal of a primitive event by ID.
	remove(id event.ID, out *delta)
	// prune drops state derived from events with Vs < horizon, exactly as
	// the oracle's store pruning does: silently below the driver (the
	// appended transitions let parents stay consistent and let negation
	// nodes surface revivals, but never turn into output retractions).
	prune(horizon temporal.Time, out *delta)
	// clone deep-copies the node, rebinding it to sh. Interning caches
	// are shared with the clone (clones run sequentially).
	clone(sh *shared) node
}

// internCap bounds every interning cache in the tree; pathological streams
// reset a full cache rather than growing it without bound (the same policy
// as the aggregate operator's payload cache).
const internCap = 4096

// combCache interns derived matches by ID — combined composites keyed by
// output ID at join nodes, namespaced leaf matches keyed by primitive
// event ID — shared between an operator and its clones. The monitor's checkpoint operator
// re-derives exactly the matches the live operator already derived, so
// the second derivation reuses the first's payload map and lineage
// slices. Entries are immutable once stored.
type combCache struct {
	m map[event.ID]algebra.Match
}

// The map is lazily initialized: keyed fan-out builds one tree per
// correlation key, and most per-key leaves intern only a handful of
// matches (or none), so pre-sizing here dominated the allocation profile.
func newCombCache() *combCache { return &combCache{} }

func (c *combCache) get(id event.ID) (algebra.Match, bool) {
	m, ok := c.m[id]
	return m, ok
}

func (c *combCache) put(id event.ID, m algebra.Match) {
	if c.m == nil {
		c.m = make(map[event.ID]algebra.Match, 64)
	} else if len(c.m) >= internCap {
		clear(c.m)
	}
	c.m[id] = m
}

// Supported reports whether the expression grammar is fully covered by the
// matcher tree. It mirrors build: any new Expr kind must extend both.
func Supported(x algebra.Expr) bool {
	switch e := x.(type) {
	case algebra.TypeExpr:
		return true
	case algebra.SequenceExpr:
		return allSupported(e.Kids)
	case algebra.AtLeastExpr:
		return allSupported(e.Kids)
	case algebra.AtMostExpr:
		return allSupported(e.Kids)
	case algebra.UnlessExpr:
		return Supported(e.A) && Supported(e.B)
	case algebra.UnlessPrimeExpr:
		return Supported(e.A) && Supported(e.B)
	case algebra.NotExpr:
		return Supported(e.Neg) && Supported(e.Seq)
	case algebra.CancelWhenExpr:
		return Supported(e.E) && Supported(e.Cancel)
	case algebra.FilterExpr:
		return Supported(e.Kid)
	default:
		return false
	}
}

func allSupported(kids []algebra.Expr) bool {
	for _, k := range kids {
		if !Supported(k) {
			return false
		}
	}
	return true
}

// build compiles an expression into its matcher node. Callers must have
// checked Supported; unknown kinds panic. The root is built with
// buildCtx{pos: true}.
func build(x algebra.Expr, sh *shared, ctx buildCtx) node {
	switch e := x.(type) {
	case algebra.TypeExpr:
		return newLeaf(e, sh)
	case algebra.SequenceExpr:
		return newSeqNode(e, sh, ctx)
	case algebra.AtLeastExpr:
		return newAtLeastNode(e, sh, ctx)
	case algebra.AtMostExpr:
		return newAtMostNode(e, sh, buildCtx{pos: ctx.pos, frozen: true})
	case algebra.UnlessExpr:
		neg := buildCtx{frozen: ctx.frozen}
		return newNegNode(negUnless, build(e.A, sh, ctx), build(e.B, sh, neg), e.W, 0, e.Corr, e.CorrKey, sh)
	case algebra.UnlessPrimeExpr:
		neg := buildCtx{frozen: ctx.frozen}
		return newNegNode(negUnlessPrime, build(e.A, sh, ctx), build(e.B, sh, neg), e.W, e.N, e.Corr, e.CorrKey, sh)
	case algebra.NotExpr:
		neg := buildCtx{frozen: ctx.frozen}
		return newNegNode(negNot, build(e.Seq, sh, ctx), build(e.Neg, sh, neg), 0, 0, e.Corr, e.CorrKey, sh)
	case algebra.CancelWhenExpr:
		neg := buildCtx{frozen: ctx.frozen}
		return newNegNode(negCancelWhen, build(e.E, sh, ctx), build(e.Cancel, sh, neg), 0, 0, e.Corr, e.CorrKey, sh)
	case algebra.FilterExpr:
		return &filterNode{kid: build(e.Kid, sh, ctx), pred: e.Pred}
	default:
		panic("inc: unsupported expression " + x.String())
	}
}

// matchList is a set of matches kept sorted by (V.Start, ID) with binary
// range queries over occurrence time — the time-indexed contributor store
// every join node uses.
type matchList struct {
	ms []algebra.Match
}

func matchBefore(a, b *algebra.Match) bool {
	if a.V.Start != b.V.Start {
		return a.V.Start < b.V.Start
	}
	return a.ID < b.ID
}

func (l *matchList) insert(m algebra.Match) {
	i := sort.Search(len(l.ms), func(i int) bool { return !matchBefore(&l.ms[i], &m) })
	l.ms = append(l.ms, algebra.Match{})
	copy(l.ms[i+1:], l.ms[i:])
	l.ms[i] = m
}

// removeMatch deletes the entry equal to m (by ID at m's occurrence time).
func (l *matchList) removeMatch(m algebra.Match) bool {
	i := sort.Search(len(l.ms), func(i int) bool { return !matchBefore(&l.ms[i], &m) })
	if i < len(l.ms) && l.ms[i].ID == m.ID && l.ms[i].V.Start == m.V.Start {
		l.ms = append(l.ms[:i], l.ms[i+1:]...)
		return true
	}
	return false
}

// lowerBound is the first index with V.Start >= t.
func (l *matchList) lowerBound(t temporal.Time) int {
	return sort.Search(len(l.ms), func(i int) bool { return l.ms[i].V.Start >= t })
}

// upperBound is the first index with V.Start > t.
func (l *matchList) upperBound(t temporal.Time) int {
	return sort.Search(len(l.ms), func(i int) bool { return l.ms[i].V.Start > t })
}

func (l *matchList) clone() matchList {
	return matchList{ms: append([]algebra.Match(nil), l.ms...)}
}

// leafNode matches all primitive events of one type (algebra.TypeExpr).
type leafNode struct {
	t      algebra.TypeExpr
	prefix string
	live   map[event.ID]algebra.Match // keyed by primitive event ID
	// minVs is a conservative lower bound over live occurrence times — the
	// per-leaf watermark: a prune whose horizon lies at or below it proves
	// this leaf holds nothing prunable and skips the scan (the Op-level
	// lowVs gate only proves *some* leaf has prunable state; with the
	// pushdown shrinking per-key work, these map scans were next in the
	// profile). Removals leave it stale, forcing at most one extra scan.
	minVs temporal.Time
	// interned caches the derived match per primitive event ID, shared
	// with clones: the checkpoint operator's push of an event the live
	// operator already saw — and any revival re-push after an un-consume —
	// reuses the namespaced payload map instead of rebuilding it.
	interned *combCache
	u        *undoLog
}

func newLeaf(t algebra.TypeExpr, sh *shared) *leafNode {
	return &leafNode{t: t, prefix: t.Prefix(), live: map[event.ID]algebra.Match{},
		minVs: temporal.Infinity, interned: newCombCache(), u: sh.u}
}

func (l *leafNode) push(e event.Event, out *delta) {
	if e.Kind != event.Insert || e.Type != l.t.Type {
		return
	}
	m, ok := l.interned.get(e.ID)
	if !ok {
		p := make(event.Payload, len(e.Payload))
		for k, v := range e.Payload {
			p[l.prefix+"."+k] = v
		}
		m = algebra.Match{
			ID:         event.Pair(e.ID),
			V:          e.V,
			RT:         e.V.Start,
			FinalizeAt: e.V.Start,
			FirstVs:    e.V.Start,
			LastVs:     e.V.Start,
			CBT:        []event.ID{e.ID},
			Payload:    p,
		}
		l.interned.put(e.ID, m)
	}
	l.u.matchMap(l.live, e.ID)
	l.live[e.ID] = m
	if m.V.Start < l.minVs {
		l.u.leafMin(l)
		l.minVs = m.V.Start
	}
	out.add(m)
}

func (l *leafNode) remove(id event.ID, out *delta) {
	if m, ok := l.live[id]; ok {
		l.u.matchMap(l.live, id)
		delete(l.live, id)
		out.del(m)
	}
}

func (l *leafNode) prune(horizon temporal.Time, out *delta) {
	if horizon <= l.minVs {
		return
	}
	l.u.leafMin(l)
	low := temporal.Infinity
	for id, m := range l.live {
		if m.V.Start < horizon {
			l.u.matchMap(l.live, id)
			delete(l.live, id)
			out.del(m)
		} else if m.V.Start < low {
			low = m.V.Start
		}
	}
	l.minVs = low
}

func (l *leafNode) clone(sh *shared) node {
	c := &leafNode{t: l.t, prefix: l.prefix,
		live:     make(map[event.ID]algebra.Match, len(l.live)),
		minVs:    l.minVs,
		interned: l.interned,
		u:        sh.u}
	for id, m := range l.live {
		c.live[id] = m
	}
	return c
}

// filterNode injects a WHERE predicate (algebra.FilterExpr): a stateless
// delta filter over its child's transitions.
type filterNode struct {
	kid  node
	pred func(event.Payload) bool
	kd   delta // reusable child-transition scratch
}

func (f *filterNode) filter(out *delta) {
	for _, it := range f.kd.items {
		if f.pred(it.m.Payload) {
			out.items = append(out.items, it)
		}
	}
}

func (f *filterNode) push(e event.Event, out *delta) {
	f.kd.reset()
	f.kid.push(e, &f.kd)
	f.filter(out)
}

func (f *filterNode) remove(id event.ID, out *delta) {
	f.kd.reset()
	f.kid.remove(id, &f.kd)
	f.filter(out)
}

func (f *filterNode) prune(h temporal.Time, out *delta) {
	f.kd.reset()
	f.kid.prune(h, &f.kd)
	f.filter(out)
}

func (f *filterNode) clone(sh *shared) node {
	return &filterNode{kid: f.kid.clone(sh), pred: f.pred}
}
