package inc

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/temporal"
)

// atLeastNode matches ATLEAST(n, E1, ..., Ek, w): any n contributors from n
// distinct positions whose occurrence times are pairwise distinct and span
// at most w. Unlike SEQUENCE, position order does not constrain time order,
// so a new match at position i joins subsets of the *other* positions and
// the picks are time-sorted before combining. Duplicate parameter positions
// can derive the same composite from different position subsets, so outputs
// are reference-counted (the denotational evaluator dedupes by ID).
//
// Under correlation-key pushdown (key != nil, see key.go) the per-position
// stores are key-indexed exactly like seqNode's: a definite-key match
// joins picks from its own bucket plus the wild list.
type atLeastNode struct {
	n    int
	w    temporal.Duration
	kids []node
	key  *keyCfg

	lists  []matchList // unkeyed join state (key == nil)
	klists []keyedList // key-indexed join state (key != nil)

	outs map[event.ID]algebra.Match
	refs map[event.ID]int
	uses map[event.ID][]event.ID

	picks  []algebra.Match // enumeration scratch
	sorted []algebra.Match // time-sorted commit scratch
	ids    []event.ID      // contributor-ID scratch for the interned lookup
	kd     delta           // reusable child-transition scratch
	comb   *combCache      // interned composites, shared with clones
	u      *undoLog
}

func newAtLeastNode(e algebra.AtLeastExpr, sh *shared, ctx buildCtx) *atLeastNode {
	a := &atLeastNode{
		n:      e.N,
		w:      e.W,
		key:    ctx.joinKey(sh),
		outs:   map[event.ID]algebra.Match{},
		refs:   map[event.ID]int{},
		uses:   map[event.ID][]event.ID{},
		picks:  make([]algebra.Match, 0, e.N),
		sorted: make([]algebra.Match, e.N),
		ids:    make([]event.ID, e.N),
		comb:   newCombCache(),
		u:      sh.u,
	}
	if a.key != nil {
		a.klists = make([]keyedList, len(e.Kids))
	} else {
		a.lists = make([]matchList, len(e.Kids))
	}
	for _, k := range e.Kids {
		a.kids = append(a.kids, build(k, sh, ctx))
	}
	return a
}

func (a *atLeastNode) push(e event.Event, out *delta) {
	for i, k := range a.kids {
		a.kd.reset()
		k.push(e, &a.kd)
		a.applyKid(i, out)
	}
}

func (a *atLeastNode) remove(id event.ID, out *delta) {
	for i, k := range a.kids {
		a.kd.reset()
		k.remove(id, &a.kd)
		a.applyKid(i, out)
	}
}

func (a *atLeastNode) prune(horizon temporal.Time, out *delta) {
	for i, k := range a.kids {
		a.kd.reset()
		k.prune(horizon, &a.kd)
		a.applyKid(i, out)
	}
}

func (a *atLeastNode) applyKid(i int, out *delta) {
	for _, it := range a.kd.items {
		var kv event.Value
		def := false
		if a.key != nil {
			kv, def = a.key.of(it.m.Payload)
		}
		if it.del {
			if a.key != nil {
				if a.klists[i].remove(it.m, kv, def) {
					a.u.kListDel(&a.klists[i], &it.m, kv, def)
				}
			} else if a.lists[i].removeMatch(it.m) {
				a.u.listDel(&a.lists[i], &it.m)
			}
			for _, oid := range a.uses[it.m.ID] {
				if _, ok := a.outs[oid]; !ok {
					continue
				}
				a.u.intMap(a.refs, oid)
				a.refs[oid]--
				if a.refs[oid] == 0 {
					m := a.outs[oid]
					a.u.matchMap(a.outs, oid)
					delete(a.outs, oid)
					a.u.intMap(a.refs, oid)
					delete(a.refs, oid)
					out.del(m)
				}
			}
			a.u.usesDel(a.uses, it.m.ID)
			delete(a.uses, it.m.ID)
			continue
		}
		if a.n >= 1 && a.n <= len(a.kids) {
			a.enumerate(i, it.m, kv, def, out)
		}
		if a.key != nil {
			a.klists[i].insert(it.m, kv, def)
			a.u.kListIns(&a.klists[i], &it.m, kv, def)
		} else {
			a.lists[i].insert(it.m)
			a.u.listIns(&a.lists[i], &it.m)
		}
	}
}

// enumerate emits every n-subset of positions containing fix, with one
// stored match per other chosen position, whose times are pairwise
// distinct and within w of each other.
func (a *atLeastNode) enumerate(fix int, nm algebra.Match, kv event.Value, def bool, out *delta) {
	picks := a.picks[:0]
	picks = append(picks, nm)
	minVs, maxVs := nm.V.Start, nm.V.Start
	var rec func(pos int, min, max temporal.Time)
	commit := func() {
		sorted := append(a.sorted[:0], picks...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].V.Start < sorted[j].V.Start })
		a.commit(sorted, out)
	}
	rec = func(pos int, min, max temporal.Time) {
		if len(picks) == a.n {
			commit()
			return
		}
		// Positions left to fill must fit among the remaining ones.
		for p := pos; p < len(a.kids); p++ {
			if p == fix {
				continue
			}
			if len(a.kids)-p < a.n-len(picks) {
				break
			}
			scan := func(list *matchList) {
				// Every pick must lie within w of every other: restrict to
				// [max - w, min + w].
				lo := list.lowerBound(max.Add(-a.w))
				for idx := lo; idx < len(list.ms); idx++ {
					m := list.ms[idx]
					if m.V.Start.Sub(min) > a.w {
						break
					}
					if a.clashes(picks, m.V.Start) {
						continue // strict time order after sorting = pairwise distinct
					}
					nmin, nmax := min, max
					if m.V.Start < nmin {
						nmin = m.V.Start
					}
					if m.V.Start > nmax {
						nmax = m.V.Start
					}
					picks = append(picks, m)
					rec(p+1, nmin, nmax)
					picks = picks[:len(picks)-1]
				}
			}
			if a.key == nil {
				scan(&a.lists[p])
				continue
			}
			a.klists[p].scan(kv, def, scan)
		}
	}
	rec(0, minVs, maxVs)
	a.picks = picks[:0]
}

func (a *atLeastNode) clashes(picks []algebra.Match, vs temporal.Time) bool {
	for _, p := range picks {
		if p.V.Start == vs {
			return true
		}
	}
	return false
}

func (a *atLeastNode) commit(sorted []algebra.Match, out *delta) {
	for i := range sorted {
		a.ids[i] = sorted[i].ID
	}
	id := event.Pair(a.ids[:len(sorted)]...)
	a.u.intMap(a.refs, id)
	a.refs[id]++
	for _, p := range sorted {
		a.u.usesApp(a.uses, p.ID)
		a.uses[p.ID] = append(a.uses[p.ID], id)
	}
	if a.refs[id] == 1 {
		m, ok := a.comb.get(id)
		if !ok {
			m = algebra.Combine(sorted, a.w)
			a.comb.put(id, m)
		}
		a.u.matchMap(a.outs, id)
		a.outs[id] = m
		out.add(m)
	}
}

func (a *atLeastNode) clone(sh *shared) node {
	c := &atLeastNode{
		n:      a.n,
		w:      a.w,
		key:    a.key,
		outs:   make(map[event.ID]algebra.Match, len(a.outs)),
		refs:   make(map[event.ID]int, len(a.refs)),
		uses:   make(map[event.ID][]event.ID, len(a.uses)),
		picks:  make([]algebra.Match, 0, a.n),
		sorted: make([]algebra.Match, a.n),
		ids:    make([]event.ID, a.n),
		comb:   a.comb,
		u:      sh.u,
	}
	for _, k := range a.kids {
		c.kids = append(c.kids, k.clone(sh))
	}
	if a.key != nil {
		c.klists = make([]keyedList, len(a.klists))
		for i := range a.klists {
			c.klists[i] = a.klists[i].clone()
		}
	} else {
		c.lists = make([]matchList, len(a.lists))
		for i := range a.lists {
			c.lists[i] = a.lists[i].clone()
		}
	}
	for id, m := range a.outs {
		c.outs[id] = m
	}
	for id, r := range a.refs {
		c.refs[id] = r
	}
	for id, v := range a.uses {
		c.uses[id] = append([]event.ID(nil), v...)
	}
	return c
}
