package inc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/temporal"
)

// The rollback differential: Mark/Rollback/Compact (the undo journal behind
// operators.Versioned) must restore exactly the state a frozen clone taken at
// the same point holds. Each trial drives a random aligned script; at random
// points it pairs fast.Mark() with oracle.Clone(), and at later random points
// rewinds the incremental op while swapping the oracle back to the frozen
// clone — then keeps driving both with the same suffix, asserting the usual
// step-for-step byte identity. Compact validates that history below a kept
// version can be discarded without hurting it, and that rollback to a
// discarded or invalidated version is refused with state untouched.

type rbMark struct {
	v operators.Version
	o operators.Op // frozen oracle state at the mark
}

func driveRollback(t *testing.T, name string, expr algebra.Expr, mode algebra.SCMode,
	seed int64, events []event.Event, rng *rand.Rand, opts ...OpOption) {
	t.Helper()
	oracle := algebra.NewPatternOp(expr, mode, "out")
	fast := NewOp(expr, mode, "out", opts...)
	label := func(step string, i int) string {
		return fmt.Sprintf("%s %v seed=%d %s %d", name, mode, seed, step, i)
	}

	var marks []rbMark
	save := func() {
		marks = append(marks, rbMark{v: fast.Mark(), o: oracle.Clone()})
	}
	rollTo := func(j int, i int) {
		if !fast.Rollback(marks[j].v) {
			t.Fatalf("%s: rollback to live version %d refused", label("roll", i), j)
		}
		oracle = marks[j].o.Clone().(*algebra.PatternOp)
		marks = marks[:j+1] // later versions are invalidated
		checkStep(t, label("post-roll", i), oracle, fast, nil, nil)
	}
	save() // genesis mark: journaling on from the first event

	lastAdvance := temporal.MinTime
	var removable []event.Event
	for i, e := range events {
		og := oracle.Process(0, e)
		ig := fast.Process(0, e)
		checkStep(t, label("push", i), oracle, fast, ig, og)
		removable = append(removable, e)

		if rng.Intn(5) == 0 && len(removable) > 0 {
			j := rng.Intn(len(removable))
			victim := removable[j]
			if victim.V.Start >= lastAdvance {
				removable = append(removable[:j], removable[j+1:]...)
				r := event.NewRetract(victim.ID, victim.Type, victim.V.Start, victim.V.Start, nil)
				og = oracle.Process(0, r)
				ig = fast.Process(0, r)
				checkStep(t, label("remove", i), oracle, fast, ig, og)
			}
		}

		if rng.Intn(4) == 0 {
			adv := e.V.Start.Add(temporal.Duration(rng.Intn(8)))
			if adv > lastAdvance {
				lastAdvance = adv
			}
			og = oracle.Advance(adv)
			ig = fast.Advance(adv)
			checkStep(t, label("advance", i), oracle, fast, ig, og)
		}

		if rng.Intn(6) == 0 {
			save()
		}

		// Rewind to a random retained version, the way repair rewinds to the
		// newest snapshot at or below a straggler.
		if rng.Intn(8) == 0 {
			j := rng.Intn(len(marks))
			rollTo(j, i)
			if rng.Intn(2) == 0 {
				// The barrier is peeked, not popped: the same version must
				// accept a second rollback (repeated repairs to one snapshot).
				rollTo(j, i)
			}
		}

		// Discard history below a retained version, the way checkpointing
		// compacts below the base; versions below it must then be refused
		// without disturbing state.
		if rng.Intn(16) == 0 && len(marks) > 1 {
			k := 1 + rng.Intn(len(marks)-1)
			fast.Compact(marks[k].v)
			dropped := marks[rng.Intn(k)]
			before := fast.StateSize()
			if fast.Rollback(dropped.v) {
				t.Fatalf("%s: rollback below compaction point succeeded", label("compact", i))
			}
			if fast.StateSize() != before {
				t.Fatalf("%s: refused rollback disturbed state", label("compact", i))
			}
			marks = marks[k:]
			rollTo(rng.Intn(len(marks)), i) // compacted-to versions stay usable
		}
	}

	// Rewind across the Advance(∞) terminal reset: drain both, roll the
	// incremental op back over the reset, and drive a fresh tail.
	preFin := len(marks) - 1
	og := oracle.Advance(temporal.Infinity)
	ig := fast.Advance(temporal.Infinity)
	checkStep(t, label("finish", 0), oracle, fast, ig, og)
	rollTo(preFin, len(events))
	tail := genEvents(rng, 10)
	for i, e := range tail {
		// Keep the tail aligned: only occurrences at/after the op's frontier.
		if e.V.Start < lastAdvance {
			continue
		}
		og := oracle.Process(0, e)
		ig := fast.Process(0, e)
		checkStep(t, label("tail", i), oracle, fast, ig, og)
	}
	og = oracle.Advance(temporal.Infinity)
	ig = fast.Advance(temporal.Infinity)
	checkStep(t, label("tail-finish", 0), oracle, fast, ig, og)
}

// TestRollbackDifferential runs the rollback differential across the full
// operator zoo and SC-mode grid.
func TestRollbackDifferential(t *testing.T) {
	for name, expr := range exprZoo() {
		for mi, mode := range scModes() {
			for trial := 0; trial < 4; trial++ {
				seed := int64(7000*mi + 10*trial + 3)
				rng := rand.New(rand.NewSource(seed))
				events := genEvents(rng, 40)
				driveRollback(t, name, expr, mode, seed, events, rng)
			}
		}
	}
}

// TestRollbackDifferentialKeyed repeats the rollback differential with
// correlation-key pushdown enabled, across the key-distribution grid, so the
// keyed bucket journal records (insert/remove against buckets that are
// deleted when empty and recreated on demand) are exercised.
func TestRollbackDifferentialKeyed(t *testing.T) {
	for name, expr := range keyedZoo() {
		for _, d := range keyDists() {
			for trial := 0; trial < 2; trial++ {
				seed := int64(9000 + 10*trial + 5)
				rng := rand.New(rand.NewSource(seed))
				events := genDistEvents(rng, 40, d)
				driveRollback(t, name+"/"+d.name, expr, algebra.SCMode{}, seed, events, rng,
					WithJoinKey("k"))
			}
		}
	}
}
