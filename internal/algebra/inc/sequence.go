package inc

import (
	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/temporal"
)

// seqNode matches SEQUENCE(E1, ..., Ek, w): one sorted match list per
// position, joined incrementally. A new child match at position i is
// combined with every strictly-Vs-increasing pick from the other positions
// within the window — the only combinations a re-derivation would have
// found that the previous state did not already hold.
//
// Under correlation-key pushdown (key != nil, see key.go) the per-position
// lists are key-indexed: a new definite-key match combines only with picks
// from its own key's bucket plus the wild list, so the enumeration no
// longer crosses keys the residual EQUAL predicate would drop anyway.
type seqNode struct {
	kids []node
	w    temporal.Duration
	key  *keyCfg

	lists  []matchList // unkeyed join state (key == nil)
	klists []keyedList // key-indexed join state (key != nil)

	// outs holds the node's live composite matches; uses indexes them by
	// child-match ID so a child retraction cascades in O(dependents).
	// uses entries are cleaned lazily: a dead output ID is skipped (and the
	// whole entry dropped when its child match goes).
	outs map[event.ID]algebra.Match
	uses map[event.ID][]event.ID

	parts []algebra.Match // enumeration scratch, one slot per position
	ids   []event.ID      // contributor-ID scratch for the interned lookup
	kd    delta           // reusable child-transition scratch
	comb  *combCache      // interned composites, shared with clones
	u     *undoLog
}

func newSeqNode(e algebra.SequenceExpr, sh *shared, ctx buildCtx) *seqNode {
	s := &seqNode{
		w:     e.W,
		key:   ctx.joinKey(sh),
		outs:  map[event.ID]algebra.Match{},
		uses:  map[event.ID][]event.ID{},
		parts: make([]algebra.Match, len(e.Kids)),
		ids:   make([]event.ID, len(e.Kids)),
		comb:  newCombCache(),
		u:     sh.u,
	}
	if s.key != nil {
		s.klists = make([]keyedList, len(e.Kids))
	} else {
		s.lists = make([]matchList, len(e.Kids))
	}
	for _, k := range e.Kids {
		s.kids = append(s.kids, build(k, sh, ctx))
	}
	return s
}

func (s *seqNode) push(e event.Event, out *delta) {
	for i, k := range s.kids {
		s.kd.reset()
		k.push(e, &s.kd)
		s.applyKid(i, out)
	}
}

func (s *seqNode) remove(id event.ID, out *delta) {
	for i, k := range s.kids {
		s.kd.reset()
		k.remove(id, &s.kd)
		s.applyKid(i, out)
	}
}

func (s *seqNode) prune(horizon temporal.Time, out *delta) {
	for i, k := range s.kids {
		s.kd.reset()
		k.prune(horizon, &s.kd)
		s.applyKid(i, out)
	}
}

// applyKid folds child i's transition batch (in s.kd) into the join state.
func (s *seqNode) applyKid(i int, out *delta) {
	for _, it := range s.kd.items {
		var kv event.Value
		def := false
		if s.key != nil {
			kv, def = s.key.of(it.m.Payload)
		}
		if it.del {
			if s.key != nil {
				if s.klists[i].remove(it.m, kv, def) {
					s.u.kListDel(&s.klists[i], &it.m, kv, def)
				}
			} else if s.lists[i].removeMatch(it.m) {
				s.u.listDel(&s.lists[i], &it.m)
			}
			for _, oid := range s.uses[it.m.ID] {
				if m, ok := s.outs[oid]; ok {
					s.u.matchMap(s.outs, oid)
					delete(s.outs, oid)
					out.del(m)
				}
			}
			s.u.usesDel(s.uses, it.m.ID)
			delete(s.uses, it.m.ID)
			continue
		}
		s.enumerate(i, it.m, kv, def, out)
		if s.key != nil {
			s.klists[i].insert(it.m, kv, def)
			s.u.kListIns(&s.klists[i], &it.m, kv, def)
		} else {
			s.lists[i].insert(it.m)
			s.u.listIns(&s.lists[i], &it.m)
		}
	}
}

// enumerate emits every combination that includes the new match nm at
// position fix. Positions are filled left to right; each pick must start
// strictly after the previous one and within w of the first. Under
// pushdown, a definite-key nm draws the other positions' picks from its
// key's bucket and the wild list only (a wild nm still scans everything —
// the residual predicates decide, exactly as unkeyed).
func (s *seqNode) enumerate(fix int, nm algebra.Match, kv event.Value, def bool, out *delta) {
	k := len(s.kids)
	var rec func(depth int, prev, first temporal.Time)
	rec = func(depth int, prev, first temporal.Time) {
		if depth == k {
			s.commit(out)
			return
		}
		try := func(m algebra.Match) bool {
			if depth > 0 {
				if !(prev < m.V.Start) {
					return true // too early; callers decide whether to keep scanning
				}
				if m.V.Start.Sub(first) > s.w {
					return false
				}
			}
			f := first
			if depth == 0 {
				f = m.V.Start
			}
			s.parts[depth] = m
			rec(depth+1, m.V.Start, f)
			return true
		}
		if depth == fix {
			try(nm)
			return
		}
		scan := func(list *matchList) {
			lo := 0
			if depth > 0 {
				lo = list.upperBound(prev)
			}
			for idx := lo; idx < len(list.ms); idx++ {
				if depth < fix && list.ms[idx].V.Start >= nm.V.Start {
					break // positions before fix must start strictly before nm
				}
				if !try(list.ms[idx]) {
					break // sorted: everything later is further outside the window
				}
			}
		}
		if s.key == nil {
			scan(&s.lists[depth])
			return
		}
		s.klists[depth].scan(kv, def, scan)
	}
	rec(0, temporal.MinTime, temporal.MinTime)
}

func (s *seqNode) commit(out *delta) {
	for i := range s.parts {
		s.ids[i] = s.parts[i].ID
	}
	id := event.Pair(s.ids...)
	if _, dup := s.outs[id]; dup {
		return
	}
	m, ok := s.comb.get(id)
	if !ok {
		m = algebra.Combine(s.parts, s.w)
		s.comb.put(id, m)
	}
	s.u.matchMap(s.outs, id)
	s.outs[id] = m
	for _, p := range s.parts {
		s.u.usesApp(s.uses, p.ID)
		s.uses[p.ID] = append(s.uses[p.ID], id)
	}
	out.add(m)
}

func (s *seqNode) clone(sh *shared) node {
	c := &seqNode{
		w:     s.w,
		key:   s.key,
		outs:  make(map[event.ID]algebra.Match, len(s.outs)),
		uses:  make(map[event.ID][]event.ID, len(s.uses)),
		parts: make([]algebra.Match, len(s.parts)),
		ids:   make([]event.ID, len(s.ids)),
		comb:  s.comb,
		u:     sh.u,
	}
	for _, k := range s.kids {
		c.kids = append(c.kids, k.clone(sh))
	}
	if s.key != nil {
		c.klists = make([]keyedList, len(s.klists))
		for i := range s.klists {
			c.klists[i] = s.klists[i].clone()
		}
	} else {
		c.lists = make([]matchList, len(s.lists))
		for i := range s.lists {
			c.lists[i] = s.lists[i].clone()
		}
	}
	for id, m := range s.outs {
		c.outs[id] = m
	}
	for id, v := range s.uses {
		c.uses[id] = append([]event.ID(nil), v...)
	}
	return c
}
