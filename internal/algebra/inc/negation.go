package inc

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/temporal"
)

// negKind selects which negation operator a negNode implements. All four
// share one shape: a store of positive-side candidates, each carrying a
// blocking interval (lo, hi), and an indexed store of negative-side
// matches; a candidate's output is live iff no (correlated) negative match
// occurs strictly inside its interval. Candidates flip as blockers arrive
// and leave — including leaving by scope pruning, which is how blocked
// instances the oracle would re-derive after its store shrinks surface
// here as revival deltas.
type negKind uint8

const (
	// negUnless: UNLESS(A, B, w) — interval (a.Vs, a.Vs+w).
	negUnless negKind = iota
	// negUnlessPrime: UNLESS(A, B, n, w) — interval (anchor, anchor+w)
	// where anchor is the occurrence of A's n-th contributor.
	negUnlessPrime
	// negNot: NOT(E, SEQUENCE(...)) — interval (s.FirstVs, s.LastVs).
	negNot
	// negCancelWhen: CANCEL-WHEN(E1, E2) — interval (m.RT, m.Vs).
	negCancelWhen
)

type negCand struct {
	a        algebra.Match // the positive-side match
	out      algebra.Match // the transformed output
	lo, hi   temporal.Time // blockers occur strictly inside (lo, hi)
	blockers int
}

type negNode struct {
	kind negKind
	pos  node
	neg  node
	w    temporal.Duration
	nIdx int // UNLESS' 1-based anchor contributor index
	corr algebra.CorrPred
	sh   *shared

	// cands sorted by (lo, a.ID); loOf locates a candidate by its match ID.
	cands   []negCand
	loOf    map[event.ID]temporal.Time
	negs    matchList
	maxSpan temporal.Duration // widest hi-lo seen; bounds range scans
	kd      delta             // reusable child-transition scratch
}

func newNegNode(kind negKind, pos, neg node, w temporal.Duration, nIdx int, corr algebra.CorrPred, sh *shared) *negNode {
	return &negNode{
		kind: kind, pos: pos, neg: neg, w: w, nIdx: nIdx, corr: corr, sh: sh,
		loOf: map[event.ID]temporal.Time{},
	}
}

// The pos-then-neg order below matches the old both-subtrees-first
// evaluation: applyPos counts blockers against the negative store as it
// stood before this call's negative-side transitions, which applyNeg then
// folds in (flipping the just-added candidates too when they overlap).

func (u *negNode) push(e event.Event, out *delta) {
	u.kd.reset()
	u.pos.push(e, &u.kd)
	u.applyPos(out)
	u.kd.reset()
	u.neg.push(e, &u.kd)
	u.applyNeg(out)
}

func (u *negNode) remove(id event.ID, out *delta) {
	u.kd.reset()
	u.pos.remove(id, &u.kd)
	u.applyPos(out)
	u.kd.reset()
	u.neg.remove(id, &u.kd)
	u.applyNeg(out)
}

func (u *negNode) prune(horizon temporal.Time, out *delta) {
	u.kd.reset()
	u.pos.prune(horizon, &u.kd)
	u.applyPos(out)
	u.kd.reset()
	u.neg.prune(horizon, &u.kd)
	u.applyNeg(out)
}

// interval derives the blocking interval and output for a positive match;
// ok is false when the match can never produce output (UNLESS' arity
// mismatch or a missing anchor).
func (u *negNode) interval(a algebra.Match) (c negCand, ok bool) {
	c.a = a
	switch u.kind {
	case negUnless:
		c.lo, c.hi = a.V.Start, a.V.Start.Add(u.w)
		m := a
		m.ID = event.Pair(a.ID)
		m.V = temporal.NewInterval(a.V.Start, a.V.Start.Add(u.w))
		fin := a.V.Start.Add(u.w)
		if a.FinalizeAt > fin {
			fin = a.FinalizeAt
		}
		m.FinalizeAt = fin
		c.out = m
	case negUnlessPrime:
		if u.nIdx > len(a.CBT) {
			return c, false
		}
		anchor, found := u.sh.vs[a.CBT[u.nIdx-1]]
		if !found {
			return c, false
		}
		scopeEnd := anchor.Add(u.w)
		c.lo, c.hi = anchor, scopeEnd
		m := a
		m.ID = event.Pair(a.ID, event.ID(u.nIdx))
		vs := temporal.Max(a.V.Start, scopeEnd)
		ve := a.FirstVs.Add(u.w)
		if ve <= vs {
			ve = vs.Add(1)
		}
		m.V = temporal.NewInterval(vs, ve)
		fin := scopeEnd
		if a.FinalizeAt > fin {
			fin = a.FinalizeAt
		}
		m.FinalizeAt = fin
		c.out = m
	case negNot:
		c.lo, c.hi = a.FirstVs, a.LastVs
		c.out = a
	case negCancelWhen:
		c.lo, c.hi = a.RT, a.V.Start
		c.out = a
	}
	return c, true
}

func (u *negNode) candBefore(lo temporal.Time, id event.ID, c *negCand) bool {
	if c.lo != lo {
		return c.lo < lo
	}
	return c.a.ID < id
}

// findCand locates the candidate for match ID id at interval start lo.
// (lo, a.ID) is a total order over cands, so the binary search lands on
// the exact slot when the candidate exists.
func (u *negNode) findCand(lo temporal.Time, id event.ID) int {
	i := sort.Search(len(u.cands), func(i int) bool { return !u.candBefore(lo, id, &u.cands[i]) })
	if i < len(u.cands) && u.cands[i].lo == lo && u.cands[i].a.ID == id {
		return i
	}
	return -1
}

func (u *negNode) applyPos(out *delta) {
	for _, it := range u.kd.items {
		if it.del {
			lo, ok := u.loOf[it.m.ID]
			if !ok {
				continue
			}
			delete(u.loOf, it.m.ID)
			if i := u.findCand(lo, it.m.ID); i >= 0 {
				c := u.cands[i]
				u.cands = append(u.cands[:i], u.cands[i+1:]...)
				if c.blockers == 0 {
					out.del(c.out)
				}
			}
			continue
		}
		c, ok := u.interval(it.m)
		if !ok {
			continue
		}
		if span := c.hi.Sub(c.lo); span > u.maxSpan {
			u.maxSpan = span
		}
		// Count live blockers strictly inside (lo, hi).
		for i := u.negs.upperBound(c.lo); i < len(u.negs.ms) && u.negs.ms[i].V.Start < c.hi; i++ {
			if u.corr == nil || u.corr(c.a.Payload, u.negs.ms[i].Payload) {
				c.blockers++
			}
		}
		i := sort.Search(len(u.cands), func(i int) bool { return !u.candBefore(c.lo, c.a.ID, &u.cands[i]) })
		u.cands = append(u.cands, negCand{})
		copy(u.cands[i+1:], u.cands[i:])
		u.cands[i] = c
		u.loOf[c.a.ID] = c.lo
		if c.blockers == 0 {
			out.add(c.out)
		}
	}
}

func (u *negNode) applyNeg(out *delta) {
	for _, it := range u.kd.items {
		t := it.m.V.Start
		if it.del {
			if !u.negs.removeMatch(it.m) {
				continue
			}
			u.eachAffected(t, it.m, func(c *negCand) {
				c.blockers--
				if c.blockers == 0 {
					out.add(c.out)
				}
			})
			continue
		}
		u.negs.insert(it.m)
		u.eachAffected(t, it.m, func(c *negCand) {
			c.blockers++
			if c.blockers == 1 {
				out.del(c.out)
			}
		})
	}
}

// eachAffected visits every candidate whose interval strictly contains t
// and whose correlation predicate matches the negative match.
func (u *negNode) eachAffected(t temporal.Time, neg algebra.Match, fn func(c *negCand)) {
	// Any candidate with lo <= t - maxSpan has hi <= lo + maxSpan <= t.
	from := sort.Search(len(u.cands), func(i int) bool { return u.cands[i].lo > t.Add(-u.maxSpan) })
	for i := from; i < len(u.cands) && u.cands[i].lo < t; i++ {
		c := &u.cands[i]
		if t >= c.hi {
			continue
		}
		if u.corr == nil || u.corr(c.a.Payload, neg.Payload) {
			fn(c)
		}
	}
}

func (u *negNode) clone(sh *shared) node {
	c := &negNode{
		kind: u.kind, pos: u.pos.clone(sh), neg: u.neg.clone(sh),
		w: u.w, nIdx: u.nIdx, corr: u.corr, sh: sh,
		cands:   append([]negCand(nil), u.cands...),
		loOf:    make(map[event.ID]temporal.Time, len(u.loOf)),
		negs:    u.negs.clone(),
		maxSpan: u.maxSpan,
	}
	for id, lo := range u.loOf {
		c.loOf[id] = lo
	}
	return c
}
