package inc

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/temporal"
)

// negKind selects which negation operator a negNode implements. All four
// share one shape: a store of positive-side candidates, each carrying a
// blocking interval (lo, hi), and an indexed store of negative-side
// matches; a candidate's output is live iff no (correlated) negative match
// occurs strictly inside its interval. Candidates flip as blockers arrive
// and leave — including leaving by scope pruning, which is how blocked
// instances the oracle would re-derive after its store shrinks surface
// here as revival deltas.
type negKind uint8

const (
	// negUnless: UNLESS(A, B, w) — interval (a.Vs, a.Vs+w).
	negUnless negKind = iota
	// negUnlessPrime: UNLESS(A, B, n, w) — interval (anchor, anchor+w)
	// where anchor is the occurrence of A's n-th contributor.
	negUnlessPrime
	// negNot: NOT(E, SEQUENCE(...)) — interval (s.FirstVs, s.LastVs).
	negNot
	// negCancelWhen: CANCEL-WHEN(E1, E2) — interval (m.RT, m.Vs).
	negCancelWhen
)

type negCand struct {
	a        algebra.Match // the positive-side match
	out      algebra.Match // the transformed output
	lo, hi   temporal.Time // blockers occur strictly inside (lo, hi)
	blockers int
}

// negNode implements the four negation operators. When the site's
// correlation predicate provably implies equality on the pushdown
// attribute (the expression's CorrKey annotation matches the tree's key;
// key != nil), both stores are key-indexed: a definite-key blocker visits
// only its own key's candidates plus the wild ones, and vice versa — a
// pure index, since corr is false on every skipped pair, so every
// candidate's blocker count is exactly what the flat scan would produce.
type negNode struct {
	kind negKind
	pos  node
	neg  node
	w    temporal.Duration
	nIdx int // UNLESS' 1-based anchor contributor index
	corr algebra.CorrPred
	key  *keyCfg
	sh   *shared

	// Candidates sorted by (lo, a.ID) — flat when unkeyed, per definite
	// key plus a wild list when keyed; loOf locates one by its match ID.
	cands  []negCand
	kcands map[event.Value][]negCand
	wcands []negCand
	loOf   map[event.ID]temporal.Time

	negs    matchList         // unkeyed negative store
	knegs   keyedList         // key-indexed negative store
	maxSpan temporal.Duration // widest hi-lo seen; bounds range scans
	kd      delta             // reusable child-transition scratch
}

func newNegNode(kind negKind, pos, neg node, w temporal.Duration, nIdx int,
	corr algebra.CorrPred, corrKey string, sh *shared) *negNode {
	n := &negNode{
		kind: kind, pos: pos, neg: neg, w: w, nIdx: nIdx, corr: corr, sh: sh,
		loOf: map[event.ID]temporal.Time{},
	}
	if sh.key != nil && corrKey == sh.key.attr {
		n.key = sh.key
	}
	return n
}

// The pos-then-neg order below matches the old both-subtrees-first
// evaluation: applyPos counts blockers against the negative store as it
// stood before this call's negative-side transitions, which applyNeg then
// folds in (flipping the just-added candidates too when they overlap).

func (u *negNode) push(e event.Event, out *delta) {
	u.kd.reset()
	u.pos.push(e, &u.kd)
	u.applyPos(out)
	u.kd.reset()
	u.neg.push(e, &u.kd)
	u.applyNeg(out)
}

func (u *negNode) remove(id event.ID, out *delta) {
	u.kd.reset()
	u.pos.remove(id, &u.kd)
	u.applyPos(out)
	u.kd.reset()
	u.neg.remove(id, &u.kd)
	u.applyNeg(out)
}

func (u *negNode) prune(horizon temporal.Time, out *delta) {
	u.kd.reset()
	u.pos.prune(horizon, &u.kd)
	u.applyPos(out)
	u.kd.reset()
	u.neg.prune(horizon, &u.kd)
	u.applyNeg(out)
}

// interval derives the blocking interval and output for a positive match;
// ok is false when the match can never produce output (UNLESS' arity
// mismatch or a missing anchor).
func (u *negNode) interval(a algebra.Match) (c negCand, ok bool) {
	c.a = a
	switch u.kind {
	case negUnless:
		c.lo, c.hi = a.V.Start, a.V.Start.Add(u.w)
		m := a
		m.ID = event.Pair(a.ID)
		m.V = temporal.NewInterval(a.V.Start, a.V.Start.Add(u.w))
		fin := a.V.Start.Add(u.w)
		if a.FinalizeAt > fin {
			fin = a.FinalizeAt
		}
		m.FinalizeAt = fin
		c.out = m
	case negUnlessPrime:
		if u.nIdx > len(a.CBT) {
			return c, false
		}
		anchor, found := u.sh.vs[a.CBT[u.nIdx-1]]
		if !found {
			return c, false
		}
		scopeEnd := anchor.Add(u.w)
		c.lo, c.hi = anchor, scopeEnd
		m := a
		m.ID = event.Pair(a.ID, event.ID(u.nIdx))
		vs := temporal.Max(a.V.Start, scopeEnd)
		ve := a.FirstVs.Add(u.w)
		if ve <= vs {
			ve = vs.Add(1)
		}
		m.V = temporal.NewInterval(vs, ve)
		fin := scopeEnd
		if a.FinalizeAt > fin {
			fin = a.FinalizeAt
		}
		m.FinalizeAt = fin
		c.out = m
	case negNot:
		c.lo, c.hi = a.FirstVs, a.LastVs
		c.out = a
	case negCancelWhen:
		c.lo, c.hi = a.RT, a.V.Start
		c.out = a
	}
	return c, true
}

func candBefore(lo temporal.Time, id event.ID, c *negCand) bool {
	if c.lo != lo {
		return c.lo < lo
	}
	return c.a.ID < id
}

// candInsert inserts c into a (lo, a.ID)-sorted candidate list.
func candInsert(cs []negCand, c negCand) []negCand {
	i := sort.Search(len(cs), func(i int) bool { return !candBefore(c.lo, c.a.ID, &cs[i]) })
	cs = append(cs, negCand{})
	copy(cs[i+1:], cs[i:])
	cs[i] = c
	return cs
}

// candFind locates the candidate for match ID id at interval start lo.
// (lo, a.ID) is a total order, so the binary search lands on the exact
// slot when the candidate exists.
func candFind(cs []negCand, lo temporal.Time, id event.ID) int {
	i := sort.Search(len(cs), func(i int) bool { return !candBefore(lo, id, &cs[i]) })
	if i < len(cs) && cs[i].lo == lo && cs[i].a.ID == id {
		return i
	}
	return -1
}

// candAdd stores c in the list a (kv, def)-keyed candidate belongs to.
func (u *negNode) candAdd(c negCand, kv event.Value, def bool) {
	switch {
	case u.key == nil:
		u.cands = candInsert(u.cands, c)
	case def:
		if u.kcands == nil {
			u.kcands = map[event.Value][]negCand{}
		}
		u.kcands[kv] = candInsert(u.kcands[kv], c)
	default:
		u.wcands = candInsert(u.wcands, c)
	}
}

// candRemove deletes and returns the candidate at (lo, id) from its list.
func (u *negNode) candRemove(lo temporal.Time, id event.ID, kv event.Value, def bool) (negCand, bool) {
	remove := func(cs []negCand) ([]negCand, negCand, bool) {
		i := candFind(cs, lo, id)
		if i < 0 {
			return cs, negCand{}, false
		}
		c := cs[i]
		return append(cs[:i], cs[i+1:]...), c, true
	}
	switch {
	case u.key == nil:
		var c negCand
		var ok bool
		u.cands, c, ok = remove(u.cands)
		return c, ok
	case def:
		cs, c, ok := remove(u.kcands[kv])
		if ok {
			if len(cs) == 0 {
				delete(u.kcands, kv)
			} else {
				u.kcands[kv] = cs
			}
		}
		return c, ok
	default:
		var c negCand
		var ok bool
		u.wcands, c, ok = remove(u.wcands)
		return c, ok
	}
}

func (u *negNode) applyPos(out *delta) {
	for _, it := range u.kd.items {
		var kv event.Value
		def := false
		if u.key != nil {
			kv, def = u.key.of(it.m.Payload)
		}
		if it.del {
			lo, ok := u.loOf[it.m.ID]
			if !ok {
				continue
			}
			u.sh.u.timeMap(u.loOf, it.m.ID)
			delete(u.loOf, it.m.ID)
			if c, found := u.candRemove(lo, it.m.ID, kv, def); found {
				u.sh.u.candDel(u, &c, kv, def)
				if c.blockers == 0 {
					out.del(c.out)
				}
			}
			continue
		}
		c, ok := u.interval(it.m)
		if !ok {
			continue
		}
		if span := c.hi.Sub(c.lo); span > u.maxSpan {
			u.maxSpan = span
		}
		// Count live blockers strictly inside (lo, hi) — for a definite
		// candidate only its own key's blockers (plus wild ones) can have
		// corr true, so only those lists are scanned.
		count := func(ms *matchList) {
			for i := ms.upperBound(c.lo); i < len(ms.ms) && ms.ms[i].V.Start < c.hi; i++ {
				if u.corr == nil || u.corr(c.a.Payload, ms.ms[i].Payload) {
					c.blockers++
				}
			}
		}
		if u.key == nil {
			count(&u.negs)
		} else {
			u.knegs.scan(kv, def, count)
		}
		u.candAdd(c, kv, def)
		u.sh.u.candAdd(u, c.lo, c.a.ID, kv, def)
		u.sh.u.timeMap(u.loOf, c.a.ID)
		u.loOf[c.a.ID] = c.lo
		if c.blockers == 0 {
			out.add(c.out)
		}
	}
}

func (u *negNode) applyNeg(out *delta) {
	for _, it := range u.kd.items {
		t := it.m.V.Start
		var kv event.Value
		def := false
		if u.key != nil {
			kv, def = u.key.of(it.m.Payload)
		}
		if it.del {
			var removed bool
			if u.key == nil {
				removed = u.negs.removeMatch(it.m)
				if removed {
					u.sh.u.listDel(&u.negs, &it.m)
				}
			} else {
				removed = u.knegs.remove(it.m, kv, def)
				if removed {
					u.sh.u.kListDel(&u.knegs, &it.m, kv, def)
				}
			}
			if !removed {
				continue
			}
			u.eachAffected(t, it.m, kv, def, func(c *negCand, bucket int, bkv event.Value) {
				u.sh.u.block(u, bucket, bkv, c.lo, c.a.ID, false)
				c.blockers--
				if c.blockers == 0 {
					out.add(c.out)
				}
			})
			continue
		}
		if u.key == nil {
			u.negs.insert(it.m)
			u.sh.u.listIns(&u.negs, &it.m)
		} else {
			u.knegs.insert(it.m, kv, def)
			u.sh.u.kListIns(&u.knegs, &it.m, kv, def)
		}
		u.eachAffected(t, it.m, kv, def, func(c *negCand, bucket int, bkv event.Value) {
			u.sh.u.block(u, bucket, bkv, c.lo, c.a.ID, true)
			c.blockers++
			if c.blockers == 1 {
				out.del(c.out)
			}
		})
	}
}

// eachAffected visits every candidate whose interval strictly contains t
// and whose correlation predicate matches the negative match. A definite
// negative match visits its own key's candidates plus the wild ones; a
// wild one visits everything, exactly as unkeyed. The callback receives the
// candidate's list identity (bucket kind + key) so a blocker-count mutation
// can be journaled in a form the undo path can re-locate — candidate slices
// reallocate, so a *negCand must never outlive the visit.
func (u *negNode) eachAffected(t temporal.Time, neg algebra.Match, kv event.Value, def bool,
	fn func(c *negCand, bucket int, bkv event.Value)) {
	visit := func(cs []negCand, bucket int, bkv event.Value) {
		// Any candidate with lo <= t - maxSpan has hi <= lo + maxSpan <= t.
		from := sort.Search(len(cs), func(i int) bool { return cs[i].lo > t.Add(-u.maxSpan) })
		for i := from; i < len(cs) && cs[i].lo < t; i++ {
			c := &cs[i]
			if t >= c.hi {
				continue
			}
			if u.corr == nil || u.corr(c.a.Payload, neg.Payload) {
				fn(c, bucket, bkv)
			}
		}
	}
	if u.key == nil {
		visit(u.cands, bkFlat, nil)
		return
	}
	u.scanCands(kv, def, visit)
}

// scanCands is eachAffected's analog of keyedList.scan for the candidate
// lists: the routing rule lives in one place per store shape.
func (u *negNode) scanCands(kv event.Value, def bool, fn func([]negCand, int, event.Value)) {
	if def {
		fn(u.kcands[kv], bkKey, kv)
	} else {
		for bkv, cs := range u.kcands {
			fn(cs, bkKey, bkv)
		}
	}
	fn(u.wcands, bkWild, nil)
}

func (u *negNode) clone(sh *shared) node {
	c := &negNode{
		kind: u.kind, pos: u.pos.clone(sh), neg: u.neg.clone(sh),
		w: u.w, nIdx: u.nIdx, corr: u.corr, key: u.key, sh: sh,
		cands:   append([]negCand(nil), u.cands...),
		wcands:  append([]negCand(nil), u.wcands...),
		loOf:    make(map[event.ID]temporal.Time, len(u.loOf)),
		negs:    u.negs.clone(),
		knegs:   u.knegs.clone(),
		maxSpan: u.maxSpan,
	}
	if len(u.kcands) > 0 {
		c.kcands = make(map[event.Value][]negCand, len(u.kcands))
		for kv, cs := range u.kcands {
			c.kcands[kv] = append([]negCand(nil), cs...)
		}
	}
	for id, lo := range u.loOf {
		c.loOf[id] = lo
	}
	return c
}
