package inc

import (
	"strings"

	"repro/internal/algebra"
	"repro/internal/event"
)

// Correlation-key pushdown: when the query's WHERE clause proves that every
// detection combines only events agreeing on one payload attribute (a
// CorrelationKey(attr, EQUAL) clause, or a spanning conjunction of pairwise
// {a.attr = b.attr} predicates — internal/lang computes the proof, the plan
// passes the attribute via WithJoinKey), the join and negation stores of the
// matcher tree index their state by that attribute's value. A new child
// match then combines only with picks sharing its key, and a negative-side
// match only visits candidates sharing its key, shrinking the enumeration
// from the cross product of all live matches to the matching key's bucket.
//
// The pushdown is a pure index: every predicate the planner compiled —
// filterNode's residual WHERE conjunction and the negation operators' Corr
// — still runs. Correctness therefore only requires that the index never
// *hides* a combination the predicates would accept:
//
//   - A match's key is *definite* only when every payload value under the
//     attribute (the same suffix rule the language's CorrelationKey
//     expansion uses) exists, is canonically comparable, and is one common
//     value. Anything else — no value, mixed values, an exotic type — is
//     *wild* and keeps combining with every bucket, exactly as unkeyed.
//   - Join nodes skip only definite×definite pairs with unequal keys; the
//     top-level EQUAL filter rejects those composites regardless, so the
//     root's post-filter output set is unchanged. Join keying is further
//     restricted to the pattern's positive scope outside any ATMOST (see
//     buildCtx): negative sides and window counts are not monotone in
//     their input set, so pruning there could add output, not just work.
//   - Negation nodes skip only definite×definite visits with unequal keys,
//     which the planner only enables (the expression's CorrKey annotation)
//     when the site's Corr is provably false on such pairs — so blocker
//     counts, and therefore the node's output set, are unchanged exactly.
//
// Numeric keys are canonicalized to float64 so the buckets equate int64(3)
// with float64(3) the way event.ValueEqual does.

// keyCfg is the pushdown configuration shared by the tree: the correlation
// attribute and its precomputed namespace suffix.
type keyCfg struct {
	attr   string
	suffix string
}

func newKeyCfg(attr string) *keyCfg {
	if attr == "" {
		return nil
	}
	return &keyCfg{attr: attr, suffix: "." + attr}
}

// of extracts a match's correlation key from its (namespaced) payload.
// def reports a definite key; otherwise the match is wild.
//
// Only names of the exact `<alias>.<attr>` form (dot-free prefix) may make
// a key definite, and all of them must agree. A dotted payload attribute
// (e.g. "a.sub.k", which the CorrelationKey suffix filter *does* inspect
// but a pairwise {a.k = b.k} predicate does not) forces the match wild:
// keying on a value some pushed predicate never compares could hide
// combinations that predicate accepts — in particular, pairwise exact
// lookups treat two *absent* values as equal, so a match must never be
// definite unless its exact lookup really carries the key value. Wild is
// always the safe direction; definite is reserved for matches where every
// pushable predicate family provably sees exactly this one value.
func (c *keyCfg) of(p event.Payload) (kv event.Value, def bool) {
	for name, v := range p {
		if !strings.HasSuffix(name, c.suffix) {
			continue
		}
		if strings.Contains(name[:len(name)-len(c.suffix)], ".") {
			return nil, false // dotted payload attribute, not an alias.attr lookup
		}
		cv, ok := canonKeyValue(v)
		if !ok {
			return nil, false
		}
		if !def {
			kv, def = cv, true
		} else if cv != kv {
			return nil, false
		}
	}
	return kv, def
}

// canonKeyValue maps a payload value onto the canonical bucket domain:
// numbers collapse to float64 (matching event.ValueEqual's cross-type
// numeric equality), strings and bools stand for themselves. Other dynamic
// types are not bucketable and make the match wild — as does NaN, which is
// not self-equal: a NaN map key could be inserted but never looked up
// again (and ValueEqual(NaN, NaN) is false, so nothing equality-based can
// ever accept a NaN-keyed combination anyway).
func canonKeyValue(v event.Value) (event.Value, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case float64:
		if x != x {
			return nil, false
		}
		return x, true
	case string:
		return x, true
	case bool:
		return x, true
	default:
		return nil, false
	}
}

// keyedList is the key-indexed variant of matchList: one sorted bucket per
// definite key plus one list for wild matches. Empty buckets are deleted
// eagerly — the pruning seam for key-heavy streams: a source cycling
// through many distinct keys must not leave a map of dead keys behind once
// the watermark (or a removal storm) drains their matches.
type keyedList struct {
	buckets map[event.Value]*matchList
	wild    matchList
}

func (l *keyedList) insert(m algebra.Match, kv event.Value, def bool) {
	if !def {
		l.wild.insert(m)
		return
	}
	b := l.buckets[kv]
	if b == nil {
		if l.buckets == nil {
			l.buckets = make(map[event.Value]*matchList, 8)
		}
		b = &matchList{}
		l.buckets[kv] = b
	}
	b.insert(m)
}

func (l *keyedList) remove(m algebra.Match, kv event.Value, def bool) bool {
	if !def {
		return l.wild.removeMatch(m)
	}
	b := l.buckets[kv]
	if b == nil {
		return false
	}
	ok := b.removeMatch(m)
	if ok && len(b.ms) == 0 {
		delete(l.buckets, kv)
	}
	return ok
}

// scan visits every sorted list a (kv, def) probe may combine with — the
// single source of the pushdown's routing rule: a definite probe sees its
// own key's bucket plus the wild list; a wild probe sees everything.
func (l *keyedList) scan(kv event.Value, def bool, fn func(*matchList)) {
	if def {
		if b := l.buckets[kv]; b != nil {
			fn(b)
		}
	} else {
		for _, b := range l.buckets {
			fn(b)
		}
	}
	fn(&l.wild)
}

func (l *keyedList) clone() keyedList {
	c := keyedList{wild: l.wild.clone()}
	if len(l.buckets) > 0 {
		c.buckets = make(map[event.Value]*matchList, len(l.buckets))
		for kv, b := range l.buckets {
			cb := b.clone()
			c.buckets[kv] = &cb
		}
	}
	return c
}
