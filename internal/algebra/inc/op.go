package inc

import (
	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/ordkey"
	"repro/internal/temporal"
)

// Op is the incremental streaming implementation of a WHEN-clause
// expression: an operators.Op byte-compatible with the semi-naive
// algebra.PatternOp — identical output events in identical order,
// identical Advance order keys, identical state counts — but driven by the
// matcher tree, so per-event cost is O(affected matches) instead of a full
// re-derivation over the live store.
//
// The Op owns emission: the tree maintains pending (the exact match set
// the oracle's Denote would derive over the available store) via deltas,
// and mature applies the SC mode and the FinalizeAt frontier to it with
// the very same ApplySC the oracle uses. Consumption feeds back into the
// tree as contributor removals, with the consumed events parked in a side
// store so a later removal's un-consume path can revive them.
type Op struct {
	Expr    algebra.Expr
	Mode    algebra.SCMode
	OutType string

	sh       *shared
	root     node
	store    map[event.ID]event.Event   // available primitive events
	consumed map[event.ID]event.Event   // consumed contributors, kept for revival
	pending  map[event.ID]algebra.Match // the root's live match set
	emitted  map[event.ID]algebra.Match
	frontier temporal.Time
	scope    temporal.Duration

	// Emission fast path: mature only runs a full ApplySC pass when a
	// pending match could actually emit. minAddFin tracks the earliest
	// FinalizeAt added since the last pass; minFutureFin the earliest
	// unemitted FinalizeAt beyond the frontier as of the last pass; dirty
	// forces a pass after retractions, prunes and revivals, which can make
	// previously suppressed (selection-losing or consume-blocked) matches
	// emittable — the oracle re-derives and re-selects every time, so those
	// late emissions are part of its contract.
	minAddFin    temporal.Time
	minFutureFin temporal.Time
	dirty        bool

	scratch []algebra.Match
}

// NewOp builds the incremental pattern operator for expr. The expression
// must be Supported; outType names the composite events it emits.
func NewOp(expr algebra.Expr, mode algebra.SCMode, outType string) *Op {
	if outType == "" {
		outType = "composite"
	}
	scope := expr.MaxScope()
	if scope <= 0 {
		scope = 1
	}
	sh := &shared{vs: map[event.ID]temporal.Time{}}
	return &Op{
		Expr:         expr,
		Mode:         mode,
		OutType:      outType,
		sh:           sh,
		root:         build(expr, sh),
		store:        map[event.ID]event.Event{},
		consumed:     map[event.ID]event.Event{},
		pending:      map[event.ID]algebra.Match{},
		emitted:      map[event.ID]algebra.Match{},
		frontier:     temporal.MinTime,
		scope:        scope,
		minAddFin:    temporal.Infinity,
		minFutureFin: temporal.Infinity,
	}
}

// Name implements operators.Op.
func (p *Op) Name() string { return "incpattern:" + p.Expr.String() }

// Arity implements operators.Op.
func (p *Op) Arity() int { return 1 }

// applySource tags where a delta came from; only real removals may turn
// into output retractions (handled by the emitted scan in remove), and
// only removal-shaped sources mark the pending set dirty.
type applySource uint8

const (
	srcInsert applySource = iota
	srcRemove
	srcPrune
	srcConsume
	srcRevive
)

// apply folds a root delta into the pending set.
func (p *Op) apply(d delta, src applySource) {
	for _, it := range d.items {
		if it.del {
			if _, ok := p.pending[it.m.ID]; ok {
				delete(p.pending, it.m.ID)
				// A disappearing group member can hand its selection slot
				// to a suppressed sibling on the *next* pass (the oracle
				// re-selects over a fresh derivation every mature); rescan.
				// This applies to insert-path deletions too: under aligned
				// input a newly blocked candidate's group cannot have
				// matured, but the oracle tolerates misaligned input (a
				// straggler blocker landing after its window was already
				// selected over) and re-emits the freed sibling — so must
				// we.
				p.dirty = true
			}
			continue
		}
		p.pending[it.m.ID] = it.m
		if it.m.FinalizeAt < p.minAddFin {
			p.minAddFin = it.m.FinalizeAt
		}
	}
}

// Process implements operators.Op.
func (p *Op) Process(_ int, e event.Event) []event.Event {
	if e.Kind == event.Retract {
		if !e.V.Empty() {
			return nil // lifetime shrink: pattern semantics see only Vs
		}
		return p.remove(e.ID)
	}
	if e.V.Start > p.frontier {
		p.frontier = e.V.Start
	}
	ec := e.Clone()
	p.store[ec.ID] = ec
	if ec.Kind == event.Insert {
		p.sh.vs[ec.ID] = ec.V.Start
	}
	p.apply(p.root.push(ec), srcInsert)
	return p.mature()
}

// remove handles a full removal of a primitive event: cascade it through
// the tree, retract dependent emitted outputs in deterministic commit
// order, revive un-consumed contributors, and re-mature.
func (p *Op) remove(id event.ID) []event.Event {
	_, inStore := p.store[id]
	_, wasConsumed := p.consumed[id]
	if !inStore && !wasConsumed {
		return nil
	}
	delete(p.store, id)
	delete(p.consumed, id)
	delete(p.sh.vs, id)
	if inStore {
		p.apply(p.root.remove(id), srcRemove)
	}

	// Emitted outputs that depend on the removed contributor: retract in
	// the commit order the oracle's (sorted) emitted scan produces.
	var hit []algebra.Match
	for _, m := range p.emitted {
		for _, c := range m.CBT {
			if c == id {
				hit = append(hit, m)
				break
			}
		}
	}
	algebra.SortMatches(hit)
	var outs []event.Event
	for _, m := range hit {
		r := m.Event(p.OutType)
		r.Kind = event.Retract
		r.V.End = r.V.Start
		outs = append(outs, r)
		delete(p.emitted, m.ID)
		p.dirty = true
		if wasConsumed || p.Mode.Cons == algebra.Consume {
			for _, c := range m.CBT {
				if c == id {
					continue
				}
				if ev, ok := p.consumed[c]; ok {
					delete(p.consumed, c)
					p.store[c] = ev
					p.sh.vs[c] = ev.V.Start
					p.apply(p.root.push(ev), srcRevive)
				}
			}
		}
	}
	outs = append(outs, p.mature()...)
	return outs
}

// mature emits every not-yet-emitted pending match whose FinalizeAt the
// frontier covers, in deterministic commit order, honoring the SC mode —
// the oracle's emission loop verbatim, run over the maintained pending set
// instead of a fresh derivation, and skipped entirely while nothing can
// emit.
func (p *Op) mature() []event.Event {
	if !p.dirty && p.minAddFin > p.frontier && p.minFutureFin > p.frontier {
		return nil
	}
	p.dirty = false
	p.minAddFin = temporal.Infinity
	ms := p.scratch[:0]
	for _, m := range p.pending {
		ms = append(ms, m)
	}
	algebra.SortMatches(ms)
	p.scratch = ms[:0]
	ms = algebra.ApplySC(ms, p.Mode)
	minFut := temporal.Infinity
	var outs []event.Event
	for _, m := range ms {
		if m.FinalizeAt > p.frontier {
			if _, done := p.emitted[m.ID]; !done && m.FinalizeAt < minFut {
				minFut = m.FinalizeAt
			}
			continue
		}
		if _, done := p.emitted[m.ID]; done {
			continue
		}
		p.emitted[m.ID] = m
		if p.Mode.Cons == algebra.Consume {
			p.consume(m)
		}
		outs = append(outs, m.Event(p.OutType))
	}
	p.minFutureFin = minFut
	return outs
}

// consume parks an emitted match's contributors in the side store and
// removes them from the tree, so no later instance can reuse them — and so
// remove() can resurrect them.
func (p *Op) consume(m algebra.Match) {
	for _, id := range m.CBT {
		ev, ok := p.store[id]
		if !ok {
			continue
		}
		delete(p.store, id)
		delete(p.sh.vs, id)
		p.consumed[id] = ev
		p.apply(p.root.remove(id), srcConsume)
	}
}

// Advance implements operators.Op: move the certainty frontier, emit
// finalized detections, prune state beyond the expression scope.
func (p *Op) Advance(t temporal.Time) []event.Event {
	if t > p.frontier {
		p.frontier = t
	}
	outs := p.mature()
	if !p.frontier.IsInfinite() {
		// Prune on every advance, exactly like the oracle: even input that
		// violates the alignment contract (which the oracle tolerates) must
		// leave both implementations in identical state.
		horizon := p.frontier.Add(-p.scope)
		p.apply(p.root.prune(horizon), srcPrune)
		for id, e := range p.store {
			if e.V.Start < horizon {
				delete(p.store, id)
				delete(p.sh.vs, id)
			}
		}
		for id, e := range p.consumed {
			if e.V.Start < horizon {
				delete(p.consumed, id)
			}
		}
		for id, m := range p.emitted {
			if m.LastVs < horizon {
				delete(p.emitted, id)
			}
		}
	} else {
		p.sh = &shared{vs: map[event.ID]temporal.Time{}}
		p.root = build(p.Expr, p.sh)
		p.store = map[event.ID]event.Event{}
		p.consumed = map[event.ID]event.Event{}
		p.pending = map[event.ID]algebra.Match{}
		p.dirty = false
		p.minAddFin = temporal.Infinity
		p.minFutureFin = temporal.Infinity
	}
	return outs
}

// AppendAdvanceKey implements operators.AdvanceOrdered, byte-identical to
// the oracle: mature commits detections in (FinalizeAt, Vs, FirstVs, ID)
// order, so that tuple is the cross-key position of an Advance output.
func (p *Op) AppendAdvanceKey(dst []byte, e event.Event) []byte {
	fin, vs, first := e.V.Start, e.V.Start, e.RT
	if m, ok := p.emitted[e.ID]; ok {
		fin, vs, first = m.FinalizeAt, m.V.Start, m.FirstVs
	}
	dst = ordkey.AppendInt(dst, int64(fin))
	dst = ordkey.AppendInt(dst, int64(vs))
	dst = ordkey.AppendInt(dst, int64(first))
	return ordkey.AppendUint(dst, uint64(e.ID))
}

// OutputGuarantee implements operators.Op, identically to the oracle.
func (p *Op) OutputGuarantee(t temporal.Time) temporal.Time {
	if t.IsInfinite() {
		return t
	}
	return t.Add(-p.scope)
}

// StateSize implements operators.Op: retained primitive events (available
// and consumed — the oracle keeps both in its store) plus emitted matches.
func (p *Op) StateSize() int { return len(p.store) + len(p.consumed) + len(p.emitted) }

// Clone implements operators.Op.
func (p *Op) Clone() operators.Op {
	sh := &shared{vs: make(map[event.ID]temporal.Time, len(p.sh.vs))}
	for id, t := range p.sh.vs {
		sh.vs[id] = t
	}
	c := &Op{
		Expr:         p.Expr,
		Mode:         p.Mode,
		OutType:      p.OutType,
		sh:           sh,
		root:         p.root.clone(sh),
		store:        make(map[event.ID]event.Event, len(p.store)),
		consumed:     make(map[event.ID]event.Event, len(p.consumed)),
		pending:      make(map[event.ID]algebra.Match, len(p.pending)),
		emitted:      make(map[event.ID]algebra.Match, len(p.emitted)),
		frontier:     p.frontier,
		scope:        p.scope,
		minAddFin:    p.minAddFin,
		minFutureFin: p.minFutureFin,
		dirty:        p.dirty,
	}
	for id, e := range p.store {
		c.store[id] = e
	}
	for id, e := range p.consumed {
		c.consumed[id] = e
	}
	for id, m := range p.pending {
		c.pending[id] = m
	}
	for id, m := range p.emitted {
		c.emitted[id] = m
	}
	return c
}
