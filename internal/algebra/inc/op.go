package inc

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/ordkey"
	"repro/internal/temporal"
)

// Op is the incremental streaming implementation of a WHEN-clause
// expression: an operators.Op byte-compatible with the semi-naive
// algebra.PatternOp — identical output events in identical order,
// identical Advance order keys, identical state counts — but driven by the
// matcher tree, so per-event cost is O(affected matches) instead of a full
// re-derivation over the live store.
//
// The Op owns emission: the tree maintains pending (the exact match set
// the oracle's Denote would derive over the available store) via deltas,
// and mature applies the SC mode and the FinalizeAt frontier to it with
// the oracle's ApplySC logic. Consumption feeds back into the tree as
// contributor removals, with the consumed events parked in a side store so
// a later removal's un-consume path can revive them.
//
// Unlike the oracle, which sorts a fresh derivation on every step, the
// pending set is maintained *in commit order* ((FinalizeAt, Vs, FirstVs,
// ID) — the SortMatches order) by binary insertion, and mature commits it
// group by group: each consecutive (FinalizeAt, LastVs) run — the oracle's
// ApplySC detection group — is selected and consumed with the same
// threaded consumed-set, but the walk stops at the first group beyond the
// frontier (later groups can only influence groups later still, none of
// which may emit yet) and, under reuse consumption, resumes after the
// stable already-committed prefix instead of re-scanning it.
type Op struct {
	Expr    algebra.Expr
	Mode    algebra.SCMode
	OutType string

	// keyAttr is the correlation-key pushdown attribute (WithJoinKey);
	// empty means unkeyed. See key.go.
	keyAttr string
	// trackVs: maintain sh.vs, the available-occurrence table. Only
	// UNLESS' nodes read it (anchor resolution), so every other
	// expression skips the per-event map writes it would cost.
	trackVs bool

	sh       *shared
	root     node
	store    map[event.ID]event.Event // available primitive events
	consumed map[event.ID]event.Event // consumed contributors, kept for revival
	pending  pendingList              // the root's live match set, in commit order
	emitted  map[event.ID]algebra.Match
	frontier temporal.Time
	scope    temporal.Duration

	// Emission fast path: mature only runs a commit pass when a pending
	// match could actually emit. minAddFin tracks the earliest FinalizeAt
	// added since the last pass; minFutureFin the earliest pending
	// FinalizeAt beyond the frontier as of the last pass; dirty forces a
	// pass after retractions, prunes and revivals, which can make
	// previously suppressed (selection-losing or consume-blocked) matches
	// emittable — the oracle re-derives and re-selects every time, so those
	// late emissions are part of its contract.
	minAddFin    temporal.Time
	minFutureFin temporal.Time
	dirty        bool
	// stable: pending entries below this index form whole detection groups
	// already committed by a previous pass and untouched since; under
	// reuse consumption a pass starts there (selection is deterministic on
	// group content, so unchanged groups can emit nothing new). Any
	// insertion or deletion below the boundary resets it. Consume mode
	// always walks from 0: its consumed-set threads across groups.
	stable int

	// Prune watermarks: the prune scans over the tree, the stores and the
	// emitted table are skipped entirely while the horizon lies at or
	// below the earliest retained occurrence. Tree state derives from
	// leaf events, every one of which lives in store, so lowVs covers the
	// tree too. The watermarks are conservative lower bounds: deletions
	// leave them stale (forcing at most one extra scan, which recomputes
	// them exactly).
	lowVs   temporal.Time // min V.Start over store ∪ consumed
	lowEmit temporal.Time // min LastVs over emitted

	// aliased: this handle's state is structurally shared with at least one
	// other handle (a lazy Clone). Every shared structure is frozen — any
	// handle's first mutation deep-copies its own view first (ensureOwned),
	// so Clone itself is O(1).
	aliased bool

	rootDelta delta             // reusable root-transition scratch
	selBuf    []algebra.Match   // per-pass committed-selection scratch
	consBuf   map[event.ID]bool // per-pass consumed-set scratch
	outBuf    []event.Event     // mature's reusable output buffer
	remBuf    []event.Event     // remove's reusable output buffer
}

// pendingList keeps the live match set sorted in commit order — exactly
// algebra.SortMatches' (FinalizeAt, Vs, FirstVs, ID) — so mature never
// sorts. ID breaks every tie, making the order total: each match has one
// slot.
type pendingList struct {
	ms []algebra.Match
}

func commitBefore(a, b *algebra.Match) bool {
	if a.FinalizeAt != b.FinalizeAt {
		return a.FinalizeAt < b.FinalizeAt
	}
	if a.V.Start != b.V.Start {
		return a.V.Start < b.V.Start
	}
	if a.FirstVs != b.FirstVs {
		return a.FirstVs < b.FirstVs
	}
	return a.ID < b.ID
}

// slot locates m's insertion index and whether an entry with m's ID is
// already there.
func (l *pendingList) slot(m *algebra.Match) (int, bool) {
	i := sort.Search(len(l.ms), func(i int) bool { return !commitBefore(&l.ms[i], m) })
	return i, i < len(l.ms) && l.ms[i].ID == m.ID && !commitBefore(m, &l.ms[i])
}

func (l *pendingList) insertAt(i int, m algebra.Match) {
	l.ms = append(l.ms, algebra.Match{})
	copy(l.ms[i+1:], l.ms[i:])
	l.ms[i] = m
}

func (l *pendingList) removeAt(i int) {
	l.ms = append(l.ms[:i], l.ms[i+1:]...)
}

func (l *pendingList) size() int { return len(l.ms) }

// OpOption configures NewOp.
type OpOption func(*Op)

// WithJoinKey enables correlation-key pushdown on attr: the tree's join
// lists and (where the expression's CorrKey annotations allow) negation
// stores index their state by the attribute's value, so matching combines
// only within a key instead of across the whole store. The caller — in
// practice the planner — must have proven that the query's predicates
// reject every cross-key combination; the pushdown is a pure index and all
// compiled predicates still run (see key.go for the exact contract).
func WithJoinKey(attr string) OpOption {
	return func(p *Op) { p.keyAttr = attr }
}

// NewOp builds the incremental pattern operator for expr. The expression
// must be Supported; outType names the composite events it emits.
func NewOp(expr algebra.Expr, mode algebra.SCMode, outType string, opts ...OpOption) *Op {
	if outType == "" {
		outType = "composite"
	}
	scope := expr.MaxScope()
	if scope <= 0 {
		scope = 1
	}
	p := &Op{
		Expr:         expr,
		Mode:         mode,
		OutType:      outType,
		store:        map[event.ID]event.Event{},
		consumed:     map[event.ID]event.Event{},
		emitted:      map[event.ID]algebra.Match{},
		frontier:     temporal.MinTime,
		scope:        scope,
		minAddFin:    temporal.Infinity,
		minFutureFin: temporal.Infinity,
		lowVs:        temporal.Infinity,
		lowEmit:      temporal.Infinity,
	}
	for _, o := range opts {
		o(p)
	}
	p.trackVs = usesAnchorTimes(expr)
	p.sh = &shared{vs: map[event.ID]temporal.Time{}, key: newKeyCfg(p.keyAttr), u: &undoLog{}}
	p.root = build(expr, p.sh, buildCtx{pos: true})
	return p
}

// usesAnchorTimes reports whether the expression contains an UNLESS' node
// — the only reader of the shared occurrence-time table.
func usesAnchorTimes(x algebra.Expr) bool {
	switch e := x.(type) {
	case algebra.UnlessPrimeExpr:
		return true
	case algebra.SequenceExpr:
		return anyAnchorTimes(e.Kids)
	case algebra.AtLeastExpr:
		return anyAnchorTimes(e.Kids)
	case algebra.AtMostExpr:
		return anyAnchorTimes(e.Kids)
	case algebra.UnlessExpr:
		return usesAnchorTimes(e.A) || usesAnchorTimes(e.B)
	case algebra.NotExpr:
		return usesAnchorTimes(e.Seq) || usesAnchorTimes(e.Neg)
	case algebra.CancelWhenExpr:
		return usesAnchorTimes(e.E) || usesAnchorTimes(e.Cancel)
	case algebra.FilterExpr:
		return usesAnchorTimes(e.Kid)
	default:
		return false
	}
}

func anyAnchorTimes(kids []algebra.Expr) bool {
	for _, k := range kids {
		if usesAnchorTimes(k) {
			return true
		}
	}
	return false
}

// JoinKey reports the pushdown attribute, or "" when unkeyed.
func (p *Op) JoinKey() string { return p.keyAttr }

// Name implements operators.Op.
func (p *Op) Name() string { return "incpattern:" + p.Expr.String() }

// Arity implements operators.Op.
func (p *Op) Arity() int { return 1 }

// applySource tags where a delta came from; only real removals may turn
// into output retractions (handled by the emitted scan in remove), and
// only removal-shaped sources mark the pending set dirty.
type applySource uint8

const (
	srcInsert applySource = iota
	srcRemove
	srcPrune
	srcConsume
	srcRevive
)

// apply folds a root delta into the pending set.
func (p *Op) apply(d *delta, src applySource) {
	u := p.sh.u
	for _, it := range d.items {
		if it.del {
			if i, ok := p.pending.slot(&it.m); ok {
				u.pendDel(&p.pending, i)
				p.pending.removeAt(i)
				if i < p.stable {
					p.stable = 0
				}
				// A disappearing group member can hand its selection slot
				// to a suppressed sibling on the *next* pass (the oracle
				// re-selects over a fresh derivation every mature); rescan.
				// This applies to insert-path deletions too: under aligned
				// input a newly blocked candidate's group cannot have
				// matured, but the oracle tolerates misaligned input (a
				// straggler blocker landing after its window was already
				// selected over) and re-emits the freed sibling — so must
				// we.
				p.dirty = true
			}
			continue
		}
		i, exists := p.pending.slot(&it.m)
		if exists {
			u.pendSet(&p.pending, i)
			p.pending.ms[i] = it.m
			continue
		}
		// The stable prefix ends on a group boundary; an insert below it —
		// or at it, when the new match extends the group just before it —
		// changes an already-committed group and forces a full re-walk.
		if i < p.stable || (i == p.stable && i > 0 &&
			p.pending.ms[i-1].FinalizeAt == it.m.FinalizeAt &&
			p.pending.ms[i-1].LastVs == it.m.LastVs) {
			p.stable = 0
		}
		p.pending.insertAt(i, it.m)
		u.pendIns(&p.pending, i)
		if it.m.FinalizeAt < p.minAddFin {
			p.minAddFin = it.m.FinalizeAt
		}
	}
}

// Process implements operators.Op.
func (p *Op) Process(_ int, e event.Event) []event.Event {
	p.ensureOwned()
	if e.Kind == event.Retract {
		if !e.V.Empty() {
			return nil // lifetime shrink: pattern semantics see only Vs
		}
		return p.remove(e.ID)
	}
	if e.V.Start > p.frontier {
		p.frontier = e.V.Start
	}
	// Events are stored by value; payload and lineage slices stay shared
	// with the caller's event. Operator payloads are immutable by contract
	// (the monitor's repair diff leans on exactly that sharing), so the
	// defensive deep clone the oracle performs buys nothing here — and the
	// leaf re-namespaces the payload into a fresh map anyway.
	p.sh.u.evMap(p.store, e.ID)
	p.store[e.ID] = e
	if e.V.Start < p.lowVs {
		p.lowVs = e.V.Start
	}
	if p.trackVs && e.Kind == event.Insert {
		p.sh.u.timeMap(p.sh.vs, e.ID)
		p.sh.vs[e.ID] = e.V.Start
	}
	p.rootDelta.reset()
	p.root.push(e, &p.rootDelta)
	p.apply(&p.rootDelta, srcInsert)
	outs := p.mature()
	p.sh.u.flush()
	return outs
}

// remove handles a full removal of a primitive event: cascade it through
// the tree, retract dependent emitted outputs in deterministic commit
// order, revive un-consumed contributors, and re-mature.
func (p *Op) remove(id event.ID) []event.Event {
	sev, inStore := p.store[id]
	cev, wasConsumed := p.consumed[id]
	if !inStore && !wasConsumed {
		return nil
	}
	if inStore {
		p.sh.u.evMapKnown(p.store, id, sev)
	}
	if wasConsumed {
		p.sh.u.evMapKnown(p.consumed, id, cev)
	}
	delete(p.store, id)
	delete(p.consumed, id)
	if p.trackVs {
		p.sh.u.timeMap(p.sh.vs, id)
		delete(p.sh.vs, id)
	}
	if inStore {
		p.rootDelta.reset()
		p.root.remove(id, &p.rootDelta)
		p.apply(&p.rootDelta, srcRemove)
	}

	// Emitted outputs that depend on the removed contributor: retract in
	// the commit order the oracle's (sorted) emitted scan produces.
	var hit []algebra.Match
	for _, m := range p.emitted {
		for _, c := range m.CBT {
			if c == id {
				hit = append(hit, m)
				break
			}
		}
	}
	algebra.SortMatches(hit)
	outs := p.remBuf[:0]
	for _, m := range hit {
		r := m.Event(p.OutType)
		r.Kind = event.Retract
		r.V.End = r.V.Start
		outs = append(outs, r)
		p.sh.u.matchMap(p.emitted, m.ID)
		delete(p.emitted, m.ID)
		p.dirty = true
		if wasConsumed || p.Mode.Cons == algebra.Consume {
			for _, c := range m.CBT {
				if c == id {
					continue
				}
				if ev, ok := p.consumed[c]; ok {
					p.sh.u.evMapKnown(p.consumed, c, ev)
					delete(p.consumed, c)
					p.sh.u.evMap(p.store, c)
					p.store[c] = ev
					if p.trackVs {
						p.sh.u.timeMap(p.sh.vs, c)
						p.sh.vs[c] = ev.V.Start
					}
					p.rootDelta.reset()
					p.root.push(ev, &p.rootDelta)
					p.apply(&p.rootDelta, srcRevive)
				}
			}
		}
	}
	outs = append(outs, p.mature()...)
	p.remBuf = outs[:0]
	p.sh.u.flush()
	return outs
}

// mature emits every not-yet-emitted pending match whose FinalizeAt the
// frontier covers, in deterministic commit order, honoring the SC mode —
// the oracle's ApplySC emission loop, run group by group over the
// commit-ordered pending set instead of a fresh sorted derivation, skipped
// entirely while nothing can emit, and cut short at the first group beyond
// the frontier.
func (p *Op) mature() []event.Event {
	if !p.dirty && p.minAddFin > p.frontier && p.minFutureFin > p.frontier {
		return nil
	}
	p.dirty = false
	p.minAddFin = temporal.Infinity

	ms := p.pending.ms
	start := 0
	if p.Mode.Cons == algebra.Reuse {
		// stable <= len(ms) is invariant: it is only ever set to a group
		// boundary of the current list, and every mutation below it
		// resets it to 0.
		start = p.stable
	}

	// Phase 1 — selection: the oracle's ApplySC over the groups the
	// frontier covers, into reusable scratch, one algebra.CommitGroup call
	// per (FinalizeAt, LastVs) run — the very function ApplySC commits
	// with. Groups beyond the frontier cannot emit and their consumption
	// can only affect groups later still, so the walk stops there.
	sel := p.selBuf[:0]
	var consumed map[event.ID]bool
	if p.Mode.Cons == algebra.Consume {
		if p.consBuf == nil {
			p.consBuf = map[event.ID]bool{}
		} else {
			clear(p.consBuf)
		}
		consumed = p.consBuf
	}

	cut := start
	for cut < len(ms) && ms[cut].FinalizeAt <= p.frontier {
		i := cut
		j := i + 1
		for j < len(ms) && ms[j].FinalizeAt == ms[i].FinalizeAt && ms[j].LastVs == ms[i].LastVs {
			j++
		}
		sel = algebra.CommitGroup(ms[i:j], p.Mode, consumed, sel)
		cut = j
	}

	// Entries past the cut were never emitted (emission requires the
	// frontier to have covered them, and the frontier only grows), so the
	// first one's FinalizeAt is the earliest future emission candidate.
	if cut < len(ms) {
		p.minFutureFin = ms[cut].FinalizeAt
	} else {
		p.minFutureFin = temporal.Infinity
	}
	if p.Mode.Cons == algebra.Reuse {
		p.stable = cut
	}

	// Phase 2 — emission with consume feedback. The feedback mutates the
	// pending list (and p.stable/dirty through apply), which is why the
	// selection above committed into scratch first — exactly the
	// ApplySC-then-emit split the oracle uses.
	outs := p.outBuf[:0]
	for si := range sel {
		m := sel[si]
		if _, done := p.emitted[m.ID]; done {
			continue
		}
		p.sh.u.matchMap(p.emitted, m.ID)
		p.emitted[m.ID] = m
		if m.LastVs < p.lowEmit {
			p.lowEmit = m.LastVs
		}
		if p.Mode.Cons == algebra.Consume {
			p.consume(m)
		}
		outs = append(outs, m.Event(p.OutType))
	}
	p.selBuf = sel[:0]
	p.outBuf = outs[:0]
	return outs
}

// consume parks an emitted match's contributors in the side store and
// removes them from the tree, so no later instance can reuse them — and so
// remove() can resurrect them.
func (p *Op) consume(m algebra.Match) {
	for _, id := range m.CBT {
		ev, ok := p.store[id]
		if !ok {
			continue
		}
		p.sh.u.evMapKnown(p.store, id, ev)
		delete(p.store, id)
		if p.trackVs {
			p.sh.u.timeMap(p.sh.vs, id)
			delete(p.sh.vs, id)
		}
		p.sh.u.evMap(p.consumed, id)
		p.consumed[id] = ev
		p.rootDelta.reset()
		p.root.remove(id, &p.rootDelta)
		p.apply(&p.rootDelta, srcConsume)
	}
}

// Advance implements operators.Op: move the certainty frontier, emit
// finalized detections, prune state beyond the expression scope.
func (p *Op) Advance(t temporal.Time) []event.Event {
	p.ensureOwned()
	if t > p.frontier {
		p.frontier = t
	}
	outs := p.mature()
	if !p.frontier.IsInfinite() {
		// Prune on every advance, exactly like the oracle: even input that
		// violates the alignment contract (which the oracle tolerates) must
		// leave both implementations in identical state. The watermarks
		// skip the scans when nothing can be below the horizon — skipping
		// a provably empty prune leaves identical state.
		horizon := p.frontier.Add(-p.scope)
		if horizon > p.lowVs {
			p.rootDelta.reset()
			p.root.prune(horizon, &p.rootDelta)
			p.apply(&p.rootDelta, srcPrune)
			low := temporal.Infinity
			for id, e := range p.store {
				if e.V.Start < horizon {
					p.sh.u.evMapKnown(p.store, id, e)
					delete(p.store, id)
					if p.trackVs {
						p.sh.u.timeMap(p.sh.vs, id)
						delete(p.sh.vs, id)
					}
				} else if e.V.Start < low {
					low = e.V.Start
				}
			}
			for id, e := range p.consumed {
				if e.V.Start < horizon {
					p.sh.u.evMapKnown(p.consumed, id, e)
					delete(p.consumed, id)
				} else if e.V.Start < low {
					low = e.V.Start
				}
			}
			p.lowVs = low
		}
		if horizon > p.lowEmit {
			low := temporal.Infinity
			for id, m := range p.emitted {
				if m.LastVs < horizon {
					p.sh.u.matchMap(p.emitted, id)
					delete(p.emitted, id)
				} else if m.LastVs < low {
					low = m.LastVs
				}
			}
			p.lowEmit = low
		}
	} else {
		// Wholesale reset: journal the replaced containers (the tree, the
		// stores, the pending list) as one record, then rebuild. The new
		// shared struct keeps the same journal.
		p.sh.u.reset(p)
		p.sh = &shared{vs: map[event.ID]temporal.Time{}, key: p.sh.key, u: p.sh.u}
		p.root = build(p.Expr, p.sh, buildCtx{pos: true})
		p.store = map[event.ID]event.Event{}
		p.consumed = map[event.ID]event.Event{}
		p.pending = pendingList{}
		p.dirty = false
		p.stable = 0
		p.minAddFin = temporal.Infinity
		p.minFutureFin = temporal.Infinity
		p.lowVs = temporal.Infinity
	}
	p.sh.u.flush()
	return outs
}

// AppendAdvanceKey implements operators.AdvanceOrdered, byte-identical to
// the oracle: mature commits detections in (FinalizeAt, Vs, FirstVs, ID)
// order, so that tuple is the cross-key position of an Advance output.
func (p *Op) AppendAdvanceKey(dst []byte, e event.Event) []byte {
	fin, vs, first := e.V.Start, e.V.Start, e.RT
	if m, ok := p.emitted[e.ID]; ok {
		fin, vs, first = m.FinalizeAt, m.V.Start, m.FirstVs
	}
	dst = ordkey.AppendInt(dst, int64(fin))
	dst = ordkey.AppendInt(dst, int64(vs))
	dst = ordkey.AppendInt(dst, int64(first))
	return ordkey.AppendUint(dst, uint64(e.ID))
}

// OutputGuarantee implements operators.Op, identically to the oracle.
func (p *Op) OutputGuarantee(t temporal.Time) temporal.Time {
	if t.IsInfinite() {
		return t
	}
	return t.Add(-p.scope)
}

// StateSize implements operators.Op: retained primitive events (available
// and consumed — the oracle keeps both in its store) plus emitted matches.
func (p *Op) StateSize() int { return len(p.store) + len(p.consumed) + len(p.emitted) }

// PerEventCostNs implements operators.CostHint for the overhead-aware
// shard-count heuristic: the delta tree's cost scales with the
// expression's join and negation structure.
func (p *Op) PerEventCostNs() int { return algebra.ExprCostNs(p.Expr) }

// Clone implements operators.Op as an O(1) copy-on-write handle: the clone
// and the original share every state structure, both marked aliased, and
// whichever handle mutates first deep-copies its own view (ensureOwned).
// The tree's interning caches are shared either way (clones run
// sequentially — the Op contract). A clone never inherits scratch buffers:
// it grows its own on first use.
//
// When the undo journal is on (the operator is serving as a Versioned
// checkpoint target), Clone falls back to an eager deep copy with a fresh,
// off journal: journal records point into the live structures, so those
// may not be frozen under an aliased handle.
func (p *Op) Clone() operators.Op {
	if p.sh.u.on {
		return p.deepClone()
	}
	c := new(Op)
	*c = *p
	c.rootDelta = delta{}
	c.selBuf, c.consBuf, c.outBuf, c.remBuf = nil, nil, nil, nil
	c.aliased = true
	p.aliased = true
	return c
}

// ensureOwned makes the handle the sole owner of its state, deep-copying
// the shared (frozen) structures on the first mutation after a lazy Clone.
func (p *Op) ensureOwned() {
	if p.aliased {
		c := p.deepClone()
		c.rootDelta = p.rootDelta
		c.selBuf, c.consBuf, c.outBuf, c.remBuf = p.selBuf, p.consBuf, p.outBuf, p.remBuf
		*p = *c
	}
}

// deepClone is the eager copy: mutable state duplicated, interning caches
// shared, a fresh (off) journal.
func (p *Op) deepClone() *Op {
	sh := &shared{vs: make(map[event.ID]temporal.Time, len(p.sh.vs)), key: p.sh.key, u: &undoLog{}}
	for id, t := range p.sh.vs {
		sh.vs[id] = t
	}
	c := &Op{
		Expr:         p.Expr,
		Mode:         p.Mode,
		OutType:      p.OutType,
		keyAttr:      p.keyAttr,
		trackVs:      p.trackVs,
		sh:           sh,
		root:         p.root.clone(sh),
		store:        make(map[event.ID]event.Event, len(p.store)),
		consumed:     make(map[event.ID]event.Event, len(p.consumed)),
		pending:      pendingList{ms: append([]algebra.Match(nil), p.pending.ms...)},
		emitted:      make(map[event.ID]algebra.Match, len(p.emitted)),
		frontier:     p.frontier,
		scope:        p.scope,
		minAddFin:    p.minAddFin,
		minFutureFin: p.minFutureFin,
		dirty:        p.dirty,
		stable:       p.stable,
		lowVs:        p.lowVs,
		lowEmit:      p.lowEmit,
	}
	for id, e := range p.store {
		c.store[id] = e
	}
	for id, e := range p.consumed {
		c.consumed[id] = e
	}
	for id, m := range p.emitted {
		c.emitted[id] = m
	}
	return c
}

// Mark implements operators.Versioned: an O(1) barrier append returning a
// handle for the operator's current state. The first Mark turns the undo
// journal on; from then on every state mutation appends its exact inverse.
func (p *Op) Mark() operators.Version {
	p.ensureOwned()
	return operators.Version{Pos: p.sh.u.mark(p)}
}

// Rollback implements operators.Versioned: undo every mutation back to v,
// in O(mutations since v). v stays valid and can be rolled back to again;
// versions marked after v are invalidated.
func (p *Op) Rollback(v operators.Version) bool {
	if p.aliased || !p.sh.u.on {
		return false
	}
	return p.sh.u.rollbackTo(v.Pos, p)
}

// Compact implements operators.Versioned: discard undo history strictly
// below v, in O(discarded records).
func (p *Op) Compact(v operators.Version) {
	if p.aliased || !p.sh.u.on {
		return
	}
	p.sh.u.compact(v.Pos)
}
