package inc

import (
	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/temporal"
)

// The undo journal: the mechanism behind Op's operators.Versioned
// implementation. While journaling is on, every mutation of the operator's
// durable state — the stores and pending list on the Op itself and the
// join/candidate/blocker state inside the matcher tree — first appends an
// exact inverse record. Mark() is then an O(1) barrier append, Rollback(v)
// pops and undoes records LIFO back to the barrier, and Compact(v) drops
// the history below it. This is what turns the consistency monitor's
// snapshots into near-free version handles and its repair into an
// O(mutations since) rewind instead of clone-and-replay.
//
// What is journaled and what is provably safe to skip:
//
//   - Every map/store/list mutation is journaled with an exact inverse
//     (prior value + existence for map keys, the removed/inserted value
//     for sorted lists, index-based records — sound under strict LIFO —
//     for the pending list and the ATMOST entry array).
//   - Op scalars (frontier, watermarks, mature fast-path state) are NOT
//     journaled per mutation: a barrier snapshots all of them, and
//     Rollback restores the barrier's copy wholesale.
//   - The interning caches (combCache entries, leaf payload interning) are
//     never journaled: entries are immutable values keyed by globally
//     unique IDs, so a post-rollback re-derivation that hits a cache entry
//     surviving from the undone future gets the byte-identical match it
//     would have rebuilt.
//   - negNode.maxSpan is never journaled: it only widens, and a
//     stale-too-wide span merely starts the candidate scan earlier — every
//     visited candidate is still filtered exactly.
//   - Scratch buffers (deltas, selection/commit scratch) are not state.
//
// Allocation discipline: records go into one flat spine slice; heavyweight
// payloads (matches, events, candidate structs, ID slices) go into typed
// side stacks popped in the same LIFO order the spine is undone in, so the
// steady state appends into amortized-reused backing arrays and the
// journaling cost per mutation is O(1) with no per-record boxing beyond
// the two interface words the spine record already carries.
type undoLog struct {
	on   bool
	base uint64    // absolute position of recs[0]
	recs []undoRec // the spine, in mutation order

	// run stages the records of the open delta commit: appenders write
	// here, and the Op's mutation entry points (Process/Advance/remove)
	// flush the whole run onto the spine in one grown append per commit.
	// Keeping the per-mutation appends off the big spine keeps the hot
	// tree paths writing into one small, cache-resident buffer; the spine
	// only sees batch-granular growth. Mark/Rollback/Compact flush
	// defensively, so spine positions are always computed on a drained run.
	run []undoRec

	// Side payload stacks, LIFO-paired with the spine records that use them.
	ms   []algebra.Match
	evs  []event.Event
	cs   []negCand
	ams  []amEntry
	idss [][]event.ID
	scal []opScalars
	rsts []resetState

	// Absolute bottom positions of the payload stacks and of scal: how many
	// entries compact has dropped from each. Together with the per-barrier
	// top positions recorded at mark time they make compact's payload
	// accounting O(1) instead of a per-record scan of the dropped prefix.
	msDrop, evsDrop, csDrop, amsDrop, idssDrop, rstsDrop, scalDrop uint64
}

// undoRec is one spine record. The kind decides which fields are live; node
// holds the mutated container (a map, a *matchList/*keyedList, or the owning
// node) as an interface over a pointer-shaped value, so appending a record
// never allocates.
type undoRec struct {
	kind uint8
	flag bool
	i    int
	id   event.ID
	t    temporal.Time
	node any
	kv   event.Value
}

const (
	jBarrier  uint8 = iota // a Mark point; payload: scal
	jEvMap                 // map[ID]Event set/delete; flag=existed; payload evs if existed
	jTimeMap               // map[ID]Time set/delete; flag=existed; t=old
	jIntMap                // map[ID]int set/delete; flag=existed; i=old
	jMatchMap              // map[ID]Match set/delete; flag=existed; payload ms if existed
	jListIns               // matchList.insert; payload ms
	jListDel               // matchList.removeMatch (successful); payload ms
	jKListIns              // keyedList.insert; flag=def; payload ms
	jKListDel              // keyedList.remove (successful); flag=def; payload ms
	jPendIns               // pendingList.insertAt(i)
	jPendDel               // pendingList.removeAt(i); payload ms
	jPendSet               // pendingList.ms[i] overwrite; payload ms (old)
	jUsesApp               // uses[id] append; flag=existed; i=old len
	jUsesDel               // delete(uses, id); payload idss
	jAmIns                 // atMost entries insert at i
	jAmDel                 // atMost entries remove at i; payload ams
	jAmCnt                 // atMost entries[i].cnt += delta; flag = delta>0
	jCandAdd               // negNode.candAdd; t=lo, id=a.ID, flag=def
	jCandDel               // negNode.candRemove (successful); flag=def; payload cs
	jBlock                 // negCand.blockers += delta; i=bucket kind; flag = delta>0
	jLeafMin               // leafNode.minVs assignment; t=old
	jReset                 // Advance(∞) full reset; payload rsts
)

// Bucket kinds for jBlock: which candidate list the mutated candidate lives
// in (never store a *negCand — the slice backing reallocates).
const (
	bkFlat = iota // negNode.cands
	bkKey         // negNode.kcands[kv]
	bkWild        // negNode.wcands
)

// opScalars is the barrier payload: every Op scalar Rollback restores
// wholesale, plus the absolute top positions of the payload stacks at mark
// time — the spine prefix below the barrier owns exactly the stack
// segments below these positions, which is all compact needs to know.
type opScalars struct {
	frontier     temporal.Time
	minAddFin    temporal.Time
	minFutureFin temporal.Time
	dirty        bool
	stable       int
	lowVs        temporal.Time
	lowEmit      temporal.Time

	nMs, nEvs, nCs, nAms, nIdss, nRsts uint64
}

// resetState is the jReset payload: the wholesale-replaced containers of an
// Advance(∞) reset.
type resetState struct {
	sh       *shared
	root     node
	store    map[event.ID]event.Event
	consumed map[event.ID]event.Event
	pending  []algebra.Match
}

// ---- record appenders ----
//
// Each is a thin inlinable guard over a slow path, so the journal costs a
// single predictable branch while off (the legacy clone-driven paths and
// every standalone operator).

func (u *undoLog) evMap(m map[event.ID]event.Event, id event.ID) {
	if u.on {
		u.evMapSlow(m, id)
	}
}

func (u *undoLog) evMapSlow(m map[event.ID]event.Event, id event.ID) {
	old, existed := m[id]
	if existed {
		u.evs = append(u.evs, old)
	}
	u.run = append(u.run, undoRec{kind: jEvMap, flag: existed, id: id, node: m})
}

// evMapKnown is evMap for call sites that already hold the entry from a
// lookup or iteration they performed anyway — the hottest appender on the
// consume/prune paths, spared its duplicate map access.
func (u *undoLog) evMapKnown(m map[event.ID]event.Event, id event.ID, old event.Event) {
	if u.on {
		u.evs = append(u.evs, old)
		u.run = append(u.run, undoRec{kind: jEvMap, flag: true, id: id, node: m})
	}
}

func (u *undoLog) timeMap(m map[event.ID]temporal.Time, id event.ID) {
	if u.on {
		u.timeMapSlow(m, id)
	}
}

func (u *undoLog) timeMapSlow(m map[event.ID]temporal.Time, id event.ID) {
	old, existed := m[id]
	u.run = append(u.run, undoRec{kind: jTimeMap, flag: existed, id: id, t: old, node: m})
}

func (u *undoLog) intMap(m map[event.ID]int, id event.ID) {
	if u.on {
		u.intMapSlow(m, id)
	}
}

func (u *undoLog) intMapSlow(m map[event.ID]int, id event.ID) {
	old, existed := m[id]
	u.run = append(u.run, undoRec{kind: jIntMap, flag: existed, id: id, i: old, node: m})
}

func (u *undoLog) matchMap(m map[event.ID]algebra.Match, id event.ID) {
	if u.on {
		u.matchMapSlow(m, id)
	}
}

func (u *undoLog) matchMapSlow(m map[event.ID]algebra.Match, id event.ID) {
	old, existed := m[id]
	if existed {
		u.ms = append(u.ms, old)
	}
	u.run = append(u.run, undoRec{kind: jMatchMap, flag: existed, id: id, node: m})
}

func (u *undoLog) listIns(l *matchList, m *algebra.Match) {
	if u.on {
		u.listSlow(jListIns, l, m)
	}
}

func (u *undoLog) listDel(l *matchList, m *algebra.Match) {
	if u.on {
		u.listSlow(jListDel, l, m)
	}
}

func (u *undoLog) listSlow(kind uint8, l *matchList, m *algebra.Match) {
	u.ms = append(u.ms, *m)
	u.run = append(u.run, undoRec{kind: kind, node: l})
}

func (u *undoLog) kListIns(l *keyedList, m *algebra.Match, kv event.Value, def bool) {
	if u.on {
		u.kListSlow(jKListIns, l, m, kv, def)
	}
}

func (u *undoLog) kListDel(l *keyedList, m *algebra.Match, kv event.Value, def bool) {
	if u.on {
		u.kListSlow(jKListDel, l, m, kv, def)
	}
}

func (u *undoLog) kListSlow(kind uint8, l *keyedList, m *algebra.Match, kv event.Value, def bool) {
	u.ms = append(u.ms, *m)
	u.run = append(u.run, undoRec{kind: kind, flag: def, kv: kv, node: l})
}

func (u *undoLog) pendIns(l *pendingList, i int) {
	if u.on {
		u.run = append(u.run, undoRec{kind: jPendIns, i: i, node: l})
	}
}

func (u *undoLog) pendDel(l *pendingList, i int) {
	if u.on {
		u.pendSlow(jPendDel, l, i)
	}
}

func (u *undoLog) pendSet(l *pendingList, i int) {
	if u.on {
		u.pendSlow(jPendSet, l, i)
	}
}

func (u *undoLog) pendSlow(kind uint8, l *pendingList, i int) {
	u.ms = append(u.ms, l.ms[i])
	u.run = append(u.run, undoRec{kind: kind, i: i, node: l})
}

func (u *undoLog) usesApp(m map[event.ID][]event.ID, id event.ID) {
	if u.on {
		u.usesAppSlow(m, id)
	}
}

func (u *undoLog) usesAppSlow(m map[event.ID][]event.ID, id event.ID) {
	old, existed := m[id]
	u.run = append(u.run, undoRec{kind: jUsesApp, flag: existed, i: len(old), id: id, node: m})
}

func (u *undoLog) usesDel(m map[event.ID][]event.ID, id event.ID) {
	if u.on {
		u.usesDelSlow(m, id)
	}
}

func (u *undoLog) usesDelSlow(m map[event.ID][]event.ID, id event.ID) {
	old, existed := m[id]
	if !existed {
		return
	}
	u.idss = append(u.idss, old)
	u.run = append(u.run, undoRec{kind: jUsesDel, id: id, node: m})
}

func (u *undoLog) amIns(n *atMostNode, i int) {
	if u.on {
		u.run = append(u.run, undoRec{kind: jAmIns, i: i, node: n})
	}
}

func (u *undoLog) amDel(n *atMostNode, i int, e amEntry) {
	if u.on {
		u.amDelSlow(n, i, e)
	}
}

func (u *undoLog) amDelSlow(n *atMostNode, i int, e amEntry) {
	u.ams = append(u.ams, e)
	u.run = append(u.run, undoRec{kind: jAmDel, i: i, node: n})
}

func (u *undoLog) amCnt(n *atMostNode, i int, inc bool) {
	if u.on {
		u.run = append(u.run, undoRec{kind: jAmCnt, i: i, flag: inc, node: n})
	}
}

func (u *undoLog) candAdd(n *negNode, lo temporal.Time, id event.ID, kv event.Value, def bool) {
	if u.on {
		u.run = append(u.run, undoRec{kind: jCandAdd, t: lo, id: id, kv: kv, flag: def, node: n})
	}
}

func (u *undoLog) candDel(n *negNode, c *negCand, kv event.Value, def bool) {
	if u.on {
		u.candDelSlow(n, c, kv, def)
	}
}

func (u *undoLog) candDelSlow(n *negNode, c *negCand, kv event.Value, def bool) {
	u.cs = append(u.cs, *c)
	u.run = append(u.run, undoRec{kind: jCandDel, kv: kv, flag: def, node: n})
}

func (u *undoLog) block(n *negNode, bucket int, bkv event.Value, lo temporal.Time, id event.ID, inc bool) {
	if u.on {
		u.run = append(u.run, undoRec{kind: jBlock, i: bucket, kv: bkv, t: lo, id: id, flag: inc, node: n})
	}
}

func (u *undoLog) leafMin(l *leafNode) {
	if u.on {
		u.run = append(u.run, undoRec{kind: jLeafMin, t: l.minVs, node: l})
	}
}

func (u *undoLog) reset(p *Op) {
	if u.on {
		u.resetSlow(p)
	}
}

func (u *undoLog) resetSlow(p *Op) {
	u.rsts = append(u.rsts, resetState{
		sh: p.sh, root: p.root, store: p.store, consumed: p.consumed, pending: p.pending.ms,
	})
	u.run = append(u.run, undoRec{kind: jReset, node: p})
}

// ---- barrier / rollback / compact ----

// flush drains the staged run onto the spine. The Op calls it once per
// mutation entry point (delta commit); mark, rollbackTo and compact call
// it defensively so every spine position is computed on a drained run.
func (u *undoLog) flush() {
	if len(u.run) > 0 {
		u.recs = append(u.recs, u.run...)
		u.run = u.run[:0]
	}
}

// mark snapshots the Op scalars and appends a barrier, returning the
// absolute spine position just past it. Journaling turns on at the first
// mark.
func (u *undoLog) mark(p *Op) uint64 {
	u.on = true
	u.flush()
	u.scal = append(u.scal, opScalars{
		frontier:     p.frontier,
		minAddFin:    p.minAddFin,
		minFutureFin: p.minFutureFin,
		dirty:        p.dirty,
		stable:       p.stable,
		lowVs:        p.lowVs,
		lowEmit:      p.lowEmit,

		nMs:   u.msDrop + uint64(len(u.ms)),
		nEvs:  u.evsDrop + uint64(len(u.evs)),
		nCs:   u.csDrop + uint64(len(u.cs)),
		nAms:  u.amsDrop + uint64(len(u.ams)),
		nIdss: u.idssDrop + uint64(len(u.idss)),
		nRsts: u.rstsDrop + uint64(len(u.rsts)),
	})
	// The barrier record remembers its scal entry's absolute index, so
	// compact can find the recorded stack positions without counting the
	// barriers below it.
	u.recs = append(u.recs, undoRec{kind: jBarrier, i: int(u.scalDrop) + len(u.scal) - 1})
	return u.base + uint64(len(u.recs))
}

// rollbackTo undoes records LIFO down to absolute position pos (which must
// sit just past a barrier), then restores the Op scalars from that barrier.
// The barrier itself is peeked, not popped, so the same position can be
// rolled back to again.
func (u *undoLog) rollbackTo(pos uint64, p *Op) bool {
	u.flush()
	if pos < u.base+1 || pos > u.base+uint64(len(u.recs)) {
		return false
	}
	tgt := int(pos - u.base)
	if u.recs[tgt-1].kind != jBarrier {
		return false
	}
	for len(u.recs) > tgt {
		r := &u.recs[len(u.recs)-1]
		u.undo(r)
		u.recs = u.recs[:len(u.recs)-1]
	}
	// The barrier's payload is now the scal top: every scal entry pushed
	// after it belonged to a later (now undone) barrier.
	s := &u.scal[len(u.scal)-1]
	p.frontier = s.frontier
	p.minAddFin = s.minAddFin
	p.minFutureFin = s.minFutureFin
	p.dirty = s.dirty
	p.stable = s.stable
	p.lowVs = s.lowVs
	p.lowEmit = s.lowEmit
	return true
}

// compact drops the spine and payload prefixes strictly below the barrier
// of absolute position pos, keeping the barrier itself so pos stays a valid
// rollback target. Cost is O(dropped), which the caller amortizes over the
// mutations that created the dropped records.
func (u *undoLog) compact(pos uint64) {
	u.flush()
	if pos < u.base+1 || pos > u.base+uint64(len(u.recs)) {
		return
	}
	bar := int(pos-u.base) - 1
	if bar <= 0 || u.recs[bar].kind != jBarrier {
		return
	}
	// The barrier's scal entry recorded the absolute stack-top positions at
	// mark time; the dropped prefix owns exactly the stack segments below
	// them, so the payload accounting is O(1) — no per-record scan.
	s := &u.scal[u.recs[bar].i-int(u.scalDrop)]
	dMs := int(s.nMs - u.msDrop)
	dEvs := int(s.nEvs - u.evsDrop)
	dCs := int(s.nCs - u.csDrop)
	dAms := int(s.nAms - u.amsDrop)
	dIdss := int(s.nIdss - u.idssDrop)
	dRsts := int(s.nRsts - u.rstsDrop)
	bars := u.recs[bar].i - int(u.scalDrop)
	u.recs = u.recs[:copy(u.recs, u.recs[bar:])]
	u.base += uint64(bar)
	u.ms = u.ms[:copy(u.ms, u.ms[dMs:])]
	u.evs = u.evs[:copy(u.evs, u.evs[dEvs:])]
	u.cs = u.cs[:copy(u.cs, u.cs[dCs:])]
	u.ams = u.ams[:copy(u.ams, u.ams[dAms:])]
	u.idss = u.idss[:copy(u.idss, u.idss[dIdss:])]
	u.rsts = u.rsts[:copy(u.rsts, u.rsts[dRsts:])]
	u.scal = u.scal[:copy(u.scal, u.scal[bars:])]
	u.msDrop += uint64(dMs)
	u.evsDrop += uint64(dEvs)
	u.csDrop += uint64(dCs)
	u.amsDrop += uint64(dAms)
	u.idssDrop += uint64(dIdss)
	u.rstsDrop += uint64(dRsts)
	u.scalDrop += uint64(bars)
}

// popMatch pops the ms stack top.
func (u *undoLog) popMatch() algebra.Match {
	m := u.ms[len(u.ms)-1]
	u.ms = u.ms[:len(u.ms)-1]
	return m
}

// undo reverses one record, popping its payloads.
func (u *undoLog) undo(r *undoRec) {
	switch r.kind {
	case jBarrier:
		u.scal = u.scal[:len(u.scal)-1]
	case jEvMap:
		m := r.node.(map[event.ID]event.Event)
		if r.flag {
			m[r.id] = u.evs[len(u.evs)-1]
			u.evs = u.evs[:len(u.evs)-1]
		} else {
			delete(m, r.id)
		}
	case jTimeMap:
		m := r.node.(map[event.ID]temporal.Time)
		if r.flag {
			m[r.id] = r.t
		} else {
			delete(m, r.id)
		}
	case jIntMap:
		m := r.node.(map[event.ID]int)
		if r.flag {
			m[r.id] = r.i
		} else {
			delete(m, r.id)
		}
	case jMatchMap:
		m := r.node.(map[event.ID]algebra.Match)
		if r.flag {
			m[r.id] = u.popMatch()
		} else {
			delete(m, r.id)
		}
	case jListIns:
		m := u.popMatch()
		r.node.(*matchList).removeMatch(m)
	case jListDel:
		r.node.(*matchList).insert(u.popMatch())
	case jKListIns:
		m := u.popMatch()
		r.node.(*keyedList).remove(m, r.kv, r.flag)
	case jKListDel:
		r.node.(*keyedList).insert(u.popMatch(), r.kv, r.flag)
	case jPendIns:
		r.node.(*pendingList).removeAt(r.i)
	case jPendDel:
		r.node.(*pendingList).insertAt(r.i, u.popMatch())
	case jPendSet:
		r.node.(*pendingList).ms[r.i] = u.popMatch()
	case jUsesApp:
		m := r.node.(map[event.ID][]event.ID)
		if r.flag {
			m[r.id] = m[r.id][:r.i]
		} else {
			delete(m, r.id)
		}
	case jUsesDel:
		m := r.node.(map[event.ID][]event.ID)
		m[r.id] = u.idss[len(u.idss)-1]
		u.idss = u.idss[:len(u.idss)-1]
	case jAmIns:
		n := r.node.(*atMostNode)
		n.entries = append(n.entries[:r.i], n.entries[r.i+1:]...)
	case jAmDel:
		n := r.node.(*atMostNode)
		e := u.ams[len(u.ams)-1]
		u.ams = u.ams[:len(u.ams)-1]
		n.entries = append(n.entries, amEntry{})
		copy(n.entries[r.i+1:], n.entries[r.i:])
		n.entries[r.i] = e
	case jAmCnt:
		n := r.node.(*atMostNode)
		if r.flag {
			n.entries[r.i].cnt--
		} else {
			n.entries[r.i].cnt++
		}
	case jCandAdd:
		n := r.node.(*negNode)
		n.candRemove(r.t, r.id, r.kv, r.flag)
	case jCandDel:
		n := r.node.(*negNode)
		c := u.cs[len(u.cs)-1]
		u.cs = u.cs[:len(u.cs)-1]
		n.candAdd(c, r.kv, r.flag)
	case jBlock:
		n := r.node.(*negNode)
		var cs []negCand
		switch r.i {
		case bkFlat:
			cs = n.cands
		case bkKey:
			cs = n.kcands[r.kv]
		default:
			cs = n.wcands
		}
		if i := candFind(cs, r.t, r.id); i >= 0 {
			if r.flag {
				cs[i].blockers--
			} else {
				cs[i].blockers++
			}
		}
	case jLeafMin:
		r.node.(*leafNode).minVs = r.t
	case jReset:
		p := r.node.(*Op)
		rs := u.rsts[len(u.rsts)-1]
		u.rsts = u.rsts[:len(u.rsts)-1]
		p.sh = rs.sh
		p.root = rs.root
		p.store = rs.store
		p.consumed = rs.consumed
		p.pending = pendingList{ms: rs.pending}
	}
}
