package inc

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/temporal"
)

// FuzzIncVsOracle is the native fuzz harness over the differential
// step-checker: fuzzer bytes decode into an operator shape × SC mode × key
// domain × event script (inserts with controlled timestamps and keys,
// aligned full removals, advances — including far jumps that force scope
// pruning — mid-stream clone swaps, and checkpoint capture/rollback/compact
// over the undo journal), which is then driven through the incremental op
// and the frozen semi-naive oracle with byte-exact comparison at every
// step. Keyed shapes run with WithJoinKey, so the
// pushdown's bucket seams (definite, wild and missing-attribute matches)
// are fuzzed against the same oracle. Run it as a fuzzer with
//
//	go test -run '^$' -fuzz '^FuzzIncVsOracle$' -fuzztime 30s ./internal/algebra/inc
//
// (CI performs exactly that smoke run); under plain `go test` the seed
// corpus below executes as regression cases, one per operator shape.

// fuzzShape is one operator configuration the first script byte selects.
type fuzzShape struct {
	name    string
	expr    algebra.Expr
	joinKey string // "" = unkeyed
}

// fuzzShapes covers every operator kind, flat and nested, in both the
// unkeyed and the keyed (pushdown) configuration where predicates make
// keying sound.
func fuzzShapes() []fuzzShape {
	var shapes []fuzzShape
	for name, expr := range exprZoo() {
		shapes = append(shapes, fuzzShape{name: name, expr: expr})
	}
	for name, expr := range keyedZoo() {
		shapes = append(shapes, fuzzShape{name: name, expr: expr, joinKey: "k"})
	}
	// Deterministic selector order (map iteration is not).
	sort.Slice(shapes, func(i, j int) bool { return shapes[i].name < shapes[j].name })
	return shapes
}

// Script opcodes: each step consumes two bytes (c, a). c's low nibble
// selects the action, the rest parameterizes it — see decode below.
const (
	fuzzOpInsertMax = 9  // 0..9: insert (weighted toward inserts)
	fuzzOpRemove    = 10 // 10,11: aligned full removal
	fuzzOpAdvance   = 12 // 12,13: small advance
	fuzzOpClone     = 14 // version/clone ops, sub-selected by a%4 (see decode)
	fuzzOpFarAdv    = 15 // far advance: forces watermark pruning
)

func FuzzIncVsOracle(f *testing.F) {
	shapes := fuzzShapes()

	// Seed corpus: every operator shape gets one script exercising all
	// opcodes — inserts across keys and types (with one missing-attribute
	// event), a removal, advances near and far, a clone swap, and the
	// checkpoint sub-opcodes (mark, rollback, compact).
	script := []byte{
		0x00, 0x05, 0x10, 0x09, 0x20, 0x0d, 0x30, 0x11, // 4 inserts, mixed types/keys
		0x0c, 0x02, // advance
		0x40, 0x3c, 0x50, 0x01, 0x90, 0x15, // inserts (incl. missing-attr patterns)
		0x0a, 0x03, // remove
		0x0e, 0x00, // clone swap
		0x60, 0x07, 0x70, 0x0b, // inserts
		0x0f, 0x20, // far advance
		0x80, 0x06, 0x10, 0x0a, // inserts after the prune
		0x0c, 0x04, // advance
		0x0e, 0x01, // mark #0
		0x20, 0x09, 0x30, 0x12, // inserts past the mark
		0x0c, 0x03, // advance past the mark
		0x0e, 0x02, // rollback to mark #0 (j = 0)
		0x40, 0x05, // re-insert along the new timeline
		0x0e, 0x05, // mark #1 (a%4 == 1)
		0x50, 0x0e, // insert
		0x0e, 0x06, // rollback to mark #1 (a%4 == 2, j = 1)
		0x0e, 0x07, // compact to mark #1 (a%4 == 3, j = 1)
		0x60, 0x0d, // insert
		0x0c, 0x05, // advance
	}
	for i, mode := 0, 0; i < len(shapes); i++ {
		seed := append([]byte{byte(i), byte(mode), byte(i % 4)}, script...)
		f.Add(seed)
		mode = (mode + 1) % 4
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		shape := shapes[int(data[0])%len(shapes)]
		mode := scModes()[int(data[1])%len(scModes())]
		keys := []int{1, 2, 3, 8}[int(data[2])%4]

		oracle := algebra.NewPatternOp(shape.expr, mode, "out")
		var opts []OpOption
		if shape.joinKey != "" {
			opts = append(opts, WithJoinKey(shape.joinKey))
		}
		fast := NewOp(shape.expr, mode, "out", opts...)

		types := []string{"A", "B", "C", "X"}
		vs := temporal.Time(0)
		lastAdvance := temporal.MinTime
		nextID := event.ID(1)
		var removable []event.Event

		// Retained checkpoint marks for the versioning sub-opcodes: the
		// journal position paired with a frozen oracle clone plus the driver
		// state needed to resume the script coherently after a rollback.
		// Rolling back to marks[j] invalidates every later mark (the journal
		// spine truncates and positions are reused), so the stack is cut to
		// [:j+1]; a clone swap hands both sides fresh state with an empty
		// journal, so it clears the stack entirely.
		type fuzzMark struct {
			v   operators.Version
			o   *algebra.PatternOp
			rem []event.Event
			la  temporal.Time
			vs  temporal.Time
		}
		var marks []fuzzMark

		body := data[3:]
		if len(body) > 512 {
			body = body[:512] // bound the per-input work
		}
		for i := 0; i+1 < len(body); i += 2 {
			c, a := body[i], body[i+1]
			label := fmt.Sprintf("%s %v keys=%d step=%d", shape.name, mode, keys, i)
			switch op := c & 0x0f; {
			case op <= fuzzOpInsertMax:
				if a&0x03 != 0 { // 1 in 4 shares the previous timestamp
					vs += temporal.Time(a&0x03) + 1
				}
				p := event.Payload{"i": int64(nextID)}
				switch key := int(a>>2) % (keys + 2); {
				case key < keys:
					p["k"] = fmt.Sprintf("k%d", key)
				case key == keys:
					// attribute omitted — the wild path
				default:
					// dotted payload attribute: suffix-visible to the
					// CorrelationKey filters, invisible to exact lookups —
					// must route wild (TestKeyedPairwiseExactLookup).
					p["sub.k"] = "k0"
				}
				e := event.NewInsert(nextID, types[int(c>>4)%len(types)], vs,
					temporal.Infinity, p)
				nextID++
				checkStep(t, label+" insert", oracle, fast,
					fast.Process(0, e), oracle.Process(0, e))
				removable = append(removable, e)
			case op < fuzzOpAdvance: // remove
				if len(removable) == 0 {
					continue
				}
				j := int(a) % len(removable)
				victim := removable[j]
				if victim.V.Start < lastAdvance {
					continue // stay inside the aligned-removal contract
				}
				removable = append(removable[:j], removable[j+1:]...)
				r := event.NewRetract(victim.ID, victim.Type, victim.V.Start, victim.V.Start, nil)
				checkStep(t, label+" remove", oracle, fast,
					fast.Process(0, r), oracle.Process(0, r))
			case op < fuzzOpClone: // advance
				adv := vs.Add(temporal.Duration(a & 0x07))
				if adv > lastAdvance {
					lastAdvance = adv
				}
				checkStep(t, label+" advance", oracle, fast,
					fast.Advance(adv), oracle.Advance(adv))
			case op == fuzzOpClone:
				switch a % 4 {
				case 0: // swap both ops for their clones
					oracle = oracle.Clone().(*algebra.PatternOp)
					fast = fast.Clone().(*Op)
					marks = marks[:0]
				case 1: // checkpoint capture: journal mark + frozen oracle
					marks = append(marks, fuzzMark{
						v:   fast.Mark(),
						o:   oracle.Clone().(*algebra.PatternOp),
						rem: append([]event.Event(nil), removable...),
						la:  lastAdvance,
						vs:  vs,
					})
				case 2: // rollback to a retained mark
					if len(marks) == 0 {
						continue
					}
					j := int(a>>2) % len(marks)
					if !fast.Rollback(marks[j].v) {
						t.Fatalf("%s rollback: retained mark %d refused", label, j)
					}
					oracle = marks[j].o.Clone().(*algebra.PatternOp)
					removable = append(removable[:0], marks[j].rem...)
					lastAdvance, vs = marks[j].la, marks[j].vs
					marks = marks[:j+1]
					checkStep(t, label+" rollback", oracle, fast, nil, nil)
				default: // compact: drop undo history below a retained mark
					if len(marks) == 0 {
						continue
					}
					j := int(a>>2) % len(marks)
					fast.Compact(marks[j].v)
					marks = marks[j:]
					checkStep(t, label+" compact", oracle, fast, nil, nil)
				}
			default: // far advance: pushes the watermark past live state
				adv := vs.Add(temporal.Duration(a) + 64)
				if adv > lastAdvance {
					lastAdvance = adv
				}
				checkStep(t, label+" far-advance", oracle, fast,
					fast.Advance(adv), oracle.Advance(adv))
			}
		}
		checkStep(t, shape.name+" finish", oracle, fast,
			fast.Advance(temporal.Infinity), oracle.Advance(temporal.Infinity))
	})
}
