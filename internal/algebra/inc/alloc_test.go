//go:build !race

package inc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/temporal"
)

// Allocation-regression tests: the tentpole claim of the interned-payload /
// per-group-commit design is that the incremental sequence hot path stays
// allocation-lean — a few allocations per event, not a few dozen. These
// ceilings pin that property in `go test ./...` itself, so an allocation
// regression fails the ordinary test run, not just the benchmark gate.
// The bounds sit ~1.5–3× above the measured steady state, loose enough
// for map rehash jitter across Go releases, tight enough to catch a
// return to per-delta allocation (a fresh-cache run measures ~29/event;
// the interned replay ~8). (Skipped under -race: instrumentation changes
// allocation counts.)

// allocSeqEvents builds an INSTALL/SHUTDOWN workload shaped like the
// sequence-ablation benchmark: interleaved pairs over a small key domain.
func allocSeqEvents(n int) []event.Event {
	rng := rand.New(rand.NewSource(7))
	types := []string{"INSTALL", "SHUTDOWN"}
	out := make([]event.Event, 0, n)
	vs := temporal.Time(0)
	for i := 0; i < n; i++ {
		vs += temporal.Time(rng.Intn(3) + 1)
		out = append(out, event.NewInsert(event.ID(i+1), types[i%2], vs,
			temporal.Infinity, event.Payload{
				"Machine_Id": fmt.Sprintf("m%d", rng.Intn(4)),
			}))
	}
	return out
}

func allocSeqExpr() algebra.Expr {
	return algebra.FilterExpr{
		Kid: algebra.SequenceExpr{Kids: []algebra.Expr{
			algebra.TypeExpr{Type: "INSTALL", Alias: "x"},
			algebra.TypeExpr{Type: "SHUTDOWN", Alias: "y"},
		}, W: 64},
		Pred: func(p event.Payload) bool {
			return event.ValueEqual(p["x.Machine_Id"], p["y.Machine_Id"])
		},
	}
}

// measureSeqHotPath reports allocs/event on the hot path proper: the
// replay the monitor's checkpoint operator performs. Every event was
// already derived once by the live operator, so the interning caches
// (shared through Clone) serve every leaf payload and combined composite.
// Warm the caches through one full pass, then measure replays by clones
// taken from the pre-stream snapshot — each run sees warmed caches and
// empty state, exactly like the checkpoint chasing the live operator.
func measureSeqHotPath(events []event.Event, opts ...OpOption) float64 {
	mode := algebra.SCMode{Cons: algebra.Consume}
	base := NewOp(allocSeqExpr(), mode, "Pairs", opts...)
	snapshot := base.Clone()
	run := func(op *Op) {
		for i, e := range events {
			op.Process(0, e)
			if i%16 == 15 {
				op.Advance(e.V.Start)
			}
		}
	}
	run(base)
	return testing.AllocsPerRun(5, func() {
		run(snapshot.Clone().(*Op))
	}) / float64(len(events))
}

func TestAllocsSequenceHotPath(t *testing.T) {
	perEvent := measureSeqHotPath(allocSeqEvents(400))
	const ceiling = 12.0
	t.Logf("incremental sequence hot path: %.2f allocs/event (ceiling %.0f)", perEvent, ceiling)
	if perEvent > ceiling {
		t.Fatalf("incremental sequence hot path allocates %.2f/event, above the pinned ceiling %.0f — the interned-payload/scratch-delta discipline regressed", perEvent, ceiling)
	}
}

// TestAllocsCOWClone pins Clone's copy-on-write promise: cloning an
// operator with live state is a handle copy — one small struct — not a deep
// copy of stores, indexes, and pending lists. The deep copy happens lazily
// on the first mutation (ensureOwned), so a chain of clones that never
// diverges stays O(1) per clone regardless of state size.
func TestAllocsCOWClone(t *testing.T) {
	mode := algebra.SCMode{Cons: algebra.Consume}
	op := NewOp(allocSeqExpr(), mode, "Pairs")
	for i, e := range allocSeqEvents(400) {
		op.Process(0, e)
		if i%16 == 15 {
			op.Advance(e.V.Start)
		}
	}
	var sink *Op
	perClone := testing.AllocsPerRun(100, func() {
		sink = op.Clone().(*Op)
	})
	_ = sink
	const ceiling = 4.0
	t.Logf("COW clone: %.2f allocs/clone at state size %d (ceiling %.0f)",
		perClone, op.StateSize(), ceiling)
	if perClone > ceiling {
		t.Fatalf("Clone allocates %.2f per call at state size %d, above the pinned ceiling %.0f — the lazy copy-on-write path regressed to an eager deep copy", perClone, op.StateSize(), ceiling)
	}
}

// TestAllocsJournalMark pins the Versioned capture cost: with the undo
// journal on, Mark is a barrier append — O(changed since the last mark),
// never O(state). At several hundred stored events a regression back to
// snapshot-by-copy would show up as hundreds of allocations per mark; the
// ceiling admits only the amortized journal-spine growth.
func TestAllocsJournalMark(t *testing.T) {
	mode := algebra.SCMode{Cons: algebra.Consume}
	op := NewOp(allocSeqExpr(), mode, "Pairs")
	op.Mark() // turn the journal on before state accumulates
	for i, e := range allocSeqEvents(400) {
		op.Process(0, e)
		if i%16 == 15 {
			op.Advance(e.V.Start)
		}
	}
	perMark := testing.AllocsPerRun(200, func() {
		op.Mark()
	})
	const ceiling = 3.0
	t.Logf("journal mark: %.2f allocs/mark at state size %d (ceiling %.0f)",
		perMark, op.StateSize(), ceiling)
	if perMark > ceiling {
		t.Fatalf("Mark allocates %.2f per call at state size %d, above the pinned ceiling %.0f — checkpoint capture is no longer O(changed)", perMark, op.StateSize(), ceiling)
	}
}

// TestAllocsKeyedSequenceHotPath pins the same replay path with
// correlation-key pushdown enabled: the key-indexed join must not cost
// steady-state allocations beyond the flat path's — bucket lookups and the
// key extraction are allocation-free, and buckets themselves amortize to
// nothing once every key's bucket exists. The ceiling matches the flat
// path's; the measured value sits well under it (~6.4/event vs ~5.8 flat).
func TestAllocsKeyedSequenceHotPath(t *testing.T) {
	perEvent := measureSeqHotPath(allocSeqEvents(400), WithJoinKey("Machine_Id"))
	const ceiling = 12.0
	t.Logf("keyed sequence hot path: %.2f allocs/event (ceiling %.0f)", perEvent, ceiling)
	if perEvent > ceiling {
		t.Fatalf("keyed sequence hot path allocates %.2f/event, above the pinned ceiling %.0f — the key-indexed join path regressed", perEvent, ceiling)
	}
}
