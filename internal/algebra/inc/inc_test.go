package inc

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/temporal"
)

func ev(id event.ID, t string, vs temporal.Time, fields ...any) event.Event {
	p := event.Payload{}
	for i := 0; i+1 < len(fields); i += 2 {
		p[fields[i].(string)] = fields[i+1]
	}
	return event.NewInsert(id, t, vs, temporal.Infinity, p)
}

func inserts(evs []event.Event) int {
	n := 0
	for _, e := range evs {
		if e.Kind == event.Insert {
			n++
		}
	}
	return n
}

func TestOpSequenceBasics(t *testing.T) {
	op := NewOp(algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 10},
		algebra.SCMode{}, "out")
	op.Process(0, ev(1, "A", 0, "i", int64(1)))
	outs := op.Process(0, ev(2, "B", 5, "i", int64(2)))
	if len(outs) != 1 {
		t.Fatalf("expected one detection, got %v", outs)
	}
	if outs[0].V != temporal.NewInterval(5, 10) {
		t.Errorf("V = %v, want [5, 10)", outs[0].V)
	}
	if len(outs[0].CBT) != 2 || outs[0].CBT[0] != 1 || outs[0].CBT[1] != 2 {
		t.Errorf("lineage: %v", outs[0].CBT)
	}
	if outs[0].Payload["a.i"] != int64(1) || outs[0].Payload["b.i"] != int64(2) {
		t.Errorf("payload not alias-namespaced: %v", outs[0].Payload)
	}
}

func TestOpUnlessHoldsUntilWindowCloses(t *testing.T) {
	op := NewOp(algebra.UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 5},
		algebra.SCMode{}, "out")
	if outs := op.Process(0, ev(1, "A", 0)); len(outs) != 0 {
		t.Fatalf("UNLESS must not emit before its window closes: %v", outs)
	}
	// A blocking B retracts the pending candidate before it ever emits.
	op.Process(0, ev(2, "B", 3))
	if outs := op.Advance(20); len(outs) != 0 {
		t.Fatalf("blocked candidate emitted: %v", outs)
	}
	// An unblocked A emits exactly when the frontier covers Vs+w.
	op.Process(0, ev(3, "A", 20))
	if outs := op.Advance(24); len(outs) != 0 {
		t.Fatalf("premature emission: %v", outs)
	}
	outs := op.Advance(25)
	if len(outs) != 1 || outs[0].V != temporal.NewInterval(20, 25) {
		t.Fatalf("expected the A@20 detection at frontier 25: %v", outs)
	}
}

func TestOpBlockerRemovalRevives(t *testing.T) {
	op := NewOp(algebra.UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 5},
		algebra.SCMode{}, "out")
	op.Process(0, ev(1, "A", 0))
	op.Process(0, ev(2, "B", 3))
	if outs := op.Process(0, event.NewRetract(2, "B", 3, 3, nil)); len(outs) != 0 {
		t.Fatalf("nothing should finalize before the window closes: %v", outs)
	}
	outs := op.Advance(20)
	if inserts(outs) != 1 {
		t.Fatalf("removal of blocker must revive output: %v", outs)
	}
}

func TestOpConsumedContributorRevival(t *testing.T) {
	op := NewOp(algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 10},
		algebra.SCMode{Cons: algebra.Consume}, "out")
	op.Process(0, ev(1, "A", 0))
	op.Process(0, ev(2, "A", 2))
	if outs := op.Process(0, ev(3, "B", 5)); inserts(outs) != 1 {
		t.Fatalf("consume mode must commit one pair: %v", outs)
	}
	outs := op.Process(0, event.NewRetract(1, "A", 0, 0, nil))
	var revived bool
	for _, o := range outs {
		if o.Kind == event.Insert && len(o.CBT) == 2 && o.CBT[0] == 2 && o.CBT[1] == 3 {
			revived = true
		}
	}
	if !revived {
		t.Fatalf("un-consumed B must revive the blocked pair: %v", outs)
	}
}

func TestOpScopePruning(t *testing.T) {
	op := NewOp(algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", ""), typ("B", "")}, W: 10},
		algebra.SCMode{}, "out")
	for i := 0; i < 100; i++ {
		op.Process(0, ev(event.ID(i+1), "A", temporal.Time(i*5)))
		op.Advance(temporal.Time(i * 5))
	}
	if op.StateSize() > 10 {
		t.Errorf("state = %d, scope pruning ineffective", op.StateSize())
	}
	// The tree's internal stores must shrink too, not only the driver maps.
	seq := op.root.(*seqNode)
	leaf := seq.kids[0].(*leafNode)
	if len(leaf.live) > 10 || len(seq.lists[0].ms) > 10 {
		t.Errorf("tree state leaked: leaf=%d list=%d", len(leaf.live), len(seq.lists[0].ms))
	}
}

func TestOpMatureFastPathSkipsIdleEvents(t *testing.T) {
	op := NewOp(algebra.UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 1000},
		algebra.SCMode{}, "out")
	op.Process(0, ev(1, "A", 0))
	// A long run of far-from-final events must not trigger full passes;
	// observe indirectly: pending survives, nothing emits, and the op
	// still answers correctly once the window closes.
	for i := 0; i < 50; i++ {
		if outs := op.Process(0, ev(event.ID(i+10), "X", temporal.Time(i+1))); len(outs) != 0 {
			t.Fatalf("spurious emission: %v", outs)
		}
	}
	if outs := op.Advance(1000); inserts(outs) != 1 {
		t.Fatalf("want the A@0 detection at frontier 1000: %v", outs)
	}
}

func TestOpNameAndGuarantee(t *testing.T) {
	expr := algebra.UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 5}
	op := NewOp(expr, algebra.SCMode{}, "out")
	if !strings.HasPrefix(op.Name(), "incpattern:") {
		t.Errorf("Name = %q", op.Name())
	}
	if op.Arity() != 1 {
		t.Errorf("Arity = %d", op.Arity())
	}
	if g := op.OutputGuarantee(100); g != temporal.Time(100)-temporal.Time(expr.MaxScope()) {
		t.Errorf("OutputGuarantee(100) = %v", g)
	}
	if g := op.OutputGuarantee(temporal.Infinity); !g.IsInfinite() {
		t.Errorf("OutputGuarantee(inf) = %v", g)
	}
}

func TestSupportedCoversGrammarOnly(t *testing.T) {
	for name, expr := range exprZoo() {
		if !Supported(expr) {
			t.Errorf("%s unsupported", name)
		}
	}
	if Supported(fakeExpr{}) {
		t.Error("unknown Expr kinds must be unsupported")
	}
	if Supported(algebra.SequenceExpr{Kids: []algebra.Expr{fakeExpr{}}, W: 1}) {
		t.Error("unsupported kids must poison the parent")
	}
}

type fakeExpr struct{}

func (fakeExpr) MaxScope() temporal.Duration { return 1 }
func (fakeExpr) String() string              { return "fake" }
