package inc

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// The randomized differential suite: every Expr operator × SC mode ×
// disorder pattern driven through the incremental Op and through the
// frozen semi-naive oracle (algebra.PatternOp), asserting item-for-item
// equality — header, CBT, payload, emission order, Advance order tags and
// state counts — including full-removal retraction streams and the
// monitor's clone/replay path.

func typ(name, alias string) algebra.Expr { return algebra.TypeExpr{Type: name, Alias: alias} }

func corrOn(field string) algebra.CorrPred {
	posKeys := []string{"a." + field, "x." + field}
	negKeys := []string{"b." + field, "c." + field, "z." + field}
	return func(pos, neg event.Payload) bool {
		var pv, nv event.Value
		for _, k := range posKeys {
			if v, ok := pos[k]; ok {
				pv = v
				break
			}
		}
		for _, k := range negKeys {
			if v, ok := neg[k]; ok {
				nv = v
				break
			}
		}
		return event.ValueEqual(pv, nv)
	}
}

// exprZoo covers the full §3.3 grammar, flat and nested.
func exprZoo() map[string]algebra.Expr {
	seqAB := algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 12}
	return map[string]algebra.Expr{
		"type":    typ("A", "a"),
		"seq":     seqAB,
		"seq3":    algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b"), typ("C", "c")}, W: 16},
		"seq-dup": algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("A", "a2")}, W: 9},
		"atleast": algebra.AtLeastExpr{N: 2,
			Kids: []algebra.Expr{typ("A", ""), typ("B", ""), typ("C", "")}, W: 14},
		"all":    algebra.All(15, typ("A", ""), typ("B", ""), typ("C", "")),
		"any":    algebra.Any(typ("A", ""), typ("B", "")),
		"atmost": algebra.AtMostExpr{N: 2, Kids: []algebra.Expr{typ("A", "")}, W: 10},
		"atmost2": algebra.AtMostExpr{N: 1,
			Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 8},
		"unless":      algebra.UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 7},
		"unless-corr": algebra.UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 9, Corr: corrOn("k")},
		"unless-seq":  algebra.UnlessExpr{A: seqAB, B: typ("C", "c"), W: 6},
		"unless-prime": algebra.UnlessPrimeExpr{
			A: algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 10},
			B: typ("C", "c"), N: 2, W: 6},
		"not": algebra.NotExpr{Neg: typ("C", "c"),
			Seq: algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 9}},
		"cancel": algebra.CancelWhenExpr{
			E:      algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 9},
			Cancel: typ("X", "x")},
		"filter-seq": algebra.FilterExpr{
			Kid: seqAB,
			Pred: func(p event.Payload) bool {
				return event.ValueEqual(p["a.k"], p["b.k"])
			},
		},
		"cidr07": algebra.UnlessExpr{
			A: algebra.FilterExpr{
				Kid: algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "x"), typ("B", "y")}, W: 20},
				Pred: func(p event.Payload) bool {
					return event.ValueEqual(p["x.k"], p["y.k"])
				},
			},
			B: typ("C", "z"), W: 5, Corr: corrOn("k"),
		},
	}
}

func scModes() []algebra.SCMode {
	return []algebra.SCMode{
		{},
		{Cons: algebra.Consume},
		{Sel: algebra.SelectFirst},
		{Sel: algebra.SelectLast, Cons: algebra.Consume},
	}
}

// keyDist controls the correlation-key distribution of a generated stream:
// how many distinct keys, how concentrated the traffic is on the first one
// (hot-key skew), and how often an event omits the attribute entirely (the
// wild path of the key-indexed stores).
type keyDist struct {
	name    string
	keys    int
	hot     float64 // probability of drawing key 0 instead of uniform
	missing float64 // probability of omitting the "k" attribute
	dotted  float64 // probability of writing "sub.k" instead of "k"
}

// keyDists is the distribution grid the key-indexed join path and its
// pruning seams are stressed across: degenerate single-key streams (every
// event lands in one bucket), the historical small domain, many distinct
// keys (bucket churn and empty-bucket pruning), hot-key skew (one giant
// bucket among many small ones) and streams with events missing the
// attribute (wild-list interaction with every bucket).
func keyDists() []keyDist {
	return []keyDist{
		{name: "single-key", keys: 1},
		{name: "few-keys", keys: 3},
		{name: "many-keys", keys: 24},
		{name: "hot-skew", keys: 16, hot: 0.8},
		{name: "sparse-attr", keys: 3, missing: 0.3},
		// Dotted payload attributes ("sub.k" namespaces to "a.sub.k",
		// which the CorrelationKey suffix rule inspects but an exact
		// {a.k = b.k} lookup does not): such matches must stay wild, or
		// the index would key on a value pairwise predicates never
		// compare — the seam TestKeyedPairwiseExactLookup pins directly.
		{name: "dotted-attr", keys: 3, dotted: 0.3},
	}
}

// genDistEvents produces a Sync-ordered stream of primitive inserts over
// the zoo's type alphabet with the given key distribution and deliberate
// timestamp collisions.
func genDistEvents(rng *rand.Rand, n int, d keyDist) []event.Event {
	types := []string{"A", "B", "C", "X"}
	var out []event.Event
	vs := temporal.Time(0)
	for i := 0; i < n; i++ {
		if rng.Intn(4) > 0 { // 1 in 4 events shares the previous timestamp
			vs += temporal.Time(rng.Intn(4) + 1)
		}
		p := event.Payload{"i": int64(i)}
		if d.missing == 0 || rng.Float64() >= d.missing {
			key := 0
			if d.hot == 0 || rng.Float64() >= d.hot {
				key = rng.Intn(d.keys)
			}
			name := "k"
			if d.dotted > 0 && rng.Float64() < d.dotted {
				name = "sub.k"
			}
			p[name] = fmt.Sprintf("k%d", key)
		}
		out = append(out, event.NewInsert(event.ID(i+1), types[rng.Intn(len(types))], vs,
			temporal.Infinity, p))
	}
	return out
}

// genEvents is the historical generator: the small three-key domain (so
// correlation predicates both pass and fail), every event carrying the
// attribute.
func genEvents(rng *rand.Rand, n int) []event.Event {
	return genDistEvents(rng, n, keyDist{keys: 3})
}

func eventsEqual(a, b []event.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Identical(b[i]) {
			return false
		}
	}
	return true
}

// checkStep compares one Process/Advance step of the two implementations,
// including the Advance order tags the sharded merge depends on.
func checkStep(t *testing.T, label string, oracle *algebra.PatternOp, fast *Op,
	got, want []event.Event) {
	t.Helper()
	if !eventsEqual(got, want) {
		t.Fatalf("%s: output diverged\n oracle: %v\n    inc: %v", label, want, got)
	}
	for i := range got {
		if got[i].Kind != event.Insert {
			continue
		}
		ok := oracle.AppendAdvanceKey(nil, want[i])
		ik := fast.AppendAdvanceKey(nil, got[i])
		if !bytes.Equal(ok, ik) {
			t.Fatalf("%s: advance key diverged for %v: oracle %x inc %x", label, got[i], ok, ik)
		}
	}
	if oracle.StateSize() != fast.StateSize() {
		t.Fatalf("%s: state size diverged: oracle %d inc %d", label, oracle.StateSize(), fast.StateSize())
	}
}

// driveAligned pushes one aligned random script — inserts, interleaved
// advances, full removals (of plain, blocking, and consumed contributors)
// and mid-stream clone swaps the way the monitor's checkpointing does —
// through the oracle and the incremental op (built with opts), requiring
// identical behavior at every step.
func driveAligned(t *testing.T, name string, expr algebra.Expr, mode algebra.SCMode,
	seed int64, events []event.Event, rng *rand.Rand, opts ...OpOption) {
	t.Helper()
	oracle := algebra.NewPatternOp(expr, mode, "out")
	fast := NewOp(expr, mode, "out", opts...)
	label := func(step string, i int) string {
		return fmt.Sprintf("%s %v seed=%d %s %d", name, mode, seed, step, i)
	}

	lastAdvance := temporal.MinTime
	var removable []event.Event
	for i, e := range events {
		og := oracle.Process(0, e)
		ig := fast.Process(0, e)
		checkStep(t, label("push", i), oracle, fast, ig, og)
		removable = append(removable, e)

		// Full removals, aligned: only events whose occurrence
		// is at or after the last advance may still be removed.
		if rng.Intn(5) == 0 && len(removable) > 0 {
			j := rng.Intn(len(removable))
			victim := removable[j]
			if victim.V.Start >= lastAdvance {
				removable = append(removable[:j], removable[j+1:]...)
				r := event.NewRetract(victim.ID, victim.Type, victim.V.Start, victim.V.Start, nil)
				og = oracle.Process(0, r)
				ig = fast.Process(0, r)
				checkStep(t, label("remove", i), oracle, fast, ig, og)
			}
		}

		if rng.Intn(4) == 0 {
			adv := e.V.Start.Add(temporal.Duration(rng.Intn(8)))
			if adv > lastAdvance {
				lastAdvance = adv
			}
			og = oracle.Advance(adv)
			ig = fast.Advance(adv)
			checkStep(t, label("advance", i), oracle, fast, ig, og)
		}

		// Swap in clones mid-stream, as monitor checkpoints do.
		if rng.Intn(10) == 0 {
			oracle = oracle.Clone().(*algebra.PatternOp)
			fast = fast.Clone().(*Op)
		}
	}
	og := oracle.Advance(temporal.Infinity)
	ig := fast.Advance(temporal.Infinity)
	checkStep(t, label("finish", 0), oracle, fast, ig, og)
}

// TestDifferentialAligned drives both implementations with identical
// aligned input across the operator zoo.
func TestDifferentialAligned(t *testing.T) {
	for name, expr := range exprZoo() {
		if !Supported(expr) {
			t.Fatalf("%s: expression not supported by the matcher tree", name)
		}
		for mi, mode := range scModes() {
			for trial := 0; trial < 6; trial++ {
				seed := int64(1000*mi + 10*trial + 1)
				rng := rand.New(rand.NewSource(seed))
				events := genEvents(rng, 40)
				driveAligned(t, name, expr, mode, seed, events, rng)
			}
		}
	}
}

// TestDifferentialUnderMonitor wraps both implementations in consistency
// monitors and replays disordered physical streams through them — the
// straggler rollback/replay path exercises Clone, remove-at-replay and the
// Advance order keys. Outputs and monitor metrics must match exactly.
func TestDifferentialUnderMonitor(t *testing.T) {
	specs := []struct {
		name string
		spec consistency.Spec
	}{
		{"strong", consistency.Strong()},
		{"middle", consistency.Middle()},
	}
	deliveries := []struct {
		name string
		cfg  delivery.Config
	}{
		{"ordered", delivery.Ordered(8)},
		{"disordered", delivery.Disordered(7, 20, 10, 0.25)},
		{"chaotic", delivery.Disordered(11, 40, 25, 0.5)},
	}
	for name, expr := range exprZoo() {
		for _, mode := range scModes() {
			for _, sp := range specs {
				for _, dl := range deliveries {
					rng := rand.New(rand.NewSource(99))
					src := stream.Stream(genEvents(rng, 60))
					delivered := delivery.Deliver(src, dl.cfg)

					oracle := algebra.NewPatternOp(expr, mode, "out")
					fast := NewOp(expr, mode, "out")
					oOut, oMet := consistency.RunStreams(oracle, sp.spec, delivered)
					iOut, iMet := consistency.RunStreams(fast, sp.spec, delivered)
					if !eventsEqual(iOut, oOut) {
						t.Fatalf("%s %v %s/%s: monitored output diverged (%d vs %d items)",
							name, mode, sp.name, dl.name, len(iOut), len(oOut))
					}
					if oMet != iMet {
						t.Fatalf("%s %v %s/%s: metrics diverged\n oracle: %+v\n    inc: %+v",
							name, mode, sp.name, dl.name, oMet, iMet)
					}
				}
			}
		}
	}
}

// TestDifferentialStragglerBlocker covers contract-violating input the
// oracle tolerates: a blocker insert arriving after the window it blocks
// was already matured and selected over. The oracle's fresh re-derivation
// then emits the freed selection sibling; the incremental op must too.
func TestDifferentialStragglerBlocker(t *testing.T) {
	expr := algebra.UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 7, Corr: corrOn("k")}
	for _, mode := range scModes() {
		oracle := algebra.NewPatternOp(expr, mode, "out")
		fast := NewOp(expr, mode, "out")
		step := func(label string, og, ig []event.Event) {
			checkStep(t, fmt.Sprintf("%v %s", mode, label), oracle, fast, ig, og)
		}
		a1 := ev(1, "A", 0, "k", "k1")
		a2 := ev(2, "A", 0, "k", "k2")
		step("a1", oracle.Process(0, a1), fast.Process(0, a1))
		step("a2", oracle.Process(0, a2), fast.Process(0, a2))
		// Both candidates mature at 7; selection (if any) picks one.
		step("mature", oracle.Advance(7), fast.Advance(7))
		// Straggler blocker inside the already-matured window, correlated
		// with the k2 candidate only.
		b := ev(3, "B", 3, "k", "k2")
		step("straggler", oracle.Process(0, b), fast.Process(0, b))
		step("settle", oracle.Advance(8), fast.Advance(8))
		step("finish", oracle.Advance(temporal.Infinity), fast.Advance(temporal.Infinity))
	}
}

// TestDifferentialRemovalStorm removes *every* inserted event (in random
// order among the still-aligned suffix) so retraction cascades, un-consume
// revival and re-derivation get dense coverage.
func TestDifferentialRemovalStorm(t *testing.T) {
	for name, expr := range exprZoo() {
		for _, mode := range scModes() {
			rng := rand.New(rand.NewSource(5))
			events := genEvents(rng, 24)
			oracle := algebra.NewPatternOp(expr, mode, "out")
			fast := NewOp(expr, mode, "out")
			for i, e := range events {
				og := oracle.Process(0, e)
				ig := fast.Process(0, e)
				checkStep(t, fmt.Sprintf("%s %v push %d", name, mode, i), oracle, fast, ig, og)
			}
			// No advances were issued, so every event is still removable.
			order := rng.Perm(len(events))
			for _, j := range order {
				v := events[j]
				r := event.NewRetract(v.ID, v.Type, v.V.Start, v.V.Start, nil)
				og := oracle.Process(0, r)
				ig := fast.Process(0, r)
				checkStep(t, fmt.Sprintf("%s %v storm-remove %d", name, mode, j), oracle, fast, ig, og)
			}
			og := oracle.Advance(temporal.Infinity)
			ig := fast.Advance(temporal.Infinity)
			checkStep(t, fmt.Sprintf("%s %v storm-finish", name, mode), oracle, fast, ig, og)
			if n := fast.pending.size(); n != 0 {
				t.Fatalf("%s %v: %d pending matches survived a full removal storm", name, mode, n)
			}
		}
	}
}

// --- Correlation-key pushdown differentials ---

// eqOnKey mirrors the language's CorrelationKey(attr, EQUAL) positive
// filter: every payload value under the ".attr" suffix must be one common
// value (vacuously true when absent). Using the exact sema semantics is
// what makes WithJoinKey sound for these expressions on *any* payload,
// including events missing the attribute.
func eqOnKey(attr string) func(event.Payload) bool {
	suffix := "." + attr
	return func(p event.Payload) bool {
		var first event.Value
		seen := false
		for k, v := range p {
			if !strings.HasSuffix(k, suffix) {
				continue
			}
			if !seen {
				first, seen = v, true
			} else if !event.ValueEqual(first, v) {
				return false
			}
		}
		return true
	}
}

// corrKeyEqual mirrors sema's CorrelationKey(attr, EQUAL) correlation
// predicate: every negative-side value under the suffix must equal every
// positive-side one.
func corrKeyEqual(attr string) algebra.CorrPred {
	suffix := "." + attr
	values := func(p event.Payload) []event.Value {
		var vs []event.Value
		for k, v := range p {
			if strings.HasSuffix(k, suffix) {
				vs = append(vs, v)
			}
		}
		return vs
	}
	return func(pos, neg event.Payload) bool {
		for _, nv := range values(neg) {
			for _, pv := range values(pos) {
				if !event.ValueEqual(nv, pv) {
					return false
				}
			}
		}
		return true
	}
}

// keyedZoo is the grammar under correlation-key pushdown: every expression
// carries predicates with the exact CorrelationKey(k, EQUAL) semantics, so
// an op built with WithJoinKey("k") must stay byte-compatible with the
// (pushdown-ignorant) oracle on any stream. Negation sites are annotated
// with CorrKey so their candidate/blocker stores key too.
func keyedZoo() map[string]algebra.Expr {
	seqAB := algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 12}
	filt := func(kid algebra.Expr) algebra.Expr {
		return algebra.FilterExpr{Kid: kid, Pred: eqOnKey("k"), Desc: "CorrelationKey(k, EQUAL)"}
	}
	return map[string]algebra.Expr{
		"kseq": filt(seqAB),
		// The exact-lookup pairwise shape the planner's spanning-equality
		// pushdown actually compiles ({a.k = b.k} → comparePred over
		// p["a.k"]/p["b.k"], where two absent values compare equal) — its
		// semantics differ from the suffix filters above precisely on
		// dotted and missing attributes.
		"kseq-pair": algebra.FilterExpr{Kid: seqAB, Desc: "{a.k = b.k}",
			Pred: func(p event.Payload) bool {
				return event.ValueEqual(p["a.k"], p["b.k"])
			}},
		"kseq3": filt(algebra.SequenceExpr{
			Kids: []algebra.Expr{typ("A", "a"), typ("B", "b"), typ("C", "c")}, W: 16}),
		"kseq-dup": filt(algebra.SequenceExpr{
			Kids: []algebra.Expr{typ("A", "a"), typ("A", "a2")}, W: 9}),
		"katleast": filt(algebra.AtLeastExpr{N: 2,
			Kids: []algebra.Expr{typ("A", ""), typ("B", ""), typ("C", "")}, W: 14}),
		"kunless": algebra.UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 9,
			Corr: corrKeyEqual("k"), CorrKey: "k"},
		"kcidr07": algebra.UnlessExpr{
			A: filt(algebra.SequenceExpr{
				Kids: []algebra.Expr{typ("A", "x"), typ("B", "y")}, W: 20}),
			B: typ("C", "z"), W: 5, Corr: corrKeyEqual("k"), CorrKey: "k",
		},
		"kunless-prime": filt(algebra.UnlessPrimeExpr{
			A: algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 10},
			B: typ("C", "c"), N: 2, W: 6, Corr: corrKeyEqual("k"), CorrKey: "k"}),
		"knot": filt(algebra.NotExpr{Neg: typ("C", "c"),
			Seq:  algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 9},
			Corr: corrKeyEqual("k"), CorrKey: "k"}),
		"kcancel": filt(algebra.CancelWhenExpr{
			E:      algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 9},
			Cancel: typ("X", "x"), Corr: corrKeyEqual("k"), CorrKey: "k"}),
		// ATMOST under the filter: its kids must stay unkeyed (frozen build
		// context) even though the op is keyed — this entry pins that gate.
		"katmost": filt(algebra.AtMostExpr{N: 1,
			Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 8}),
	}
}

// TestDifferentialKeyedPushdown is the keyed mirror of the aligned
// differential: every keyed-zoo operator × SC mode × key distribution,
// with removals, advances and clone swaps, byte-exact against the oracle.
// The distributions stress the seams the flat path never had: single-bucket
// degeneration, bucket churn over many keys, hot-key skew and wild (missing
// attribute) matches crossing every bucket.
func TestDifferentialKeyedPushdown(t *testing.T) {
	for name, expr := range keyedZoo() {
		if !Supported(expr) {
			t.Fatalf("%s: expression not supported by the matcher tree", name)
		}
		for mi, mode := range scModes() {
			for di, dist := range keyDists() {
				for trial := 0; trial < 3; trial++ {
					seed := int64(10000*mi + 100*di + 10*trial + 7)
					rng := rand.New(rand.NewSource(seed))
					events := genDistEvents(rng, 40, dist)
					driveAligned(t, name+"/"+dist.name, expr, mode, seed, events, rng,
						WithJoinKey("k"))
				}
			}
		}
	}
}

// TestDifferentialKeyedUnderMonitor wraps the keyed op and the oracle in
// consistency monitors and replays disordered physical streams across the
// key-distribution grid — the straggler rollback/replay path exercises the
// keyed stores' Clone, remove-at-replay and prune seams. Outputs and
// monitor metrics must match exactly.
func TestDifferentialKeyedUnderMonitor(t *testing.T) {
	deliveries := []struct {
		name string
		cfg  delivery.Config
	}{
		{"ordered", delivery.Ordered(8)},
		{"disordered", delivery.Disordered(7, 20, 10, 0.25)},
	}
	for name, expr := range keyedZoo() {
		for _, mode := range scModes() {
			for _, dist := range keyDists() {
				for _, dl := range deliveries {
					rng := rand.New(rand.NewSource(321))
					src := stream.Stream(genDistEvents(rng, 60, dist))
					delivered := delivery.Deliver(src, dl.cfg)

					oracle := algebra.NewPatternOp(expr, mode, "out")
					fast := NewOp(expr, mode, "out", WithJoinKey("k"))
					oOut, oMet := consistency.RunStreams(oracle, consistency.Middle(), delivered)
					iOut, iMet := consistency.RunStreams(fast, consistency.Middle(), delivered)
					if !eventsEqual(iOut, oOut) {
						t.Fatalf("%s %v %s/%s: monitored output diverged (%d vs %d items)",
							name, mode, dist.name, dl.name, len(iOut), len(oOut))
					}
					if oMet != iMet {
						t.Fatalf("%s %v %s/%s: metrics diverged\n oracle: %+v\n    inc: %+v",
							name, mode, dist.name, dl.name, oMet, iMet)
					}
				}
			}
		}
	}
}

// TestKeyedStoresPruneBuckets pins the pruning seam of the key-indexed
// stores: a stream cycling through ever-new keys must not accumulate dead
// buckets once the watermark passes their matches (the empty-bucket GC in
// keyedList/negNode), and wild matches must not leak either.
func TestKeyedStoresPruneBuckets(t *testing.T) {
	expr := keyedZoo()["kcidr07"].(algebra.UnlessExpr)
	op := NewOp(expr, algebra.SCMode{}, "out", WithJoinKey("k"))
	for i := 0; i < 400; i++ {
		p := event.Payload{"k": fmt.Sprintf("key%d", i)}
		op.Process(0, event.NewInsert(event.ID(2*i+1), "A", temporal.Time(i*4), temporal.Infinity, p))
		op.Process(0, event.NewInsert(event.ID(2*i+2), "B", temporal.Time(i*4+1), temporal.Infinity, p))
		op.Advance(temporal.Time(i * 4))
	}
	neg := op.root.(*negNode)
	seq := neg.pos.(*filterNode).kid.(*seqNode)
	for pos, kl := range seq.klists {
		if len(kl.buckets) > 16 {
			t.Errorf("seq position %d: %d key buckets survived pruning", pos, len(kl.buckets))
		}
	}
	if len(neg.kcands) > 16 {
		t.Errorf("%d candidate buckets survived pruning", len(neg.kcands))
	}
	if got := op.StateSize(); got > 40 {
		t.Errorf("state = %d, scope pruning ineffective under keyed stores", got)
	}
}

// TestKeyedPairwiseExactLookup pins the dotted-attribute seam of the
// pairwise pushdown: a payload attribute literally named "sub.k"
// namespaces to "a.sub.k", which ends in ".k" — the CorrelationKey suffix
// rule sees it, but the compiled {a.k = b.k} predicate reads the exact
// names and treats both *absent* values as equal. Keying such a match on
// the dotted value would prune a pair the filter accepts (missing output,
// not wasted work); the index must classify it wild instead.
func TestKeyedPairwiseExactLookup(t *testing.T) {
	expr := keyedZoo()["kseq-pair"]
	for _, mode := range scModes() {
		oracle := algebra.NewPatternOp(expr, mode, "out")
		fast := NewOp(expr, mode, "out", WithJoinKey("k"))
		step := func(label string, og, ig []event.Event) {
			checkStep(t, fmt.Sprintf("%v %s", mode, label), oracle, fast, ig, og)
		}
		evs := []event.Event{
			ev(1, "A", 0, "sub.k", "k1"), // a.k absent, a.sub.k = k1
			ev(2, "B", 2, "sub.k", "k2"), // b.k absent, b.sub.k = k2 — pred: nil == nil, matches
			ev(3, "A", 3, "k", "k1"),
			ev(4, "B", 5, "k", "k2"), // pred: k1 != k2, no match
			ev(5, "B", 6, "k", "k1"), // pred: k1 == k1, matches
		}
		for i, e := range evs {
			step(fmt.Sprintf("push %d", i), oracle.Process(0, e), fast.Process(0, e))
		}
		step("finish", oracle.Advance(temporal.Infinity), fast.Advance(temporal.Infinity))
	}
}

// TestKeyedNaNStaysWild pins the NaN seam: float64 NaN is not self-equal,
// so a NaN map key could be inserted but never found again — a NaN-keyed
// match must therefore go wild, or keyed removals would silently miss
// (leaking a bucket per event and resurrecting retracted matches). The
// keyed op must stay byte-exact with the oracle on NaN-keyed streams.
func TestKeyedNaNStaysWild(t *testing.T) {
	if _, def := canonKeyValue(math.NaN()); def {
		t.Fatal("NaN must not be a definite bucket key")
	}
	expr := keyedZoo()["kcidr07"]
	for _, mode := range scModes() {
		oracle := algebra.NewPatternOp(expr, mode, "out")
		fast := NewOp(expr, mode, "out", WithJoinKey("k"))
		step := func(label string, og, ig []event.Event) {
			checkStep(t, fmt.Sprintf("%v %s", mode, label), oracle, fast, ig, og)
		}
		evs := []event.Event{
			ev(1, "A", 0, "k", math.NaN()),
			ev(2, "B", 2, "k", math.NaN()),
			ev(3, "A", 3, "k", "k1"),
			ev(4, "B", 5, "k", "k1"),
			ev(5, "C", 6, "k", math.NaN()),
		}
		for i, e := range evs {
			step(fmt.Sprintf("push %d", i), oracle.Process(0, e), fast.Process(0, e))
		}
		r := event.NewRetract(1, "A", 0, 0, nil)
		step("remove", oracle.Process(0, r), fast.Process(0, r))
		step("finish", oracle.Advance(temporal.Infinity), fast.Advance(temporal.Infinity))
		// The NaN matches must have landed in the wild lists, not in
		// per-key buckets (where removal could never find them again).
		seq := fast.root.(*negNode).pos.(*filterNode).kid.(*seqNode)
		for pos := range seq.klists {
			for kv := range seq.klists[pos].buckets {
				if f, ok := kv.(float64); ok && f != f {
					t.Fatalf("position %d grew a NaN bucket", pos)
				}
			}
		}
	}
}

var _ operators.AdvanceOrdered = (*Op)(nil)
