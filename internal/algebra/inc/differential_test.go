package inc

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// The randomized differential suite: every Expr operator × SC mode ×
// disorder pattern driven through the incremental Op and through the
// frozen semi-naive oracle (algebra.PatternOp), asserting item-for-item
// equality — header, CBT, payload, emission order, Advance order tags and
// state counts — including full-removal retraction streams and the
// monitor's clone/replay path.

func typ(name, alias string) algebra.Expr { return algebra.TypeExpr{Type: name, Alias: alias} }

func corrOn(field string) algebra.CorrPred {
	posKeys := []string{"a." + field, "x." + field}
	negKeys := []string{"b." + field, "c." + field, "z." + field}
	return func(pos, neg event.Payload) bool {
		var pv, nv event.Value
		for _, k := range posKeys {
			if v, ok := pos[k]; ok {
				pv = v
				break
			}
		}
		for _, k := range negKeys {
			if v, ok := neg[k]; ok {
				nv = v
				break
			}
		}
		return event.ValueEqual(pv, nv)
	}
}

// exprZoo covers the full §3.3 grammar, flat and nested.
func exprZoo() map[string]algebra.Expr {
	seqAB := algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 12}
	return map[string]algebra.Expr{
		"type":    typ("A", "a"),
		"seq":     seqAB,
		"seq3":    algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b"), typ("C", "c")}, W: 16},
		"seq-dup": algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("A", "a2")}, W: 9},
		"atleast": algebra.AtLeastExpr{N: 2,
			Kids: []algebra.Expr{typ("A", ""), typ("B", ""), typ("C", "")}, W: 14},
		"all":    algebra.All(15, typ("A", ""), typ("B", ""), typ("C", "")),
		"any":    algebra.Any(typ("A", ""), typ("B", "")),
		"atmost": algebra.AtMostExpr{N: 2, Kids: []algebra.Expr{typ("A", "")}, W: 10},
		"atmost2": algebra.AtMostExpr{N: 1,
			Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 8},
		"unless":      algebra.UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 7},
		"unless-corr": algebra.UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 9, Corr: corrOn("k")},
		"unless-seq":  algebra.UnlessExpr{A: seqAB, B: typ("C", "c"), W: 6},
		"unless-prime": algebra.UnlessPrimeExpr{
			A: algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 10},
			B: typ("C", "c"), N: 2, W: 6},
		"not": algebra.NotExpr{Neg: typ("C", "c"),
			Seq: algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 9}},
		"cancel": algebra.CancelWhenExpr{
			E:      algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "a"), typ("B", "b")}, W: 9},
			Cancel: typ("X", "x")},
		"filter-seq": algebra.FilterExpr{
			Kid: seqAB,
			Pred: func(p event.Payload) bool {
				return event.ValueEqual(p["a.k"], p["b.k"])
			},
		},
		"cidr07": algebra.UnlessExpr{
			A: algebra.FilterExpr{
				Kid: algebra.SequenceExpr{Kids: []algebra.Expr{typ("A", "x"), typ("B", "y")}, W: 20},
				Pred: func(p event.Payload) bool {
					return event.ValueEqual(p["x.k"], p["y.k"])
				},
			},
			B: typ("C", "z"), W: 5, Corr: corrOn("k"),
		},
	}
}

func scModes() []algebra.SCMode {
	return []algebra.SCMode{
		{},
		{Cons: algebra.Consume},
		{Sel: algebra.SelectFirst},
		{Sel: algebra.SelectLast, Cons: algebra.Consume},
	}
}

// genEvents produces a Sync-ordered stream of primitive inserts over the
// zoo's type alphabet with a small key domain (so correlation predicates
// both pass and fail) and deliberate timestamp collisions.
func genEvents(rng *rand.Rand, n int) []event.Event {
	types := []string{"A", "B", "C", "X"}
	var out []event.Event
	vs := temporal.Time(0)
	for i := 0; i < n; i++ {
		if rng.Intn(4) > 0 { // 1 in 4 events shares the previous timestamp
			vs += temporal.Time(rng.Intn(4) + 1)
		}
		out = append(out, event.NewInsert(event.ID(i+1), types[rng.Intn(len(types))], vs,
			temporal.Infinity, event.Payload{
				"k": fmt.Sprintf("k%d", rng.Intn(3)),
				"i": int64(i),
			}))
	}
	return out
}

func eventsEqual(a, b []event.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Identical(b[i]) {
			return false
		}
	}
	return true
}

// checkStep compares one Process/Advance step of the two implementations,
// including the Advance order tags the sharded merge depends on.
func checkStep(t *testing.T, label string, oracle *algebra.PatternOp, fast *Op,
	got, want []event.Event) {
	t.Helper()
	if !eventsEqual(got, want) {
		t.Fatalf("%s: output diverged\n oracle: %v\n    inc: %v", label, want, got)
	}
	for i := range got {
		if got[i].Kind != event.Insert {
			continue
		}
		ok := oracle.AppendAdvanceKey(nil, want[i])
		ik := fast.AppendAdvanceKey(nil, got[i])
		if !bytes.Equal(ok, ik) {
			t.Fatalf("%s: advance key diverged for %v: oracle %x inc %x", label, got[i], ok, ik)
		}
	}
	if oracle.StateSize() != fast.StateSize() {
		t.Fatalf("%s: state size diverged: oracle %d inc %d", label, oracle.StateSize(), fast.StateSize())
	}
}

// TestDifferentialAligned drives both implementations with identical
// aligned input — inserts, interleaved advances, and full removals (of
// plain, blocking, and consumed contributors) — and requires identical
// behavior at every step. Clones are swapped in mid-stream the way the
// monitor's checkpointing does.
func TestDifferentialAligned(t *testing.T) {
	for name, expr := range exprZoo() {
		if !Supported(expr) {
			t.Fatalf("%s: expression not supported by the matcher tree", name)
		}
		for mi, mode := range scModes() {
			for trial := 0; trial < 6; trial++ {
				seed := int64(1000*mi + 10*trial + 1)
				rng := rand.New(rand.NewSource(seed))
				events := genEvents(rng, 40)

				oracle := algebra.NewPatternOp(expr, mode, "out")
				fast := NewOp(expr, mode, "out")
				label := func(step string, i int) string {
					return fmt.Sprintf("%s %v seed=%d %s %d", name, mode, seed, step, i)
				}

				lastAdvance := temporal.MinTime
				var removable []event.Event
				for i, e := range events {
					og := oracle.Process(0, e)
					ig := fast.Process(0, e)
					checkStep(t, label("push", i), oracle, fast, ig, og)
					removable = append(removable, e)

					// Full removals, aligned: only events whose occurrence
					// is at or after the last advance may still be removed.
					if rng.Intn(5) == 0 && len(removable) > 0 {
						j := rng.Intn(len(removable))
						victim := removable[j]
						if victim.V.Start >= lastAdvance {
							removable = append(removable[:j], removable[j+1:]...)
							r := event.NewRetract(victim.ID, victim.Type, victim.V.Start, victim.V.Start, nil)
							og = oracle.Process(0, r)
							ig = fast.Process(0, r)
							checkStep(t, label("remove", i), oracle, fast, ig, og)
						}
					}

					if rng.Intn(4) == 0 {
						adv := e.V.Start.Add(temporal.Duration(rng.Intn(8)))
						if adv > lastAdvance {
							lastAdvance = adv
						}
						og = oracle.Advance(adv)
						ig = fast.Advance(adv)
						checkStep(t, label("advance", i), oracle, fast, ig, og)
					}

					// Swap in clones mid-stream, as monitor checkpoints do.
					if rng.Intn(10) == 0 {
						oracle = oracle.Clone().(*algebra.PatternOp)
						fast = fast.Clone().(*Op)
					}
				}
				og := oracle.Advance(temporal.Infinity)
				ig := fast.Advance(temporal.Infinity)
				checkStep(t, label("finish", 0), oracle, fast, ig, og)
			}
		}
	}
}

// TestDifferentialUnderMonitor wraps both implementations in consistency
// monitors and replays disordered physical streams through them — the
// straggler rollback/replay path exercises Clone, remove-at-replay and the
// Advance order keys. Outputs and monitor metrics must match exactly.
func TestDifferentialUnderMonitor(t *testing.T) {
	specs := []struct {
		name string
		spec consistency.Spec
	}{
		{"strong", consistency.Strong()},
		{"middle", consistency.Middle()},
	}
	deliveries := []struct {
		name string
		cfg  delivery.Config
	}{
		{"ordered", delivery.Ordered(8)},
		{"disordered", delivery.Disordered(7, 20, 10, 0.25)},
		{"chaotic", delivery.Disordered(11, 40, 25, 0.5)},
	}
	for name, expr := range exprZoo() {
		for _, mode := range scModes() {
			for _, sp := range specs {
				for _, dl := range deliveries {
					rng := rand.New(rand.NewSource(99))
					src := stream.Stream(genEvents(rng, 60))
					delivered := delivery.Deliver(src, dl.cfg)

					oracle := algebra.NewPatternOp(expr, mode, "out")
					fast := NewOp(expr, mode, "out")
					oOut, oMet := consistency.RunStreams(oracle, sp.spec, delivered)
					iOut, iMet := consistency.RunStreams(fast, sp.spec, delivered)
					if !eventsEqual(iOut, oOut) {
						t.Fatalf("%s %v %s/%s: monitored output diverged (%d vs %d items)",
							name, mode, sp.name, dl.name, len(iOut), len(oOut))
					}
					if oMet != iMet {
						t.Fatalf("%s %v %s/%s: metrics diverged\n oracle: %+v\n    inc: %+v",
							name, mode, sp.name, dl.name, oMet, iMet)
					}
				}
			}
		}
	}
}

// TestDifferentialStragglerBlocker covers contract-violating input the
// oracle tolerates: a blocker insert arriving after the window it blocks
// was already matured and selected over. The oracle's fresh re-derivation
// then emits the freed selection sibling; the incremental op must too.
func TestDifferentialStragglerBlocker(t *testing.T) {
	expr := algebra.UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 7, Corr: corrOn("k")}
	for _, mode := range scModes() {
		oracle := algebra.NewPatternOp(expr, mode, "out")
		fast := NewOp(expr, mode, "out")
		step := func(label string, og, ig []event.Event) {
			checkStep(t, fmt.Sprintf("%v %s", mode, label), oracle, fast, ig, og)
		}
		a1 := ev(1, "A", 0, "k", "k1")
		a2 := ev(2, "A", 0, "k", "k2")
		step("a1", oracle.Process(0, a1), fast.Process(0, a1))
		step("a2", oracle.Process(0, a2), fast.Process(0, a2))
		// Both candidates mature at 7; selection (if any) picks one.
		step("mature", oracle.Advance(7), fast.Advance(7))
		// Straggler blocker inside the already-matured window, correlated
		// with the k2 candidate only.
		b := ev(3, "B", 3, "k", "k2")
		step("straggler", oracle.Process(0, b), fast.Process(0, b))
		step("settle", oracle.Advance(8), fast.Advance(8))
		step("finish", oracle.Advance(temporal.Infinity), fast.Advance(temporal.Infinity))
	}
}

// TestDifferentialRemovalStorm removes *every* inserted event (in random
// order among the still-aligned suffix) so retraction cascades, un-consume
// revival and re-derivation get dense coverage.
func TestDifferentialRemovalStorm(t *testing.T) {
	for name, expr := range exprZoo() {
		for _, mode := range scModes() {
			rng := rand.New(rand.NewSource(5))
			events := genEvents(rng, 24)
			oracle := algebra.NewPatternOp(expr, mode, "out")
			fast := NewOp(expr, mode, "out")
			for i, e := range events {
				og := oracle.Process(0, e)
				ig := fast.Process(0, e)
				checkStep(t, fmt.Sprintf("%s %v push %d", name, mode, i), oracle, fast, ig, og)
			}
			// No advances were issued, so every event is still removable.
			order := rng.Perm(len(events))
			for _, j := range order {
				v := events[j]
				r := event.NewRetract(v.ID, v.Type, v.V.Start, v.V.Start, nil)
				og := oracle.Process(0, r)
				ig := fast.Process(0, r)
				checkStep(t, fmt.Sprintf("%s %v storm-remove %d", name, mode, j), oracle, fast, ig, og)
			}
			og := oracle.Advance(temporal.Infinity)
			ig := fast.Advance(temporal.Infinity)
			checkStep(t, fmt.Sprintf("%s %v storm-finish", name, mode), oracle, fast, ig, og)
			if n := fast.pending.size(); n != 0 {
				t.Fatalf("%s %v: %d pending matches survived a full removal storm", name, mode, n)
			}
		}
	}
}

var _ operators.AdvanceOrdered = (*Op)(nil)
