package inc

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/temporal"
)

// atMostNode matches ATMOST(n, E1, ..., Ek, w): every contributor match b
// is an anchor, qualifying iff at most n contributors (b included) occur in
// [b.Vs, b.Vs+w). Each arrival or departure at time t only shifts the
// counts of anchors whose window contains t, so transitions are O(affected
// anchors) per delta. Duplicate parameter positions contribute duplicate
// entries (each raising the counts, as the denotational evaluator's
// concatenation does); outputs are reference-counted per anchor ID.
type atMostNode struct {
	n    int
	w    temporal.Duration
	kids []node
	// entries: every live contributor match, sorted by (Vs, ID); cnt is
	// the number of entries in [Vs, Vs+w).
	entries []amEntry
	outs    map[event.ID]algebra.Match
	refs    map[event.ID]int
	kd      delta // reusable child-transition scratch
	u       *undoLog
}

type amEntry struct {
	m   algebra.Match
	cnt int
}

// newAtMostNode builds the window counter. Its kids arrive with a frozen
// build context (see buildCtx): the counts below are over the kid output
// sets themselves, so key pushdown must not prune them.
func newAtMostNode(e algebra.AtMostExpr, sh *shared, ctx buildCtx) *atMostNode {
	a := &atMostNode{
		n:    e.N,
		w:    e.W,
		outs: map[event.ID]algebra.Match{},
		refs: map[event.ID]int{},
		u:    sh.u,
	}
	for _, k := range e.Kids {
		a.kids = append(a.kids, build(k, sh, ctx))
	}
	return a
}

func (a *atMostNode) push(e event.Event, out *delta) {
	for _, k := range a.kids {
		a.kd.reset()
		k.push(e, &a.kd)
		a.apply(out)
	}
}

func (a *atMostNode) remove(id event.ID, out *delta) {
	for _, k := range a.kids {
		a.kd.reset()
		k.remove(id, &a.kd)
		a.apply(out)
	}
}

func (a *atMostNode) prune(horizon temporal.Time, out *delta) {
	for _, k := range a.kids {
		a.kd.reset()
		k.prune(horizon, &a.kd)
		a.apply(out)
	}
}

// lowerBound is the first index with Vs >= t.
func (a *atMostNode) lowerBound(t temporal.Time) int {
	return sort.Search(len(a.entries), func(i int) bool { return a.entries[i].m.V.Start >= t })
}

func (a *atMostNode) apply(out *delta) {
	for _, it := range a.kd.items {
		t := it.m.V.Start
		if it.del {
			// Drop one entry with this identity.
			i := a.lowerBound(t)
			for i < len(a.entries) && !(a.entries[i].m.ID == it.m.ID && a.entries[i].m.V.Start == t) {
				i++
			}
			if i == len(a.entries) {
				continue
			}
			gone := a.entries[i]
			a.entries = append(a.entries[:i], a.entries[i+1:]...)
			a.u.amDel(a, i, gone)
			if gone.cnt <= a.n {
				a.deref(gone.m, out)
			}
			// Anchors whose window [Vs, Vs+w) contained t lose one.
			for j := a.lowerBound(t.Add(-a.w) + 1); j < len(a.entries) && a.entries[j].m.V.Start <= t; j++ {
				a.u.amCnt(a, j, false)
				a.entries[j].cnt--
				if a.entries[j].cnt == a.n {
					a.ref(a.entries[j].m, out)
				}
			}
			continue
		}
		// Insert, computing the new entry's own count over [t, t+w).
		i := sort.Search(len(a.entries), func(i int) bool { return !matchBefore(&a.entries[i].m, &it.m) })
		a.entries = append(a.entries, amEntry{})
		copy(a.entries[i+1:], a.entries[i:])
		a.entries[i] = amEntry{m: it.m} // place before searching: the array must be sorted
		a.entries[i].cnt = a.lowerBound(t.Add(a.w)) - a.lowerBound(t)
		a.u.amIns(a, i)
		// Existing anchors whose window contains t gain one.
		for j := a.lowerBound(t.Add(-a.w) + 1); j < len(a.entries) && a.entries[j].m.V.Start <= t; j++ {
			if j == i {
				continue
			}
			a.u.amCnt(a, j, true)
			a.entries[j].cnt++
			if a.entries[j].cnt == a.n+1 {
				a.deref(a.entries[j].m, out)
			}
		}
		if a.entries[i].cnt <= a.n {
			a.ref(a.entries[i].m, out)
		}
	}
}

// transform derives the anchor's output, per the ATMOST operator row.
func (a *atMostNode) transform(b algebra.Match) algebra.Match {
	m := b
	m.ID = event.Pair(b.ID)
	m.V = temporal.NewInterval(b.V.Start, b.V.Start.Add(a.w))
	m.FinalizeAt = b.V.Start.Add(a.w)
	return m
}

func (a *atMostNode) ref(b algebra.Match, out *delta) {
	m := a.transform(b)
	a.u.intMap(a.refs, m.ID)
	a.refs[m.ID]++
	if a.refs[m.ID] == 1 {
		a.u.matchMap(a.outs, m.ID)
		a.outs[m.ID] = m
		out.add(m)
	}
}

func (a *atMostNode) deref(b algebra.Match, out *delta) {
	m := a.transform(b)
	a.u.intMap(a.refs, m.ID)
	a.refs[m.ID]--
	if a.refs[m.ID] == 0 {
		a.u.intMap(a.refs, m.ID)
		delete(a.refs, m.ID)
		a.u.matchMap(a.outs, m.ID)
		delete(a.outs, m.ID)
		out.del(m)
	}
}

func (a *atMostNode) clone(sh *shared) node {
	c := &atMostNode{
		n:       a.n,
		w:       a.w,
		entries: append([]amEntry(nil), a.entries...),
		outs:    make(map[event.ID]algebra.Match, len(a.outs)),
		refs:    make(map[event.ID]int, len(a.refs)),
		u:       sh.u,
	}
	for _, k := range a.kids {
		c.kids = append(c.kids, k.clone(sh))
	}
	for id, m := range a.outs {
		c.outs[id] = m
	}
	for id, r := range a.refs {
		c.refs[id] = r
	}
	return c
}
