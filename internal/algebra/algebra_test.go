package algebra

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/temporal"
)

func ev(id event.ID, typ string, vs temporal.Time, fields ...any) event.Event {
	p := event.Payload{}
	for i := 0; i+1 < len(fields); i += 2 {
		p[fields[i].(string)] = fields[i+1]
	}
	return event.NewInsert(id, typ, vs, temporal.Infinity, p)
}

func typ(name, alias string) Expr { return TypeExpr{Type: name, Alias: alias} }

func TestDenoteSequenceBasics(t *testing.T) {
	expr := SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 10}
	store := []event.Event{
		ev(1, "A", 0),
		ev(2, "B", 5),
		ev(3, "B", 15), // outside scope relative to A@0
	}
	ms := Denote(expr, store)
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1: %+v", len(ms), ms)
	}
	m := ms[0]
	// Output valid over [b.Vs, a.Vs + w) = [5, 10).
	if m.V != temporal.NewInterval(5, 10) {
		t.Errorf("V = %v, want [5, 10)", m.V)
	}
	if m.RT != 0 || m.FirstVs != 0 || m.LastVs != 5 || m.FinalizeAt != 5 {
		t.Errorf("times: %+v", m)
	}
	if len(m.CBT) != 2 || m.CBT[0] != 1 || m.CBT[1] != 2 {
		t.Errorf("lineage: %v", m.CBT)
	}
}

func TestDenoteSequenceRequiresOrder(t *testing.T) {
	expr := SequenceExpr{Kids: []Expr{typ("A", ""), typ("B", "")}, W: 10}
	store := []event.Event{ev(1, "B", 0), ev(2, "A", 5)}
	if ms := Denote(expr, store); len(ms) != 0 {
		t.Errorf("B before A must not match: %+v", ms)
	}
	// Simultaneous events do not satisfy strict ordering.
	store = []event.Event{ev(1, "A", 3), ev(2, "B", 3)}
	if ms := Denote(expr, store); len(ms) != 0 {
		t.Errorf("simultaneous events must not match strictly: %+v", ms)
	}
}

func TestDenoteUnless(t *testing.T) {
	// UNLESS(A, B, 5): A at 0 blocked by B at 3; A at 10 unblocked
	// (B at 16 is outside [10, 15)).
	expr := UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 5}
	store := []event.Event{
		ev(1, "A", 0),
		ev(2, "B", 3),
		ev(3, "A", 10),
		ev(4, "B", 16),
	}
	ms := Denote(expr, store)
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1: %+v", len(ms), ms)
	}
	if ms[0].V != temporal.NewInterval(10, 15) {
		t.Errorf("V = %v, want [10, 15)", ms[0].V)
	}
	// UNLESS finalizes only when the negation window closes.
	if ms[0].FinalizeAt != 15 {
		t.Errorf("FinalizeAt = %v, want 15", ms[0].FinalizeAt)
	}
}

func TestDenoteUnlessCorrelation(t *testing.T) {
	// Predicate injection: only a B on the same machine blocks.
	corr := func(pos, neg event.Payload) bool {
		return event.ValueEqual(pos["a.m"], neg["b.m"])
	}
	expr := UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 5, Corr: corr}
	store := []event.Event{
		ev(1, "A", 0, "m", "m1"),
		ev(2, "B", 3, "m", "m2"), // different machine: does not block
	}
	ms := Denote(expr, store)
	if len(ms) != 1 {
		t.Fatalf("uncorrelated B must not block: %+v", ms)
	}
	store[1].Payload["m"] = "m1"
	if ms := Denote(expr, store); len(ms) != 0 {
		t.Errorf("correlated B must block: %+v", ms)
	}
}

// The paper's §3.1 example: UNLESS(SEQUENCE(INSTALL, SHUTDOWN, 12h),
// RESTART, 5m) with Machine_Id equality.
func TestDenoteCIDR07Example(t *testing.T) {
	h, m := temporal.Hour, temporal.Minute
	corr := func(pos, neg event.Payload) bool {
		return event.ValueEqual(pos["x.Machine_Id"], neg["z.Machine_Id"])
	}
	seq := SequenceExpr{Kids: []Expr{
		FilterExpr{
			Kid: SequenceExpr{Kids: []Expr{typ("INSTALL", "x"), typ("SHUTDOWN", "y")}, W: 12 * h},
			Pred: func(p event.Payload) bool {
				return event.ValueEqual(p["x.Machine_Id"], p["y.Machine_Id"])
			},
		},
	}, W: 12 * h}
	_ = seq
	expr := UnlessExpr{
		A: FilterExpr{
			Kid: SequenceExpr{Kids: []Expr{typ("INSTALL", "x"), typ("SHUTDOWN", "y")}, W: 12 * h},
			Pred: func(p event.Payload) bool {
				return event.ValueEqual(p["x.Machine_Id"], p["y.Machine_Id"])
			},
		},
		B:    typ("RESTART", "z"),
		W:    5 * m,
		Corr: corr,
	}
	base := temporal.Time(0)
	store := []event.Event{
		ev(1, "INSTALL", base, "Machine_Id", "m1"),
		ev(2, "SHUTDOWN", base.Add(1*h), "Machine_Id", "m1"),
		// m1 restarts within 5 minutes: no alert.
		ev(3, "RESTART", base.Add(1*h+2*m), "Machine_Id", "m1"),

		ev(4, "INSTALL", base.Add(2*h), "Machine_Id", "m2"),
		ev(5, "SHUTDOWN", base.Add(3*h), "Machine_Id", "m2"),
		// m2 restarts, but after the 5-minute window: alert fires.
		ev(6, "RESTART", base.Add(3*h+20*m), "Machine_Id", "m2"),

		// m3 shuts down without a preceding install: no sequence.
		ev(7, "SHUTDOWN", base.Add(4*h), "Machine_Id", "m3"),
	}
	ms := Denote(expr, store)
	if len(ms) != 1 {
		t.Fatalf("alerts = %d, want 1 (m2 only): %+v", len(ms), ms)
	}
	if got := ms[0].Payload["x.Machine_Id"]; got != "m2" {
		t.Errorf("alert machine = %v, want m2", got)
	}
}

func TestDenoteNotSequenceScope(t *testing.T) {
	// NOT(C, SEQUENCE(A, B, 10)): sequence detections with no C strictly
	// between the contributors.
	expr := NotExpr{Neg: typ("C", "c"),
		Seq: SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 10}}
	store := []event.Event{
		ev(1, "A", 0), ev(2, "B", 5), ev(3, "C", 2), // C inside (0,5): blocked
		ev(4, "A", 20), ev(5, "B", 24), ev(6, "C", 26), // C outside: kept
	}
	ms := Denote(expr, store)
	// A@20→B@24 survives; also A@20→B@5? no (order); A@0→B@24 outside w.
	if len(ms) != 1 || ms[0].FirstVs != 20 {
		t.Fatalf("matches: %+v", ms)
	}
}

func TestDenoteCancelWhen(t *testing.T) {
	// CANCEL-WHEN(SEQUENCE(A, B, 10), X): an X during the partial
	// detection (between root and detection) cancels.
	expr := CancelWhenExpr{
		E:      SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 10},
		Cancel: typ("X", "x"),
	}
	store := []event.Event{
		ev(1, "A", 0), ev(2, "X", 2), ev(3, "B", 5), // X during detection: canceled
		ev(4, "A", 20), ev(5, "B", 25), // clean
	}
	ms := Denote(expr, store)
	if len(ms) != 1 || ms[0].FirstVs != 20 {
		t.Fatalf("matches: %+v", ms)
	}
}

func TestDenoteAtLeastAllAny(t *testing.T) {
	store := []event.Event{ev(1, "A", 0), ev(2, "B", 3), ev(3, "C", 6)}
	all := All(10, typ("A", ""), typ("B", ""), typ("C", ""))
	if ms := Denote(all, store); len(ms) != 1 {
		t.Fatalf("ALL: %+v", ms)
	}
	atl2 := AtLeastExpr{N: 2, Kids: []Expr{typ("A", ""), typ("B", ""), typ("C", "")}, W: 10}
	// Pairs: AB, AC, BC = 3.
	if ms := Denote(atl2, store); len(ms) != 3 {
		t.Fatalf("ATLEAST(2): %+v", ms)
	}
	anyE := Any(typ("A", ""), typ("B", ""))
	if ms := Denote(anyE, store); len(ms) != 2 {
		t.Fatalf("ANY: %+v", ms)
	}
	// Scope too small: ALL within 4 fails (span 6).
	tight := All(4, typ("A", ""), typ("B", ""), typ("C", ""))
	if ms := Denote(tight, store); len(ms) != 0 {
		t.Fatalf("ALL tight scope: %+v", ms)
	}
}

func TestDenoteAtMost(t *testing.T) {
	expr := AtMostExpr{N: 2, Kids: []Expr{typ("A", "")}, W: 10}
	store := []event.Event{ev(1, "A", 0), ev(2, "A", 3), ev(3, "A", 5), ev(4, "A", 30)}
	ms := Denote(expr, store)
	// Anchors: A@0 sees 3 in [0,10) → blocked; A@3 sees 2 → ok; A@5 sees 2
	// → ok; A@30 sees 1 → ok.
	if len(ms) != 3 {
		t.Fatalf("ATMOST: %d matches: %+v", len(ms), ms)
	}
}

// §1's claim: without consumption, sequence output can be multiplicative in
// input size; with consume mode it is linear.
func TestConsumptionTamesMultiplicativeOutput(t *testing.T) {
	expr := SequenceExpr{Kids: []Expr{typ("A", ""), typ("B", "")}, W: 1000}
	var store []event.Event
	n := 8
	for i := 0; i < n; i++ {
		store = append(store, ev(event.ID(2*i+1), "A", temporal.Time(2*i)))
		store = append(store, ev(event.ID(2*i+2), "B", temporal.Time(2*i+1)))
	}
	each := ApplySC(Denote(expr, store), SCMode{})
	consume := ApplySC(Denote(expr, store), SCMode{Cons: Consume})
	// Unconstrained: n*(n+1)/2 pairs; consumed: n pairs.
	if len(each) != n*(n+1)/2 {
		t.Errorf("each = %d, want %d", len(each), n*(n+1)/2)
	}
	if len(consume) != n {
		t.Errorf("consume = %d, want %d", len(consume), n)
	}
}

func TestSelectionFirstLast(t *testing.T) {
	expr := SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 100}
	store := []event.Event{
		ev(1, "A", 0, "i", int64(1)),
		ev(2, "A", 5, "i", int64(2)),
		ev(3, "B", 10),
	}
	first := ApplySC(Denote(expr, store), SCMode{Sel: SelectFirst})
	last := ApplySC(Denote(expr, store), SCMode{Sel: SelectLast})
	if len(first) != 1 || first[0].Payload["a.i"] != int64(1) {
		t.Errorf("first: %+v", first)
	}
	if len(last) != 1 || last[0].Payload["a.i"] != int64(2) {
		t.Errorf("last: %+v", last)
	}
}

// The streaming PatternOp must agree with the denotation + SC mode on
// ordered input, for random streams and several expressions.
func TestPatternOpMatchesDenotation(t *testing.T) {
	exprs := map[string]Expr{
		"seq":    SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 12},
		"unless": UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 7},
		"all":    All(15, typ("A", ""), typ("B", ""), typ("C", "")),
		"not": NotExpr{Neg: typ("C", "c"),
			Seq: SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 9}},
		"cancel": CancelWhenExpr{
			E:      SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 9},
			Cancel: typ("X", "x")},
	}
	modes := []SCMode{{}, {Cons: Consume}, {Sel: SelectFirst}, {Sel: SelectLast, Cons: Consume}}
	types := []string{"A", "B", "C", "X"}
	rng := rand.New(rand.NewSource(77))
	for name, expr := range exprs {
		for _, mode := range modes {
			for trial := 0; trial < 8; trial++ {
				var store []event.Event
				vs := temporal.Time(0)
				for i := 0; i < 25; i++ {
					vs += temporal.Time(rng.Intn(4) + 1)
					store = append(store, ev(event.ID(i+1), types[rng.Intn(len(types))], vs,
						"i", int64(i)))
				}
				want := ApplySC(Denote(expr, store), mode)

				op := NewPatternOp(expr, mode, "out")
				var got []Match
				for _, e := range store {
					for _, o := range op.Process(0, e) {
						if o.Kind == event.Insert {
							got = append(got, Match{ID: o.ID, V: o.V})
						}
					}
				}
				for _, o := range op.Advance(temporal.Infinity) {
					if o.Kind == event.Insert {
						got = append(got, Match{ID: o.ID, V: o.V})
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%s %v trial %d: got %d, want %d", name, mode, trial, len(got), len(want))
				}
				wantByID := map[event.ID]temporal.Interval{}
				for _, m := range want {
					wantByID[m.ID] = m.V
				}
				for _, g := range got {
					if wantByID[g.ID] != g.V {
						t.Fatalf("%s %v trial %d: match %v has V %v, want %v",
							name, mode, trial, g.ID, g.V, wantByID[g.ID])
					}
				}
			}
		}
	}
}

// The specialized SequenceOp must agree with PatternOp.
func TestSequenceOpMatchesPatternOp(t *testing.T) {
	w := temporal.Duration(12)
	rng := rand.New(rand.NewSource(5))
	for _, mode := range []SCMode{{}, {Cons: Consume}} {
		for trial := 0; trial < 10; trial++ {
			var store []event.Event
			vs := temporal.Time(0)
			for i := 0; i < 40; i++ {
				vs += temporal.Time(rng.Intn(3) + 1)
				typs := []string{"A", "B"}
				store = append(store, ev(event.ID(i+1), typs[rng.Intn(2)], vs))
			}
			generic := NewPatternOp(SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: w}, mode, "out")
			fast := NewSequenceOp([]string{"A", "B"}, []string{"a", "b"}, w, mode, "out")
			var g, f int
			gIDs := map[event.ID]bool{}
			fIDs := map[event.ID]bool{}
			for _, e := range store {
				for _, o := range generic.Process(0, e) {
					g++
					gIDs[o.ID] = true
				}
				for _, o := range fast.Process(0, e) {
					f++
					fIDs[o.ID] = true
				}
			}
			if g != f {
				t.Fatalf("mode %v trial %d: generic %d vs fast %d", mode, trial, g, f)
			}
			for id := range gIDs {
				if !fIDs[id] {
					t.Fatalf("mode %v trial %d: ID sets differ", mode, trial)
				}
			}
		}
	}
}

func TestPatternOpScopePruning(t *testing.T) {
	op := NewPatternOp(SequenceExpr{Kids: []Expr{typ("A", ""), typ("B", "")}, W: 10}, SCMode{}, "out")
	for i := 0; i < 100; i++ {
		op.Process(0, ev(event.ID(i+1), "A", temporal.Time(i*5)))
		op.Advance(temporal.Time(i * 5))
	}
	// Only events within the scope window should remain.
	if op.StateSize() > 10 {
		t.Errorf("state = %d, scope pruning ineffective", op.StateSize())
	}
}

func TestPatternOpFullRemovalRetractsOutputs(t *testing.T) {
	op := NewPatternOp(SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 10}, SCMode{}, "out")
	a := ev(1, "A", 0)
	b := ev(2, "B", 5)
	op.Process(0, a)
	outs := op.Process(0, b)
	if len(outs) != 1 {
		t.Fatalf("expected one detection, got %v", outs)
	}
	// Full removal of the A contributor retracts the composite.
	r := event.NewRetract(1, "A", 0, 0, nil)
	outs = op.Process(0, r)
	var retracts int
	for _, o := range outs {
		if o.Kind == event.Retract {
			retracts++
		}
	}
	if retracts != 1 {
		t.Fatalf("expected one retraction, got %v", outs)
	}
}

// Regression: consumed contributors must survive (in the side store /
// consumed-marked store) so that remove()'s un-consume path actually
// revives the instances they had blocked. Previously mature() deleted
// consumed events outright, and a removal that un-consumed an ID had no
// event left to re-derive from — blocked instances never re-materialized.
func TestPatternOpConsumedContributorRevival(t *testing.T) {
	op := NewPatternOp(SequenceExpr{Kids: []Expr{typ("A", "a"), typ("B", "b")}, W: 10},
		SCMode{Cons: Consume}, "out")
	op.Process(0, ev(1, "A", 0))
	op.Process(0, ev(2, "A", 2))
	outs := op.Process(0, ev(3, "B", 5))
	// Chronicle order commits (A@0, B@5), consuming both; (A@2, B@5) is
	// blocked by the consumption of B.
	if len(outs) != 1 || outs[0].Kind != event.Insert {
		t.Fatalf("expected the first pair only, got %v", outs)
	}
	// Removing A@0 retracts the pair and un-consumes B@5, which must
	// revive the blocked (A@2, B@5) instance.
	outs = op.Process(0, event.NewRetract(1, "A", 0, 0, nil))
	var retracts, inserts int
	for _, o := range outs {
		switch o.Kind {
		case event.Retract:
			retracts++
		case event.Insert:
			inserts++
			if len(o.CBT) != 2 || o.CBT[0] != 2 || o.CBT[1] != 3 {
				t.Fatalf("revived instance has wrong lineage: %v", o.CBT)
			}
		}
	}
	if retracts != 1 || inserts != 1 {
		t.Fatalf("want 1 retract + 1 revived insert, got %v", outs)
	}
}

func TestPatternOpRemovalOfBlockerRevives(t *testing.T) {
	// UNLESS(A, B, 5): B blocks; removing B revives the A output.
	op := NewPatternOp(UnlessExpr{A: typ("A", "a"), B: typ("B", "b"), W: 5}, SCMode{}, "out")
	op.Process(0, ev(1, "A", 0))
	op.Process(0, ev(2, "B", 3))
	// Remove the blocker while still within scope (an aligned removal,
	// arriving right after its insert, as monitor replay would deliver it).
	if outs := op.Process(0, event.NewRetract(2, "B", 3, 3, nil)); len(outs) != 0 {
		t.Fatalf("nothing should finalize before the window closes: %v", outs)
	}
	outs := op.Advance(20)
	if len(outs) != 1 || outs[0].Kind != event.Insert {
		t.Fatalf("removal of blocker must revive output: %v", outs)
	}
}

func TestTypesCollection(t *testing.T) {
	expr := UnlessExpr{
		A: SequenceExpr{Kids: []Expr{typ("INSTALL", "x"), typ("SHUTDOWN", "y")}, W: 10},
		B: typ("RESTART", "z"), W: 5,
	}
	ts := Types(expr)
	if len(ts) != 3 {
		t.Errorf("Types = %v", ts)
	}
}

func TestExprStrings(t *testing.T) {
	expr := UnlessExpr{
		A: SequenceExpr{Kids: []Expr{typ("INSTALL", "x"), typ("SHUTDOWN", "y")}, W: 10},
		B: typ("RESTART", "z"), W: 5,
	}
	s := expr.String()
	if s == "" {
		t.Fatal("empty String")
	}
	if expr.MaxScope() != 15 {
		t.Errorf("MaxScope = %v, want 15", expr.MaxScope())
	}
}

func TestSCModeParsersAndString(t *testing.T) {
	if s, err := ParseSelection("FIRST"); err != nil || s != SelectFirst {
		t.Error("ParseSelection FIRST")
	}
	if _, err := ParseSelection("bogus"); err == nil {
		t.Error("ParseSelection should reject bogus")
	}
	if c, err := ParseConsumption("consume"); err != nil || c != Consume {
		t.Error("ParseConsumption consume")
	}
	if _, err := ParseConsumption("bogus"); err == nil {
		t.Error("ParseConsumption should reject bogus")
	}
	if (SCMode{Sel: SelectLast, Cons: Consume}).String() != "sc(last,consume)" {
		t.Error("SCMode String")
	}
}
