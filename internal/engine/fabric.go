// The standing-query fabric's routing index: a per-engine discrimination
// step from (event TYPE, routing-key value) to the chains that can possibly
// care, so one pushed event touches O(matching chains) instead of every
// registered query. Routing is an engine-level delivery semantics
// (WithRouting): a chain skipped for an event simply never receives it —
// exactly as if the event stream had been pre-filtered per query — so a
// routed fleet is byte-identical to routed independent engines (the
// differential suite proves it), while against unrouted execution only
// emission stamps and per-monitor input counters can differ, never the
// detected alert set (the skip conditions are the soundness claims of
// plan.RouteTypes and lang.Analysis.RouteKeyAttr).
//
// Index shape, per event TYPE:
//
//	plain  — chains that consume the type but proved no routing key:
//	         delivered every event of the type
//	fams   — chains keyed on some attribute, grouped per attribute
//	         ("family"); an event with a definite payload value for the
//	         attribute reaches only the chains bound to that value, an
//	         event without one (wild) reaches the whole family
//	always — chains with an unknown input alphabet (hand-built plans):
//	         delivered everything
//
// Retractions route conservatively to the whole family — the retraction's
// payload need not repeat the insert's key — and CTIs bypass the fabric
// entirely (punctuation must reach every chain; the engine broadcasts it).
package engine

import (
	"sync"

	"repro/internal/event"
)

// routeVal is the canonical comparable form of a routing-key value,
// mirroring event.ValueEqual: all numeric types collapse into one float64
// domain, other supported types compare by identity. Values outside the
// payload vocabulary (and events missing the attribute) do not canonicalize
// and stay wild.
type routeVal struct {
	kind uint8 // 1 numeric, 2 string, 3 bool
	num  float64
	str  string
}

func canonVal(v event.Value) (routeVal, bool) {
	switch x := v.(type) {
	case int64:
		return routeVal{kind: 1, num: float64(x)}, true
	case int:
		return routeVal{kind: 1, num: float64(x)}, true
	case float64:
		return routeVal{kind: 1, num: x}, true
	case string:
		return routeVal{kind: 2, str: x}, true
	case bool:
		rv := routeVal{kind: 3}
		if x {
			rv.num = 1
		}
		return rv, true
	}
	return routeVal{}, false
}

type fabric struct {
	mu     sync.RWMutex
	always []*chain
	byType map[string]*typeEntry
}

type typeEntry struct {
	plain []*chain
	fams  []*famEntry
}

type famEntry struct {
	attr  string
	byVal map[routeVal][]*chain
	all   []*chain
}

func newFabric() *fabric {
	return &fabric{byType: map[string]*typeEntry{}}
}

// add indexes a freshly built chain by its plan's routing metadata.
func (f *fabric) add(ch *chain) {
	f.mu.Lock()
	defer f.mu.Unlock()
	types := ch.plan.RouteTypes
	if len(types) == 0 {
		f.always = append(f.always, ch)
		return
	}
	keyVal, keyed := routeVal{}, false
	if ch.plan.RouteKeyAttr != "" {
		keyVal, keyed = canonVal(ch.plan.RouteKeyVal)
	}
	for _, t := range types {
		te := f.byType[t]
		if te == nil {
			te = &typeEntry{}
			f.byType[t] = te
		}
		if !keyed {
			te.plain = append(te.plain, ch)
			continue
		}
		var fam *famEntry
		for _, fe := range te.fams {
			if fe.attr == ch.plan.RouteKeyAttr {
				fam = fe
				break
			}
		}
		if fam == nil {
			fam = &famEntry{attr: ch.plan.RouteKeyAttr, byVal: map[routeVal][]*chain{}}
			te.fams = append(te.fams, fam)
		}
		fam.byVal[keyVal] = append(fam.byVal[keyVal], ch)
		fam.all = append(fam.all, ch)
	}
}

// remove drops a torn-down chain from every bucket it appears in.
func (f *fabric) remove(ch *chain) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.always = without(f.always, ch)
	for t, te := range f.byType {
		te.plain = without(te.plain, ch)
		fams := te.fams[:0]
		for _, fam := range te.fams {
			fam.all = without(fam.all, ch)
			for v, chains := range fam.byVal {
				if pruned := without(chains, ch); len(pruned) == 0 {
					delete(fam.byVal, v)
				} else {
					fam.byVal[v] = pruned
				}
			}
			if len(fam.all) > 0 {
				fams = append(fams, fam)
			}
		}
		te.fams = fams
		if len(te.plain) == 0 && len(te.fams) == 0 {
			delete(f.byType, t)
		}
	}
}

func without(chains []*chain, ch *chain) []*chain {
	for i, c := range chains {
		if c == ch {
			return append(append([]*chain(nil), chains[:i]...), chains[i+1:]...)
		}
	}
	return chains
}

// route appends the chains that must see ev to buf and returns it. Callers
// pass a stack buffer so the steady-state routing step allocates nothing
// (pinned by an AllocsPerRun ceiling). CTIs never come here — the engine
// broadcasts punctuation to every chain.
func (f *fabric) route(ev event.Event, buf []*chain) []*chain {
	f.mu.RLock()
	defer f.mu.RUnlock()
	buf = append(buf, f.always...)
	te := f.byType[ev.Type]
	if te == nil {
		return buf
	}
	buf = append(buf, te.plain...)
	retract := ev.Kind == event.Retract
	for _, fam := range te.fams {
		if retract {
			buf = append(buf, fam.all...)
			continue
		}
		if v, ok := canonVal(ev.Payload[fam.attr]); ok {
			buf = append(buf, fam.byVal[v]...)
		} else {
			buf = append(buf, fam.all...)
		}
	}
	return buf
}
