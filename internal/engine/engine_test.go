package engine

import (
	"strings"
	"testing"

	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/leakcheck"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/workload"
)

const monitorQuery = `
EVENT MissedRestart
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
            RESTART AS z, 5 minutes)
WHERE CorrelationKey(Machine_Id, EQUAL)
SC(each, consume)
`

func run(t *testing.T, src string, s stream.Stream, opts ...plan.Option) *Query {
	t.Helper()
	e := New()
	q, err := e.RegisterText(src, opts...)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(s)
	return q
}

func alerts(q *Query) int {
	n := 0
	for _, ev := range q.Results().Events() {
		if ev.Kind == event.Insert {
			n++
		}
	}
	return n
}

func TestEndToEndCIDR07OnOrderedDelivery(t *testing.T) {
	src, expected := workload.MachineEvents(workload.DefaultMachines())
	delivered := delivery.Deliver(src, delivery.Ordered(10*temporal.Minute))
	q := run(t, monitorQuery, delivered)
	if got := alerts(q); got != expected {
		t.Errorf("alerts = %d, want %d", got, expected)
	}
}

func TestEndToEndConvergesUnderDisorder(t *testing.T) {
	src, expected := workload.MachineEvents(workload.DefaultMachines())
	for _, spec := range []consistency.Spec{consistency.Strong(), consistency.Middle()} {
		delivered := delivery.Deliver(src,
			delivery.Disordered(11, int64ToDur(10*temporal.Minute), 2*temporal.Minute, 0.3))
		q := run(t, monitorQuery, delivered, plan.WithSpec(spec))
		// Net alerts: inserts minus retractions must equal the expected
		// count once the stream completes.
		net := 0
		for _, ev := range q.Results().Events() {
			if ev.Kind == event.Insert {
				net++
			} else {
				net--
			}
		}
		if net != expected {
			t.Errorf("%s: net alerts = %d, want %d", spec.Name(), net, expected)
		}
	}
}

func int64ToDur(d temporal.Duration) temporal.Duration { return d }

func TestPipelinedMatchesSynchronous(t *testing.T) {
	defer leakcheck.Check(t)()
	src, _ := workload.MachineEvents(workload.DefaultMachines())
	delivered := delivery.Deliver(src, delivery.Ordered(10*temporal.Minute))

	e := New()
	sync, err := e.RegisterText(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(delivered)

	e2 := New()
	piped, err := e2.RegisterText(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	out := piped.RunPipelined(delivered, 16)

	a, b := sync.Results().Events(), out.Events()
	if len(a) != len(b) {
		t.Fatalf("sync %d vs pipelined %d outputs", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Kind != b[i].Kind {
			t.Fatalf("output %d differs", i)
		}
	}
}

func TestSubscribeCallback(t *testing.T) {
	src, expected := workload.MachineEvents(workload.DefaultMachines())
	delivered := delivery.Deliver(src, delivery.Ordered(10*temporal.Minute))
	e := New()
	q, err := e.RegisterText(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	q.Subscribe(func(ev event.Event) {
		if !ev.IsCTI() && ev.Kind == event.Insert {
			got++
		}
	})
	e.Run(delivered)
	if got != expected {
		t.Errorf("callback alerts = %d, want %d", got, expected)
	}
}

func TestMultipleQueriesShareInput(t *testing.T) {
	src, expected := workload.MachineEvents(workload.DefaultMachines())
	delivered := delivery.Deliver(src, delivery.Ordered(10*temporal.Minute))
	e := New()
	q1, err := e.RegisterText(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.RegisterText(`EVENT AnyInstall WHEN ANY(INSTALL i)`)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(delivered)
	if alerts(q1) != expected {
		t.Errorf("q1 alerts = %d, want %d", alerts(q1), expected)
	}
	cfg := workload.DefaultMachines()
	wantInstalls := cfg.Machines * cfg.Cycles
	if alerts(q2) != wantInstalls {
		t.Errorf("q2 outputs = %d, want %d", alerts(q2), wantInstalls)
	}
	if _, ok := e.Query("MissedRestart"); !ok {
		t.Error("query lookup failed")
	}
	if _, ok := e.Query("nope"); ok {
		t.Error("phantom query found")
	}
}

func TestRuntimeSpecSwitch(t *testing.T) {
	src, expected := workload.MachineEvents(workload.DefaultMachines())
	delivered := delivery.Deliver(src,
		delivery.Disordered(5, 10*temporal.Minute, 2*temporal.Minute, 0.25))
	e := New()
	q, err := e.RegisterText(monitorQuery, plan.WithSpec(consistency.Middle()))
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range delivered {
		q.Push(ev)
		if i == len(delivered)/2 {
			q.SetSpec(consistency.Strong())
		}
	}
	q.Finish()
	net := 0
	for _, ev := range q.Results().Events() {
		if ev.Kind == event.Insert {
			net++
		} else {
			net--
		}
	}
	if net != expected {
		t.Errorf("net alerts after switch = %d, want %d", net, expected)
	}
}

func TestPlanSpecializationFires(t *testing.T) {
	p, err := plan.Compile(`EVENT Seq WHEN SEQUENCE(A a, B b, 10)
WHERE {a.k = b.k}`)
	if err != nil {
		t.Fatal(err)
	}
	// The spanning {a.k = b.k} equality also triggers correlation-key
	// pushdown into the matcher tree, ahead of the incremental-pattern tag.
	fired := map[string]bool{}
	for _, r := range p.Rewrites {
		fired[r] = true
	}
	if !fired["incremental-pattern"] || !fired["correlation-pushdown(k)"] {
		t.Errorf("rewrites = %v", p.Rewrites)
	}
	if !strings.HasPrefix(p.Stages[0].Name(), "incpattern:") {
		t.Errorf("stage 0 = %s", p.Stages[0].Name())
	}
	generic, err := plan.Compile(`EVENT Seq WHEN SEQUENCE(A a, B b, 10)`,
		plan.WithoutSpecialization())
	if err != nil {
		t.Fatal(err)
	}
	if len(generic.Rewrites) != 0 {
		t.Errorf("specialization not disabled: %v", generic.Rewrites)
	}
	if p.Explain() == "" || generic.Explain() == "" {
		t.Error("Explain empty")
	}
}

// The specialized and generic plans must produce identical detections.
func TestSpecializedPlanEquivalence(t *testing.T) {
	src, _ := workload.MachineEvents(workload.DefaultMachines())
	delivered := delivery.Deliver(src, delivery.Ordered(10*temporal.Minute))
	const q = `EVENT InstallShutdown WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 12 hours)
WHERE {x.Machine_Id = y.Machine_Id} SC(each, consume)`
	fast := run(t, q, delivered)
	slow := run(t, q, delivered, plan.WithoutSpecialization())
	if alerts(fast) == 0 || alerts(fast) != alerts(slow) {
		t.Errorf("fast = %d, slow = %d", alerts(fast), alerts(slow))
	}
}

func TestOutputClauseProjection(t *testing.T) {
	src, _ := workload.MachineEvents(workload.DefaultMachines())
	delivered := delivery.Deliver(src, delivery.Ordered(10*temporal.Minute))
	q := run(t, `EVENT Pairs WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 12 hours)
WHERE {x.Machine_Id = y.Machine_Id} SC(each, consume)
OUTPUT x.Machine_Id AS machine`, delivered)
	evs := q.Results().Events()
	if len(evs) == 0 {
		t.Fatal("no outputs")
	}
	for _, ev := range evs {
		if ev.Kind != event.Insert {
			continue
		}
		if _, ok := ev.Payload["machine"]; !ok {
			t.Fatalf("projected payload missing field: %v", ev.Payload)
		}
		if len(ev.Payload) != 1 {
			t.Fatalf("projection kept extra fields: %v", ev.Payload)
		}
	}
}

func TestSlicedQuery(t *testing.T) {
	var src stream.Stream
	for i := 0; i < 20; i++ {
		src = append(src, event.NewInsert(event.ID(i+1), "A",
			temporal.Time(i*10), temporal.Time(i*10+5), nil))
	}
	delivered := delivery.Deliver(src, delivery.Ordered(50))
	q := run(t, `EVENT Sliced WHEN ANY(A a) # [50, 100)`, delivered)
	for _, ev := range q.Results().Events() {
		if ev.V.Start < 50 || ev.V.End > 100 {
			t.Fatalf("output outside slice: %v", ev.V)
		}
	}
	if alerts(q) == 0 {
		t.Fatal("slice removed everything")
	}
}

// Concurrent Register while Push traffic is flowing: the engine snapshots
// the query list per push instead of locking and copying it per event, and
// late-registered queries must only see subsequent events.
func TestConcurrentRegisterAndPush(t *testing.T) {
	defer leakcheck.Check(t)()
	eng := New()
	register := func() (*Query, error) {
		p, err := plan.Compile(`EVENT Out WHEN ANY(E e)`)
		if err != nil {
			return nil, err
		}
		return eng.Register(p), nil
	}
	first, err := register()
	if err != nil {
		t.Fatal(err)
	}

	const n = 2000
	type regResult struct {
		late []*Query
		err  error
	}
	done := make(chan regResult)
	go func() {
		var r regResult
		for i := 0; i < 40; i++ {
			q, err := register()
			if err != nil {
				r.err = err
				break
			}
			r.late = append(r.late, q)
		}
		done <- r
	}()
	for i := 0; i < n; i++ {
		ev := event.NewInsert(event.ID(i+1), "E", temporal.Time(i), temporal.Time(i+5), nil)
		ev.C = temporal.From(temporal.Time(i))
		eng.Push(ev)
	}
	reg := <-done
	eng.Finish()
	if reg.err != nil {
		t.Fatal(reg.err)
	}
	late := reg.late

	if got := len(first.Results().Events()); got != n {
		t.Fatalf("first query saw %d events, want %d", got, n)
	}
	for i, q := range late {
		if got := len(q.Results().Events()); got > n {
			t.Fatalf("late query %d saw %d events (> %d pushed)", i, got, n)
		}
	}
	if qs := eng.Queries(); len(qs) != 41 {
		t.Fatalf("registered %d queries, want 41", len(qs))
	}
}

// The slice returned by Query.Push aliases an internal double buffer; it
// must carry the per-push outputs correctly across consecutive pushes.
func TestQueryPushReusesBatchBuffers(t *testing.T) {
	eng := New()
	p, err := plan.Compile(`EVENT Out WHEN ANY(E e)`)
	if err != nil {
		t.Fatal(err)
	}
	q := eng.Register(p)
	var collected []event.ID
	for i := 0; i < 100; i++ {
		ev := event.NewInsert(event.ID(i+1), "E", temporal.Time(i), temporal.Time(i+1), nil)
		ev.C = temporal.From(temporal.Time(i))
		for _, o := range q.Push(ev) {
			if o.Kind == event.Insert {
				collected = append(collected, o.ID)
			}
		}
	}
	if len(collected) != 100 {
		t.Fatalf("collected %d outputs, want 100", len(collected))
	}
	seen := map[event.ID]bool{}
	for _, id := range collected {
		if seen[id] {
			t.Fatalf("duplicate output id %v: buffer reuse leaked stale items", id)
		}
		seen[id] = true
	}
}
