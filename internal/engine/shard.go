// Sharded execution: the key-partitioned parallel runtime.
//
// A sharded query runs N copies of its monitor chain, each owned by one
// worker goroutine. The router hashes every data event to its key's shard
// and broadcasts punctuation to all shards; every other shard receives an
// advance-only probe carrying the event's Sync, so all shards advance
// their operators at identical boundaries and each shard's output is
// byte-for-byte the key-restricted slice of what a single-shard run would
// emit (see Monitor.PushTagged). Workers tag their outputs with order keys
// and the merger goroutine — one per query — interleaves the per-item
// bursts with internal/delivery's merge stage, reconstructing the exact
// single-shard emission sequence:
//
//	            ┌─ worker 0: monitors ─┐
//	router ──► ─┼─ worker 1: monitors ─┼─► merger ──► results + subscribers
//	 (hash key) └─ worker …: monitors ─┘   (order tags)
//
// Handoff is batched: the router accumulates per-shard *runs* of
// consecutive items and flushes a run to every worker at identical global
// sequence boundaries — when the run reaches the burst size, on
// punctuation, on spec switches, and at barriers/finish. Workers process a
// whole run per channel receive into one aggregated burst (outputs, order
// tags in a shared arena, per-item state trace), and the merger
// reconstructs the per-event deterministic order by merging the aligned
// runs item by item. Run and burst buffers cycle through per-worker free
// lists, so steady-state handoff does not allocate and a slow consumer
// exerts backpressure on the router.
//
// The pipeline is asynchronous: Push enqueues and returns, Finish drains.
// Results() exposes a deterministic prefix at any time.
package engine

import (
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/ordkey"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// Shard item kinds. Every worker receives every sequence number exactly
// once (data on the owning shard, a probe elsewhere; control items are
// broadcast), which is what lets the merger align runs without extra
// bookkeeping.
const (
	itemData uint8 = iota
	itemProbe
	itemCTI
	itemSetSpec
	itemBarrier
	itemFinish
)

const (
	// DefaultBurst is the router's default flush bound: the number of
	// consecutive input items accumulated per shard run before handoff.
	// Large enough to amortize the channel round-trip and merge setup over
	// many events, small enough to keep latency and buffer footprint modest.
	DefaultBurst = 64
	// runBufs is the number of run and burst buffers cycling per worker:
	// one being filled by the router, up to two in flight, one being
	// consumed. The free lists double as backpressure — a router that gets
	// ahead of a worker (or a worker ahead of the merger) blocks on the
	// free list instead of growing a queue.
	runBufs = 4
	// maxTracedStages bounds the per-stage state trace carried in each
	// burst (inline, allocation-free). Plans have at most three stages.
	maxTracedStages = 8
)

type shardItem struct {
	kind uint8
	ev   event.Event
	spec consistency.Spec
}

// shardRun is one router→worker handoff unit: a run of consecutive input
// items. items[k] has global sequence number first+k; the router flushes
// all workers at identical boundaries, so the k-th item of every shard's
// run is the same input item (data on the owner, a probe elsewhere).
type shardRun struct {
	first int
	items []shardItem
}

// stageState is one input item's per-stage monitor state sample (see
// shardBurst.states).
type stageState struct {
	state  [maxTracedStages]int32
	shared [maxTracedStages]int32
}

// shardBurst is one worker→merger handoff unit: the aggregated tagged
// outputs of a whole shard run.
type shardBurst struct {
	first int   // sequence number of the run's first input item
	n     int   // input items covered
	kind  uint8 // kind of the run's last item (the flush cause)
	// out accumulates the final stage's outputs and order tags for the
	// whole run; ends[k] is the exclusive end offset of item k's outputs,
	// so the merger can merge the aligned runs item by item (tags are only
	// globally ordered within one input item).
	out  consistency.Burst
	ends []int32
	// states[k] is the per-stage state sample after item k: state[j] is
	// stage j's monitor state minus the guarantee markers in its log
	// window; shared[j] is that marker count. Broadcast punctuation is
	// logged once per shard but contributes once to the single-shard
	// state, so the merger sums state across shards and adds one shard's
	// shared count — reproducing the single-shard monitor's per-push state
	// samples exactly (probes are already excluded from every shard's own
	// count).
	states []stageState
	// fail carries a worker panic to the merger. The failed worker stays
	// in its loop emitting aligned empty bursts, so the merger's run
	// alignment never skews and healthy siblings keep draining.
	fail error
}

// reset empties the burst for reuse, retaining capacity.
func (b *shardBurst) reset() {
	b.clearOutputs()
	b.fail = nil
}

// clearOutputs drops the burst's outputs and traces but keeps its run
// header (first/n/kind) — the shape a failed worker's aligned empty
// response takes.
func (b *shardBurst) clearOutputs() {
	b.out.Reset()
	b.ends = b.ends[:0]
	b.states = b.states[:0]
}

type shardWorker struct {
	monitors []*consistency.Monitor
	in       chan *shardRun
	out      chan *shardBurst
	// Free lists for the run and burst buffers cycling through this
	// worker's pipeline (see runBufs).
	freeRuns   chan *shardRun
	freeBursts chan *shardBurst

	arr  []byte // arrival-key scratch (stage 0)
	trig []byte // per-stage tag-prefix scratch (SetSpec/Finish)
	// mid[i] accumulates stage i's outputs while the cascade feeds them to
	// stage i+1; arrScratch[i] is the downstream arrival-key scratch per
	// cascade depth.
	mid        []*consistency.Burst
	arrScratch [][]byte
}

// sharded is the per-query parallel runtime. The router methods (push,
// setSpec, finish, barrier) serialize on mu, so concurrent producers are
// safe — the same guarantee the single-shard Query.Push mutex gives.
// metrics additionally requires that no Push lands while it drains
// (matching the single-shard contract that Metrics reads are only exact
// between pushes).
type sharded struct {
	n       int
	stages  int
	burst   int // flush bound; <= 0 flushes only on control items
	route   func(event.Event) int
	workers []*shardWorker
	deliver func([]event.Event)
	// onFail receives the first worker-panic error, from the merger
	// goroutine, before delivery stops. The engine wires it to the query's
	// quarantine. Set (if at all) before the first push.
	onFail func(error)

	mu       sync.Mutex // serializes seq assignment and run handoff order
	seq      int
	finished bool
	// pending[i] is worker i's run being filled; all pending runs hold the
	// same pendLen items (the per-shard views of the same input items).
	pending []*shardRun
	pendLen int

	done      chan struct{}
	barrierCh chan struct{}
	finishOut []event.Event

	// merger-owned; read only after a barrier or done handshake.
	maxState [maxTracedStages]int
}

// newSharded builds and starts the sharded runtime. burst is the router's
// flush bound (0 = DefaultBurst, negative = unbounded: flush only on
// punctuation/control). stagesFor must return an independent, freshly
// instantiated operator chain per shard (operator Clones may share scratch
// and are not safe across goroutines). deliver receives merged output in
// deterministic order, on the merger goroutine.
func newSharded(n, burst int, stagesFor func(shard int) ([]operators.Op, error),
	spec consistency.Spec, route func(event.Event) int,
	deliver func([]event.Event), mopts ...consistency.MonitorOption) (*sharded, error) {
	if n < 1 {
		n = 1
	}
	if burst == 0 {
		burst = DefaultBurst
	}
	s := &sharded{
		n:         n,
		burst:     burst,
		route:     route,
		deliver:   deliver,
		done:      make(chan struct{}),
		barrierCh: make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		stages, err := stagesFor(i)
		if err != nil {
			return nil, err
		}
		if len(stages) == 0 {
			return nil, fmt.Errorf("engine: shard %d has no stages", i)
		}
		if len(stages) > maxTracedStages {
			return nil, fmt.Errorf("engine: sharded execution traces at most %d stages, plan has %d", maxTracedStages, len(stages))
		}
		if stages[0].Arity() != 1 {
			return nil, fmt.Errorf("engine: sharded execution requires a single-port head operator")
		}
		w := &shardWorker{
			in:         make(chan *shardRun, runBufs),
			out:        make(chan *shardBurst, runBufs),
			freeRuns:   make(chan *shardRun, runBufs),
			freeBursts: make(chan *shardBurst, runBufs),
		}
		for _, op := range stages {
			w.monitors = append(w.monitors, consistency.NewMonitor(op, spec, mopts...))
		}
		w.mid = make([]*consistency.Burst, len(stages))
		w.arrScratch = make([][]byte, len(stages))
		for j := range w.mid {
			w.mid[j] = new(consistency.Burst)
		}
		// Run buffers start empty and grow on first use: the free lists
		// recycle them, so append growth is a warmup cost only and the
		// steady state stays allocation-free either way — while plans that
		// never see a full burst (or are registered and quickly finished)
		// skip the up-front burst-sized allocations entirely.
		for k := 0; k < runBufs-1; k++ {
			w.freeRuns <- new(shardRun)
		}
		for k := 0; k < runBufs; k++ {
			w.freeBursts <- new(shardBurst)
		}
		s.workers = append(s.workers, w)
		s.pending = append(s.pending, new(shardRun))
	}
	s.stages = len(s.workers[0].monitors)
	for _, w := range s.workers {
		go w.run()
	}
	go s.mergeLoop()
	return s, nil
}

// push routes one physical item: punctuation broadcasts (and flushes —
// punctuation is a natural batch boundary), data goes to the key's shard
// with advance probes everywhere else.
func (s *sharded) push(ev event.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return
	}
	seq := s.seq
	s.seq++
	if s.pendLen == 0 {
		for _, r := range s.pending {
			r.first = seq
		}
	}
	if ev.IsCTI() {
		it := shardItem{kind: itemCTI, ev: ev}
		for _, r := range s.pending {
			r.items = append(r.items, it)
		}
		s.pendLen++
		s.flushLocked()
		return
	}
	owner := 0
	if s.route != nil {
		owner = s.route(ev)
	}
	// The probe mirrors the event's Sync and CEDR arrival time; sibling
	// monitors advance (and stamp output) exactly as the owner does.
	probe := event.Event{V: temporal.From(ev.Sync()), C: ev.C}
	for i, r := range s.pending {
		if i == owner {
			r.items = append(r.items, shardItem{kind: itemData, ev: ev})
		} else {
			r.items = append(r.items, shardItem{kind: itemProbe, ev: probe})
		}
	}
	s.pendLen++
	if s.burst > 0 && s.pendLen >= s.burst {
		s.flushLocked()
	}
}

// control appends a broadcast control item and flushes the pending runs,
// so the control item is always the last item of its run. Caller holds mu.
func (s *sharded) control(kind uint8, spec consistency.Spec) {
	if s.pendLen == 0 {
		for _, r := range s.pending {
			r.first = s.seq
		}
	}
	it := shardItem{kind: kind, spec: spec}
	s.seq++
	for _, r := range s.pending {
		r.items = append(r.items, it)
	}
	s.pendLen++
	s.flushLocked()
}

// flushLocked hands the pending runs to the workers and refills the
// pending slots from the free lists (blocking there is the backpressure).
// Caller holds mu.
func (s *sharded) flushLocked() {
	if s.pendLen == 0 {
		return
	}
	for i, w := range s.workers {
		w.in <- s.pending[i]
		r := <-w.freeRuns
		r.items = r.items[:0]
		s.pending[i] = r
	}
	s.pendLen = 0
}

// setSpec broadcasts a consistency-level switch; it takes effect at this
// position in the input sequence on every shard.
func (s *sharded) setSpec(spec consistency.Spec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return
	}
	s.control(itemSetSpec, spec)
}

// finish flushes every shard, waits for the merger to drain, and returns
// the merged output of the final run (any still-pending items plus the
// finish flush itself).
func (s *sharded) finish() []event.Event {
	s.mu.Lock()
	if !s.finished {
		s.finished = true
		s.control(itemFinish, consistency.Spec{})
	}
	s.mu.Unlock()
	<-s.done
	return s.finishOut
}

// barrier waits until every shard and the merger have processed everything
// enqueued so far.
func (s *sharded) barrier() {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.control(itemBarrier, consistency.Spec{})
	s.mu.Unlock()
	<-s.barrierCh
}

// metrics combines the per-shard monitor metrics into the metrics the
// single-shard run would report: partitioned counters sum, broadcast
// punctuation counts once, and the state axes come from the merger's
// per-item cross-shard state trace. The trace samples once per input item,
// which reproduces the head stage's per-push samples exactly; downstream
// stages are pushed several times per input item by the cascade, so their
// MaxState may under-read momentary intra-item peaks.
func (s *sharded) metrics() []consistency.Metrics {
	s.barrier()
	out := make([]consistency.Metrics, s.stages)
	for j := 0; j < s.stages; j++ {
		agg := s.workers[0].monitors[j].Metrics()
		for _, w := range s.workers[1:] {
			m := w.monitors[j].Metrics()
			agg.InputEvents += m.InputEvents
			agg.OutputInserts += m.OutputInserts
			agg.OutputRetractions += m.OutputRetractions
			agg.Compensations += m.Compensations
			agg.Dropped += m.Dropped
			agg.Violations += m.Violations
			agg.Replays += m.Replays
			agg.BlockedEvents += m.BlockedEvents
			agg.TotalBlocking += m.TotalBlocking
			// Broadcast guarantee markers are logged per shard but count
			// once in the single-shard state.
			agg.CurState += m.CurState - w.monitors[j].WindowMarkers()
			// InputCTIs and OutputCTIs: punctuation is broadcast and every
			// shard counts the identical stream once — keep shard 0's.
		}
		// newSharded bounds the chain to maxTracedStages, so the trace
		// always covers every stage.
		agg.MaxState = s.maxState[j]
		out[j] = agg
	}
	return out
}

func (w *shardWorker) run() {
	var failed error
	for r := range w.in {
		b := <-w.freeBursts
		b.reset()
		last := r.items[len(r.items)-1].kind
		b.first, b.n, b.kind = r.first, len(r.items), last
		if failed == nil {
			failed = w.processRunSafely(r, b)
		}
		if failed != nil {
			// Drain mode (and the failing run itself): a panicked worker's
			// operator state is unusable and its partial outputs must not
			// leak, but the merger still expects one aligned burst per run
			// from every shard. Empty bursts keep the alignment and let
			// healthy siblings drain; finish still terminates the loop.
			b.clearOutputs()
		}
		b.fail = failed
		w.freeRuns <- r
		w.out <- b
		if last == itemFinish {
			return
		}
	}
}

// processRunSafely drives one run through the monitor chain under a
// recover barrier: a panicking operator — at any intra-run offset — yields
// an error (and the caller sends an aligned empty burst) instead of
// killing the process or deadlocking the merger.
func (w *shardWorker) processRunSafely(r *shardRun, b *shardBurst) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("shard worker panicked: %v\n%s", rec, debug.Stack())
		}
	}()
	for k := range r.items {
		w.process(r.first+k, r.items[k], b)
	}
	return nil
}

// process drives one item through the shard's monitor chain, appending its
// outputs and trace to b. It is the worker loop's per-item body, callable
// synchronously (the critical-path benchmark times a shard's full item
// sequence this way, without channel overhead).
func (w *shardWorker) process(seq int, it shardItem, b *shardBurst) {
	switch it.kind {
	case itemData, itemProbe, itemCTI:
		w.arr = ordkey.AppendUint(w.arr[:0], uint64(seq))
		if len(w.monitors) == 1 {
			w.monitors[0].PushTaggedInto(0, it.ev, w.arr, nil, it.kind == itemProbe, &b.out)
		} else {
			mid := w.mid[0]
			mid.Reset()
			w.monitors[0].PushTaggedInto(0, it.ev, w.arr, nil, it.kind == itemProbe, mid)
			w.cascade(1, seq, mid, b)
		}
	case itemSetSpec, itemFinish:
		// Mirror the single-shard Query.SetSpec cascade: each stage's
		// released output flows through the remaining stages, stage by
		// stage, under a per-stage tag prefix.
		for i := range w.monitors {
			w.trig = ordkey.AppendUint(w.trig[:0], uint64(i))
			w.arr = ordkey.AppendUint(w.arr[:0], uint64(seq))
			last := i == len(w.monitors)-1
			sink := &b.out
			if !last {
				sink = w.mid[i]
				sink.Reset()
			}
			if it.kind == itemSetSpec {
				w.monitors[i].SetSpecTaggedInto(it.spec, w.arr, w.trig, sink)
			} else {
				w.monitors[i].FinishTaggedInto(w.arr, w.trig, sink)
			}
			if !last {
				w.cascade(i+1, seq, sink, b)
			}
		}
	case itemBarrier:
		// State is unchanged; the run round-trip is the synchronization.
	}
	b.ends = append(b.ends, int32(b.out.Len()))
	var st stageState
	for j, m := range w.monitors {
		if j >= maxTracedStages {
			break
		}
		mk := int32(m.WindowMarkers())
		st.state[j] = int32(m.CurState()) - mk
		st.shared[j] = mk
	}
	b.states = append(b.states, st)
}

// cascade drives the outputs accumulated in src (stage from-1's burst)
// through the monitors from stage `from` on, appending the final stage's
// tagged outputs to b. Each item's outputs nest under its tag, so the
// merged cross-shard order reproduces the single-shard stage-by-stage
// cascade exactly.
func (w *shardWorker) cascade(from, seq int, src *consistency.Burst, b *shardBurst) {
	last := from == len(w.monitors)-1
	var mid *consistency.Burst
	if !last {
		mid = w.mid[from]
	}
	for k := range src.Evs {
		// The downstream arrival key is (input seq, upstream tag): globally
		// ordered across shards and runs, because upstream tags are ordered
		// within one input item.
		arr := ordkey.AppendUint(w.arrScratch[from][:0], uint64(seq))
		arr = append(arr, src.Tags[k]...)
		w.arrScratch[from] = arr
		if last {
			w.monitors[from].PushTaggedInto(0, src.Evs[k], arr, src.Tags[k], false, &b.out)
		} else {
			mid.Reset()
			w.monitors[from].PushTaggedInto(0, src.Evs[k], arr, src.Tags[k], false, mid)
			w.cascade(from+1, seq, mid, b)
		}
	}
}

// mergeLoop gathers each run's bursts from all shards, merges the aligned
// per-item output slices into the single-shard emission order, and
// delivers once per run.
func (s *sharded) mergeLoop() {
	var mg delivery.Merger
	var out []event.Event
	var failed error
	bs := make([]*shardBurst, s.n)
	evs := make([][]event.Event, s.n)
	tags := make([][][]byte, s.n)
	for {
		var kind uint8
		var n int
		for i, w := range s.workers {
			b := <-w.out
			bs[i] = b
			kind = b.kind
			n = b.n
			if b.fail != nil && failed == nil {
				// First failure wins; the query is quarantined before any
				// post-failure delivery could happen.
				failed = b.fail
				if s.onFail != nil {
					s.onFail(failed)
				}
			}
		}
		out = out[:0]
		if failed == nil {
			for k := 0; k < n; k++ {
				// Per-item cross-shard state trace (see shardBurst.states).
				var sum [maxTracedStages]int
				for i, b := range bs {
					if k >= len(b.states) {
						continue
					}
					st := &b.states[k]
					for j := 0; j < s.stages && j < maxTracedStages; j++ {
						sum[j] += int(st.state[j])
						if i == 0 {
							sum[j] += int(st.shared[j])
						}
					}
				}
				for j := 0; j < s.stages && j < maxTracedStages; j++ {
					if sum[j] > s.maxState[j] {
						s.maxState[j] = sum[j]
					}
				}
				// Tags are only globally ordered within one input item, so
				// merge the aligned runs item by item.
				for i, b := range bs {
					start, end := 0, 0
					if k < len(b.ends) {
						end = int(b.ends[k])
						if k > 0 {
							start = int(b.ends[k-1])
						}
					}
					evs[i] = b.out.Evs[start:end]
					tags[i] = b.out.Tags[start:end]
				}
				out = mg.MergeTagged(out, evs, tags)
			}
		}
		// Merged events are value copies; the burst buffers can cycle back
		// to the workers before delivery runs.
		for i, w := range s.workers {
			w.freeBursts <- bs[i]
			bs[i] = nil
		}
		switch kind {
		case itemBarrier:
			// Deliver the run's output before the handshake, then keep
			// going. Barriers (and the finish handshake below) still
			// complete after a failure — metrics, Finish, and engine
			// shutdown must not hang on a quarantined query.
			if failed == nil && len(out) > 0 {
				s.deliver(out)
			}
			s.barrierCh <- struct{}{}
		case itemFinish:
			if failed == nil {
				s.finishOut = append([]event.Event(nil), out...)
				s.deliver(s.finishOut)
			}
			close(s.done)
			return
		default:
			// A partial merge after a failure would be wrong output, not
			// late output: skip delivery entirely once any shard failed.
			if failed == nil && len(out) > 0 {
				s.deliver(out)
			}
		}
	}
}

// RouteByAttr routes events by a payload attribute, rendered and hashed
// exactly as grouped aggregation renders and hashes group keys.
// Retractions must carry the attribute too (all in-repo workloads do).
func RouteByAttr(attr string, shards int) func(event.Event) int {
	return func(ev event.Event) int {
		return int(operators.HashString(operators.KeyString(ev.Payload[attr])) % uint64(shards))
	}
}

// RouteByID routes events by their fact ID; retractions share their
// insert's ID and follow it to the same shard.
func RouteByID(shards int) func(event.Event) int {
	return func(ev event.Event) int {
		return int(uint64(event.Pair(ev.ID)) % uint64(shards))
	}
}

// routeForPlan builds the router a plan's partition verdict calls for.
func routeForPlan(part plan.Partition, shards int) func(event.Event) int {
	switch part.Mode {
	case plan.PartitionByAttr:
		return RouteByAttr(part.Attr, shards)
	case plan.PartitionByID:
		return RouteByID(shards)
	default:
		return nil
	}
}

// RunShardedOp executes one operator as an n-shard parallel pipeline over a
// finite physical stream and returns the merged output plus the combined
// metrics — the sharded counterpart of consistency.RunStreams. mk must
// return a fresh, independent *single-port* operator instance on every
// call (multi-port operators do not shard and are reported as an error);
// route maps each data event to its shard (see RouteByAttr, RouteByID).
// A worker panic during the run is recovered and returned as an error
// alongside the output merged up to the failure.
func RunShardedOp(mk func() operators.Op, spec consistency.Spec, n int,
	route func(event.Event) int, in stream.Stream) (stream.Stream, consistency.Metrics, error) {
	return RunShardedOpBurst(mk, spec, n, 0, route, in)
}

// RunShardedOpBurst is RunShardedOp with an explicit router burst size
// (0 = DefaultBurst, negative = flush only on punctuation/control); the
// burst-grid differential tests sweep it to prove run boundaries are
// semantics-free.
func RunShardedOpBurst(mk func() operators.Op, spec consistency.Spec, n, burst int,
	route func(event.Event) int, in stream.Stream) (stream.Stream, consistency.Metrics, error) {
	var out stream.Stream
	sh, err := newSharded(n, burst,
		func(int) ([]operators.Op, error) { return []operators.Op{mk()}, nil },
		spec, route,
		func(items []event.Event) { out = append(out, items...) })
	if err != nil {
		return nil, consistency.Metrics{}, err
	}
	// The merger calls onFail strictly before closing done, and finish
	// waits on done, so reading failErr after finish is race-free.
	var failErr error
	sh.onFail = func(err error) { failErr = err }
	for _, ev := range in {
		sh.push(ev)
	}
	sh.finish()
	if failErr != nil {
		return out, consistency.Metrics{}, failErr
	}
	return out, sh.metrics()[0], nil
}
