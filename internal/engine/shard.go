// Sharded execution: the key-partitioned parallel runtime.
//
// A sharded query runs N copies of its monitor chain, each owned by one
// worker goroutine. The router hashes every data event to its key's shard
// and broadcasts punctuation to all shards; every other shard receives an
// advance-only probe carrying the event's Sync, so all shards advance
// their operators at identical boundaries and each shard's output is
// byte-for-byte the key-restricted slice of what a single-shard run would
// emit (see Monitor.PushTagged). Workers tag their outputs with order keys
// and the merger goroutine — one per query — interleaves the per-item
// bursts with internal/delivery's merge stage, reconstructing the exact
// single-shard emission sequence:
//
//	            ┌─ worker 0: monitors ─┐
//	router ──► ─┼─ worker 1: monitors ─┼─► merger ──► results + subscribers
//	 (hash key) └─ worker …: monitors ─┘   (order tags)
//
// The pipeline is asynchronous: Push enqueues and returns, Finish drains.
// Results() exposes a deterministic prefix at any time.
package engine

import (
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/ordkey"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// Shard item kinds. Every worker receives every sequence number exactly
// once (data on the owning shard, a probe elsewhere; control items are
// broadcast), which is what lets the merger align bursts without extra
// bookkeeping.
const (
	itemData uint8 = iota
	itemProbe
	itemCTI
	itemSetSpec
	itemBarrier
	itemFinish
)

const (
	shardChanBuf = 1024
	// maxTracedStages bounds the per-stage state trace carried in each
	// burst (inline, allocation-free). Plans have at most three stages.
	maxTracedStages = 8
)

type shardItem struct {
	kind uint8
	seq  int
	ev   event.Event
	spec consistency.Spec
}

type shardBurst struct {
	seq   int
	kind  uint8
	items []delivery.Tagged
	// state[j] is stage j's monitor state size after this item, minus the
	// guarantee markers in its log window; shared[j] is that marker count.
	// Broadcast punctuation is logged once per shard but contributes once to
	// the single-shard state, so the merger sums state across shards and
	// adds one shard's shared count — reproducing the single-shard monitor's
	// per-push state samples exactly (probes are already excluded from every
	// shard's own count).
	state  [maxTracedStages]int32
	shared [maxTracedStages]int32
	// fail carries a worker panic to the merger. The failed worker stays in
	// its loop emitting empty bursts, so the merger's per-seq alignment
	// never skews and sibling shards keep draining.
	fail error
}

type shardWorker struct {
	monitors []*consistency.Monitor
	in       chan shardItem
	out      chan shardBurst
	arr      []byte // arrival-key scratch (stage 0)
	trig     []byte // per-stage tag-prefix scratch (SetSpec/Finish)
	// Per-cascade-depth reusable batch scratch (see cascade).
	evScratch  [][]event.Event
	tagScratch [][][]byte
	arrScratch [][]byte
}

// sharded is the per-query parallel runtime. The router methods (push,
// setSpec, finish, barrier) serialize on mu, so concurrent producers are
// safe — the same guarantee the single-shard Query.Push mutex gives.
// metrics additionally requires that no Push lands while it drains
// (matching the single-shard contract that Metrics reads are only exact
// between pushes).
type sharded struct {
	n       int
	stages  int
	route   func(event.Event) int
	workers []*shardWorker
	deliver func([]event.Event)
	// onFail receives the first worker-panic error, from the merger
	// goroutine, before delivery stops. The engine wires it to the query's
	// quarantine. Set (if at all) before the first push.
	onFail func(error)

	mu       sync.Mutex // serializes seq assignment and channel send order
	seq      int
	finished bool

	done      chan struct{}
	barrierCh chan struct{}
	finishOut []event.Event

	// merger-owned; read only after a barrier or done handshake.
	maxState [maxTracedStages]int
}

// newSharded builds and starts the sharded runtime. stagesFor must return
// an independent, freshly instantiated operator chain per shard (operator
// Clones may share scratch and are not safe across goroutines). deliver
// receives merged output in deterministic order, on the merger goroutine.
func newSharded(n int, stagesFor func(shard int) ([]operators.Op, error),
	spec consistency.Spec, route func(event.Event) int,
	deliver func([]event.Event), mopts ...consistency.MonitorOption) (*sharded, error) {
	if n < 1 {
		n = 1
	}
	s := &sharded{
		n:         n,
		route:     route,
		deliver:   deliver,
		done:      make(chan struct{}),
		barrierCh: make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		stages, err := stagesFor(i)
		if err != nil {
			return nil, err
		}
		if len(stages) == 0 {
			return nil, fmt.Errorf("engine: shard %d has no stages", i)
		}
		if len(stages) > maxTracedStages {
			return nil, fmt.Errorf("engine: sharded execution traces at most %d stages, plan has %d", maxTracedStages, len(stages))
		}
		if stages[0].Arity() != 1 {
			return nil, fmt.Errorf("engine: sharded execution requires a single-port head operator")
		}
		w := &shardWorker{
			in:  make(chan shardItem, shardChanBuf),
			out: make(chan shardBurst, shardChanBuf),
		}
		for _, op := range stages {
			w.monitors = append(w.monitors, consistency.NewMonitor(op, spec, mopts...))
		}
		s.workers = append(s.workers, w)
	}
	s.stages = len(s.workers[0].monitors)
	for _, w := range s.workers {
		go w.run()
	}
	go s.mergeLoop()
	return s, nil
}

// push routes one physical item: punctuation broadcasts, data goes to the
// key's shard with advance probes everywhere else.
func (s *sharded) push(ev event.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return
	}
	seq := s.seq
	s.seq++
	if ev.IsCTI() {
		it := shardItem{kind: itemCTI, seq: seq, ev: ev}
		for _, w := range s.workers {
			w.in <- it
		}
		return
	}
	owner := 0
	if s.route != nil {
		owner = s.route(ev)
	}
	// The probe mirrors the event's Sync and CEDR arrival time; sibling
	// monitors advance (and stamp output) exactly as the owner does.
	probe := event.Event{V: temporal.From(ev.Sync()), C: ev.C}
	for i, w := range s.workers {
		if i == owner {
			w.in <- shardItem{kind: itemData, seq: seq, ev: ev}
		} else {
			w.in <- shardItem{kind: itemProbe, seq: seq, ev: probe}
		}
	}
}

// setSpec broadcasts a consistency-level switch; it takes effect at this
// position in the input sequence on every shard.
func (s *sharded) setSpec(spec consistency.Spec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return
	}
	it := shardItem{kind: itemSetSpec, seq: s.seq, spec: spec}
	s.seq++
	for _, w := range s.workers {
		w.in <- it
	}
}

// finish flushes every shard, waits for the merger to drain, and returns
// the merged finish outputs.
func (s *sharded) finish() []event.Event {
	s.mu.Lock()
	if !s.finished {
		s.finished = true
		it := shardItem{kind: itemFinish, seq: s.seq}
		s.seq++
		for _, w := range s.workers {
			w.in <- it
		}
	}
	s.mu.Unlock()
	<-s.done
	return s.finishOut
}

// barrier waits until every shard and the merger have processed everything
// enqueued so far.
func (s *sharded) barrier() {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		<-s.done
		return
	}
	it := shardItem{kind: itemBarrier, seq: s.seq}
	s.seq++
	for _, w := range s.workers {
		w.in <- it
	}
	s.mu.Unlock()
	<-s.barrierCh
}

// metrics combines the per-shard monitor metrics into the metrics the
// single-shard run would report: partitioned counters sum, broadcast
// punctuation counts once, and the state axes come from the merger's
// per-item cross-shard state trace. The trace samples once per input item,
// which reproduces the head stage's per-push samples exactly; downstream
// stages are pushed several times per input item by the cascade, so their
// MaxState may under-read momentary intra-item peaks.
func (s *sharded) metrics() []consistency.Metrics {
	s.barrier()
	out := make([]consistency.Metrics, s.stages)
	for j := 0; j < s.stages; j++ {
		agg := s.workers[0].monitors[j].Metrics()
		for _, w := range s.workers[1:] {
			m := w.monitors[j].Metrics()
			agg.InputEvents += m.InputEvents
			agg.OutputInserts += m.OutputInserts
			agg.OutputRetractions += m.OutputRetractions
			agg.Compensations += m.Compensations
			agg.Dropped += m.Dropped
			agg.Violations += m.Violations
			agg.Replays += m.Replays
			agg.BlockedEvents += m.BlockedEvents
			agg.TotalBlocking += m.TotalBlocking
			// Broadcast guarantee markers are logged per shard but count
			// once in the single-shard state.
			agg.CurState += m.CurState - w.monitors[j].WindowMarkers()
			// InputCTIs and OutputCTIs: punctuation is broadcast and every
			// shard counts the identical stream once — keep shard 0's.
		}
		// newSharded bounds the chain to maxTracedStages, so the trace
		// always covers every stage.
		agg.MaxState = s.maxState[j]
		out[j] = agg
	}
	return out
}

func (w *shardWorker) run() {
	var failed error
	for it := range w.in {
		var b shardBurst
		if failed == nil {
			b, failed = w.processSafely(it)
		} else {
			// Drain mode: a panicked worker's operator state is unusable,
			// but the merger still expects one burst per sequence number
			// from every shard. Empty bursts keep the alignment and let
			// healthy siblings drain; finish still terminates the loop.
			b = shardBurst{seq: it.seq, kind: it.kind}
		}
		b.fail = failed
		w.out <- b
		if it.kind == itemFinish {
			return
		}
	}
}

// processSafely runs process under a recover barrier: a panicking operator
// yields an empty aligned burst carrying the error instead of killing the
// process or deadlocking the merger.
func (w *shardWorker) processSafely(it shardItem) (b shardBurst, err error) {
	defer func() {
		if r := recover(); r != nil {
			b = shardBurst{seq: it.seq, kind: it.kind}
			err = fmt.Errorf("shard worker panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return w.process(it), nil
}

// process drives one item through the shard's monitor chain. It is the
// worker loop's body, callable synchronously (the critical-path benchmark
// times a shard's full item sequence this way, without channel overhead).
func (w *shardWorker) process(it shardItem) shardBurst {
	b := shardBurst{seq: it.seq, kind: it.kind}
	switch it.kind {
	case itemData, itemProbe, itemCTI:
		w.arr = ordkey.AppendUint(w.arr[:0], uint64(it.seq))
		outs, tags := w.monitors[0].PushTagged(0, it.ev, w.arr, nil, it.kind == itemProbe)
		b.items = w.cascade(1, it.seq, outs, tags, b.items)
	case itemSetSpec:
		// Mirror the single-shard Query.SetSpec cascade: each stage's
		// released output flows through the remaining stages, stage by
		// stage, under a per-stage tag prefix.
		for i := range w.monitors {
			w.trig = ordkey.AppendUint(w.trig[:0], uint64(i))
			w.arr = ordkey.AppendUint(w.arr[:0], uint64(it.seq))
			outs, tags := w.monitors[i].SetSpecTagged(it.spec, w.arr, w.trig)
			b.items = w.cascade(i+1, it.seq, outs, tags, b.items)
		}
	case itemFinish:
		for i := range w.monitors {
			w.trig = ordkey.AppendUint(w.trig[:0], uint64(i))
			w.arr = ordkey.AppendUint(w.arr[:0], uint64(it.seq))
			outs, tags := w.monitors[i].FinishTagged(w.arr, w.trig)
			b.items = w.cascade(i+1, it.seq, outs, tags, b.items)
		}
	case itemBarrier:
		// State is unchanged; the burst itself is the synchronization.
	}
	for j, m := range w.monitors {
		if j >= maxTracedStages {
			break
		}
		mk := int32(m.WindowMarkers())
		b.state[j] = int32(m.Metrics().CurState) - mk
		b.shared[j] = mk
	}
	return b
}

// cascade drives items (with their order tags) through the monitors from
// stage `from` on, collecting the final stage's tagged outputs. Each item's
// outputs nest under its tag, so the merged cross-shard order reproduces
// the single-shard stage-by-stage cascade exactly.
func (w *shardWorker) cascade(from, seq int, items []event.Event, tags [][]byte, acc []delivery.Tagged) []delivery.Tagged {
	if from >= len(w.monitors) {
		for k := range items {
			acc = append(acc, delivery.Tagged{Ev: items[k], Tag: tags[k]})
		}
		return acc
	}
	// The monitor owns the returned slices until its next call; move the
	// batch into per-depth reusable scratch before pushing follow-up items
	// into the same stage. (The tag byte arrays themselves are freshly
	// allocated per call and safe to hold.)
	for len(w.evScratch) <= from {
		w.evScratch = append(w.evScratch, nil)
		w.tagScratch = append(w.tagScratch, nil)
		w.arrScratch = append(w.arrScratch, nil)
	}
	evs := append(w.evScratch[from][:0], items...)
	tgs := append(w.tagScratch[from][:0], tags...)
	w.evScratch[from], w.tagScratch[from] = evs, tgs
	for k := range evs {
		// The downstream arrival key is (input seq, upstream tag): globally
		// ordered across shards and bursts, because upstream tags are.
		arr := ordkey.AppendUint(w.arrScratch[from][:0], uint64(seq))
		arr = append(arr, tgs[k]...)
		w.arrScratch[from] = arr
		outs, otags := w.monitors[from].PushTagged(0, evs[k], arr, tgs[k], false)
		acc = w.cascade(from+1, seq, outs, otags, acc)
	}
	return acc
}

// mergeLoop gathers each input item's bursts from all shards, merges them
// into the single-shard emission order, and delivers.
func (s *sharded) mergeLoop() {
	var mg delivery.Merger
	var out []event.Event
	var failed error
	bursts := make([][]delivery.Tagged, s.n)
	for {
		var kind uint8
		var sum [maxTracedStages]int
		for i, w := range s.workers {
			b := <-w.out
			bursts[i] = b.items
			kind = b.kind
			if b.fail != nil && failed == nil {
				// First failure wins; the query is quarantined before any
				// post-failure delivery could happen.
				failed = b.fail
				if s.onFail != nil {
					s.onFail(failed)
				}
			}
			for j := 0; j < s.stages && j < maxTracedStages; j++ {
				sum[j] += int(b.state[j])
				if i == 0 {
					sum[j] += int(b.shared[j])
				}
			}
		}
		for j := 0; j < s.stages && j < maxTracedStages; j++ {
			if sum[j] > s.maxState[j] {
				s.maxState[j] = sum[j]
			}
		}
		if kind == itemBarrier {
			// Barriers (and the finish handshake below) still complete after
			// a failure — metrics, Finish, and engine shutdown must not hang
			// on a quarantined query.
			s.barrierCh <- struct{}{}
			continue
		}
		if failed != nil {
			// A partial merge would be wrong output, not late output: skip
			// delivery entirely once any shard has failed.
			if kind == itemFinish {
				close(s.done)
				return
			}
			continue
		}
		out = mg.Merge(out[:0], bursts...)
		if kind == itemFinish {
			s.finishOut = append([]event.Event(nil), out...)
			s.deliver(s.finishOut)
			close(s.done)
			return
		}
		if len(out) > 0 {
			s.deliver(out)
		}
	}
}

// RouteByAttr routes events by a payload attribute, rendered and hashed
// exactly as grouped aggregation renders and hashes group keys.
// Retractions must carry the attribute too (all in-repo workloads do).
func RouteByAttr(attr string, shards int) func(event.Event) int {
	return func(ev event.Event) int {
		return int(operators.HashString(operators.KeyString(ev.Payload[attr])) % uint64(shards))
	}
}

// RouteByID routes events by their fact ID; retractions share their
// insert's ID and follow it to the same shard.
func RouteByID(shards int) func(event.Event) int {
	return func(ev event.Event) int {
		return int(uint64(event.Pair(ev.ID)) % uint64(shards))
	}
}

// routeForPlan builds the router a plan's partition verdict calls for.
func routeForPlan(part plan.Partition, shards int) func(event.Event) int {
	switch part.Mode {
	case plan.PartitionByAttr:
		return RouteByAttr(part.Attr, shards)
	case plan.PartitionByID:
		return RouteByID(shards)
	default:
		return nil
	}
}

// RunShardedOp executes one operator as an n-shard parallel pipeline over a
// finite physical stream and returns the merged output plus the combined
// metrics — the sharded counterpart of consistency.RunStreams. mk must
// return a fresh, independent *single-port* operator instance on every
// call (multi-port operators do not shard and are reported as an error);
// route maps each data event to its shard (see RouteByAttr, RouteByID).
// A worker panic during the run is recovered and returned as an error
// alongside the output merged up to the failure.
func RunShardedOp(mk func() operators.Op, spec consistency.Spec, n int,
	route func(event.Event) int, in stream.Stream) (stream.Stream, consistency.Metrics, error) {
	var out stream.Stream
	sh, err := newSharded(n,
		func(int) ([]operators.Op, error) { return []operators.Op{mk()}, nil },
		spec, route,
		func(items []event.Event) { out = append(out, items...) })
	if err != nil {
		return nil, consistency.Metrics{}, err
	}
	// The merger calls onFail strictly before closing done, and finish
	// waits on done, so reading failErr after finish is race-free.
	var failErr error
	sh.onFail = func(err error) { failErr = err }
	for _, ev := range in {
		sh.push(ev)
	}
	sh.finish()
	if failErr != nil {
		return out, consistency.Metrics{}, failErr
	}
	return out, sh.metrics()[0], nil
}
