package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/leakcheck"
	"repro/internal/operators"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/workload"
)

// The sharded-equivalence property: for every key-partitionable operator,
// consistency level and delivery disorder, running N shards behind the
// deterministic merge produces byte-identical output — and identical
// combined metrics — to the single-shard monitor, for every shard count.
// Together with internal/consistency's frozen-reference property tests this
// proves the sharded runtime is a pure performance change.

func shardRandSource(rng *rand.Rand, n int) stream.Stream {
	s := make(stream.Stream, 0, n)
	at := temporal.Time(0)
	for i := 0; i < n; i++ {
		at = at.Add(temporal.Duration(rng.Intn(7)))
		length := temporal.Duration(rng.Intn(40) + 1)
		ve := at.Add(length)
		if rng.Intn(8) == 0 {
			ve = temporal.Infinity
		}
		s = append(s, event.NewInsert(event.ID(i+1), "E", at, ve, event.Payload{
			"g": int64(rng.Intn(6)),
			"x": float64(rng.Intn(100)) / 4,
		}))
	}
	return s.SortBySync()
}

type shardOpCase struct {
	name  string
	mk    func() operators.Op
	route func(shards int) func(event.Event) int
}

func shardOpCases() []shardOpCase {
	byAttr := func(attr string) func(int) func(event.Event) int {
		return func(n int) func(event.Event) int { return RouteByAttr(attr, n) }
	}
	byID := func(n int) func(event.Event) int { return RouteByID(n) }
	return []shardOpCase{
		{"count-by-g", func() operators.Op { return operators.NewAggregate(operators.Count, "", "g") }, byAttr("g")},
		{"avg-by-g", func() operators.Op { return operators.NewAggregate(operators.Avg, "x", "g") }, byAttr("g")},
		{"select", func() operators.Op {
			return operators.NewSelect(func(p event.Payload) bool {
				v, _ := event.Num(p["x"])
				return v >= 5
			})
		}, byID},
		{"window", func() operators.Op { return operators.Window(15) }, byID},
	}
}

// runPlainOp is the single-shard reference: one monitor, pushed in arrival
// order, optionally switching levels mid-stream.
func runPlainOp(mk func() operators.Op, spec consistency.Spec, in stream.Stream,
	switchAt int, switchTo consistency.Spec) (stream.Stream, consistency.Metrics) {
	m := consistency.NewMonitor(mk(), spec)
	var out stream.Stream
	for i, e := range in {
		out = append(out, m.Push(0, e)...)
		if switchAt > 0 && i+1 == switchAt {
			out = append(out, m.SetSpec(switchTo)...)
		}
	}
	out = append(out, m.Finish()...)
	return out, m.Metrics()
}

// shardBurstGrid is the router burst-size sweep the differential grids run
// under: single-item handoff, a bound that straddles run boundaries
// unevenly, the default, and unbounded (flush only on punctuation and
// control items). Output must be byte-identical across all of them.
var shardBurstGrid = []int{1, 7, DefaultBurst, -1}

// runShardedOpSwitch drives the sharded runtime over the same sequence.
func runShardedOpSwitch(mk func() operators.Op, spec consistency.Spec, n, burst int,
	route func(event.Event) int, in stream.Stream,
	switchAt int, switchTo consistency.Spec) (stream.Stream, consistency.Metrics) {
	var out stream.Stream
	sh, err := newSharded(n, burst,
		func(int) ([]operators.Op, error) { return []operators.Op{mk()}, nil },
		spec, route,
		func(items []event.Event) { out = append(out, items...) })
	if err != nil {
		panic(err)
	}
	for i, e := range in {
		sh.push(e)
		if switchAt > 0 && i+1 == switchAt {
			sh.setSpec(switchTo)
		}
	}
	sh.finish()
	met := sh.metrics()[0]
	return out, met
}

func compareStreams(t *testing.T, label string, got, want stream.Stream) {
	t.Helper()
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: output[%d] differs\n got: %v\nwant: %v", label, i, got[i], want[i])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%s: output length %d, want %d (first %d identical)", label, len(got), len(want), n)
	}
}

func TestShardedOpEquivalence(t *testing.T) {
	cases := shardOpCases()
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(4242 + int64(trial)))
		src := shardRandSource(rng, 150+rng.Intn(150))
		if trial%2 == 1 {
			// Optimistic insert-then-retract rewrites exercise retraction
			// routing (the retract carries the key and follows its insert).
			src = workload.Corrections(rng.Int63(), 0.3, src)
		}
		var cfg delivery.Config
		switch trial % 3 {
		case 0:
			cfg = delivery.Ordered(temporal.Duration(rng.Intn(40) + 5))
		case 1:
			cfg = delivery.Disordered(rng.Int63(), temporal.Duration(rng.Intn(100)+20),
				temporal.Duration(rng.Intn(80)+10), 0.1+rng.Float64()*0.4)
		default:
			cfg = delivery.Config{Seed: rng.Int63(),
				Latency:       delivery.Latency{Base: 1, Jitter: 25, StragglerProb: 0.3, StragglerDelay: 60},
				CTIPeriod:     temporal.Duration(rng.Intn(120) + 10),
				DuplicateProb: 0.1}
		}
		delivered := delivery.Deliver(src, cfg)
		levels := []consistency.Spec{
			consistency.Strong(),
			consistency.Middle(),
			consistency.Weak(0),
			consistency.Weak(temporal.Duration(rng.Intn(60) + 1)),
			consistency.Level(temporal.Duration(rng.Intn(30)), consistency.Unbounded),
			consistency.Level(temporal.Duration(rng.Intn(20)), temporal.Duration(rng.Intn(80)+20)),
		}
		for ci, tc := range cases {
			for li, spec := range levels {
				want, wantMet := runPlainOp(tc.mk, spec, delivered, 0, consistency.Spec{})
				for ni, n := range []int{1, 2, 4, 8} {
					// Every (trial, op, level, shards) cell runs under a
					// burst size from the grid, rotated so each size covers
					// every op, level and shard count across the suite; the
					// dedicated sweeps below additionally run the full
					// cross-product on one op.
					burst := shardBurstGrid[(trial+ci+li+ni)%len(shardBurstGrid)]
					label := fmt.Sprintf("trial %d op %s level %s shards %d burst %d", trial, tc.name, spec.Name(), n, burst)
					got, gotMet := runShardedOpSwitch(tc.mk, spec, n, burst, tc.route(n), delivered, 0, consistency.Spec{})
					compareStreams(t, label, got, want)
					if gotMet != wantMet {
						t.Fatalf("%s: metrics diverge\n got: %+v\nwant: %+v", label, gotMet, wantMet)
					}
				}
			}
		}
	}
}

// Mid-stream level switching must commute with sharding: the switch takes
// effect at the same input position on every shard.
func TestShardedSetSpecMidStream(t *testing.T) {
	levels := []consistency.Spec{
		consistency.Strong(), consistency.Middle(),
		consistency.Weak(25), consistency.Level(10, 50),
	}
	mk := func() operators.Op { return operators.NewAggregate(operators.Count, "", "g") }
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(777 + int64(trial)))
		src := shardRandSource(rng, 120)
		delivered := delivery.Deliver(src,
			delivery.Disordered(rng.Int63(), 40, 50, 0.3))
		from := levels[rng.Intn(len(levels))]
		to := levels[rng.Intn(len(levels))]
		at := len(delivered)/3 + rng.Intn(len(delivered)/3)
		n := 1 + rng.Intn(8)
		want, wantMet := runPlainOp(mk, from, delivered, at, to)
		for _, burst := range shardBurstGrid {
			label := fmt.Sprintf("switch trial %d %s->%s@%d shards %d burst %d", trial, from.Name(), to.Name(), at, n, burst)
			got, gotMet := runShardedOpSwitch(mk, from, n, burst, RouteByAttr("g", n), delivered, at, to)
			compareStreams(t, label, got, want)
			if gotMet != wantMet {
				t.Fatalf("%s: metrics diverge\n got: %+v\nwant: %+v", label, gotMet, wantMet)
			}
		}
	}
}

// The full burst-size cross-product on one op: shards × burst × disorder,
// with Corrections in the stream so retract routing crosses run
// boundaries. Proves the router's flush boundaries are semantics-free.
func TestShardedBurstGridEquivalence(t *testing.T) {
	mk := func() operators.Op { return operators.NewAggregate(operators.Count, "", "g") }
	for trial := 0; trial < 2; trial++ {
		rng := rand.New(rand.NewSource(606 + int64(trial)))
		src := workload.Corrections(rng.Int63(), 0.3, shardRandSource(rng, 200))
		var cfg delivery.Config
		if trial == 0 {
			cfg = delivery.Ordered(temporal.Duration(rng.Intn(40) + 5))
		} else {
			cfg = delivery.Disordered(rng.Int63(), 80, 40, 0.3)
		}
		delivered := delivery.Deliver(src, cfg)
		want, wantMet := runPlainOp(mk, consistency.Middle(), delivered, 0, consistency.Spec{})
		for _, n := range []int{1, 2, 4, 8} {
			for _, burst := range shardBurstGrid {
				label := fmt.Sprintf("burst grid trial %d shards %d burst %d", trial, n, burst)
				got, gotMet := runShardedOpSwitch(mk, consistency.Middle(), n, burst, RouteByAttr("g", n), delivered, 0, consistency.Spec{})
				compareStreams(t, label, got, want)
				if gotMet != wantMet {
					t.Fatalf("%s: metrics diverge\n got: %+v\nwant: %+v", label, gotMet, wantMet)
				}
			}
		}
	}
}

// Compiled plans (pattern head, stateless tail) through the engine: sharded
// queries must reproduce the single-shard Results stream exactly, and the
// partitioned metric counters must sum to the single-shard values.
func TestShardedPlanEquivalence(t *testing.T) {
	defer leakcheck.Check(t)()
	queries := []struct {
		name string
		src  string
	}{
		{"unless", monitorQuery},
		{"sequence-output", `EVENT Pairs WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 12 hours)
WHERE CorrelationKey(Machine_Id, EQUAL) SC(each, consume)
OUTPUT x.Machine_Id AS machine`},
	}
	events, _ := workload.MachineEvents(workload.DefaultMachines())
	for _, qc := range queries {
		for _, spec := range []consistency.Spec{consistency.Strong(), consistency.Middle()} {
			for _, disordered := range []bool{false, true} {
				var delivered stream.Stream
				if disordered {
					delivered = delivery.Deliver(events,
						delivery.Disordered(9, 10*temporal.Minute, 2*temporal.Minute, 0.3))
				} else {
					delivered = delivery.Deliver(events, delivery.Ordered(10*temporal.Minute))
				}
				ref := run(t, qc.src, delivered, plan.WithSpec(spec))
				if ref.Shards() != 1 {
					t.Fatalf("reference unexpectedly sharded")
				}
				want := ref.Results()
				wantMet := ref.Metrics()
				for _, n := range []int{2, 4, 8} {
					label := fmt.Sprintf("%s %s disordered=%v shards=%d", qc.name, spec.Name(), disordered, n)
					q := run(t, qc.src, delivered, plan.WithSpec(spec), plan.WithShards(n))
					if q.Shards() != n {
						t.Fatalf("%s: plan did not shard: %s", label, q.Plan().Explain())
					}
					compareStreams(t, label, q.Results(), want)
					gotMet := q.Metrics()
					if len(gotMet) != len(wantMet) {
						t.Fatalf("%s: %d metric stages, want %d", label, len(gotMet), len(wantMet))
					}
					for j := range gotMet {
						g, w := gotMet[j], wantMet[j]
						if g.InputEvents != w.InputEvents || g.InputCTIs != w.InputCTIs ||
							g.OutputInserts != w.OutputInserts || g.OutputRetractions != w.OutputRetractions ||
							g.OutputCTIs != w.OutputCTIs || g.Compensations != w.Compensations ||
							g.Dropped != w.Dropped || g.Violations != w.Violations {
							t.Fatalf("%s: stage %d counters diverge\n got: %+v\nwant: %+v", label, j, g, w)
						}
					}
				}
			}
		}
	}
}

// RunPipelined on a sharded query streams through the shard pipeline and
// must reproduce the single-shard result exactly, for random shard counts.
func TestShardedRunPipelined(t *testing.T) {
	defer leakcheck.Check(t)()
	events, _ := workload.MachineEvents(workload.DefaultMachines())
	delivered := delivery.Deliver(events,
		delivery.Disordered(3, 10*temporal.Minute, 2*temporal.Minute, 0.2))
	ref := run(t, monitorQuery, delivered)
	want := ref.Results()
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 4; trial++ {
		n := 1 + rng.Intn(8)
		e := New()
		q, err := e.RegisterText(monitorQuery, plan.WithShards(n))
		if err != nil {
			t.Fatal(err)
		}
		got := q.RunPipelined(delivered, 16)
		compareStreams(t, fmt.Sprintf("pipelined shards=%d", n), got, want)
	}
}

// Non-partitionable plans must fall back to one shard, with the verdict
// visible in Explain.
func TestShardedPartitionFallback(t *testing.T) {
	cases := []struct {
		src string
		why string
	}{
		// No correlation key: state does not decompose.
		{`EVENT Seq WHEN SEQUENCE(A a, B b, 10)`, "no CorrelationKey"},
		// first-selection couples keys.
		{`EVENT Seq WHEN SEQUENCE(A a, B b, 10)
WHERE CorrelationKey(k, EQUAL) SC(first, consume)`, "first/last"},
	}
	for _, tc := range cases {
		e := New()
		q, err := e.RegisterText(tc.src, plan.WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		if q.Shards() != 1 {
			t.Errorf("%q: sharded despite %s", tc.src, tc.why)
		}
		if q.Plan().Part.OK() {
			t.Errorf("%q: partition analysis passed, want refusal (%s)", tc.src, tc.why)
		}
	}
	// And the partitionable case does shard.
	e := New(WithShards(4))
	q, err := e.RegisterText(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	if q.Shards() != 4 {
		t.Errorf("partitionable query not sharded: %s", q.Plan().Explain())
	}
}

// Subscribers on sharded queries observe the merged deterministic order.
func TestShardedSubscribe(t *testing.T) {
	defer leakcheck.Check(t)()
	events, expected := workload.MachineEvents(workload.DefaultMachines())
	delivered := delivery.Deliver(events, delivery.Ordered(10*temporal.Minute))
	e := New()
	q, err := e.RegisterText(monitorQuery, plan.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	var seen []event.Event
	q.Subscribe(func(ev event.Event) { seen = append(seen, ev) })
	e.Run(delivered)
	got := 0
	for _, ev := range seen {
		if !ev.IsCTI() && ev.Kind == event.Insert {
			got++
		}
	}
	if got != expected {
		t.Errorf("subscriber alerts = %d, want %d", got, expected)
	}
	compareStreams(t, "subscribe vs results", stream.Stream(seen), q.Results())
}

// The compile cache must hand out independent operator instances per
// registration: two queries from one source never share state.
func TestCompileCacheIndependentInstances(t *testing.T) {
	p1, err := plan.Compile(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := plan.Compile(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Stages {
		if p1.Stages[i] == p2.Stages[i] {
			t.Fatalf("stage %d shared between compilations", i)
		}
	}
	fp, err := p1.Fresh()
	if err != nil {
		t.Fatal(err)
	}
	if fp.Stages[0] == p1.Stages[0] {
		t.Fatal("Fresh returned the original stage instance")
	}
}

// Finish closes a query on every execution mode: later pushes are dropped
// on single-shard and sharded queries alike.
func TestPushAfterFinishUniform(t *testing.T) {
	defer leakcheck.Check(t)()
	events, _ := workload.MachineEvents(workload.DefaultMachines())
	delivered := delivery.Deliver(events, delivery.Ordered(10*temporal.Minute))
	half := len(delivered) / 2
	for _, n := range []int{1, 4} {
		e := New()
		q, err := e.RegisterText(monitorQuery, plan.WithShards(n))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range delivered[:half] {
			q.Push(ev)
		}
		q.Finish()
		got := len(q.Results())
		for _, ev := range delivered[half:] {
			q.Push(ev)
		}
		q.Finish()
		if after := len(q.Results()); after != got {
			t.Errorf("shards=%d: %d items appeared after Finish (closed query must drop pushes)", n, after-got)
		}
	}
}

// Concurrent RegisterText traffic (same and different sources) while events
// are in flight: exercises the compile cache and the Register/Push snapshot
// under the race detector.
func TestConcurrentRegisterTextAndPush(t *testing.T) {
	defer leakcheck.Check(t)()
	eng := New()
	if _, err := eng.RegisterText(`EVENT Out WHEN ANY(E e)`); err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	for g := 0; g < 4; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 25; i++ {
				src := `EVENT Out WHEN ANY(E e)`
				if i%2 == 0 {
					src = fmt.Sprintf(`EVENT Out%d WHEN ANY(E e)`, g)
				}
				if _, e := eng.RegisterText(src); e != nil {
					err = e
					break
				}
			}
			done <- err
		}(g)
	}
	for i := 0; i < 3000; i++ {
		ev := event.NewInsert(event.ID(i+1), "E", temporal.Time(i), temporal.Time(i+5), nil)
		ev.C = temporal.From(temporal.Time(i))
		eng.Push(ev)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	eng.Finish()
	if qs := eng.Queries(); len(qs) != 101 {
		t.Fatalf("registered %d queries, want 101", len(qs))
	}
}
