package engine

import (
	"runtime"

	"repro/internal/plan"
)

// Sharding is only a win when each event's share of operator work
// outweighs its share of runtime overhead: routing, an advance probe on
// every sibling shard, order-tag bookkeeping, and the merge. With batched
// handoff the channel round-trip amortizes across a run, but the per-event
// probe work scales with the shard count — so the heuristic treats the tax
// as per shard: a plan only earns its n-th shard if its per-event cost
// can amortize n × shardTaxNs.
const shardTaxNs = 500

// maxAutoShards caps the heuristic: past this width the per-event probe
// broadcast outgrows the marginal parallel win on every workload measured.
const maxAutoShards = 8

// autoShards resolves plan.AutoShards into a concrete shard count: the
// number of cores actually available (GOMAXPROCS, clamped by NumCPU),
// bounded by how many shards the plan's estimated per-event cost
// (plan.CostNs, from the compile cache's analysis) can amortize. Plans
// that fail partitionability analysis, cheap plans, and single-core
// processes stay single-shard.
func autoShards(p *plan.Plan) int {
	if !p.Part.OK() {
		return 1
	}
	cores := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < cores {
		cores = c
	}
	if cores < 2 {
		return 1
	}
	n := p.CostNs() / shardTaxNs
	if n < 2 {
		return 1
	}
	if n > cores {
		n = cores
	}
	if n > maxAutoShards {
		n = maxAutoShards
	}
	return n
}
