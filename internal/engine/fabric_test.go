// Standing-query fabric differentials: a fleet of shared-plan queries must
// be byte-identical — outputs, order tags, metrics — to the same queries
// registered on independent engines, with routing on and off, across spec
// switches, stragglers, and mid-stream unregistration. Plus the fabric's
// structural guarantees: chain dedup, routing-index buckets, zero-alloc
// routing, last-reference teardown, and durable unregistration. Runs under
// -race in the dedicated CI fault-injection job.
package engine

import (
	"bytes"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/event"
	"repro/internal/leakcheck"
	"repro/internal/plan"
	"repro/internal/wal"
)

// keyedTemplate is the CIDR07 query narrowed to one machine via a template
// parameter: binding m selects the routing key.
const keyedTemplate = `
EVENT MissedRestart
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
            RESTART AS z, 5 minutes)
WHERE CorrelationKey(Machine_Id, EQUAL) AND [Machine_Id Equal $m]
SC(each, consume)
`

func bindM(id string) plan.Option {
	return plan.WithBindings(map[string]event.Value{"m": id})
}

// TestFabricDifferentialFleet is the fabric's byte-identity witness: a
// fleet engine hosting shared trios, template instances, and an unrelated
// plain query is driven against one independent engine per query over the
// same disordered input, with a mid-stream consistency switch on the shared
// trio, a mid-stream unregistration of one template sibling, and a late
// (warm) attachment. Every endpoint's results, order tags, and metrics
// must match its independent twin exactly — routing off and on.
func TestFabricDifferentialFleet(t *testing.T) {
	defer leakcheck.Check(t)()
	in := durabilityWorkload()
	specs := []struct {
		src  string
		opts []plan.Option
	}{
		{monitorQuery, nil},                           // 0 ┐ shared trio:
		{monitorQuery, nil},                           // 1 │ one chain,
		{monitorQuery, nil},                           // 2 ┘ three endpoints
		{keyedTemplate, []plan.Option{bindM("m000")}}, // 3 ┐ template pair,
		{keyedTemplate, []plan.Option{bindM("m000")}}, // 4 ┘ one chain
		{keyedTemplate, []plan.Option{bindM("m001")}}, // 5: own chain
		{`EVENT AnyInstall WHEN ANY(INSTALL i)`, nil}, // 6: plain
	}
	specSwitchAt := len(in) / 3
	unregisterAt := 2 * len(in) / 3

	for _, routing := range []bool{false, true} {
		label := map[bool]string{false: "unrouted", true: "routed"}[routing]
		var eopts []Option
		if routing {
			eopts = append(eopts, WithRouting())
		}

		fleet := New(eopts...)
		var fq []*Query
		for _, s := range specs {
			q, err := fleet.RegisterText(s.src, append(s.opts, plan.WithSharing())...)
			if err != nil {
				t.Fatal(err)
			}
			fq = append(fq, q)
		}
		if fq[0].ch != fq[1].ch || fq[1].ch != fq[2].ch {
			t.Fatal("shared trio did not dedup onto one chain")
		}
		if fq[3].ch != fq[4].ch || fq[3].ch == fq[5].ch {
			t.Fatal("template instances grouped wrong")
		}

		var ind []*Engine
		var iq []*Query
		for _, s := range specs {
			e := New(eopts...)
			q, err := e.RegisterText(s.src, append(s.opts, plan.WithSharing())...)
			if err != nil {
				t.Fatal(err)
			}
			ind = append(ind, e)
			iq = append(iq, q)
		}

		var late *Query
		for i, ev := range in {
			if i == specSwitchAt {
				// The switch addresses the shared chain, so it applies to the
				// whole trio; mirror it on all three independents.
				fq[0].SetSpec(consistency.Strong())
				for _, j := range []int{0, 1, 2} {
					iq[j].SetSpec(consistency.Strong())
				}
				// Late warm attachment to the trio's chain.
				var err error
				late, err = fleet.RegisterText(monitorQuery, plan.WithSharing())
				if err != nil {
					t.Fatal(err)
				}
				if late.ch != fq[0].ch {
					t.Fatal("late registration did not join the warm chain")
				}
			}
			if i == unregisterAt {
				fq[4].Unregister()
				fq[4].Unregister() // idempotent
			}
			fleet.Push(ev)
			for j, e := range ind {
				if j == 4 && i >= unregisterAt {
					continue // frozen twin: the unregistered endpoint's prefix
				}
				e.Push(ev)
			}
		}
		fleet.Finish()
		for j, e := range ind {
			if j != 4 {
				e.Finish()
			}
		}

		for j := range specs {
			compareStreams(t, label+" results", fq[j].Results(), iq[j].Results())
			if !reflect.DeepEqual(fq[j].Tags(), iq[j].Tags()) {
				t.Errorf("%s: query %d order tags diverge", label, j)
			}
			// The unregistered endpoint's results are frozen at its prefix,
			// but Metrics reads the (still running) shared chain — skip it.
			if j != 4 && !reflect.DeepEqual(fq[j].Metrics(), iq[j].Metrics()) {
				t.Errorf("%s: query %d metrics diverge", label, j)
			}
		}
		// The late endpoint saw exactly the suffix of its sibling's output,
		// tagged with the sibling's positions.
		full, fullTags := fq[0].Results(), fq[0].Tags()
		off := len(full) - len(late.Results())
		compareStreams(t, label+" late attach", late.Results(), full[off:])
		if lt := late.Tags(); len(lt) > 0 && lt[0] != fullTags[off] {
			t.Errorf("%s: late endpoint first tag %d, want %d", label, lt[0], fullTags[off])
		}
		if got, want := len(fleet.Queries()), len(specs); got != want {
			t.Errorf("%s: %d live queries after unregister, want %d", label, got, want)
		}
	}
}

// TestFabricRoutingIndexBuckets pins the routing index's delivery sets:
// keyed events reach only their group (plus type-plain and always-deliver
// chains), wild and retracted events reach the whole family, unknown types
// reach only the always bucket.
func TestFabricRoutingIndexBuckets(t *testing.T) {
	e := New(WithRouting())
	reg := func(src string, opts ...plan.Option) *Query {
		t.Helper()
		q, err := e.RegisterText(src, append(opts, plan.WithSharing())...)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	plain := reg(`EVENT AnyInstall WHEN ANY(INSTALL i)`)
	k0 := reg(keyedTemplate, bindM("m000"))
	k1 := reg(keyedTemplate, bindM("m001"))

	route := func(ev event.Event) map[*chain]bool {
		got := map[*chain]bool{}
		for _, ch := range e.fabric.route(ev, nil) {
			got[ch] = true
		}
		return got
	}
	install := func(id int, payload event.Payload) event.Event {
		return event.NewInsert(event.ID(id), "INSTALL", 0, 10, payload)
	}

	set := route(install(1, event.Payload{"Machine_Id": "m000"}))
	if !set[plain.ch] || !set[k0.ch] || set[k1.ch] {
		t.Errorf("keyed INSTALL m000 routed to wrong set: %v", set)
	}
	set = route(install(2, event.Payload{"Machine_Id": "m999"}))
	if !set[plain.ch] || set[k0.ch] || set[k1.ch] {
		t.Errorf("unmatched key routed to wrong set: %v", set)
	}
	set = route(install(3, event.Payload{"other": 1}))
	if !set[plain.ch] || !set[k0.ch] || !set[k1.ch] {
		t.Errorf("wild (missing attr) INSTALL must reach the whole family: %v", set)
	}
	set = route(event.NewRetract(1, "INSTALL", 0, 0, nil))
	if !set[plain.ch] || !set[k0.ch] || !set[k1.ch] {
		t.Errorf("retraction must route conservatively: %v", set)
	}
	set = route(event.NewInsert(4, "UNRELATED", 0, 10, nil))
	if len(set) != 0 {
		t.Errorf("unknown type routed to %d chains, want 0", len(set))
	}

	// A hand-built plan has no input alphabet: always delivered.
	p, err := plan.Compile(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	bare := e.Register(&plan.Plan{Name: "bare", Stages: p.Stages, Spec: p.Spec})
	set = route(event.NewInsert(5, "UNRELATED", 0, 10, nil))
	if !set[bare.ch] || len(set) != 1 {
		t.Errorf("always bucket wrong: %v", set)
	}

	// Unregistering prunes every bucket.
	k0.Unregister()
	bare.Unregister()
	set = route(install(6, event.Payload{"Machine_Id": "m000"}))
	if set[k0.ch] || set[bare.ch] {
		t.Errorf("unregistered chains still routed: %v", set)
	}
}

// TestFabricRoutingAllocs pins the per-event routing step at zero heap
// allocations when the match set fits the caller's buffer.
func TestFabricRoutingAllocs(t *testing.T) {
	e := New(WithRouting())
	for _, id := range []string{"m000", "m001", "m002"} {
		if _, err := e.RegisterText(keyedTemplate, bindM(id), plan.WithSharing()); err != nil {
			t.Fatal(err)
		}
	}
	ev := event.NewInsert(1, "INSTALL", 0, 10, event.Payload{"Machine_Id": "m001"})
	buf := make([]*chain, 0, routeBufCap)
	var n int
	allocs := testing.AllocsPerRun(200, func() {
		n = len(e.fabric.route(ev, buf[:0]))
	})
	if n != 1 {
		t.Fatalf("routed to %d chains, want 1", n)
	}
	if allocs != 0 {
		t.Errorf("routing step allocates %.1f per event, want 0", allocs)
	}
}

// TestFabricTemplateInstanceIdentity pins the sharing identity: same
// bindings share a chain, different bindings or different configuration do
// not, and opting out of sharing always builds a private chain.
func TestFabricTemplateInstanceIdentity(t *testing.T) {
	e := New()
	reg := func(opts ...plan.Option) *Query {
		t.Helper()
		q, err := e.RegisterText(keyedTemplate, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	a := reg(bindM("m000"), plan.WithSharing())
	b := reg(bindM("m000"), plan.WithSharing())
	c := reg(bindM("m001"), plan.WithSharing())
	d := reg(bindM("m000"), plan.WithSharing(), plan.WithSpec(consistency.Strong()))
	private := reg(bindM("m000"))
	if a.ch != b.ch {
		t.Error("identical bindings did not share")
	}
	if a.ch == c.ch {
		t.Error("different bindings shared a chain")
	}
	if a.ch == d.ch {
		t.Error("different spec shared a chain")
	}
	if a.ch == private.ch {
		t.Error("unshared registration joined a chain")
	}
	if !a.Shared() || private.Shared() {
		t.Error("Shared() misreports")
	}
	if _, err := e.RegisterText(keyedTemplate, plan.WithSharing()); err == nil {
		t.Error("unbound template parameter accepted")
	}
}

// TestFabricUnregisterTeardown: endpoints detach independently; the last
// reference tears the shared sharded chain down and every goroutine exits
// (leakcheck). The surviving sibling's output is unaffected by its peer's
// departure.
func TestFabricUnregisterTeardown(t *testing.T) {
	defer leakcheck.Check(t)()
	in := durabilityWorkload()
	e := New()
	q1, err := e.RegisterText(monitorQuery, plan.WithShards(4), plan.WithSharing())
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.RegisterText(monitorQuery, plan.WithShards(4), plan.WithSharing())
	if err != nil {
		t.Fatal(err)
	}
	if q1.ch != q2.ch {
		t.Fatal("sharded twins did not share")
	}
	half := len(in) / 2
	for _, ev := range in[:half] {
		e.Push(ev)
	}
	q1.drainShards()
	frozen := len(q1.Results())
	q1.Unregister()
	for _, ev := range in[half:] {
		e.Push(ev)
	}
	e.Finish()
	if got := len(q1.Results()); got != frozen {
		t.Errorf("unregistered endpoint kept accumulating: %d -> %d", frozen, got)
	}
	oracle := run(t, monitorQuery, in)
	compareStreams(t, "surviving sibling", q2.Results(), oracle.Results())
	q2.Unregister() // last reference: chain torn down, workers exit
	if len(e.Queries()) != 0 {
		t.Errorf("%d queries remain after full unregistration", len(e.Queries()))
	}
	e.Push(in[0]) // dropped, not delivered to anything
}

// TestFabricUnregisterDurableRoundTrip: registrations, template bindings,
// and unregistrations replay from the WAL — the recovered engine has the
// same live queries with byte-identical histories, and a snapshot cut
// after the unregistration restores the same state against a fresh log.
func TestFabricUnregisterDurableRoundTrip(t *testing.T) {
	defer leakcheck.Check(t)()
	dir := t.TempDir()
	in := durabilityWorkload()
	half := len(in) / 2

	log1, err := wal.Open(filepath.Join(dir, "fabric.wal"), wal.SyncEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Restore(nil, log1)
	if err != nil {
		t.Fatal(err)
	}
	qa, err := e1.RegisterText(monitorQuery, plan.WithSharing())
	if err != nil {
		t.Fatal(err)
	}
	qb, err := e1.RegisterText(monitorQuery, plan.WithSharing())
	if err != nil {
		t.Fatal(err)
	}
	qt, err := e1.RegisterText(keyedTemplate, bindM("m000"), plan.WithSharing())
	if err != nil {
		t.Fatal(err)
	}
	if qa.ch != qb.ch {
		t.Fatal("durable twins did not share")
	}
	for _, ev := range in[:half] {
		e1.Push(ev)
	}
	qb.Unregister()
	for _, ev := range in[half:] {
		e1.Push(ev)
	}
	wantA, wantB, wantT := qa.Results(), qb.Results(), qt.Results()
	// Crash: no Finish, no Close — the log is all that survives.

	log2, err := wal.Open(filepath.Join(dir, "fabric.wal"))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(nil, log2)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	live := e2.Queries()
	if len(live) != 2 {
		t.Fatalf("recovered %d live queries, want 2 (one was unregistered)", len(live))
	}
	compareStreams(t, "recovered shared survivor", live[0].Results(), wantA)
	compareStreams(t, "recovered template", live[1].Results(), wantT)
	// The tombstoned registration replayed too: frozen at the unregister.
	compareStreams(t, "recovered tombstone", e2.snapshot()[1].Results(), wantB)
	if live[0].ch != e2.snapshot()[1].ch {
		t.Error("recovered survivor and tombstone no longer share lineage")
	}

	var snap bytes.Buffer
	if err := e2.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	log3, err := wal.Open(filepath.Join(dir, "rotated.wal"))
	if err != nil {
		t.Fatal(err)
	}
	e3, err := Restore(&snap, log3)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if got := len(e3.Queries()); got != 2 {
		t.Fatalf("snapshot restore: %d live queries, want 2", got)
	}
	compareStreams(t, "rotated survivor", e3.Queries()[0].Results(), wantA)
}

// TestFabricConcurrentSubscribeUnregister is the race smoke test: endpoints
// join, subscribe, and leave a shared chain while pushes are in flight.
// Success is the absence of data races (-race), deadlocks, and leaks.
func TestFabricConcurrentSubscribeUnregister(t *testing.T) {
	defer leakcheck.Check(t)()
	in := durabilityWorkload()
	e := New(WithRouting())
	anchor, err := e.RegisterText(monitorQuery, plan.WithSharing())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range in {
				e.Push(ev)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q, err := e.RegisterText(monitorQuery, plan.WithSharing())
				if err != nil {
					t.Error(err)
					return
				}
				q.Subscribe(func(event.Event) {})
				_ = q.Results()
				q.Unregister()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if anchor.Err() != nil {
		t.Fatal(anchor.Err())
	}
	e.Finish()
	if len(anchor.Results()) == 0 {
		t.Fatal("anchor query emitted nothing")
	}
}

// TestFabricSharingThroughput: a fleet of identical standing queries on
// the fabric must outrun the same fleet on private chains by a wide margin
// (the full 10× criterion at 10k queries is gated in cedrbench; this is
// the in-tree sanity floor at a size cheap enough for the test suite).
func TestFabricSharingThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	const fleet = 1500
	in := durabilityWorkload()

	elapse := func(opts ...plan.Option) time.Duration {
		e := New()
		for i := 0; i < fleet; i++ {
			if _, err := e.RegisterText(monitorQuery, opts...); err != nil {
				t.Fatal(err)
			}
		}
		start := time.Now()
		e.Run(in)
		return time.Since(start)
	}
	shared := elapse(plan.WithSharing())
	private := elapse()
	t.Logf("fleet=%d events=%d shared=%v private=%v speedup=%.1fx",
		fleet, len(in), shared, private, float64(private)/float64(shared))
	if private < 4*shared {
		t.Errorf("sharing speedup only %.1fx (shared %v, private %v), want ≥4x",
			float64(private)/float64(shared), shared, private)
	}
}
