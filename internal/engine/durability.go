// Durability: the engine-side half of the crash-safety story.
//
// CEDR's runtime state is a deterministic function of the applied input
// sequence — events, punctuation, registrations, and spec switches (the
// consistency monitor and matcher tree are pinned byte-exact by the
// differential suites). The durability layer therefore persists exactly
// that sequence: every applied record goes to the write-ahead log
// (internal/wal) before it is processed, and recovery is deterministic
// replay — a fresh engine re-applies the recovered records and arrives at
// the same operator state, the same output history (inserts, retractions,
// punctuation), byte for byte.
//
// A snapshot is the same idea made portable: the magic header, the
// watermark (sequence of the last applied record), and the engine's
// journal of applied records, re-framed with the WAL's own record
// encoding. A snapshot is self-contained — restoring from it does not
// need the log file it was cut from, which is what permits WAL rotation:
// snapshot, then point the engine at a fresh empty log.
//
// Failure model: fail-stop. Once a WAL append or fsync fails, the engine
// refuses further input (input that cannot be made durable is not
// processed) and Err reports the failure. Batched fsync means a crash may
// lose the records since the last successful sync; recovery then replays
// the shorter durable prefix — still byte-identical to a run over exactly
// that prefix.
package engine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/plan"
	"repro/internal/wal"
)

// snapMagic is the snapshot file header; the version byte changes with the
// record encoding.
const snapMagic = "CEDRSNP\x01"

// logAppend appends one record to the write-ahead log and the in-memory
// journal, assigning the next engine sequence number. The caller holds
// e.pushMu (so log order is apply order). It reports whether the record is
// durable; on a WAL failure the engine fails stop and the caller must drop
// the input rather than process it.
func (e *Engine) logAppend(rec wal.Record) bool {
	if e.walErr != nil || e.closed {
		return false
	}
	rec.Seq = e.seq + 1
	if _, err := e.log.Append(rec); err != nil {
		e.walErr = fmt.Errorf("engine: wal append: %w", err)
		return false
	}
	e.seq = rec.Seq
	e.journal = append(e.journal, rec)
	return true
}

// applyRecord re-applies one logged record during replay: the same code
// paths as live operation, minus the logging (e.log is still nil, and
// e.replaying suppresses the Register branch).
func (e *Engine) applyRecord(rec wal.Record) error {
	switch rec.Kind {
	case wal.KindEvent, wal.KindCTI:
		e.fanout(rec.Ev)
	case wal.KindRegister:
		d := plan.Durable{
			Src:              rec.Src,
			HasSpec:          rec.Opts.HasSpec,
			Spec:             rec.Opts.Spec,
			Shards:           rec.Opts.Shards,
			NoSpecialization: rec.Opts.NoSpecialization,
			NoPushdown:       rec.Opts.NoPushdown,
			Share:            rec.Opts.Share,
			Bindings:         rec.Opts.Bindings,
		}
		p, err := plan.Compile(d.Src, d.Options()...)
		if err != nil {
			return fmt.Errorf("engine: restore: recompile %q: %w", d.Src, err)
		}
		e.Register(p)
	case wal.KindSpec:
		qs := e.snapshot()
		if rec.Query < 0 || rec.Query >= len(qs) {
			return fmt.Errorf("engine: restore: spec switch for unknown query %d", rec.Query)
		}
		qs[rec.Query].setSpecApply(rec.Spec)
	case wal.KindUnregister:
		qs := e.snapshot()
		if rec.Query < 0 || rec.Query >= len(qs) {
			return fmt.Errorf("engine: restore: unregistration of unknown query %d", rec.Query)
		}
		qs[rec.Query].unregisterApply()
	case wal.KindFinish:
		e.mu.Lock()
		e.finished = true
		e.mu.Unlock()
		for _, ch := range e.chainsSnapshot() {
			ch.finish()
		}
	default:
		return fmt.Errorf("engine: restore: unknown record kind %d", rec.Kind)
	}
	e.seq = rec.Seq
	e.journal = append(e.journal, rec)
	return nil
}

// Restore builds a durable engine by deterministic replay: the snapshot's
// records first (if snap is non-nil), then every recovered log record past
// the snapshot watermark, then the log is attached for appending. With a
// nil snapshot and a fresh (empty) log this is simply how a durable engine
// is born. The recovered engine's queries, operator state, result
// histories, and metrics are byte-identical to the original engine's at
// the moment the last durable record was applied.
//
// The log must be opened by the caller (wal.Open / wal.New — opening
// recovers and truncates any torn tail) and is owned by the engine from
// here on: Close closes it.
func Restore(snap io.Reader, log *wal.Log, opts ...Option) (*Engine, error) {
	if log == nil {
		return nil, fmt.Errorf("engine: restore requires an open write-ahead log")
	}
	e := New(opts...)
	e.replaying = true
	if snap != nil {
		if err := e.replaySnapshot(snap); err != nil {
			e.shutdownQueries()
			return nil, err
		}
	}
	for _, rec := range log.Recovered() {
		if rec.Seq <= e.seq {
			continue // already applied via the snapshot
		}
		if err := e.applyRecord(rec); err != nil {
			e.shutdownQueries()
			return nil, err
		}
	}
	// Sharded chains process asynchronously; drain them so the restored
	// engine's visible results reflect the entire replayed history before
	// the caller sees it.
	for _, ch := range e.chainsSnapshot() {
		ch.drain()
	}
	e.replaying = false
	e.log = log
	return e, nil
}

// replaySnapshot decodes and applies a snapshot. Unlike WAL recovery —
// where a torn tail is expected and silently truncated — a damaged
// snapshot is a hard error: it was written atomically, so corruption
// means the restore must not proceed on a silently shortened history.
func (e *Engine) replaySnapshot(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("engine: snapshot read: %w", err)
	}
	headLen := len(snapMagic) + 8
	if len(data) < headLen || string(data[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("engine: not a CEDR snapshot")
	}
	watermark := binary.LittleEndian.Uint64(data[len(snapMagic):headLen])
	body := data[headLen:]
	if len(body) < len(wal.Magic) {
		return fmt.Errorf("engine: snapshot truncated inside record header")
	}
	recs, good, err := wal.ReadAll(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if good != int64(len(body)) {
		return fmt.Errorf("engine: snapshot corrupt: %d of %d record bytes decode", good, len(body))
	}
	for _, rec := range recs {
		if err := e.applyRecord(rec); err != nil {
			return err
		}
	}
	if e.seq != watermark {
		return fmt.Errorf("engine: snapshot watermark %d does not match record tail %d", watermark, e.seq)
	}
	return nil
}

// Snapshot writes the engine's durable state to w: header, watermark, and
// the journal of applied records. It refuses while any registered query
// was built directly from operators (no source text to re-compile — the
// snapshot could not restore it) and after a WAL failure. The log is
// synced first, so everything the snapshot claims is also on disk in the
// log; afterwards the WAL may be rotated (Restore from this snapshot plus
// a fresh empty log).
//
// Callers must not Push concurrently with Snapshot (it holds the engine's
// durable-append lock, so a concurrent Push would block, not corrupt).
func (e *Engine) Snapshot(w io.Writer) error {
	e.pushMu.Lock()
	defer e.pushMu.Unlock()
	if e.log == nil {
		return fmt.Errorf("engine: snapshot requires a durable engine (engine.Restore)")
	}
	if e.walErr != nil {
		return e.walErr
	}
	e.mu.RLock()
	nonDur := append([]string(nil), e.nonDur...)
	e.mu.RUnlock()
	if len(nonDur) > 0 {
		return fmt.Errorf("engine: snapshot refused: queries %v were built directly from operators and cannot be restored", nonDur)
	}
	if err := e.log.Sync(); err != nil {
		e.walErr = fmt.Errorf("engine: wal sync: %w", err)
		return e.walErr
	}
	buf := make([]byte, 0, 64+64*len(e.journal))
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, e.seq)
	buf = append(buf, wal.Magic...)
	var err error
	for _, rec := range e.journal {
		if buf, err = wal.AppendRecord(buf, rec); err != nil {
			return err
		}
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("engine: snapshot write: %w", err)
	}
	return nil
}

// Err reports the engine's durability failure, if any: the first WAL
// append, fsync, or close error. A failed engine drops further input
// (fail-stop) — the caller decides whether to crash, rotate the log, or
// surface the error. Always nil on a non-durable engine.
func (e *Engine) Err() error {
	e.pushMu.Lock()
	defer e.pushMu.Unlock()
	if e.walErr != nil {
		return e.walErr
	}
	if e.log != nil {
		return e.log.Err()
	}
	return nil
}

// Drain waits until every sharded chain has processed and delivered
// everything pushed so far; single-shard chains are synchronous, so after
// Drain returns the engine's visible results reflect every prior Push.
// The network server's sync verb is built on this: a client that drains
// has observed (or will observe, via its subscription queue) every output
// its pushes produced.
func (e *Engine) Drain() {
	for _, ch := range e.chainsSnapshot() {
		ch.drain()
	}
}

// SyncWAL flushes and fsyncs the write-ahead log — the durability point
// for everything pushed so far. A no-op on non-durable engines. On
// failure the engine fails stop, exactly as a batched-append sync failure
// would.
func (e *Engine) SyncWAL() error {
	e.pushMu.Lock()
	defer e.pushMu.Unlock()
	if e.walErr != nil {
		return e.walErr
	}
	if e.log == nil || e.closed {
		return nil
	}
	if err := e.log.Sync(); err != nil {
		e.walErr = fmt.Errorf("engine: wal sync: %w", err)
		return e.walErr
	}
	return nil
}

// Close shuts the engine down: further input is dropped, every sharded
// query's workers and merger exit, and the write-ahead log is synced and
// closed. Close is a process-exit, not a logical completion — it does not
// emit (or log) the queries' finish outputs, so a later Restore resumes
// exactly where the log ends. Call Finish first for a completed output
// history. Idempotent: the second and later calls are no-ops returning
// the same error.
func (e *Engine) Close() error {
	e.pushMu.Lock()
	if e.closed {
		e.pushMu.Unlock()
		return e.Err()
	}
	e.closed = true
	e.pushMu.Unlock()
	e.shutdownQueries()
	if e.log != nil {
		if cerr := e.log.Close(); cerr != nil {
			e.pushMu.Lock()
			if e.walErr == nil {
				e.walErr = fmt.Errorf("engine: wal close: %w", cerr)
			}
			e.pushMu.Unlock()
		}
	}
	return e.Err()
}

// shutdownQueries stops every chain's goroutines without emitting finish
// outputs (see chain.shutdown) — they were never logged, so emitting them
// would diverge from what recovery replays.
func (e *Engine) shutdownQueries() {
	for _, ch := range e.chainsSnapshot() {
		ch.shutdown()
	}
}

// drainShards waits until the query's sharded chain has processed and
// delivered everything enqueued so far; a no-op on single-shard queries,
// which are synchronous.
func (q *Query) drainShards() {
	q.ch.drain()
}
